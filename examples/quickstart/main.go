// Quickstart: build the simulated GPU, attach the Equalizer runtime in
// performance mode, run one cache-sensitive kernel, and compare against the
// stock machine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
)

func main() {
	// Pick a workload from the Table II registry. kmeans with the large
	// input is the paper's most cache-sensitive kernel.
	kernel, err := kernels.ByName("kmn")
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: the stock Fermi-style machine, no runtime tuning.
	baseMachine, err := gpu.New(config.Default(), power.Default(), nil)
	if err != nil {
		log.Fatal(err)
	}
	base, err := baseMachine.RunKernel(kernel, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Equalizer in performance mode: boosts the bottleneck resource and
	// tunes the resident thread-block count per SM.
	eqMachine, err := gpu.New(config.Default(), power.Default(), core.New(core.PerformanceMode))
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := eqMachine.RunKernel(kernel, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("kernel %s (%s, %d blocks/SM, %d warps/block)\n",
		kernel.Name, kernel.Category, kernel.BlocksPerSM, kernel.Wcta)
	fmt.Printf("  baseline : %8.3f ms  %7.4f J  L1 hit %4.1f%%\n",
		float64(base.TimePS)/1e9, base.EnergyJ(), base.L1HitRate*100)
	fmt.Printf("  equalizer: %8.3f ms  %7.4f J  L1 hit %4.1f%%\n",
		float64(tuned.TimePS)/1e9, tuned.EnergyJ(), tuned.L1HitRate*100)
	fmt.Printf("  speedup  : %.2fx  energy: %.1f%% of baseline\n",
		float64(base.TimePS)/float64(tuned.TimePS),
		tuned.EnergyJ()/base.EnergyJ()*100)
}
