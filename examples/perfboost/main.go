// Performance-mode walkthrough: show how Equalizer identifies the bottleneck
// resource of three differently-bound kernels from the warp-state counters
// alone and boosts exactly that resource (paper Figure 7 and Table I).
//
//	go run ./examples/perfboost
package main

import (
	"fmt"
	"log"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
)

func main() {
	fmt.Println("Equalizer performance mode: boost only the bottleneck")
	fmt.Println()
	for _, name := range []string{"sgemm", "cfd-1", "histo-1"} {
		k, err := kernels.ByName(name)
		if err != nil {
			log.Fatal(err)
		}

		baseM, err := gpu.New(config.Default(), power.Default(), nil)
		if err != nil {
			log.Fatal(err)
		}
		base, err := baseM.RunKernel(k, 0)
		if err != nil {
			log.Fatal(err)
		}

		eq := core.New(core.PerformanceMode)
		eq.Record = true
		eqM, err := gpu.New(config.Default(), power.Default(), eq)
		if err != nil {
			log.Fatal(err)
		}
		tuned, err := eqM.RunKernel(k, 0)
		if err != nil {
			log.Fatal(err)
		}

		// The recorded trace shows what the counters saw and what the
		// runtime decided.
		var lastBlocks int
		var smHi, memHi bool
		for _, p := range eq.Trace() {
			lastBlocks = p.TargetBlocks
			smHi = smHi || p.SMLevel == config.VFHigh
			memHi = memHi || p.MemLevel == config.VFHigh
		}

		fmt.Printf("%-8s (%s): %.2fx speedup, %+.1f%% energy\n",
			k.Name, k.Category,
			float64(base.TimePS)/float64(tuned.TimePS),
			(tuned.EnergyJ()/base.EnergyJ()-1)*100)
		fmt.Printf("         boosted SM: %-5v  boosted memory: %-5v  final blocks/SM: %d (max %d)\n\n",
			smHi, memHi, lastBlocks, k.MaxResidentBlocks(48))
	}

	fmt.Println("The compute kernel boosts the SM clock, the memory kernel boosts the")
	fmt.Println("memory system, and the cache-sensitive kernel additionally sheds")
	fmt.Println("thread blocks until its working set fits the L1.")
}
