// Adaptivity walkthrough: the two studies of paper Figure 11. Across
// invocations, bfs-2's cache behaviour changes between launches and
// Equalizer re-tunes the block count each time, tracking the per-invocation
// optimum. Within an invocation, spmv starts cache-contended and turns
// latency-bound; Equalizer first sheds blocks, then restores them.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
)

func main() {
	interInvocation()
	intraInvocation()
}

func interInvocation() {
	fmt.Println("bfs-2 across 12 invocations (times in µs; invocations 8-10 are cache-bound)")
	k, err := kernels.ByName("bfs-2")
	if err != nil {
		log.Fatal(err)
	}

	eq := core.New(core.PerformanceMode)
	eq.DisableFrequency = true // isolate the block control, as in Figure 11a
	eqM, err := gpu.New(config.Default(), power.Default(), eq)
	if err != nil {
		log.Fatal(err)
	}
	baseM, err := gpu.New(config.Default(), power.Default(), nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%4s %12s %12s\n", "inv", "baseline", "equalizer")
	var baseTotal, eqTotal int64
	for inv := 0; inv < k.Invocations; inv++ {
		b, err := baseM.RunKernel(k, inv)
		if err != nil {
			log.Fatal(err)
		}
		e, err := eqM.RunKernel(k, inv)
		if err != nil {
			log.Fatal(err)
		}
		baseTotal += b.TimePS
		eqTotal += e.TimePS
		fmt.Printf("%4d %11.1f %11.1f\n", inv+1, float64(b.TimePS)/1e6, float64(e.TimePS)/1e6)
	}
	fmt.Printf("total speedup from block adaptation alone: %.2fx\n\n",
		float64(baseTotal)/float64(eqTotal))
}

func intraInvocation() {
	fmt.Println("spmv within one invocation (per-epoch trace of SM 0)")
	k, err := kernels.ByName("spmv")
	if err != nil {
		log.Fatal(err)
	}
	eq := core.New(core.PerformanceMode)
	eq.Record = true
	m, err := gpu.New(config.Default(), power.Default(), eq)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.RunKernel(k, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s %8s %8s %8s\n", "epoch", "waiting", "xmem", "blocks")
	for _, p := range eq.Trace() {
		fmt.Printf("%6d %8.1f %8.1f %8d\n", p.Epoch, p.Counters.Waiting, p.Counters.XMEM, p.TargetBlocks)
	}
	fmt.Println("blocks drop while Xmem is high (cache thrash), then recover once")
	fmt.Println("waiting dominates (latency-bound phase needs more parallelism).")
}
