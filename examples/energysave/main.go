// Energy-saving walkthrough: run a compute-bound and a memory-bound kernel
// under Equalizer's energy mode and show where the savings come from — the
// under-utilised domain is throttled (memory frequency for compute kernels,
// SM frequency for memory kernels) while the bottleneck keeps its speed, so
// performance barely moves (paper Figure 8 and Table I).
//
//	go run ./examples/energysave
package main

import (
	"fmt"
	"log"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
)

func run(name string, policy gpu.Policy) gpu.Result {
	k, err := kernels.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	m, err := gpu.New(config.Default(), power.Default(), policy)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.RunKernel(k, 0)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("Equalizer energy mode: throttle what the kernel does not need")
	fmt.Println()
	for _, name := range []string{"cutcp", "lbm"} {
		base := run(name, nil)
		saved := run(name, core.New(core.EnergyMode))

		slowdown := 1 - float64(base.TimePS)/float64(saved.TimePS)
		savings := 1 - saved.EnergyJ()/base.EnergyJ()

		// The residency distribution shows which domain was throttled.
		total := float64(saved.Residency.SM[0] + saved.Residency.SM[1] + saved.Residency.SM[2])
		memTotal := float64(saved.Residency.Mem[0] + saved.Residency.Mem[1] + saved.Residency.Mem[2])
		coreLow := float64(saved.Residency.SM[config.VFLow]) / total
		memLow := float64(saved.Residency.Mem[config.VFLow]) / memTotal

		fmt.Printf("%-6s baseline %7.4f J -> equalizer %7.4f J  (saved %.1f%%, perf cost %.1f%%)\n",
			name, base.EnergyJ(), saved.EnergyJ(), savings*100, slowdown*100)
		fmt.Printf("       time at core-low: %4.1f%%   time at mem-low: %4.1f%%\n",
			coreLow*100, memLow*100)
		switch {
		case memLow > coreLow:
			fmt.Printf("       -> compute-bound: the memory system was throttled\n\n")
		default:
			fmt.Printf("       -> memory-bound: the SMs were throttled\n\n")
		}
	}
}
