// Concurrent-kernels walkthrough: newer GPU generations run different
// kernels on different SMs, which is exactly why Equalizer takes its
// decisions per SM (paper Section I). This example splits the machine
// between a compute-bound and a memory-bound kernel and shows that the
// per-SM counters classify each partition independently.
//
// Run with:
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"log"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
)

func main() {
	compute, err := kernels.ByName("cutcp")
	if err != nil {
		log.Fatal(err)
	}
	memory, err := kernels.ByName("lbm")
	if err != nil {
		log.Fatal(err)
	}
	// Half-size grids: each kernel gets roughly half the SMs.
	compute = compute.WithGridScale(0.5, 7)
	memory = memory.WithGridScale(0.5, 7)
	tasks := []gpu.Task{{Kernel: compute}, {Kernel: memory}}

	run := func(p gpu.Policy, label string) {
		m, err := gpu.New(config.Default(), power.Default(), p)
		if err != nil {
			log.Fatal(err)
		}
		perTask, total, err := m.RunConcurrent(tasks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s", label)
		for _, r := range perTask {
			fmt.Printf("  %s %7.3f ms", r.Kernel, float64(r.TimePS)/1e9)
		}
		fmt.Printf("  | machine %7.3f ms, %7.4f J\n",
			float64(total.TimePS)/1e9, total.EnergyJ())
	}

	fmt.Println("cutcp (compute) and lbm (memory) share the GPU on disjoint SM partitions")
	run(nil, "baseline")
	run(core.New(core.PerformanceMode), "equalizer")
	fmt.Println()
	fmt.Println("Each partition's warp-state counters see only its own kernel; the")
	fmt.Println("chip-wide frequency manager still votes across all SMs — the paper's")
	fmt.Println("motivation for per-SM voltage regulators in mixed workloads.")
}
