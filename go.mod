module equalizer

go 1.22
