// Package power implements the activity-based energy model of the simulated
// GPU, playing the role GPUWattch/McPAT plus the Hynix GDDR5 datasheet play
// in the paper's evaluation (Section V-A.1):
//
//   - a constant chip leakage of 41.9 W (the GPUWattch GTX480 figure);
//   - SM dynamic energy proportional to issued instructions, scaled by V²
//     (voltage assumed linear in frequency, so a ±15% VF step scales
//     per-operation energy by (1±0.15)²);
//   - SM and memory-system clock-tree power proportional to V²·f;
//   - per-access L1/L2/DRAM energies, DRAM scaled by V² of the memory
//     domain;
//   - DRAM active-standby power that rises with the memory VF level (the
//     Idd2n effect: idle standby current is higher at higher data rates).
//
// The meter attributes activity to VF levels by accumulating per-level
// deltas that the GPU model flushes on every VF transition and at run end.
package power

import (
	"fmt"

	"equalizer/internal/config"
)

// Config holds the calibration constants. Powers are in watts, per-event
// energies in joules, times in picoseconds.
type Config struct {
	// LeakageW is the constant chip leakage power.
	LeakageW float64
	// EnergyPerALU/SFU/MEM are per-issued-warp-instruction energies at
	// nominal voltage.
	EnergyPerALU float64
	EnergyPerSFU float64
	EnergyPerMEM float64
	// EnergyPerL1 is per L1 line access.
	EnergyPerL1 float64
	// EnergyPerL2 is per L2 line access.
	EnergyPerL2 float64
	// EnergyPerDRAM is per serviced DRAM request (one 128-byte line).
	EnergyPerDRAM float64
	// SMClockW is the clock-tree/pipeline idle power per active SM at
	// nominal VF.
	SMClockW float64
	// MemClockW is the memory-system (interconnect, L2, memory controller)
	// background power at nominal VF.
	MemClockW float64
	// DRAMStandbyW is the DRAM active-standby power at nominal VF.
	DRAMStandbyW float64
	// StandbySlope is the fractional standby-power increase per unit of
	// frequency-multiplier increase (Idd2n sensitivity).
	StandbySlope float64
	// Modulation mirrors the GPU config's VF modulation fraction.
	Modulation float64
}

// Default returns constants calibrated so that the baseline machine draws
// roughly 130 W under load with leakage near one third of total — the
// GPUWattch GTX480 profile the paper relies on.
func Default() Config {
	return Config{
		LeakageW:      41.9,
		EnergyPerALU:  3.2e-9,
		EnergyPerSFU:  6.4e-9,
		EnergyPerMEM:  2.4e-9,
		EnergyPerL1:   1.0e-9,
		EnergyPerL2:   5.0e-9,
		EnergyPerDRAM: 28.0e-9,
		SMClockW:      1.35,
		MemClockW:     18.0,
		DRAMStandbyW:  11.0,
		StandbySlope:  1.0,
		Modulation:    0.15,
	}
}

// Validate reports a descriptive error for unusable constants.
func (c Config) Validate() error {
	switch {
	case c.LeakageW < 0:
		return fmt.Errorf("power: LeakageW must be non-negative, got %g", c.LeakageW)
	case c.Modulation <= 0 || c.Modulation >= 1:
		return fmt.Errorf("power: Modulation must be in (0,1), got %g", c.Modulation)
	case c.EnergyPerALU < 0 || c.EnergyPerSFU < 0 || c.EnergyPerMEM < 0:
		return fmt.Errorf("power: instruction energies must be non-negative")
	case c.EnergyPerL1 < 0 || c.EnergyPerL2 < 0 || c.EnergyPerDRAM < 0:
		return fmt.Errorf("power: access energies must be non-negative")
	case c.SMClockW < 0 || c.MemClockW < 0 || c.DRAMStandbyW < 0:
		return fmt.Errorf("power: background powers must be non-negative")
	}
	return nil
}

// SMTotals is the SM-side activity attributed to one VF level.
type SMTotals struct {
	// ALU, SFU, MEM count issued warp instructions; L1 counts line probes.
	ALU, SFU, MEM, L1 uint64
	// ActiveSMTimePS is the sum over cycles of period × active SM count.
	ActiveSMTimePS int64
	// TimePS is wall time spent at the level.
	TimePS int64
}

// MemTotals is the memory-side activity attributed to one VF level.
type MemTotals struct {
	// L2 counts L2 probes; DRAM counts serviced requests.
	L2, DRAM uint64
	// TimePS is wall time spent at the level.
	TimePS int64
}

// Breakdown is the decomposed energy of a run, in joules.
type Breakdown struct {
	Leakage    float64
	SMDynamic  float64
	SMClock    float64
	MemClock   float64
	DRAMAccess float64
	Standby    float64
	L2Access   float64
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 {
	return b.Leakage + b.SMDynamic + b.SMClock + b.MemClock + b.DRAMAccess + b.Standby + b.L2Access
}

// Meter accumulates per-level activity and converts it to energy.
type Meter struct {
	cfg Config
	sm  [3]SMTotals
	mem [3]MemTotals
}

// NewMeter builds a meter; it panics on invalid configuration since the
// constants are static calibration data.
func NewMeter(cfg Config) *Meter {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Meter{cfg: cfg}
}

// AccumulateSM attributes an SM-side activity delta to a VF level.
func (m *Meter) AccumulateSM(level config.VFLevel, d SMTotals) {
	t := &m.sm[level]
	t.ALU += d.ALU
	t.SFU += d.SFU
	t.MEM += d.MEM
	t.L1 += d.L1
	t.ActiveSMTimePS += d.ActiveSMTimePS
	t.TimePS += d.TimePS
}

// AccumulateMem attributes a memory-side activity delta to a VF level.
func (m *Meter) AccumulateMem(level config.VFLevel, d MemTotals) {
	t := &m.mem[level]
	t.L2 += d.L2
	t.DRAM += d.DRAM
	t.TimePS += d.TimePS
}

// Reset clears all accumulated activity.
func (m *Meter) Reset() {
	m.sm = [3]SMTotals{}
	m.mem = [3]MemTotals{}
}

const psToS = 1e-12

// Energy converts the accumulated activity into a joule breakdown.
func (m *Meter) Energy() Breakdown {
	var b Breakdown
	for l := config.VFLow; l <= config.VFHigh; l++ {
		mult := l.Multiplier(m.cfg.Modulation)
		v2 := mult * mult
		s := m.sm[l]
		b.Leakage += m.cfg.LeakageW * float64(s.TimePS) * psToS
		b.SMDynamic += v2 * (float64(s.ALU)*m.cfg.EnergyPerALU +
			float64(s.SFU)*m.cfg.EnergyPerSFU +
			float64(s.MEM)*m.cfg.EnergyPerMEM +
			float64(s.L1)*m.cfg.EnergyPerL1)
		b.SMClock += m.cfg.SMClockW * v2 * mult * float64(s.ActiveSMTimePS) * psToS

		mm := m.mem[l]
		b.MemClock += m.cfg.MemClockW * v2 * mult * float64(mm.TimePS) * psToS
		b.Standby += m.cfg.DRAMStandbyW * (1 + m.cfg.StandbySlope*(mult-1)) * float64(mm.TimePS) * psToS
		b.L2Access += v2 * float64(mm.L2) * m.cfg.EnergyPerL2
		b.DRAMAccess += v2 * float64(mm.DRAM) * m.cfg.EnergyPerDRAM
	}
	return b
}

// MeanPower returns average power in watts over the accumulated wall time
// (taken from the SM-side residency, which covers the whole run).
func (m *Meter) MeanPower() float64 {
	var t int64
	for l := range m.sm {
		t += m.sm[l].TimePS
	}
	if t == 0 {
		return 0
	}
	return m.Energy().Total() / (float64(t) * psToS)
}
