package power

import (
	"math"
	"testing"
	"testing/quick"

	"equalizer/internal/config"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default power config invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.LeakageW = -1 },
		func(c *Config) { c.Modulation = 0 },
		func(c *Config) { c.EnergyPerALU = -1 },
		func(c *Config) { c.EnergyPerDRAM = -1 },
		func(c *Config) { c.SMClockW = -1 },
	}
	for i, mutate := range cases {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestLeakageProportionalToTime(t *testing.T) {
	m := NewMeter(Default())
	m.AccumulateSM(config.VFNormal, SMTotals{TimePS: 1e12}) // 1 second
	b := m.Energy()
	if math.Abs(b.Leakage-41.9) > 1e-9 {
		t.Fatalf("leakage over 1 s = %g J, want 41.9", b.Leakage)
	}
}

func TestDynamicEnergyScalesWithVoltageSquared(t *testing.T) {
	cfg := Default()
	normal := NewMeter(cfg)
	normal.AccumulateSM(config.VFNormal, SMTotals{ALU: 1000})
	high := NewMeter(cfg)
	high.AccumulateSM(config.VFHigh, SMTotals{ALU: 1000})
	ratio := high.Energy().SMDynamic / normal.Energy().SMDynamic
	want := 1.15 * 1.15
	if math.Abs(ratio-want) > 1e-9 {
		t.Fatalf("dynamic energy ratio = %g, want %g", ratio, want)
	}
}

func TestClockEnergyScalesWithV2F(t *testing.T) {
	cfg := Default()
	normal := NewMeter(cfg)
	normal.AccumulateSM(config.VFNormal, SMTotals{ActiveSMTimePS: 1e12, TimePS: 1e12})
	low := NewMeter(cfg)
	low.AccumulateSM(config.VFLow, SMTotals{ActiveSMTimePS: 1e12, TimePS: 1e12})
	ratio := low.Energy().SMClock / normal.Energy().SMClock
	want := 0.85 * 0.85 * 0.85
	if math.Abs(ratio-want) > 1e-9 {
		t.Fatalf("clock energy ratio = %g, want %g", ratio, want)
	}
}

func TestStandbyRisesWithMemLevel(t *testing.T) {
	cfg := Default()
	lo := NewMeter(cfg)
	lo.AccumulateMem(config.VFLow, MemTotals{TimePS: 1e12})
	hi := NewMeter(cfg)
	hi.AccumulateMem(config.VFHigh, MemTotals{TimePS: 1e12})
	if lo.Energy().Standby >= hi.Energy().Standby {
		t.Fatalf("standby low (%g) not below high (%g)",
			lo.Energy().Standby, hi.Energy().Standby)
	}
	norm := NewMeter(cfg)
	norm.AccumulateMem(config.VFNormal, MemTotals{TimePS: 1e12})
	if math.Abs(norm.Energy().Standby-cfg.DRAMStandbyW) > 1e-9 {
		t.Fatalf("nominal standby over 1 s = %g, want %g", norm.Energy().Standby, cfg.DRAMStandbyW)
	}
}

func TestDRAMAccessEnergy(t *testing.T) {
	cfg := Default()
	m := NewMeter(cfg)
	m.AccumulateMem(config.VFNormal, MemTotals{DRAM: 1000})
	want := 1000 * cfg.EnergyPerDRAM
	if got := m.Energy().DRAMAccess; math.Abs(got-want) > 1e-15 {
		t.Fatalf("DRAM energy = %g, want %g", got, want)
	}
}

func TestBreakdownTotalSumsComponents(t *testing.T) {
	m := NewMeter(Default())
	m.AccumulateSM(config.VFNormal, SMTotals{ALU: 10, MEM: 5, L1: 5, TimePS: 1e9, ActiveSMTimePS: 1e9})
	m.AccumulateMem(config.VFHigh, MemTotals{L2: 3, DRAM: 2, TimePS: 1e9})
	b := m.Energy()
	sum := b.Leakage + b.SMDynamic + b.SMClock + b.MemClock + b.DRAMAccess + b.Standby + b.L2Access
	if math.Abs(b.Total()-sum) > 1e-18 {
		t.Fatalf("Total() = %g, sum = %g", b.Total(), sum)
	}
}

func TestMeanPower(t *testing.T) {
	m := NewMeter(Default())
	if m.MeanPower() != 0 {
		t.Fatal("mean power of empty meter should be 0")
	}
	m.AccumulateSM(config.VFNormal, SMTotals{TimePS: 1e12})
	m.AccumulateMem(config.VFNormal, MemTotals{TimePS: 1e12})
	p := m.MeanPower()
	// Leakage + mem clock + standby only: 41.9 + 18 + 11.
	want := 41.9 + 18 + 11
	if math.Abs(p-want) > 1e-6 {
		t.Fatalf("idle mean power = %g, want %g", p, want)
	}
}

func TestReset(t *testing.T) {
	m := NewMeter(Default())
	m.AccumulateSM(config.VFNormal, SMTotals{ALU: 100, TimePS: 1e9})
	m.Reset()
	if m.Energy().Total() != 0 {
		t.Fatal("energy nonzero after reset")
	}
}

// Property: energy is non-negative and monotonic in activity.
func TestQuickEnergyMonotonic(t *testing.T) {
	f := func(alu1, alu2 uint16, level uint8) bool {
		l := config.VFLevel(int(level) % 3)
		a := NewMeter(Default())
		a.AccumulateSM(l, SMTotals{ALU: uint64(alu1)})
		b := NewMeter(Default())
		b.AccumulateSM(l, SMTotals{ALU: uint64(alu1) + uint64(alu2)})
		ea, eb := a.Energy().Total(), b.Energy().Total()
		return ea >= 0 && eb >= ea
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
