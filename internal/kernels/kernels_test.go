package kernels

import (
	"testing"

	"equalizer/internal/warp"
)

func TestRegistryHas27Kernels(t *testing.T) {
	if n := len(All()); n != 27 {
		t.Fatalf("registry holds %d kernels, want 27 (Table II)", n)
	}
}

func TestCategoryPopulationMatchesTableII(t *testing.T) {
	want := map[Category]int{
		Compute:        10,
		Memory:         5,
		CacheSensitive: 6,
		Unsaturated:    6,
	}
	for cat, n := range want {
		if got := len(ByCategory(cat)); got != n {
			t.Errorf("%v kernels = %d, want %d", cat, got, n)
		}
	}
}

func TestTableIIParameters(t *testing.T) {
	cases := []struct {
		name     string
		cat      Category
		blocks   int
		wcta     int
		fraction float64
	}{
		{"bfs-2", CacheSensitive, 3, 16, 0.95},
		{"cutcp", Compute, 8, 6, 1.00},
		{"lbm", Memory, 7, 4, 1.00},
		{"kmn", CacheSensitive, 6, 8, 0.24},
		{"mri_g-1", Unsaturated, 8, 2, 0.68},
		{"spmv", Compute, 8, 6, 1.00},
		{"histo-2", Compute, 3, 24, 0.53},
		{"sad-1", Unsaturated, 8, 2, 0.85},
	}
	for _, tc := range cases {
		k, err := ByName(tc.name)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if k.Category != tc.cat || k.BlocksPerSM != tc.blocks || k.Wcta != tc.wcta || k.Fraction != tc.fraction {
			t.Errorf("%s = {cat:%v blocks:%d wcta:%d frac:%g}, want {%v %d %d %g}",
				tc.name, k.Category, k.BlocksPerSM, k.Wcta, k.Fraction,
				tc.cat, tc.blocks, tc.wcta, tc.fraction)
		}
	}
}

func TestAllProfilesValidate(t *testing.T) {
	for _, k := range All() {
		for inv := 0; inv < k.Invocations; inv++ {
			p := k.Profile(inv)
			if err := p.Validate(); err != nil {
				t.Errorf("%s invocation %d: invalid profile: %v", k.Name, inv, err)
			}
			if k.Grid(inv) <= 0 {
				t.Errorf("%s invocation %d: non-positive grid", k.Name, inv)
			}
		}
	}
}

func TestProfileOutOfRangePanics(t *testing.T) {
	k, _ := ByName("cutcp")
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range invocation did not panic")
		}
	}()
	k.Profile(1)
}

func TestMaxResidentBlocksCapsAtWarpBudget(t *testing.T) {
	k, _ := ByName("histo-2") // 3 blocks x 24 warps would exceed 48 warps
	if got := k.MaxResidentBlocks(48); got != 2 {
		t.Fatalf("histo-2 resident blocks = %d, want 2 (48-warp budget)", got)
	}
	k2, _ := ByName("cutcp") // 8 x 6 = 48 fits exactly
	if got := k2.MaxResidentBlocks(48); got != 8 {
		t.Fatalf("cutcp resident blocks = %d, want 8", got)
	}
}

func TestByNameAliases(t *testing.T) {
	for _, alias := range []string{"bfs", "bfs-1", "pathfinder", "kmeans", "mummer", "stencil"} {
		if _, err := ByName(alias); err != nil {
			t.Errorf("alias %q not resolved: %v", alias, err)
		}
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestBFS2InvocationVariation(t *testing.T) {
	k, _ := ByName("bfs-2")
	if k.Invocations != 12 {
		t.Fatalf("bfs-2 invocations = %d, want 12", k.Invocations)
	}
	early := k.Profile(0)
	mid := k.Profile(8) // invocation 9, cache-bound
	if early.Phases[0].WorkingSetLines >= mid.Phases[0].WorkingSetLines {
		t.Fatal("mid-run invocations must have larger working sets than early ones")
	}
	if k.Grid(8) >= k.Grid(0) {
		t.Fatal("cache-bound invocations must have smaller frontiers")
	}
}

func TestMriG1HasBursts(t *testing.T) {
	k, _ := ByName("mri_g-1")
	p := k.Profile(0)
	if len(p.Phases) < 3 {
		t.Fatalf("mri_g-1 has %d phases, want intra-invocation variation", len(p.Phases))
	}
	var bursts int
	for _, ph := range p.Phases {
		if ph.MemEvery == 1 && ph.Pattern == warp.Streaming {
			bursts++
		}
	}
	if bursts != 2 {
		t.Fatalf("mri_g-1 has %d memory bursts, want 2 (Figure 2b)", bursts)
	}
}

func TestSpmvStartsCacheContended(t *testing.T) {
	k, _ := ByName("spmv")
	p := k.Profile(0)
	if len(p.Phases) < 2 {
		t.Fatal("spmv needs an initial cache phase plus a compute phase")
	}
	if p.Phases[0].Pattern != warp.PrivateReuse {
		t.Fatal("spmv phase 0 must be cache-contended (Figure 11b)")
	}
}

func TestCacheStudyKernelsMatchFigure10(t *testing.T) {
	names := map[string]bool{}
	for _, k := range CacheStudyKernels() {
		names[k.Name] = true
	}
	for _, want := range []string{"bp-2", "bfs-2", "histo-1", "kmn", "mmer", "prtcl-1", "spmv"} {
		if !names[want] {
			t.Errorf("Figure 10 kernel %s missing from cache study set", want)
		}
	}
	if len(names) != 7 {
		t.Errorf("cache study set has %d kernels, want 7", len(names))
	}
}

func TestCacheKernelsThrashAtFullOccupancy(t *testing.T) {
	// The aggregate working set at maximum concurrency must exceed the
	// 256-line L1 while fitting at one block: that is the premise of the
	// paper's cache-sensitivity category.
	const l1Lines = 256
	for _, k := range ByCategory(CacheSensitive) {
		// Use the most cache-bound invocation (bfs-2 varies per invocation).
		ph := k.Profile(0).Phases[0]
		for inv := 1; inv < k.Invocations; inv++ {
			if cand := k.Profile(inv).Phases[0]; cand.WorkingSetLines > ph.WorkingSetLines {
				ph = cand
			}
		}
		if ph.Pattern != warp.PrivateReuse {
			continue
		}
		maxBlocks := k.MaxResidentBlocks(48)
		full := maxBlocks * k.Wcta * ph.WorkingSetLines
		one := k.Wcta * ph.WorkingSetLines
		if full <= l1Lines {
			t.Errorf("%s: full-occupancy footprint %d lines fits L1; not cache-sensitive", k.Name, full)
		}
		if one > l1Lines {
			t.Errorf("%s: single-block footprint %d lines exceeds L1; no concurrency can help", k.Name, one)
		}
	}
}

func TestFractionsWithinApp(t *testing.T) {
	sums := map[string]float64{}
	for _, k := range All() {
		sums[k.App] += k.Fraction
	}
	for app, sum := range sums {
		// Table II lists only the studied kernels of each app (kmeans'
		// single kernel covers just 24% of its app), so the sum must be a
		// sane fraction, never above 1.
		if sum <= 0 || sum > 1.01 {
			t.Errorf("app %s kernel fractions sum to %g, want (0, 1.01]", app, sum)
		}
	}
}

func TestCategoryString(t *testing.T) {
	if Compute.String() != "compute" || CacheSensitive.String() != "cache" {
		t.Fatal("category strings wrong")
	}
	if len(Categories()) != 4 {
		t.Fatal("Categories() must list 4 entries")
	}
}
