// Package kernels is the workload registry of the reproduction: the 27
// Rodinia/Parboil kernels of Table II, each modelled as a synthetic warp
// profile whose resource-pressure signature matches its paper category.
//
// The CUDA binaries themselves cannot run on a pure-Go simulator, so every
// kernel is a parameterised instruction-mix/address-pattern generator (see
// package warp). The per-kernel parameters — concurrent blocks per SM, warps
// per block (W_cta), execution-time fraction within its application, and
// category — are taken directly from Table II. Grid sizes and instruction
// counts are scaled so that one invocation spans tens of Equalizer epochs on
// the simulated machine while remaining fast to simulate.
package kernels

import (
	"fmt"
	"sort"

	"equalizer/internal/warp"
)

// Category classifies a kernel by its bottleneck resource (Section II).
type Category int

const (
	// Compute kernels contend for the arithmetic pipelines.
	Compute Category = iota
	// Memory kernels saturate DRAM bandwidth.
	Memory
	// CacheSensitive kernels contend for L1 data-cache capacity.
	CacheSensitive
	// Unsaturated kernels saturate nothing but lean towards one resource.
	Unsaturated
)

// String returns the category name used in the paper's figures.
func (c Category) String() string {
	switch c {
	case Compute:
		return "compute"
	case Memory:
		return "memory"
	case CacheSensitive:
		return "cache"
	case Unsaturated:
		return "unsaturated"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories lists all categories in the paper's presentation order.
func Categories() []Category {
	return []Category{Compute, Memory, CacheSensitive, Unsaturated}
}

// lineBytes is the simulated cache-line size shared with config.Default.
const lineBytes = 128

// Kernel is one Table II entry plus its synthetic behaviour.
type Kernel struct {
	// Name is the figure label (e.g. "bfs-2", "mri_g-1", "cutcp").
	Name string
	// App is the host application (e.g. "backprop").
	App string
	// KernelID is the kernel's index within the application, per Table II.
	KernelID int
	// Category is the Table II type.
	Category Category
	// Fraction is the kernel's share of its application's execution time.
	Fraction float64
	// BlocksPerSM is the occupancy limit of Table II's "num Blocks" column.
	BlocksPerSM int
	// Wcta is the number of warps per thread block.
	Wcta int
	// GridBlocks is the total number of thread blocks in one invocation.
	GridBlocks int
	// Invocations is how many times the kernel launches back to back.
	Invocations int
	// GridBlocksFor overrides GridBlocks per invocation when non-nil.
	gridFor func(inv int) int
	// profile builds the warp profile of the given invocation (0-based).
	profile func(inv int) *warp.Profile
}

// Profile returns the warp profile of invocation inv (0-based). It panics on
// an out-of-range invocation, which is a harness bug.
func (k Kernel) Profile(inv int) *warp.Profile {
	if inv < 0 || inv >= k.Invocations {
		panic(fmt.Sprintf("kernels: %s invocation %d out of range [0,%d)", k.Name, inv, k.Invocations))
	}
	return k.profile(inv)
}

// Grid returns the number of thread blocks of invocation inv.
func (k Kernel) Grid(inv int) int {
	if k.gridFor != nil {
		return k.gridFor(inv)
	}
	return k.GridBlocks
}

// WithGridScale returns a copy of the kernel whose per-invocation grid sizes
// are multiplied by scale (floored at minGrid blocks). The experiment
// harness uses it to shrink runs for smoke tests without touching profiles.
func (k Kernel) WithGridScale(scale float64, minGrid int) Kernel {
	if minGrid < 1 {
		minGrid = 1
	}
	inner := k // capture the original grid function
	out := k
	out.gridFor = func(inv int) int {
		g := int(float64(inner.Grid(inv)) * scale)
		if g < minGrid {
			g = minGrid
		}
		return g
	}
	out.GridBlocks = out.gridFor(0)
	return out
}

// MaxResidentBlocks returns the per-SM concurrency limit given the hardware
// warp budget: min(BlocksPerSM, maxWarps/Wcta), at least 1.
func (k Kernel) MaxResidentBlocks(maxWarps int) int {
	byWarps := maxWarps / k.Wcta
	if byWarps < 1 {
		byWarps = 1
	}
	if k.BlocksPerSM < byWarps {
		return k.BlocksPerSM
	}
	return byWarps
}

// --- profile templates -----------------------------------------------------

// computeProfile: dense dependent ALU work with occasional loads. Many warps
// are ready for the ALU pipeline every cycle, so Xalu grows far beyond Wcta.
func computeProfile(insts, aluGap, memEvery int, sfuEvery int) func(int) *warp.Profile {
	return func(int) *warp.Profile {
		return &warp.Profile{
			LineBytes: lineBytes,
			Phases: []warp.Phase{{
				Insts: insts, ALUGap: aluGap, MemEvery: memEvery,
				SFUEvery: sfuEvery, SFUGap: 20,
				Pattern: warp.SharedReadOnly, SharedLines: 512,
			}},
		}
	}
}

// memoryProfile: streaming loads that miss all caches and saturate DRAM
// bandwidth; the LSU backs up and ready memory warps pile into Xmem.
func memoryProfile(insts, memEvery, aluGap int) func(int) *warp.Profile {
	return divergentMemoryProfile(insts, memEvery, aluGap, 0)
}

// divergentMemoryProfile is memoryProfile with uncoalesced accesses touching
// 1+extra lines; low-occupancy streaming kernels (cfd-2) use it so that a
// handful of warps already saturates the board bandwidth (Figure 5).
func divergentMemoryProfile(insts, memEvery, aluGap, extra int) func(int) *warp.Profile {
	return func(int) *warp.Profile {
		return &warp.Profile{
			LineBytes: lineBytes,
			Phases: []warp.Phase{{
				Insts: insts, MemEvery: memEvery, ALUGap: aluGap,
				Pattern: warp.Streaming, ExtraLines: extra,
			}},
		}
	}
}

// textureMemoryProfile streams through the texture unit. The deep texture
// queue hides memory back-pressure from the LD/ST pipeline, so Equalizer
// cannot detect the kernel's bandwidth saturation — the leuko-1 failure the
// paper reports in Section V-B.
func textureMemoryProfile(insts, memEvery, aluGap int) func(int) *warp.Profile {
	return func(int) *warp.Profile {
		return &warp.Profile{
			LineBytes: lineBytes,
			Phases: []warp.Phase{{
				Insts: insts, MemEvery: memEvery, ALUGap: aluGap,
				Pattern: warp.Streaming, Texture: true,
			}},
		}
	}
}

// cacheProfile: each warp cycles over a private working set of wsLines
// lines. The aggregate footprint fits the 256-line L1 only at reduced
// concurrency, producing the cache-thrashing cliff of Figure 1e.
func cacheProfile(insts, memEvery, wsLines, extra int) func(int) *warp.Profile {
	return func(int) *warp.Profile {
		return &warp.Profile{
			LineBytes: lineBytes,
			Phases: []warp.Phase{{
				Insts: insts, MemEvery: memEvery, ALUGap: 1,
				Pattern: warp.PrivateReuse, WorkingSetLines: wsLines,
				ExtraLines: extra,
			}},
		}
	}
}

// unsaturatedProfile: moderate-rate loads that hit in the L2 plus spaced
// ALU work; neither pipeline saturates but the mix leans one way.
func unsaturatedProfile(insts, memEvery, aluGap, sharedLines int) func(int) *warp.Profile {
	return func(int) *warp.Profile {
		return &warp.Profile{
			LineBytes: lineBytes,
			Phases: []warp.Phase{{
				Insts: insts, MemEvery: memEvery, ALUGap: aluGap,
				Pattern: warp.SharedReadOnly, SharedLines: sharedLines,
			}},
		}
	}
}

// bfs2Profile models the breadth-first-search kernel whose per-invocation
// behaviour drives Figures 2a and 11a: mid-run invocations (8-10, 1-based)
// are strongly cache-bound and favour one resident block, while the rest
// favour maximum concurrency.
func bfs2Profile(inv int) *warp.Profile {
	if inv >= 7 && inv <= 9 { // invocations 8-10, 1-based
		return &warp.Profile{
			LineBytes: lineBytes,
			Phases: []warp.Phase{{
				Insts: 700, MemEvery: 2, ALUGap: 1,
				Pattern: warp.PrivateReuse, WorkingSetLines: 12,
				ExtraLines: 2,
			}},
		}
	}
	return &warp.Profile{
		LineBytes: lineBytes,
		Phases: []warp.Phase{{
			Insts: 240, MemEvery: 4, ALUGap: 2,
			Pattern: warp.SharedReadOnly, SharedLines: 2200,
		}},
	}
}

// bfs2Grid shrinks the frontier for the cache-bound middle invocations.
func bfs2Grid(inv int) int {
	if inv >= 7 && inv <= 9 {
		return 30
	}
	return 90
}

// mrig1Profile has the intra-invocation variation of Figure 2b: long
// latency-bound stretches punctuated by two bursts of memory-issue pressure.
func mrig1Profile(int) *warp.Profile {
	quiet := warp.Phase{
		Insts: 220, MemEvery: 5, ALUGap: 5,
		Pattern: warp.SharedReadOnly, SharedLines: 3000,
	}
	burst := warp.Phase{
		Insts: 120, MemEvery: 1, ALUGap: 1,
		Pattern: warp.Streaming,
	}
	return &warp.Profile{
		LineBytes: lineBytes,
		Phases:    []warp.Phase{quiet, burst, quiet, burst, quiet},
	}
}

// spmvProfile: an initial cache-contended phase followed by latency-bound
// streaming compute, matching the adaptation study of Figure 11b.
func spmvProfile(int) *warp.Profile {
	return &warp.Profile{
		LineBytes: lineBytes,
		Phases: []warp.Phase{
			{
				Insts: 300, MemEvery: 2, ALUGap: 1,
				Pattern: warp.PrivateReuse, WorkingSetLines: 18,
				ExtraLines: 5,
			},
			{
				Insts: 1200, MemEvery: 4, ALUGap: 2,
				Pattern: warp.SharedReadOnly, SharedLines: 2048,
			},
		},
	}
}

// prtcl2Profile: compute-bound with severe load imbalance — one long-tail
// block runs ~20x longer than the rest (Section V-B: "only one block runs
// for more than 95% of the time").
func prtcl2Profile(int) *warp.Profile {
	return computeProfile(700, 1, 40, 0)(0)
}

// kmnProfile models kmeans with the large input of Rogers et al. — the most
// cache-sensitive kernel in the study (2.84x in performance mode). A short
// phase whose aggregate working set spills past the L2 (DRAM-bound thrash)
// blends with a longer phase that thrashes the L1 but stays L2-resident, so
// the full-occupancy slowdown lands near the paper's ~3x while one resident
// block per SM makes both phases L1-resident.
func kmnProfile(int) *warp.Profile {
	return &warp.Profile{
		LineBytes: lineBytes,
		Phases: []warp.Phase{
			{
				Insts: 80, MemEvery: 2, ALUGap: 1,
				Pattern: warp.PrivateReuse, WorkingSetLines: 27, ExtraLines: 8,
			},
			{
				Insts: 720, MemEvery: 2, ALUGap: 1,
				Pattern: warp.PrivateReuse, WorkingSetLines: 18, ExtraLines: 8,
			},
		},
	}
}

// --- registry ---------------------------------------------------------------

var registry = buildRegistry()

func buildRegistry() []Kernel {
	ks := []Kernel{
		// Unsaturated: backprop kernel 1 — memory-leaning.
		{Name: "bp-1", App: "backprop", KernelID: 1, Category: Unsaturated, Fraction: 0.57,
			BlocksPerSM: 6, Wcta: 8, GridBlocks: 180, Invocations: 1,
			profile: unsaturatedProfile(300, 4, 4, 2500)},
		// Cache: backprop kernel 2.
		{Name: "bp-2", App: "backprop", KernelID: 2, Category: CacheSensitive, Fraction: 0.43,
			BlocksPerSM: 6, Wcta: 8, GridBlocks: 180, Invocations: 1,
			profile: cacheProfile(650, 3, 18, 8)},
		// Cache: bfs — labelled bfs-2 in every figure of the paper.
		{Name: "bfs-2", App: "bfs", KernelID: 1, Category: CacheSensitive, Fraction: 0.95,
			BlocksPerSM: 3, Wcta: 16, GridBlocks: 90, Invocations: 12,
			gridFor: bfs2Grid, profile: bfs2Profile},
		// Memory: cfd kernels.
		{Name: "cfd-1", App: "cfd", KernelID: 1, Category: Memory, Fraction: 0.85,
			BlocksPerSM: 3, Wcta: 16, GridBlocks: 90, Invocations: 1,
			profile: memoryProfile(90, 3, 2)},
		{Name: "cfd-2", App: "cfd", KernelID: 2, Category: Memory, Fraction: 0.15,
			BlocksPerSM: 3, Wcta: 6, GridBlocks: 135, Invocations: 1,
			profile: divergentMemoryProfile(120, 2, 1, 2)},
		// Compute: cutcp.
		{Name: "cutcp", App: "cutcp", KernelID: 1, Category: Compute, Fraction: 1.00,
			BlocksPerSM: 8, Wcta: 6, GridBlocks: 240, Invocations: 1,
			profile: computeProfile(600, 1, 50, 9)},
		// histo: one kernel per category.
		{Name: "histo-1", App: "histo", KernelID: 1, Category: CacheSensitive, Fraction: 0.30,
			BlocksPerSM: 3, Wcta: 16, GridBlocks: 90, Invocations: 1,
			profile: cacheProfile(600, 2, 12, 2)},
		{Name: "histo-2", App: "histo", KernelID: 2, Category: Compute, Fraction: 0.53,
			BlocksPerSM: 3, Wcta: 24, GridBlocks: 60, Invocations: 1,
			profile: computeProfile(650, 1, 60, 0)},
		{Name: "histo-3", App: "histo", KernelID: 3, Category: Memory, Fraction: 0.17,
			BlocksPerSM: 3, Wcta: 16, GridBlocks: 90, Invocations: 1,
			profile: memoryProfile(80, 2, 2)},
		// Cache: kmeans with the large input of Rogers et al. — the most
		// cache-sensitive kernel (2.84x in performance mode).
		{Name: "kmn", App: "kmeans", KernelID: 1, Category: CacheSensitive, Fraction: 0.24,
			BlocksPerSM: 6, Wcta: 8, GridBlocks: 180, Invocations: 1,
			profile: kmnProfile},
		// Compute: lavaMD (low occupancy, pure compute).
		{Name: "lavaMD", App: "lavaMD", KernelID: 1, Category: Compute, Fraction: 1.00,
			BlocksPerSM: 4, Wcta: 4, GridBlocks: 120, Invocations: 1,
			profile: computeProfile(900, 1, 0, 7)},
		// Memory: lbm — the canonical streaming kernel.
		{Name: "lbm", App: "lbm", KernelID: 1, Category: Memory, Fraction: 1.00,
			BlocksPerSM: 7, Wcta: 4, GridBlocks: 210, Invocations: 1,
			profile: memoryProfile(100, 2, 1)},
		// leukocyte: memory + compute kernels.
		{Name: "leuko-1", App: "leukocyte", KernelID: 1, Category: Memory, Fraction: 0.64,
			BlocksPerSM: 6, Wcta: 6, GridBlocks: 180, Invocations: 1,
			profile: textureMemoryProfile(102, 6, 1)},
		{Name: "leuko-2", App: "leukocyte", KernelID: 2, Category: Compute, Fraction: 0.36,
			BlocksPerSM: 3, Wcta: 5, GridBlocks: 90, Invocations: 1,
			profile: computeProfile(800, 1, 45, 8)},
		// mri-g: three kernels, two unsaturated with phase behaviour.
		{Name: "mri_g-1", App: "mri-g", KernelID: 1, Category: Unsaturated, Fraction: 0.68,
			BlocksPerSM: 8, Wcta: 2, GridBlocks: 240, Invocations: 1,
			profile: mrig1Profile},
		{Name: "mri_g-2", App: "mri-g", KernelID: 2, Category: Unsaturated, Fraction: 0.07,
			BlocksPerSM: 3, Wcta: 8, GridBlocks: 90, Invocations: 1,
			profile: unsaturatedProfile(350, 3, 3, 2000)},
		{Name: "mri_g-3", App: "mri-g", KernelID: 3, Category: Compute, Fraction: 0.13,
			BlocksPerSM: 6, Wcta: 8, GridBlocks: 180, Invocations: 1,
			profile: computeProfile(550, 1, 55, 0)},
		// Compute: mri-q.
		{Name: "mri-q", App: "mri-q", KernelID: 1, Category: Compute, Fraction: 1.00,
			BlocksPerSM: 5, Wcta: 8, GridBlocks: 150, Invocations: 1,
			profile: computeProfile(620, 1, 0, 10)},
		// Cache: mummer — irregular tree walks, divergent accesses.
		{Name: "mmer", App: "mummer", KernelID: 1, Category: CacheSensitive, Fraction: 1.00,
			BlocksPerSM: 6, Wcta: 8, GridBlocks: 180, Invocations: 1,
			profile: cacheProfile(500, 2, 18, 8)},
		// particle filter: cache + compute kernels.
		{Name: "prtcl-1", App: "particle", KernelID: 1, Category: CacheSensitive, Fraction: 0.45,
			BlocksPerSM: 3, Wcta: 16, GridBlocks: 90, Invocations: 1,
			profile: cacheProfile(550, 2, 12, 2)},
		{Name: "prtcl-2", App: "particle", KernelID: 2, Category: Compute, Fraction: 0.35,
			BlocksPerSM: 3, Wcta: 6, GridBlocks: 16, Invocations: 1,
			profile: prtcl2Profile},
		// Compute: pathfinder.
		{Name: "pf", App: "pathfinder", KernelID: 1, Category: Compute, Fraction: 1.00,
			BlocksPerSM: 6, Wcta: 8, GridBlocks: 180, Invocations: 1,
			profile: computeProfile(580, 1, 65, 0)},
		// Unsaturated: sad.
		{Name: "sad-1", App: "sad", KernelID: 1, Category: Unsaturated, Fraction: 0.85,
			BlocksPerSM: 8, Wcta: 2, GridBlocks: 240, Invocations: 1,
			profile: unsaturatedProfile(400, 5, 2, 128)},
		// Compute: sgemm.
		{Name: "sgemm", App: "sgemm", KernelID: 1, Category: Compute, Fraction: 1.00,
			BlocksPerSM: 6, Wcta: 4, GridBlocks: 180, Invocations: 1,
			profile: computeProfile(700, 1, 35, 0)},
		// Unsaturated: streamcluster.
		{Name: "sc", App: "streamcluster", KernelID: 1, Category: Unsaturated, Fraction: 1.00,
			BlocksPerSM: 3, Wcta: 16, GridBlocks: 90, Invocations: 1,
			profile: unsaturatedProfile(320, 4, 2, 192)},
		// Compute (Table II) with an early cache-contended phase (Fig 11b).
		{Name: "spmv", App: "spmv", KernelID: 1, Category: Compute, Fraction: 1.00,
			BlocksPerSM: 8, Wcta: 6, GridBlocks: 240, Invocations: 1,
			profile: spmvProfile},
		// Unsaturated: stencil — very sparse in both pipelines.
		{Name: "stncl", App: "stencil", KernelID: 1, Category: Unsaturated, Fraction: 1.00,
			BlocksPerSM: 5, Wcta: 4, GridBlocks: 150, Invocations: 1,
			profile: unsaturatedProfile(380, 7, 6, 224)},
	}
	sort.SliceStable(ks, func(i, j int) bool {
		if ks[i].Category != ks[j].Category {
			return ks[i].Category < ks[j].Category
		}
		return ks[i].Name < ks[j].Name
	})
	return ks
}

// All returns every kernel, grouped by category in presentation order.
// The returned slice is shared; callers must not modify it.
func All() []Kernel { return registry }

// ByCategory returns the kernels of one category.
func ByCategory(c Category) []Kernel {
	var out []Kernel
	for _, k := range registry {
		if k.Category == c {
			out = append(out, k)
		}
	}
	return out
}

// aliases maps alternate figure labels to registry names.
var aliases = map[string]string{
	"bfs":        "bfs-2",
	"bfs-1":      "bfs-2",
	"pathfinder": "pf",
	"kmeans":     "kmn",
	"mummer":     "mmer",
	"stencil":    "stncl",
}

// ByName finds a kernel by its figure label (or a common alias).
func ByName(name string) (Kernel, error) {
	if canonical, ok := aliases[name]; ok {
		name = canonical
	}
	for _, k := range registry {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("kernels: unknown kernel %q", name)
}

// CacheStudyKernels returns the kernel set of Figure 10 (the DynCTA/CCWS
// comparison): the cache-sensitive kernels plus spmv, whose first phase is
// cache-contended.
func CacheStudyKernels() []Kernel {
	out := ByCategory(CacheSensitive)
	if spmv, err := ByName("spmv"); err == nil {
		out = append(out, spmv)
	}
	return out
}
