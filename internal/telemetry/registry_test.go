package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests", Labels{"sm": "0"})
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Same (name, labels) returns the same cell.
	if r.Counter("requests_total", "requests", Labels{"sm": "0"}) != c {
		t.Fatal("series handle not stable")
	}
	g := r.Gauge("depth", "", nil)
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %g", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4}, nil)
	for _, v := range []float64{0.5, 1.5, 3, 8, 2} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 15 {
		t.Fatalf("sum = %g", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Cumulative buckets: le=1 -> 1 (0.5), le=2 -> 3 (+1.5, +2), le=4 -> 4
	// (+3), +Inf -> 5 (+8).
	for _, want := range []string{
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="2"} 3`,
		`lat_bucket{le="4"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_sum 15`,
		`lat_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusDeterministicOrder(t *testing.T) {
	render := func() string {
		r := NewRegistry()
		// Register in scrambled order; export must sort by name then labels.
		r.Counter("zzz_total", "", nil).Set(1)
		r.Counter("aaa_total", "", Labels{"sm": "1"}).Set(2)
		r.Counter("aaa_total", "", Labels{"sm": "0"}).Set(3)
		r.Gauge("mmm", "mid", nil).Set(4)
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if render() != first {
			t.Fatal("export order is not deterministic")
		}
	}
	aaa := strings.Index(first, "aaa_total{sm=\"0\"}")
	aaa1 := strings.Index(first, "aaa_total{sm=\"1\"}")
	zzz := strings.Index(first, "zzz_total")
	if !(aaa >= 0 && aaa < aaa1 && aaa1 < zzz) {
		t.Fatalf("series out of order:\n%s", first)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "cache hits", Labels{"level": "l1"}).Set(7)
	r.Histogram("ipc", "", []float64{1}, nil).Observe(0.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc []struct {
		Name   string `json:"name"`
		Type   string `json:"type"`
		Series []struct {
			Labels  map[string]string `json:"labels"`
			Value   *float64          `json:"value"`
			Buckets map[string]uint64 `json:"buckets"`
			Count   *uint64           `json:"count"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc) != 2 || doc[0].Name != "hits_total" || doc[1].Name != "ipc" {
		t.Fatalf("unexpected families: %+v", doc)
	}
	if doc[0].Series[0].Value == nil || *doc[0].Series[0].Value != 7 {
		t.Fatalf("counter value: %+v", doc[0].Series[0])
	}
	if doc[1].Series[0].Buckets["1"] != 1 || *doc[1].Series[0].Count != 1 {
		t.Fatalf("histogram: %+v", doc[1].Series[0])
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two types must panic")
		}
	}()
	r.Gauge("m", "", nil)
}

// TestConcurrentUse exercises the registry under the race detector.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total", "", Labels{"w": "x"}).Inc()
				r.Gauge("g", "", nil).Set(float64(j))
				r.Histogram("h", "", []float64{10, 100}, nil).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "", Labels{"w": "x"}).Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
	if got := r.Histogram("h", "", []float64{10, 100}, nil).Count(); got != 4000 {
		t.Fatalf("histogram count = %d, want 4000", got)
	}
}

// TestHistogramSnapshotSubQuantile: snapshots copy the buckets, Sub yields
// the epoch delta, and Quantile interpolates within the containing bucket.
func TestHistogramSnapshotSubQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{0.01, 0.1, 1}, nil)
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.05) // second bucket
	}
	s1 := h.Snapshot()
	if s1.Count != 100 || s1.Counts[0] != 90 || s1.Counts[1] != 10 {
		t.Fatalf("snapshot = %+v", s1)
	}
	// p95 rank=95 lands 5 samples into the second bucket (0.01..0.1):
	// 0.01 + (5/10)*0.09 = 0.055.
	if got := s1.Quantile(0.95); got < 0.054 || got > 0.056 {
		t.Errorf("p95 = %g, want ~0.055", got)
	}
	// p50 is inside the first bucket: 0 + (50/90)*0.01.
	if got := s1.Quantile(0.50); got < 0.0055 || got > 0.0057 {
		t.Errorf("p50 = %g, want ~0.00556", got)
	}

	// A second epoch of slower observations; the delta sees only them.
	for i := 0; i < 20; i++ {
		h.Observe(0.5)
	}
	d := h.Snapshot().Sub(s1)
	if d.Count != 20 || d.Counts[2] != 20 {
		t.Fatalf("delta = %+v", d)
	}
	if got := d.Quantile(0.95); got < 0.1 || got > 1 {
		t.Errorf("delta p95 = %g, want in (0.1, 1]", got)
	}

	// Empty delta and empty snapshot are well-defined.
	if got := d.Sub(d).Quantile(0.95); got != 0 {
		t.Errorf("empty delta quantile = %g, want 0", got)
	}
	var zero HistSnapshot
	if got := zero.Quantile(0.5); got != 0 {
		t.Errorf("zero snapshot quantile = %g, want 0", got)
	}
}

// TestHistogramSnapshotInfBucket: a quantile falling in the +Inf bucket
// reports the largest finite bound instead of infinity.
func TestHistogramSnapshotInfBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat2", "", []float64{0.01, 0.1}, nil)
	for i := 0; i < 10; i++ {
		h.Observe(5) // beyond every finite bound
	}
	if got := h.Snapshot().Quantile(0.99); got != 0.1 {
		t.Errorf("+Inf-bucket quantile = %g, want 0.1", got)
	}
}
