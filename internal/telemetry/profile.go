package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiling arms the Go profilers requested by the command-line tools:
// cpuPath starts a CPU profile immediately, memPath schedules a heap profile
// at stop time. Either path may be empty. The returned stop function must be
// called (typically deferred from main) to flush the profiles.
func StartProfiling(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("telemetry: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("telemetry: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("telemetry: create mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialise final heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("telemetry: write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
