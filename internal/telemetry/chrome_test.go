package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a hand-crafted stream covering every span shape the
// exporter renders: a kernel, two blocks on two SMs, an epoch with a
// decision, a VF transition with regulator latency, and a CTA pause.
func goldenEvents() []Event {
	return []Event{
		{TimePS: 0, Kind: KindKernelBegin, Src: 0, A: 0, B: 8},
		{TimePS: 1_000_000, Kind: KindBlockLaunch, Src: 0, A: 0, B: 0<<16 | 6},
		{TimePS: 1_000_000, Kind: KindBlockLaunch, Src: 1, A: 1, B: 1<<16 | 6},
		{TimePS: 2_000_000, Kind: KindEpochDecision, Src: 0, A: 2, B: -1},
		{TimePS: 2_000_000, Kind: KindEpochDecision, Src: 1, A: 1, B: 0},
		{TimePS: 2_000_000, Kind: KindEpoch, Src: -1, A: 1, B: 2<<2 | 0}, // sm +1, mem -1
		{TimePS: 2_100_000, Kind: KindVFRequest, Src: DomainSM, A: 2},
		{TimePS: 2_500_000, Kind: KindVFShift, Src: DomainSM, A: 2, B: 400_000},
		{TimePS: 3_000_000, Kind: KindCTAPause, Src: 1, A: 1, B: 1},
		{TimePS: 4_000_000, Kind: KindCTAUnpause, Src: 1, A: 1, B: 1},
		{TimePS: 4_500_000, Kind: KindBlockFinish, Src: 0, A: 0, B: 0},
		{TimePS: 5_000_000, Kind: KindBlockFinish, Src: 1, A: 1, B: 1},
		{TimePS: 6_000_000, Kind: KindKernelEnd, Src: 0, A: 0},
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, goldenEvents(), ChromeOptions{NumSMs: 2, Kernel: "demo"})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run `go test -run Golden -update ./internal/telemetry` to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace diverges from %s (re-run with -update after intentional changes)\ngot:\n%s",
			golden, buf.String())
	}
}

// TestChromeTraceIsValidJSON double-checks the golden output parses as the
// Chrome trace-event format and references only declared processes.
func TestChromeTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents(), ChromeOptions{NumSMs: 2, Kernel: "demo"}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	declared := map[int]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			declared[e.PID] = true
		}
	}
	spans := 0
	for _, e := range doc.TraceEvents {
		if !declared[e.PID] {
			t.Errorf("event %q on undeclared process %d", e.Name, e.PID)
		}
		if e.Ph == "X" {
			spans++
			if e.Dur < 0 || e.TS < 0 {
				t.Errorf("negative time on span %q: ts=%g dur=%g", e.Name, e.TS, e.Dur)
			}
		}
	}
	// kernel + epoch + vf shift + 2 blocks + 1 pause.
	if spans != 6 {
		t.Errorf("span count = %d, want 6", spans)
	}
}

// TestChromeTraceToleratesTruncation feeds a ring-truncated stream: a finish
// without its launch must be ignored, and a launch without its finish must
// be closed at the trace end.
func TestChromeTraceToleratesTruncation(t *testing.T) {
	events := []Event{
		// Orphaned finish (launch was overwritten by ring wrap-around).
		{TimePS: 1_000_000, Kind: KindBlockFinish, Src: 0, A: 7, B: 2},
		// Orphaned unpause.
		{TimePS: 1_500_000, Kind: KindCTAUnpause, Src: 0, A: 3, B: 9},
		// Launch never finished (trace window ended first).
		{TimePS: 2_000_000, Kind: KindBlockLaunch, Src: 1, A: 8, B: 1<<16 | 4},
		{TimePS: 3_000_000, Kind: KindEpoch, Src: -1, A: 1, B: 1<<2 | 1},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, ChromeOptions{NumSMs: 2}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var sawOpenBlock bool
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.Name == "block 7" {
			t.Error("orphaned finish must not produce a span")
		}
		if e.Name == "block 8" {
			sawOpenBlock = true
			if end := e.TS + e.Dur; end != 3.0 {
				t.Errorf("unclosed block must end at the final timestamp, ends at %g", end)
			}
		}
	}
	if !sawOpenBlock {
		t.Error("unclosed launch must still render as a span")
	}
}

func TestChromeTraceEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, ChromeOptions{NumSMs: 1}); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON for empty stream: %v", err)
	}
}

func TestWriteChromeSpans(t *testing.T) {
	spans := []Span{
		{Name: "request", Cat: "service", PID: 1, TID: 0, StartUS: 10, DurUS: 120,
			Args: map[string]any{"id": "req-1", "status": 200}},
		{Name: "queue", Cat: "stage", PID: 1, TID: 1, StartUS: 10, DurUS: 5},
	}
	var b bytes.Buffer
	err := WriteChromeSpans(&b, spans, SpanOptions{
		ProcessNames: map[int]string{1: "eqsimd"},
		ThreadNames:  map[int64]string{ThreadKey(1, 1): "stages"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 2 metadata + 2 spans.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0]["ph"] != "M" || doc.TraceEvents[2]["ph"] != "X" {
		t.Errorf("unexpected event phases: %v", doc.TraceEvents)
	}
	// Deterministic: a second render is byte-identical.
	var b2 bytes.Buffer
	if err := WriteChromeSpans(&b2, spans, SpanOptions{
		ProcessNames: map[int]string{1: "eqsimd"},
		ThreadNames:  map[int64]string{ThreadKey(1, 1): "stages"},
	}); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("WriteChromeSpans output is not deterministic")
	}
}
