package telemetry

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
)

// eventRecordBytes is the packed wire size FuzzChromeTraceTruncation uses
// to decode fuzz input into events: 3×int64 + int16 + 1 kind byte.
const eventRecordBytes = 3*8 + 2 + 1

// decodeFuzzEvents reinterprets raw bytes as an event stream. Arbitrary
// bytes produce arbitrary (including out-of-range) kinds, payloads and
// non-monotonic timestamps — exactly the malformed streams a truncated or
// wrapped ring buffer can hand to the exporter.
func decodeFuzzEvents(data []byte) []Event {
	n := len(data) / eventRecordBytes
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		rec := data[i*eventRecordBytes:]
		events = append(events, Event{
			TimePS: int64(binary.LittleEndian.Uint64(rec[0:])),
			A:      int64(binary.LittleEndian.Uint64(rec[8:])),
			B:      int64(binary.LittleEndian.Uint64(rec[16:])),
			Src:    int16(binary.LittleEndian.Uint16(rec[24:])),
			Kind:   Kind(rec[26]),
		})
	}
	return events
}

// FuzzChromeTraceTruncation feeds arbitrary event streams — including ones
// whose span-opening events are missing, duplicated or reordered, as after
// ring-buffer wrap-around — to the Chrome trace exporter and asserts it
// never panics and always emits valid JSON.
func FuzzChromeTraceTruncation(f *testing.F) {
	// Seed with a realistic stream: kernel span, epoch marks, VF changes —
	// then truncated variants of it.
	bus := NewBus(64, MaskAll)
	bus.Emit(0, KindKernelBegin, -1, 0, 100)
	bus.Emit(10, KindEpoch, -1, 1, 0)
	bus.Emit(20, KindVFShift, 0, 1, 2)
	bus.Emit(30, KindKernelEnd, -1, 0, 100)
	var seed []byte
	for _, e := range bus.Events() {
		var rec [eventRecordBytes]byte
		binary.LittleEndian.PutUint64(rec[0:], uint64(e.TimePS))
		binary.LittleEndian.PutUint64(rec[8:], uint64(e.A))
		binary.LittleEndian.PutUint64(rec[16:], uint64(e.B))
		binary.LittleEndian.PutUint16(rec[24:], uint16(e.Src))
		rec[26] = byte(e.Kind)
		seed = append(seed, rec[:]...)
	}
	f.Add(seed)
	for cut := 1; cut < len(seed); cut += eventRecordBytes + 7 {
		f.Add(seed[cut:]) // drop opening records mid-stream
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 4*eventRecordBytes))

	f.Fuzz(func(t *testing.T, data []byte) {
		events := decodeFuzzEvents(data)
		var out bytes.Buffer
		if err := WriteChromeTrace(&out, events, ChromeOptions{NumSMs: 2}); err != nil {
			t.Fatalf("WriteChromeTrace failed on a decodable stream: %v", err)
		}
		var doc map[string]any
		if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
			t.Fatalf("exporter produced invalid JSON: %v", err)
		}
		if _, ok := doc["traceEvents"]; !ok {
			t.Fatal("trace document missing traceEvents array")
		}
	})
}
