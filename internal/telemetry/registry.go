package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attach dimensions to a metric series ({"sm": "3", "pipe": "alu"}).
type Labels map[string]string

// metricType distinguishes the three series shapes.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Counter is a monotonically increasing integer cell. Safe for concurrent
// use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Set overwrites the counter; used when snapshotting an already-accumulated
// simulator statistic into the registry.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float cell that can go up and down. Safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed cumulative-on-export
// buckets. Safe for concurrent use.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; an implicit +Inf follows
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	total   atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistSnapshot is a point-in-time copy of a histogram's buckets. Feedback
// controllers snapshot a cumulative histogram every epoch and difference
// consecutive snapshots (Sub) to get per-epoch distributions, then estimate
// tail quantiles (Quantile) from the delta.
type HistSnapshot struct {
	// Bounds are the upper bucket bounds, ascending; Counts has one extra
	// trailing cell for the implicit +Inf bucket. Bounds aliases the
	// histogram's immutable bounds slice — do not mutate.
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram's current buckets. The per-bucket loads are
// not mutually atomic; under concurrent observation a snapshot may be off
// by the handful of samples that landed mid-copy, which is harmless for
// control and reporting uses.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.Sum(),
		Count:  h.Count(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Sub returns the per-bucket difference s - prev: the distribution of the
// observations that arrived between the two snapshots. A zero-value prev
// returns s unchanged. Buckets that would go negative (mismatched
// snapshots) clamp to zero.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{Bounds: s.Bounds, Counts: make([]uint64, len(s.Counts)), Sum: s.Sum - prev.Sum}
	for i := range s.Counts {
		var p uint64
		if i < len(prev.Counts) {
			p = prev.Counts[i]
		}
		if s.Counts[i] > p {
			d.Counts[i] = s.Counts[i] - p
		}
		d.Count += d.Counts[i]
	}
	return d
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the snapshot by linear
// interpolation within the bucket that contains the target rank, the
// standard Prometheus histogram_quantile estimate. The +Inf bucket reports
// its lower bound (the largest finite bound). An empty snapshot returns 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, n := range s.Counts {
		cum += float64(n)
		if cum < rank || n == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: no finite upper bound to interpolate to.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		below := cum - float64(n)
		frac := (rank - below) / float64(n)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// series is one labeled instance of a metric family.
type series struct {
	labels Labels
	key    string
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    metricType
	bounds []float64 // histogram families only
	series map[string]*series
}

// Registry holds named metric families. Series handles returned by
// Counter/Gauge/Histogram are stable and may be cached by callers; the
// registry itself is safe for concurrent registration and export.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey serialises labels deterministically.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// lookup returns (creating if needed) the series for (name, labels),
// enforcing a consistent type per family.
func (r *Registry) lookup(name, help string, typ metricType, bounds []float64, labels Labels) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, bounds: bounds,
			series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s",
			name, f.typ, typ))
	}
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		cp := make(Labels, len(labels))
		for k, v := range labels {
			cp[k] = v
		}
		s = &series{labels: cp, key: key}
		switch typ {
		case typeCounter:
			s.ctr = &Counter{}
		case typeGauge:
			s.gauge = &Gauge{}
		case typeHistogram:
			s.hist = &Histogram{
				bounds: f.bounds,
				counts: make([]atomic.Uint64, len(f.bounds)+1),
			}
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter series for (name, labels), creating it on
// first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.lookup(name, help, typeCounter, nil, labels).ctr
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.lookup(name, help, typeGauge, nil, labels).gauge
}

// Histogram returns the histogram series for (name, labels) with the given
// ascending upper bucket bounds (an implicit +Inf bucket is appended). The
// bounds of the first registration win for the whole family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	return r.lookup(name, help, typeHistogram, sorted, labels).hist
}

// sortedFamilies snapshots families and series in name/label order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (f *family) sortedSeries() []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// promLabels renders {a="x",b="y"} with an optional extra le label, or ""
// when empty.
func promLabels(s *series, extra string) string {
	if s.key == "" && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	if s.key != "" {
		keys := make([]string, 0, len(s.labels))
		for k := range s.labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !first {
				b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&b, "%s=%q", k, s.labels[k])
		}
	}
	if extra != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the Prometheus way (integers without
// exponent, +Inf spelled out).
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus exports the registry in the Prometheus text exposition
// format, deterministically ordered by metric name and label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			switch f.typ {
			case typeCounter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s, ""), s.ctr.Value()); err != nil {
					return err
				}
			case typeGauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(s, ""), formatFloat(s.gauge.Value())); err != nil {
					return err
				}
			case typeHistogram:
				cum := uint64(0)
				for i, bound := range s.hist.bounds {
					cum += s.hist.counts[i].Load()
					le := fmt.Sprintf("le=%q", formatFloat(bound))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(s, le), cum); err != nil {
						return err
					}
				}
				cum += s.hist.counts[len(s.hist.bounds)].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(s, `le="+Inf"`), cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, promLabels(s, ""), formatFloat(s.hist.Sum())); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(s, ""), s.hist.Count()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// jsonSeries is the JSON export shape of one series.
type jsonSeries struct {
	Labels Labels `json:"labels,omitempty"`
	// Value holds the counter or gauge value.
	Value *float64 `json:"value,omitempty"`
	// Buckets, Sum and Count describe a histogram.
	Buckets map[string]uint64 `json:"buckets,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
}

// jsonFamily is the JSON export shape of one metric family.
type jsonFamily struct {
	Name   string       `json:"name"`
	Type   string       `json:"type"`
	Help   string       `json:"help,omitempty"`
	Series []jsonSeries `json:"series"`
}

// WriteJSON exports the registry as an indented JSON array of metric
// families, deterministically ordered.
func (r *Registry) WriteJSON(w io.Writer) error {
	var out []jsonFamily
	for _, f := range r.sortedFamilies() {
		jf := jsonFamily{Name: f.name, Type: string(f.typ), Help: f.help}
		for _, s := range f.sortedSeries() {
			js := jsonSeries{Labels: s.labels}
			switch f.typ {
			case typeCounter:
				v := float64(s.ctr.Value())
				js.Value = &v
			case typeGauge:
				v := s.gauge.Value()
				js.Value = &v
			case typeHistogram:
				js.Buckets = make(map[string]uint64, len(s.hist.bounds)+1)
				for i, bound := range s.hist.bounds {
					js.Buckets[formatFloat(bound)] = s.hist.counts[i].Load()
				}
				js.Buckets["+Inf"] = s.hist.counts[len(s.hist.bounds)].Load()
				sum, count := s.hist.Sum(), s.hist.Count()
				js.Sum, js.Count = &sum, &count
			}
			jf.Series = append(jf.Series, js)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
