// Package telemetry is the observability spine of the simulator: a
// zero-allocation probe bus that every layer (SM, caches, interconnect,
// DRAM, Equalizer runtime, machine composition) emits cycle-stamped events
// into, a named counter/gauge/histogram registry exported as JSON or
// Prometheus text, and trace exporters (Chrome trace-event JSON for
// Perfetto).
//
// The bus is designed so that a disabled probe costs essentially nothing:
// Emit on a nil *Bus, or for a Kind outside the bus mask, is a branch and a
// return — no allocation, no lock, no write. Simulator components therefore
// keep their probe pointers permanently wired and the caller decides at run
// time whether (and how much) telemetry to pay for. Like the simulator
// itself, a Bus is single-goroutine; clone one machine (and one bus) per
// goroutine for parallel sweeps.
package telemetry

// Kind identifies the event type carried on the probe bus. Kinds are bits
// in a Bus mask, so at most 64 kinds exist.
type Kind uint8

const (
	// KindKernelBegin marks the start of one kernel partition's execution.
	// Src is the partition index; A is the invocation number.
	KindKernelBegin Kind = iota
	// KindKernelEnd closes a KindKernelBegin. Src is the partition index.
	KindKernelEnd
	// KindEpoch marks an Equalizer epoch boundary. Src is -1 (global);
	// A is the 1-based epoch index; B packs the majority frequency vote as
	// (smStep+1)<<2 | (memStep+1).
	KindEpoch
	// KindEpochDecision is one SM's per-epoch decision. Src is the SM;
	// A is the Tendency ordinal; B is the block delta (-1, 0, +1).
	KindEpochDecision
	// KindVFRequest records a voltage-regulator transition request.
	// Src is the domain (DomainSM or DomainMem); A is the target level.
	KindVFRequest
	// KindVFShift records a VF level becoming effective. Src is the domain;
	// A is the new level; B is the request-to-effective latency in
	// picoseconds (the switching latency of the transition).
	KindVFShift
	// KindBlockLaunch records a thread block becoming resident on an SM.
	// Src is the SM; A is the grid-global block id; B packs
	// slot<<16 | warps-per-block.
	KindBlockLaunch
	// KindBlockFinish records a thread block completing. Src is the SM;
	// A is the grid-global block id; B is the slot.
	KindBlockFinish
	// KindCTAPause records the concurrency controller pausing a resident
	// block. Src is the SM; A is the block slot; B is the global block id.
	KindCTAPause
	// KindCTAUnpause reverses a KindCTAPause. Same payload.
	KindCTAUnpause
	// KindWarpIssue records one warp instruction issuing. Src is the SM;
	// A is the warp slot; B is the pipe (PipeALU..PipeTEX). High volume:
	// one event per issued instruction.
	KindWarpIssue
	// KindStallCensus is the per-cycle warp-state census of one SM. Src is
	// the SM; A packs active<<24 | waiting<<16 | xalu<<8 | xmem; B is the
	// issue count. Very high volume: one event per SM per cycle.
	KindStallCensus
	// KindL1Access records an L1 probe. Src is the SM; A is the line
	// address; B is the cache.AccessResult ordinal. High volume.
	KindL1Access
	// KindL1Evict records an L1 fill evicting a victim line. Src is the
	// SM; A is the victim line address.
	KindL1Evict
	// KindL2Access records an L2 probe. Src is -1; A is the line address;
	// B is the cache.AccessResult ordinal. High volume.
	KindL2Access
	// KindL2Evict records an L2 eviction. Src is -1; A is the victim line.
	KindL2Evict
	// KindICNTQueue samples one SM port's ingress FIFO depth after a push.
	// Src is the SM; A is the depth.
	KindICNTQueue
	// KindICNTStall records a push rejected by a full FIFO. Src is the SM;
	// A is the FIFO depth (the configured queue capacity).
	KindICNTStall
	// KindDRAMRowHit records an FR-FCFS request serviced from the open row.
	// Src is the bank; A is the line address; B is the row id.
	KindDRAMRowHit
	// KindDRAMRowMiss records a bank conflict: a request that had to close
	// the open row (precharge+activate). Src is the bank; A is the line;
	// B is the row id.
	KindDRAMRowMiss
	// KindDRAMReject records an Enqueue attempt that found the controller
	// queue full. Src is -1; A is the line address.
	KindDRAMReject

	numKinds // must stay <= 64
)

// Pipe ordinals carried in KindWarpIssue's B payload.
const (
	PipeALU int64 = iota
	PipeSFU
	PipeMEM
	PipeTEX
)

// Domain ordinals carried in VF events' Src field.
const (
	DomainSM  int16 = 0
	DomainMem int16 = 1
)

// String returns the kind's wire name (used by exporters and metrics).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

var kindNames = [...]string{
	KindKernelBegin:   "kernel_begin",
	KindKernelEnd:     "kernel_end",
	KindEpoch:         "epoch",
	KindEpochDecision: "epoch_decision",
	KindVFRequest:     "vf_request",
	KindVFShift:       "vf_shift",
	KindBlockLaunch:   "block_launch",
	KindBlockFinish:   "block_finish",
	KindCTAPause:      "cta_pause",
	KindCTAUnpause:    "cta_unpause",
	KindWarpIssue:     "warp_issue",
	KindStallCensus:   "stall_census",
	KindL1Access:      "l1_access",
	KindL1Evict:       "l1_evict",
	KindL2Access:      "l2_access",
	KindL2Evict:       "l2_evict",
	KindICNTQueue:     "icnt_queue",
	KindICNTStall:     "icnt_stall",
	KindDRAMRowHit:    "dram_row_hit",
	KindDRAMRowMiss:   "dram_row_miss",
	KindDRAMReject:    "dram_reject",
}

// Mask selects which kinds a bus records. The zero mask records nothing.
type Mask uint64

// MaskOf builds a mask from a kind list.
func MaskOf(kinds ...Kind) Mask {
	var m Mask
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// MaskAll enables every kind.
const MaskAll = Mask(1<<numKinds - 1)

// MaskSpans enables the span-shaped, low-volume kinds the Chrome exporter
// renders: kernel/epoch boundaries, VF transitions, block residency and CTA
// pausing. This is the default for trace capture.
var MaskSpans = MaskOf(
	KindKernelBegin, KindKernelEnd, KindEpoch, KindEpochDecision,
	KindVFRequest, KindVFShift, KindBlockLaunch, KindBlockFinish,
	KindCTAPause, KindCTAUnpause,
)

// MaskMemory enables the memory-system kinds (cache probes, interconnect
// depth, DRAM rows). High volume.
var MaskMemory = MaskOf(
	KindL1Access, KindL1Evict, KindL2Access, KindL2Evict,
	KindICNTQueue, KindICNTStall,
	KindDRAMRowHit, KindDRAMRowMiss, KindDRAMReject,
)

// Has reports whether the mask includes k.
func (m Mask) Has(k Kind) bool { return m&(1<<k) != 0 }

// Event is one probe-bus record. Payload semantics depend on Kind; see the
// kind constants. Events carry only scalars so emitting never allocates.
type Event struct {
	// TimePS is the absolute simulation time in picoseconds.
	TimePS int64
	// A and B are kind-specific payload words.
	A, B int64
	// Src is the emitting unit: an SM index, bank, partition or domain
	// ordinal; -1 for machine-global events.
	Src int16
	// Kind is the event type.
	Kind Kind
}

// Bus is a bounded ring of events. When full, the oldest events are
// overwritten (and counted as dropped) so a trace always holds the most
// recent window. A nil *Bus is a valid, permanently disabled bus; every
// method is nil-safe (eqlint:nilsafe — the probehygiene analyzer enforces
// the leading nil guard on every pointer-receiver method).
type Bus struct {
	mask    Mask
	buf     []Event
	head    int // next write index
	count   int // valid events, <= len(buf)
	dropped uint64

	// Stage state (nil parent on ordinary buses). A stage forwards every
	// Emit straight to its parent until Buffer() switches it to staging:
	// staged events accumulate in emission order and Flush() replays them
	// into the parent. The machine's shard engine gives each SM a stage so
	// concurrently stepped SMs never touch the shared ring, then flushes the
	// stages in SM index order at the phase barrier — reproducing the exact
	// event interleaving of the sequential loop, ring wrap and drop
	// accounting included.
	parent    *Bus
	buffering bool
	staged    []Event
	flushed   int // staged[:flushed] already replayed by FlushUpTo
}

// NewBus builds a bus holding up to capacity events of the masked kinds.
func NewBus(capacity int, mask Mask) *Bus {
	if capacity <= 0 {
		capacity = 1
	}
	return &Bus{mask: mask, buf: make([]Event, capacity)}
}

// NewStage builds a stage for parent: a bus that records nothing itself but
// either forwards events to parent immediately (the initial, pass-through
// mode) or, between Buffer and Flush, holds them for ordered replay. A nil
// parent yields a nil (permanently disabled) stage.
func NewStage(parent *Bus) *Bus {
	if parent == nil {
		return nil
	}
	return &Bus{mask: parent.mask, parent: parent}
}

// Parent returns the bus a stage forwards to (nil for ordinary buses).
func (b *Bus) Parent() *Bus {
	if b == nil {
		return nil
	}
	return b.parent
}

// Buffer switches a stage to staging mode: subsequent Emits accumulate
// locally until Flush. No-op on a nil bus or an ordinary (parentless) bus.
func (b *Bus) Buffer() {
	if b == nil || b.parent == nil {
		return
	}
	b.buffering = true
}

// Flush replays a stage's buffered events into its parent in emission order
// and returns the stage to pass-through mode. The staged slice's capacity is
// retained, so a stage flushed every cycle stops allocating once it has seen
// its busiest cycle. No-op on a nil bus or an ordinary bus.
func (b *Bus) Flush() {
	if b == nil || b.parent == nil {
		return
	}
	b.buffering = false
	for i := b.flushed; i < len(b.staged); i++ {
		e := &b.staged[i]
		b.parent.Emit(e.TimePS, e.Kind, e.Src, e.A, e.B)
	}
	b.flushed = 0
	b.staged = b.staged[:0]
}

// FlushUpTo replays the stage's buffered events whose timestamp is <= ps
// into the parent, in emission order, leaving the stage in staging mode and
// the remainder buffered. The shard engine uses it to merge a batched
// window's per-SM stages cycle-major: within one stage, batched timestamps
// are non-decreasing (each SM steps its window cycles in order), so draining
// every stage up to successive cycle boundaries reproduces the sequential
// loop's cycle-major, SM-minor interleaving. No-op on a nil bus or an
// ordinary bus.
func (b *Bus) FlushUpTo(ps int64) {
	if b == nil || b.parent == nil {
		return
	}
	for b.flushed < len(b.staged) {
		e := &b.staged[b.flushed]
		if e.TimePS > ps {
			return
		}
		b.parent.Emit(e.TimePS, e.Kind, e.Src, e.A, e.B)
		b.flushed++
	}
}

// Enabled reports whether events of kind k would be recorded. Components
// may use it to skip payload computation ahead of an Emit.
func (b *Bus) Enabled(k Kind) bool {
	return b != nil && b.mask.Has(k)
}

// Emit records one event. On a nil bus or a masked-out kind this is a
// branch and a return: no allocation, no write. The hot path of every
// instrumented component runs through here.
//
//eqlint:emitpath
func (b *Bus) Emit(timePS int64, k Kind, src int16, a, v int64) {
	if b == nil || !b.mask.Has(k) {
		return
	}
	if b.parent != nil {
		if b.buffering {
			// A staging append is unreachable on the disabled path (nil/mask
			// returned above) and amortized: Flush retains the slice capacity,
			// so a stage stops allocating after its busiest cycle.
			//eqlint:allow probehygiene -- staging only runs enabled+buffering; capacity is retained across Flush
			b.staged = append(b.staged, Event{TimePS: timePS, Kind: k, Src: src, A: a, B: v})
			return
		}
		b.parent.Emit(timePS, k, src, a, v)
		return
	}
	e := &b.buf[b.head]
	e.TimePS, e.Kind, e.Src, e.A, e.B = timePS, k, src, a, v
	b.head++
	if b.head == len(b.buf) {
		b.head = 0
	}
	if b.count < len(b.buf) {
		b.count++
	} else {
		b.dropped++
	}
}

// Len returns the number of retained events.
func (b *Bus) Len() int {
	if b == nil {
		return 0
	}
	return b.count
}

// Dropped returns the number of events overwritten by ring wrap-around.
func (b *Bus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped
}

// Mask returns the bus's kind mask.
func (b *Bus) Mask() Mask {
	if b == nil {
		return 0
	}
	return b.mask
}

// Events returns the retained events in emission order (oldest first). The
// returned slice is a copy; the bus keeps recording.
func (b *Bus) Events() []Event {
	if b == nil || b.count == 0 {
		return nil
	}
	out := make([]Event, b.count)
	start := b.head - b.count
	if start < 0 {
		start += len(b.buf)
	}
	n := copy(out, b.buf[start:])
	if n < b.count {
		copy(out[n:], b.buf[:b.head])
	}
	return out
}

// Reset drops all retained events and the drop counter, keeping the mask
// and capacity.
func (b *Bus) Reset() {
	if b == nil {
		return
	}
	b.head, b.count, b.dropped = 0, 0, 0
	b.buffering = false
	b.staged = b.staged[:0]
	b.flushed = 0
}
