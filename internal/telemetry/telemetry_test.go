package telemetry

import (
	"testing"
)

func TestBusRecordsInOrder(t *testing.T) {
	b := NewBus(8, MaskAll)
	for i := int64(0); i < 5; i++ {
		b.Emit(i*100, KindEpoch, -1, i, 0)
	}
	if b.Len() != 5 || b.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d", b.Len(), b.Dropped())
	}
	ev := b.Events()
	for i, e := range ev {
		if e.A != int64(i) || e.TimePS != int64(i)*100 {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
}

func TestBusWrapsOverwritingOldest(t *testing.T) {
	b := NewBus(4, MaskAll)
	for i := int64(0); i < 6; i++ {
		b.Emit(i, KindEpoch, -1, i, 0)
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
	if b.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", b.Dropped())
	}
	ev := b.Events()
	if len(ev) != 4 || ev[0].A != 2 || ev[3].A != 5 {
		t.Fatalf("want events 2..5 oldest-first, got %+v", ev)
	}
}

func TestBusMaskFilters(t *testing.T) {
	b := NewBus(8, MaskOf(KindEpoch))
	b.Emit(0, KindWarpIssue, 0, 0, 0)
	b.Emit(0, KindL1Access, 0, 0, 0)
	b.Emit(0, KindEpoch, -1, 1, 0)
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want only the masked-in kind", b.Len())
	}
	if !b.Enabled(KindEpoch) || b.Enabled(KindWarpIssue) {
		t.Fatal("Enabled disagrees with the mask")
	}
}

func TestNilBusIsSafe(t *testing.T) {
	var b *Bus
	b.Emit(0, KindEpoch, -1, 0, 0)
	b.Reset()
	if b.Len() != 0 || b.Dropped() != 0 || b.Mask() != 0 || b.Events() != nil || b.Enabled(KindEpoch) {
		t.Fatal("nil bus must behave as permanently disabled")
	}
}

func TestBusReset(t *testing.T) {
	b := NewBus(2, MaskAll)
	for i := int64(0); i < 5; i++ {
		b.Emit(i, KindEpoch, -1, i, 0)
	}
	b.Reset()
	if b.Len() != 0 || b.Dropped() != 0 {
		t.Fatal("Reset must clear events and the drop counter")
	}
	b.Emit(9, KindEpoch, -1, 9, 0)
	if ev := b.Events(); len(ev) != 1 || ev[0].A != 9 {
		t.Fatalf("bus unusable after Reset: %+v", ev)
	}
}

// TestDisabledEmitIsAllocationFree is the self-overhead guarantee: simulator
// components keep probes permanently wired, so the disabled path must never
// allocate.
func TestDisabledEmitIsAllocationFree(t *testing.T) {
	var nilBus *Bus
	if n := testing.AllocsPerRun(1000, func() {
		nilBus.Emit(42, KindWarpIssue, 3, 7, 1)
	}); n != 0 {
		t.Errorf("nil-bus Emit allocates %.1f per op", n)
	}
	masked := NewBus(16, MaskOf(KindEpoch))
	if n := testing.AllocsPerRun(1000, func() {
		masked.Emit(42, KindWarpIssue, 3, 7, 1)
	}); n != 0 {
		t.Errorf("masked-out Emit allocates %.1f per op", n)
	}
	enabled := NewBus(16, MaskAll)
	if n := testing.AllocsPerRun(1000, func() {
		enabled.Emit(42, KindWarpIssue, 3, 7, 1)
	}); n != 0 {
		t.Errorf("enabled Emit allocates %.1f per op (ring writes must not allocate)", n)
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(numKinds).String() != "unknown" {
		t.Error("out-of-range kind should be unknown")
	}
}

func BenchmarkEmitDisabledNil(b *testing.B) {
	var bus *Bus
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Emit(int64(i), KindWarpIssue, 3, 7, 1)
	}
}

func BenchmarkEmitDisabledMasked(b *testing.B) {
	bus := NewBus(1<<10, MaskOf(KindEpoch))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Emit(int64(i), KindWarpIssue, 3, 7, 1)
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	bus := NewBus(1<<10, MaskAll)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Emit(int64(i), KindWarpIssue, 3, 7, 1)
	}
}
