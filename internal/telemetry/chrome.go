package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ChromeOptions parameterises the Chrome trace-event export.
type ChromeOptions struct {
	// NumSMs is the machine's SM count; every SM gets a process entry even
	// when it emitted no events, so traces always cover the whole machine.
	NumSMs int
	// Kernel names the traced kernel in kernel spans (optional).
	Kernel string
}

// chromeEvent is one record of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Field order is fixed by the struct so output is deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the exported document.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Process/thread layout of the exported trace:
//
//	pid 0           "machine": kernel spans (tid 0), epochs (tid 1),
//	                VF counters and transition spans (tid 2 SM / tid 3 mem)
//	pid 1+i         "SM i": one thread per block slot holding block
//	                residency spans with nested CTA-pause spans; tid 100
//	                holds per-epoch decision instants.
const (
	machinePID   = 0
	tidKernel    = 0
	tidEpochs    = 1
	tidVFSM      = 2
	tidVFMem     = 3
	tidDecisions = 100
)

func smPID(sm int16) int { return 1 + int(sm) }

// usec converts picoseconds to the format's microsecond timestamps.
func usec(ps int64) float64 { return float64(ps) / 1e6 }

var vfLevelNames = [...]string{"low", "normal", "high"}

func levelName(l int64) string {
	if l >= 0 && int(l) < len(vfLevelNames) {
		return vfLevelNames[l]
	}
	return fmt.Sprintf("level%d", l)
}

var tendencyNames = [...]string{"none", "compute", "memory"}

func tendencyName(t int64) string {
	if t >= 0 && int(t) < len(tendencyNames) {
		return tendencyNames[t]
	}
	return fmt.Sprintf("tendency%d", t)
}

// openSpan tracks an unclosed B-phase event.
type openSpan struct {
	name  string
	cat   string
	start int64
	pid   int
	tid   int
	args  map[string]any
}

// Span is one generic duration event for WriteChromeSpans: a named interval
// on a (process, thread) track with optional category and arguments. It is
// the service/request-trace counterpart of the probe-bus events consumed by
// WriteChromeTrace, sharing the same output document shape.
type Span struct {
	// Name labels the span in the trace viewer.
	Name string
	// Cat is the trace-event category (optional).
	Cat string
	// PID and TID place the span on a track; WriteChromeSpans emits
	// process/thread name metadata from ProcessNames and ThreadNames.
	PID, TID int
	// StartUS and DurUS are the span's start and duration in microseconds.
	StartUS, DurUS float64
	// Args carries extra key/value detail shown on click.
	Args map[string]any
}

// SpanOptions parameterises WriteChromeSpans.
type SpanOptions struct {
	// ProcessNames maps PIDs to display names (optional).
	ProcessNames map[int]string
	// ThreadNames maps (PID, TID) pairs — keyed pid<<32|tid — to display
	// names; use ThreadKey to build keys (optional).
	ThreadNames map[int64]string
}

// ThreadKey builds a ThreadNames key for (pid, tid).
func ThreadKey(pid, tid int) int64 { return int64(pid)<<32 | int64(uint32(tid)) }

// WriteChromeSpans renders generic spans as Chrome trace-event JSON loadable
// in Perfetto or chrome://tracing. Output is deterministic for a fixed span
// slice: metadata is emitted in sorted PID/TID order and spans in input
// order.
func WriteChromeSpans(w io.Writer, spans []Span, opts SpanOptions) error {
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	pids := make([]int, 0, len(opts.ProcessNames))
	for pid := range opts.ProcessNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": opts.ProcessNames[pid]},
		})
	}
	tkeys := make([]int64, 0, len(opts.ThreadNames))
	for k := range opts.ThreadNames {
		tkeys = append(tkeys, k)
	}
	sort.Slice(tkeys, func(i, j int) bool { return tkeys[i] < tkeys[j] })
	for _, k := range tkeys {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: int(k >> 32), TID: int(uint32(k)),
			Args: map[string]any{"name": opts.ThreadNames[k]},
		})
	}
	for _, s := range spans {
		d := s.DurUS
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X", TS: s.StartUS, Dur: &d,
			PID: s.PID, TID: s.TID, Args: s.Args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteChromeTrace renders a probe-bus event stream as Chrome trace-event
// JSON loadable in Perfetto or chrome://tracing. Events must be in emission
// order (as returned by Bus.Events). Spans left open at the end of the
// stream — and spans whose opening event was overwritten by ring
// wrap-around — are tolerated: the former are closed at the final
// timestamp, the latter are dropped.
func WriteChromeTrace(w io.Writer, events []Event, opts ChromeOptions) error {
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}

	// Metadata: name every process and fixed thread up front.
	meta := func(pid int, tid int, key, value string) {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: key, Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": value},
		})
	}
	meta(machinePID, 0, "process_name", "machine")
	meta(machinePID, tidKernel, "thread_name", "kernel")
	meta(machinePID, tidEpochs, "thread_name", "epochs")
	meta(machinePID, tidVFSM, "thread_name", "vf sm domain")
	meta(machinePID, tidVFMem, "thread_name", "vf mem domain")
	for i := 0; i < opts.NumSMs; i++ {
		meta(smPID(int16(i)), 0, "process_name", fmt.Sprintf("SM %d", i))
	}

	var end int64
	for _, e := range events {
		if e.TimePS > end {
			end = e.TimePS
		}
	}

	complete := func(name, cat string, startPS, endPS int64, pid, tid int, args map[string]any) {
		d := usec(endPS - startPS)
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: name, Cat: cat, Ph: "X", TS: usec(startPS), Dur: &d,
			PID: pid, TID: tid, Args: args,
		})
	}
	instant := func(name, cat string, ps int64, pid, tid int, args map[string]any) {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: name, Cat: cat, Ph: "i", TS: usec(ps), PID: pid, TID: tid, Args: args,
		})
	}
	counter := func(name string, ps int64, pid, tid int, args map[string]any) {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: name, Ph: "C", TS: usec(ps), PID: pid, TID: tid, Args: args,
		})
	}

	type slotKey struct {
		sm   int16
		slot int64
	}
	openKernels := map[int16]*openSpan{}
	openBlocks := map[slotKey]*openSpan{}
	openPauses := map[slotKey]*openSpan{}
	vfRequestPS := map[int16]int64{}
	var lastEpochPS int64

	kernelName := opts.Kernel
	if kernelName == "" {
		kernelName = "kernel"
	}

	for _, e := range events {
		switch e.Kind {
		case KindKernelBegin:
			openKernels[e.Src] = &openSpan{
				name:  fmt.Sprintf("%s inv %d", kernelName, e.A),
				start: e.TimePS,
				args:  map[string]any{"partition": int(e.Src), "invocation": e.A},
			}
			if len(openKernels) == 1 {
				lastEpochPS = e.TimePS
			}
		case KindKernelEnd:
			if s, ok := openKernels[e.Src]; ok {
				complete(s.name, "kernel", s.start, e.TimePS, machinePID, tidKernel, s.args)
				delete(openKernels, e.Src)
			}
		case KindEpoch:
			smStep, memStep := e.B>>2-1, e.B&3-1
			complete(fmt.Sprintf("epoch %d", e.A), "epoch", lastEpochPS, e.TimePS,
				machinePID, tidEpochs,
				map[string]any{"epoch": e.A, "smVote": smStep, "memVote": memStep})
			lastEpochPS = e.TimePS
		case KindEpochDecision:
			instant(tendencyName(e.A), "decision", e.TimePS, smPID(e.Src), tidDecisions,
				map[string]any{"tendency": tendencyName(e.A), "blockDelta": e.B})
		case KindVFRequest:
			vfRequestPS[e.Src] = e.TimePS
		case KindVFShift:
			tid := tidVFSM
			domain := "sm"
			if e.Src == DomainMem {
				tid = tidVFMem
				domain = "mem"
			}
			counter("vf "+domain+" level", e.TimePS, machinePID, tid,
				map[string]any{"level": e.A})
			if req, ok := vfRequestPS[e.Src]; ok && e.B > 0 {
				complete("vf shift to "+levelName(e.A), "vf", req, e.TimePS,
					machinePID, tid, map[string]any{"latencyPS": e.B})
				delete(vfRequestPS, e.Src)
			}
		case KindBlockLaunch:
			slot := e.B >> 16
			openBlocks[slotKey{e.Src, slot}] = &openSpan{
				name:  fmt.Sprintf("block %d", e.A),
				start: e.TimePS,
				tid:   int(slot),
				args:  map[string]any{"block": e.A, "wcta": e.B & 0xffff},
			}
		case KindBlockFinish:
			k := slotKey{e.Src, e.B}
			if p, ok := openPauses[k]; ok {
				// A pause span must close inside its block span.
				complete("paused", "cta", p.start, e.TimePS, smPID(e.Src), int(e.B), nil)
				delete(openPauses, k)
			}
			if s, ok := openBlocks[k]; ok {
				complete(s.name, "block", s.start, e.TimePS, smPID(e.Src), s.tid, s.args)
				delete(openBlocks, k)
			}
		case KindCTAPause:
			openPauses[slotKey{e.Src, e.A}] = &openSpan{start: e.TimePS}
		case KindCTAUnpause:
			k := slotKey{e.Src, e.A}
			if p, ok := openPauses[k]; ok {
				complete("paused", "cta", p.start, e.TimePS, smPID(e.Src), int(e.A), nil)
				delete(openPauses, k)
			}
		case KindICNTQueue:
			counter("icnt queue", e.TimePS, smPID(e.Src), 0,
				map[string]any{"depth": e.A})
		case KindDRAMRowMiss:
			instant(fmt.Sprintf("row miss bank %d", e.Src), "dram", e.TimePS,
				machinePID, tidVFMem+1+int(e.Src), map[string]any{"row": e.B})
		}
	}

	// Close anything still open at the trace end so Perfetto renders it.
	closeRemaining := func(spans map[slotKey]*openSpan, cat string, fallback string) {
		keys := make([]slotKey, 0, len(spans))
		for k := range spans {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].sm != keys[j].sm {
				return keys[i].sm < keys[j].sm
			}
			return keys[i].slot < keys[j].slot
		})
		for _, k := range keys {
			s := spans[k]
			name := s.name
			if name == "" {
				name = fallback
			}
			tid := s.tid
			if cat == "cta" {
				tid = int(k.slot)
			}
			complete(name, cat, s.start, end, smPID(k.sm), tid, s.args)
		}
	}
	closeRemaining(openPauses, "cta", "paused")
	closeRemaining(openBlocks, "block", "block")
	{
		keys := make([]int16, 0, len(openKernels))
		for k := range openKernels {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			s := openKernels[k]
			complete(s.name, "kernel", s.start, end, machinePID, tidKernel, s.args)
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
