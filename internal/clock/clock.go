// Package clock implements the multi-domain DVFS timeline of the simulated
// GPU. The SM cores and the memory system (interconnect, L2, memory
// controller, DRAM) run on independent voltage/frequency domains; each domain
// is a Domain whose period changes with its VFLevel. A global integer
// picosecond timeline lets the two domains interleave deterministically.
package clock

import (
	"fmt"

	"equalizer/internal/config"
)

// Time is an absolute simulation time in picoseconds.
type Time int64

// Domain is one voltage/frequency domain: a cycle counter plus the wall-clock
// time of its next cycle boundary. Frequency transitions are not instant: a
// requested level becomes effective only after the configured regulator
// delay, mirroring the 512-SM-cycle on-chip VRM of Section V-A.
type Domain struct {
	name       string
	nominalPS  float64
	modulation float64

	level   config.VFLevel
	pending config.VFLevel
	// switchAt is the time at which pending becomes effective; zero when no
	// transition is in flight.
	switchAt Time
	hasSwap  bool

	cycle int64
	next  Time

	// residency accumulates wall time spent at each level, for Figure 9.
	residency  [3]Time
	lastUpdate Time
}

// NewDomain creates a domain with the given nominal period in picoseconds and
// modulation fraction, starting at VFNormal with its first cycle boundary at
// time zero.
func NewDomain(name string, nominalPS int64, modulation float64) *Domain {
	if nominalPS <= 0 {
		panic(fmt.Sprintf("clock: non-positive nominal period %d for domain %s", nominalPS, name))
	}
	return &Domain{
		name:       name,
		nominalPS:  float64(nominalPS),
		modulation: modulation,
		level:      config.VFNormal,
	}
}

// Name returns the domain's label.
func (d *Domain) Name() string { return d.name }

// Level returns the currently effective VF level.
func (d *Domain) Level() config.VFLevel { return d.level }

// PendingLevel returns the level that will become effective after the
// in-flight regulator transition, or the current level when none is pending.
func (d *Domain) PendingLevel() config.VFLevel {
	if d.hasSwap {
		return d.pending
	}
	return d.level
}

// Cycle returns the number of completed cycles.
func (d *Domain) Cycle() int64 { return d.cycle }

// Next returns the time of the next cycle boundary.
func (d *Domain) Next() Time { return d.next }

// Frequency returns the current frequency multiplier relative to nominal.
func (d *Domain) Frequency() float64 { return d.level.Multiplier(d.modulation) }

// Voltage returns the current voltage multiplier relative to nominal; the
// paper assumes voltage scales linearly with frequency.
func (d *Domain) Voltage() float64 { return d.Frequency() }

// period returns the current cycle period in picoseconds.
func (d *Domain) period() Time {
	p := Time(d.nominalPS / d.level.Multiplier(d.modulation))
	if p <= 0 {
		p = 1
	}
	return p
}

// RequestLevel schedules a transition to the target level. The change takes
// effect at time `effective`; requesting the current (or already pending)
// level is a no-op. Only one transition can be in flight: a new request
// overrides an unrealized one.
func (d *Domain) RequestLevel(target config.VFLevel, effective Time) {
	if !target.Valid() {
		panic(fmt.Sprintf("clock: invalid VF level %d requested on domain %s", target, d.name))
	}
	if target == d.level && !d.hasSwap {
		return
	}
	if d.hasSwap && target == d.pending {
		return
	}
	d.pending = target
	d.switchAt = effective
	d.hasSwap = target != d.level
}

// Tick advances the domain by one cycle and returns the time at which that
// cycle completed. Pending VF transitions are applied at cycle boundaries
// once their effective time has been reached.
//
//eqlint:cycle-owner
func (d *Domain) Tick() Time {
	t := d.next
	d.accumulateResidency(t)
	if d.hasSwap && t >= d.switchAt {
		d.level = d.pending
		d.hasSwap = false
	}
	d.cycle++
	d.next = t + d.period()
	return t
}

// SwitchPending returns the effective time of the in-flight VF transition,
// and false when none is pending. Bulk advancement (TickN) must stop short of
// this boundary so the transition is applied by an ordinary Tick.
func (d *Domain) SwitchPending() (Time, bool) {
	return d.switchAt, d.hasSwap
}

// TickN advances the domain by n cycles at once and returns the time of the
// last completed cycle boundary — exactly what the n-th of n successive
// Tick calls would return. It is only legal when no pending VF transition
// falls inside the advanced span (the period, and hence every intermediate
// boundary, is then constant, so residency accumulation is linear); callers
// cap n using SwitchPending. It panics when the cap was violated.
//
//eqlint:cycle-owner
func (d *Domain) TickN(n int64) Time {
	if n <= 0 {
		panic(fmt.Sprintf("clock: TickN(%d) on domain %s", n, d.name))
	}
	last := d.next + Time(n-1)*d.period()
	if d.hasSwap && last >= d.switchAt {
		panic(fmt.Sprintf("clock: TickN(%d) on domain %s crosses VF switch at %d (last boundary %d)",
			n, d.name, d.switchAt, last))
	}
	d.accumulateResidency(last)
	d.cycle += n
	d.next = last + d.period()
	return last
}

func (d *Domain) accumulateResidency(now Time) {
	if now > d.lastUpdate {
		d.residency[d.level] += now - d.lastUpdate
		d.lastUpdate = now
	}
}

// Residency returns the wall time spent at each VF level up to the last tick.
func (d *Domain) Residency() (low, normal, high Time) {
	return d.residency[config.VFLow], d.residency[config.VFNormal], d.residency[config.VFHigh]
}

// CyclesToTime converts a cycle count at the current operating point into
// wall time. It is used for regulator-delay arithmetic.
func (d *Domain) CyclesToTime(cycles int) Time {
	return Time(cycles) * d.period()
}
