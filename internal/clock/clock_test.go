package clock

import (
	"testing"
	"testing/quick"

	"equalizer/internal/config"
)

func TestDomainTickAdvancesMonotonically(t *testing.T) {
	d := NewDomain("sm", 1000, 0.15)
	var prev Time = -1
	for i := 0; i < 100; i++ {
		now := d.Tick()
		if now <= prev {
			t.Fatalf("tick %d: time %d not after %d", i, now, prev)
		}
		prev = now
	}
	if d.Cycle() != 100 {
		t.Fatalf("cycle count = %d, want 100", d.Cycle())
	}
}

func TestDomainPeriodScalesWithLevel(t *testing.T) {
	d := NewDomain("sm", 1000, 0.15)
	d.Tick() // t=0 boundary
	base := d.Tick() - 0
	if base != 1000 {
		t.Fatalf("normal period = %d, want 1000", base)
	}

	d.RequestLevel(config.VFHigh, 0)
	t0 := d.Tick()
	t1 := d.Tick()
	high := t1 - t0
	if high >= 1000 {
		t.Fatalf("high period = %d, want < 1000", high)
	}

	d.RequestLevel(config.VFLow, 0)
	t0 = d.Tick()
	t1 = d.Tick()
	low := t1 - t0
	if low <= 1000 {
		t.Fatalf("low period = %d, want > 1000", low)
	}
	// 1000/0.85 ≈ 1176, 1000/1.15 ≈ 869.
	if low != 1176 || high != 869 {
		t.Fatalf("periods low=%d high=%d, want 1176 and 869", low, high)
	}
}

func TestDomainTransitionDelay(t *testing.T) {
	d := NewDomain("sm", 1000, 0.15)
	// Request high, effective only at t=5000.
	d.RequestLevel(config.VFHigh, 5000)
	var last Time
	for d.Level() == config.VFNormal {
		last = d.Tick()
		if last > 10000 {
			t.Fatalf("transition never applied")
		}
	}
	if last < 5000 {
		t.Fatalf("transition applied at %d, before effective time 5000", last)
	}
	if d.Level() != config.VFHigh {
		t.Fatalf("level = %v, want high", d.Level())
	}
}

func TestRequestSameLevelIsNoOp(t *testing.T) {
	d := NewDomain("mem", 1000, 0.15)
	d.RequestLevel(config.VFNormal, 100)
	if d.PendingLevel() != config.VFNormal {
		t.Fatalf("pending = %v, want normal", d.PendingLevel())
	}
	d.RequestLevel(config.VFHigh, 100)
	if d.PendingLevel() != config.VFHigh {
		t.Fatalf("pending = %v, want high", d.PendingLevel())
	}
	// Re-requesting the pending level must not extend the transition.
	d.RequestLevel(config.VFHigh, 99999)
	for i := 0; i < 2; i++ {
		d.Tick()
	}
	if d.Level() != config.VFHigh {
		t.Fatalf("level = %v after effective time, want high", d.Level())
	}
}

func TestResidencyAccounting(t *testing.T) {
	d := NewDomain("sm", 1000, 0.15)
	for i := 0; i < 10; i++ {
		d.Tick()
	}
	d.RequestLevel(config.VFLow, 0)
	for i := 0; i < 10; i++ {
		d.Tick()
	}
	low, normal, high := d.Residency()
	if high != 0 {
		t.Fatalf("high residency = %d, want 0", high)
	}
	if normal == 0 || low == 0 {
		t.Fatalf("residency normal=%d low=%d, want both positive", normal, low)
	}
	total := low + normal + high
	// Residency is accumulated up to the last tick boundary.
	if total <= 0 {
		t.Fatalf("total residency %d not positive", total)
	}
}

// Property: ticking any domain is strictly monotonic in time regardless of
// the sequence of level requests.
func TestQuickMonotonicUnderRandomDVFS(t *testing.T) {
	f := func(levels []uint8) bool {
		d := NewDomain("sm", 1000, 0.15)
		prev := Time(-1)
		for i, l := range levels {
			d.RequestLevel(config.VFLevel(int(l)%3), d.Next())
			now := d.Tick()
			if now <= prev {
				return false
			}
			prev = now
			if i > 512 {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTickNMatchesRepeatedTick drives two identical domains — one by n
// single Ticks, one by a single TickN(n) — through a level change and asserts
// identical return value, cycle count, next boundary and residency.
func TestTickNMatchesRepeatedTick(t *testing.T) {
	for _, n := range []int64{1, 2, 7, 512, 4096} {
		single := NewDomain("sm", 1000, 0.15)
		bulk := NewDomain("sm", 1000, 0.15)
		// Establish a non-normal level first so residency attribution at a
		// non-default operating point is covered.
		single.RequestLevel(config.VFHigh, 0)
		bulk.RequestLevel(config.VFHigh, 0)
		single.Tick()
		bulk.Tick()

		var lastSingle Time
		for i := int64(0); i < n; i++ {
			lastSingle = single.Tick()
		}
		lastBulk := bulk.TickN(n)

		if lastSingle != lastBulk {
			t.Fatalf("n=%d: TickN returned %d, %d Ticks returned %d", n, lastBulk, n, lastSingle)
		}
		if single.Cycle() != bulk.Cycle() {
			t.Fatalf("n=%d: cycle %d vs %d", n, bulk.Cycle(), single.Cycle())
		}
		if single.Next() != bulk.Next() {
			t.Fatalf("n=%d: next %d vs %d", n, bulk.Next(), single.Next())
		}
		sl, sn, sh := single.Residency()
		bl, bn, bh := bulk.Residency()
		if sl != bl || sn != bn || sh != bh {
			t.Fatalf("n=%d: residency (%d,%d,%d) vs (%d,%d,%d)", n, bl, bn, bh, sl, sn, sh)
		}
	}
}

// TestTickNRefusesToCrossSwitch pins the legality contract: a bulk advance
// whose last boundary reaches a pending VF transition must panic — the
// caller is required to cap n via SwitchPending.
func TestTickNRefusesToCrossSwitch(t *testing.T) {
	d := NewDomain("sm", 1000, 0.15)
	d.RequestLevel(config.VFHigh, 5000)
	if at, ok := d.SwitchPending(); !ok || at != 5000 {
		t.Fatalf("SwitchPending = (%d,%v), want (5000,true)", at, ok)
	}
	// Boundaries 0..4000 are fine; boundary 5000 applies the swap.
	if last := d.TickN(5); last != 4000 {
		t.Fatalf("TickN(5) = %d, want 4000", last)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TickN across a pending switch did not panic")
		}
	}()
	d.TickN(1) // boundary 5000: must panic
}

func TestCyclesToTime(t *testing.T) {
	d := NewDomain("sm", 1000, 0.15)
	if got := d.CyclesToTime(512); got != 512*1000 {
		t.Fatalf("CyclesToTime(512) = %d, want 512000", got)
	}
	d.RequestLevel(config.VFHigh, 0)
	d.Tick()
	if got := d.CyclesToTime(100); got != 100*869 {
		t.Fatalf("CyclesToTime(100)@high = %d, want %d", got, 100*869)
	}
}
