// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation on the simulated GPU. Each FigureN /
// TableN method runs the required kernel×policy×operating-point grid and
// returns structured data plus a formatted text rendering, so the same code
// backs the eqbench command, the benchmark suite, and the integration tests.
package exp

import (
	"fmt"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/metrics"
	"equalizer/internal/policy"
	"equalizer/internal/power"
)

// Options configures a harness.
type Options struct {
	// GPU and Power are the machine model; zero values mean the defaults.
	GPU   *config.GPU
	Power *power.Config
	// GridScale multiplies every kernel's grid size (0 < s <= 1 shrinks
	// runs for smoke tests; 0 means 1.0).
	GridScale float64
}

// Harness runs experiments. It memoises (kernel, configuration) results so
// figures that share runs — e.g. every figure needs the baseline — do not
// resimulate. Not safe for concurrent use.
type Harness struct {
	gpuCfg config.GPU
	pwrCfg power.Config
	scale  float64
	memo   map[runKey]Totals
}

// New builds a harness.
func New(opts Options) *Harness {
	h := &Harness{
		gpuCfg: config.Default(),
		pwrCfg: power.Default(),
		scale:  1.0,
		memo:   make(map[runKey]Totals),
	}
	if opts.GPU != nil {
		h.gpuCfg = *opts.GPU
	}
	if opts.Power != nil {
		h.pwrCfg = *opts.Power
	}
	if opts.GridScale > 0 {
		h.scale = opts.GridScale
	}
	return h
}

// Totals aggregates a kernel's full launch sequence (all invocations).
type Totals struct {
	TimePS    int64
	EnergyJ   float64
	SMCycles  int64
	L1Hit     float64
	DRAMUtil  float64
	Residency gpu.Residency
	// PerInvocationPS holds each invocation's wall time.
	PerInvocationPS []int64
}

// Speedup returns base.Time / t.Time.
func (t Totals) Speedup(base Totals) float64 {
	return float64(base.TimePS) / float64(t.TimePS)
}

// SpeedupErr is Speedup with error reporting: a run that recorded zero
// simulated time (a failed or empty kernel launch) returns an error instead
// of propagating Inf or NaN into downstream aggregates.
func (t Totals) SpeedupErr(base Totals) (float64, error) {
	return metrics.RatioErr(float64(base.TimePS), float64(t.TimePS))
}

// EnergyDelta returns t.Energy/base.Energy - 1 (positive = more energy).
func (t Totals) EnergyDelta(base Totals) float64 {
	return t.EnergyJ/base.EnergyJ - 1
}

// EnergySavings returns 1 - t.Energy/base.Energy.
func (t Totals) EnergySavings(base Totals) float64 {
	return 1 - t.EnergyJ/base.EnergyJ
}

// Efficiency returns the paper's energy-efficiency metric: baseline energy
// divided by this configuration's energy (higher = less energy used).
func (t Totals) Efficiency(base Totals) float64 {
	return base.EnergyJ / t.EnergyJ
}

// Setup names one machine configuration for a run.
type Setup struct {
	// Policy is "baseline", "equalizer-energy", "equalizer-perf", "dynCTA",
	// "ccws", or "blocks=N".
	Policy string
	// SM and Mem are the static VF levels applied before the run.
	SM, Mem config.VFLevel
	// Blocks pins the per-SM block target when > 0 (with Policy "blocks").
	Blocks int
	// DisableFrequency turns off Equalizer's VF control (Figure 11a).
	DisableFrequency bool
}

// Baseline is the stock machine: all levels nominal, maximum blocks.
func Baseline() Setup { return Setup{Policy: "baseline", SM: config.VFNormal, Mem: config.VFNormal} }

// StaticVF is the baseline at a fixed VF operating point.
func StaticVF(sm, mem config.VFLevel) Setup { return Setup{Policy: "baseline", SM: sm, Mem: mem} }

// StaticBlocks pins the block count at nominal frequency.
func StaticBlocks(n int) Setup {
	return Setup{Policy: "blocks", SM: config.VFNormal, Mem: config.VFNormal, Blocks: n}
}

// EqualizerSetup runs the Equalizer policy in the given mode.
func EqualizerSetup(mode core.Mode) Setup {
	name := "equalizer-perf"
	if mode == core.EnergyMode {
		name = "equalizer-energy"
	}
	return Setup{Policy: name, SM: config.VFNormal, Mem: config.VFNormal}
}

type runKey struct {
	kernel string
	setup  Setup
}

// buildPolicy constructs the gpu.Policy for a setup; nil means no tuning.
func (h *Harness) buildPolicy(s Setup) gpu.Policy {
	switch s.Policy {
	case "baseline", "":
		return nil
	case "blocks":
		return policy.NewStaticBlocks(s.Blocks)
	case "equalizer-energy":
		eq := core.New(core.EnergyMode)
		eq.DisableFrequency = s.DisableFrequency
		return eq
	case "equalizer-perf":
		eq := core.New(core.PerformanceMode)
		eq.DisableFrequency = s.DisableFrequency
		return eq
	case "dynCTA":
		return policy.NewDynCTA()
	case "ccws":
		return policy.NewCCWS()
	default:
		panic(fmt.Sprintf("exp: unknown policy %q", s.Policy))
	}
}

// scaled returns k with its grid scaled by the harness factor.
func (h *Harness) scaled(k kernels.Kernel) kernels.Kernel {
	if h.scale == 1.0 {
		return k
	}
	return k.WithGridScale(h.scale, h.gpuCfg.NumSMs)
}

// Run simulates a kernel's full launch sequence under a setup, memoised.
func (h *Harness) Run(k kernels.Kernel, s Setup) (Totals, error) {
	key := runKey{kernel: k.Name, setup: s}
	if t, ok := h.memo[key]; ok {
		return t, nil
	}
	kk := h.scaled(k)
	m, err := gpu.New(h.gpuCfg, h.pwrCfg, h.buildPolicy(s))
	if err != nil {
		return Totals{}, err
	}
	m.SetLevelsImmediate(s.SM, s.Mem)
	var t Totals
	for inv := 0; inv < kk.Invocations; inv++ {
		res, err := m.RunKernel(kk, inv)
		if err != nil {
			return Totals{}, err
		}
		t.TimePS += res.TimePS
		t.EnergyJ += res.EnergyJ()
		t.SMCycles += res.SMCycles
		t.L1Hit = res.L1HitRate // last invocation's value; fine for 1-inv kernels
		t.DRAMUtil = res.DRAMUtil
		for i := 0; i < 3; i++ {
			t.Residency.SM[i] += res.Residency.SM[i]
			t.Residency.Mem[i] += res.Residency.Mem[i]
		}
		t.PerInvocationPS = append(t.PerInvocationPS, res.TimePS)
	}
	h.memo[key] = t
	return t, nil
}

// MustRun is Run but panics on error; experiment code treats simulator
// failures as fatal.
func (h *Harness) MustRun(k kernels.Kernel, s Setup) Totals {
	t, err := h.Run(k, s)
	if err != nil {
		panic(err)
	}
	return t
}

// BestStaticBlocks sweeps the block count and returns the best-performing
// count and its totals.
func (h *Harness) BestStaticBlocks(k kernels.Kernel) (int, Totals) {
	maxBlocks := k.MaxResidentBlocks(h.gpuCfg.MaxWarpsPerSM)
	best, bestT := 0, Totals{}
	for b := 1; b <= maxBlocks; b++ {
		t := h.MustRun(k, StaticBlocks(b))
		if best == 0 || t.TimePS < bestT.TimePS {
			best, bestT = b, t
		}
	}
	return best, bestT
}

// KernelNames returns the kernels in presentation order (by category).
func KernelNames() []string {
	var names []string
	for _, k := range kernels.All() {
		names = append(names, k.Name)
	}
	return names
}
