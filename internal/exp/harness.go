// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation on the simulated GPU. Each FigureN /
// TableN method runs the required kernel×policy×operating-point grid and
// returns structured data plus a formatted text rendering, so the same code
// backs the eqbench command, the benchmark suite, and the integration tests.
package exp

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/exp/runcache"
	"equalizer/internal/exp/workpool"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/metrics"
	"equalizer/internal/policy"
	"equalizer/internal/power"
	"equalizer/internal/telemetry"
)

// Options configures a harness.
type Options struct {
	// GPU and Power are the machine model; zero values mean the defaults.
	GPU   *config.GPU
	Power *power.Config
	// GridScale multiplies every kernel's grid size (0 < s <= 1 shrinks
	// runs for smoke tests; 0 means 1.0).
	GridScale float64
	// Parallelism bounds the number of simulations in flight at once:
	// 0 means GOMAXPROCS, 1 runs one simulation at a time. Every
	// parallelism produces byte-identical figure renderings — each run
	// owns its gpu.Machine, and figures aggregate results in declaration
	// order from the memo, never in completion order.
	Parallelism int
	// SMShards sets each machine's intra-run worker count (gpu.SetSMShards):
	// byte-identical results at any value. 0 derives a default from the
	// host via gpu.AutoShards so the shard workers and the Parallelism
	// worker pool together never oversubscribe the cores — a saturated pool
	// gets sequential machines; a single-run harness gets the whole host.
	// With 0, the width is recomputed per simulation against the LIVE pool
	// size: the service tuner may resize the pool at runtime, and the shard
	// budget tracks it. An explicit positive value pins the width forever.
	SMShards int
	// Cache is the persistent on-disk result store; nil disables disk
	// caching (in-process memoisation always applies).
	Cache *runcache.Cache
	// Registry receives the harness's scheduler and cache counters
	// (exp_runs_total, exp_cache_hits_total, ...). Nil uses a private
	// registry; stats remain available through SchedulerStats.
	Registry *telemetry.Registry
	// Logf receives scheduler diagnostics such as block-sweep cutoffs;
	// nil discards them.
	Logf func(format string, args ...interface{})
	// Now is an injected monotonic clock (nanoseconds). When set, the
	// harness records per-stage latency histograms (exp_stage_seconds:
	// dedup wait, cache lookup, simulation) into the registry. Simulator
	// results never depend on it — it only feeds telemetry — which is why
	// it is injected rather than read from the wall clock: internal/exp is
	// under the nodeterminism analyzer's wall-clock ban, and tests can pass
	// a fake. Nil disables stage timing.
	Now func() int64
}

// Harness runs experiments. It memoises (kernel, configuration) results
// with singleflight semantics so figures that share runs — e.g. every
// figure needs the baseline — simulate each configuration exactly once even
// when prefetches race, and it executes declared run grids on a bounded
// worker pool. Safe for concurrent use.
type Harness struct {
	gpuCfg     config.GPU
	pwrCfg     power.Config
	scale      float64
	par        int
	smShards   int
	autoShards bool
	pool       *workpool.Pool
	cache      *runcache.Cache
	logf       func(format string, args ...interface{})
	now        func() int64

	mu   sync.Mutex
	memo map[runKey]*memoEntry

	// simFault, when set, is consulted at the top of every simulation;
	// a non-nil return aborts the run with that error. Test hook for the
	// errors-are-never-memoized guarantee.
	simFault func() error

	// Scheduler and cache counters, exported through the telemetry
	// registry supplied in Options.
	runs, sims, memoHits                           *telemetry.Counter
	cacheHits, cacheMisses, cacheStores, cacheErrs *telemetry.Counter
	sweepCutoffs                                   *telemetry.Counter
	canceled                                       *telemetry.Counter
	stageDedup, stageCache, stageSim               *telemetry.Histogram
	shardBarriers, shardFallbacks                  *telemetry.Counter
	shardStepTotal, shardFFTotal                   *telemetry.Counter
}

// memoEntry is one singleflight cell: the first requester for a key becomes
// the owner, computes the result, and closes done; concurrent requesters
// block on done (or their own context) and then read the shared result. An
// owner whose attempt fails — cancellation or any other error — removes the
// entry before closing done, so a later request retries instead of
// inheriting the failure forever.
type memoEntry struct {
	done chan struct{}
	t    Totals
	err  error
}

// New builds a harness.
func New(opts Options) *Harness {
	h := &Harness{
		gpuCfg: config.Default(),
		pwrCfg: power.Default(),
		scale:  1.0,
		memo:   make(map[runKey]*memoEntry),
		cache:  opts.Cache,
		logf:   opts.Logf,
	}
	if opts.GPU != nil {
		h.gpuCfg = *opts.GPU
	}
	if opts.Power != nil {
		h.pwrCfg = *opts.Power
	}
	if opts.GridScale > 0 {
		h.scale = opts.GridScale
	}
	h.par = opts.Parallelism
	if h.par <= 0 {
		h.par = runtime.GOMAXPROCS(0)
	}
	h.smShards = opts.SMShards
	if h.smShards <= 0 {
		h.autoShards = true
		h.smShards = gpu.AutoShards(h.par, h.gpuCfg.NumSMs)
	}
	h.pool = workpool.New(h.par)
	if h.logf == nil {
		h.logf = func(string, ...interface{}) {}
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	h.runs = reg.Counter("exp_runs_total", "run requests, including memoised and cached", nil)
	h.sims = reg.Counter("exp_runs_simulated_total", "runs that actually simulated", nil)
	h.memoHits = reg.Counter("exp_memo_hits_total", "runs answered by the in-process memo", nil)
	h.cacheHits = reg.Counter("exp_cache_hits_total", "runs answered by the disk cache", nil)
	h.cacheMisses = reg.Counter("exp_cache_misses_total", "disk cache lookups that missed", nil)
	h.cacheStores = reg.Counter("exp_cache_stores_total", "results written to the disk cache", nil)
	h.cacheErrs = reg.Counter("exp_cache_errors_total", "corrupt or unwritable cache entries", nil)
	h.sweepCutoffs = reg.Counter("exp_sweep_cutoffs_total", "block sweeps stopped early by monotone-tail detection", nil)
	h.canceled = reg.Counter("exp_runs_canceled_total", "runs abandoned by context cancellation before completing", nil)
	h.shardBarriers = reg.Counter("gpu_shard_barrier_waits_total", "phase-barrier rounds crossed by sharded cycle engines", nil)
	h.shardStepTotal = reg.Counter("gpu_shard_cycles_total", "SM cycles stepped by shard workers, by mode",
		telemetry.Labels{"mode": "step"})
	h.shardFFTotal = reg.Counter("gpu_shard_cycles_total", "SM cycles stepped by shard workers, by mode",
		telemetry.Labels{"mode": "fastforward"})
	h.shardFallbacks = reg.Counter("gpu_shard_sequential_fallbacks_total", "sharded runs that fell back to the sequential loop", nil)
	h.now = opts.Now
	if h.now != nil {
		bounds := []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30}
		h.stageDedup = reg.Histogram("exp_stage_seconds", "per-stage run latency",
			bounds, telemetry.Labels{"stage": "dedup"})
		h.stageCache = reg.Histogram("exp_stage_seconds", "per-stage run latency",
			bounds, telemetry.Labels{"stage": "cache_lookup"})
		h.stageSim = reg.Histogram("exp_stage_seconds", "per-stage run latency",
			bounds, telemetry.Labels{"stage": "simulate"})
	}
	return h
}

// observeStage records one stage duration (start..end in injected-clock
// nanoseconds) when stage timing is enabled.
func (h *Harness) observeStage(hist *telemetry.Histogram, startNS int64) {
	if h.now == nil || hist == nil {
		return
	}
	hist.Observe(float64(h.now()-startNS) / 1e9)
}

// clock returns the injected clock reading, or 0 when timing is disabled.
func (h *Harness) clock() int64 {
	if h.now == nil {
		return 0
	}
	return h.now()
}

// Parallelism returns the worker-pool width the harness was configured
// with. A runtime controller may since have resized the pool; Pool().Size()
// is the live width.
func (h *Harness) Parallelism() int { return h.par }

// Pool returns the harness's run worker pool. The simulation service
// executes its admitted run cells through it, and the service tuner resizes
// it at runtime — resizing only changes how many runs execute concurrently,
// never what a run computes.
func (h *Harness) Pool() *workpool.Pool { return h.pool }

// SMShards returns the per-machine intra-run worker count the harness was
// built with. In auto mode this is a snapshot against the initial pool
// width; each simulation recomputes the live value (effectiveShardsAt), so
// a tuner-resized pool shifts the shard budget without rebuilding the
// harness.
func (h *Harness) SMShards() int { return h.smShards }

// effectiveShardsAt returns the shard width a simulation started now should
// use, given the host's scheduler width. An explicit Options.SMShards pins
// the width; auto mode re-derives it from the LIVE pool size, so a pool the
// service tuner has grown to saturation yields sequential machines and a
// shrunken pool hands the freed cores to the shard workers.
func (h *Harness) effectiveShardsAt(procs int) int {
	if !h.autoShards {
		return h.smShards
	}
	return gpu.AutoShardsAt(procs, h.pool.Size(), h.gpuCfg.NumSMs)
}

// SchedulerStats snapshots the harness's run and cache counters.
type SchedulerStats struct {
	Runs        uint64 `json:"runs"`
	Simulated   uint64 `json:"simulated"`
	MemoHits    uint64 `json:"memo_hits"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	CacheStores uint64 `json:"cache_stores"`
	CacheErrors uint64 `json:"cache_errors"`
	SweepCutoff uint64 `json:"sweep_cutoffs"`
	Canceled    uint64 `json:"canceled"`
}

// SchedulerStats returns the current counter values.
func (h *Harness) SchedulerStats() SchedulerStats {
	return SchedulerStats{
		Runs:        h.runs.Value(),
		Simulated:   h.sims.Value(),
		MemoHits:    h.memoHits.Value(),
		CacheHits:   h.cacheHits.Value(),
		CacheMisses: h.cacheMisses.Value(),
		CacheStores: h.cacheStores.Value(),
		CacheErrors: h.cacheErrs.Value(),
		SweepCutoff: h.sweepCutoffs.Value(),
		Canceled:    h.canceled.Value(),
	}
}

// Totals aggregates a kernel's full launch sequence (all invocations).
type Totals struct {
	TimePS   int64
	EnergyJ  float64
	SMCycles int64
	// L1Hit and DRAMUtil are aggregated across invocations weighted by
	// each invocation's SM cycles, so multi-invocation kernels (bfs,
	// mri_g) report true whole-sequence rates.
	L1Hit     float64
	DRAMUtil  float64
	Residency gpu.Residency
	// PerInvocationPS holds each invocation's wall time.
	PerInvocationPS []int64
}

// Speedup returns base.Time / t.Time.
func (t Totals) Speedup(base Totals) float64 {
	return float64(base.TimePS) / float64(t.TimePS)
}

// SpeedupErr is Speedup with error reporting: a run that recorded zero
// simulated time (a failed or empty kernel launch) returns an error instead
// of propagating Inf or NaN into downstream aggregates.
func (t Totals) SpeedupErr(base Totals) (float64, error) {
	return metrics.RatioErr(float64(base.TimePS), float64(t.TimePS))
}

// EnergyDelta returns t.Energy/base.Energy - 1 (positive = more energy).
func (t Totals) EnergyDelta(base Totals) float64 {
	return t.EnergyJ/base.EnergyJ - 1
}

// EnergySavings returns 1 - t.Energy/base.Energy.
func (t Totals) EnergySavings(base Totals) float64 {
	return 1 - t.EnergyJ/base.EnergyJ
}

// Efficiency returns the paper's energy-efficiency metric: baseline energy
// divided by this configuration's energy (higher = less energy used).
func (t Totals) Efficiency(base Totals) float64 {
	return base.EnergyJ / t.EnergyJ
}

// Setup names one machine configuration for a run.
type Setup struct {
	// Policy is "baseline", "equalizer-energy", "equalizer-perf", "dynCTA",
	// "ccws", or "blocks=N".
	Policy string
	// SM and Mem are the static VF levels applied before the run.
	SM, Mem config.VFLevel
	// Blocks pins the per-SM block target when > 0 (with Policy "blocks").
	Blocks int
	// DisableFrequency turns off Equalizer's VF control (Figure 11a).
	DisableFrequency bool
}

// Baseline is the stock machine: all levels nominal, maximum blocks.
func Baseline() Setup { return Setup{Policy: "baseline", SM: config.VFNormal, Mem: config.VFNormal} }

// StaticVF is the baseline at a fixed VF operating point.
func StaticVF(sm, mem config.VFLevel) Setup { return Setup{Policy: "baseline", SM: sm, Mem: mem} }

// StaticBlocks pins the block count at nominal frequency.
func StaticBlocks(n int) Setup {
	return Setup{Policy: "blocks", SM: config.VFNormal, Mem: config.VFNormal, Blocks: n}
}

// EqualizerSetup runs the Equalizer policy in the given mode.
func EqualizerSetup(mode core.Mode) Setup {
	name := "equalizer-perf"
	if mode == core.EnergyMode {
		name = "equalizer-energy"
	}
	return Setup{Policy: name, SM: config.VFNormal, Mem: config.VFNormal}
}

type runKey struct {
	kernel string
	setup  Setup
}

// cacheSchemaVersion invalidates every persistent entry when the simulator
// or the Totals layout changes in a result-affecting way. Bump it whenever
// stored results would no longer match a fresh simulation.
const cacheSchemaVersion = 1

// cacheKey derives the stable content hash identifying one run's result.
func (h *Harness) cacheKey(kernel string, s Setup) string {
	return cacheKeyFor(cacheSchemaVersion, h.gpuCfg, h.pwrCfg, h.scale, kernel, s)
}

// cacheKeyFor hashes everything that determines a run's result. JSON
// marshalling of these flat structs is deterministic (fields in declaration
// order, no maps), so the hash is stable across processes.
func cacheKeyFor(version int, g config.GPU, p power.Config, scale float64, kernel string, s Setup) string {
	payload := struct {
		Schema    int
		Kernel    string
		Setup     Setup
		GPU       config.GPU
		Power     power.Config
		GridScale float64
	}{version, kernel, s, g, p, scale}
	b, err := json.Marshal(payload)
	if err != nil {
		panic(fmt.Sprintf("exp: cache key marshal: %v", err)) // flat structs cannot fail
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// buildPolicy constructs the gpu.Policy for a setup; nil means no tuning.
func (h *Harness) buildPolicy(s Setup) gpu.Policy {
	switch s.Policy {
	case "baseline", "":
		return nil
	case "blocks":
		return policy.NewStaticBlocks(s.Blocks)
	case "equalizer-energy":
		eq := core.New(core.EnergyMode)
		eq.DisableFrequency = s.DisableFrequency
		return eq
	case "equalizer-perf":
		eq := core.New(core.PerformanceMode)
		eq.DisableFrequency = s.DisableFrequency
		return eq
	case "dynCTA":
		return policy.NewDynCTA()
	case "ccws":
		return policy.NewCCWS()
	default:
		panic(fmt.Sprintf("exp: unknown policy %q", s.Policy))
	}
}

// scaled returns k with its grid scaled by the harness factor.
func (h *Harness) scaled(k kernels.Kernel) kernels.Kernel {
	if h.scale == 1.0 {
		return k
	}
	return k.WithGridScale(h.scale, h.gpuCfg.NumSMs)
}

// RunSource says where a RunCtx result came from.
type RunSource string

const (
	// SourceNone marks a request that produced no result (error or
	// cancellation).
	SourceNone RunSource = ""
	// SourceMemo marks a result shared through the in-process
	// singleflight memo.
	SourceMemo RunSource = "memo"
	// SourceCache marks a result loaded from the persistent disk cache.
	SourceCache RunSource = "cache"
	// SourceSim marks a freshly simulated result.
	SourceSim RunSource = "sim"
)

// Run returns the totals of a kernel's full launch sequence under a setup.
// The first request for a key simulates (or loads the persistent cache);
// concurrent requesters for the same key block until that result is ready
// and then share it. Safe for concurrent use.
func (h *Harness) Run(k kernels.Kernel, s Setup) (Totals, error) {
	t, _, err := h.RunCtx(context.Background(), k, s)
	return t, err
}

// isCancellation reports whether err is (or wraps) a context cancellation.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// RunCtx is Run with cancellation: a requester whose context ends while it
// is waiting — on the singleflight memo or between simulated invocations —
// stops consuming a simulation worker instead of running to completion.
// Errors never poison the memo: an owner whose attempt fails (cancellation
// or any other error, e.g. a transient disk fault) removes its entry so the
// next request for the key recomputes. Waiters already attached to a failed
// attempt share its error — except cancellations, which were the owner's
// own deadline, so the waiter starts over with its own context — and a
// waiter that aborts leaves the owner's computation untouched for everyone
// else.
func (h *Harness) RunCtx(ctx context.Context, k kernels.Kernel, s Setup) (Totals, RunSource, error) {
	h.runs.Inc()
	key := runKey{kernel: k.Name, setup: s}
	for {
		if err := ctx.Err(); err != nil {
			h.canceled.Inc()
			return Totals{}, SourceNone, fmt.Errorf("exp: run %s/%s: %w", k.Name, s.Policy, err)
		}
		h.mu.Lock()
		if e, ok := h.memo[key]; ok {
			h.mu.Unlock()
			wait := h.clock()
			select {
			case <-ctx.Done():
				h.canceled.Inc()
				return Totals{}, SourceNone, fmt.Errorf("exp: run %s/%s: %w", k.Name, s.Policy, ctx.Err())
			case <-e.done:
			}
			if e.err != nil && isCancellation(e.err) {
				// The owner abandoned the computation and removed the
				// entry; start over with our own context.
				continue
			}
			h.observeStage(h.stageDedup, wait)
			h.memoHits.Inc()
			return e.t, SourceMemo, e.err
		}
		e := &memoEntry{done: make(chan struct{})}
		h.memo[key] = e
		h.mu.Unlock()
		var src RunSource
		e.t, src, e.err = h.loadOrSimulate(ctx, k, s)
		if e.err != nil {
			if isCancellation(e.err) {
				h.canceled.Inc()
			}
			h.mu.Lock()
			delete(h.memo, key)
			h.mu.Unlock()
		}
		close(e.done)
		return e.t, src, e.err
	}
}

// loadOrSimulate consults the persistent cache before paying for a
// simulation. A corrupt entry is counted, already removed by the cache, and
// healed by re-simulating — never a failure.
func (h *Harness) loadOrSimulate(ctx context.Context, k kernels.Kernel, s Setup) (Totals, RunSource, error) {
	if h.cache == nil {
		t, err := h.simulate(ctx, k, s)
		return t, SourceSim, err
	}
	key := h.cacheKey(k.Name, s)
	var t Totals
	lookup := h.clock()
	ok, err := h.cache.Load(key, &t)
	h.observeStage(h.stageCache, lookup)
	if ok {
		h.cacheHits.Inc()
		return t, SourceCache, nil
	}
	if err != nil {
		h.cacheErrs.Inc()
	} else {
		h.cacheMisses.Inc()
	}
	t, err = h.simulate(ctx, k, s)
	if err != nil {
		return Totals{}, SourceNone, err
	}
	if serr := h.cache.Store(key, t); serr != nil {
		h.cacheErrs.Inc()
	} else {
		h.cacheStores.Inc()
	}
	return t, SourceSim, nil
}

// simulate runs the kernel's full launch sequence on a fresh machine. The
// context is checked between invocations: a canceled request stops at the
// next invocation boundary rather than finishing the whole sequence.
func (h *Harness) simulate(ctx context.Context, k kernels.Kernel, s Setup) (Totals, error) {
	h.sims.Inc()
	simStart := h.clock()
	defer func() { h.observeStage(h.stageSim, simStart) }()
	if h.simFault != nil {
		if err := h.simFault(); err != nil {
			return Totals{}, err
		}
	}
	kk := h.scaled(k)
	m, err := gpu.New(h.gpuCfg, h.pwrCfg, h.buildPolicy(s))
	if err != nil {
		return Totals{}, err
	}
	m.SetSMShards(h.effectiveShardsAt(runtime.GOMAXPROCS(0)))
	defer func() {
		ss := m.ShardStats()
		h.shardBarriers.Add(ss.Barriers)
		h.shardStepTotal.Add(ss.StepCycles)
		h.shardFFTotal.Add(ss.FastForwardCycles)
		h.shardFallbacks.Add(ss.SequentialRuns)
	}()
	m.SetLevelsImmediate(s.SM, s.Mem)
	var t Totals
	var l1Weighted, dramWeighted float64
	for inv := 0; inv < kk.Invocations; inv++ {
		if err := ctx.Err(); err != nil {
			return Totals{}, fmt.Errorf("exp: simulate %s/%s invocation %d: %w", k.Name, s.Policy, inv, err)
		}
		res, err := m.RunKernel(kk, inv)
		if err != nil {
			return Totals{}, err
		}
		t.TimePS += res.TimePS
		t.EnergyJ += res.EnergyJ()
		t.SMCycles += res.SMCycles //eqlint:allow cycleaccounting -- aggregates finished per-invocation results, not live accounting
		l1Weighted += res.L1HitRate * float64(res.SMCycles)
		dramWeighted += res.DRAMUtil * float64(res.SMCycles)
		for i := 0; i < 3; i++ {
			t.Residency.SM[i] += res.Residency.SM[i]
			t.Residency.Mem[i] += res.Residency.Mem[i]
		}
		t.PerInvocationPS = append(t.PerInvocationPS, res.TimePS)
	}
	if t.SMCycles > 0 {
		t.L1Hit = l1Weighted / float64(t.SMCycles)
		t.DRAMUtil = dramWeighted / float64(t.SMCycles)
	}
	return t, nil
}

// MustRun is Run but panics on error; experiment code treats simulator
// failures as fatal.
func (h *Harness) MustRun(k kernels.Kernel, s Setup) Totals {
	t, err := h.Run(k, s)
	if err != nil {
		panic(err)
	}
	return t
}

// RunRequest names one cell of an experiment's run grid.
type RunRequest struct {
	Kernel kernels.Kernel
	Setup  Setup
}

// Prefetch executes a run grid on the worker pool and blocks until every
// result is memoised. Figures declare their full grid up front so the pool
// stays saturated instead of discovering runs one sequential Run at a time.
// Duplicate requests and runs shared with earlier grids dedupe through the
// singleflight memo. Errors are not reported here: the figure's sequential
// aggregation path re-requests each run (a memo hit) and surfaces the error
// exactly where the sequential harness would have.
func (h *Harness) Prefetch(grid []RunRequest) {
	var wg sync.WaitGroup
	seen := make(map[runKey]bool, len(grid))
	for _, r := range grid {
		key := runKey{kernel: r.Kernel.Name, setup: r.Setup}
		if seen[key] {
			continue
		}
		seen[key] = true
		wg.Add(1)
		//eqlint:allow nodeterminism -- prefetch workers only warm the keyed run cache; figure output is read sequentially
		go func(r RunRequest) {
			defer wg.Done()
			h.pool.Do(context.Background(), func() { //nolint:errcheck // background ctx cannot fail; run errors surface on the sequential path
				h.Run(r.Kernel, r.Setup) //nolint:errcheck // surfaced on the sequential path
			})
		}(r)
	}
	wg.Wait()
}

// sweepTail is the number of consecutive worsening block counts after which
// BestStaticBlocks stops refining: once performance decays monotonically for
// this long past the best candidate, the remaining (larger) counts cannot
// realistically beat it — block sweeps on this machine are unimodal with a
// flat or decaying tail (Figure 5).
const sweepTail = 3

// BestStaticBlocks sweeps the block count and returns the best-performing
// count and its totals. Candidates are prefetched through the worker pool in
// chunks of the pool width; the selection itself scans results in ascending
// block order, so the outcome is identical at every parallelism. The sweep
// short-circuits on a monotone worsening tail.
func (h *Harness) BestStaticBlocks(k kernels.Kernel) (int, Totals) {
	maxBlocks := k.MaxResidentBlocks(h.gpuCfg.MaxWarpsPerSM)
	best, bestT := 0, Totals{}
	var prev Totals
	worse := 0
	for lo := 1; lo <= maxBlocks; lo += h.par {
		hi := lo + h.par - 1
		if hi > maxBlocks {
			hi = maxBlocks
		}
		grid := make([]RunRequest, 0, hi-lo+1)
		for b := lo; b <= hi; b++ {
			grid = append(grid, RunRequest{Kernel: k, Setup: StaticBlocks(b)})
		}
		h.Prefetch(grid)
		for b := lo; b <= hi; b++ {
			t := h.MustRun(k, StaticBlocks(b))
			if best == 0 || t.TimePS < bestT.TimePS {
				best, bestT = b, t
				worse = 0
			} else if t.TimePS >= prev.TimePS {
				worse++
			} else {
				worse = 0
			}
			prev = t
			if worse >= sweepTail && b < maxBlocks {
				h.sweepCutoffs.Inc()
				h.logf("exp: %s block sweep cut off at %d/%d blocks (monotone tail, best=%d)",
					k.Name, b, maxBlocks, best)
				return best, bestT
			}
		}
	}
	return best, bestT
}

// KernelNames returns the kernels in presentation order (by category).
func KernelNames() []string {
	var names []string
	for _, k := range kernels.All() {
		names = append(names, k.Name)
	}
	return names
}
