package exp

import (
	"strings"
	"testing"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/kernels"
)

func TestBoostComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	h := smallHarness()
	rows, err := h.BoostComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 27 {
		t.Fatalf("boost comparison has %d rows, want 27", len(rows))
	}
	byName := map[string]BoostRow{}
	for _, r := range rows {
		byName[r.Kernel] = r
	}
	// Boost helps compute kernels about as much as Equalizer...
	if r := byName["cutcp"]; r.Boost < 1.05 {
		t.Errorf("boost on cutcp = %.3f, want a real speedup", r.Boost)
	}
	// ...but cannot help cache-sensitive kernels, where Equalizer shines.
	if r := byName["kmn"]; r.Boost > 1.1 || r.Equalizer < 1.5 {
		t.Errorf("kmn: boost %.3f / equalizer %.3f, want boost flat and equalizer large",
			r.Boost, r.Equalizer)
	}
	// Boost spends energy on memory kernels without buying performance.
	if r := byName["lbm"]; r.Boost > 1.03 && r.BoostEnergy < 0.01 {
		t.Errorf("lbm: boost %.3f at %+.1f%% energy — boost should waste energy here",
			r.Boost, r.BoostEnergy*100)
	}
	out := RenderBoostComparison(rows)
	if !strings.Contains(out, "GMEAN") {
		t.Error("render missing aggregate row")
	}
}

func TestAblationEpochSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	h := New(Options{GridScale: 0.2})
	pts, err := h.AblationEpoch(core.PerformanceMode)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("epoch sweep has %d points, want 5", len(pts))
	}
	for _, p := range pts {
		if p.Speedup <= 0.8 {
			t.Errorf("%s: speedup %.3f collapsed", p.Label, p.Speedup)
		}
	}
}

func TestAblationPointRunsCustomConfig(t *testing.T) {
	h := New(Options{GridScale: 0.2})
	cfg := config.DefaultEqualizer()
	cfg.EpochCycles = 2048
	p, err := h.runAblationPoint("epoch=2048", cfg, core.PerformanceMode)
	if err != nil {
		t.Fatal(err)
	}
	if p.Label != "epoch=2048" || p.Speedup <= 0 {
		t.Fatalf("bad ablation point %+v", p)
	}
}

func TestConcurrentStudyRenders(t *testing.T) {
	h := smallHarness()
	out, err := h.ConcurrentStudy()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cutcp", "lbm", "machine"} {
		if !strings.Contains(out, want) {
			t.Errorf("concurrent study missing %q:\n%s", want, out)
		}
	}
}

func TestAblationKernelSetCoversCategories(t *testing.T) {
	seen := map[kernels.Category]bool{}
	for _, k := range ablationKernels() {
		seen[k.Category] = true
	}
	for _, c := range kernels.Categories() {
		if !seen[c] {
			t.Errorf("ablation set misses category %v", c)
		}
	}
}
