package exp

import (
	"strings"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/metrics"
	"equalizer/internal/policy"
)

// BoostRow compares Equalizer's performance mode against the commercial
// GPU-Boost-style power-headroom controller on one kernel.
type BoostRow struct {
	Kernel   string
	Category kernels.Category
	// Speedups and energy deltas vs the baseline GPU.
	Boost, Equalizer             float64
	BoostEnergy, EqualizerEnergy float64
}

// BoostComparison runs the extension study: Boost raises the core clock on
// power headroom alone, so it matches Equalizer only on compute kernels and
// wastes energy everywhere else.
func (h *Harness) BoostComparison() ([]BoostRow, error) {
	var grid []RunRequest
	for _, k := range kernels.All() {
		grid = append(grid,
			RunRequest{Kernel: k, Setup: Baseline()},
			RunRequest{Kernel: k, Setup: Setup{Policy: "equalizer-perf", SM: config.VFNormal, Mem: config.VFNormal}})
	}
	h.Prefetch(grid)
	var rows []BoostRow
	for _, k := range kernels.All() {
		base, err := h.Run(k, Baseline())
		if err != nil {
			return nil, err
		}
		eq, err := h.Run(k, Setup{Policy: "equalizer-perf", SM: config.VFNormal, Mem: config.VFNormal})
		if err != nil {
			return nil, err
		}

		kk := h.scaled(k)
		m, err := gpu.New(h.gpuCfg, h.pwrCfg, policy.NewPowerBoost())
		if err != nil {
			return nil, err
		}
		var boost Totals
		for inv := 0; inv < kk.Invocations; inv++ {
			res, err := m.RunKernel(kk, inv)
			if err != nil {
				return nil, err
			}
			boost.TimePS += res.TimePS
			boost.EnergyJ += res.EnergyJ()
		}

		rows = append(rows, BoostRow{
			Kernel:          k.Name,
			Category:        k.Category,
			Boost:           boost.Speedup(base),
			Equalizer:       eq.Speedup(base),
			BoostEnergy:     boost.EnergyDelta(base),
			EqualizerEnergy: eq.EnergyDelta(base),
		})
	}
	return rows, nil
}

// ConcurrentStudy runs the multi-kernel extension: a compute kernel and a
// memory kernel share the GPU on disjoint SM partitions. Equalizer's per-SM
// counters classify each partition correctly, but the chip-wide frequency
// manager takes a majority vote, so with a split workload neither boost can
// win — the inefficiency the paper attributes to a shared VRM (Section V-A).
func (h *Harness) ConcurrentStudy() (string, error) {
	compute, err := kernels.ByName("cutcp")
	if err != nil {
		return "", err
	}
	memory, err := kernels.ByName("lbm")
	if err != nil {
		return "", err
	}
	compute = compute.WithGridScale(h.scale*0.5, 7)
	memory = memory.WithGridScale(h.scale*0.5, 7)
	tasks := []gpu.Task{{Kernel: compute}, {Kernel: memory}}

	run := func(p gpu.Policy) (perTask []gpu.Result, total gpu.Result, err error) {
		m, err := gpu.New(h.gpuCfg, h.pwrCfg, p)
		if err != nil {
			return nil, gpu.Result{}, err
		}
		return m.RunConcurrent(tasks)
	}
	baseTasks, baseTotal, err := run(nil)
	if err != nil {
		return "", err
	}
	eqTasks, eqTotal, err := run(policyEqualizerPerf())
	if err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("Extension: concurrent kernels (cutcp ∥ lbm on disjoint SM partitions)\n")
	t := metrics.NewTable("kernel", "baseline ms", "equalizer ms", "speedup")
	for i := range baseTasks {
		t.AddRowf(baseTasks[i].Kernel,
			float64(baseTasks[i].TimePS)/1e9,
			float64(eqTasks[i].TimePS)/1e9,
			float64(baseTasks[i].TimePS)/float64(eqTasks[i].TimePS))
	}
	t.AddRowf("machine", float64(baseTotal.TimePS)/1e9, float64(eqTotal.TimePS)/1e9,
		float64(baseTotal.TimePS)/float64(eqTotal.TimePS))
	b.WriteString(t.String())
	b.WriteString("per-SM counters classify each partition; the shared VRM's majority vote\n" +
		"limits chip-wide frequency shifts when the halves disagree (the paper's\n" +
		"argument for per-SM regulators).\n")
	return b.String(), nil
}

func policyEqualizerPerf() gpu.Policy {
	return core.New(core.PerformanceMode)
}

// RenderBoostComparison formats the extension study.
func RenderBoostComparison(rows []BoostRow) string {
	var b strings.Builder
	b.WriteString("Extension: GPU-Boost-style power-headroom boosting vs Equalizer (performance mode)\n")
	t := metrics.NewTable("kernel", "category", "boost", "equalizer", "boost energy", "eq energy")
	var bs, es, be, ee []float64
	for _, r := range rows {
		t.AddRowf(r.Kernel, r.Category.String(), r.Boost, r.Equalizer,
			metrics.Pct(r.BoostEnergy), metrics.Pct(r.EqualizerEnergy))
		bs = append(bs, r.Boost)
		es = append(es, r.Equalizer)
		be = append(be, r.BoostEnergy)
		ee = append(ee, r.EqualizerEnergy)
	}
	t.AddRow("GMEAN", "", gmeanCell(bs), gmeanCell(es),
		metrics.Pct(metrics.Mean(be)), metrics.Pct(metrics.Mean(ee)))
	b.WriteString(t.String())
	b.WriteString("boost raises the core clock whenever power headroom exists, so memory-\n" +
		"and cache-bound kernels pay the energy without the speedup.\n")
	return b.String()
}
