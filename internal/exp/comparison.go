package exp

import (
	"fmt"
	"strings"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/metrics"
	"equalizer/internal/policy"
)

// Fig10Row is one cache-study kernel's speedups under the three concurrency
// controllers (paper Figure 10).
type Fig10Row struct {
	Kernel                    string
	DynCTA, CCWS, EqualizerPf float64
}

// Figure10 compares Equalizer's performance mode with DynCTA and CCWS on the
// cache-sensitive kernel set.
func (h *Harness) Figure10() ([]Fig10Row, error) {
	var grid []RunRequest
	for _, k := range kernels.CacheStudyKernels() {
		for _, s := range []Setup{
			Baseline(),
			{Policy: "dynCTA", SM: config.VFNormal, Mem: config.VFNormal},
			{Policy: "ccws", SM: config.VFNormal, Mem: config.VFNormal},
			{Policy: "equalizer-perf", SM: config.VFNormal, Mem: config.VFNormal},
		} {
			grid = append(grid, RunRequest{Kernel: k, Setup: s})
		}
	}
	h.Prefetch(grid)
	var rows []Fig10Row
	for _, k := range kernels.CacheStudyKernels() {
		base, err := h.Run(k, Baseline())
		if err != nil {
			return nil, err
		}
		dyn, err := h.Run(k, Setup{Policy: "dynCTA", SM: config.VFNormal, Mem: config.VFNormal})
		if err != nil {
			return nil, err
		}
		ccws, err := h.Run(k, Setup{Policy: "ccws", SM: config.VFNormal, Mem: config.VFNormal})
		if err != nil {
			return nil, err
		}
		eq, err := h.Run(k, Setup{Policy: "equalizer-perf", SM: config.VFNormal, Mem: config.VFNormal})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{
			Kernel:      k.Name,
			DynCTA:      dyn.Speedup(base),
			CCWS:        ccws.Speedup(base),
			EqualizerPf: eq.Speedup(base),
		})
	}
	return rows, nil
}

// RenderFigure10 formats the comparison.
func RenderFigure10(rows []Fig10Row) string {
	var b strings.Builder
	b.WriteString("Figure 10: Equalizer vs DynCTA vs CCWS (cache-sensitive kernels)\n")
	t := metrics.NewTable("kernel", "dynCTA", "CCWS", "equalizer")
	var dyn, ccws, eq []float64
	for _, r := range rows {
		t.AddRowf(r.Kernel, r.DynCTA, r.CCWS, r.EqualizerPf)
		dyn = append(dyn, r.DynCTA)
		ccws = append(ccws, r.CCWS)
		eq = append(eq, r.EqualizerPf)
	}
	t.AddRow("GMEAN", gmeanCell(dyn), gmeanCell(ccws), gmeanCell(eq))
	b.WriteString(t.String())
	return b.String()
}

// gmeanCell formats a geomean table cell, degrading to "n/a" when a corrupt
// sample makes the aggregate meaningless.
func gmeanCell(xs []float64) string {
	g, err := metrics.GeomeanErr(xs)
	if err != nil {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", g)
}

// Fig11aData extends the Figure 2a study with Equalizer's block control
// (frequency control disabled, as in the paper's isolation experiment).
type Fig11aData struct {
	Fig2aData
	Equalizer []int64
}

// Figure11a reproduces the bfs-2 adaptivity study.
func (h *Harness) Figure11a() (Fig11aData, error) {
	k, err := kernels.ByName("bfs-2")
	if err != nil {
		return Fig11aData{}, err
	}
	h.Prefetch([]RunRequest{
		{Kernel: k, Setup: StaticBlocks(1)},
		{Kernel: k, Setup: StaticBlocks(2)},
		{Kernel: k, Setup: StaticBlocks(3)},
		{Kernel: k, Setup: Setup{
			Policy: "equalizer-perf", SM: config.VFNormal, Mem: config.VFNormal,
			DisableFrequency: true,
		}},
	})
	base, err := h.Figure2a()
	if err != nil {
		return Fig11aData{}, err
	}
	eq, err := h.Run(k, Setup{
		Policy: "equalizer-perf", SM: config.VFNormal, Mem: config.VFNormal,
		DisableFrequency: true,
	})
	if err != nil {
		return Fig11aData{}, err
	}
	return Fig11aData{Fig2aData: base, Equalizer: eq.PerInvocationPS}, nil
}

// RenderFigure11a formats the adaptivity study.
func RenderFigure11a(d Fig11aData) string {
	var b strings.Builder
	b.WriteString("Figure 11a: bfs-2 per-invocation time, Equalizer vs static blocks (normalised to 3-block total)\n")
	norm := float64(TotalPS(d.Blocks3))
	t := metrics.NewTable("invocation", "1 block", "3 blocks", "opt", "equalizer")
	for inv := range d.Blocks1 {
		t.AddRowf(inv+1,
			float64(d.Blocks1[inv])/norm,
			float64(d.Blocks3[inv])/norm,
			float64(d.Opt[inv])/norm,
			float64(d.Equalizer[inv])/norm)
	}
	t.AddRowf("total",
		float64(TotalPS(d.Blocks1))/norm,
		float64(TotalPS(d.Blocks3))/norm,
		float64(TotalPS(d.Opt))/norm,
		float64(TotalPS(d.Equalizer))/norm)
	b.WriteString(t.String())
	return b.String()
}

// Fig11bData holds the intra-invocation concurrency traces of spmv under
// Equalizer and DynCTA (paper Figure 11b).
type Fig11bData struct {
	// Equalizer is the per-epoch trace of SM 0 (active warps track the
	// concurrency Equalizer chose; Waiting shows the phase change).
	Equalizer []core.TracePoint
	// DynCTA is the per-epoch mean active warp count under DynCTA.
	DynCTA []policy.EpochPoint
}

// Figure11b traces spmv's execution under both controllers.
func (h *Harness) Figure11b() (Fig11bData, error) {
	k, err := kernels.ByName("spmv")
	if err != nil {
		return Fig11bData{}, err
	}
	kk := h.scaled(k)

	eq := core.New(core.PerformanceMode)
	eq.Record = true
	eq.DisableFrequency = true
	m, err := gpu.New(h.gpuCfg, h.pwrCfg, eq)
	if err != nil {
		return Fig11bData{}, err
	}
	if _, err := m.RunKernel(kk, 0); err != nil {
		return Fig11bData{}, err
	}
	d := Fig11bData{Equalizer: append([]core.TracePoint(nil), eq.Trace()...)}

	mon := policy.NewMonitor()
	dyn := policy.NewDynCTA()
	m2, err := gpu.New(h.gpuCfg, h.pwrCfg, policy.Multi{dyn, mon})
	if err != nil {
		return Fig11bData{}, err
	}
	if _, err := m2.RunKernel(kk, 0); err != nil {
		return Fig11bData{}, err
	}
	d.DynCTA = append(d.DynCTA, mon.Series()...)
	return d, nil
}

// RenderFigure11b formats the spmv adaptivity traces.
func RenderFigure11b(d Fig11bData) string {
	var b strings.Builder
	b.WriteString("Figure 11b: spmv concurrency adaptation (SM 0, per epoch)\n")
	t := metrics.NewTable("epoch", "eq active warps", "eq waiting", "eq blocks", "dynCTA active warps")
	n := len(d.Equalizer)
	if len(d.DynCTA) > n {
		n = len(d.DynCTA)
	}
	for i := 0; i < n; i++ {
		var eqA, eqW, dynA interface{} = "", "", ""
		var blocks interface{} = ""
		if i < len(d.Equalizer) {
			eqA = d.Equalizer[i].Counters.Active
			eqW = d.Equalizer[i].Counters.Waiting
			blocks = d.Equalizer[i].TargetBlocks
		}
		if i < len(d.DynCTA) {
			dynA = d.DynCTA[i].Active
		}
		t.AddRowf(i+1, eqA, eqW, blocks, dynA)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "equalizer restores concurrency once the cache-contended phase ends;\nDynCTA reads the latency-bound waiting as contention and keeps it low.\n")
	return b.String()
}
