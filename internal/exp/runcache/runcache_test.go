package runcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

type payload struct {
	Name   string
	TimePS int64
	Vals   []float64
}

func TestRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in := payload{Name: "cutcp", TimePS: 12345, Vals: []float64{1.5, 0.25}}
	if err := c.Store("abc123", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := c.Load("abc123", &out)
	if err != nil || !ok {
		t.Fatalf("Load = %v, %v; want hit", ok, err)
	}
	if out.Name != in.Name || out.TimePS != in.TimePS || len(out.Vals) != 2 || out.Vals[0] != 1.5 {
		t.Fatalf("round trip mangled payload: %+v", out)
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
}

func TestMiss(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := c.Load("nothere", &out)
	if err != nil {
		t.Fatalf("clean miss returned error: %v", err)
	}
	if ok {
		t.Fatal("miss reported as hit")
	}
}

func TestCorruptEntryRemovedAndReported(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.Path("bad"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := c.Load("bad", &out)
	if ok {
		t.Fatal("corrupt entry reported as hit")
	}
	if err == nil {
		t.Fatal("corrupt entry not reported")
	}
	if _, statErr := os.Stat(c.Path("bad")); !os.IsNotExist(statErr) {
		t.Fatal("corrupt entry not removed")
	}
	// The cache heals: a fresh Store over the same key works.
	if err := c.Store("bad", payload{Name: "ok"}); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Load("bad", &out); !ok || err != nil {
		t.Fatalf("healed entry: Load = %v, %v", ok, err)
	}
}

func TestOpenCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store("k", payload{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("cache dir missing: %v", err)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") accepted")
	}
}

func TestSanitizedKeys(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store("../../escape", payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	p := c.Path("../../escape")
	if strings.Contains(p, "..") || filepath.Dir(p) != c.Dir() {
		t.Fatalf("key escaped the cache dir: %s", p)
	}
}

// TestConcurrentSameKeyWriters models several eqsimd processes sharing one
// cache directory and racing to store the same key. Atomic temp+rename must
// guarantee every subsequent Load sees one complete value, never a blend or
// a truncation.
func TestConcurrentSameKeyWriters(t *testing.T) {
	dir := t.TempDir()
	const (
		writers = 8
		rounds  = 25
	)
	// Values carry a filler block plus a checksum over it, so a torn or
	// interleaved write is detectable, not just unlikely.
	type sealed struct {
		Writer int
		Filler []int64
		Sum    int64
	}
	mk := func(w int) sealed {
		s := sealed{Writer: w, Filler: make([]int64, 512)}
		for i := range s.Filler {
			s.Filler[i] = int64(w*1_000_003 + i)
			s.Sum += s.Filler[i]
		}
		return s
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer has its own Cache handle, as separate processes
			// would.
			c, err := Open(dir)
			if err != nil {
				errs <- err
				return
			}
			val := mk(w)
			for r := 0; r < rounds; r++ {
				if err := c.Store("contended", val); err != nil {
					errs <- err
					return
				}
				var got sealed
				ok, err := c.Load("contended", &got)
				if err != nil || !ok {
					errs <- fmt.Errorf("writer %d round %d: Load = %v, %v", w, r, ok, err)
					return
				}
				var sum int64
				for _, v := range got.Filler {
					sum += v
				}
				if sum != got.Sum || len(got.Filler) != 512 {
					errs <- fmt.Errorf("writer %d round %d: torn value from writer %d (sum %d != %d)",
						w, r, got.Writer, sum, got.Sum)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n, err := c0Len(t, dir); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want exactly 1 entry", n, err)
	}
}

func c0Len(t *testing.T, dir string) (int, error) {
	t.Helper()
	c, err := Open(dir)
	if err != nil {
		return 0, err
	}
	return c.Len()
}

// TestPartialFileHealing writes a truncated entry directly (as a crashed
// non-atomic writer or disk fault would) and checks the service access
// pattern: the first Load reports corruption and removes the file, the next
// Store+Load round-trips cleanly.
func TestPartialFileHealing(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	full, err := json.Marshal(payload{Name: "cutcp", TimePS: 99, Vals: []float64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"truncated", full[:len(full)/2]},
		{"empty", nil},
		{"garbage", []byte("\x00\xff not json")},
	} {
		key := "broken-" + tc.name
		if err := os.WriteFile(c.Path(key), tc.data, 0o644); err != nil {
			t.Fatal(err)
		}
		var out payload
		ok, err := c.Load(key, &out)
		if ok || err == nil {
			t.Fatalf("%s: Load = %v, %v; want corrupt-entry error", tc.name, ok, err)
		}
		if _, statErr := os.Stat(c.Path(key)); !os.IsNotExist(statErr) {
			t.Fatalf("%s: corrupt file not removed: %v", tc.name, statErr)
		}
		// Healed: a clean miss now, and Store repopulates.
		if ok, err := c.Load(key, &out); ok || err != nil {
			t.Fatalf("%s: after removal Load = %v, %v; want clean miss", tc.name, ok, err)
		}
		if err := c.Store(key, payload{Name: "healed"}); err != nil {
			t.Fatal(err)
		}
		if ok, err := c.Load(key, &out); !ok || err != nil || out.Name != "healed" {
			t.Fatalf("%s: after heal Load = %v, %v, %+v", tc.name, ok, err, out)
		}
	}
}

// TestOpenSweepsStaleTmp ages an orphaned write-temporary past the sweep
// horizon and checks Open removes it while leaving young temps and real
// entries alone.
func TestOpenSweepsStaleTmp(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store("keep", payload{Name: "keep"}); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, ".tmp-stale123")
	young := filepath.Join(dir, ".tmp-young456")
	for _, p := range []string{stale, young} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTmpAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp survived Open: %v", err)
	}
	if _, err := os.Stat(young); err != nil {
		t.Errorf("young temp swept: %v", err)
	}
	var out payload
	if ok, err := c.Load("keep", &out); !ok || err != nil || out.Name != "keep" {
		t.Errorf("real entry damaged by sweep: %v, %v, %+v", ok, err, out)
	}
}
