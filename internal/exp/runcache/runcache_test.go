package runcache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Name   string
	TimePS int64
	Vals   []float64
}

func TestRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in := payload{Name: "cutcp", TimePS: 12345, Vals: []float64{1.5, 0.25}}
	if err := c.Store("abc123", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := c.Load("abc123", &out)
	if err != nil || !ok {
		t.Fatalf("Load = %v, %v; want hit", ok, err)
	}
	if out.Name != in.Name || out.TimePS != in.TimePS || len(out.Vals) != 2 || out.Vals[0] != 1.5 {
		t.Fatalf("round trip mangled payload: %+v", out)
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
}

func TestMiss(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := c.Load("nothere", &out)
	if err != nil {
		t.Fatalf("clean miss returned error: %v", err)
	}
	if ok {
		t.Fatal("miss reported as hit")
	}
}

func TestCorruptEntryRemovedAndReported(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.Path("bad"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := c.Load("bad", &out)
	if ok {
		t.Fatal("corrupt entry reported as hit")
	}
	if err == nil {
		t.Fatal("corrupt entry not reported")
	}
	if _, statErr := os.Stat(c.Path("bad")); !os.IsNotExist(statErr) {
		t.Fatal("corrupt entry not removed")
	}
	// The cache heals: a fresh Store over the same key works.
	if err := c.Store("bad", payload{Name: "ok"}); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Load("bad", &out); !ok || err != nil {
		t.Fatalf("healed entry: Load = %v, %v", ok, err)
	}
}

func TestOpenCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store("k", payload{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("cache dir missing: %v", err)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") accepted")
	}
}

func TestSanitizedKeys(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store("../../escape", payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	p := c.Path("../../escape")
	if strings.Contains(p, "..") || filepath.Dir(p) != c.Dir() {
		t.Fatalf("key escaped the cache dir: %s", p)
	}
}
