// Package runcache is a persistent on-disk result store for simulation runs.
// Each entry is one JSON file named by the caller's key — a stable hash of
// everything that determines the result (kernel, setup, machine model,
// grid scale, schema version) — so rerunning an experiment grid with
// unchanged configuration skips simulation entirely.
//
// The store is deliberately dumb: it knows nothing about what it holds.
// Key derivation and schema versioning belong to the caller (package exp),
// which keeps this package dependency-free and reusable. Writes are atomic
// (temp file + rename) so a crashed run never leaves a truncated entry, and
// a corrupted entry is treated as a miss: Load reports the error, removes
// the bad file, and the caller falls back to simulating.
package runcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Cache is a directory of JSON-encoded results, keyed by caller-supplied
// hash strings. Safe for concurrent use by multiple goroutines as long as
// distinct goroutines write distinct keys (the exp harness's singleflight
// memo guarantees this; concurrent processes cooperate via atomic renames).
type Cache struct {
	dir string
}

// staleTmpAge is how old an orphaned temp file must be before Open sweeps
// it. Young temp files may belong to a live writer in another process; after
// an hour they can only be litter from a crashed or killed run.
const staleTmpAge = time.Hour

// Open returns a cache rooted at dir, creating the directory if needed.
// Orphaned write-temporaries older than an hour — left behind by crashed
// writers — are swept so the directory does not accumulate litter across
// service restarts.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("runcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: %w", err)
	}
	c := &Cache{dir: dir}
	if err := c.sweepStaleTmp(time.Now().Add(-staleTmpAge)); err != nil {
		return nil, err
	}
	return c, nil
}

// sweepStaleTmp removes .tmp-* files last modified before cutoff. Races with
// concurrent processes are benign: a temp file can only disappear (renamed
// into place or swept by another Open), so "already gone" is success.
func (c *Cache) sweepStaleTmp(cutoff time.Time) error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("runcache: sweep %s: %w", c.dir, err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return fmt.Errorf("runcache: sweep %s: %w", e.Name(), err)
		}
		if info.ModTime().After(cutoff) {
			continue
		}
		if err := removeIfPresent(filepath.Join(c.dir, e.Name())); err != nil {
			return fmt.Errorf("runcache: sweep %s: %w", e.Name(), err)
		}
	}
	return nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Path returns the file backing a key.
func (c *Cache) Path(key string) string {
	return filepath.Join(c.dir, sanitize(key)+".json")
}

// sanitize keeps keys filesystem-safe; callers pass hex hashes, so this only
// defends against accidental misuse.
func sanitize(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, key)
}

// Load reads the entry for key into v. It returns (true, nil) on a hit,
// (false, nil) on a clean miss, and (false, err) when the entry exists but
// cannot be decoded — in which case the corrupt file is removed so the next
// Store can heal the cache.
func (c *Cache) Load(key string, v interface{}) (bool, error) {
	path := c.Path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("runcache: read %s: %w", path, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		if rmErr := os.Remove(path); rmErr != nil {
			return false, fmt.Errorf("runcache: corrupt entry %s (removal failed: %v): %w", path, rmErr, err)
		}
		return false, fmt.Errorf("runcache: corrupt entry %s (removed): %w", path, err)
	}
	return true, nil
}

// Store writes v as the entry for key, atomically replacing any previous
// entry.
func (c *Cache) Store(key string, v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runcache: encode %s: %w", key, err)
	}
	path := c.Path(key)
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("runcache: write %s: %w", path,
			errors.Join(err, tmp.Close(), removeIfPresent(tmp.Name())))
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runcache: close %s: %w", path,
			errors.Join(err, removeIfPresent(tmp.Name())))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("runcache: commit %s: %w", path,
			errors.Join(err, removeIfPresent(tmp.Name())))
	}
	return nil
}

// removeIfPresent deletes path, treating "already gone" as success so it
// can be folded into errors.Join without masking the primary failure.
func removeIfPresent(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Len counts stored entries (test and diagnostics helper).
func (c *Cache) Len() (int, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, fmt.Errorf("runcache: %w", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n, nil
}
