package exp

import (
	"fmt"
	"strings"

	"equalizer/internal/config"
	"equalizer/internal/kernels"
	"equalizer/internal/metrics"
)

// Fig7Row is one kernel's performance-mode result (paper Figure 7).
type Fig7Row struct {
	Kernel   string
	Category kernels.Category
	// Speedups vs the baseline GPU.
	Equalizer, SMBoost, MemBoost float64
	// Energy deltas vs the baseline (positive = more energy).
	EqualizerEnergy, SMBoostEnergy, MemBoostEnergy float64
}

// fig7Grid declares every run Figure 7 consumes.
func fig7Grid() []RunRequest {
	var grid []RunRequest
	for _, k := range kernels.All() {
		for _, s := range []Setup{
			Baseline(),
			{Policy: "equalizer-perf", SM: config.VFNormal, Mem: config.VFNormal},
			StaticVF(config.VFHigh, config.VFNormal),
			StaticVF(config.VFNormal, config.VFHigh),
		} {
			grid = append(grid, RunRequest{Kernel: k, Setup: s})
		}
	}
	return grid
}

// Figure7 runs the performance-mode evaluation: Equalizer against statically
// boosting the SM or the memory system by 15%.
func (h *Harness) Figure7() ([]Fig7Row, error) {
	h.Prefetch(fig7Grid())
	var rows []Fig7Row
	for _, k := range kernels.All() {
		base, err := h.Run(k, Baseline())
		if err != nil {
			return nil, err
		}
		eq, err := h.Run(k, Setup{Policy: "equalizer-perf", SM: config.VFNormal, Mem: config.VFNormal})
		if err != nil {
			return nil, err
		}
		smB, err := h.Run(k, StaticVF(config.VFHigh, config.VFNormal))
		if err != nil {
			return nil, err
		}
		memB, err := h.Run(k, StaticVF(config.VFNormal, config.VFHigh))
		if err != nil {
			return nil, err
		}
		r := Fig7Row{
			Kernel:          k.Name,
			Category:        k.Category,
			EqualizerEnergy: eq.EnergyDelta(base),
			SMBoostEnergy:   smB.EnergyDelta(base),
			MemBoostEnergy:  memB.EnergyDelta(base),
		}
		for _, v := range []struct {
			dst *float64
			t   Totals
		}{{&r.Equalizer, eq}, {&r.SMBoost, smB}, {&r.MemBoost, memB}} {
			s, err := v.t.SpeedupErr(base)
			if err != nil {
				return nil, fmt.Errorf("figure 7: kernel %s: %w", k.Name, err)
			}
			*v.dst = s
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Fig7Summary aggregates Figure 7 (paper: Equalizer +22% at +6% energy; SM
// boost +7% at +12%; memory boost +6% at +7%).
type Fig7Summary struct {
	EqSpeedup, SMSpeedup, MemSpeedup float64
	EqEnergy, SMEnergy, MemEnergy    float64
	// PerCategory maps a category to Equalizer's geomean speedup.
	PerCategory map[kernels.Category]float64
}

// SummarizeFigure7 computes geomean speedups and mean energy deltas. A row
// carrying a non-positive speedup (a corrupt run) is reported as an error
// rather than aborting the process.
func SummarizeFigure7(rows []Fig7Row) (Fig7Summary, error) {
	var eq, sm, mem, eqE, smE, memE []float64
	perCat := map[kernels.Category][]float64{}
	for _, r := range rows {
		eq = append(eq, r.Equalizer)
		sm = append(sm, r.SMBoost)
		mem = append(mem, r.MemBoost)
		eqE = append(eqE, r.EqualizerEnergy)
		smE = append(smE, r.SMBoostEnergy)
		memE = append(memE, r.MemBoostEnergy)
		perCat[r.Category] = append(perCat[r.Category], r.Equalizer)
	}
	s := Fig7Summary{
		EqEnergy:    metrics.Mean(eqE),
		SMEnergy:    metrics.Mean(smE),
		MemEnergy:   metrics.Mean(memE),
		PerCategory: map[kernels.Category]float64{},
	}
	var err error
	if s.EqSpeedup, err = metrics.GeomeanErr(eq); err != nil {
		return s, fmt.Errorf("figure 7 equalizer speedups: %w", err)
	}
	if s.SMSpeedup, err = metrics.GeomeanErr(sm); err != nil {
		return s, fmt.Errorf("figure 7 sm-boost speedups: %w", err)
	}
	if s.MemSpeedup, err = metrics.GeomeanErr(mem); err != nil {
		return s, fmt.Errorf("figure 7 mem-boost speedups: %w", err)
	}
	for _, c := range kernels.Categories() {
		xs, ok := perCat[c]
		if !ok {
			continue
		}
		if s.PerCategory[c], err = metrics.GeomeanErr(xs); err != nil {
			return s, fmt.Errorf("figure 7 category %s: %w", c, err)
		}
	}
	return s, nil
}

// RenderFigure7 formats the performance-mode evaluation.
func RenderFigure7(rows []Fig7Row) string {
	var b strings.Builder
	b.WriteString("Figure 7: performance mode — speedup and energy increase vs baseline\n")
	t := metrics.NewTable("kernel", "category",
		"eq speedup", "sm-boost", "mem-boost",
		"eq energy", "sm energy", "mem energy")
	for _, r := range rows {
		t.AddRowf(r.Kernel, r.Category.String(),
			r.Equalizer, r.SMBoost, r.MemBoost,
			metrics.Pct(r.EqualizerEnergy), metrics.Pct(r.SMBoostEnergy), metrics.Pct(r.MemBoostEnergy))
	}
	b.WriteString(t.String())
	s, err := SummarizeFigure7(rows)
	if err != nil {
		fmt.Fprintf(&b, "summary unavailable: %v\n", err)
		return b.String()
	}
	fmt.Fprintf(&b, "geomean speedup: equalizer %.3f, sm-boost %.3f, mem-boost %.3f\n",
		s.EqSpeedup, s.SMSpeedup, s.MemSpeedup)
	fmt.Fprintf(&b, "mean energy delta: equalizer %s, sm-boost %s, mem-boost %s\n",
		metrics.Pct(s.EqEnergy), metrics.Pct(s.SMEnergy), metrics.Pct(s.MemEnergy))
	for _, c := range kernels.Categories() {
		fmt.Fprintf(&b, "equalizer %s geomean speedup: %.3f\n", c, s.PerCategory[c])
	}
	return b.String()
}

// Fig8Row is one kernel's energy-mode result (paper Figure 8).
type Fig8Row struct {
	Kernel   string
	Category kernels.Category
	// Speedups vs baseline (values below 1 are slowdowns).
	Equalizer, SMLow, MemLow float64
	// Energy savings vs baseline (positive = saved).
	EqualizerSavings, SMLowSavings, MemLowSavings float64
	// StaticBest is the larger saving of SM-low/mem-low among the options
	// that lose at most 5% performance; zero when neither qualifies.
	StaticBest float64
}

// fig8Grid declares every run Figure 8 consumes.
func fig8Grid() []RunRequest {
	var grid []RunRequest
	for _, k := range kernels.All() {
		for _, s := range []Setup{
			Baseline(),
			{Policy: "equalizer-energy", SM: config.VFNormal, Mem: config.VFNormal},
			StaticVF(config.VFLow, config.VFNormal),
			StaticVF(config.VFNormal, config.VFLow),
		} {
			grid = append(grid, RunRequest{Kernel: k, Setup: s})
		}
	}
	return grid
}

// Figure8 runs the energy-mode evaluation: Equalizer against statically
// lowering the SM or memory VF by 15%.
func (h *Harness) Figure8() ([]Fig8Row, error) {
	h.Prefetch(fig8Grid())
	var rows []Fig8Row
	for _, k := range kernels.All() {
		base, err := h.Run(k, Baseline())
		if err != nil {
			return nil, err
		}
		eq, err := h.Run(k, Setup{Policy: "equalizer-energy", SM: config.VFNormal, Mem: config.VFNormal})
		if err != nil {
			return nil, err
		}
		smL, err := h.Run(k, StaticVF(config.VFLow, config.VFNormal))
		if err != nil {
			return nil, err
		}
		memL, err := h.Run(k, StaticVF(config.VFNormal, config.VFLow))
		if err != nil {
			return nil, err
		}
		r := Fig8Row{
			Kernel:           k.Name,
			Category:         k.Category,
			EqualizerSavings: eq.EnergySavings(base),
			SMLowSavings:     smL.EnergySavings(base),
			MemLowSavings:    memL.EnergySavings(base),
		}
		for _, v := range []struct {
			dst *float64
			t   Totals
		}{{&r.Equalizer, eq}, {&r.SMLow, smL}, {&r.MemLow, memL}} {
			s, err := v.t.SpeedupErr(base)
			if err != nil {
				return nil, fmt.Errorf("figure 8: kernel %s: %w", k.Name, err)
			}
			*v.dst = s
		}
		// Static best: the bigger saving whose performance stays >= 0.95.
		if r.SMLow >= 0.95 && r.SMLowSavings > r.StaticBest {
			r.StaticBest = r.SMLowSavings
		}
		if r.MemLow >= 0.95 && r.MemLowSavings > r.StaticBest {
			r.StaticBest = r.MemLowSavings
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Fig8Summary aggregates Figure 8 (paper: Equalizer saves 15% with +5% perf;
// SM-low loses 9%, mem-low 7%; static best saves 8%).
type Fig8Summary struct {
	EqPerf, SMLowPerf, MemLowPerf float64
	EqSavings, StaticBest         float64
	PerCategorySavings            map[kernels.Category]float64
	PerCategoryPerf               map[kernels.Category]float64
}

// SummarizeFigure8 computes the aggregates. A row carrying a non-positive
// performance ratio (a corrupt run) is reported as an error rather than
// aborting the process.
func SummarizeFigure8(rows []Fig8Row) (Fig8Summary, error) {
	var eqP, smP, memP, eqS, sb []float64
	catS := map[kernels.Category][]float64{}
	catP := map[kernels.Category][]float64{}
	for _, r := range rows {
		eqP = append(eqP, r.Equalizer)
		smP = append(smP, r.SMLow)
		memP = append(memP, r.MemLow)
		eqS = append(eqS, r.EqualizerSavings)
		sb = append(sb, r.StaticBest)
		catS[r.Category] = append(catS[r.Category], r.EqualizerSavings)
		catP[r.Category] = append(catP[r.Category], r.Equalizer)
	}
	s := Fig8Summary{
		EqSavings:          metrics.Mean(eqS),
		StaticBest:         metrics.Mean(sb),
		PerCategorySavings: map[kernels.Category]float64{},
		PerCategoryPerf:    map[kernels.Category]float64{},
	}
	var err error
	if s.EqPerf, err = metrics.GeomeanErr(eqP); err != nil {
		return s, fmt.Errorf("figure 8 equalizer performance: %w", err)
	}
	if s.SMLowPerf, err = metrics.GeomeanErr(smP); err != nil {
		return s, fmt.Errorf("figure 8 sm-low performance: %w", err)
	}
	if s.MemLowPerf, err = metrics.GeomeanErr(memP); err != nil {
		return s, fmt.Errorf("figure 8 mem-low performance: %w", err)
	}
	for _, c := range kernels.Categories() {
		if xs, ok := catS[c]; ok {
			s.PerCategorySavings[c] = metrics.Mean(xs)
		}
		if xs, ok := catP[c]; ok {
			if s.PerCategoryPerf[c], err = metrics.GeomeanErr(xs); err != nil {
				return s, fmt.Errorf("figure 8 category %s: %w", c, err)
			}
		}
	}
	return s, nil
}

// RenderFigure8 formats the energy-mode evaluation.
func RenderFigure8(rows []Fig8Row) string {
	var b strings.Builder
	b.WriteString("Figure 8: energy mode — performance and energy savings vs baseline\n")
	t := metrics.NewTable("kernel", "category",
		"eq perf", "sm-low", "mem-low",
		"eq savings", "static best")
	for _, r := range rows {
		t.AddRowf(r.Kernel, r.Category.String(),
			r.Equalizer, r.SMLow, r.MemLow,
			metrics.Pct(r.EqualizerSavings), metrics.Pct(r.StaticBest))
	}
	b.WriteString(t.String())
	s, err := SummarizeFigure8(rows)
	if err != nil {
		fmt.Fprintf(&b, "summary unavailable: %v\n", err)
		return b.String()
	}
	fmt.Fprintf(&b, "geomean performance: equalizer %.3f, sm-low %.3f, mem-low %.3f\n",
		s.EqPerf, s.SMLowPerf, s.MemLowPerf)
	fmt.Fprintf(&b, "mean energy savings: equalizer %s, static best (P>0.95) %s\n",
		metrics.Pct(s.EqSavings), metrics.Pct(s.StaticBest))
	for _, c := range kernels.Categories() {
		fmt.Fprintf(&b, "equalizer %s: savings %s at %.3fx performance\n",
			c, metrics.Pct(s.PerCategorySavings[c]), s.PerCategoryPerf[c])
	}
	return b.String()
}

// Fig9Row is one kernel's VF-residency distribution in one mode.
type Fig9Row struct {
	Kernel string
	Mode   string // "P" or "E"
	// Fractions of wall time per state.
	MemLow, MemHigh, CoreLow, CoreHigh, Normal float64
}

// Figure9 measures the distribution of time over the SM and memory frequency
// states under Equalizer in both modes.
func (h *Harness) Figure9() ([]Fig9Row, error) {
	var grid []RunRequest
	for _, k := range kernels.All() {
		grid = append(grid,
			RunRequest{Kernel: k, Setup: Setup{Policy: "equalizer-perf", SM: config.VFNormal, Mem: config.VFNormal}},
			RunRequest{Kernel: k, Setup: Setup{Policy: "equalizer-energy", SM: config.VFNormal, Mem: config.VFNormal}})
	}
	h.Prefetch(grid)
	var rows []Fig9Row
	for _, k := range kernels.All() {
		for _, mode := range []string{"P", "E"} {
			setup := Setup{Policy: "equalizer-perf", SM: config.VFNormal, Mem: config.VFNormal}
			if mode == "E" {
				setup.Policy = "equalizer-energy"
			}
			t, err := h.Run(k, setup)
			if err != nil {
				return nil, err
			}
			total := float64(t.Residency.SM[0] + t.Residency.SM[1] + t.Residency.SM[2])
			memTotal := float64(t.Residency.Mem[0] + t.Residency.Mem[1] + t.Residency.Mem[2])
			if total == 0 || memTotal == 0 {
				continue
			}
			r := Fig9Row{
				Kernel:   k.Name,
				Mode:     mode,
				CoreLow:  float64(t.Residency.SM[config.VFLow]) / total,
				CoreHigh: float64(t.Residency.SM[config.VFHigh]) / total,
				MemLow:   float64(t.Residency.Mem[config.VFLow]) / memTotal,
				MemHigh:  float64(t.Residency.Mem[config.VFHigh]) / memTotal,
			}
			// Normal is the time both domains sat at nominal; approximate
			// with the SM domain's nominal share (the paper's stacked bar
			// has one "normal" segment).
			r.Normal = float64(t.Residency.SM[config.VFNormal]) / total
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// RenderFigure9 formats the VF residency distribution.
func RenderFigure9(rows []Fig9Row) string {
	var b strings.Builder
	b.WriteString("Figure 9: distribution of time at each VF state (P = performance, E = energy)\n")
	t := metrics.NewTable("kernel", "mode", "core low", "core high", "mem low", "mem high", "core normal")
	for _, r := range rows {
		t.AddRowf(r.Kernel, r.Mode, r.CoreLow, r.CoreHigh, r.MemLow, r.MemHigh, r.Normal)
	}
	b.WriteString(t.String())
	return b.String()
}

// Summary reports the headline numbers of the paper's abstract.
type Summary struct {
	PerfModeSpeedup     float64 // paper: 1.22
	PerfModeEnergyDelta float64 // paper: +6%
	EnergyModeSavings   float64 // paper: 15%
	EnergyModePerf      float64 // paper: 1.05
}

// Summarize runs both modes over all kernels and aggregates. The union of
// both figures' grids is prefetched up front so the worker pool stays
// saturated across the figure boundary (the shared baselines dedupe).
func (h *Harness) Summarize() (Summary, error) {
	h.Prefetch(append(fig7Grid(), fig8Grid()...))
	f7, err := h.Figure7()
	if err != nil {
		return Summary{}, err
	}
	f8, err := h.Figure8()
	if err != nil {
		return Summary{}, err
	}
	s7, err := SummarizeFigure7(f7)
	if err != nil {
		return Summary{}, err
	}
	s8, err := SummarizeFigure8(f8)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		PerfModeSpeedup:     s7.EqSpeedup,
		PerfModeEnergyDelta: s7.EqEnergy,
		EnergyModeSavings:   s8.EqSavings,
		EnergyModePerf:      s8.EqPerf,
	}, nil
}

// RenderSummary formats the headline results alongside the paper's numbers.
func RenderSummary(s Summary) string {
	var b strings.Builder
	b.WriteString("Headline results (paper values in parentheses)\n")
	t := metrics.NewTable("metric", "measured", "paper")
	t.AddRow("performance-mode speedup", fmt.Sprintf("%.3f", s.PerfModeSpeedup), "1.22")
	t.AddRow("performance-mode energy delta", metrics.Pct(s.PerfModeEnergyDelta), "+6%")
	t.AddRow("energy-mode savings", metrics.Pct(s.EnergyModeSavings), "+15%")
	t.AddRow("energy-mode performance", fmt.Sprintf("%.3f", s.EnergyModePerf), "1.05")
	b.WriteString(t.String())
	return b.String()
}
