package exp

import (
	"fmt"
	"strings"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/metrics"
)

// AblationPoint is one parameter setting's aggregate result over the
// ablation kernel set.
type AblationPoint struct {
	// Label names the setting (e.g. "epoch=2048").
	Label string
	// Speedup is the geomean performance-mode speedup vs baseline.
	Speedup float64
	// EnergyDelta is the mean energy change vs baseline.
	EnergyDelta float64
}

// ablationKernels is a representative set: one kernel per category plus the
// two phase-changing kernels, keeping sweeps affordable.
func ablationKernels() []kernels.Kernel {
	names := []string{"cutcp", "lbm", "kmn", "sc", "spmv", "bfs-2"}
	var ks []kernels.Kernel
	for _, n := range names {
		k, err := kernels.ByName(n)
		if err != nil {
			panic(err)
		}
		ks = append(ks, k)
	}
	return ks
}

// runAblationPoint runs the ablation set under an Equalizer built with the
// given runtime parameters and returns geomean speedup / mean energy delta
// vs the stock baseline.
func (h *Harness) runAblationPoint(label string, eqCfg config.Equalizer, mode core.Mode) (AblationPoint, error) {
	var speedups, deltas []float64
	for _, k := range ablationKernels() {
		base, err := h.Run(k, Baseline())
		if err != nil {
			return AblationPoint{}, err
		}
		kk := h.scaled(k)
		m, err := gpu.New(h.gpuCfg, h.pwrCfg, core.NewWithConfig(mode, eqCfg))
		if err != nil {
			return AblationPoint{}, err
		}
		var t Totals
		for inv := 0; inv < kk.Invocations; inv++ {
			res, err := m.RunKernel(kk, inv)
			if err != nil {
				return AblationPoint{}, err
			}
			t.TimePS += res.TimePS
			t.EnergyJ += res.EnergyJ()
		}
		speedups = append(speedups, t.Speedup(base))
		deltas = append(deltas, t.EnergyDelta(base))
	}
	return AblationPoint{
		Label:       label,
		Speedup:     metrics.Geomean(speedups),
		EnergyDelta: metrics.Mean(deltas),
	}, nil
}

// AblationEpoch sweeps the epoch window length (the paper chose 4096 cycles
// after a sensitivity study, Section V-A.2).
func (h *Harness) AblationEpoch(mode core.Mode) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, epoch := range []int{1024, 2048, 4096, 8192, 16384} {
		cfg := config.DefaultEqualizer()
		cfg.EpochCycles = epoch //eqlint:allow cycleaccounting -- writes the epoch-length config knob, not a live counter
		p, err := h.runAblationPoint(fmt.Sprintf("epoch=%d", epoch), cfg, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// AblationHysteresis sweeps the consecutive-decision requirement for block
// changes (the paper uses 3).
func (h *Harness) AblationHysteresis(mode core.Mode) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, hys := range []int{1, 2, 3, 4, 6} {
		cfg := config.DefaultEqualizer()
		cfg.Hysteresis = hys
		p, err := h.runAblationPoint(fmt.Sprintf("hysteresis=%d", hys), cfg, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// AblationSampling sweeps the instruction-buffer sampling interval (the
// paper samples every 128 cycles).
func (h *Harness) AblationSampling(mode core.Mode) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, s := range []int{32, 64, 128, 256, 512} {
		cfg := config.DefaultEqualizer()
		cfg.SampleInterval = s
		p, err := h.runAblationPoint(fmt.Sprintf("sample=%d", s), cfg, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// AblationMemSaturation sweeps the Xmem bandwidth-saturation floor (the
// paper conservatively uses 2 warps, Section III-A).
func (h *Harness) AblationMemSaturation(mode core.Mode) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, floor := range []int{0, 1, 2, 4, 8} {
		cfg := config.DefaultEqualizer()
		cfg.MemSaturationWarps = floor
		p, err := h.runAblationPoint(fmt.Sprintf("memsat=%d", floor), cfg, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Ablations runs every sweep in performance mode and renders them.
func (h *Harness) Ablations() (string, error) {
	var b strings.Builder
	sweeps := []struct {
		title string
		run   func(core.Mode) ([]AblationPoint, error)
	}{
		{"epoch window length", h.AblationEpoch},
		{"block-change hysteresis", h.AblationHysteresis},
		{"sampling interval", h.AblationSampling},
		{"Xmem saturation floor", h.AblationMemSaturation},
	}
	for _, sweep := range sweeps {
		pts, err := sweep.run(core.PerformanceMode)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "Ablation: %s (performance mode, %d-kernel subset)\n", sweep.title, len(ablationKernels()))
		t := metrics.NewTable("setting", "geomean speedup", "mean energy delta")
		for _, p := range pts {
			t.AddRowf(p.Label, p.Speedup, metrics.Pct(p.EnergyDelta))
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String(), nil
}
