package exp

import (
	"math"
	"os"
	"testing"

	"equalizer/internal/config"
	"equalizer/internal/exp/runcache"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
)

// detScale keeps the determinism suite fast: the full Figure 7+8 grid at a
// tenth of every kernel's grid size.
const detScale = 0.1

func renderFig78(t *testing.T, h *Harness) string {
	t.Helper()
	f7, err := h.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	f8, err := h.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	return RenderFigure7(f7) + RenderFigure8(f8)
}

// TestParallelDeterminismAndCache is the tentpole's acceptance test: figure
// renderings must be byte-identical across worker counts and between cold-
// and warm-cache runs, and a warm rerun must not simulate at all.
func TestParallelDeterminismAndCache(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 7+8 grid")
	}
	if raceDetectorEnabled {
		t.Skip("full grid is too slow under the race detector; TestPrefetchRaceSmoke covers the concurrency")
	}
	// Reference: sequential, no disk cache.
	ref := renderFig78(t, New(Options{GridScale: detScale, Parallelism: 1}))

	dir := t.TempDir()
	cache, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Cold cache at parallelism 4.
	h4 := New(Options{GridScale: detScale, Parallelism: 4, Cache: cache})
	if got := renderFig78(t, h4); got != ref {
		t.Error("parallelism-4 cold-cache rendering differs from sequential reference")
	}
	cold := h4.SchedulerStats()
	if cold.Simulated == 0 {
		t.Error("cold run reported zero simulations")
	}
	if cold.CacheStores != cold.Simulated {
		t.Errorf("cold run stored %d of %d simulated results", cold.CacheStores, cold.Simulated)
	}
	if cold.MemoHits == 0 {
		t.Error("shared baselines should memo-hit within a run")
	}

	// Warm cache at parallelism 16: byte-identical with zero simulations.
	h16 := New(Options{GridScale: detScale, Parallelism: 16, Cache: cache})
	if got := renderFig78(t, h16); got != ref {
		t.Error("parallelism-16 warm-cache rendering differs from sequential reference")
	}
	warm := h16.SchedulerStats()
	if warm.Simulated != 0 {
		t.Errorf("warm run simulated %d times, want 0", warm.Simulated)
	}
	if warm.CacheHits == 0 {
		t.Error("warm run recorded no cache hits")
	}
}

// TestPrefetchRaceSmoke exercises the concurrent scheduler paths — worker
// pool, singleflight memo, disk cache stores and hits — on a grid small
// enough to run under the race detector, where the full-grid determinism
// tests skip themselves.
func TestPrefetchRaceSmoke(t *testing.T) {
	k, err := kernels.ByName("cutcp")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	grid := []RunRequest{
		{Kernel: k, Setup: Baseline()},
		{Kernel: k, Setup: StaticVF(config.VFHigh, config.VFNormal)},
		{Kernel: k, Setup: StaticVF(config.VFNormal, config.VFHigh)},
		{Kernel: k, Setup: StaticBlocks(1)},
		{Kernel: k, Setup: StaticBlocks(2)},
	}
	h := New(Options{GridScale: 0.05, Parallelism: 8, Cache: cache})
	// Duplicates in the grid must dedupe through the memo, not run twice.
	h.Prefetch(append(append([]RunRequest{}, grid...), grid...))
	want := make([]Totals, len(grid))
	for i, r := range grid {
		want[i] = h.MustRun(r.Kernel, r.Setup)
	}
	st := h.SchedulerStats()
	if st.Simulated != uint64(len(grid)) {
		t.Errorf("Simulated = %d, want %d (one per unique request)", st.Simulated, len(grid))
	}
	if st.MemoHits < uint64(len(grid)) {
		t.Errorf("MemoHits = %d, want >= %d (duplicates + readback)", st.MemoHits, len(grid))
	}
	if st.CacheStores != st.Simulated {
		t.Errorf("stored %d of %d simulated results", st.CacheStores, st.Simulated)
	}

	// A fresh harness over the same cache must serve everything from disk,
	// byte-for-byte equal.
	h2 := New(Options{GridScale: 0.05, Parallelism: 8, Cache: cache})
	h2.Prefetch(grid)
	for i, r := range grid {
		if got := h2.MustRun(r.Kernel, r.Setup); got.TimePS != want[i].TimePS || got.EnergyJ != want[i].EnergyJ {
			t.Errorf("warm result %d differs from cold", i)
		}
	}
	if st := h2.SchedulerStats(); st.Simulated != 0 || st.CacheHits != uint64(len(grid)) {
		t.Errorf("warm harness: %+v, want 0 simulated / %d cache hits", st, len(grid))
	}
}

// TestCacheKeySchemaVersion: bumping the schema version must change every
// key, invalidating all persisted entries.
func TestCacheKeySchemaVersion(t *testing.T) {
	g, p := config.Default(), power.Default()
	s := Baseline()
	k1 := cacheKeyFor(1, g, p, 1.0, "cutcp", s)
	k2 := cacheKeyFor(2, g, p, 1.0, "cutcp", s)
	if k1 == k2 {
		t.Error("schema version bump did not change the cache key")
	}
	if k1 != cacheKeyFor(1, g, p, 1.0, "cutcp", s) {
		t.Error("cache key not stable across calls")
	}
	if k1 == cacheKeyFor(1, g, p, 0.5, "cutcp", s) {
		t.Error("grid scale not part of the cache key")
	}
	if k1 == cacheKeyFor(1, g, p, 1.0, "lbm", s) {
		t.Error("kernel name not part of the cache key")
	}
	if k1 == cacheKeyFor(1, g, p, 1.0, "cutcp", StaticVF(config.VFHigh, config.VFNormal)) {
		t.Error("setup not part of the cache key")
	}
}

// TestCorruptCacheEntryFallsBackToSimulate: a mangled entry must be counted,
// removed, and replaced by a fresh simulation — never surfaced as a failure.
func TestCorruptCacheEntryFallsBackToSimulate(t *testing.T) {
	k, err := kernels.ByName("bfs-2")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cache, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := New(Options{GridScale: 0.1, Parallelism: 2, Cache: cache})
	want := h.MustRun(k, Baseline())

	// Corrupt the stored entry, then rerun with a fresh harness.
	if err := os.WriteFile(cache.Path(h.cacheKey(k.Name, Baseline())), []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	h2 := New(Options{GridScale: 0.1, Parallelism: 2, Cache: cache})
	got, err := h2.Run(k, Baseline())
	if err != nil {
		t.Fatalf("corrupt entry surfaced as failure: %v", err)
	}
	if got.TimePS != want.TimePS || got.EnergyJ != want.EnergyJ {
		t.Error("re-simulated result differs from original")
	}
	st := h2.SchedulerStats()
	if st.CacheErrors == 0 {
		t.Error("corrupt entry not counted")
	}
	if st.Simulated != 1 {
		t.Errorf("Simulated = %d, want 1 (fall back to simulate)", st.Simulated)
	}
	// The healed entry serves the next harness from disk.
	h3 := New(Options{GridScale: 0.1, Parallelism: 2, Cache: cache})
	h3.MustRun(k, Baseline())
	if st := h3.SchedulerStats(); st.CacheHits != 1 || st.Simulated != 0 {
		t.Errorf("healed entry not served from disk: %+v", st)
	}
}

// TestMultiInvocationAggregatesWeighted: Totals.L1Hit/DRAMUtil must be the
// SM-cycle-weighted mean over invocations, not the last invocation's value
// (the old last-wins bug misreported multi-invocation kernels like bfs-2).
func TestMultiInvocationAggregatesWeighted(t *testing.T) {
	k, err := kernels.ByName("bfs-2")
	if err != nil {
		t.Fatal(err)
	}
	h := New(Options{GridScale: 0.1, Parallelism: 1})
	got := h.MustRun(k, Baseline())

	// Recompute the expected aggregates from a fresh machine.
	kk := h.scaled(k)
	m, err := gpu.New(h.gpuCfg, h.pwrCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.SetLevelsImmediate(config.VFNormal, config.VFNormal)
	var wL1, wDRAM, lastL1 float64
	var cycles int64
	for inv := 0; inv < kk.Invocations; inv++ {
		res, err := m.RunKernel(kk, inv)
		if err != nil {
			t.Fatal(err)
		}
		wL1 += res.L1HitRate * float64(res.SMCycles)
		wDRAM += res.DRAMUtil * float64(res.SMCycles)
		cycles += res.SMCycles
		lastL1 = res.L1HitRate
	}
	wantL1, wantDRAM := wL1/float64(cycles), wDRAM/float64(cycles)
	if math.Abs(got.L1Hit-wantL1) > 1e-9 {
		t.Errorf("L1Hit = %v, want SM-cycle-weighted %v", got.L1Hit, wantL1)
	}
	if math.Abs(got.DRAMUtil-wantDRAM) > 1e-9 {
		t.Errorf("DRAMUtil = %v, want SM-cycle-weighted %v", got.DRAMUtil, wantDRAM)
	}
	// bfs-2's invocations differ, so the weighted mean must not collapse to
	// the old last-invocation value.
	if math.Abs(wantL1-lastL1) > 1e-9 && math.Abs(got.L1Hit-lastL1) < 1e-12 {
		t.Error("L1Hit still reports the last invocation's value")
	}
}

// TestBestStaticBlocksCutoffDeterministic: the monotone-tail short-circuit
// must pick the same block count at every parallelism.
func TestBestStaticBlocksCutoffDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full block sweep")
	}
	if raceDetectorEnabled {
		t.Skip("full block sweep is too slow under the race detector")
	}
	k, err := kernels.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		best int
		ps   int64
	}
	var results []outcome
	for _, par := range []int{1, 4} {
		h := New(Options{GridScale: 0.1, Parallelism: par})
		best, tot := h.BestStaticBlocks(k)
		results = append(results, outcome{best, tot.TimePS})
	}
	if results[0] != results[1] {
		t.Errorf("sweep outcome depends on parallelism: %+v", results)
	}
}
