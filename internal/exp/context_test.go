package exp

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"equalizer/internal/kernels"
)

// testKernel returns a small kernel for cancellation tests.
func testKernel(t *testing.T) kernels.Kernel {
	t.Helper()
	k, err := kernels.ByName("cutcp")
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestRunCtxCanceledBeforeStart: a request whose context is already dead
// must not consume a simulation worker at all.
func TestRunCtxCanceledBeforeStart(t *testing.T) {
	h := New(Options{GridScale: 0.05})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, src, err := h.RunCtx(ctx, testKernel(t), Baseline())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if src != SourceNone {
		t.Errorf("source = %q, want none", src)
	}
	st := h.SchedulerStats()
	if st.Simulated != 0 {
		t.Errorf("canceled request simulated %d runs, want 0", st.Simulated)
	}
	if st.Canceled != 1 {
		t.Errorf("canceled counter = %d, want 1", st.Canceled)
	}
}

// TestRunCtxCancellationDoesNotPoisonMemo: an owner that aborts removes its
// memo entry, so the next request for the same key recomputes successfully
// instead of inheriting context.Canceled forever.
func TestRunCtxCancellationDoesNotPoisonMemo(t *testing.T) {
	h := New(Options{GridScale: 0.05})
	k := testKernel(t)

	// Deadline already expired: the owner path aborts at the first
	// invocation-boundary check inside simulate.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := h.RunCtx(ctx, k, Baseline()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}

	// Same key with a live context must heal.
	tot, src, err := h.RunCtx(context.Background(), k, Baseline())
	if err != nil {
		t.Fatalf("post-cancellation rerun failed: %v", err)
	}
	if src != SourceSim {
		t.Errorf("source = %q, want sim (memo must not hold the canceled attempt)", src)
	}
	if tot.TimePS <= 0 {
		t.Errorf("TimePS = %d, want > 0", tot.TimePS)
	}
}

// TestRunCtxWaiterCancellation: a waiter abandoning a shared computation
// returns promptly with its own context error while the owner's result stays
// intact for later requesters.
func TestRunCtxWaiterCancellation(t *testing.T) {
	h := New(Options{GridScale: 0.05})
	k := testKernel(t)

	var wg sync.WaitGroup
	wg.Add(1)
	ownerDone := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, _, err := h.RunCtx(context.Background(), k, Baseline())
		ownerDone <- err
	}()

	// Give the owner a moment to claim the memo entry, then join as a
	// waiter with a short deadline. Either outcome is legal — the waiter
	// may win a memo hit if the owner is already done — but a timed-out
	// waiter must report its own cancellation.
	time.Sleep(time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	_, _, err := h.RunCtx(ctx, k, Baseline())
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("waiter err = %v, want nil or context.DeadlineExceeded", err)
	}

	wg.Wait()
	if err := <-ownerDone; err != nil {
		t.Fatalf("owner failed: %v", err)
	}
	// The owner's result is shared with later requesters.
	if _, src, err := h.RunCtx(context.Background(), k, Baseline()); err != nil || src != SourceMemo {
		t.Errorf("follow-up = (%q, %v), want (memo, nil)", src, err)
	}
}

// TestRunCtxErrorNotMemoized: a transient simulation failure is not held in
// the memo for the process lifetime — the next request for the same key
// retries and succeeds.
func TestRunCtxErrorNotMemoized(t *testing.T) {
	h := New(Options{GridScale: 0.05})
	k := testKernel(t)
	boom := errors.New("transient fault")
	calls := 0
	h.simFault = func() error {
		calls++
		if calls == 1 {
			return boom
		}
		return nil
	}

	if _, _, err := h.RunCtx(context.Background(), k, Baseline()); !errors.Is(err, boom) {
		t.Fatalf("first run err = %v, want injected fault", err)
	}
	tot, src, err := h.RunCtx(context.Background(), k, Baseline())
	if err != nil {
		t.Fatalf("retry after transient fault failed: %v", err)
	}
	if src != SourceSim {
		t.Errorf("retry source = %q, want sim (memo must not hold the failed attempt)", src)
	}
	if tot.TimePS <= 0 {
		t.Errorf("TimePS = %d, want > 0", tot.TimePS)
	}
	if st := h.SchedulerStats(); st.Canceled != 0 {
		t.Errorf("canceled counter = %d, want 0 (fault is not a cancellation)", st.Canceled)
	}
}

// TestRunCtxStageTiming: an injected clock populates the exp_stage_seconds
// histograms without changing results.
func TestRunCtxStageTiming(t *testing.T) {
	var fake int64
	h := New(Options{GridScale: 0.05, Now: func() int64 { fake += 1e6; return fake }})
	k := testKernel(t)
	if _, _, err := h.RunCtx(context.Background(), k, Baseline()); err != nil {
		t.Fatal(err)
	}
	if h.stageSim.Count() != 1 {
		t.Errorf("simulate stage observations = %d, want 1", h.stageSim.Count())
	}
	if h.stageSim.Sum() <= 0 {
		t.Errorf("simulate stage sum = %v, want > 0", h.stageSim.Sum())
	}
}
