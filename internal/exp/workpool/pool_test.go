package workpool

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond for up to five seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 500; i++ {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDoRunsTasks: every submitted task runs exactly once and Do returns
// after completion.
func TestDoRunsTasks(t *testing.T) {
	p := New(4)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Do(context.Background(), func() { ran.Add(1) }); err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	if ran.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", ran.Load())
	}
	if st := p.Stats(); st.Alive > 4 {
		t.Errorf("alive = %d, want <= 4", st.Alive)
	}
}

// TestWidthBoundsConcurrency: no more than Size tasks execute at once, and
// the pool actually reaches its width under sustained pressure.
func TestWidthBoundsConcurrency(t *testing.T) {
	const width = 3
	p := New(width)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func() { //nolint:errcheck // background ctx cannot fail
				c := cur.Add(1)
				for {
					old := peak.Load()
					if c <= old || peak.CompareAndSwap(old, c) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				cur.Add(-1)
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > width {
		t.Fatalf("peak concurrency %d exceeds width %d", got, width)
	}
	if got := peak.Load(); got < width {
		t.Errorf("peak concurrency %d never reached width %d under pressure", got, width)
	}
}

// TestGrowTakesEffect: after Resize up, the wider pool runs more tasks
// concurrently.
func TestGrowTakesEffect(t *testing.T) {
	p := New(1)
	p.Resize(4)
	block := make(chan struct{})
	var started atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func() { //nolint:errcheck // background ctx cannot fail
				started.Add(1)
				<-block
			})
		}()
	}
	waitFor(t, "4 tasks running concurrently", func() bool { return started.Load() == 4 })
	if got := p.Busy(); got != 4 {
		t.Errorf("busy = %d, want 4", got)
	}
	close(block)
	wg.Wait()
}

// TestShrinkRetiresIdleWorkersImmediately: poison pills wake idle workers so
// a downsize converges without new traffic.
func TestShrinkRetiresIdleWorkersImmediately(t *testing.T) {
	p := New(4)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func() {}) //nolint:errcheck // background ctx cannot fail
		}()
	}
	wg.Wait()
	waitFor(t, "workers idle", func() bool {
		st := p.Stats()
		return st.Busy == 0 && st.Idle == st.Alive
	})
	before := p.Stats().Alive
	if before < 2 {
		t.Skipf("only %d workers spawned; nothing to shrink", before)
	}
	p.Resize(1)
	waitFor(t, "pool shrunk to 1", func() bool { return p.Stats().Alive == 1 })
	if st := p.Stats(); st.Retired != uint64(before-1) {
		t.Errorf("retired = %d, want %d", st.Retired, before-1)
	}
}

// TestShrinkNeverInterruptsInFlightTask: a running task survives a Resize
// below the number of busy workers and completes normally.
func TestShrinkNeverInterruptsInFlightTask(t *testing.T) {
	p := New(2)
	block := make(chan struct{})
	var started atomic.Int64
	var finished atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func() { //nolint:errcheck // background ctx cannot fail
				started.Add(1)
				<-block
				finished.Add(1)
			})
		}()
	}
	waitFor(t, "2 tasks in flight", func() bool { return started.Load() == 2 })
	p.Resize(1)
	if got := finished.Load(); got != 0 {
		t.Fatalf("shrink interrupted tasks: finished = %d", got)
	}
	close(block)
	wg.Wait()
	if finished.Load() != 2 {
		t.Fatalf("finished = %d, want 2", finished.Load())
	}
	// The excess worker retires at its task boundary.
	waitFor(t, "pool at width 1", func() bool { return p.Stats().Alive <= 1 })
}

// TestResizeStormUnderLoad: continuous up/down resizing while tasks flow
// loses no task and ends at the final width (run under -race in CI).
func TestResizeStormUnderLoad(t *testing.T) {
	p := New(2)
	var ran atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		sizes := []int{1, 5, 2, 8, 1, 3}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p.Resize(sizes[i%len(sizes)])
			time.Sleep(time.Millisecond)
		}
	}()
	const n = 300
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func() { ran.Add(1) }) //nolint:errcheck // background ctx cannot fail
		}()
	}
	wg.Wait()
	close(stop)
	if ran.Load() != n {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), n)
	}
	p.Resize(1)
	waitFor(t, "storm settled to 1 worker", func() bool { return p.Stats().Alive <= 1 })
}

// TestDoCanceledWhileQueued: a submitter whose context ends before pickup
// gets the context error and its closure never runs.
func TestDoCanceledWhileQueued(t *testing.T) {
	p := New(1)
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Do(context.Background(), func() { <-block }) //nolint:errcheck // background ctx cannot fail
	}()
	waitFor(t, "worker busy", func() bool { return p.Busy() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	ranSecond := false
	go func() {
		errc <- p.Do(ctx, func() { ranSecond = true })
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	close(block)
	wg.Wait()
	// Give the worker a chance to (wrongly) pick the abandoned task up.
	p.Do(context.Background(), func() {}) //nolint:errcheck // background ctx cannot fail
	if ranSecond {
		t.Error("abandoned task ran after cancellation")
	}
}

// TestDoPreCanceledContext: an already-ended context never submits.
func TestDoPreCanceledContext(t *testing.T) {
	p := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Do(ctx, func() { t.Error("task ran") }); err != context.Canceled {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
}

// TestResizeClampsAndCounts: widths below one clamp to one; no-op resizes
// are not counted.
func TestResizeClampsAndCounts(t *testing.T) {
	p := New(0)
	if got := p.Size(); got != 1 {
		t.Fatalf("New(0) size = %d, want 1", got)
	}
	if got := p.Resize(-3); got != 1 {
		t.Fatalf("Resize(-3) = %d, want 1", got)
	}
	if st := p.Stats(); st.Resizes != 0 {
		t.Errorf("no-op resize counted: %d", st.Resizes)
	}
	p.Resize(7)
	if st := p.Stats(); st.Size != 7 || st.Resizes != 1 {
		t.Errorf("stats after Resize(7): %+v", st)
	}
}
