// Package workpool provides the resizable worker pool behind the experiment
// harness and the simulation service: a bounded set of long-lived workers
// executing submitted closures, whose width can be retuned at runtime by a
// feedback controller without ever interrupting a task in flight.
//
// Growth spawns workers on demand (a worker is only created when a task is
// waiting and no idle worker exists, so an oversized pool costs nothing);
// shrinking retires workers cooperatively at task boundaries: a worker
// checks the target width between tasks and exits when the pool is over
// target, and idle workers are woken with poison pills so a downsize takes
// effect without waiting for new traffic. Because resizing only changes how
// many closures run concurrently — never what a closure computes — callers
// keep their byte-identical-results guarantee at any width.
package workpool

import (
	"context"
	"sync"
	"sync/atomic"
)

// task is one submitted closure plus its completion handshake. claimed
// settles the race between a worker picking the task up and the submitter
// abandoning it on context cancellation: whoever wins the CAS owns the
// task's fate.
type task struct {
	f       func()
	done    chan struct{}
	claimed atomic.Bool
}

// Pool is a resizable worker pool. The zero value is not usable; construct
// with New. Safe for concurrent use.
type Pool struct {
	// tasks is unbuffered: a submitter blocks in Do until a worker
	// receives its task, so "queued work" lives in the submitters and the
	// pool's width alone bounds concurrency. nil on the channel is a
	// poison pill: it wakes an idle worker so it can re-check the target
	// width and retire.
	tasks chan *task

	mu      sync.Mutex
	size    int // target width
	alive   int // workers running (idle + busy)
	idle    int // workers blocked waiting for a task
	waiting int // submitters blocked handing a task off
	spawned uint64
	retired uint64
	resizes uint64

	busy atomic.Int64 // workers currently executing a task
}

// Stats is a point-in-time snapshot of the pool.
type Stats struct {
	Size    int    `json:"size"`
	Alive   int    `json:"alive"`
	Idle    int    `json:"idle"`
	Busy    int    `json:"busy"`
	Spawned uint64 `json:"spawned"`
	Retired uint64 `json:"retired"`
	Resizes uint64 `json:"resizes"`
}

// New builds a pool with the given target width (clamped to >= 1). No
// workers are started until work arrives.
func New(size int) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{tasks: make(chan *task), size: size}
}

// Size returns the current target width.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.size
}

// Busy returns the number of workers currently executing a task.
func (p *Pool) Busy() int { return int(p.busy.Load()) }

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Size: p.size, Alive: p.alive, Idle: p.idle, Busy: int(p.busy.Load()),
		Spawned: p.spawned, Retired: p.retired, Resizes: p.resizes,
	}
}

// Resize sets the target width (clamped to >= 1) and returns the width
// actually applied. Growing takes effect lazily — new workers spawn as work
// arrives. Shrinking is cooperative: busy workers finish their current task
// first (a task is never interrupted), and idle workers are woken with
// poison pills so they retire immediately.
func (p *Pool) Resize(n int) int {
	if n < 1 {
		n = 1
	}
	p.mu.Lock()
	if n == p.size {
		p.mu.Unlock()
		return n
	}
	p.size = n
	p.resizes++
	wake := 0
	if p.alive > n && p.idle > 0 {
		wake = p.alive - n
		if wake > p.idle {
			wake = p.idle
		}
	}
	p.mu.Unlock()
	for i := 0; i < wake; i++ {
		// Non-blocking: succeeds only when an idle worker is already in
		// receive. A worker that misses its pill (just went busy) still
		// retires at its next task boundary.
		select {
		case p.tasks <- nil:
		default:
		}
	}
	return n
}

// Do submits f and blocks until a worker has run it to completion. If ctx
// ends before a worker picks the task up, Do abandons it and returns the
// context's error; once a worker has claimed the task it always runs to
// completion (Do then waits for it even if ctx has expired, so f's captured
// variables are never racily abandoned mid-write).
func (p *Pool) Do(ctx context.Context, f func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t := &task{f: f, done: make(chan struct{})}
	p.mu.Lock()
	p.waiting++
	// Spawn only when the submitters already queueing outnumber the idle
	// workers — an idle worker that exists will take this task, and a
	// worker beyond the target width must not be created.
	if p.idle < p.waiting && p.alive < p.size {
		p.alive++
		p.spawned++
		go p.worker()
	}
	p.mu.Unlock()
	handedOff := false
	select {
	case p.tasks <- t:
		handedOff = true
	case <-ctx.Done():
	}
	p.mu.Lock()
	p.waiting--
	p.mu.Unlock()
	if !handedOff {
		return ctx.Err()
	}
	select {
	case <-t.done:
		return nil
	case <-ctx.Done():
		if t.claimed.CompareAndSwap(false, true) {
			// No worker had picked the task up; it will be skipped.
			return ctx.Err()
		}
		// A worker claimed it concurrently: wait out the execution.
		<-t.done
		return nil
	}
}

// worker is one pool goroutine: take a task, run it, re-check the target
// width, repeat. Retirement happens only here, between tasks.
func (p *Pool) worker() {
	for {
		p.mu.Lock()
		if p.alive > p.size {
			p.alive--
			p.retired++
			p.mu.Unlock()
			return
		}
		p.idle++
		p.mu.Unlock()

		t := <-p.tasks

		p.mu.Lock()
		p.idle--
		p.mu.Unlock()
		if t == nil {
			continue // poison pill: loop to re-check the target width
		}
		if !t.claimed.CompareAndSwap(false, true) {
			continue // submitter abandoned the task on cancellation
		}
		p.busy.Add(1)
		t.f()
		p.busy.Add(-1)
		close(t.done)
	}
}
