package exp

import (
	"fmt"
	"strings"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/metrics"
	"equalizer/internal/policy"
)

// Table1 renders Table I: the action matrix of the Equalizer runtime.
func (h *Harness) Table1() string {
	t := metrics.NewTable("kernel type", "objective", "SM freq", "DRAM freq", "num blocks")
	for _, r := range core.ActionTable() {
		t.AddRow(r.Kernel, r.Objective, r.SMFreq, r.DRAMFreq, r.Blocks)
	}
	return "Table I: actions on each parameter per kernel type and objective\n" + t.String()
}

// Table2 renders Table II: the benchmark registry.
func (h *Harness) Table2() string {
	t := metrics.NewTable("application", "kernel", "type", "fraction", "num blocks", "Wcta", "invocations")
	for _, k := range kernels.All() {
		t.AddRowf(k.App, k.Name, k.Category.String(), fmt.Sprintf("%.2f", k.Fraction),
			k.BlocksPerSM, k.Wcta, k.Invocations)
	}
	return "Table II: benchmark description\n" + t.String()
}

// Table3 renders Table III: the simulated machine parameters.
func (h *Harness) Table3() string {
	g := h.gpuCfg
	t := metrics.NewTable("parameter", "value")
	t.AddRow("Architecture", fmt.Sprintf("Fermi-style (%d SMs, %d PE/SM)", g.NumSMs, g.PEsPerSM))
	t.AddRow("Max Thread Blocks:Warps", fmt.Sprintf("%d:%d", g.MaxBlocksPerSM, g.MaxWarpsPerSM))
	t.AddRow("Data Cache", fmt.Sprintf("%d Sets, %d Way, %d B/Line", g.L1.Sets, g.L1.Ways, g.L1.LineBytes))
	t.AddRow("L2 Cache", fmt.Sprintf("%d Sets, %d Way, %d B/Line", g.L2.Sets, g.L2.Ways, g.L2.LineBytes))
	t.AddRow("SM V/F Modulation", fmt.Sprintf("±%.0f%%, on-chip regulator (%d cycles)", g.Modulation*100, g.VRMTransitionCycles))
	t.AddRow("Memory V/F Modulation", fmt.Sprintf("±%.0f%%", g.Modulation*100))
	t.AddRow("Equalizer epoch", fmt.Sprintf("%d cycles, sample every %d", config.DefaultEqualizer().EpochCycles, config.DefaultEqualizer().SampleInterval))
	return "Table III: simulation parameters\n" + t.String()
}

// Fig1Point is one kernel under one static configuration.
type Fig1Point struct {
	Kernel     string
	Category   kernels.Category
	Speedup    float64
	Efficiency float64
}

// Fig1Data holds every panel of Figure 1.
type Fig1Data struct {
	SMHigh, SMLow   []Fig1Point // panels (a) and (b)
	MemHigh, MemLow []Fig1Point // panels (c) and (d)
	// BestBlocks maps each kernel to the best static block count relative
	// to the maximum (panel e), and OptBlocks holds the speedup/efficiency
	// of running that count (panel f).
	BestBlocks []Fig1Blocks
	OptBlocks  []Fig1Point
}

// Fig1Blocks is one kernel's panel-(e) entry.
type Fig1Blocks struct {
	Kernel    string
	Category  kernels.Category
	Best, Max int
	Speedup   float64
}

// Figure1 measures the impact of varying SM frequency, memory frequency and
// thread-block count on every kernel (paper Figure 1).
func (h *Harness) Figure1() (Fig1Data, error) {
	var grid []RunRequest
	for _, k := range kernels.All() {
		for _, s := range []Setup{
			Baseline(),
			StaticVF(config.VFHigh, config.VFNormal),
			StaticVF(config.VFLow, config.VFNormal),
			StaticVF(config.VFNormal, config.VFHigh),
			StaticVF(config.VFNormal, config.VFLow),
		} {
			grid = append(grid, RunRequest{Kernel: k, Setup: s})
		}
	}
	h.Prefetch(grid)
	var d Fig1Data
	for _, k := range kernels.All() {
		base, err := h.Run(k, Baseline())
		if err != nil {
			return d, err
		}
		point := func(s Setup) (Fig1Point, error) {
			t, err := h.Run(k, s)
			if err != nil {
				return Fig1Point{}, err
			}
			return Fig1Point{
				Kernel:     k.Name,
				Category:   k.Category,
				Speedup:    t.Speedup(base),
				Efficiency: t.Efficiency(base),
			}, nil
		}
		p, err := point(StaticVF(config.VFHigh, config.VFNormal))
		if err != nil {
			return d, err
		}
		d.SMHigh = append(d.SMHigh, p)
		if p, err = point(StaticVF(config.VFLow, config.VFNormal)); err != nil {
			return d, err
		}
		d.SMLow = append(d.SMLow, p)
		if p, err = point(StaticVF(config.VFNormal, config.VFHigh)); err != nil {
			return d, err
		}
		d.MemHigh = append(d.MemHigh, p)
		if p, err = point(StaticVF(config.VFNormal, config.VFLow)); err != nil {
			return d, err
		}
		d.MemLow = append(d.MemLow, p)

		best, bestT := h.BestStaticBlocks(k)
		d.BestBlocks = append(d.BestBlocks, Fig1Blocks{
			Kernel:   k.Name,
			Category: k.Category,
			Best:     best,
			Max:      k.MaxResidentBlocks(h.gpuCfg.MaxWarpsPerSM),
			Speedup:  bestT.Speedup(base),
		})
		d.OptBlocks = append(d.OptBlocks, Fig1Point{
			Kernel:     k.Name,
			Category:   k.Category,
			Speedup:    bestT.Speedup(base),
			Efficiency: bestT.Efficiency(base),
		})
	}
	return d, nil
}

// RenderFigure1 formats the Figure 1 panels as text tables.
func RenderFigure1(d Fig1Data) string {
	var b strings.Builder
	panel := func(title string, pts []Fig1Point) {
		fmt.Fprintf(&b, "Figure 1%s\n", title)
		t := metrics.NewTable("kernel", "category", "speedup", "energy-eff")
		for _, p := range pts {
			t.AddRowf(p.Kernel, p.Category.String(), p.Speedup, p.Efficiency)
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	panel("a: SM frequency +15%", d.SMHigh)
	panel("b: SM frequency -15%", d.SMLow)
	panel("c: DRAM frequency +15%", d.MemHigh)
	panel("d: DRAM frequency -15%", d.MemLow)
	fmt.Fprintf(&b, "Figure 1e: best static thread-block count\n")
	t := metrics.NewTable("kernel", "category", "best blocks", "max blocks", "speedup")
	for _, p := range d.BestBlocks {
		t.AddRowf(p.Kernel, p.Category.String(), p.Best, p.Max, p.Speedup)
	}
	b.WriteString(t.String())
	b.WriteString("\n")
	panel("f: statically optimal block count", d.OptBlocks)
	return b.String()
}

// Fig2aData holds the per-invocation execution-time distribution of bfs-2
// under fixed block counts plus the per-invocation optimum (paper Figure 2a).
type Fig2aData struct {
	// InvocationPS[config][inv] is the wall time of each invocation;
	// configs are 1, 2, 3 blocks and "Opt".
	Blocks1, Blocks2, Blocks3, Opt []int64
}

// TotalPS sums one configuration's invocations.
func TotalPS(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// Figure2a reproduces the bfs-2 inter-invocation study.
func (h *Harness) Figure2a() (Fig2aData, error) {
	k, err := kernels.ByName("bfs-2")
	if err != nil {
		return Fig2aData{}, err
	}
	h.Prefetch([]RunRequest{
		{Kernel: k, Setup: StaticBlocks(1)},
		{Kernel: k, Setup: StaticBlocks(2)},
		{Kernel: k, Setup: StaticBlocks(3)},
	})
	var d Fig2aData
	runs := []struct {
		blocks int
		dst    *[]int64
	}{{1, &d.Blocks1}, {2, &d.Blocks2}, {3, &d.Blocks3}}
	for _, r := range runs {
		t, err := h.Run(k, StaticBlocks(r.blocks))
		if err != nil {
			return d, err
		}
		*r.dst = t.PerInvocationPS
	}
	// Opt picks the best configuration per invocation.
	for inv := range d.Blocks1 {
		best := d.Blocks1[inv]
		if d.Blocks2[inv] < best {
			best = d.Blocks2[inv]
		}
		if d.Blocks3[inv] < best {
			best = d.Blocks3[inv]
		}
		d.Opt = append(d.Opt, best)
	}
	return d, nil
}

// RenderFigure2a formats the bfs-2 study, normalised to the 3-block total as
// in the paper.
func RenderFigure2a(d Fig2aData) string {
	var b strings.Builder
	b.WriteString("Figure 2a: bfs-2 execution time per invocation (normalised to 3-block total)\n")
	norm := float64(TotalPS(d.Blocks3))
	t := metrics.NewTable("invocation", "1 block", "2 blocks", "3 blocks", "opt")
	for inv := range d.Blocks1 {
		t.AddRowf(inv+1,
			float64(d.Blocks1[inv])/norm,
			float64(d.Blocks2[inv])/norm,
			float64(d.Blocks3[inv])/norm,
			float64(d.Opt[inv])/norm)
	}
	t.AddRowf("total",
		float64(TotalPS(d.Blocks1))/norm,
		float64(TotalPS(d.Blocks2))/norm,
		float64(TotalPS(d.Blocks3))/norm,
		float64(TotalPS(d.Opt))/norm)
	b.WriteString(t.String())
	imp := 1 - float64(TotalPS(d.Opt))/norm
	fmt.Fprintf(&b, "per-invocation optimal saves %s vs 3 blocks\n", metrics.Pct(imp))
	return b.String()
}

// Figure2b records the warp-state time series of mri_g-1 (paper Figure 2b):
// waiting warps vs excess-memory vs excess-compute warps over the run.
func (h *Harness) Figure2b() ([]policy.EpochPoint, error) {
	k, err := kernels.ByName("mri_g-1")
	if err != nil {
		return nil, err
	}
	return h.monitorSeries(k)
}

// monitorSeries runs a kernel with the passive monitor and returns the
// per-epoch census series of the final invocation.
func (h *Harness) monitorSeries(k kernels.Kernel) ([]policy.EpochPoint, error) {
	mon := policy.NewMonitor()
	m, err := gpu.New(h.gpuCfg, h.pwrCfg, mon)
	if err != nil {
		return nil, err
	}
	kk := h.scaled(k)
	var series []policy.EpochPoint
	for inv := 0; inv < kk.Invocations; inv++ {
		if _, err := m.RunKernel(kk, inv); err != nil {
			return nil, err
		}
		series = append(series, mon.Series()...)
	}
	return series, nil
}

// RenderSeries formats an epoch census series.
func RenderSeries(title string, pts []policy.EpochPoint) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	t := metrics.NewTable("epoch", "active", "waiting", "xmem", "xalu")
	for _, p := range pts {
		t.AddRowf(p.Epoch, p.Active, p.Waiting, p.XMEM, p.XALU)
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig4Row is one kernel's warp-state distribution (paper Figure 4).
type Fig4Row struct {
	Kernel   string
	Category kernels.Category
	// Fractions of accounted warp-state observations.
	Waiting, Issued, XALU, XMEM float64
}

// Figure4 measures the state of warps for all kernels at maximum threads.
func (h *Harness) Figure4() ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, k := range kernels.All() {
		mon := policy.NewMonitor()
		m, err := gpu.New(h.gpuCfg, h.pwrCfg, mon)
		if err != nil {
			return nil, err
		}
		kk := h.scaled(k)
		// The distribution is measured on the kernel's dominant invocation.
		if _, err := m.RunKernel(kk, 0); err != nil {
			return nil, err
		}
		w, i, xa, xm := mon.Distribution()
		rows = append(rows, Fig4Row{
			Kernel: k.Name, Category: k.Category,
			Waiting: w, Issued: i, XALU: xa, XMEM: xm,
		})
	}
	return rows, nil
}

// RenderFigure4 formats the warp-state distribution.
func RenderFigure4(rows []Fig4Row) string {
	var b strings.Builder
	b.WriteString("Figure 4: state of warps per kernel (fraction of observations)\n")
	t := metrics.NewTable("kernel", "category", "waiting", "issued", "excess ALU", "excess mem", "xalu|xmem")
	for _, r := range rows {
		t.AddRowf(r.Kernel, r.Category.String(), r.Waiting, r.Issued, r.XALU, r.XMEM,
			metrics.Bar(r.XALU, 10)+"|"+metrics.Bar(r.XMEM, 10))
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig5Row is one memory kernel's block sweep (paper Figure 5).
type Fig5Row struct {
	Kernel string
	// Speedup[i] is performance with i+1 blocks relative to 1 block.
	Speedup []float64
}

// Figure5 sweeps the thread-block count for the memory-intensive kernels.
func (h *Harness) Figure5() ([]Fig5Row, error) {
	var grid []RunRequest
	for _, k := range kernels.ByCategory(kernels.Memory) {
		for b := 1; b <= k.MaxResidentBlocks(h.gpuCfg.MaxWarpsPerSM); b++ {
			grid = append(grid, RunRequest{Kernel: k, Setup: StaticBlocks(b)})
		}
	}
	h.Prefetch(grid)
	var rows []Fig5Row
	for _, k := range kernels.ByCategory(kernels.Memory) {
		maxBlocks := k.MaxResidentBlocks(h.gpuCfg.MaxWarpsPerSM)
		one, err := h.Run(k, StaticBlocks(1))
		if err != nil {
			return nil, err
		}
		row := Fig5Row{Kernel: k.Name}
		for b := 1; b <= maxBlocks; b++ {
			t, err := h.Run(k, StaticBlocks(b))
			if err != nil {
				return nil, err
			}
			row.Speedup = append(row.Speedup, t.Speedup(one))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure5 formats the memory-kernel block sweep.
func RenderFigure5(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("Figure 5: memory-kernel performance vs concurrent thread blocks (vs 1 block)\n")
	maxLen := 0
	for _, r := range rows {
		if len(r.Speedup) > maxLen {
			maxLen = len(r.Speedup)
		}
	}
	header := []string{"kernel"}
	for i := 1; i <= maxLen; i++ {
		header = append(header, fmt.Sprintf("%db", i))
	}
	t := metrics.NewTable(header...)
	for _, r := range rows {
		cells := []interface{}{r.Kernel}
		for _, s := range r.Speedup {
			cells = append(cells, s)
		}
		t.AddRowf(cells...)
	}
	b.WriteString(t.String())
	return b.String()
}
