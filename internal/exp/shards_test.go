package exp

import (
	"testing"
)

// TestEffectiveShardsTracksPoolResize pins the shard-budget recomputation
// against PR 9's resizable worker pool: in auto mode (Options.SMShards = 0)
// the per-simulation shard width must be derived from the LIVE pool size,
// not the width the harness was built with — a tuner that grows the pool to
// saturation must push new simulations to sequential machines, and one that
// shrinks it must hand the freed cores to shard workers.
func TestEffectiveShardsTracksPoolResize(t *testing.T) {
	h := New(Options{Parallelism: 2})
	if !h.autoShards {
		t.Fatal("SMShards=0 did not enable auto shard mode")
	}
	numSMs := h.gpuCfg.NumSMs
	for _, tc := range []struct {
		poolSize, procs, want int
	}{
		{1, 8, 8},  // lone runner gets the whole host
		{4, 8, 2},  // half-busy pool splits the cores
		{8, 8, 1},  // saturated pool: sequential machines
		{16, 8, 1}, // oversubscribed pool clamps to 1
	} {
		h.pool.Resize(tc.poolSize)
		if got := h.effectiveShardsAt(tc.procs); got != tc.want {
			t.Errorf("effectiveShardsAt(procs=%d) with pool size %d = %d, want %d",
				tc.procs, tc.poolSize, got, tc.want)
		}
	}
	// A huge host still caps the width at one worker per SM.
	h.pool.Resize(1)
	if got := h.effectiveShardsAt(4 * numSMs); got != numSMs {
		t.Errorf("effectiveShardsAt(procs=%d) = %d, want NumSMs cap %d", 4*numSMs, got, numSMs)
	}

	// An explicit SMShards pins the width no matter how the pool moves.
	hp := New(Options{Parallelism: 2, SMShards: 3})
	if hp.autoShards {
		t.Fatal("explicit SMShards left auto shard mode on")
	}
	hp.pool.Resize(64)
	if got := hp.effectiveShardsAt(128); got != 3 {
		t.Errorf("pinned harness effectiveShardsAt = %d, want 3", got)
	}
	if got := hp.SMShards(); got != 3 {
		t.Errorf("SMShards() = %d, want 3", got)
	}
}
