package exp

import (
	"strings"
	"testing"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/kernels"
)

// smallHarness shrinks every grid to a quarter so smoke tests stay fast.
func smallHarness() *Harness {
	return New(Options{GridScale: 0.25})
}

func TestTablesRender(t *testing.T) {
	h := smallHarness()
	for name, s := range map[string]string{
		"table1": h.Table1(),
		"table2": h.Table2(),
		"table3": h.Table3(),
	} {
		if len(s) == 0 {
			t.Errorf("%s empty", name)
		}
	}
	if !strings.Contains(h.Table1(), "maintain") {
		t.Error("Table I missing action verbs")
	}
	if !strings.Contains(h.Table2(), "bfs-2") || !strings.Contains(h.Table2(), "kmn") {
		t.Error("Table II missing kernels")
	}
	if !strings.Contains(h.Table3(), "15 SMs") {
		t.Error("Table III missing architecture line")
	}
}

func TestSetupConstructors(t *testing.T) {
	if s := EqualizerSetup(core.PerformanceMode); s.Policy != "equalizer-perf" {
		t.Fatalf("perf setup = %+v", s)
	}
	if s := EqualizerSetup(core.EnergyMode); s.Policy != "equalizer-energy" {
		t.Fatalf("energy setup = %+v", s)
	}
	if s := StaticBlocks(3); s.Blocks != 3 || s.Policy != "blocks" {
		t.Fatalf("blocks setup = %+v", s)
	}
	names := KernelNames()
	if len(names) != 27 {
		t.Fatalf("KernelNames lists %d kernels, want 27", len(names))
	}
}

func TestRunMemoisation(t *testing.T) {
	h := smallHarness()
	k, _ := kernels.ByName("cutcp")
	t1 := h.MustRun(k, Baseline())
	t2 := h.MustRun(k, Baseline())
	if t1.TimePS != t2.TimePS {
		t.Fatal("memoised run differs")
	}
	if len(h.memo) != 1 {
		t.Fatalf("memo holds %d entries, want 1", len(h.memo))
	}
}

func TestStaticVFRunsAtRequestedPoint(t *testing.T) {
	h := smallHarness()
	k, _ := kernels.ByName("cutcp")
	base := h.MustRun(k, Baseline())
	hi := h.MustRun(k, StaticVF(config.VFHigh, config.VFNormal))
	if hi.Speedup(base) < 1.05 {
		t.Fatalf("SM-high speedup = %.3f on a compute kernel", hi.Speedup(base))
	}
	if hi.Residency.SM[config.VFHigh] == 0 {
		t.Fatal("no SM-high residency under StaticVF")
	}
}

func TestBestStaticBlocksFindsCacheOptimum(t *testing.T) {
	h := smallHarness()
	k, _ := kernels.ByName("kmn")
	best, bestT := h.BestStaticBlocks(k)
	if best >= k.MaxResidentBlocks(48) {
		t.Fatalf("best blocks = %d, want below maximum for a cache kernel", best)
	}
	base := h.MustRun(k, Baseline())
	if bestT.Speedup(base) < 1.2 {
		t.Fatalf("optimal blocks give only %.2fx", bestT.Speedup(base))
	}
}

func TestFigure4Shapes(t *testing.T) {
	h := smallHarness()
	rows, err := h.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 27 {
		t.Fatalf("figure 4 has %d rows, want 27", len(rows))
	}
	byName := map[string]Fig4Row{}
	for _, r := range rows {
		byName[r.Kernel] = r
		sum := r.Waiting + r.Issued + r.XALU + r.XMEM
		if sum < 0.98 || sum > 1.02 {
			t.Errorf("%s: distribution sums to %g", r.Kernel, sum)
		}
	}
	// Category signatures of the paper's Figure 4.
	if r := byName["cutcp"]; r.XALU <= r.XMEM {
		t.Errorf("compute kernel cutcp: XALU %.2f <= XMEM %.2f", r.XALU, r.XMEM)
	}
	if r := byName["lbm"]; r.XMEM <= r.XALU {
		t.Errorf("memory kernel lbm: XMEM %.2f <= XALU %.2f", r.XMEM, r.XALU)
	}
	if r := byName["kmn"]; r.XMEM <= r.XALU {
		t.Errorf("cache kernel kmn: XMEM %.2f <= XALU %.2f", r.XMEM, r.XALU)
	}
	out := RenderFigure4(rows)
	if !strings.Contains(out, "excess ALU") {
		t.Error("render missing header")
	}
}

func TestFigure5MemoryKernelsSaturateEarly(t *testing.T) {
	h := smallHarness()
	rows, err := h.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("figure 5 has %d kernels, want 5 memory kernels", len(rows))
	}
	for _, r := range rows {
		last := r.Speedup[len(r.Speedup)-1]
		if len(r.Speedup) < 2 {
			continue
		}
		// Performance at max blocks must be within 15% of the knee value —
		// i.e. saturated well before maximum concurrency.
		knee := r.Speedup[len(r.Speedup)/2]
		if last > knee*1.2 {
			t.Errorf("%s: perf still rising at max blocks (%.2f vs knee %.2f)", r.Kernel, last, knee)
		}
	}
	if out := RenderFigure5(rows); !strings.Contains(out, "lbm") {
		t.Error("render missing kernels")
	}
}

func TestFigure2aOptimalChangesMidRun(t *testing.T) {
	h := smallHarness()
	d, err := h.Figure2a()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Blocks1) != 12 {
		t.Fatalf("bfs-2 ran %d invocations, want 12", len(d.Blocks1))
	}
	// Early invocations favour 3 blocks; mid invocations favour 1.
	if d.Blocks3[0] >= d.Blocks1[0] {
		t.Error("invocation 1: 3 blocks not faster than 1")
	}
	if d.Blocks1[8] >= d.Blocks3[8] {
		t.Error("invocation 9: 1 block not faster than 3")
	}
	if TotalPS(d.Opt) >= TotalPS(d.Blocks3) {
		t.Error("optimal not better than static 3 blocks")
	}
	if out := RenderFigure2a(d); !strings.Contains(out, "opt") {
		t.Error("render missing opt column")
	}
}

func TestFigure10Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	h := smallHarness()
	rows, err := h.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("figure 10 has %d kernels, want 7", len(rows))
	}
	for _, r := range rows {
		// At quarter-scale grids the adaptation ramp is a large fraction of
		// the run, so thresholds are loose; the full-scale ordering is
		// asserted by TestSpmvAdaptivityOrdering and the bench harness.
		if r.Kernel == "spmv" {
			if r.EqualizerPf < 0.9 {
				t.Errorf("spmv: equalizer speedup %.2f collapsed", r.EqualizerPf)
			}
			continue
		}
		if r.EqualizerPf <= 1.0 {
			t.Errorf("%s: equalizer speedup %.2f <= 1", r.Kernel, r.EqualizerPf)
		}
	}
}

func TestSpmvAdaptivityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	h := New(Options{}) // full scale
	k, err := kernels.ByName("spmv")
	if err != nil {
		t.Fatal(err)
	}
	base := h.MustRun(k, Baseline())
	dyn := h.MustRun(k, Setup{Policy: "dynCTA", SM: config.VFNormal, Mem: config.VFNormal})
	eq := h.MustRun(k, Setup{Policy: "equalizer-perf", SM: config.VFNormal, Mem: config.VFNormal})
	if eq.Speedup(base) <= dyn.Speedup(base) {
		t.Fatalf("spmv: equalizer %.3f must beat dynCTA %.3f (Figure 11b adaptivity)",
			eq.Speedup(base), dyn.Speedup(base))
	}
}

func TestFigure11bTraces(t *testing.T) {
	h := smallHarness()
	d, err := h.Figure11b()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Equalizer) == 0 || len(d.DynCTA) == 0 {
		t.Fatal("missing traces")
	}
	if out := RenderFigure11b(d); !strings.Contains(out, "spmv") {
		t.Error("render missing title")
	}
}

func TestSummarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	h := smallHarness()
	s, err := h.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if s.PerfModeSpeedup <= 1.0 {
		t.Fatalf("performance-mode speedup %.3f <= 1", s.PerfModeSpeedup)
	}
	if s.EnergyModeSavings <= 0 {
		t.Fatalf("energy-mode savings %.3f <= 0", s.EnergyModeSavings)
	}
	if s.EnergyModePerf < 0.9 {
		t.Fatalf("energy mode lost %.1f%% performance", (1-s.EnergyModePerf)*100)
	}
	out := RenderSummary(s)
	if !strings.Contains(out, "1.22") {
		t.Error("summary missing paper reference values")
	}
}
