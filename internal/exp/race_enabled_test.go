//go:build race

package exp

// raceDetectorEnabled reports whether this test binary was built with -race.
// The full-grid determinism tests are an order of magnitude slower under the
// detector and skip themselves; TestPrefetchRaceSmoke covers the concurrent
// paths instead.
const raceDetectorEnabled = true
