package dram

import (
	"testing"
	"testing/quick"

	"equalizer/internal/cache"
)

func bankedCfg() BankedConfig {
	return BankedConfig{
		Banks: 4, RowBytes: 1024, QueueDepth: 32,
		RowHitInterval: 1, RowMissInterval: 4, Latency: 10,
	}
}

func TestBankedValidate(t *testing.T) {
	bad := []func(*BankedConfig){
		func(c *BankedConfig) { c.Banks = 0 },
		func(c *BankedConfig) { c.RowBytes = 1000 },
		func(c *BankedConfig) { c.QueueDepth = 0 },
		func(c *BankedConfig) { c.RowHitInterval = 0 },
		func(c *BankedConfig) { c.RowMissInterval = 0 },
		func(c *BankedConfig) { c.Latency = -1 },
	}
	for i, mutate := range bad {
		c := bankedCfg()
		mutate(&c)
		if _, err := NewBanked(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultBanked().Validate(); err != nil {
		t.Fatalf("default banked config invalid: %v", err)
	}
}

// drainAll services everything and returns (lines, completion cycles).
func drainAll(b *Banked, limit int64) ([]cache.Addr, []int64) {
	var lines []cache.Addr
	var at []int64
	for cycle := int64(0); cycle < limit && !b.Drained(); cycle++ {
		for _, l := range b.Step(cycle) {
			lines = append(lines, l)
			at = append(at, cycle)
		}
	}
	return lines, at
}

func TestRowHitsServiceFaster(t *testing.T) {
	// Same-row requests stream at the hit interval; scattered rows pay the
	// miss penalty every time.
	sameRow := MustNewBanked(bankedCfg())
	for i := 0; i < 8; i++ {
		sameRow.Enqueue(cache.Addr(i * 128)) // all inside row 0
	}
	_, atSame := drainAll(sameRow, 10000)

	scattered := MustNewBanked(bankedCfg())
	for i := 0; i < 8; i++ {
		// Same bank (stride banks*rowBytes), different row every time.
		scattered.Enqueue(cache.Addr(i * 4 * 1024))
	}
	_, atScattered := drainAll(scattered, 10000)

	if atSame[len(atSame)-1] >= atScattered[len(atScattered)-1] {
		t.Fatalf("row-hit stream (%d cycles) not faster than row-miss stream (%d)",
			atSame[len(atSame)-1], atScattered[len(atScattered)-1])
	}
	if hr := sameRow.BankedStats().RowHitRate(); hr < 0.8 {
		t.Fatalf("same-row hit rate = %.2f, want high", hr)
	}
	if hr := scattered.BankedStats().RowHitRate(); hr != 0 {
		t.Fatalf("scattered hit rate = %.2f, want 0", hr)
	}
}

func TestFRFCFSPrefersOpenRow(t *testing.T) {
	b := MustNewBanked(bankedCfg())
	// Bank 0: open row 0 via first request; then a row-1 request arrives
	// before another row-0 request. FR-FCFS must service the row-0 hit
	// before the older row-1 miss once the row is open.
	b.Enqueue(cache.Addr(0))        // row 0, opens it
	b.Enqueue(cache.Addr(4 * 1024)) // bank 0, row 4 (miss)
	b.Enqueue(cache.Addr(128))      // row 0 again (hit)
	lines, _ := drainAll(b, 1000)
	if len(lines) != 3 {
		t.Fatalf("serviced %d, want 3", len(lines))
	}
	if lines[1] != 128 {
		t.Fatalf("second service = %#x, want the row-0 hit (0x80)", uint64(lines[1]))
	}
	if b.BankedStats().RowHits != 1 {
		t.Fatalf("row hits = %d, want 1", b.BankedStats().RowHits)
	}
}

func TestBankInterleaving(t *testing.T) {
	b := MustNewBanked(bankedCfg())
	// Consecutive rows map to different banks.
	if b.bankOf(0) == b.bankOf(1024) {
		t.Fatal("adjacent rows in the same bank")
	}
	if b.bankOf(0) != b.bankOf(4*1024) {
		t.Fatal("bank mapping must wrap at Banks*RowBytes")
	}
}

func TestBankedQueueBound(t *testing.T) {
	b := MustNewBanked(bankedCfg())
	for i := 0; i < 32; i++ {
		if !b.Enqueue(cache.Addr(i * 128)) {
			t.Fatalf("enqueue %d rejected below capacity", i)
		}
	}
	if b.CanAccept() || b.Enqueue(0x999999) {
		t.Fatal("accepted past QueueDepth")
	}
	if b.Stats().Rejected != 1 {
		t.Fatal("rejection not counted")
	}
}

// Property: everything enqueued is serviced exactly once, regardless of the
// address pattern, and completion times never decrease.
func TestQuickBankedConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		b := MustNewBanked(bankedCfg())
		want := map[cache.Addr]int{}
		n := 0
		for _, r := range raw {
			if n >= 32 {
				break
			}
			a := cache.Addr(r) * 128
			if b.Enqueue(a) {
				want[a]++
				n++
			}
		}
		lines, at := drainAll(b, 100000)
		if len(lines) != n {
			return false
		}
		for i := 1; i < len(at); i++ {
			if at[i] < at[i-1] {
				return false
			}
		}
		got := map[cache.Addr]int{}
		for _, l := range lines {
			got[l]++
		}
		for a, c := range want {
			if got[a] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBankedUtilizationUnderStreaming(t *testing.T) {
	b := MustNewBanked(bankedCfg())
	cycle := int64(0)
	for ; cycle < 2048; cycle++ {
		b.Enqueue(cache.Addr(cycle) * 128) // sequential lines: row hits
		b.Step(cycle)
	}
	if u := b.Stats().Utilization(); u < 0.9 {
		t.Fatalf("streaming utilization = %.2f, want near 1", u)
	}
	if hr := b.BankedStats().RowHitRate(); hr < 0.75 {
		t.Fatalf("streaming row hit rate = %.2f, want high", hr)
	}
}

// TestBankedSkipIdleMatchesIdleSteps is TestSkipIdleMatchesIdleSteps for the
// banked FR-FCFS model.
func TestBankedSkipIdleMatchesIdleSteps(t *testing.T) {
	cfg := DefaultBanked()
	cfg.Latency = 0 // the tightest case: completion and busy tail coincide
	step := MustNewBanked(cfg)
	skip := MustNewBanked(cfg)
	for i := 0; i < 9; i++ {
		step.Enqueue(cache.Addr(i * 4096))
		skip.Enqueue(cache.Addr(i * 4096))
	}
	now := int64(0)
	for !step.Drained() || !skip.Drained() {
		step.Step(now)
		skip.Step(now)
		now++
		if now > 100_000 {
			t.Fatal("controllers never drained")
		}
	}
	const n = 777
	for i := int64(0); i < n; i++ {
		step.Step(now + i)
	}
	skip.SkipIdle(now, n)
	if step.Stats() != skip.Stats() {
		t.Fatalf("stepped stats %+v, skipped stats %+v", step.Stats(), skip.Stats())
	}
}
