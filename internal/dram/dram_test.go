package dram

import (
	"testing"
	"testing/quick"

	"equalizer/internal/cache"
)

func cfg() Config { return Config{QueueDepth: 4, ServiceInterval: 2, Latency: 10} }

func TestValidate(t *testing.T) {
	bad := []Config{
		{QueueDepth: 0, ServiceInterval: 1, Latency: 0},
		{QueueDepth: 1, ServiceInterval: 0, Latency: 0},
		{QueueDepth: 1, ServiceInterval: 1, Latency: -1},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: accepted invalid config %+v", i, c)
		}
	}
	if _, err := New(cfg()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestSingleRequestLatency(t *testing.T) {
	c := MustNew(cfg())
	c.Enqueue(0x1000)
	var done []cache.Addr
	var cycle int64
	for cycle = 0; cycle < 100; cycle++ {
		if out := c.Step(cycle); len(out) > 0 {
			done = append(done, out...)
			break
		}
	}
	if len(done) != 1 || done[0] != 0x1000 {
		t.Fatalf("completions = %v, want [0x1000]", done)
	}
	// Service starts at cycle 0, completes at latency+interval = 12.
	if cycle != 12 {
		t.Fatalf("completion at cycle %d, want 12", cycle)
	}
}

func TestBandwidthGate(t *testing.T) {
	c := MustNew(Config{QueueDepth: 16, ServiceInterval: 4, Latency: 0})
	for i := 0; i < 4; i++ {
		c.Enqueue(cache.Addr(i * 0x80))
	}
	var completions []int64
	for cycle := int64(0); cycle < 64 && !c.Drained(); cycle++ {
		for range c.Step(cycle) {
			completions = append(completions, cycle)
		}
	}
	if len(completions) != 4 {
		t.Fatalf("serviced %d requests, want 4", len(completions))
	}
	for i := 1; i < len(completions); i++ {
		if gap := completions[i] - completions[i-1]; gap != 4 {
			t.Fatalf("completion gap %d at %d, want 4 (bandwidth-limited)", gap, i)
		}
	}
}

func TestQueueFullRejects(t *testing.T) {
	c := MustNew(cfg())
	for i := 0; i < 4; i++ {
		if !c.Enqueue(cache.Addr(i)) {
			t.Fatalf("enqueue %d rejected with room available", i)
		}
	}
	if c.CanAccept() {
		t.Fatal("CanAccept true with full queue")
	}
	if c.Enqueue(0x99) {
		t.Fatal("enqueue succeeded on full queue")
	}
	if c.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", c.Stats().Rejected)
	}
	// Draining one slot re-opens the queue.
	var cycle int64
	for ; c.QueueLen() == 4; cycle++ {
		c.Step(cycle)
	}
	if !c.CanAccept() {
		t.Fatal("queue still full after service began")
	}
}

func TestFIFOOrder(t *testing.T) {
	c := MustNew(cfg())
	want := []cache.Addr{0x80, 0x100, 0x180}
	for _, a := range want {
		c.Enqueue(a)
	}
	var got []cache.Addr
	for cycle := int64(0); !c.Drained(); cycle++ {
		got = append(got, c.Step(cycle)...)
	}
	if len(got) != len(want) {
		t.Fatalf("serviced %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("completion %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestUtilizationSaturates(t *testing.T) {
	c := MustNew(Config{QueueDepth: 64, ServiceInterval: 2, Latency: 4})
	cycle := int64(0)
	for ; cycle < 512; cycle++ {
		c.Enqueue(cache.Addr(cycle * 0x80)) // offered load >> bandwidth
		c.Step(cycle)
	}
	u := c.Stats().Utilization()
	if u < 0.95 {
		t.Fatalf("utilization under saturation = %g, want ~1", u)
	}
	if mq := c.Stats().MeanQueueDepth(); mq < 10 {
		t.Fatalf("mean queue depth = %g, want large under saturation", mq)
	}
}

func TestIdleUtilizationZero(t *testing.T) {
	c := MustNew(cfg())
	for cycle := int64(0); cycle < 100; cycle++ {
		c.Step(cycle)
	}
	if u := c.Stats().Utilization(); u != 0 {
		t.Fatalf("idle utilization = %g, want 0", u)
	}
}

func TestResetStats(t *testing.T) {
	c := MustNew(cfg())
	c.Enqueue(0x80)
	c.Step(0)
	c.ResetStats()
	if s := c.Stats(); s.Enqueued != 0 || s.StepCycles != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
}

// Property: everything enqueued is eventually serviced exactly once, in FIFO
// order, regardless of arrival pattern.
func TestQuickConservation(t *testing.T) {
	f := func(arrivals []uint8) bool {
		c := MustNew(Config{QueueDepth: 1 << 16, ServiceInterval: 3, Latency: 7})
		var sent, got []cache.Addr
		cycle := int64(0)
		i := 0
		for !c.Drained() || i < len(arrivals) {
			if i < len(arrivals) {
				// arrival gap derived from input
				if int(arrivals[i])%4 != 0 || true {
					a := cache.Addr(i) * 0x80
					c.Enqueue(a)
					sent = append(sent, a)
					i++
				}
			}
			got = append(got, c.Step(cycle)...)
			cycle++
			if cycle > int64(len(arrivals)+1)*64+1024 {
				return false // should have drained long ago
			}
		}
		if len(got) != len(sent) {
			return false
		}
		for j := range got {
			if got[j] != sent[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSkipIdleMatchesIdleSteps drives two flat controllers through the same
// request burst, drains both, then advances one with per-cycle Steps and the
// other with a single SkipIdle and compares statistics — including the cycle
// right after the last completion, where a residual busy window could hide.
func TestSkipIdleMatchesIdleSteps(t *testing.T) {
	for _, latency := range []int{0, 3, 100} {
		cfg := Config{QueueDepth: 8, ServiceInterval: 4, Latency: latency}
		step := MustNew(cfg)
		skip := MustNew(cfg)
		for i := 0; i < 5; i++ {
			step.Enqueue(cache.Addr(i * 128))
			skip.Enqueue(cache.Addr(i * 128))
		}
		now := int64(0)
		for !step.Drained() || !skip.Drained() {
			step.Step(now)
			skip.Step(now)
			now++
			if now > 10_000 {
				t.Fatal("controllers never drained")
			}
		}
		const n = 1000
		for i := int64(0); i < n; i++ {
			step.Step(now + i)
		}
		skip.SkipIdle(now, n)
		if step.Stats() != skip.Stats() {
			t.Fatalf("latency=%d: stepped stats %+v, skipped stats %+v",
				latency, step.Stats(), skip.Stats())
		}
	}
}
