// Package dram models the GDDR5-style memory controller and DRAM devices of
// the simulated GPU at request granularity. Every request moves one cache
// line (128 bytes). The controller owns a bounded FCFS queue; the devices
// complete at most one request every ServiceInterval memory cycles — that
// interval encodes the aggregate board bandwidth — and each completed request
// additionally pays the access Latency. When the queue is full the L2 stops
// sending misses, which propagates back-pressure all the way to the SM
// load/store units: this is the saturation signal that makes warps pile up
// in the Xmem state (Section III-A of the paper).
package dram

import (
	"fmt"

	"equalizer/internal/cache"
	"equalizer/internal/telemetry"
)

// Config holds the controller parameters.
type Config struct {
	// QueueDepth bounds pending requests (beyond the one in service).
	QueueDepth int
	// ServiceInterval is the number of memory cycles between request
	// completions when the queue is backlogged (1/bandwidth).
	ServiceInterval int
	// Latency is the device access latency in memory cycles added to every
	// request on top of queueing and service time.
	Latency int
}

// Validate reports a descriptive error for unusable parameters.
func (c Config) Validate() error {
	switch {
	case c.QueueDepth <= 0:
		return fmt.Errorf("dram: QueueDepth must be positive, got %d", c.QueueDepth)
	case c.ServiceInterval <= 0:
		return fmt.Errorf("dram: ServiceInterval must be positive, got %d", c.ServiceInterval)
	case c.Latency < 0:
		return fmt.Errorf("dram: Latency must be non-negative, got %d", c.Latency)
	}
	return nil
}

// Stats aggregates controller activity, in memory-domain cycles.
type Stats struct {
	// Enqueued counts accepted requests.
	Enqueued uint64
	// Serviced counts completed requests.
	Serviced uint64
	// Rejected counts Enqueue attempts that found the queue full.
	Rejected uint64
	// BusyCycles counts cycles during which the device pipeline was
	// transferring data; BusyCycles/elapsed is bandwidth utilisation.
	BusyCycles uint64
	// QueueCycleSum accumulates queue occupancy every cycle, for mean
	// queue depth.
	QueueCycleSum uint64
	// StepCycles counts observed cycles.
	StepCycles uint64
}

// Utilization returns the fraction of observed cycles the device was busy.
func (s Stats) Utilization() float64 {
	if s.StepCycles == 0 {
		return 0
	}
	return float64(s.BusyCycles) / float64(s.StepCycles)
}

// MeanQueueDepth returns the average number of queued requests per cycle.
func (s Stats) MeanQueueDepth() float64 {
	if s.StepCycles == 0 {
		return 0
	}
	return float64(s.QueueCycleSum) / float64(s.StepCycles)
}

type inflight struct {
	line cache.Addr
	done int64
}

// Controller is the memory controller. It is stepped once per memory-domain
// cycle by the GPU model and is not safe for concurrent use.
type Controller struct {
	cfg       Config
	queue     []cache.Addr
	inService []inflight
	// nextStart is the earliest cycle at which a new request may begin
	// service (bandwidth gate).
	nextStart int64
	// completed is the reusable completion buffer returned by Step.
	completed []cache.Addr
	stats     Stats

	probe    *telemetry.Bus
	probeNow func() int64
}

// New builds a controller.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{
		cfg:       cfg,
		queue:     make([]cache.Addr, 0, cfg.QueueDepth),
		inService: make([]inflight, 0, 8),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Controller {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// SetProbe wires the controller to a telemetry bus: rejected Enqueue
// attempts emit KindDRAMReject events. now supplies the owner's current
// simulation time in picoseconds. A nil bus detaches the probe.
func (c *Controller) SetProbe(b *telemetry.Bus, now func() int64) {
	c.probe, c.probeNow = b, now
}

// CanAccept reports whether the queue has room for another request.
func (c *Controller) CanAccept() bool { return len(c.queue) < c.cfg.QueueDepth }

// Enqueue adds a line request, returning false (and counting a rejection)
// when the queue is full.
func (c *Controller) Enqueue(line cache.Addr) bool {
	if !c.CanAccept() {
		c.stats.Rejected++
		if c.probe.Enabled(telemetry.KindDRAMReject) {
			c.probe.Emit(c.probeNow(), telemetry.KindDRAMReject, -1, int64(line), 0)
		}
		return false
	}
	c.queue = append(c.queue, line)
	c.stats.Enqueued++
	return true
}

// QueueLen returns the number of queued (not yet in-service) requests.
func (c *Controller) QueueLen() int { return len(c.queue) }

// Pending returns queued plus in-service requests.
func (c *Controller) Pending() int { return len(c.queue) + len(c.inService) }

// Step advances the controller to memory cycle `now` (monotonically
// increasing, one call per cycle) and returns the line addresses whose data
// transfer completed this cycle, in completion order. The returned slice is
// reused across calls; callers must not retain it.
//
//eqlint:cycle-owner
func (c *Controller) Step(now int64) []cache.Addr {
	c.stats.StepCycles++
	c.stats.QueueCycleSum += uint64(len(c.queue))
	if now < c.nextStart && c.nextStart-now <= int64(c.cfg.ServiceInterval) {
		// The device is mid-transfer for a previously started request.
		c.stats.BusyCycles++
	}

	// Begin service of the queue head when the bandwidth gate allows.
	if len(c.queue) > 0 && now >= c.nextStart {
		line := c.queue[0]
		copy(c.queue, c.queue[1:])
		c.queue = c.queue[:len(c.queue)-1]
		c.nextStart = now + int64(c.cfg.ServiceInterval)
		c.inService = append(c.inService, inflight{line: line, done: now + int64(c.cfg.Latency) + int64(c.cfg.ServiceInterval)})
		c.stats.BusyCycles++
	}

	c.completed = c.completed[:0]
	for len(c.inService) > 0 && c.inService[0].done <= now {
		c.completed = append(c.completed, c.inService[0].line)
		copy(c.inService, c.inService[1:])
		c.inService = c.inService[:len(c.inService)-1]
		c.stats.Serviced++
	}
	return c.completed
}

// SkipIdle advances the controller's statistics over n consecutive idle
// cycles first..first+n-1 in closed form, exactly as n Step calls on a
// drained controller would. The caller guarantees Drained() — no queued or
// in-service work — so the only per-cycle effects are the cycle census and
// the residual busy window of the last transfer (empty whenever Latency >= 0,
// but computed exactly rather than assumed).
//
//eqlint:cycle-owner
func (c *Controller) SkipIdle(first, n int64) {
	c.stats.StepCycles += uint64(n)
	// Busy cycles are those t in [first, first+n) with t < nextStart and
	// nextStart-t <= ServiceInterval, i.e. the overlap with
	// [nextStart-ServiceInterval, nextStart).
	lo := c.nextStart - int64(c.cfg.ServiceInterval)
	if lo < first {
		lo = first
	}
	hi := c.nextStart
	if hi > first+n {
		hi = first + n
	}
	if hi > lo {
		c.stats.BusyCycles += uint64(hi - lo)
	}
}

// Stats returns a copy of the accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats clears statistics without disturbing queue contents.
func (c *Controller) ResetStats() { c.stats = Stats{} }

// Drain reports whether the controller holds no work at all.
func (c *Controller) Drained() bool { return len(c.queue) == 0 && len(c.inService) == 0 }
