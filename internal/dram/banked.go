package dram

import (
	"fmt"

	"equalizer/internal/cache"
	"equalizer/internal/telemetry"
)

// BankedConfig parameterises the banked FR-FCFS controller, a closer model
// of GDDR5 devices than the flat bandwidth gate of Controller: requests are
// distributed over independent banks, each with an open row buffer, and a
// scheduler that prefers row-buffer hits (first-ready, first-come
// first-served). Row hits stream at the device's burst rate; row misses pay
// a precharge+activate penalty.
type BankedConfig struct {
	// Banks is the number of independent banks (16 on GDDR5).
	Banks int
	// RowBytes is the row-buffer size per bank.
	RowBytes int
	// QueueDepth bounds pending requests across all banks.
	QueueDepth int
	// RowHitInterval is the data-bus occupancy of a row-buffer hit, in
	// memory cycles per 128-byte request (the burst rate).
	RowHitInterval int
	// RowMissInterval adds the precharge+activate penalty.
	RowMissInterval int
	// Latency is the access latency added to every request.
	Latency int
}

// Validate reports a descriptive error for unusable parameters.
func (c BankedConfig) Validate() error {
	switch {
	case c.Banks <= 0:
		return fmt.Errorf("dram: Banks must be positive, got %d", c.Banks)
	case c.RowBytes <= 0 || c.RowBytes&(c.RowBytes-1) != 0:
		return fmt.Errorf("dram: RowBytes must be a positive power of two, got %d", c.RowBytes)
	case c.QueueDepth <= 0:
		return fmt.Errorf("dram: QueueDepth must be positive, got %d", c.QueueDepth)
	case c.RowHitInterval <= 0:
		return fmt.Errorf("dram: RowHitInterval must be positive, got %d", c.RowHitInterval)
	case c.RowMissInterval < c.RowHitInterval:
		return fmt.Errorf("dram: RowMissInterval (%d) must be >= RowHitInterval (%d)",
			c.RowMissInterval, c.RowHitInterval)
	case c.Latency < 0:
		return fmt.Errorf("dram: Latency must be non-negative, got %d", c.Latency)
	}
	return nil
}

// DefaultBanked returns a GDDR5-flavoured configuration whose row-hit burst
// rate matches the flat model's nominal bandwidth (1 line/cycle), with a 4x
// penalty for row misses.
func DefaultBanked() BankedConfig {
	return BankedConfig{
		Banks:           16,
		RowBytes:        2048,
		QueueDepth:      64,
		RowHitInterval:  1,
		RowMissInterval: 4,
		Latency:         160,
	}
}

// BankedStats extends Stats with row-buffer accounting.
type BankedStats struct {
	Stats
	RowHits   uint64
	RowMisses uint64
}

// RowHitRate returns the fraction of serviced requests that hit the open
// row, or zero when nothing was serviced.
func (s BankedStats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// Banked is the banked FR-FCFS memory controller. It satisfies the same
// stepping contract as Controller and is selected by the GPU model when
// config.GPU.DRAMBanks > 0. Not safe for concurrent use.
type Banked struct {
	cfg BankedConfig

	// queues[b] holds pending requests of bank b, in arrival order.
	queues  [][]cache.Addr
	pending int
	// openRow[b] is bank b's open row id; -1 when closed.
	openRow []int64

	// nextStart gates the shared data bus.
	nextStart int64
	// rr rotates bank priority for fairness.
	rr int

	inService []inflight
	completed []cache.Addr
	stats     BankedStats

	probe    *telemetry.Bus
	probeNow func() int64
}

// NewBanked builds a banked controller.
func NewBanked(cfg BankedConfig) (*Banked, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &Banked{
		cfg:     cfg,
		queues:  make([][]cache.Addr, cfg.Banks),
		openRow: make([]int64, cfg.Banks),
	}
	for i := range b.openRow {
		b.openRow[i] = -1
	}
	return b, nil
}

// MustNewBanked is NewBanked but panics on error.
func MustNewBanked(cfg BankedConfig) *Banked {
	b, err := NewBanked(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// SetProbe wires the controller to a telemetry bus: every serviced request
// emits KindDRAMRowHit or KindDRAMRowMiss (a bank conflict paying the
// precharge+activate penalty) with the bank as source, and rejected
// Enqueue attempts emit KindDRAMReject. now supplies the owner's current
// simulation time in picoseconds. A nil bus detaches the probe.
func (b *Banked) SetProbe(bus *telemetry.Bus, now func() int64) {
	b.probe, b.probeNow = bus, now
}

// bankOf maps a line address to its bank: consecutive rows interleave
// across banks so streaming traffic exercises bank-level parallelism.
func (b *Banked) bankOf(line cache.Addr) int {
	return int((uint64(line) / uint64(b.cfg.RowBytes)) % uint64(b.cfg.Banks))
}

// rowOf returns the global row id of a line.
func (b *Banked) rowOf(line cache.Addr) int64 {
	return int64(uint64(line) / uint64(b.cfg.RowBytes))
}

// CanAccept reports whether the controller has queue room.
func (b *Banked) CanAccept() bool { return b.pending < b.cfg.QueueDepth }

// Enqueue adds a line request, returning false when the queue is full.
func (b *Banked) Enqueue(line cache.Addr) bool {
	if !b.CanAccept() {
		b.stats.Rejected++
		if b.probe.Enabled(telemetry.KindDRAMReject) {
			b.probe.Emit(b.probeNow(), telemetry.KindDRAMReject, -1, int64(line), 0)
		}
		return false
	}
	bank := b.bankOf(line)
	b.queues[bank] = append(b.queues[bank], line)
	b.pending++
	b.stats.Enqueued++
	return true
}

// QueueLen returns pending (not yet in-service) requests.
func (b *Banked) QueueLen() int { return b.pending }

// Pending returns queued plus in-service requests.
func (b *Banked) Pending() int { return b.pending + len(b.inService) }

// Drained reports whether the controller holds no work.
func (b *Banked) Drained() bool { return b.pending == 0 && len(b.inService) == 0 }

// Stats returns a copy of the accumulated statistics.
func (b *Banked) Stats() Stats { return b.stats.Stats }

// BankedStats returns the row-buffer statistics.
func (b *Banked) BankedStats() BankedStats { return b.stats }

// ResetStats clears statistics without disturbing queue contents.
func (b *Banked) ResetStats() { b.stats = BankedStats{} }

// SkipIdle advances the controller's statistics over n consecutive idle
// cycles first..first+n-1 in closed form; see Controller.SkipIdle. The busy
// window of the banked model is simply t < nextStart.
//
//eqlint:cycle-owner
func (b *Banked) SkipIdle(first, n int64) {
	b.stats.StepCycles += uint64(n)
	if b.nextStart > first {
		busy := b.nextStart - first
		if busy > n {
			busy = n
		}
		b.stats.BusyCycles += uint64(busy)
	}
}

// Step advances the controller to memory cycle now and returns completed
// lines. FR-FCFS: the scheduler scans banks round-robin and, within the
// chosen bank, services the oldest row-buffer hit if one exists, else the
// oldest request (opening its row).
//
//eqlint:cycle-owner
func (b *Banked) Step(now int64) []cache.Addr {
	b.stats.StepCycles++
	b.stats.QueueCycleSum += uint64(b.pending)
	if now < b.nextStart {
		b.stats.BusyCycles++
	}

	if b.pending > 0 && now >= b.nextStart {
		if bank := b.pickBank(); bank >= 0 {
			line, hit := b.pickRequest(bank)
			interval := b.cfg.RowMissInterval
			kind := telemetry.KindDRAMRowMiss
			if hit {
				interval = b.cfg.RowHitInterval
				kind = telemetry.KindDRAMRowHit
				b.stats.RowHits++
			} else {
				b.stats.RowMisses++
			}
			if b.probe.Enabled(kind) {
				b.probe.Emit(b.probeNow(), kind, int16(bank), int64(line), b.rowOf(line))
			}
			b.openRow[bank] = b.rowOf(line)
			b.nextStart = now + int64(interval)
			b.inService = append(b.inService, inflight{
				line: line,
				done: now + int64(b.cfg.Latency) + int64(interval),
			})
			b.stats.BusyCycles++
		}
	}

	b.completed = b.completed[:0]
	// Completions may finish out of order (hits overtake misses issued
	// earlier only via interval differences; the service start order is
	// serial so done times are non-decreasing).
	for len(b.inService) > 0 && b.inService[0].done <= now {
		b.completed = append(b.completed, b.inService[0].line)
		copy(b.inService, b.inService[1:])
		b.inService = b.inService[:len(b.inService)-1]
		b.stats.Serviced++
	}
	return b.completed
}

// pickBank returns the next non-empty bank in round-robin order, preferring
// banks whose head-of-queue hits the open row.
func (b *Banked) pickBank() int {
	fallback := -1
	for off := 0; off < b.cfg.Banks; off++ {
		bank := (b.rr + off) % b.cfg.Banks
		q := b.queues[bank]
		if len(q) == 0 {
			continue
		}
		if fallback < 0 {
			fallback = bank
		}
		if b.hasRowHit(bank) {
			b.rr = (bank + 1) % b.cfg.Banks
			return bank
		}
	}
	if fallback >= 0 {
		b.rr = (fallback + 1) % b.cfg.Banks
	}
	return fallback
}

func (b *Banked) hasRowHit(bank int) bool {
	open := b.openRow[bank]
	if open < 0 {
		return false
	}
	for _, line := range b.queues[bank] {
		if b.rowOf(line) == open {
			return true
		}
	}
	return false
}

// pickRequest removes and returns the request FR-FCFS selects from a bank:
// the oldest open-row hit, else the oldest request.
func (b *Banked) pickRequest(bank int) (cache.Addr, bool) {
	q := b.queues[bank]
	open := b.openRow[bank]
	idx, hit := 0, false
	if open >= 0 {
		for i, line := range q {
			if b.rowOf(line) == open {
				idx, hit = i, true
				break
			}
		}
	}
	line := q[idx]
	b.queues[bank] = append(q[:idx], q[idx+1:]...)
	b.pending--
	return line, hit
}
