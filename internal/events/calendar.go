package events

// Calendar is a bucketed timer wheel specialised for the SM's wake queues:
// pushes cluster a bounded horizon ahead of a monotonically advancing cursor
// (cache-hit latencies, DRAM returns, dependency gaps), and PopReady is called
// once per cycle with a non-decreasing `now`. Delivering a cycle's expirations
// costs O(delivered) instead of the heap's O(delivered·log n).
//
// Ordering contract: PopReady delivers whole buckets in time-bucket order and
// entries within a bucket in insertion order — NOT globally sorted by
// timestamp like Queue. Callers must have commutative handlers for same-cycle
// deliveries (the SM's wake and gap handlers are: each only decrements an
// independent per-warp counter or clears an independent bit). Callers that
// need strict (time, insertion) order keep using Queue.
//
// Entries scheduled beyond the wheel's horizon go to an overflow min-heap and
// pop from there when due; they are never migrated into the wheel.
type Calendar[T any] struct {
	buckets [][]calEntry[T]
	mask    int64
	width   int64
	// base rebases bucket numbering to the first timestamp the wheel sees
	// after a Reset (< 0 while unset). Bucket numbers — and therefore the
	// physical bucket an entry lands in — depend only on time elapsed since
	// the run started, not on the machine's absolute clock, so identical
	// back-to-back runs reuse exactly the same bucket capacities and the
	// wheel stays allocation-free in steady state. Delivery semantics are
	// unchanged: PopReady(now) always delivers exactly the entries with
	// at <= now, whatever the bucket boundaries.
	base int64
	// cur is the rebased bucket number of the cursor: every bucket below it
	// has been fully delivered.
	cur int64
	// wheelN counts entries resident in the wheel (excludes overflow).
	wheelN   int
	overflow Queue[T]

	// nextWheelAt caches the earliest wheel timestamp; invalidated by
	// deliveries and recomputed lazily so NextAt is O(1) between pops.
	nextWheelAt    int64
	nextWheelValid bool
}

type calEntry[T any] struct {
	at  int64
	val T
}

// NewCalendar builds a wheel of `buckets` buckets (rounded up to a power of
// two, minimum 8) each spanning `width` time units. width must be positive.
func NewCalendar[T any](width int64, buckets int) *Calendar[T] {
	if width <= 0 {
		panic("events: calendar bucket width must be positive")
	}
	n := 8
	for n < buckets {
		n <<= 1
	}
	return &Calendar[T]{
		buckets: make([][]calEntry[T], n),
		mask:    int64(n - 1),
		width:   width,
		base:    -1,
	}
}

// Len returns the number of pending events.
func (c *Calendar[T]) Len() int { return c.wheelN + c.overflow.Len() }

// bucketOf maps a timestamp to its rebased bucket number, pinning the base
// on first use. Timestamps are non-negative simulation times; a timestamp
// below the base (only possible for a late push) maps to a negative bucket,
// which Push clamps to the cursor like any other late push.
func (c *Calendar[T]) bucketOf(at int64) int64 {
	if c.base < 0 {
		c.base = at
	}
	return (at - c.base) / c.width
}

// Push schedules v at time at. Late pushes (a bucket the cursor has passed)
// clamp into the cursor bucket so the entry still delivers at the next
// PopReady whose now >= at.
func (c *Calendar[T]) Push(at int64, v T) {
	b := c.bucketOf(at)
	if b < c.cur {
		b = c.cur
	}
	if b-c.cur >= int64(len(c.buckets)) {
		c.overflow.Push(at, v)
		return
	}
	idx := b & c.mask
	c.buckets[idx] = append(c.buckets[idx], calEntry[T]{at: at, val: v})
	c.wheelN++
	if c.nextWheelValid && at < c.nextWheelAt {
		c.nextWheelAt = at
	} else if !c.nextWheelValid && c.wheelN == 1 {
		c.nextWheelAt, c.nextWheelValid = at, true
	}
}

// NextAt returns the earliest pending timestamp, and false when empty.
func (c *Calendar[T]) NextAt() (int64, bool) {
	min, ok := c.wheelNextAt()
	if oAt, oOK := c.overflow.NextAt(); oOK && (!ok || oAt < min) {
		min, ok = oAt, true
	}
	return min, ok
}

func (c *Calendar[T]) wheelNextAt() (int64, bool) {
	if c.wheelN == 0 {
		return 0, false
	}
	if c.nextWheelValid {
		return c.nextWheelAt, true
	}
	found := false
	var min int64
	for off := int64(0); off < int64(len(c.buckets)); off++ {
		bucket := c.buckets[(c.cur+off)&c.mask]
		if len(bucket) == 0 {
			continue
		}
		for i := range bucket {
			if !found || bucket[i].at < min {
				min, found = bucket[i].at, true
			}
		}
		break
	}
	if found {
		c.nextWheelAt, c.nextWheelValid = min, true
	}
	return min, found
}

// PopReady delivers every event with timestamp <= now to f: whole past
// buckets in wheel order (insertion order within each), then the boundary
// bucket filtered in place, then any due overflow entries. now must be
// non-decreasing across calls.
func (c *Calendar[T]) PopReady(now int64, f func(T)) {
	target := c.bucketOf(now)
	if c.wheelN > 0 {
		// Deliver whole buckets strictly below the boundary bucket. When the
		// cursor jump exceeds the wheel span every resident entry is due, so
		// one pass over the wheel suffices.
		span := int64(len(c.buckets))
		jump := target - c.cur
		if jump > span {
			jump = span
		}
		for off := int64(0); off < jump && c.wheelN > 0; off++ {
			idx := (c.cur + off) & c.mask
			bucket := c.buckets[idx]
			if len(bucket) == 0 {
				continue
			}
			c.wheelN -= len(bucket)
			c.nextWheelValid = false
			c.buckets[idx] = bucket[:0]
			for i := range bucket {
				//eqlint:allow shardphase -- caller-supplied delivery callback; SM-owned calendars only receive callbacks that touch that SM's state
				f(bucket[i].val)
				bucket[i] = calEntry[T]{}
			}
		}
	}
	if target > c.cur {
		c.cur = target
	}
	// Boundary bucket: deliver entries with at <= now, keep the rest.
	idx := c.cur & c.mask
	if bucket := c.buckets[idx]; len(bucket) > 0 {
		kept := bucket[:0]
		for i := range bucket {
			if bucket[i].at <= now {
				c.wheelN--
				c.nextWheelValid = false
				//eqlint:allow shardphase -- caller-supplied delivery callback; SM-owned calendars only receive callbacks that touch that SM's state
				f(bucket[i].val)
			} else {
				kept = append(kept, bucket[i])
			}
		}
		for i := len(kept); i < len(bucket); i++ {
			bucket[i] = calEntry[T]{}
		}
		c.buckets[idx] = kept
	}
	c.overflow.PopReady(now, f)
}

// Reset drops all pending events and rewinds the cursor.
func (c *Calendar[T]) Reset() {
	for i := range c.buckets {
		bucket := c.buckets[i]
		for j := range bucket {
			bucket[j] = calEntry[T]{}
		}
		c.buckets[i] = bucket[:0]
	}
	c.base = -1
	c.cur = 0
	c.wheelN = 0
	c.nextWheelValid = false
	c.overflow.Reset()
}
