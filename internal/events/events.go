// Package events provides a small time-ordered event queue used by the SM
// model to schedule warp wake-ups (ALU dependency expiry, load-data returns).
// It is a binary min-heap keyed by an int64 timestamp; entries with equal
// timestamps pop in insertion order so simulations stay deterministic.
package events

// Queue is a min-heap of timed values. The zero value is ready to use.
type Queue[T any] struct {
	items []entry[T]
	seq   uint64
}

type entry[T any] struct {
	at  int64
	seq uint64
	val T
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push schedules v at time at.
func (q *Queue[T]) Push(at int64, v T) {
	q.items = append(q.items, entry[T]{at: at, seq: q.seq, val: v})
	q.seq++
	q.up(len(q.items) - 1)
}

// NextAt returns the timestamp of the earliest event, and false when empty.
func (q *Queue[T]) NextAt() (int64, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].at, true
}

// PopReady delivers every event with timestamp <= now to f, in time order
// (ties in insertion order).
func (q *Queue[T]) PopReady(now int64, f func(T)) {
	for len(q.items) > 0 && q.items[0].at <= now {
		//eqlint:allow shardphase -- caller-supplied delivery callback; SM-owned queues only receive callbacks that touch that SM's state
		f(q.pop())
	}
}

// Pop removes and returns the earliest event; ok is false when empty.
func (q *Queue[T]) Pop() (v T, at int64, ok bool) {
	if len(q.items) == 0 {
		return v, 0, false
	}
	at = q.items[0].at
	return q.pop(), at, true
}

// Reset drops all pending events.
func (q *Queue[T]) Reset() {
	q.items = q.items[:0]
	q.seq = 0
}

func (q *Queue[T]) pop() T {
	top := q.items[0].val
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	var zero entry[T]
	q.items[last] = zero
	q.items = q.items[:last]
	if len(q.items) > 0 {
		q.down(0)
	}
	return top
}

func (q *Queue[T]) less(i, j int) bool {
	if q.items[i].at != q.items[j].at {
		return q.items[i].at < q.items[j].at
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
