package events

import (
	"sort"
	"testing"
)

// lcg is a deterministic pseudo-random source so the adversarial patterns are
// reproducible without seeding from the clock.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

func (r *lcg) intn(n int64) int64 { return int64(r.next() % uint64(n)) }

// drain collects deliveries from one PopReady call as a sorted multiset —
// the calendar's within-bucket insertion order is documented to differ from
// the heap's timestamp order, but the delivered set per call must match.
func drainCalendar(c *Calendar[int], now int64) []int {
	var got []int
	c.PopReady(now, func(v int) { got = append(got, v) })
	sort.Ints(got)
	return got
}

func drainQueue(q *Queue[int], now int64) []int {
	var got []int
	q.PopReady(now, func(v int) { got = append(got, v) })
	sort.Ints(got)
	return got
}

func equalSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCalendarMatchesQueue drives a Calendar and a Queue with identical
// adversarial push/pop schedules and asserts the delivered multiset of every
// PopReady call, plus Len and NextAt, always agree.
func TestCalendarMatchesQueue(t *testing.T) {
	patterns := []struct {
		name string
		run  func(t *testing.T, push func(at int64, v int), step func(now int64))
	}{
		{"dense-same-cycle", func(t *testing.T, push func(int64, int), step func(int64)) {
			// Many entries landing in one bucket, delivered at once.
			for i := 0; i < 100; i++ {
				push(5000, i)
			}
			step(4999)
			step(5000)
		}},
		{"bucket-boundary-straddle", func(t *testing.T, push func(int64, int), step func(int64)) {
			// Entries on both sides of a bucket edge; PopReady lands inside
			// the boundary bucket so it must filter, not flush.
			push(1999, 1)
			push(2000, 2)
			push(2001, 3)
			push(2500, 4)
			step(2000)
			step(2400)
			step(3000)
		}},
		{"far-future-overflow", func(t *testing.T, push func(int64, int), step func(int64)) {
			// Horizon overflow: entries far beyond the wheel span.
			push(1_000_000, 1)
			push(500, 2)
			push(2_000_000, 3)
			step(500)
			step(999_999)
			step(1_000_000)
			step(3_000_000)
		}},
		{"cursor-jump", func(t *testing.T, push func(int64, int), step func(int64)) {
			// A huge now-jump (machine fast-forward) wrapping the wheel
			// several times over.
			for i := 0; i < 50; i++ {
				push(int64(1000+i*700), i)
			}
			step(99)
			step(10_000_000)
		}},
		{"late-push", func(t *testing.T, push func(int64, int), step func(int64)) {
			// Push at a time the cursor already passed: must still deliver
			// at the next PopReady.
			push(9000, 1)
			step(9000)
			push(8000, 2) // late: 8000 < cursor
			step(9001)
		}},
		{"interleaved-random", func(t *testing.T, push func(int64, int), step func(int64)) {
			r := lcg(42)
			now := int64(0)
			for i := 0; i < 5000; i++ {
				switch r.intn(3) {
				case 0:
					push(now+r.intn(40_000), i)
				case 1:
					// Cluster on exact cycle boundaries (the SM's pattern).
					push(now+1000*r.intn(64), i)
				default:
					now += r.intn(2500)
					step(now)
				}
			}
			step(now + 100_000_000)
		}},
	}

	for _, pat := range patterns {
		t.Run(pat.name, func(t *testing.T) {
			cal := NewCalendar[int](1000, 256)
			var q Queue[int]
			push := func(at int64, v int) {
				cal.Push(at, v)
				q.Push(at, v)
			}
			step := func(now int64) {
				got, want := drainCalendar(cal, now), drainQueue(&q, now)
				if !equalSets(got, want) {
					t.Fatalf("PopReady(%d): calendar delivered %v, queue %v", now, got, want)
				}
				if cal.Len() != q.Len() {
					t.Fatalf("after PopReady(%d): calendar Len %d, queue Len %d", now, cal.Len(), q.Len())
				}
				cAt, cOK := cal.NextAt()
				qAt, qOK := q.NextAt()
				if cOK != qOK || (cOK && cAt != qAt) {
					t.Fatalf("after PopReady(%d): calendar NextAt (%d,%v), queue (%d,%v)",
						now, cAt, cOK, qAt, qOK)
				}
			}
			pat.run(t, push, step)
			if cal.Len() != 0 || q.Len() != 0 {
				// Drain the tail so every pattern checks full delivery.
				step(1 << 40)
			}
			if cal.Len() != 0 {
				t.Fatalf("calendar retains %d entries after final drain", cal.Len())
			}
		})
	}
}

// TestCalendarReset verifies Reset rewinds the cursor and drops wheel and
// overflow contents.
func TestCalendarReset(t *testing.T) {
	cal := NewCalendar[int](1000, 8)
	cal.Push(500, 1)
	cal.Push(1_000_000, 2) // overflow
	cal.PopReady(500, func(int) {})
	cal.Reset()
	if cal.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", cal.Len())
	}
	if _, ok := cal.NextAt(); ok {
		t.Fatal("NextAt reports an entry after Reset")
	}
	// The cursor must be rewound: early timestamps work again.
	cal.Push(100, 3)
	var got []int
	cal.PopReady(100, func(v int) { got = append(got, v) })
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("post-Reset delivery = %v, want [3]", got)
	}
}

// TestCalendarWithinBucketInsertionOrder pins the documented ordering
// contract: same-bucket entries deliver in insertion order even when their
// timestamps are inverted.
func TestCalendarWithinBucketInsertionOrder(t *testing.T) {
	cal := NewCalendar[int](1000, 8)
	cal.Push(1700, 1)
	cal.Push(1200, 2)
	var got []int
	cal.PopReady(2000, func(v int) { got = append(got, v) })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("delivery order = %v, want [1 2] (insertion order)", got)
	}
}
