package events

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue[int]
	if q.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	if _, ok := q.NextAt(); ok {
		t.Fatal("NextAt on empty queue returned ok")
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
	q.PopReady(100, func(int) { t.Fatal("PopReady delivered from empty queue") })
}

func TestTimeOrdering(t *testing.T) {
	var q Queue[string]
	q.Push(30, "c")
	q.Push(10, "a")
	q.Push(20, "b")
	var got []string
	q.PopReady(100, func(s string) { got = append(got, s) })
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("order = %v, want [a b c]", got)
	}
}

func TestPopReadyRespectsNow(t *testing.T) {
	var q Queue[int]
	q.Push(5, 1)
	q.Push(15, 2)
	var got []int
	q.PopReady(10, func(v int) { got = append(got, v) })
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v, want [1]", got)
	}
	if q.Len() != 1 {
		t.Fatalf("remaining = %d, want 1", q.Len())
	}
	at, ok := q.NextAt()
	if !ok || at != 15 {
		t.Fatalf("NextAt = %d,%v; want 15,true", at, ok)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(42, i)
	}
	var got []int
	q.PopReady(42, func(v int) { got = append(got, v) })
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order = %v, want insertion order", got)
		}
	}
}

func TestReset(t *testing.T) {
	var q Queue[int]
	q.Push(1, 1)
	q.Push(2, 2)
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("Reset left events behind")
	}
	q.Push(5, 7)
	v, at, ok := q.Pop()
	if !ok || v != 7 || at != 5 {
		t.Fatalf("Pop after reset = %d,%d,%v", v, at, ok)
	}
}

// Property: popping everything returns items sorted by timestamp.
func TestQuickHeapOrder(t *testing.T) {
	f := func(times []int64) bool {
		var q Queue[int64]
		for _, at := range times {
			q.Push(at, at)
		}
		var got []int64
		for {
			v, _, ok := q.Pop()
			if !ok {
				break
			}
			got = append(got, v)
		}
		if len(got) != len(times) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
