package core

import (
	"testing"
	"testing/quick"

	"equalizer/internal/config"
)

func TestDecideDefinitelyMemoryIntensive(t *testing.T) {
	d := Decide(Counters{Active: 40, Waiting: 10, XALU: 1, XMEM: 10}, 8, 2)
	if d.BlockDelta != -1 {
		t.Fatalf("block delta = %d, want -1 (line 8)", d.BlockDelta)
	}
	if d.Tendency != TendMemory {
		t.Fatalf("tendency = %v, want memory", d.Tendency)
	}
}

func TestDecideDefinitelyComputeIntensive(t *testing.T) {
	d := Decide(Counters{Active: 48, Waiting: 5, XALU: 20, XMEM: 0}, 8, 2)
	if d.BlockDelta != 0 {
		t.Fatalf("block delta = %d, want 0 (compute keeps maximum)", d.BlockDelta)
	}
	if d.Tendency != TendCompute {
		t.Fatalf("tendency = %v, want compute", d.Tendency)
	}
}

func TestDecideLikelyMemoryIntensive(t *testing.T) {
	// Xmem above the saturation floor but below Wcta: MemAction without a
	// block decrease (lines 12-13).
	d := Decide(Counters{Active: 30, Waiting: 10, XALU: 1, XMEM: 4}, 8, 2)
	if d.BlockDelta != 0 {
		t.Fatalf("block delta = %d, want 0", d.BlockDelta)
	}
	if d.Tendency != TendMemory {
		t.Fatalf("tendency = %v, want memory", d.Tendency)
	}
}

func TestDecideLatencyBoundIncreasesBlocks(t *testing.T) {
	// Majority waiting: close to ideal, add work (lines 14-20).
	d := Decide(Counters{Active: 30, Waiting: 20, XALU: 2, XMEM: 1}, 8, 2)
	if d.BlockDelta != +1 {
		t.Fatalf("block delta = %d, want +1", d.BlockDelta)
	}
	if d.Tendency != TendCompute {
		t.Fatalf("tendency = %v, want compute (XALU > XMEM)", d.Tendency)
	}
	d = Decide(Counters{Active: 30, Waiting: 20, XALU: 1, XMEM: 2}, 8, 2)
	if d.Tendency != TendMemory {
		t.Fatalf("tendency = %v, want memory (XMEM >= XALU)", d.Tendency)
	}
}

func TestDecideIdleSMVotesCompute(t *testing.T) {
	// Load imbalance: an SM with no work votes to finish early (line 21).
	d := Decide(Counters{}, 8, 2)
	if d.Tendency != TendCompute || d.BlockDelta != 0 {
		t.Fatalf("idle decision = %+v, want CompAction only", d)
	}
}

func TestDecideDegenerate(t *testing.T) {
	// Active warps, few waiting, no excess: change nothing.
	d := Decide(Counters{Active: 30, Waiting: 5, XALU: 1, XMEM: 1}, 8, 2)
	if d.Tendency != TendNone || d.BlockDelta != 0 {
		t.Fatalf("degenerate decision = %+v, want none", d)
	}
}

func TestDecidePriorityOrder(t *testing.T) {
	// Xmem > Wcta wins over Xalu > Wcta (the algorithm tests memory first).
	d := Decide(Counters{Active: 48, Waiting: 0, XALU: 20, XMEM: 10}, 8, 2)
	if d.Tendency != TendMemory || d.BlockDelta != -1 {
		t.Fatalf("decision = %+v, want memory/-1 (line 7 first)", d)
	}
}

func TestVoteForMatchesTableI(t *testing.T) {
	cases := []struct {
		t    Tendency
		mode Mode
		want Vote
	}{
		{TendCompute, EnergyMode, Vote{SM: +1, Mem: -1}},
		{TendCompute, PerformanceMode, Vote{SM: +1, Mem: -1}},
		{TendMemory, EnergyMode, Vote{SM: -1, Mem: +1}},
		{TendMemory, PerformanceMode, Vote{SM: -1, Mem: +1}},
		{TendNone, EnergyMode, Vote{}},
		{TendNone, PerformanceMode, Vote{}},
	}
	for _, tc := range cases {
		if got := VoteFor(tc.t, tc.mode); got != tc.want {
			t.Errorf("VoteFor(%v, %v) = %+v, want %+v", tc.t, tc.mode, got, tc.want)
		}
	}
	// Table I's asymmetry lives in the mode bounds: energy mode only
	// throttles, performance mode only boosts.
	if lo, hi := LevelBounds(EnergyMode); lo != config.VFLow || hi != config.VFNormal {
		t.Fatalf("energy bounds = [%v,%v]", lo, hi)
	}
	if lo, hi := LevelBounds(PerformanceMode); lo != config.VFNormal || hi != config.VFHigh {
		t.Fatalf("performance bounds = [%v,%v]", lo, hi)
	}
	if Clamp(config.VFHigh, EnergyMode) != config.VFNormal {
		t.Fatal("energy mode must never exceed nominal")
	}
	if Clamp(config.VFLow, PerformanceMode) != config.VFNormal {
		t.Fatal("performance mode must never drop below nominal")
	}
	if Clamp(config.VFLow, EnergyMode) != config.VFLow || Clamp(config.VFHigh, PerformanceMode) != config.VFHigh {
		t.Fatal("in-range levels must pass through Clamp")
	}
}

func TestMajorityRequiresStrictMajority(t *testing.T) {
	// 8 of 15 SMs asking +1 is a majority; 7 is not.
	votes := make([]Vote, 15)
	for i := 0; i < 7; i++ {
		votes[i].SM = +1
	}
	if sm, _ := Majority(votes); sm != 0 {
		t.Fatalf("7/15 votes moved the domain (step %d)", sm)
	}
	votes[7].SM = +1
	if sm, _ := Majority(votes); sm != +1 {
		t.Fatal("8/15 votes did not move the domain")
	}
}

func TestMajorityIndependentDomains(t *testing.T) {
	votes := make([]Vote, 15)
	for i := range votes {
		votes[i] = Vote{SM: -1, Mem: +1}
	}
	sm, mem := Majority(votes)
	if sm != -1 || mem != +1 {
		t.Fatalf("majority = (%d,%d), want (-1,+1)", sm, mem)
	}
}

func TestMajorityConflictingVotesCancel(t *testing.T) {
	votes := make([]Vote, 14)
	for i := 0; i < 7; i++ {
		votes[i].Mem = +1
	}
	for i := 7; i < 14; i++ {
		votes[i].Mem = -1
	}
	if _, mem := Majority(votes); mem != 0 {
		t.Fatalf("split vote moved the memory domain (step %d)", mem)
	}
}

// Property: Decide never returns a block delta outside {-1,0,+1} and never
// pairs a decrease with a compute tendency.
func TestQuickDecideInvariants(t *testing.T) {
	f := func(active, waiting, xalu, xmem uint8, wcta uint8) bool {
		c := Counters{
			Active:  float64(active % 49),
			Waiting: float64(waiting % 49),
			XALU:    float64(xalu % 49),
			XMEM:    float64(xmem % 49),
		}
		w := int(wcta%24) + 1
		d := Decide(c, w, 2)
		if d.BlockDelta < -1 || d.BlockDelta > 1 {
			return false
		}
		if d.BlockDelta == -1 && d.Tendency != TendMemory {
			return false
		}
		if d.Tendency == TendNone && d.BlockDelta != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Majority output is always in {-1,0,+1} per domain and is the
// zero step on an empty vote set.
func TestQuickMajorityBounded(t *testing.T) {
	f := func(raw []int8) bool {
		votes := make([]Vote, len(raw))
		for i, r := range raw {
			votes[i] = Vote{SM: int(r%2) - 0, Mem: int(r % 3)}
			if votes[i].SM > 1 {
				votes[i].SM = 1
			}
		}
		sm, mem := Majority(votes)
		return sm >= -1 && sm <= 1 && mem >= -1 && mem <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if sm, mem := Majority(nil); sm != 0 || mem != 0 {
		t.Fatal("empty vote set moved a domain")
	}
}

func TestActionTableShape(t *testing.T) {
	rows := ActionTable()
	if len(rows) != 6 {
		t.Fatalf("Table I has %d rows, want 6", len(rows))
	}
	// Spot-check the two rows quoted most often in the text.
	if rows[0] != (ActionRow{"compute", "energy", "maintain", "decrease", "maximum"}) {
		t.Fatalf("row 0 = %+v", rows[0])
	}
	if rows[5] != (ActionRow{"cache", "performance", "maintain", "increase", "optimal"}) {
		t.Fatalf("row 5 = %+v", rows[5])
	}
}

func TestModeAndTendencyStrings(t *testing.T) {
	if EnergyMode.String() != "energy" || PerformanceMode.String() != "performance" {
		t.Fatal("mode strings wrong")
	}
	if TendCompute.String() != "compute" || TendMemory.String() != "memory" || TendNone.String() != "none" {
		t.Fatal("tendency strings wrong")
	}
}

func TestNewWithConfigRejectsInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	bad := config.DefaultEqualizer()
	bad.EpochCycles = 100 // not a multiple of 128
	NewWithConfig(EnergyMode, bad)
}

func TestEqualizerName(t *testing.T) {
	if New(EnergyMode).Name() != "equalizer-energy" {
		t.Fatal("energy-mode name wrong")
	}
	if New(PerformanceMode).Name() != "equalizer-performance" {
		t.Fatal("performance-mode name wrong")
	}
}
