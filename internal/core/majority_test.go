package core

import (
	"testing"
)

// TestMajorityStrict pins the strict-majority semantics: a step requires
// MORE than half the SMs (absent or abstaining SMs count against both
// directions), and exact ties move nothing.
func TestMajorityStrict(t *testing.T) {
	up := Vote{SM: +1, Mem: -1}
	down := Vote{SM: -1, Mem: +1}
	abstain := Vote{}

	cases := []struct {
		name            string
		votes           []Vote
		wantSM, wantMem int
	}{
		{"empty", nil, 0, 0},
		{"single up", []Vote{up}, +1, -1},
		{"two-way tie", []Vote{up, down}, 0, 0},
		{"exact half is not a majority", []Vote{up, up, down, abstain}, 0, 0},
		{"strict majority up", []Vote{up, up, up, down}, +1, -1},
		{"strict majority down", []Vote{down, down, down, up, abstain}, -1, +1},
		{"abstentions dilute", []Vote{up, up, abstain, abstain, abstain}, 0, 0},
		{"all abstain", []Vote{abstain, abstain, abstain}, 0, 0},
		{"odd tie-breaker", []Vote{up, up, down, down, up}, +1, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sm, mem := Majority(tc.votes)
			if sm != tc.wantSM || mem != tc.wantMem {
				t.Fatalf("Majority(%v) = (%d, %d), want (%d, %d)",
					tc.votes, sm, mem, tc.wantSM, tc.wantMem)
			}
		})
	}
}

// TestMajorityOrderIndependence checks the vote tally is a pure function
// of the multiset of votes: every permutation of a mixed ballot produces
// the identical decision. This is the property that lets per-SM sampling
// order vary without perturbing frequency decisions.
func TestMajorityOrderIndependence(t *testing.T) {
	ballot := []Vote{
		{SM: +1, Mem: -1}, {SM: +1, Mem: -1}, {SM: +1, Mem: -1},
		{SM: -1, Mem: +1}, {},
	}
	wantSM, wantMem := Majority(ballot)
	if wantSM != +1 || wantMem != -1 {
		t.Fatalf("baseline ballot = (%d, %d), want (+1, -1)", wantSM, wantMem)
	}

	permute(ballot, func(p []Vote) {
		sm, mem := Majority(p)
		if sm != wantSM || mem != wantMem {
			t.Fatalf("Majority(%v) = (%d, %d), differs from canonical (%d, %d)",
				p, sm, mem, wantSM, wantMem)
		}
	})
}

// TestMajorityAbsentSMs models SMs with no resident blocks: they abstain
// rather than vote, so a loaded minority cannot retune the whole chip.
func TestMajorityAbsentSMs(t *testing.T) {
	// 2 of 15 SMs are active and memory-bound; 13 are drained. The two
	// real votes are a minority of the 15-slot ballot.
	votes := make([]Vote, 15)
	votes[3] = VoteFor(TendMemory, EnergyMode)
	votes[11] = VoteFor(TendMemory, EnergyMode)
	if sm, mem := Majority(votes); sm != 0 || mem != 0 {
		t.Fatalf("2/15 votes moved the chip: (%d, %d)", sm, mem)
	}

	// The same two votes on a two-SM machine are unanimous.
	if sm, mem := Majority(votes[:0:0]); sm != 0 || mem != 0 {
		t.Fatalf("empty ballot moved the chip: (%d, %d)", sm, mem)
	}
	pair := []Vote{VoteFor(TendMemory, EnergyMode), VoteFor(TendMemory, EnergyMode)}
	if sm, mem := Majority(pair); sm != -1 || mem != +1 {
		t.Fatalf("unanimous memory tendency = (%d, %d), want (-1, +1)", sm, mem)
	}
}

// permute invokes fn with every permutation of votes (Heap's algorithm,
// in-place; fn must not retain the slice).
func permute(votes []Vote, fn func([]Vote)) {
	var rec func(k int)
	rec = func(k int) {
		if k <= 1 {
			fn(votes)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				votes[i], votes[k-1] = votes[k-1], votes[i]
			} else {
				votes[0], votes[k-1] = votes[k-1], votes[0]
			}
		}
	}
	rec(len(votes))
}
