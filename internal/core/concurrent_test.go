package core

import (
	"testing"

	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
)

func TestEqualizerClassifiesConcurrentPartitionsIndependently(t *testing.T) {
	compute, err := kernels.ByName("cutcp")
	if err != nil {
		t.Fatal(err)
	}
	cacheK, err := kernels.ByName("kmn")
	if err != nil {
		t.Fatal(err)
	}
	compute.GridBlocks = 56 // 8 blocks on each of 7 SMs
	cacheK.GridBlocks = 48  // 6 blocks on each of 8 SMs

	eq := New(PerformanceMode)
	m := machine(t, eq)
	_, _, err = m.RunConcurrent([]gpu.Task{{Kernel: compute}, {Kernel: cacheK}})
	if err != nil {
		t.Fatal(err)
	}

	// The compute partition (SMs 0-6) must keep its full occupancy; the
	// cache partition (SMs 7-14) must have shed blocks.
	if tb := m.SM(0).TargetBlocks(); tb != compute.MaxResidentBlocks(48) {
		t.Errorf("compute partition throttled to %d blocks", tb)
	}
	throttled := false
	for i := 7; i < 15; i++ {
		if m.SM(i).TargetBlocks() < cacheK.MaxResidentBlocks(48) {
			throttled = true
		}
	}
	if !throttled {
		t.Error("cache partition never shed blocks under Equalizer")
	}
}

func TestEqualizerConcurrentUsesPerSMWcta(t *testing.T) {
	a, err := kernels.ByName("cutcp") // Wcta 6
	if err != nil {
		t.Fatal(err)
	}
	b, err := kernels.ByName("bfs-2") // Wcta 16
	if err != nil {
		t.Fatal(err)
	}
	a.GridBlocks, b.GridBlocks = 28, 14
	eq := New(PerformanceMode)
	m := machine(t, eq)
	if _, _, err := m.RunConcurrent([]gpu.Task{{Kernel: a}, {Kernel: b}}); err != nil {
		t.Fatal(err)
	}
	if eq.wcta[0] != 6 || eq.wcta[14] != 16 {
		t.Fatalf("per-SM Wcta = %d/%d, want 6/16", eq.wcta[0], eq.wcta[14])
	}
}
