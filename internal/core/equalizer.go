// Package core implements Equalizer, the paper's contribution: a low
// overhead hardware runtime that samples the state of each SM's warps
// through four counters (active, waiting, excess-ALU, excess-memory), runs
// the decision algorithm of Section III-B at the end of every 4096-cycle
// epoch, and retunes three architectural parameters in a coordinated way:
//
//   - the number of concurrent thread blocks on each SM (via CTA pausing,
//     with a three-epoch hysteresis against spurious changes);
//   - the SM voltage/frequency level; and
//   - the memory-system voltage/frequency level,
//
// where the two frequency decisions are taken globally by a frequency
// manager that holds a majority vote across the per-SM preferences.
//
// Equalizer runs in one of two modes (Table I): EnergyMode throttles the
// under-utilised resource; PerformanceMode boosts the bottleneck resource.
package core

import (
	"fmt"

	"equalizer/internal/clock"
	"equalizer/internal/config"
	"equalizer/internal/gpu"
	"equalizer/internal/invariant"
	"equalizer/internal/kernels"
	"equalizer/internal/telemetry"
)

// Mode is Equalizer's objective.
type Mode int

const (
	// EnergyMode saves energy by throttling under-utilised resources.
	EnergyMode Mode = iota
	// PerformanceMode boosts the bottleneck resource.
	PerformanceMode
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case EnergyMode:
		return "energy"
	case PerformanceMode:
		return "performance"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Tendency is the kernel inclination detected by Algorithm 1 in one epoch.
type Tendency int

const (
	// TendNone marks a degenerate epoch: no parameter is changed.
	TendNone Tendency = iota
	// TendCompute marks compute-pipeline contention (CompAction).
	TendCompute
	// TendMemory marks memory-system contention (MemAction).
	TendMemory
)

// String returns the tendency name.
func (t Tendency) String() string {
	switch t {
	case TendNone:
		return "none"
	case TendCompute:
		return "compute"
	case TendMemory:
		return "memory"
	default:
		return fmt.Sprintf("Tendency(%d)", int(t))
	}
}

// Decision is the per-SM outcome of one epoch of Algorithm 1.
type Decision struct {
	// BlockDelta is -1, 0 or +1 resident thread blocks.
	BlockDelta int
	// Tendency selects CompAction/MemAction for the frequency vote.
	Tendency Tendency
}

// Counters are the four accumulated hardware counters of one epoch,
// normalised to per-sample averages (warp counts).
type Counters struct {
	// Active is the mean number of resident, unpaused, unfinished warps.
	Active float64
	// Waiting is the mean number of warps waiting on operands.
	Waiting float64
	// XALU is the mean number of ready-ALU warps that could not issue.
	XALU float64
	// XMEM is the mean number of ready-memory warps blocked by the LSU.
	XMEM float64
}

// Decide is Algorithm 1 of the paper. wcta is the number of warps per
// thread block; memSat is the bandwidth-saturation floor (2 in the paper).
func Decide(c Counters, wcta int, memSat int) Decision {
	w := float64(wcta)
	switch {
	case c.XMEM > w: // definitely memory intensive
		return Decision{BlockDelta: -1, Tendency: TendMemory}
	case c.XALU > w: // definitely compute intensive
		return Decision{Tendency: TendCompute}
	case c.XMEM > float64(memSat): // likely memory intensive
		return Decision{Tendency: TendMemory}
	case c.Waiting > c.Active/2: // close to ideal kernel: feed it more work
		d := Decision{BlockDelta: +1}
		if c.XALU > c.XMEM {
			d.Tendency = TendCompute
		} else {
			d.Tendency = TendMemory
		}
		return d
	case c.Active == 0: // idle SM: finish the imbalanced kernel early
		return Decision{Tendency: TendCompute}
	default: // degenerate: no parameter change
		return Decision{}
	}
}

// Vote is one SM's VF-level preference for the two domains, in steps of
// -1 (decrease), 0 (maintain), +1 (increase).
type Vote struct {
	SM, Mem int
}

// VoteFor maps a tendency and objective to the frequency actions of Table I:
//
//	kernel    objective    SM freq    DRAM freq
//	compute   energy       maintain   decrease
//	compute   performance  increase   maintain
//	memory*   energy       decrease   maintain
//	memory*   performance  maintain   increase
//
// (*cache-sensitive kernels are unified with memory-intensive ones,
// Section III-A.)
//
// "Maintain" is implemented as restore-towards-nominal: when a kernel's
// tendency flips between phases (mri-g, spmv), a domain throttled or boosted
// for the previous phase drifts back to the nominal point instead of
// sticking for the rest of the run. EnergyMode never raises a domain above
// nominal and PerformanceMode never drops one below nominal — the caller
// enforces those bounds via LevelBounds.
func VoteFor(t Tendency, mode Mode) Vote {
	// The pressure direction is the same in both modes — favour the
	// bottleneck domain, starve the idle one; the mode's LevelBounds decide
	// whether that manifests as a boost (performance) or a throttle
	// (energy). The mode parameter is kept for API symmetry with Table I.
	_ = mode
	switch t {
	case TendCompute:
		return Vote{SM: +1, Mem: -1}
	case TendMemory:
		return Vote{SM: -1, Mem: +1}
	default:
		return Vote{}
	}
}

// LevelBounds returns the [min, max] VF levels a mode may command: energy
// mode only throttles (never exceeds nominal) and performance mode only
// boosts (never drops below nominal).
func LevelBounds(mode Mode) (lo, hi config.VFLevel) {
	if mode == EnergyMode {
		return config.VFLow, config.VFNormal
	}
	return config.VFNormal, config.VFHigh
}

// Clamp bounds a level to the mode's allowed range.
func Clamp(l config.VFLevel, mode Mode) config.VFLevel {
	lo, hi := LevelBounds(mode)
	if l < lo {
		return lo
	}
	if l > hi {
		return hi
	}
	return l
}

// Majority tallies the per-SM votes and returns the global step for each
// domain: a domain moves only when a strict majority of SMs agree on the
// direction (Section IV-C).
func Majority(votes []Vote) (smStep, memStep int) {
	var smUp, smDown, memUp, memDown int
	for _, v := range votes {
		switch {
		case v.SM > 0:
			smUp++
		case v.SM < 0:
			smDown++
		}
		switch {
		case v.Mem > 0:
			memUp++
		case v.Mem < 0:
			memDown++
		}
	}
	half := len(votes) / 2
	switch {
	case smUp > half:
		smStep = +1
	case smDown > half:
		smStep = -1
	}
	switch {
	case memUp > half:
		memStep = +1
	case memDown > half:
		memStep = -1
	}
	return smStep, memStep
}

// TracePoint is one epoch of recorded counters, for the adaptivity studies
// (Figures 2b and 11b).
type TracePoint struct {
	// Epoch is the 1-based epoch index within the invocation.
	Epoch int
	// Counters are the SM's per-sample averages for the epoch.
	Counters Counters
	// TargetBlocks is the SM's concurrency ceiling after the decision.
	TargetBlocks int
	// ActiveWarps is the mean active warp count (post-pausing concurrency).
	ActiveWarps float64
	// SMLevel and MemLevel are the effective VF levels at epoch end.
	SMLevel, MemLevel config.VFLevel
}

// smAccum accumulates one SM's samples within the current epoch.
type smAccum struct {
	active, waiting, xalu, xmem int64
	samples                     int
	// streak tracks consecutive epochs whose block decision differed from
	// the current target in the same direction.
	streak    int
	streakDir int
}

// Equalizer is the runtime system; it implements gpu.Policy.
type Equalizer struct {
	mode Mode
	cfg  config.Equalizer

	// DisableFrequency suppresses VF requests (used by the Figure 11a
	// study, which isolates the thread-block control).
	DisableFrequency bool
	// DisableBlocks suppresses concurrency changes.
	DisableBlocks bool
	// Record enables per-epoch trace collection on every SM.
	Record bool

	// wcta holds the warps-per-block threshold for each SM; entries differ
	// only when kernels run concurrently on disjoint SM partitions.
	wcta   []int
	accum  []smAccum
	votes  []Vote
	traces [][]TracePoint
	epoch  int
}

var (
	_ gpu.Policy           = (*Equalizer)(nil)
	_ gpu.FastForwardAware = (*Equalizer)(nil)
	_ gpu.BatchAware       = (*Equalizer)(nil)
)

// New builds an Equalizer policy in the given mode with the paper's default
// runtime parameters.
func New(mode Mode) *Equalizer {
	return NewWithConfig(mode, config.DefaultEqualizer())
}

// NewWithConfig builds an Equalizer with explicit runtime parameters; it
// panics on an invalid configuration.
func NewWithConfig(mode Mode, cfg config.Equalizer) *Equalizer {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Equalizer{mode: mode, cfg: cfg}
}

// Mode returns the objective.
func (e *Equalizer) Mode() Mode { return e.mode }

// Name implements gpu.Policy.
func (e *Equalizer) Name() string { return "equalizer-" + e.mode.String() }

// Trace returns SM 0's recorded per-epoch points (Record must be set before
// the run). The adaptivity figures plot SM 0 as the representative SM.
func (e *Equalizer) Trace() []TracePoint { return e.TraceSM(0) }

// TraceSM returns the recorded per-epoch points of one SM, or nil when the
// index is out of range or nothing was recorded.
func (e *Equalizer) TraceSM(i int) []TracePoint {
	if i < 0 || i >= len(e.traces) {
		return nil
	}
	return e.traces[i]
}

// TracedSMs returns the number of SMs with recorded traces.
func (e *Equalizer) TracedSMs() int { return len(e.traces) }

// Reset implements gpu.Policy.
//
//eqlint:cycle-owner
func (e *Equalizer) Reset(m *gpu.Machine, k kernels.Kernel) {
	n := m.NumSMs()
	e.wcta = make([]int, n)
	for i := range e.wcta {
		e.wcta[i] = k.Wcta
	}
	e.accum = make([]smAccum, n)
	e.votes = make([]Vote, n)
	e.traces = make([][]TracePoint, n)
	e.epoch = 0
}

// ResetConcurrent implements gpu.ConcurrentAware: with several kernels on
// disjoint SM partitions, each SM's W_cta threshold comes from its own
// kernel — the per-SM decision making the paper motivates in Section I.
func (e *Equalizer) ResetConcurrent(m *gpu.Machine, tasks []gpu.Task) {
	for i := range e.wcta {
		e.wcta[i] = m.WctaFor(i)
	}
}

// OnSMCycle implements gpu.Policy: sample every SampleInterval cycles,
// decide at every epoch boundary.
//
//eqlint:cycle-owner
func (e *Equalizer) OnSMCycle(m *gpu.Machine, now clock.Time, smCycle int64) {
	if smCycle%int64(e.cfg.SampleInterval) != 0 {
		return
	}
	for i := range e.accum {
		snap := m.SM(i).Snapshot()
		a := &e.accum[i]
		a.active += int64(snap.Active)
		a.waiting += int64(snap.Waiting)
		a.xalu += int64(snap.XALU)
		a.xmem += int64(snap.XMEM)
		a.samples++
	}
	if smCycle%int64(e.cfg.EpochCycles) != 0 {
		return
	}
	e.epoch++
	e.decideEpoch(m, int64(now))
}

// NextActiveCycle implements gpu.FastForwardAware: between epoch boundaries
// OnSMCycle only samples the (constant, during a quiescent span) census into
// per-SM accumulators, which AccumulateSpan replays arithmetically. The
// decision at each EpochCycles multiple retunes the machine and must run for
// real.
func (e *Equalizer) NextActiveCycle(smCycle int64) int64 {
	ec := int64(e.cfg.EpochCycles)
	return (smCycle/ec + 1) * ec
}

// NextSampleCycle implements gpu.BatchAware: OnSMCycle returns immediately
// off the SampleInterval grid, so every cycle strictly between smCycle and
// the next multiple is a pure no-op.
func (e *Equalizer) NextSampleCycle(smCycle int64) int64 {
	si := int64(e.cfg.SampleInterval)
	return (smCycle/si + 1) * si
}

// AccumulateSpan implements gpu.FastForwardAware: add one sample per
// SampleInterval multiple in [fromCycle, toCycle], each an exact copy of the
// current census snapshot — precisely what OnSMCycle would have accumulated
// cycle by cycle over a quiescent span.
func (e *Equalizer) AccumulateSpan(m *gpu.Machine, fromCycle, toCycle int64) {
	if invariant.Enabled {
		ec := int64(e.cfg.EpochCycles)
		invariant.Checkf(toCycle/ec == (fromCycle-1)/ec,
			"equalizer: fast-forward span [%d, %d] crosses an epoch boundary",
			fromCycle, toCycle)
	}
	si := int64(e.cfg.SampleInterval)
	k := toCycle/si - (fromCycle-1)/si
	if k == 0 {
		return
	}
	for i := range e.accum {
		snap := m.SM(i).Snapshot()
		a := &e.accum[i]
		a.active += k * int64(snap.Active)
		a.waiting += k * int64(snap.Waiting)
		a.xalu += k * int64(snap.XALU)
		a.xmem += k * int64(snap.XMEM)
		a.samples += int(k)
	}
}

func (e *Equalizer) decideEpoch(m *gpu.Machine, nowPS int64) {
	bus := m.Bus()
	for i := range e.accum {
		a := &e.accum[i]
		c := a.counters()
		d := Decide(c, e.wcta[i], e.cfg.MemSaturationWarps)
		bus.Emit(nowPS, telemetry.KindEpochDecision, int16(i),
			int64(d.Tendency), int64(d.BlockDelta))
		e.votes[i] = VoteFor(d.Tendency, e.mode)
		if !e.DisableBlocks {
			e.applyBlockDecision(m, i, a, d.BlockDelta)
		}
		if e.Record {
			//eqlint:allow allocfree -- Record-mode trace point, appended once per epoch; amortized over SampleInterval cycles
			e.traces[i] = append(e.traces[i], TracePoint{
				Epoch:        e.epoch,
				Counters:     c,
				TargetBlocks: m.SM(i).TargetBlocks(),
				ActiveWarps:  c.Active,
				SMLevel:      m.SMLevel(),
				MemLevel:     m.MemLevel(),
			})
		}
		a.reset()
	}

	smStep, memStep := Majority(e.votes)
	if !e.DisableFrequency {
		if smStep != 0 {
			m.RequestSMLevel(Clamp(m.SMLevel().Step(smStep), e.mode))
		}
		if memStep != 0 {
			m.RequestMemLevel(Clamp(m.MemLevel().Step(memStep), e.mode))
		}
	}
	// The packed vote outcome biases each step by +1 so that the two-bit
	// fields stay non-negative: 0=down 1=hold 2=up.
	bus.Emit(nowPS, telemetry.KindEpoch, -1, int64(e.epoch),
		int64(smStep+1)<<2|int64(memStep+1))
}

// applyBlockDecision enforces the three-consecutive-epoch hysteresis of
// Section IV-B before changing the SM's resident block count by one step.
func (e *Equalizer) applyBlockDecision(m *gpu.Machine, smIdx int, a *smAccum, delta int) {
	if delta == 0 {
		a.streak, a.streakDir = 0, 0
		return
	}
	// An increase request at the ceiling (or decrease at the floor) is a
	// no-op; do not accumulate a streak for it.
	cur := m.SM(smIdx).TargetBlocks()
	if (delta > 0 && cur >= m.MaxResidentBlocksFor(smIdx)) || (delta < 0 && cur <= 1) {
		a.streak, a.streakDir = 0, 0
		return
	}
	if a.streakDir == delta {
		a.streak++
	} else {
		a.streak, a.streakDir = 1, delta
	}
	if a.streak < e.cfg.Hysteresis {
		if invariant.Enabled {
			e.verifyHysteresis(a)
		}
		return
	}
	m.SetTargetBlocks(smIdx, cur+delta)
	a.streak, a.streakDir = 0, 0
}

// verifyHysteresis asserts the streak state machine's reachable states:
// the streak saturates below the hysteresis threshold (it resets on the
// epoch it fires), and a zero streak never carries a direction. Only
// compiled in under the eqdebug build tag.
func (e *Equalizer) verifyHysteresis(a *smAccum) {
	invariant.Checkf(0 <= a.streak && a.streak < e.cfg.Hysteresis,
		"equalizer: streak %d outside [0, %d)", a.streak, e.cfg.Hysteresis)
	invariant.Checkf((a.streak == 0) == (a.streakDir == 0),
		"equalizer: streak %d with direction %d", a.streak, a.streakDir)
	invariant.Checkf(a.streakDir >= -1 && a.streakDir <= 1,
		"equalizer: streak direction %d not in {-1, 0, +1}", a.streakDir)
}

func (a *smAccum) counters() Counters {
	if a.samples == 0 {
		return Counters{}
	}
	n := float64(a.samples)
	return Counters{
		Active:  float64(a.active) / n,
		Waiting: float64(a.waiting) / n,
		XALU:    float64(a.xalu) / n,
		XMEM:    float64(a.xmem) / n,
	}
}

func (a *smAccum) reset() {
	a.active, a.waiting, a.xalu, a.xmem = 0, 0, 0, 0
	a.samples = 0
}

// ActionRow is one line of Table I.
type ActionRow struct {
	Kernel, Objective, SMFreq, DRAMFreq, Blocks string
}

// ActionTable returns Table I of the paper: the action taken on each
// parameter for every (kernel type, objective) pair.
func ActionTable() []ActionRow {
	return []ActionRow{
		{"compute", "energy", "maintain", "decrease", "maximum"},
		{"compute", "performance", "increase", "maintain", "maximum"},
		{"memory", "energy", "decrease", "maintain", "maximum"},
		{"memory", "performance", "maintain", "increase", "maximum"},
		{"cache", "energy", "decrease", "maintain", "optimal"},
		{"cache", "performance", "maintain", "increase", "optimal"},
	}
}
