package core

import (
	"testing"

	"equalizer/internal/config"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
)

func machine(t *testing.T, p gpu.Policy) *gpu.Machine {
	t.Helper()
	m, err := gpu.New(config.Default(), power.Default(), p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func kernel(t *testing.T, name string, grid int) kernels.Kernel {
	t.Helper()
	k, err := kernels.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if grid > 0 {
		k.GridBlocks = grid
	}
	return k
}

func run(t *testing.T, p gpu.Policy, name string, grid int) gpu.Result {
	t.Helper()
	res, err := machine(t, p).RunKernel(kernel(t, name, grid), 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPerformanceModeBoostsComputeKernelSM(t *testing.T) {
	eq := New(PerformanceMode)
	eq.Record = true
	res := run(t, eq, "cutcp", 60)
	base := run(t, nil, "cutcp", 60)
	if res.TimePS >= base.TimePS {
		t.Fatalf("performance mode (%d ps) not faster than baseline (%d ps)", res.TimePS, base.TimePS)
	}
	// The SM domain must have spent time boosted; the memory domain not.
	if res.Residency.SM[config.VFHigh] == 0 {
		t.Fatal("compute kernel never reached SM-high in performance mode")
	}
	if res.Residency.Mem[config.VFHigh] > res.Residency.SM[config.VFHigh] {
		t.Fatal("memory domain boosted more than SM domain on a compute kernel")
	}
}

func TestPerformanceModeBoostsMemoryKernelDRAM(t *testing.T) {
	eq := New(PerformanceMode)
	res := run(t, eq, "lbm", 105)
	base := run(t, nil, "lbm", 105)
	if res.TimePS >= base.TimePS {
		t.Fatal("performance mode not faster on a memory kernel")
	}
	if res.Residency.Mem[config.VFHigh] == 0 {
		t.Fatal("memory kernel never reached mem-high in performance mode")
	}
}

func TestEnergyModeNeverBoosts(t *testing.T) {
	for _, name := range []string{"cutcp", "lbm", "kmn"} {
		eq := New(EnergyMode)
		res := run(t, eq, name, 45)
		if res.Residency.SM[config.VFHigh] != 0 || res.Residency.Mem[config.VFHigh] != 0 {
			t.Fatalf("%s: energy mode reached a boosted state", name)
		}
	}
}

func TestEnergyModeSavesEnergyOnComputeKernel(t *testing.T) {
	base := run(t, nil, "cutcp", 60)
	res := run(t, New(EnergyMode), "cutcp", 60)
	if res.EnergyJ() >= base.EnergyJ() {
		t.Fatalf("energy mode used %.4g J vs baseline %.4g J", res.EnergyJ(), base.EnergyJ())
	}
	slowdown := float64(res.TimePS)/float64(base.TimePS) - 1
	if slowdown > 0.05 {
		t.Fatalf("energy mode slowed a compute kernel by %.1f%% (memory throttling must be free)", slowdown*100)
	}
	// For a compute kernel the throttled domain must be memory (Table I).
	if res.Residency.Mem[config.VFLow] == 0 {
		t.Fatal("memory domain never throttled")
	}
	if res.Residency.SM[config.VFLow] > res.Residency.Mem[config.VFLow]/2 {
		t.Fatal("SM domain throttled on a compute kernel")
	}
}

func TestEnergyModeThrottlesSMOnMemoryKernel(t *testing.T) {
	base := run(t, nil, "lbm", 105)
	res := run(t, New(EnergyMode), "lbm", 105)
	if res.EnergyJ() >= base.EnergyJ() {
		t.Fatal("no energy saved on memory kernel")
	}
	if res.Residency.SM[config.VFLow] == 0 {
		t.Fatal("SM domain never throttled on a memory kernel")
	}
}

func TestCacheKernelBlockThrottling(t *testing.T) {
	eq := New(PerformanceMode)
	eq.Record = true
	m := machine(t, eq)
	k := kernel(t, "kmn", 90)
	res, err := m.RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	trace := eq.Trace()
	if len(trace) == 0 {
		t.Fatal("no trace recorded")
	}
	final := trace[len(trace)-1].TargetBlocks
	if final >= k.MaxResidentBlocks(48) {
		t.Fatalf("cache kernel kept %d blocks, want throttled", final)
	}
	if res.L1HitRate < 0.3 {
		t.Fatalf("L1 hit rate %.2f after throttling, want recovered", res.L1HitRate)
	}
}

func TestHysteresisDelaysBlockChanges(t *testing.T) {
	eq := New(PerformanceMode)
	eq.Record = true
	m := machine(t, eq)
	k := kernel(t, "kmn", 90)
	if _, err := m.RunKernel(k, 0); err != nil {
		t.Fatal(err)
	}
	// The first block change can happen no earlier than epoch `Hysteresis`.
	cfg := config.DefaultEqualizer()
	maxBlocks := k.MaxResidentBlocks(48)
	for _, p := range eq.Trace() {
		if p.TargetBlocks < maxBlocks {
			if p.Epoch < cfg.Hysteresis {
				t.Fatalf("block change at epoch %d, before hysteresis %d", p.Epoch, cfg.Hysteresis)
			}
			return
		}
	}
	t.Fatal("blocks never changed for a thrashing kernel")
}

func TestDisableFrequencyIsolatesBlockControl(t *testing.T) {
	eq := New(PerformanceMode)
	eq.DisableFrequency = true
	res := run(t, eq, "kmn", 90)
	if res.Residency.SM[config.VFHigh] != 0 || res.Residency.Mem[config.VFHigh] != 0 ||
		res.Residency.SM[config.VFLow] != 0 || res.Residency.Mem[config.VFLow] != 0 {
		t.Fatal("frequency moved despite DisableFrequency")
	}
	base := run(t, nil, "kmn", 90)
	if res.TimePS >= base.TimePS {
		t.Fatal("block control alone gave no speedup on a cache kernel")
	}
}

func TestDisableBlocksIsolatesFrequencyControl(t *testing.T) {
	eq := New(PerformanceMode)
	eq.DisableBlocks = true
	m := machine(t, eq)
	k := kernel(t, "kmn", 90)
	if _, err := m.RunKernel(k, 0); err != nil {
		t.Fatal(err)
	}
	if tb := m.SM(0).TargetBlocks(); tb != k.MaxResidentBlocks(48) {
		t.Fatalf("blocks changed to %d despite DisableBlocks", tb)
	}
}

func TestAdaptsAcrossInvocations(t *testing.T) {
	// bfs-2's mid invocations are cache-bound; Equalizer must beat the
	// static-maximum baseline over the full launch sequence.
	k := kernel(t, "bfs-2", 0)
	eq := New(PerformanceMode)
	eq.DisableFrequency = true
	eqM := machine(t, eq)
	baseM := machine(t, nil)
	var eqTotal, baseTotal int64
	for inv := 0; inv < k.Invocations; inv++ {
		r1, err := eqM.RunKernel(k, inv)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := baseM.RunKernel(k, inv)
		if err != nil {
			t.Fatal(err)
		}
		eqTotal += r1.TimePS
		baseTotal += r2.TimePS
	}
	if eqTotal >= baseTotal {
		t.Fatalf("equalizer total %d ps not below baseline %d ps", eqTotal, baseTotal)
	}
}

func TestIntraInvocationAdaptation(t *testing.T) {
	// spmv: blocks must first fall (cache phase) then recover (latency
	// phase) — the Figure 11b behaviour.
	eq := New(PerformanceMode)
	eq.Record = true
	eq.DisableFrequency = true
	m := machine(t, eq)
	k := kernel(t, "spmv", 0)
	if _, err := m.RunKernel(k, 0); err != nil {
		t.Fatal(err)
	}
	trace := eq.Trace()
	minBlocks, maxAfterMin := 99, 0
	minAt := -1
	for i, p := range trace {
		if p.TargetBlocks < minBlocks {
			minBlocks, minAt = p.TargetBlocks, i
		}
	}
	for _, p := range trace[minAt:] {
		if p.TargetBlocks > maxAfterMin {
			maxAfterMin = p.TargetBlocks
		}
	}
	if minBlocks >= k.MaxResidentBlocks(48) {
		t.Fatal("spmv blocks never dropped in the cache phase")
	}
	if maxAfterMin <= minBlocks {
		t.Fatalf("spmv blocks never recovered after the cache phase (min %d, later max %d)",
			minBlocks, maxAfterMin)
	}
}

func TestVotingIsGlobal(t *testing.T) {
	// A kernel occupying all SMs identically must move the global domains;
	// the residency proves a majority vote succeeded.
	res := run(t, New(PerformanceMode), "sgemm", 90)
	if res.Residency.SM[config.VFHigh] == 0 {
		t.Fatal("majority vote never boosted the SM domain")
	}
}

func TestTraceRecordingOffByDefault(t *testing.T) {
	eq := New(PerformanceMode)
	run(t, eq, "cutcp", 30)
	if len(eq.Trace()) != 0 {
		t.Fatal("trace recorded without Record")
	}
}
