package warp

import (
	"testing"
	"testing/quick"
)

func simpleProfile() *Profile {
	return &Profile{
		LineBytes: 128,
		Phases: []Phase{
			{Insts: 8, MemEvery: 4, ALUGap: 2, Pattern: Streaming},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := simpleProfile().Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	bad := []Profile{
		{LineBytes: 128},
		{LineBytes: 100, Phases: []Phase{{Insts: 1}}},
		{LineBytes: 128, Phases: []Phase{{Insts: 0}}},
		{LineBytes: 128, Phases: []Phase{{Insts: 1, MemEvery: -1}}},
		{LineBytes: 128, Phases: []Phase{{Insts: 1, Pattern: PrivateReuse}}},
		{LineBytes: 128, Phases: []Phase{{Insts: 1, Pattern: SharedReadOnly}}},
		{LineBytes: 128, Phases: []Phase{{Insts: 1, ExtraLines: -2}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestStreamEmitsMixAndExit(t *testing.T) {
	s := NewStream(simpleProfile(), 0)
	var kinds []Kind
	for !s.Done() {
		in := s.Next()
		kinds = append(kinds, in.Kind)
		if len(kinds) > 20 {
			t.Fatal("stream did not terminate")
		}
	}
	// 8 instructions: mem at local positions 3 and 7, then EXIT.
	want := []Kind{ALU, ALU, ALU, MEM, ALU, ALU, ALU, MEM, EXIT}
	if len(kinds) != len(want) {
		t.Fatalf("stream length = %d, want %d (%v)", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("inst %d = %v, want %v (%v)", i, kinds[i], want[i], kinds)
		}
	}
}

func TestExitIsSticky(t *testing.T) {
	p := &Profile{LineBytes: 128, Phases: []Phase{{Insts: 1, ALUGap: 1}}}
	s := NewStream(p, 0)
	s.Next()
	for i := 0; i < 3; i++ {
		if in := s.Next(); in.Kind != EXIT {
			t.Fatalf("post-exit Next = %v, want EXIT", in.Kind)
		}
	}
	if !s.Done() {
		t.Fatal("Done false after EXIT")
	}
}

func TestStreamingAddressesAreFreshLines(t *testing.T) {
	p := simpleProfile()
	seen := map[uint64]bool{}
	for id := 0; id < 4; id++ {
		s := NewStream(p, id)
		for !s.Done() {
			in := s.Next()
			if in.Kind != MEM {
				continue
			}
			la := uint64(in.Addr) &^ 127
			if seen[la] {
				t.Fatalf("streaming address %#x repeated", la)
			}
			seen[la] = true
		}
	}
	if len(seen) != 8 {
		t.Fatalf("unique lines = %d, want 8 (2 per warp × 4 warps)", len(seen))
	}
}

func TestPrivateReuseCycles(t *testing.T) {
	p := &Profile{
		LineBytes: 128,
		Phases:    []Phase{{Insts: 12, MemEvery: 1, Pattern: PrivateReuse, WorkingSetLines: 4}},
	}
	s := NewStream(p, 3)
	var addrs []uint64
	for !s.Done() {
		in := s.Next()
		if in.Kind == MEM {
			addrs = append(addrs, uint64(in.Addr))
		}
	}
	if len(addrs) != 12 {
		t.Fatalf("mem ops = %d, want 12", len(addrs))
	}
	for i := 4; i < len(addrs); i++ {
		if addrs[i] != addrs[i-4] {
			t.Fatalf("working set did not cycle: addr[%d]=%#x addr[%d]=%#x", i, addrs[i], i-4, addrs[i-4])
		}
	}
	// Distinct warps use disjoint regions.
	s2 := NewStream(p, 4)
	in := s2.Next()
	for in.Kind != MEM {
		in = s2.Next()
	}
	for _, a := range addrs {
		if a == uint64(in.Addr) {
			t.Fatal("private regions of two warps overlap")
		}
	}
}

func TestSharedReadOnlyStaysInRegion(t *testing.T) {
	p := &Profile{
		LineBytes: 128,
		Phases:    []Phase{{Insts: 64, MemEvery: 1, Pattern: SharedReadOnly, SharedLines: 16}},
	}
	base := uint64(sharedBase)
	for id := 0; id < 5; id++ {
		s := NewStream(p, id)
		for !s.Done() {
			in := s.Next()
			if in.Kind != MEM {
				continue
			}
			off := uint64(in.Addr) - base
			if off >= 16*128 {
				t.Fatalf("shared access %#x outside region", uint64(in.Addr))
			}
		}
	}
}

func TestBarrierIsLastInstructionOfPhase(t *testing.T) {
	p := &Profile{
		LineBytes: 128,
		Phases: []Phase{
			{Insts: 3, ALUGap: 1, Barrier: true},
			{Insts: 2, ALUGap: 1},
		},
	}
	s := NewStream(p, 0)
	var kinds []Kind
	for !s.Done() {
		kinds = append(kinds, s.Next().Kind)
	}
	want := []Kind{ALU, ALU, BAR, ALU, ALU, EXIT}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("inst %d = %v, want %v (%v)", i, kinds[i], want[i], kinds)
		}
	}
}

func TestPhaseTransitionsAndPhaseIndex(t *testing.T) {
	p := &Profile{
		LineBytes: 128,
		Phases: []Phase{
			{Insts: 2, ALUGap: 1},
			{Insts: 2, MemEvery: 1, Pattern: Streaming},
		},
	}
	s := NewStream(p, 0)
	if s.Phase() != 0 {
		t.Fatal("initial phase != 0")
	}
	s.Next()
	s.Next()
	if s.Phase() != 1 {
		t.Fatalf("phase after 2 insts = %d, want 1", s.Phase())
	}
	if in := s.Next(); in.Kind != MEM {
		t.Fatalf("first phase-1 inst = %v, want MEM", in.Kind)
	}
	if p.TotalInsts() != 4 {
		t.Fatalf("TotalInsts = %d, want 4", p.TotalInsts())
	}
}

func TestSFUInterleave(t *testing.T) {
	p := &Profile{
		LineBytes: 128,
		Phases:    []Phase{{Insts: 6, SFUEvery: 3, SFUGap: 20, ALUGap: 2}},
	}
	s := NewStream(p, 0)
	var kinds []Kind
	for !s.Done() {
		kinds = append(kinds, s.Next().Kind)
	}
	want := []Kind{ALU, ALU, SFU, ALU, ALU, SFU, EXIT}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("inst %d = %v, want %v (%v)", i, kinds[i], want[i], kinds)
		}
	}
	if kinds[2] == SFU {
		in := NewStream(p, 0)
		in.Next()
		in.Next()
		if g := in.Next().Gap; g != 20 {
			t.Fatalf("SFU gap = %d, want 20", g)
		}
	}
}

func TestExtraAddrAdjacentLines(t *testing.T) {
	base := ExtraAddr(0x1000, 0, 128)
	a1 := ExtraAddr(0x1000, 1, 128)
	a2 := ExtraAddr(0x1000, 2, 128)
	if base != 0x1000 {
		t.Fatalf("k=0 must return base, got %#x", uint64(base))
	}
	if a1 != base+128 || a2 != base+256 {
		t.Fatalf("extra lines must be adjacent: %#x %#x", uint64(a1), uint64(a2))
	}
}

// Property: streams are deterministic — two streams with the same profile and
// id produce identical sequences.
func TestQuickDeterminism(t *testing.T) {
	f := func(id uint8, wsl uint8) bool {
		ws := int(wsl%16) + 1
		p := &Profile{
			LineBytes: 128,
			Phases: []Phase{
				{Insts: 32, MemEvery: 3, ALUGap: 2, Pattern: PrivateReuse, WorkingSetLines: ws},
			},
		}
		a, b := NewStream(p, int(id)), NewStream(p, int(id))
		for !a.Done() {
			x, y := a.Next(), b.Next()
			if x != y {
				return false
			}
		}
		return b.Done()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every stream terminates after exactly TotalInsts()+1 calls.
func TestQuickTermination(t *testing.T) {
	f := func(n1, n2 uint8) bool {
		p := &Profile{
			LineBytes: 128,
			Phases: []Phase{
				{Insts: int(n1%32) + 1, ALUGap: 1},
				{Insts: int(n2%32) + 1, MemEvery: 2, Pattern: Streaming},
			},
		}
		s := NewStream(p, 1)
		count := 0
		for !s.Done() {
			s.Next()
			count++
		}
		return count == p.TotalInsts()+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLookAheadMatchesWalk checks LookAhead against the ground truth at
// every stream position: collect the full instruction sequence once, then
// re-walk a fresh stream and verify the reported distances against the
// recorded tail — including multi-phase profiles, texture phases, and the
// BAR-overrides-MEM corner at a phase's last slot.
func TestLookAheadMatchesWalk(t *testing.T) {
	profiles := []*Profile{
		simpleProfile(),
		{LineBytes: 128, Phases: []Phase{{Insts: 9, ALUGap: 1}}}, // no mem at all
		{LineBytes: 128, Phases: []Phase{
			{Insts: 6, ALUGap: 1, SFUEvery: 3, Barrier: true},
			{Insts: 8, MemEvery: 4, Pattern: Streaming},
			{Insts: 5, MemEvery: 5, Pattern: Streaming, Barrier: true}, // BAR overrides the mem slot at Insts-1
		}},
		{LineBytes: 128, Phases: []Phase{
			{Insts: 4, MemEvery: 1, Pattern: Streaming, Texture: true},
			{Insts: 3, ALUGap: 2},
		}},
	}
	for pi, p := range profiles {
		var kinds []Kind
		s := NewStream(p, 1)
		for {
			in := s.Next()
			if in.Kind == EXIT {
				break
			}
			kinds = append(kinds, in.Kind)
		}
		s = NewStream(p, 1)
		for i := 0; i <= len(kinds); i++ {
			wantMem := int64(NoMemAhead)
			for j := i; j < len(kinds); j++ {
				if kinds[j] == MEM || kinds[j] == TEX {
					wantMem = int64(j - i + 1)
					break
				}
			}
			wantExit := int64(len(kinds) - i)
			dm, de := s.LookAhead()
			if dm != wantMem || de != wantExit {
				t.Fatalf("profile %d pos %d: LookAhead = (%d, %d), want (%d, %d)", pi, i, dm, de, wantMem, wantExit)
			}
			s.Next()
		}
		// Exhausted stream.
		if dm, de := s.LookAhead(); dm != NoMemAhead || de != 0 {
			t.Fatalf("profile %d exhausted: LookAhead = (%d, %d), want (NoMemAhead, 0)", pi, dm, de)
		}
	}
}

func TestKindAndPatternStrings(t *testing.T) {
	if ALU.String() != "alu" || MEM.String() != "mem" || BAR.String() != "bar" {
		t.Fatal("kind strings wrong")
	}
	if Streaming.String() != "streaming" || PrivateReuse.String() != "private-reuse" {
		t.Fatal("pattern strings wrong")
	}
}
