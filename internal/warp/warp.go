// Package warp models the instruction streams executed by the warps of a
// synthetic kernel. Real Rodinia/Parboil binaries are not available to a
// pure-Go simulator, so each kernel is described by a Profile: a sequence of
// Phases that set the instruction mix (ALU-to-memory ratio, dependency
// distance), the memory address pattern (streaming, private-working-set
// reuse, shared read-only), coalescing, and barriers. The generated streams
// are pure functions of (profile, warp id, program counter), so simulations
// are deterministic and replayable.
//
// The patterns are chosen so that a kernel's profile reproduces the resource
// pressure signature of its paper category (Section II): compute-intensive
// profiles keep warps in the ready-for-ALU state, streaming profiles saturate
// DRAM bandwidth, and private-reuse profiles hit in the L1 only while the
// aggregate working set of the resident warps fits in the cache.
package warp

import (
	"fmt"
	"math"

	"equalizer/internal/cache"
)

// Kind is the class of an instruction.
type Kind uint8

const (
	// ALU is an arithmetic instruction issued to the compute pipeline.
	ALU Kind = iota
	// SFU is a special-function instruction (longer dependency latency),
	// also issued to the compute pipeline.
	SFU
	// MEM is a load issued to the load/store pipeline; the warp then waits
	// for the data to return before its next instruction becomes ready.
	MEM
	// TEX is a load issued through the texture unit. Texture hardware
	// tolerates far more outstanding requests than the LD/ST queue, so a
	// stalled texture stream does not surface as Xmem back-pressure — the
	// effect that makes the paper's leuko-1 kernel undetectable
	// (Section V-B).
	TEX
	// BAR is a block-wide barrier.
	BAR
	// EXIT terminates the warp.
	EXIT
)

// String returns the instruction-kind mnemonic.
func (k Kind) String() string {
	switch k {
	case ALU:
		return "alu"
	case SFU:
		return "sfu"
	case MEM:
		return "mem"
	case TEX:
		return "tex"
	case BAR:
		return "bar"
	case EXIT:
		return "exit"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Instr is one decoded warp instruction.
type Instr struct {
	Kind Kind
	// Gap is the number of SM cycles after issue until the warp's next
	// instruction becomes ready (dependency distance). Only meaningful for
	// ALU/SFU; a MEM instruction's successor becomes ready when the data
	// returns.
	Gap int32
	// Addr is the (line-aligned by the consumer) byte address of a MEM
	// instruction's first line.
	Addr cache.Addr
	// ExtraLines is the number of additional cache lines the access touches
	// beyond the first (0 for a fully coalesced access). The consumer
	// derives their addresses via ExtraAddr.
	ExtraLines int32
}

// Pattern selects the address-generation behaviour of a phase.
type Pattern uint8

const (
	// Streaming walks fresh cache lines on every access: every reference
	// misses L1 and L2 and consumes DRAM bandwidth. Models bandwidth-bound
	// kernels (cfd, lbm).
	Streaming Pattern = iota
	// PrivateReuse cycles each warp over a private working set of
	// WorkingSetLines lines. It hits in L1 while the aggregate working set
	// of resident warps fits, and thrashes beyond that. Models
	// cache-sensitive kernels (bfs, kmeans, mummer).
	PrivateReuse
	// SharedReadOnly spreads accesses over a block-shared region sized to
	// the L2: mostly L1 misses that hit in L2, giving moderate latency
	// without DRAM pressure. Models unsaturated kernels.
	SharedReadOnly
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case Streaming:
		return "streaming"
	case PrivateReuse:
		return "private-reuse"
	case SharedReadOnly:
		return "shared-readonly"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Phase is a contiguous region of a warp's instruction stream with a fixed
// behaviour. Kernels with intra-invocation variation (mri-g-1, spmv) use
// several phases.
type Phase struct {
	// Insts is the number of instructions in this phase per warp
	// (including memory instructions and the optional trailing barrier).
	Insts int
	// MemEvery issues one MEM instruction every MemEvery instructions;
	// 0 disables memory accesses in the phase.
	MemEvery int
	// ALUGap is the dependency distance of ALU instructions in SM cycles.
	ALUGap int
	// SFUEvery issues an SFU instruction (with SFUGap dependency) every
	// SFUEvery non-memory slots; 0 disables.
	SFUEvery int
	// SFUGap is the dependency distance of SFU instructions.
	SFUGap int
	// Pattern selects address generation for MEM instructions.
	Pattern Pattern
	// WorkingSetLines is the per-warp private working set (PrivateReuse).
	WorkingSetLines int
	// SharedLines is the region size in lines (SharedReadOnly).
	SharedLines int
	// ExtraLines adds uncoalesced extra line accesses per MEM instruction.
	ExtraLines int
	// Texture routes the phase's memory accesses through the texture unit
	// (emitted as TEX instead of MEM).
	Texture bool
	// Barrier ends the phase with a block-wide barrier.
	Barrier bool
}

// Validate reports a descriptive error for an unusable phase.
func (p Phase) Validate() error {
	switch {
	case p.Insts <= 0:
		return fmt.Errorf("warp: phase Insts must be positive, got %d", p.Insts)
	case p.MemEvery < 0:
		return fmt.Errorf("warp: MemEvery must be non-negative, got %d", p.MemEvery)
	case p.ALUGap < 0:
		return fmt.Errorf("warp: ALUGap must be non-negative, got %d", p.ALUGap)
	case p.Pattern == PrivateReuse && p.WorkingSetLines <= 0:
		return fmt.Errorf("warp: PrivateReuse needs WorkingSetLines > 0")
	case p.Pattern == SharedReadOnly && p.SharedLines <= 0:
		return fmt.Errorf("warp: SharedReadOnly needs SharedLines > 0")
	case p.ExtraLines < 0:
		return fmt.Errorf("warp: ExtraLines must be non-negative, got %d", p.ExtraLines)
	}
	return nil
}

// Profile is the complete per-warp behaviour of one kernel invocation.
type Profile struct {
	// Phases execute in order; the warp exits after the last.
	Phases []Phase
	// LineBytes is the cache-line size used for address generation.
	LineBytes int
	// WarpIDOffset shifts every stream's global warp id; concurrent kernels
	// on disjoint SM partitions use distinct offsets so their generated
	// address spaces cannot alias.
	WarpIDOffset int
}

// Validate reports a descriptive error for an unusable profile.
func (p Profile) Validate() error {
	if len(p.Phases) == 0 {
		return fmt.Errorf("warp: profile has no phases")
	}
	if p.LineBytes <= 0 || p.LineBytes&(p.LineBytes-1) != 0 {
		return fmt.Errorf("warp: LineBytes must be a positive power of two, got %d", p.LineBytes)
	}
	for i, ph := range p.Phases {
		if err := ph.Validate(); err != nil {
			return fmt.Errorf("phase %d: %w", i, err)
		}
	}
	return nil
}

// TotalInsts returns the per-warp instruction count (excluding EXIT).
func (p Profile) TotalInsts() int {
	n := 0
	for _, ph := range p.Phases {
		n += ph.Insts
	}
	return n
}

// Address-space layout: each generator draws from a disjoint region so the
// patterns cannot alias.
const (
	streamingBase cache.Addr = 0x1_0000_0000
	privateBase   cache.Addr = 0x2_0000_0000
	sharedBase    cache.Addr = 0x3_0000_0000
	// perWarpStride is each warp's private streaming region (64 KiB = 512
	// lines, comfortably above any profile's per-warp streaming footprint).
	// The streaming/private/shared bases are 4 GiB apart, so up to 65536
	// warp ids fit without regions aliasing.
	perWarpStride  cache.Addr = 1 << 16
	perPhaseStride cache.Addr = 1 << 30
)

// Stream generates one warp's instruction sequence. The zero value is not
// usable; construct with NewStream.
type Stream struct {
	prof *Profile
	// globalID is unique across the whole grid (blockID*warpsPerBlock+lane)
	// and partitions the generated address space.
	globalID int

	pc         int
	phase      int
	phaseStart int
	memCount   int
	done       bool
}

// NewStream builds the instruction stream of the warp with the given
// grid-unique id.
func NewStream(prof *Profile, globalID int) *Stream {
	s := &Stream{}
	s.Init(prof, globalID)
	return s
}

// Init (re)initialises s in place as the stream of the warp with the given
// grid-unique id, equivalent to *s = *NewStream(prof, globalID) without the
// allocation. The SM embeds streams by value in its warp slots and reuses
// them across block launches, keeping warp-slot turnover off the heap.
func (s *Stream) Init(prof *Profile, globalID int) {
	*s = Stream{prof: prof, globalID: globalID + prof.WarpIDOffset}
}

// Done reports whether the stream has emitted EXIT.
func (s *Stream) Done() bool { return s.done }

// PC returns the number of instructions emitted so far.
func (s *Stream) PC() int { return s.pc }

// Phase returns the index of the phase the next instruction belongs to, or
// len(Phases) when the stream is exhausted.
func (s *Stream) Phase() int { return s.phase }

// Next returns the next instruction. After the final phase it returns EXIT
// forever.
func (s *Stream) Next() Instr {
	if s.done || s.phase >= len(s.prof.Phases) {
		s.done = true
		return Instr{Kind: EXIT}
	}
	phaseIdx := s.phase
	ph := &s.prof.Phases[phaseIdx]
	local := s.pc - s.phaseStart
	s.pc++
	if s.pc-s.phaseStart >= ph.Insts {
		// Advance to the next phase for subsequent calls.
		s.phaseStart += ph.Insts
		s.phase++
	}

	if ph.Barrier && local == ph.Insts-1 {
		return Instr{Kind: BAR}
	}
	if ph.MemEvery > 0 && local%ph.MemEvery == ph.MemEvery-1 {
		addr := s.genAddr(ph, phaseIdx)
		s.memCount++
		kind := MEM
		if ph.Texture {
			kind = TEX
		}
		return Instr{Kind: kind, Addr: addr, ExtraLines: int32(ph.ExtraLines)}
	}
	if ph.SFUEvery > 0 && local%ph.SFUEvery == ph.SFUEvery-1 {
		return Instr{Kind: SFU, Gap: int32(ph.SFUGap)}
	}
	return Instr{Kind: ALU, Gap: int32(ph.ALUGap)}
}

// NoMemAhead is LookAhead's distToMem when no memory access remains in the
// stream. It is far below the int64 overflow boundary so callers can add
// small offsets without checking.
const NoMemAhead = math.MaxInt64 / 4

// LookAhead reports, without advancing the stream, how far away its next
// memory access and its exit are: distToMem is the number of Next calls up
// to and including the first MEM or TEX instruction (NoMemAhead when none
// remain), and distToExit is the number of non-EXIT instructions remaining.
// An exhausted stream reports (NoMemAhead, 0). The walk mirrors Next's
// decode order exactly — in particular a phase-ending BAR overrides the
// memory slot at the same position.
//
// The SM's idle-window batch witness (SM.BatchBound) is built on these
// distances: a warp consumes at most one stream entry per cycle, so the
// earliest cycle its next memory access can issue is distToMem cycles away.
func (s *Stream) LookAhead() (distToMem, distToExit int64) {
	distToMem = NoMemAhead
	if s.done || s.phase >= len(s.prof.Phases) {
		return distToMem, 0
	}
	entries := int64(0)
	local := s.pc - s.phaseStart
	for pi := s.phase; pi < len(s.prof.Phases); pi++ {
		ph := &s.prof.Phases[pi]
		rem := int64(ph.Insts - local)
		if distToMem == NoMemAhead && ph.MemEvery > 0 {
			// First slot j >= local with j%MemEvery == MemEvery-1.
			j := local + (ph.MemEvery - 1 - local%ph.MemEvery)
			if j < ph.Insts && !(ph.Barrier && j == ph.Insts-1) {
				distToMem = entries + int64(j-local) + 1
			}
		}
		entries += rem
		local = 0
	}
	return distToMem, entries
}

func (s *Stream) genAddr(ph *Phase, phaseIdx int) cache.Addr {
	line := cache.Addr(s.prof.LineBytes)
	phaseOff := cache.Addr(phaseIdx) * perPhaseStride
	switch ph.Pattern {
	case PrivateReuse:
		// Working sets are laid out contiguously across warps so that the
		// aggregate footprint spreads uniformly over the cache sets; a
		// power-of-two per-warp stride would alias every warp's set 0.
		// The cursor advances by the full access width (1 + ExtraLines) so
		// consecutive divergent accesses tile the working set instead of
		// overlapping — the footprint stays WorkingSetLines per warp and a
		// non-fitting set truly thrashes under LRU.
		stride := 1 + ph.ExtraLines
		slot := cache.Addr((s.memCount * stride) % ph.WorkingSetLines)
		start := cache.Addr(s.globalID) * cache.Addr(ph.WorkingSetLines)
		return privateBase + phaseOff + (start+slot)*line
	case SharedReadOnly:
		// A simple stride-7 permutation decorrelates warps while staying
		// inside the shared region.
		slot := cache.Addr((s.globalID*7 + s.memCount) % ph.SharedLines)
		return sharedBase + phaseOff + slot*line
	default: // Streaming
		// The cursor advances by the full access width so divergent
		// accesses touch fresh lines instead of re-reading the previous
		// access's neighbours.
		stride := 1 + ph.ExtraLines
		return streamingBase + phaseOff + cache.Addr(s.globalID)*perWarpStride +
			cache.Addr(s.memCount*stride)*line
	}
}

// ExtraAddr derives the address of the k-th extra (uncoalesced) line of a
// MEM instruction, 1 <= k <= ExtraLines. Extra lines are adjacent to the
// base line, so a divergent access with E extras has a footprint of
// WorkingSetLines+E contiguous lines per warp — the locality structure of
// irregular-but-clustered accesses (graph frontiers, tree walks).
func ExtraAddr(base cache.Addr, k int, lineBytes int) cache.Addr {
	return base + cache.Addr(k*lineBytes)
}
