package invariant

import (
	"strings"
	"testing"
)

// TestCheckf exercises both build modes: under eqdebug a false condition
// must panic with the formatted message, in release builds Checkf must be
// silent either way.
func TestCheckf(t *testing.T) {
	Checkf(true, "never fires %d", 1)

	var recovered any
	func() {
		defer func() { recovered = recover() }()
		Checkf(false, "census leak: %d != %d", 3, 4)
	}()
	if Enabled {
		msg, ok := recovered.(string)
		if !ok {
			t.Fatalf("Checkf(false) recovered %v (%T), want string panic", recovered, recovered)
		}
		if !strings.Contains(msg, "invariant violated") || !strings.Contains(msg, "3 != 4") {
			t.Fatalf("panic message %q missing prefix or formatted args", msg)
		}
	} else if recovered != nil {
		t.Fatalf("Checkf(false) panicked in release mode: %v", recovered)
	}
}
