// Package invariant is the build-tag-gated assertion layer for the
// simulator's conservation laws. Under the `eqdebug` build tag, Enabled is
// the constant true and Checkf panics on a violated condition; in default
// builds Enabled is the constant false and Checkf is an empty function, so
//
//	if invariant.Enabled {
//		invariant.Checkf(cond, "...", args...)
//	}
//
// compiles to nothing: the constant-false branch is removed by the
// compiler, the call never happens, and the arguments are never evaluated.
// That guard is the required idiom — a bare Checkf call would still
// evaluate (and possibly allocate) its arguments in release builds.
//
// The checks themselves live next to the state they verify (internal/sm,
// internal/gpu, internal/core); this package only supplies the switch and
// the panic. Run them with:
//
//	go test -tags eqdebug ./internal/...
package invariant
