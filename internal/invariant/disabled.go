//go:build !eqdebug

package invariant

// Enabled reports whether invariant checking is compiled in.
const Enabled = false

// Checkf is a no-op in release builds. Call sites must still guard with
// `if invariant.Enabled` so argument evaluation is compiled out too.
func Checkf(cond bool, format string, args ...any) {}
