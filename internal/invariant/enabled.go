//go:build eqdebug

package invariant

import "fmt"

// Enabled reports whether invariant checking is compiled in.
const Enabled = true

// Checkf panics with a formatted message when cond is false. A violated
// invariant means simulator state has already diverged from the model, so
// continuing would only move the crash further from the cause.
func Checkf(cond bool, format string, args ...any) {
	if cond {
		return
	}
	panic("invariant violated: " + fmt.Sprintf(format, args...))
}
