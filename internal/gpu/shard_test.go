package gpu_test

import (
	"testing"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/policy"
	"equalizer/internal/power"
	"equalizer/internal/telemetry"
)

// The shard engine's contract is the same byte-identity the fast-forward
// engine is held to: at any shard count, a run must produce the same Result,
// the same telemetry event stream (Chrome trace bytes included) and the same
// per-epoch Equalizer decisions as the sequential loop. These tests sweep
// shard counts against a shards=1 baseline under both cycle engines, reusing
// the capture/compare harness from fastforward_test.go. The CI race job runs
// this file under -race, which also proves the phase barrier publishes every
// worker-side SM mutation.

// shardCounts is the differential sweep axis: the smallest parallel split,
// an uneven split of 15 SMs, and the one-SM-per-worker extreme.
func shardCounts(numSMs int) []int { return []int{2, 4, numSMs} }

// TestShardedByteIdentical sweeps shard counts × cycle engines under the
// Equalizer runtime on a compute-bound and a memory-bound kernel.
func TestShardedByteIdentical(t *testing.T) {
	numSMs := config.Default().NumSMs
	for _, name := range []string{"cutcp", "lbm"} {
		for _, ff := range []bool{true, false} {
			name, ff := name, ff
			suffix := "legacy"
			if ff {
				suffix = "fast"
			}
			t.Run(name+"/"+suffix, func(t *testing.T) {
				t.Parallel()
				k, err := kernels.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				k.GridBlocks = 30
				mk := func() gpu.Policy {
					e := core.New(core.EnergyMode)
					e.Record = true
					return e
				}
				tasks := []gpu.Task{{Kernel: k}}
				seq := runCapture(t, tasks, 1, mk, telemetry.MaskSpans, ff, 1)
				for _, shards := range shardCounts(numSMs) {
					sharded := runCapture(t, tasks, 1, mk, telemetry.MaskSpans, ff, shards)
					compareCaptures(t, sharded, seq)
					if t.Failed() {
						t.Fatalf("sharded run (shards=%d) diverged from sequential", shards)
					}
				}
			})
		}
	}
}

// TestShardedByteIdenticalCensusMask compares sharded runs that record the
// per-cycle stall census and warp issues — the highest-volume telemetry,
// where per-SM stage buffering must reproduce the sequential loop's exact
// SM-order interleaving, ring wrap and drop accounting included.
func TestShardedByteIdenticalCensusMask(t *testing.T) {
	mask := telemetry.MaskSpans | telemetry.MaskOf(telemetry.KindStallCensus, telemetry.KindWarpIssue)
	k, err := kernels.ByName("cutcp")
	if err != nil {
		t.Fatal(err)
	}
	k.GridBlocks = 30
	mk := func() gpu.Policy { return core.New(core.PerformanceMode) }
	tasks := []gpu.Task{{Kernel: k}}
	for _, ff := range []bool{true, false} {
		seq := runCapture(t, tasks, 1, mk, mask, ff, 1)
		for _, shards := range shardCounts(config.Default().NumSMs) {
			sharded := runCapture(t, tasks, 1, mk, mask, ff, shards)
			compareCaptures(t, sharded, seq)
			if t.Failed() {
				t.Fatalf("census-mask sharded run (shards=%d, ff=%v) diverged", shards, ff)
			}
		}
	}
}

// TestShardedByteIdenticalConcurrent compares a concurrent two-kernel run:
// kernel partitions and shard ranges split the SMs along different
// boundaries, so a shard may hold SMs of both partitions.
func TestShardedByteIdenticalConcurrent(t *testing.T) {
	kc, err := kernels.ByName("cutcp")
	if err != nil {
		t.Fatal(err)
	}
	km, err := kernels.ByName("cfd-1")
	if err != nil {
		t.Fatal(err)
	}
	kc.GridBlocks, km.GridBlocks = 24, 24
	tasks := []gpu.Task{{Kernel: kc}, {Kernel: km}}
	mk := func() gpu.Policy {
		e := core.New(core.EnergyMode)
		e.Record = true
		return e
	}
	seq := runCapture(t, tasks, 1, mk, telemetry.MaskSpans, true, 1)
	for _, shards := range shardCounts(config.Default().NumSMs) {
		sharded := runCapture(t, tasks, 1, mk, telemetry.MaskSpans, true, shards)
		compareCaptures(t, sharded, seq)
		if t.Failed() {
			t.Fatalf("concurrent sharded run (shards=%d) diverged", shards)
		}
	}
}

// TestShardedCCWSFallsBackSequential verifies the safety valve: CCWS installs
// per-SM observation hooks whose locality scoring shares policy state, so a
// shard request must quietly fall back to the sequential loop — and still
// produce identical output.
func TestShardedCCWSFallsBackSequential(t *testing.T) {
	k, err := kernels.ByName("kmn")
	if err != nil {
		t.Fatal(err)
	}
	k.GridBlocks = 30
	mk := func() gpu.Policy { return policy.NewCCWS() }
	tasks := []gpu.Task{{Kernel: k}}
	seq := runCapture(t, tasks, 1, mk, telemetry.MaskSpans, true, 1)
	sharded := runCapture(t, tasks, 1, mk, telemetry.MaskSpans, true, 4)
	compareCaptures(t, sharded, seq)
}

// TestShardStatsAccumulate verifies the scheduling counters: a sharded run
// records barrier rounds and step/fast-forward cycles, and the CCWS fallback
// is counted.
func TestShardStatsAccumulate(t *testing.T) {
	k, err := kernels.ByName("cutcp")
	if err != nil {
		t.Fatal(err)
	}
	k.GridBlocks = 30

	m := newTestMachine(t, nil)
	m.SetSMShards(4)
	if got := m.SMShards(); got != 4 {
		t.Fatalf("SMShards = %d, want 4", got)
	}
	res, err := m.RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	ss := m.ShardStats()
	if ss.Shards != 4 {
		t.Errorf("ShardStats.Shards = %d, want 4", ss.Shards)
	}
	if ss.Barriers == 0 {
		t.Error("sharded run recorded no barrier rounds")
	}
	total := int64(ss.StepCycles + ss.FastForwardCycles)
	if want := res.SMCycles * int64(m.NumSMs()); total != want {
		t.Errorf("shard cycles %d != SMCycles*NumSMs %d", total, want)
	}
	if ss.SequentialRuns != 0 {
		t.Errorf("unexpected sequential fallback: %d", ss.SequentialRuns)
	}

	// CCWS forces the fallback and counts it.
	mc := newTestMachine(t, policy.NewCCWS())
	mc.SetSMShards(4)
	if _, err := mc.RunKernel(k, 0); err != nil {
		t.Fatal(err)
	}
	cs := mc.ShardStats()
	if cs.Shards != 1 {
		t.Errorf("CCWS run effective shards = %d, want 1", cs.Shards)
	}
	if cs.SequentialRuns != 1 {
		t.Errorf("CCWS run SequentialRuns = %d, want 1", cs.SequentialRuns)
	}
	if cs.Barriers != 0 {
		t.Errorf("sequential fallback still crossed %d barriers", cs.Barriers)
	}
}

// TestAutoShards pins the oversubscription contract: a saturated worker pool
// gets sequential machines, a lone simulation gets the host (capped at the
// SM count), and degenerate inputs clamp to 1.
func TestAutoShards(t *testing.T) {
	for _, tc := range []struct {
		parallelism, numSMs, gomaxprocs, want int
	}{
		{1, 15, 8, 8},
		{1, 15, 32, 15},
		{8, 15, 8, 1},
		{4, 15, 8, 2},
		{3, 15, 8, 2},
		{16, 15, 8, 1},
		{1, 1, 8, 1},
	} {
		if got := autoShardsFor(tc.parallelism, tc.numSMs, tc.gomaxprocs); got != tc.want {
			t.Errorf("AutoShards(parallelism=%d, numSMs=%d) at GOMAXPROCS=%d = %d, want %d",
				tc.parallelism, tc.numSMs, tc.gomaxprocs, got, tc.want)
		}
	}
}

// autoShardsFor mirrors gpu.AutoShards with an explicit core count so the
// table is host-independent.
func autoShardsFor(parallelism, numSMs, cores int) int {
	if parallelism < 1 {
		parallelism = cores
	}
	shards := cores / parallelism
	if shards > numSMs {
		shards = numSMs
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// newTestMachine builds a default machine with pol.
func newTestMachine(t *testing.T, pol gpu.Policy) *gpu.Machine {
	t.Helper()
	m, err := gpu.New(config.Default(), power.Default(), pol)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
