package gpu_test

import (
	"testing"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/policy"
	"equalizer/internal/power"
	"equalizer/internal/telemetry"
)

// The shard engine's contract is the same byte-identity the fast-forward
// engine is held to: at any shard count, a run must produce the same Result,
// the same telemetry event stream (Chrome trace bytes included) and the same
// per-epoch Equalizer decisions as the sequential loop. These tests sweep
// shard counts against a shards=1 baseline under both cycle engines, reusing
// the capture/compare harness from fastforward_test.go. The CI race job runs
// this file under -race, which also proves the phase barrier publishes every
// worker-side SM mutation.

// shardCounts is the differential sweep axis: the smallest parallel split,
// an uneven split of 15 SMs, and the one-SM-per-worker extreme.
func shardCounts(numSMs int) []int { return []int{2, 4, numSMs} }

// TestShardedByteIdentical sweeps shard counts × cycle engines under the
// Equalizer runtime on a compute-bound and a memory-bound kernel.
func TestShardedByteIdentical(t *testing.T) {
	numSMs := config.Default().NumSMs
	for _, name := range []string{"cutcp", "lbm"} {
		for _, ff := range []bool{true, false} {
			name, ff := name, ff
			suffix := "legacy"
			if ff {
				suffix = "fast"
			}
			t.Run(name+"/"+suffix, func(t *testing.T) {
				t.Parallel()
				k, err := kernels.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				k.GridBlocks = 30
				mk := func() gpu.Policy {
					e := core.New(core.EnergyMode)
					e.Record = true
					return e
				}
				tasks := []gpu.Task{{Kernel: k}}
				seq := runCapture(t, tasks, 1, mk, telemetry.MaskSpans, ff, 1)
				for _, shards := range shardCounts(numSMs) {
					sharded := runCapture(t, tasks, 1, mk, telemetry.MaskSpans, ff, shards)
					compareCaptures(t, sharded, seq)
					if t.Failed() {
						t.Fatalf("sharded run (shards=%d) diverged from sequential", shards)
					}
				}
			})
		}
	}
}

// TestShardedByteIdenticalCensusMask compares sharded runs that record the
// per-cycle stall census and warp issues — the highest-volume telemetry,
// where per-SM stage buffering must reproduce the sequential loop's exact
// SM-order interleaving, ring wrap and drop accounting included.
func TestShardedByteIdenticalCensusMask(t *testing.T) {
	mask := telemetry.MaskSpans | telemetry.MaskOf(telemetry.KindStallCensus, telemetry.KindWarpIssue)
	k, err := kernels.ByName("cutcp")
	if err != nil {
		t.Fatal(err)
	}
	k.GridBlocks = 30
	mk := func() gpu.Policy { return core.New(core.PerformanceMode) }
	tasks := []gpu.Task{{Kernel: k}}
	for _, ff := range []bool{true, false} {
		seq := runCapture(t, tasks, 1, mk, mask, ff, 1)
		for _, shards := range shardCounts(config.Default().NumSMs) {
			sharded := runCapture(t, tasks, 1, mk, mask, ff, shards)
			compareCaptures(t, sharded, seq)
			if t.Failed() {
				t.Fatalf("census-mask sharded run (shards=%d, ff=%v) diverged", shards, ff)
			}
		}
	}
}

// TestShardedByteIdenticalConcurrent compares a concurrent two-kernel run:
// kernel partitions and shard ranges split the SMs along different
// boundaries, so a shard may hold SMs of both partitions.
func TestShardedByteIdenticalConcurrent(t *testing.T) {
	kc, err := kernels.ByName("cutcp")
	if err != nil {
		t.Fatal(err)
	}
	km, err := kernels.ByName("cfd-1")
	if err != nil {
		t.Fatal(err)
	}
	kc.GridBlocks, km.GridBlocks = 24, 24
	tasks := []gpu.Task{{Kernel: kc}, {Kernel: km}}
	mk := func() gpu.Policy {
		e := core.New(core.EnergyMode)
		e.Record = true
		return e
	}
	seq := runCapture(t, tasks, 1, mk, telemetry.MaskSpans, true, 1)
	for _, shards := range shardCounts(config.Default().NumSMs) {
		sharded := runCapture(t, tasks, 1, mk, telemetry.MaskSpans, true, shards)
		compareCaptures(t, sharded, seq)
		if t.Failed() {
			t.Fatalf("concurrent sharded run (shards=%d) diverged", shards)
		}
	}
}

// TestShardedCCWSFallsBackSequential verifies the safety valve: CCWS installs
// per-SM observation hooks whose locality scoring shares policy state, so a
// shard request must quietly fall back to the sequential loop — and still
// produce identical output.
func TestShardedCCWSFallsBackSequential(t *testing.T) {
	k, err := kernels.ByName("kmn")
	if err != nil {
		t.Fatal(err)
	}
	k.GridBlocks = 30
	mk := func() gpu.Policy { return policy.NewCCWS() }
	tasks := []gpu.Task{{Kernel: k}}
	seq := runCapture(t, tasks, 1, mk, telemetry.MaskSpans, true, 1)
	sharded := runCapture(t, tasks, 1, mk, telemetry.MaskSpans, true, 4)
	compareCaptures(t, sharded, seq)
}

// TestShardStatsAccumulate verifies the scheduling counters: a sharded run
// records barrier rounds and step/fast-forward cycles, and the CCWS fallback
// is counted.
func TestShardStatsAccumulate(t *testing.T) {
	k, err := kernels.ByName("cutcp")
	if err != nil {
		t.Fatal(err)
	}
	k.GridBlocks = 30

	m := newTestMachine(t, nil)
	m.SetSMShards(4)
	if got := m.SMShards(); got != 4 {
		t.Fatalf("SMShards = %d, want 4", got)
	}
	res, err := m.RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	ss := m.ShardStats()
	if ss.Shards != 4 {
		t.Errorf("ShardStats.Shards = %d, want 4", ss.Shards)
	}
	if ss.Barriers == 0 {
		t.Error("sharded run recorded no barrier rounds")
	}
	total := int64(ss.StepCycles + ss.FastForwardCycles)
	if want := res.SMCycles * int64(m.NumSMs()); total != want {
		t.Errorf("shard cycles %d != SMCycles*NumSMs %d", total, want)
	}
	if ss.SequentialRuns != 0 {
		t.Errorf("unexpected sequential fallback: %d", ss.SequentialRuns)
	}

	// CCWS forces the fallback and counts it.
	mc := newTestMachine(t, policy.NewCCWS())
	mc.SetSMShards(4)
	if _, err := mc.RunKernel(k, 0); err != nil {
		t.Fatal(err)
	}
	cs := mc.ShardStats()
	if cs.Shards != 1 {
		t.Errorf("CCWS run effective shards = %d, want 1", cs.Shards)
	}
	if cs.SequentialRuns != 1 {
		t.Errorf("CCWS run SequentialRuns = %d, want 1", cs.SequentialRuns)
	}
	if cs.Barriers != 0 {
		t.Errorf("sequential fallback still crossed %d barriers", cs.Barriers)
	}
}

// TestAutoShards pins the oversubscription contract: a saturated worker pool
// gets sequential machines, a lone simulation gets the host (capped at the
// SM count), and degenerate inputs clamp to 1.
func TestAutoShards(t *testing.T) {
	for _, tc := range []struct {
		parallelism, numSMs, gomaxprocs, want int
	}{
		{1, 15, 8, 8},
		{1, 15, 32, 15},
		{8, 15, 8, 1},
		{4, 15, 8, 2},
		{3, 15, 8, 2},
		{16, 15, 8, 1},
		{1, 1, 8, 1},
	} {
		if got := gpu.AutoShardsAt(tc.gomaxprocs, tc.parallelism, tc.numSMs); got != tc.want {
			t.Errorf("AutoShardsAt(procs=%d, parallelism=%d, numSMs=%d) = %d, want %d",
				tc.gomaxprocs, tc.parallelism, tc.numSMs, got, tc.want)
		}
	}
}

// TestShardedBatchingMatrix sweeps the new execution modes against the
// ground-truth per-cycle sequential loop: shard counts × idle-window cycle
// batching on/off × memory-domain sharding on/off, all required to be
// byte-identical. cutcp exercises mixed compute/memory phases; lavaMD has no
// memory instructions at all, so batching windows reach the policy's full
// SampleInterval depth; bfs-2's shared-read-only misses merge many waiting
// SMs onto each line fill, driving endpoint work past the memory-domain
// dispatch threshold.
func TestShardedBatchingMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep over the mode matrix")
	}
	numSMs := config.Default().NumSMs
	for _, name := range []string{"cutcp", "lavaMD", "bfs-2"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			k, err := kernels.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			k.GridBlocks = 30
			mk := func() gpu.Policy {
				e := core.New(core.EnergyMode)
				e.Record = true
				return e
			}
			tasks := []gpu.Task{{Kernel: k}}
			seq := runCaptureKnobs(t, tasks, 1, mk, telemetry.MaskSpans, false, 1, false, false)
			for _, shards := range []int{1, 2, 4, numSMs} {
				for _, batching := range []bool{false, true} {
					for _, memSharding := range []bool{false, true} {
						got := runCaptureKnobs(t, tasks, 1, mk, telemetry.MaskSpans,
							true, shards, batching, memSharding)
						compareCaptures(t, got, seq)
						if t.Failed() {
							t.Fatalf("mode (shards=%d, batching=%v, memSharding=%v) diverged from sequential",
								shards, batching, memSharding)
						}
					}
				}
			}
		})
	}
}

// TestBatchingReducesBarrierRounds pins the tentpole's payoff on a sharded
// compute-bound run: with idle-window batching, the engine crosses fewer
// barrier rounds than it steps SM cycles (the per-cycle protocol costs two
// rounds per cycle), and the batched cycles are accounted inside StepCycles.
func TestBatchingReducesBarrierRounds(t *testing.T) {
	k, err := kernels.ByName("lavaMD")
	if err != nil {
		t.Fatal(err)
	}
	k.GridBlocks = 30
	m := newTestMachine(t, core.New(core.EnergyMode))
	m.SetSMShards(4)
	res, err := m.RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	ss := m.ShardStats()
	if ss.BatchedCycles == 0 {
		t.Fatal("compute-bound sharded run batched no cycles")
	}
	if ss.BatchedCycles > ss.StepCycles {
		t.Errorf("BatchedCycles %d exceeds StepCycles %d (batched cycles must be counted inside StepCycles)",
			ss.BatchedCycles, ss.StepCycles)
	}
	if ss.Barriers >= uint64(res.SMCycles) {
		t.Errorf("barrier rounds %d not below SM cycles %d: batching bought nothing",
			ss.Barriers, res.SMCycles)
	}
	if total := int64(ss.StepCycles + ss.FastForwardCycles); total != res.SMCycles*int64(m.NumSMs()) {
		t.Errorf("shard cycles %d != SMCycles*NumSMs %d", total, res.SMCycles*int64(m.NumSMs()))
	}
}

// TestMemShardingEngages verifies the memory-domain shard path actually runs
// on a sharded kernel with fan-out-heavy fills — bfs-2's shared-read-only
// misses merge many waiting SMs onto each line (MemRounds > 0) — and stays
// disabled both behind the escape hatch and when the telemetry mask makes
// endpoint delivery emission-bearing.
func TestMemShardingEngages(t *testing.T) {
	k, err := kernels.ByName("bfs-2")
	if err != nil {
		t.Fatal(err)
	}
	k.GridBlocks = 30
	run := func(memSharding bool, mask telemetry.Mask) gpu.ShardStats {
		m := newTestMachine(t, nil)
		m.SetSMShards(4)
		m.SetMemSharding(memSharding)
		m.AttachTelemetry(telemetry.NewBus(1<<12, mask))
		if _, err := m.RunKernel(k, 0); err != nil {
			t.Fatal(err)
		}
		return m.ShardStats()
	}
	if ss := run(true, telemetry.MaskSpans); ss.MemRounds == 0 {
		t.Error("memory-heavy sharded run dispatched no memory rounds")
	}
	if ss := run(false, telemetry.MaskSpans); ss.MemRounds != 0 {
		t.Errorf("escape hatch off still dispatched %d memory rounds", ss.MemRounds)
	}
	evictMask := telemetry.MaskSpans | telemetry.MaskOf(telemetry.KindL1Evict)
	if ss := run(true, evictMask); ss.MemRounds != 0 {
		t.Errorf("emission-bearing mask still dispatched %d memory rounds", ss.MemRounds)
	}
}

// newTestMachine builds a default machine with pol.
func newTestMachine(t *testing.T, pol gpu.Policy) *gpu.Machine {
	t.Helper()
	m, err := gpu.New(config.Default(), power.Default(), pol)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
