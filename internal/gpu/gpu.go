// Package gpu composes the full simulated machine: 15 SMs on one clock
// domain; the interconnect, shared L2, memory controller and DRAM on a
// second, independently scaled domain; a global work distribution engine
// (GWDE) that hands thread blocks to SMs; and the power meter. A pluggable
// Policy observes the machine every SM cycle and may retune the number of
// resident thread blocks and the two VF domains — Equalizer, DynCTA, CCWS
// and the static operating points are all implemented as Policies.
package gpu

import (
	"fmt"
	"math"

	"equalizer/internal/cache"
	"equalizer/internal/clock"
	"equalizer/internal/config"
	"equalizer/internal/dram"
	"equalizer/internal/events"
	"equalizer/internal/icnt"
	"equalizer/internal/invariant"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
	"equalizer/internal/sm"
	"equalizer/internal/telemetry"
	"equalizer/internal/warp"
)

// memController abstracts the two DRAM models (flat bandwidth gate and
// banked FR-FCFS); both live in package dram.
type memController interface {
	CanAccept() bool
	Enqueue(line cache.Addr) bool
	Step(now int64) []cache.Addr
	// SkipIdle advances statistics over n idle cycles first..first+n-1 in
	// closed form; callers guarantee Drained.
	SkipIdle(first, n int64)
	Drained() bool
	Stats() dram.Stats
	SetProbe(b *telemetry.Bus, now func() int64)
}

// FastForwardAware is the policy extension the fast-forward cycle engine
// needs: a policy that implements it declares which OnSMCycle calls are pure
// accumulation (and can be replayed arithmetically over a quiescent span) and
// which mutate the machine (and force a real cycle). Policies without it
// disable fast-forwarding entirely.
type FastForwardAware interface {
	// NextActiveCycle returns the smallest cycle index c > smCycle at which
	// OnSMCycle does more than accumulate constant observations — e.g. an
	// epoch boundary that retunes the machine. Cycles in (smCycle, c) may be
	// fast-forwarded; cycle c always runs for real.
	NextActiveCycle(smCycle int64) int64
	// AccumulateSpan replays the accumulation OnSMCycle would have performed
	// over the fast-forwarded cycles fromCycle..toCycle inclusive. The
	// machine's observable state (census snapshots in particular) is already
	// at its constant span value when this is called.
	AccumulateSpan(m *Machine, fromCycle, toCycle int64)
}

// BatchAware is the policy extension the idle-window batch engine needs on
// top of FastForwardAware. Unlike a fast-forward span, the SMs keep
// executing real cycles inside a batched window, so the engine cannot
// replay the policy's accumulation arithmetically — instead it calls
// OnSMCycle once, at the window's last cycle, and needs the policy's
// promise that all the skipped calls were no-ops: OnSMCycle(m, _, c) must
// be a pure no-op for every cycle c with smCycle < c < NextSampleCycle(smCycle).
// The window is capped so it ends at or before NextSampleCycle, where the
// one real call observes machine state identical to the sequential loop's
// (every batched cycle is a real Step).
type BatchAware interface {
	FastForwardAware
	// NextSampleCycle returns the smallest cycle index c > smCycle at which
	// OnSMCycle does anything at all (sampling included, not just
	// machine-mutating epochs — contrast NextActiveCycle).
	NextSampleCycle(smCycle int64) int64
}

// newMemController selects the DRAM model from the configuration.
func newMemController(cfg config.GPU) memController {
	if cfg.DRAMBanks > 0 {
		return dram.MustNewBanked(dram.BankedConfig{
			Banks:           cfg.DRAMBanks,
			RowBytes:        cfg.DRAMRowBytes,
			QueueDepth:      cfg.DRAMQueueDepth,
			RowHitInterval:  cfg.DRAMServiceInterval,
			RowMissInterval: cfg.DRAMRowMissInterval,
			Latency:         cfg.DRAMLatency,
		})
	}
	return dram.MustNew(dram.Config{
		QueueDepth:      cfg.DRAMQueueDepth,
		ServiceInterval: cfg.DRAMServiceInterval,
		Latency:         cfg.DRAMLatency,
	})
}

// Policy tunes the machine at runtime. Implementations must be deterministic.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Reset prepares the policy for a new kernel invocation; the machine is
	// already configured with the kernel's occupancy limit.
	Reset(m *Machine, k kernels.Kernel)
	// OnSMCycle runs after every SM-domain cycle; smCycle counts cycles
	// within the current invocation starting at 1.
	OnSMCycle(m *Machine, now clock.Time, smCycle int64)
}

// Result summarises one kernel invocation.
type Result struct {
	// Kernel and Invocation identify the run.
	Kernel     string
	Invocation int
	// SMCycles is the number of SM-domain cycles elapsed.
	SMCycles int64
	// TimePS is wall time elapsed.
	TimePS int64
	// Energy is the decomposed energy of the invocation.
	Energy power.Breakdown
	// IPC is aggregate issued warp instructions per SM-cycle per SM.
	IPC float64
	// L1HitRate is the demand hit rate across all SMs.
	L1HitRate float64
	// DRAMUtil is the DRAM bandwidth utilisation.
	DRAMUtil float64
	// Residency is wall time spent at each (domain, level).
	Residency Residency
}

// Residency records VF-state wall time for Figure 9.
type Residency struct {
	SM  [3]int64
	Mem [3]int64
}

// EnergyJ returns total energy in joules.
func (r Result) EnergyJ() float64 { return r.Energy.Total() }

// Machine is the simulated GPU. A single Machine is not safe for concurrent
// use, but distinct Machines are fully independent: the exp harness runs
// parallel sweeps by building one machine per run (see exp.Harness).
type Machine struct {
	cfg  config.GPU
	pcfg power.Config

	smDomain  *clock.Domain
	memDomain *clock.Domain

	sms  []*sm.SM
	l2   *cache.Cache
	net  *icnt.Network
	dram memController
	// l2Waiters maps a pending L2 line to the SM requests awaiting it;
	// l2WaiterPool recycles the value slices across misses.
	l2Waiters    map[cache.Addr][]icnt.Request
	l2WaiterPool [][]icnt.Request
	// l2Replies delays L2 hit responses by the L2 latency.
	l2Replies events.Queue[icnt.Request]

	// drainFn and deliverFn are the interconnect-drain and reply-delivery
	// callbacks, allocated once instead of per memory cycle; hitDelayPS and
	// lastMemNowPS carry the current cycle's times into them.
	drainFn    func(r icnt.Request) bool
	deliverFn  func(r icnt.Request)
	hitDelayPS int64

	meter *power.Meter

	policy Policy

	// fastForward enables the quiescent-cycle bulk engine (and the SMs'
	// bitset schedulers); the -fastforward=false escape hatch restores the
	// strictly per-cycle legacy loop.
	fastForward bool
	// batching enables idle-window cycle batching: when the memory domain is
	// provably idle for the next k SM cycles (every SM's BatchBound covers
	// them), the loop steps all k cycles in one engine round. Requires
	// fastForward; SetCycleBatching is the differential-test escape hatch.
	batching bool
	// memSharding routes the per-SM endpoint half of memory-domain cycles
	// (L1 fills/wakes, outbox port pushes) through the shard workers when an
	// engine is active and the telemetry mask proves the work emission-free.
	memSharding bool
	// memShardable caches the per-run telemetry-mask check for memSharding;
	// memDeliveries stages one memory cycle's deliveries in sequential order
	// and replyStageFn is the once-allocated PopReady callback appending to
	// it.
	memShardable  bool
	memDeliveries []icnt.Request
	replyStageFn  func(r icnt.Request)

	// Intra-run SM sharding. smShards is the requested worker count
	// (<=1 = sequential); engine is non-nil only while a sharded invocation
	// is in flight; stages are the per-SM telemetry stages the engine swaps
	// in for the run (cached across runs, rebuilt when the bus changes);
	// shardStats accumulates the engine's scheduling counters over the
	// machine's lifetime. See shard.go.
	smShards   int
	engine     *shardEngine
	stages     []*telemetry.Bus
	shardStats ShardStats

	// Kernel launch state: one partition per concurrently running kernel
	// (a single partition spanning every SM in the common case).
	parts []partition

	// Power attribution state.
	lastSMLevel    config.VFLevel
	lastMemLevel   config.VFLevel
	lastSMFlushPS  int64
	lastMemFlushPS int64
	activeSMTimePS int64
	seenSM         power.SMTotals
	seenMem        power.MemTotals
	memCycle       int64

	// Telemetry: bus is nil (free) until AttachTelemetry; lastMemNowPS
	// timestamps memory-partition probes and vfRequestPS records in-flight
	// regulator requests so VF-shift events can carry switching latency.
	bus          *telemetry.Bus
	lastMemNowPS int64
	vfRequestPS  [2]int64
	vfRequested  [2]bool
}

// New builds a machine. The policy may be nil (pure baseline, no tuning).
func New(cfg config.GPU, pcfg power.Config, policy Policy) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := pcfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:       cfg,
		pcfg:      pcfg,
		smDomain:  clock.NewDomain("sm", cfg.SMClockPS, cfg.Modulation),
		memDomain: clock.NewDomain("mem", cfg.MemClockPS, cfg.Modulation),
		l2:        cache.MustNew(cfg.L2),
		net: icnt.MustNew(icnt.Config{
			NumSMs:        cfg.NumSMs,
			QueueDepth:    cfg.ICNTQueueDepth,
			DrainPerCycle: 10,
		}),
		dram:         newMemController(cfg),
		l2Waiters:    make(map[cache.Addr][]icnt.Request),
		meter:        power.NewMeter(pcfg),
		policy:       policy,
		fastForward:  true,
		batching:     true,
		memSharding:  true,
		lastSMLevel:  config.VFNormal,
		lastMemLevel: config.VFNormal,
	}
	for i := 0; i < cfg.NumSMs; i++ {
		m.sms = append(m.sms, sm.New(cfg, i))
	}
	m.drainFn = m.drainRequest
	m.deliverFn = func(r icnt.Request) {
		m.sms[r.SM].DeliverLine(r.Line, clock.Time(m.lastMemNowPS))
	}
	m.replyStageFn = m.stageReply
	return m, nil
}

// MustNew is New but panics on error.
func MustNew(cfg config.GPU, pcfg power.Config, policy Policy) *Machine {
	m, err := New(cfg, pcfg, policy)
	if err != nil {
		panic(err)
	}
	return m
}

// AttachTelemetry wires a probe bus through every layer of the machine: the
// SMs (warp issue, stall census, block residency, CTA pausing) and their L1
// caches, the shared L2, the interconnect, the memory controller, and the
// machine itself (kernel boundaries, VF transitions). A nil bus detaches
// everything; probes on a detached machine cost nothing.
func (m *Machine) AttachTelemetry(b *telemetry.Bus) {
	m.bus = b
	for _, s := range m.sms {
		s.SetProbe(b)
	}
	if b == nil {
		m.l2.SetProbe(nil, 0, 0, 0, nil)
		m.net.SetProbe(nil, nil)
		m.dram.SetProbe(nil, nil)
		return
	}
	memNow := func() int64 { return m.lastMemNowPS }
	m.l2.SetProbe(b, telemetry.KindL2Access, telemetry.KindL2Evict, -1, memNow)
	m.net.SetProbe(b, memNow)
	m.dram.SetProbe(b, memNow)
}

// Bus returns the attached telemetry bus (nil when detached). Policies use
// it to emit their own events; Emit on a nil bus is a no-op.
func (m *Machine) Bus() *telemetry.Bus { return m.bus }

// SetFastForward enables or disables the fast-path cycle engine: the
// quiescent-cycle bulk advance and, on every SM, the bitset issue path. Both
// are byte-identical to the legacy loop at every observable point; the
// escape hatch exists for debugging and differential testing. Call between
// runs, not mid-invocation.
func (m *Machine) SetFastForward(enabled bool) {
	m.fastForward = enabled
	for _, s := range m.sms {
		s.SetFastIssue(enabled)
	}
}

// FastForwardEnabled reports whether the fast-path engine is active.
func (m *Machine) FastForwardEnabled() bool { return m.fastForward }

// SetCycleBatching enables or disables idle-window cycle batching (default
// on). Batching is byte-identical to per-cycle stepping — it only groups
// real Step calls whose interleaved coordinator work is provably no-op —
// and requires fast-forward mode; the setter exists for differential tests
// and debugging. Call between runs, not mid-invocation.
func (m *Machine) SetCycleBatching(enabled bool) { m.batching = enabled }

// CycleBatchingEnabled reports whether idle-window batching is active
// (it additionally requires fast-forward mode and a BatchAware or nil
// policy at run time).
func (m *Machine) CycleBatchingEnabled() bool { return m.batching }

// SetMemSharding enables or disables sharded memory-domain endpoint
// stepping (default on). It only applies to sharded runs whose telemetry
// mask excludes the kinds the endpoint work could emit, and is
// byte-identical to the sequential memory step; the setter exists for
// differential tests and debugging. Call between runs, not mid-invocation.
func (m *Machine) SetMemSharding(enabled bool) { m.memSharding = enabled }

// MemShardingEnabled reports whether sharded memory-domain stepping is
// requested.
func (m *Machine) MemShardingEnabled() bool { return m.memSharding }

// SetSMShards sets the intra-run worker count: n > 1 partitions the SMs into
// n contiguous shards stepped by concurrent workers under a phase barrier,
// with results byte-identical to the sequential loop at any count (see
// shard.go). Values are clamped to [1, NumSMs]; use AutoShards to derive a
// count from the host. Call between runs, not mid-invocation. Runs whose
// policy installs per-SM observation hooks (CCWS) fall back to sequential
// stepping regardless of the setting.
func (m *Machine) SetSMShards(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(m.sms) {
		n = len(m.sms)
	}
	m.smShards = n
}

// SMShards returns the configured intra-run worker count (1 = sequential).
func (m *Machine) SMShards() int {
	if m.smShards < 1 {
		return 1
	}
	return m.smShards
}

// ShardStats returns the shard engine's accumulated scheduling counters.
// Shards reports the effective worker count of the most recent run.
func (m *Machine) ShardStats() ShardStats { return m.shardStats }

// ensureStages builds (or rebuilds, after an AttachTelemetry change) the
// per-SM telemetry stages the shard engine swaps in during a sharded run.
// With a nil bus every stage is nil, which every bus method tolerates.
func (m *Machine) ensureStages() {
	if len(m.stages) == len(m.sms) && m.stages[0].Parent() == m.bus {
		return
	}
	m.stages = m.stages[:0]
	for range m.sms {
		m.stages = append(m.stages, telemetry.NewStage(m.bus))
	}
}

// Config returns the hardware configuration.
func (m *Machine) Config() config.GPU { return m.cfg }

// NumSMs returns the SM count.
func (m *Machine) NumSMs() int { return len(m.sms) }

// SM returns the i-th streaming multiprocessor.
func (m *Machine) SM(i int) *sm.SM { return m.sms[i] }

// SMLevel returns the SM domain's effective VF level.
func (m *Machine) SMLevel() config.VFLevel { return m.smDomain.Level() }

// MemLevel returns the memory domain's effective VF level.
func (m *Machine) MemLevel() config.VFLevel { return m.memDomain.Level() }

// Kernel returns the kernel of the current/last invocation (the first
// partition's kernel when several run concurrently); the zero Kernel before
// any run.
func (m *Machine) Kernel() kernels.Kernel {
	if len(m.parts) == 0 {
		return kernels.Kernel{}
	}
	return m.parts[0].kernel
}

// MaxResidentBlocks returns the per-SM occupancy limit of the first
// partition's kernel; use MaxResidentBlocksFor with concurrent kernels.
func (m *Machine) MaxResidentBlocks() int {
	if len(m.parts) == 0 {
		return m.cfg.MaxBlocksPerSM
	}
	return m.parts[0].maxRes
}

// MaxResidentBlocksFor returns the occupancy limit that applies to SM i.
func (m *Machine) MaxResidentBlocksFor(i int) int {
	return m.partitionOf(i).maxRes
}

// WctaFor returns the warps-per-block of the kernel running on SM i.
func (m *Machine) WctaFor(i int) int { return m.partitionOf(i).wcta }

// partitionOf maps an SM index to its partition.
func (m *Machine) partitionOf(i int) *partition {
	for p := range m.parts {
		if i >= m.parts[p].smLo && i < m.parts[p].smHi {
			return &m.parts[p]
		}
	}
	// No run configured yet: report hardware defaults.
	//eqlint:allow allocfree -- fallback reached only before a run is configured; in-run hot-path queries always hit the loop above
	return &partition{maxRes: m.cfg.MaxBlocksPerSM, wcta: 1}
}

// RequestSMLevel asks the SM-domain voltage regulator to move to the target
// level; the change takes effect after the configured VRM delay. Requests
// are clamped to one step per call by the caller's discipline, but any valid
// target is accepted.
func (m *Machine) RequestSMLevel(target config.VFLevel) {
	delay := m.smDomain.CyclesToTime(m.cfg.VRMTransitionCycles)
	m.smDomain.RequestLevel(target, m.smDomain.Next()+delay)
	if target != m.lastSMLevel && m.bus.Enabled(telemetry.KindVFRequest) {
		now := int64(m.smDomain.Next())
		m.vfRequestPS[telemetry.DomainSM], m.vfRequested[telemetry.DomainSM] = now, true
		m.bus.Emit(now, telemetry.KindVFRequest, telemetry.DomainSM, int64(target), 0)
	}
}

// RequestMemLevel is RequestSMLevel for the memory system (interconnect, L2,
// memory controller and DRAM share the domain, Section IV-C).
func (m *Machine) RequestMemLevel(target config.VFLevel) {
	delay := m.smDomain.CyclesToTime(m.cfg.VRMTransitionCycles)
	m.memDomain.RequestLevel(target, m.memDomain.Next()+delay)
	if target != m.lastMemLevel && m.bus.Enabled(telemetry.KindVFRequest) {
		now := int64(m.memDomain.Next())
		m.vfRequestPS[telemetry.DomainMem], m.vfRequested[telemetry.DomainMem] = now, true
		m.bus.Emit(now, telemetry.KindVFRequest, telemetry.DomainMem, int64(target), 0)
	}
}

// SetLevelsImmediate forces both domains to a level with no regulator delay;
// used to establish static operating points before a run.
func (m *Machine) SetLevelsImmediate(smL, memL config.VFLevel) {
	m.flushPower()
	m.smDomain.RequestLevel(smL, 0)
	m.memDomain.RequestLevel(memL, 0)
	// A tick applies the pending level at the next boundary; levels become
	// visible to accounting at the next Step. Request with effective time 0
	// guarantees the very next tick applies them.
}

// SetTargetBlocks sets SM i's concurrency ceiling, clamped to the kernel's
// occupancy limit.
func (m *Machine) SetTargetBlocks(i, n int) {
	if limit := m.MaxResidentBlocksFor(i); n > limit {
		n = limit
	}
	m.sms[i].SetTargetBlocks(n)
}

// SetAllTargetBlocks applies SetTargetBlocks to every SM.
func (m *Machine) SetAllTargetBlocks(n int) {
	for i := range m.sms {
		m.SetTargetBlocks(i, n)
	}
}

// BlocksRemaining reports grid blocks not yet dispatched, over all
// partitions.
func (m *Machine) BlocksRemaining() int {
	total := 0
	for p := range m.parts {
		total += m.parts[p].totalBlocks - m.parts[p].nextBlock
	}
	return total
}

// maxInvocationCycles bounds one invocation as a deadlock backstop.
const maxInvocationCycles = 30_000_000

// partition is the launch state of one kernel occupying the SM range
// [smLo, smHi). A single kernel uses one partition over every SM;
// RunConcurrent splits the machine.
type partition struct {
	kernel kernels.Kernel
	inv    int
	prof   *warp.Profile
	wcta   int
	maxRes int
	smLo   int
	smHi   int

	nextBlock   int
	totalBlocks int
	// finishPS is the wall time at which the partition's last block
	// completed; zero while running.
	finishPS int64
}

// Task names one kernel invocation for concurrent execution.
type Task struct {
	Kernel     kernels.Kernel
	Invocation int
}

// ConcurrentAware is an optional policy extension: policies that need the
// per-partition kernel layout (Equalizer's per-SM W_cta thresholds)
// implement it in addition to the plain Reset.
type ConcurrentAware interface {
	ResetConcurrent(m *Machine, tasks []Task)
}

// RunKernel simulates one invocation of k and returns its result. Machine
// state (cache contents aside from L1, VF levels) carries across calls, so
// consecutive invocations model a real launch sequence. An error is returned
// only if the invocation exceeds the cycle backstop (a simulator bug).
func (m *Machine) RunKernel(k kernels.Kernel, inv int) (Result, error) {
	results, total, err := m.run([]Task{{Kernel: k, Invocation: inv}})
	if err != nil {
		return Result{}, err
	}
	total.Kernel = results[0].Kernel
	total.Invocation = results[0].Invocation
	return total, nil
}

// RunConcurrent simulates several kernels side by side, each on its own
// even share of the SMs — the multi-kernel scenario the paper cites as the
// motivation for per-SM decision making (Section I). It returns one result
// per task (TimePS is the task's own completion time; energy and the other
// machine-wide metrics are reported on the aggregate result) plus the
// machine-wide aggregate.
func (m *Machine) RunConcurrent(tasks []Task) ([]Result, Result, error) {
	if len(tasks) == 0 {
		return nil, Result{}, fmt.Errorf("gpu: RunConcurrent needs at least one task")
	}
	if len(tasks) > m.cfg.NumSMs {
		return nil, Result{}, fmt.Errorf("gpu: %d tasks exceed %d SMs", len(tasks), m.cfg.NumSMs)
	}
	return m.run(tasks)
}

// run is the interleaved two-domain event loop and the canonical advance
// site for the machine-level cycle counters.
//
//eqlint:cycle-owner
func (m *Machine) run(tasks []Task) ([]Result, Result, error) {
	m.parts = m.parts[:0]
	n := m.cfg.NumSMs
	k := len(tasks)
	for i, task := range tasks {
		prof := task.Kernel.Profile(task.Invocation)
		if err := prof.Validate(); err != nil {
			return nil, Result{}, fmt.Errorf("gpu: %s invocation %d: %w",
				task.Kernel.Name, task.Invocation, err)
		}
		if len(tasks) > 1 {
			// Concurrent kernels address disjoint data: shift each
			// partition's generated warp ids into its own region.
			salted := *prof
			salted.WarpIDOffset += i * 8192
			prof = &salted
		}
		m.parts = append(m.parts, partition{
			kernel:      task.Kernel,
			inv:         task.Invocation,
			prof:        prof,
			wcta:        task.Kernel.Wcta,
			maxRes:      task.Kernel.MaxResidentBlocks(m.cfg.MaxWarpsPerSM),
			smLo:        i * n / k,
			smHi:        (i + 1) * n / k,
			totalBlocks: task.Kernel.Grid(task.Invocation),
		})
	}

	for i, s := range m.sms {
		s.Reset(false)
		s.SetTargetBlocks(m.partitionOf(i).maxRes)
		s.SetIssueFilter(nil)
		s.SetL1Listener(nil)
	}
	m.l2.Flush()
	//eqlint:allow nodeterminism -- recycles waiter slices into a pool; only capacities survive, never order
	for line, w := range m.l2Waiters {
		m.l2WaiterPool = append(m.l2WaiterPool, w[:0])
		delete(m.l2Waiters, line)
	}
	m.l2Replies.Reset()

	if m.policy != nil {
		m.policy.Reset(m, m.parts[0].kernel)
		if ca, ok := m.policy.(ConcurrentAware); ok && len(tasks) > 1 {
			ca.ResetConcurrent(m, tasks)
		}
	}

	// Decide the stepping engine for this run. A policy that installed
	// observation hooks during Reset (CCWS's issue filter and L1 listener)
	// may share state across SMs, so any observed SM forces the sequential
	// loop; the check runs here, after Reset, for exactly that reason.
	shards := m.SMShards()
	if shards > 1 {
		for _, s := range m.sms {
			if s.Observed() {
				shards = 1
				m.shardStats.SequentialRuns++
				break
			}
		}
	}
	m.shardStats.Shards = shards
	if shards > 1 {
		m.ensureStages()
		for i, s := range m.sms {
			s.SetProbe(m.stages[i])
		}
		m.engine = newShardEngine(m, shards)
		defer func() {
			m.engine.stop()
			m.shardStats.Barriers += m.engine.barriers
			m.shardStats.StepCycles += m.engine.stepCycles
			m.shardStats.BatchedCycles += m.engine.batchedCycles
			m.shardStats.FastForwardCycles += m.engine.ffCycles
			m.shardStats.MemRounds += m.engine.memRounds
			m.engine = nil
			for _, s := range m.sms {
				s.SetProbe(m.bus)
			}
		}()
	}
	// Sharded memory-domain stepping is legal only when the endpoint work is
	// provably emission-free: DeliverLine can emit L1 evictions and the
	// network push path emits queue/stall events, so any of those kinds in
	// the mask forces the sequential memory step (which stages nothing).
	m.memShardable = m.engine != nil && m.memSharding &&
		(m.bus == nil || m.bus.Mask()&telemetry.MaskOf(
			telemetry.KindL1Evict, telemetry.KindICNTQueue, telemetry.KindICNTStall) == 0)

	startPS := int64(m.smDomain.Next())
	for p := range m.parts {
		m.bus.Emit(startPS, telemetry.KindKernelBegin, int16(p),
			int64(m.parts[p].inv), int64(m.parts[p].totalBlocks))
	}
	startSMCycles := m.smDomain.Cycle()
	m.flushPower()
	m.meter.Reset()
	startStats := m.aggregateSMStats()
	startL1 := m.aggregateL1Stats()
	startDRAM := m.dram.Stats()
	startRes := m.residency()

	// Fast-forwarding needs the policy's cooperation: a policy that does not
	// implement FastForwardAware may mutate the machine on any cycle, so
	// every cycle must run. A nil policy constrains nothing.
	var aware FastForwardAware
	canFF := m.fastForward
	if m.policy != nil {
		if a, ok := m.policy.(FastForwardAware); ok {
			aware = a
		} else {
			canFF = false
		}
	}
	// Batching additionally needs the policy's no-op-between-samples promise
	// (BatchAware); a nil policy constrains nothing.
	var batchAware BatchAware
	canBatch := canFF && m.batching
	if m.policy != nil {
		if b, ok := m.policy.(BatchAware); ok {
			batchAware = b
		} else {
			canBatch = false
		}
	}

	var smCycle int64
	for {
		smNext, memNext := m.smDomain.Next(), m.memDomain.Next()
		if smNext <= memNext {
			if canFF {
				if n := m.fastForwardSpan(smNext, memNext, smCycle, aware); n >= 2 {
					m.applyFastForward(n, int64(smNext), smCycle, aware)
					smCycle += n
					continue
				}
			}
			if canBatch {
				if kb := m.batchSpan(smNext, smCycle, batchAware); kb >= 2 {
					m.applyBatch(kb, smCycle)
					smCycle += kb
					continue
				}
			}
			now := m.smDomain.Tick()
			m.afterSMLevelChange(now)
			smCycle++
			period := m.smDomain.CyclesToTime(1)
			active := 0
			if m.engine != nil {
				active = m.engine.dispatch(shardJob{kind: shardJobStep, now: now, period: period})
			} else {
				for _, s := range m.sms {
					s.Step(now, period)
					if s.ResidentBlocks() > 0 {
						active++
					}
				}
			}
			m.activeSMTimePS += int64(period) * int64(active)
			m.dispatchBlocks(int64(now))
			if m.policy != nil {
				m.policy.OnSMCycle(m, now, smCycle)
			}
			if invariant.Enabled && smCycle%machineCheckInterval == 0 {
				m.verifyInvariants()
			}
			if smCycle > maxInvocationCycles {
				return nil, Result{}, fmt.Errorf("gpu: %s exceeded %d cycles",
					m.invocationLabel(), maxInvocationCycles)
			}
			if m.done(int64(now)) {
				break
			}
		} else {
			if canFF && m.memIdle() {
				if k := m.memIdleSpan(memNext, smNext); k >= 2 {
					last := m.memDomain.TickN(k)
					m.lastMemNowPS = int64(last)
					m.dram.SkipIdle(m.memCycle+1, k)
					m.memCycle += k
					m.hitDelayPS = int64(last) + int64(m.memDomain.CyclesToTime(m.cfg.L2HitLatency))
					continue
				}
			}
			now := m.memDomain.Tick()
			m.afterMemLevelChange(now)
			m.memCycle++
			if m.memShardable {
				m.stepMemorySharded(now)
			} else {
				m.stepMemory(now)
			}
		}
	}

	m.flushPower()
	endPS := int64(m.smDomain.Next())
	endStats := m.aggregateSMStats()
	endL1 := m.aggregateL1Stats()
	endDRAM := m.dram.Stats()
	endRes := m.residency()

	total := Result{
		Kernel:     m.parts[0].kernel.Name,
		Invocation: m.parts[0].inv,
		SMCycles:   m.smDomain.Cycle() - startSMCycles,
		TimePS:     endPS - startPS,
		Energy:     m.meter.Energy(),
	}
	cycles := float64(total.SMCycles)
	if cycles > 0 {
		issued := float64(endStats.IssuedALU + endStats.IssuedSFU + endStats.IssuedMEM + endStats.IssuedTEX -
			startStats.IssuedALU - startStats.IssuedSFU - startStats.IssuedMEM - startStats.IssuedTEX)
		total.IPC = issued / cycles
	}
	demand := float64(endL1.Hits + endL1.Misses + endL1.Merged - startL1.Hits - startL1.Misses - startL1.Merged)
	if demand > 0 {
		total.L1HitRate = float64(endL1.Hits-startL1.Hits) / demand
	}
	if steps := endDRAM.StepCycles - startDRAM.StepCycles; steps > 0 {
		total.DRAMUtil = float64(endDRAM.BusyCycles-startDRAM.BusyCycles) / float64(steps)
	}
	for i := 0; i < 3; i++ {
		total.Residency.SM[i] = endRes.SM[i] - startRes.SM[i]
		total.Residency.Mem[i] = endRes.Mem[i] - startRes.Mem[i]
	}

	results := make([]Result, len(m.parts))
	for i := range m.parts {
		pt := &m.parts[i]
		results[i] = Result{
			Kernel:     pt.kernel.Name,
			Invocation: pt.inv,
			TimePS:     pt.finishPS - startPS,
			SMCycles:   (pt.finishPS - startPS) / int64(m.cfg.SMClockPS),
		}
	}
	return results, total, nil
}

// machineCheckInterval spaces the machine-wide invariant sweep; it is
// coarser than the per-SM recount because every check here walks shared
// structures.
const machineCheckInterval = 4096

// invocationLabel names the running invocation(s) for diagnostics. The
// single-kernel form is stable ("NAME invocation N"); concurrent runs list
// every partition joined with "+".
func (m *Machine) invocationLabel() string {
	label := ""
	for p := range m.parts {
		if p > 0 {
			label += "+"
		}
		label += fmt.Sprintf("%s invocation %d", m.parts[p].kernel.Name, m.parts[p].inv)
	}
	return label
}

// memIdle reports whether the memory partition can do no work at all: DRAM
// and interconnect drained, no delayed L2 replies, and no SM outbox waiting
// to enter the network. An idle memory cycle only advances cycle statistics,
// so it commutes with quiescent SM cycles and can be retired in bulk.
//
//eqlint:hotpath
func (m *Machine) memIdle() bool {
	if !m.dram.Drained() || !m.net.Drained() || m.l2Replies.Len() != 0 {
		return false
	}
	for _, s := range m.sms {
		if s.OutboxFull() {
			return false
		}
	}
	return true
}

// doneWouldChange reports whether calling done now would have an effect —
// stamping a partition's finish time or ending the run. While false, done is
// a pure no-op returning false, so fast-forwarded cycles may skip it; the
// machine state it reads cannot change during a quiescent span.
func (m *Machine) doneWouldChange() bool {
	allDone := true
	for p := range m.parts {
		pt := &m.parts[p]
		if pt.finishPS != 0 {
			continue
		}
		allDone = false
		if pt.nextBlock < pt.totalBlocks {
			continue
		}
		idle := true
		for i := pt.smLo; i < pt.smHi; i++ {
			if !m.sms[i].Idle() {
				idle = false
				break
			}
		}
		if idle {
			return true // done() would stamp this partition
		}
	}
	// With every partition stamped, done() turns on the memory drains, which
	// a skipped span cannot be allowed to decide.
	return allDone
}

// fastForwardSpan returns how many consecutive SM cycles starting at boundary
// smNext are pure bookkeeping — quiescent on every SM, no dispatch, no done
// transition, no policy action, no VF switch, and not overtaking an active
// memory domain — or 0 when the next cycle must run for real. smCycle is the
// index of the last completed SM cycle.
//
//eqlint:hotpath
func (m *Machine) fastForwardSpan(smNext, memNext clock.Time, smCycle int64, aware FastForwardAware) int64 {
	// Every SM must be quiescent; w is the earliest state-changing event.
	w := int64(math.MaxInt64)
	if m.engine != nil {
		// Sharded runs reduce shard by shard; the scan itself stays on the
		// coordinator (every SM is at the phase barrier, reads are cheap).
		at, ok := m.engine.nextEventReduce()
		if !ok {
			return 0
		}
		w = at
	} else {
		for _, s := range m.sms {
			at, ok := s.NextEventAt()
			if !ok {
				return 0
			}
			if at < w {
				w = at
			}
		}
	}
	if w <= int64(smNext) {
		return 0
	}
	// The dispatcher must be a no-op: a partition with blocks left and a
	// willing SM launches work on every cycle.
	for p := range m.parts {
		pt := &m.parts[p]
		if pt.nextBlock >= pt.totalBlocks {
			continue
		}
		for i := pt.smLo; i < pt.smHi; i++ {
			if m.sms[i].WantsBlock(pt.wcta) {
				return 0
			}
		}
	}
	if m.doneWouldChange() {
		return 0
	}

	period := int64(m.smDomain.CyclesToTime(1))
	// Skipped boundaries are smNext, smNext+period, ...; all must precede the
	// first SM event strictly (the event's cycle runs for real).
	n := (w-1-int64(smNext))/period + 1
	// An active memory domain caps the span at its next boundary: ties run
	// the SM side first, so the last skipped boundary may equal memNext. An
	// idle memory domain imposes no cap — its cycles are pure bookkeeping and
	// the memory branch retires them in bulk afterwards.
	if !m.memIdle() {
		if lim := (int64(memNext)-int64(smNext))/period + 1; lim < n {
			n = lim
		}
	}
	// Never tick across a pending VF switch; the boundary that applies it
	// (and the power-accounting flush) runs for real.
	if at, pending := m.smDomain.SwitchPending(); pending {
		if int64(at) <= int64(smNext) {
			return 0
		}
		if lim := (int64(at)-1-int64(smNext))/period + 1; lim < n {
			n = lim
		}
	}
	// The policy's next non-accumulate cycle and the invocation backstop cap
	// the span in cycle space.
	if aware != nil {
		if lim := aware.NextActiveCycle(smCycle) - 1 - smCycle; lim < n {
			n = lim
		}
	}
	if lim := maxInvocationCycles - smCycle; lim < n {
		n = lim
	}
	return n
}

// applyFastForward retires n quiescent SM cycles in closed form: clock and
// census counters, power-attribution time, telemetry and the policy's sample
// accumulation all land exactly where n iterations of the per-cycle loop
// would leave them. smCycle is the index of the last completed cycle; the
// span covers smCycle+1 .. smCycle+n.
//
//eqlint:cycle-owner
//eqlint:hotpath
func (m *Machine) applyFastForward(n int64, firstPS, smCycle int64, aware FastForwardAware) {
	period := int64(m.smDomain.CyclesToTime(1))
	m.smDomain.TickN(n)
	active := 0
	if m.engine != nil {
		active = m.engine.dispatch(shardJob{
			kind: shardJobFastForward, period: clock.Time(period), n: n, firstPS: firstPS,
		})
	} else {
		for _, s := range m.sms {
			s.FastForward(n, firstPS, period)
			if s.ResidentBlocks() > 0 {
				active++
			}
		}
	}
	m.activeSMTimePS += period * int64(active) * n
	if m.bus.Enabled(telemetry.KindStallCensus) {
		// One event per SM per skipped cycle, cycles outermost: the exact
		// interleaving the legacy loop produces when every SM emits its
		// census each cycle in SM order.
		for j := int64(0); j < n; j++ {
			ps := firstPS + j*period
			for _, s := range m.sms {
				s.EmitCensus(ps)
			}
		}
	}
	if aware != nil {
		aware.AccumulateSpan(m, smCycle+1, smCycle+n)
	}
	if invariant.Enabled && (smCycle+n)/machineCheckInterval != smCycle/machineCheckInterval {
		m.verifyInvariants()
	}
}

// batchSpan returns how many upcoming SM cycles starting at boundary smNext
// can be stepped as one batched window — real Step calls with every
// interleaved piece of coordinator work provably a no-op — or 0 when the
// next cycle must run the full loop body. The window's legality argument
// (DESIGN.md §9): the memory domain is idle now and no SM can touch the
// memory boundary inside the window (BatchBound), so every interleaved
// memory cycle is pure bookkeeping the memory branch retires in bulk
// afterwards; no warp exits inside the window (BatchBound again) and the
// dispatcher is frozen, so residency is constant and done()/dispatchBlocks
// are no-ops; the policy promises no-op OnSMCycle strictly before its next
// sample cycle, where the window is capped. smCycle is the index of the
// last completed SM cycle.
//
//eqlint:hotpath
func (m *Machine) batchSpan(smNext clock.Time, smCycle int64, batchAware BatchAware) int64 {
	if !m.memIdle() {
		return 0
	}
	k := maxInvocationCycles - smCycle
	for _, s := range m.sms {
		if b := s.BatchBound(); b < k {
			if b < 2 {
				return 0
			}
			k = b
		}
	}
	// The dispatcher must be a no-op for the whole window. No SM wants a
	// block now, and nothing in the window can change that: exits are
	// excluded by BatchBound and the policy cannot retune mid-window.
	for p := range m.parts {
		pt := &m.parts[p]
		if pt.nextBlock >= pt.totalBlocks {
			continue
		}
		for i := pt.smLo; i < pt.smHi; i++ {
			if m.sms[i].WantsBlock(pt.wcta) {
				return 0
			}
		}
	}
	if m.doneWouldChange() {
		return 0
	}
	// Durable-done witness: doneWouldChange is false now, but unlike a
	// fast-forward span the SMs evolve inside the window, and an SM that is
	// non-idle only through stale queue entries could drain to idle
	// mid-window — done() would then stamp a finish time at a cycle we skip.
	// Require every unfinished fully-dispatched partition to hold a resident
	// block somewhere: residency is frozen in-window (no exits, no
	// launches), so such a partition provably stays non-idle at every
	// skipped done() check.
	for p := range m.parts {
		pt := &m.parts[p]
		if pt.finishPS != 0 || pt.nextBlock < pt.totalBlocks {
			continue
		}
		resident := false
		for i := pt.smLo; i < pt.smHi; i++ {
			if m.sms[i].ResidentBlocks() > 0 {
				resident = true
				break
			}
		}
		if !resident {
			return 0
		}
	}
	period := int64(m.smDomain.CyclesToTime(1))
	// Never tick across a pending VF switch; the boundary that applies it
	// runs for real (and the frozen level keeps afterSMLevelChange a no-op
	// for every windowed cycle).
	if at, pending := m.smDomain.SwitchPending(); pending {
		if int64(at) <= int64(smNext) {
			return 0
		}
		if lim := (int64(at)-1-int64(smNext))/period + 1; lim < k {
			k = lim
		}
	}
	// A pending memory-domain VF switch caps the window at its boundary:
	// applyBatch retires the window's idle memory cycles in bulk, and the
	// boundary that applies a switch must run for real in the memory branch.
	if at, pending := m.memDomain.SwitchPending(); pending {
		if int64(at) <= int64(smNext) {
			return 0
		}
		if lim := (int64(at)-int64(smNext))/period + 1; lim < k {
			k = lim
		}
	}
	// The window may end exactly at the policy's next sample cycle: the one
	// real OnSMCycle call at the window end then runs with machine state
	// identical to the sequential loop's.
	if batchAware != nil {
		if lim := batchAware.NextSampleCycle(smCycle) - smCycle; lim < k {
			k = lim
		}
	}
	if k < 2 {
		return 0
	}
	return k
}

// applyBatch steps the kb-cycle window established by batchSpan: every SM
// runs kb real cycles (one engine round when sharded), the skipped
// coordinator work is provably no-op, and the policy's one real call lands
// at the window's last cycle. smCycle is the index of the last completed
// cycle; the window covers smCycle+1 .. smCycle+kb.
//
//eqlint:cycle-owner
//eqlint:hotpath
func (m *Machine) applyBatch(kb, smCycle int64) {
	period := int64(m.smDomain.CyclesToTime(1))
	firstPS := int64(m.smDomain.Next())
	last := m.smDomain.TickN(kb)
	active := 0
	if m.engine != nil {
		active = m.engine.dispatch(shardJob{
			kind: shardJobStepN, period: clock.Time(period), n: kb, firstPS: firstPS,
		})
	} else {
		// Sequential batching emits in exactly the per-cycle order (cycle
		// outermost, SMs in index order), so no staging is needed.
		for j := int64(0); j < kb; j++ {
			now := clock.Time(firstPS + j*period)
			for _, s := range m.sms {
				s.Step(now, clock.Time(period))
			}
		}
		for _, s := range m.sms {
			if s.ResidentBlocks() > 0 {
				active++
			}
		}
	}
	// Residency is frozen in-window, so the final active count holds for
	// every batched cycle.
	m.activeSMTimePS += period * int64(active) * kb
	// Catch the memory domain up to the sequential interleave point: every
	// memory boundary strictly before the window-end SM boundary would have
	// ticked (idle, by the window's legality argument) before the SM cycle
	// that hosts the policy's one real call. Retire them through the same
	// bulk mechanics as the memory branch's idle span so the policy observes
	// the clocks the per-cycle loop would show it. A boundary exactly at the
	// window end stays pending: ties run the SM side first.
	if memNext := int64(m.memDomain.Next()); memNext < int64(last) {
		memPeriod := int64(m.memDomain.CyclesToTime(1))
		k := (int64(last)-1-memNext)/memPeriod + 1
		lastMem := m.memDomain.TickN(k)
		m.lastMemNowPS = int64(lastMem)
		m.dram.SkipIdle(m.memCycle+1, k)
		m.memCycle += k
		m.hitDelayPS = int64(lastMem) + int64(m.memDomain.CyclesToTime(m.cfg.L2HitLatency))
	}
	if m.policy != nil {
		// No-op unless the window ends exactly at the policy's sample cycle
		// (the BatchAware contract); the machine state it then observes is
		// the sequential loop's, cycle for cycle.
		m.policy.OnSMCycle(m, last, smCycle+kb)
	}
	if invariant.Enabled && (smCycle+kb)/machineCheckInterval != smCycle/machineCheckInterval {
		m.verifyInvariants()
	}
}

// memIdleSpan returns how many idle memory cycles starting at boundary
// memNext fit strictly before the SM domain's next boundary and any pending
// VF switch. The caller has established memIdle.
//
//eqlint:hotpath
func (m *Machine) memIdleSpan(memNext, smNext clock.Time) int64 {
	period := int64(m.memDomain.CyclesToTime(1))
	k := (int64(smNext)-1-int64(memNext))/period + 1
	if at, pending := m.memDomain.SwitchPending(); pending {
		if int64(at) <= int64(memNext) {
			return 0
		}
		if lim := (int64(at)-1-int64(memNext))/period + 1; lim < k {
			k = lim
		}
	}
	return k
}

// verifyInvariants asserts machine-wide conservation laws. Only compiled
// in under the eqdebug build tag.
func (m *Machine) verifyInvariants() {
	// DVFS levels always hold one of the three architected operating
	// points, mid-transition included.
	invariant.Checkf(m.smDomain.Level().Valid(),
		"gpu: SM domain at invalid DVFS level %d", m.smDomain.Level())
	invariant.Checkf(m.memDomain.Level().Valid(),
		"gpu: memory domain at invalid DVFS level %d", m.memDomain.Level())

	// L2 accounting: every demand access resolves to exactly one outcome
	// (rejected probes are excluded from Accesses by design).
	cs := m.l2.Stats()
	invariant.Checkf(cs.Hits+cs.Misses+cs.Merged == cs.Accesses,
		"gpu: L2 stats leak: hits=%d misses=%d merged=%d accesses=%d",
		cs.Hits, cs.Misses, cs.Merged, cs.Accesses)

	// DRAM accounting: the device cannot be busy for more cycles than it
	// observed, nor finish more requests than it accepted.
	ds := m.dram.Stats()
	invariant.Checkf(ds.BusyCycles <= ds.StepCycles,
		"gpu: DRAM busy %d of %d observed cycles", ds.BusyCycles, ds.StepCycles)
	invariant.Checkf(ds.Serviced <= ds.Enqueued,
		"gpu: DRAM serviced %d of %d enqueued requests", ds.Serviced, ds.Enqueued)

	// Every outstanding L2 waiter list belongs to a miss still in flight;
	// an empty list would mean a fill went unrouted.
	for line, ws := range m.l2Waiters { //eqlint:allow nodeterminism -- read-only sweep; panics on first violation only
		invariant.Checkf(len(ws) > 0, "gpu: empty L2 waiter list for line %#x", line)
	}
}

// done reports completion and stamps partition finish times. Coordinator
// phase only: it reads every SM and the shared drain state.
//
//eqlint:barrierphase
//eqlint:hotpath
func (m *Machine) done(nowPS int64) bool {
	allDone := true
	for p := range m.parts {
		pt := &m.parts[p]
		if pt.finishPS != 0 {
			continue
		}
		if pt.nextBlock < pt.totalBlocks {
			allDone = false
			continue
		}
		idle := true
		for i := pt.smLo; i < pt.smHi; i++ {
			if !m.sms[i].Idle() {
				idle = false
				break
			}
		}
		if idle {
			pt.finishPS = nowPS
			m.bus.Emit(nowPS, telemetry.KindKernelEnd, int16(p), int64(pt.inv), 0)
		} else {
			allDone = false
		}
	}
	if !allDone {
		return false
	}
	return m.net.Drained() && m.dram.Drained() && m.l2Replies.Len() == 0
}

// dispatchBlocks launches pending blocks onto SMs with free slots.
// Coordinator phase only: it walks partitions and mutates shared dispatch
// cursors.
//
//eqlint:barrierphase
//eqlint:hotpath
func (m *Machine) dispatchBlocks(nowPS int64) {
	_ = nowPS
	for p := range m.parts {
		pt := &m.parts[p]
		if pt.nextBlock >= pt.totalBlocks {
			continue
		}
		for i := pt.smLo; i < pt.smHi; i++ {
			s := m.sms[i]
			for pt.nextBlock < pt.totalBlocks && s.WantsBlock(pt.wcta) {
				s.LaunchBlock(pt.prof, pt.nextBlock, pt.wcta)
				pt.nextBlock++
			}
			if pt.nextBlock >= pt.totalBlocks {
				break
			}
		}
	}
}

// stepMemory advances the memory partition by one memory-domain cycle.
// It touches every shared memory-domain component (DRAM, L2, interconnect,
// waiter tables), so it must only ever run on the coordinator between
// phase barriers, and it executes once per memory cycle so it must not
// allocate in steady state.
//
//eqlint:barrierphase
//eqlint:hotpath
func (m *Machine) stepMemory(now clock.Time) {
	m.lastMemNowPS = int64(now)
	// 1. DRAM completions fill the L2 and answer every waiting SM.
	for _, line := range m.dram.Step(m.memCycle) {
		m.l2.Fill(line)
		m.seenMem.DRAM++ // counted at service for level attribution
		waiters := m.l2Waiters[line]
		for _, req := range waiters {
			m.sms[req.SM].DeliverLine(req.Line, now)
		}
		delete(m.l2Waiters, line)
		if cap(waiters) > 0 {
			m.l2WaiterPool = append(m.l2WaiterPool, waiters[:0])
		}
	}

	// 2. Delayed L2 hit replies reach their SMs (deliverFn reads the cycle
	// time from lastMemNowPS, set above).
	m.l2Replies.PopReady(int64(now), m.deliverFn)

	// 3. SM outboxes feed the interconnect.
	for i, s := range m.sms {
		if s.OutboxFull() && m.net.CanPush(i) {
			if r, ok := s.TakeOutbox(); ok {
				m.net.Push(icnt.Request{SM: r.SM, Line: r.Line})
			}
		}
	}

	// 4. The interconnect drains into the L2 / memory controller.
	m.hitDelayPS = int64(now) + int64(m.memDomain.CyclesToTime(m.cfg.L2HitLatency))
	m.net.Drain(m.drainFn)
}

// memShardMinWork is the endpoint-work threshold below which a sharded
// memory cycle replays serially on the coordinator: waking the worker pool
// costs two barrier rounds, which only pays for itself when several SMs
// have deliveries or pushes to absorb. Deterministic — the count is a pure
// function of simulation state.
const memShardMinWork = 8

// stepMemorySharded advances the memory partition by one memory-domain
// cycle with the per-SM endpoint half (L1 fills/wakes for completed lines,
// outbox port pushes) fanned out across the shard workers. The shared
// phases — DRAM, L2, reply queue, interconnect drain — stay on the
// coordinator in their sequential order; the endpoint work is staged into
// memDeliveries in that same order, so each worker's per-SM projection
// preserves per-SM delivery order and the merged effect is byte-identical
// to stepMemory. Only called when memShardable (engine active, telemetry
// mask excludes every kind the endpoint work could emit).
//
//eqlint:barrierphase
//eqlint:hotpath
func (m *Machine) stepMemorySharded(now clock.Time) {
	m.lastMemNowPS = int64(now)
	// 1. DRAM completions fill the L2; their waiting SM requests are staged
	// rather than delivered.
	m.memDeliveries = m.memDeliveries[:0]
	for _, line := range m.dram.Step(m.memCycle) {
		m.l2.Fill(line)
		m.seenMem.DRAM++ // counted at service for level attribution
		waiters := m.l2Waiters[line]
		//eqlint:allow allocfree -- staging capacity is retained across cycles; grows only until the busiest cycle
		m.memDeliveries = append(m.memDeliveries, waiters...)
		delete(m.l2Waiters, line)
		if cap(waiters) > 0 {
			//eqlint:allow allocfree -- waiter-slice pool grows only until the busiest cycle; capacities are recycled, never dropped
			m.l2WaiterPool = append(m.l2WaiterPool, waiters[:0])
		}
	}

	// 2. Delayed L2 hit replies join the same staged list; both phases
	// deliver at `now`, so one ordered list reproduces the sequential order.
	m.l2Replies.PopReady(int64(now), m.replyStageFn)

	// 3. Deliver and push — sharded when there is enough endpoint work to
	// absorb the barrier round, serially (same staged order) otherwise.
	work := len(m.memDeliveries)
	for i, s := range m.sms {
		if s.OutboxFull() && m.net.CanPush(i) {
			work++
		}
	}
	if work >= memShardMinWork {
		pushed := m.engine.dispatch(shardJob{kind: shardJobMemEndpoints, now: now})
		m.net.AddPushed(uint64(pushed))
	} else {
		for _, r := range m.memDeliveries {
			m.sms[r.SM].DeliverLine(r.Line, now)
		}
		for i, s := range m.sms {
			if s.OutboxFull() && m.net.CanPush(i) {
				if r, ok := s.TakeOutbox(); ok {
					m.net.Push(icnt.Request{SM: r.SM, Line: r.Line})
				}
			}
		}
	}

	// 4. The interconnect drains into the L2 / memory controller.
	m.hitDelayPS = int64(now) + int64(m.memDomain.CyclesToTime(m.cfg.L2HitLatency))
	m.net.Drain(m.drainFn)
}

// stageReply appends one delayed L2 reply to the cycle's staged delivery
// list; it is the body of the once-allocated replyStageFn callback. Marked
// hotpath explicitly because the call graph cannot follow the func value
// from stepMemorySharded.
//
//eqlint:hotpath
func (m *Machine) stageReply(r icnt.Request) {
	//eqlint:allow allocfree -- staging capacity is retained across cycles; grows only until the busiest cycle
	m.memDeliveries = append(m.memDeliveries, r)
}

// drainRequest routes one interconnect request into the L2 / memory
// controller; it is the body of the once-allocated drainFn callback.
// Marked hotpath explicitly because the call graph cannot follow the
// drainFn func value from stepMemory.
//
//eqlint:hotpath
func (m *Machine) drainRequest(r icnt.Request) bool {
	switch {
	case m.l2.Contains(r.Line):
		m.l2.Access(r.Line)
		m.seenMem.L2++
		m.l2Replies.Push(m.hitDelayPS, r)
		return true
	case m.l2.MissPending(r.Line):
		m.l2.Access(r.Line) // merged
		m.seenMem.L2++
		m.addL2Waiter(r)
		return true
	case !m.l2.MSHRsFree() || !m.dram.CanAccept():
		return false // back-pressure: request stays in the network
	default:
		m.l2.Access(r.Line) // fresh miss
		m.seenMem.L2++
		m.dram.Enqueue(r.Line)
		m.addL2Waiter(r)
		return true
	}
}

// addL2Waiter records a request awaiting a pending L2 line, reusing a pooled
// slice for the line's first waiter.
//
//eqlint:hotpath
func (m *Machine) addL2Waiter(r icnt.Request) {
	w, ok := m.l2Waiters[r.Line]
	if !ok && len(m.l2WaiterPool) > 0 {
		w = m.l2WaiterPool[len(m.l2WaiterPool)-1]
		m.l2WaiterPool = m.l2WaiterPool[:len(m.l2WaiterPool)-1]
	}
	m.l2Waiters[r.Line] = append(w, r)
}

// --- power attribution ------------------------------------------------------

func (m *Machine) aggregateSMStats() sm.Stats {
	var total sm.Stats
	for _, s := range m.sms {
		st := s.Stats()
		total.IssuedALU += st.IssuedALU
		total.IssuedSFU += st.IssuedSFU
		total.IssuedMEM += st.IssuedMEM
		total.IssuedTEX += st.IssuedTEX
		total.L1LineAccesses += st.L1LineAccesses
	}
	return total
}

func (m *Machine) aggregateL1Stats() cache.Stats {
	var total cache.Stats
	for _, s := range m.sms {
		st := s.L1().Stats()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Merged += st.Merged
		total.Accesses += st.Accesses
	}
	return total
}

func (m *Machine) residency() Residency {
	var r Residency
	lo, no, hi := m.smDomain.Residency()
	r.SM = [3]int64{int64(lo), int64(no), int64(hi)}
	lo, no, hi = m.memDomain.Residency()
	r.Mem = [3]int64{int64(lo), int64(no), int64(hi)}
	return r
}

// afterSMLevelChange flushes accumulated SM activity to the meter when the
// effective level changed at this tick.
func (m *Machine) afterSMLevelChange(now clock.Time) {
	if m.smDomain.Level() == m.lastSMLevel {
		return
	}
	m.flushSMPower(int64(now))
	m.lastSMLevel = m.smDomain.Level()
	m.emitVFShift(telemetry.DomainSM, int64(now), m.lastSMLevel)
}

func (m *Machine) afterMemLevelChange(now clock.Time) {
	if m.memDomain.Level() == m.lastMemLevel {
		return
	}
	m.flushMemPower(int64(now))
	m.lastMemLevel = m.memDomain.Level()
	m.emitVFShift(telemetry.DomainMem, int64(now), m.lastMemLevel)
}

// emitVFShift records a VF level becoming effective, carrying the
// request-to-effective switching latency when the request was observed.
func (m *Machine) emitVFShift(domain int16, nowPS int64, level config.VFLevel) {
	if !m.bus.Enabled(telemetry.KindVFShift) {
		return
	}
	var latency int64
	if m.vfRequested[domain] {
		latency = nowPS - m.vfRequestPS[domain]
		m.vfRequested[domain] = false
	}
	m.bus.Emit(nowPS, telemetry.KindVFShift, domain, int64(level), latency)
}

func (m *Machine) flushSMPower(nowPS int64) {
	cur := m.aggregateSMStats()
	d := power.SMTotals{
		ALU:            cur.IssuedALU - m.seenSM.ALU,
		SFU:            cur.IssuedSFU - m.seenSM.SFU,
		MEM:            cur.IssuedMEM + cur.IssuedTEX - m.seenSM.MEM,
		L1:             cur.L1LineAccesses - m.seenSM.L1,
		ActiveSMTimePS: m.activeSMTimePS,
		TimePS:         nowPS - m.lastSMFlushPS,
	}
	m.meter.AccumulateSM(m.lastSMLevel, d)
	m.seenSM.ALU, m.seenSM.SFU, m.seenSM.MEM, m.seenSM.L1 =
		cur.IssuedALU, cur.IssuedSFU, cur.IssuedMEM+cur.IssuedTEX, cur.L1LineAccesses
	m.activeSMTimePS = 0
	m.lastSMFlushPS = nowPS
}

func (m *Machine) flushMemPower(nowPS int64) {
	d := power.MemTotals{
		L2:     m.seenMem.L2,
		DRAM:   m.seenMem.DRAM,
		TimePS: nowPS - m.lastMemFlushPS,
	}
	m.meter.AccumulateMem(m.lastMemLevel, d)
	m.seenMem.L2, m.seenMem.DRAM = 0, 0
	m.lastMemFlushPS = nowPS
}

// flushPower flushes both domains at the current boundaries.
func (m *Machine) flushPower() {
	m.flushSMPower(int64(m.smDomain.Next()))
	m.flushMemPower(int64(m.memDomain.Next()))
	m.lastSMLevel = m.smDomain.Level()
	m.lastMemLevel = m.memDomain.Level()
}
