package gpu_test

import (
	"bytes"
	"reflect"
	"testing"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/policy"
	"equalizer/internal/power"
	"equalizer/internal/telemetry"
)

// The fast-forward engine's contract is byte-identity: with it on or off, a
// run must produce the same Result, the same telemetry event stream (and
// Chrome trace bytes), and the same per-epoch Equalizer decisions. These
// tests drive run pairs through every example kernel and compare everything
// observable. The external test package lets them compose gpu with the
// policies that depend on it.

// capture is everything observable from one run configuration.
type capture struct {
	results  []gpu.Result
	totals   []gpu.Result
	events   []telemetry.Event
	dropped  uint64
	trace    []byte
	eqTraces [][]core.TracePoint
	series   []policy.EpochPoint
}

// runCapture executes invocations of tasks on a fresh machine with the
// fast-forward engine on or off, the SMs stepped by shards workers
// (1 = sequential), and captures every observable output. Cycle batching and
// memory-domain sharding stay at their defaults (on); runCaptureKnobs pins
// them explicitly.
func runCapture(t *testing.T, tasks []gpu.Task, invocations int,
	mkPolicy func() gpu.Policy, mask telemetry.Mask, fastForward bool, shards int) capture {
	t.Helper()
	return runCaptureKnobs(t, tasks, invocations, mkPolicy, mask, fastForward, shards, true, true)
}

// runCaptureKnobs is runCapture with the idle-window cycle-batching and
// memory-domain-sharding escape hatches pinned explicitly.
func runCaptureKnobs(t *testing.T, tasks []gpu.Task, invocations int,
	mkPolicy func() gpu.Policy, mask telemetry.Mask, fastForward bool, shards int,
	batching, memSharding bool) capture {
	t.Helper()
	var pol gpu.Policy
	if mkPolicy != nil {
		pol = mkPolicy()
	}
	m := gpu.MustNew(config.Default(), power.Default(), pol)
	m.SetFastForward(fastForward)
	m.SetSMShards(shards)
	m.SetCycleBatching(batching)
	m.SetMemSharding(memSharding)
	bus := telemetry.NewBus(1<<15, mask)
	m.AttachTelemetry(bus)

	var c capture
	for inv := 0; inv < invocations; inv++ {
		if len(tasks) == 1 {
			res, err := m.RunKernel(tasks[0].Kernel,
				(tasks[0].Invocation+inv)%tasks[0].Kernel.Invocations)
			if err != nil {
				t.Fatal(err)
			}
			c.results = append(c.results, res)
		} else {
			rs, total, err := m.RunConcurrent(tasks)
			if err != nil {
				t.Fatal(err)
			}
			c.results = append(c.results, rs...)
			c.totals = append(c.totals, total)
		}
	}
	c.events = bus.Events()
	c.dropped = bus.Dropped()
	var buf bytes.Buffer
	err := telemetry.WriteChromeTrace(&buf, c.events, telemetry.ChromeOptions{
		NumSMs: m.NumSMs(), Kernel: tasks[0].Kernel.Name,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.trace = buf.Bytes()

	switch p := pol.(type) {
	case *core.Equalizer:
		for i := 0; i < p.TracedSMs(); i++ {
			c.eqTraces = append(c.eqTraces, p.TraceSM(i))
		}
	case policy.Multi:
		for _, member := range p {
			if mon, ok := member.(*policy.Monitor); ok {
				c.series = append([]policy.EpochPoint(nil), mon.Series()...)
			}
		}
	}
	return c
}

func compareCaptures(t *testing.T, fast, legacy capture) {
	t.Helper()
	if !reflect.DeepEqual(fast.results, legacy.results) {
		t.Errorf("results diverge:\nfast:   %+v\nlegacy: %+v", fast.results, legacy.results)
	}
	if !reflect.DeepEqual(fast.totals, legacy.totals) {
		t.Errorf("aggregate results diverge:\nfast:   %+v\nlegacy: %+v", fast.totals, legacy.totals)
	}
	if fast.dropped != legacy.dropped {
		t.Errorf("dropped events diverge: fast %d, legacy %d", fast.dropped, legacy.dropped)
	}
	if !reflect.DeepEqual(fast.events, legacy.events) {
		if len(fast.events) != len(legacy.events) {
			t.Fatalf("event counts diverge: fast %d, legacy %d", len(fast.events), len(legacy.events))
		}
		for i := range fast.events {
			if fast.events[i] != legacy.events[i] {
				t.Fatalf("event %d diverges:\nfast:   %+v\nlegacy: %+v",
					i, fast.events[i], legacy.events[i])
			}
		}
	}
	if !bytes.Equal(fast.trace, legacy.trace) {
		t.Errorf("Chrome trace bytes diverge (%d vs %d bytes)", len(fast.trace), len(legacy.trace))
	}
	if !reflect.DeepEqual(fast.eqTraces, legacy.eqTraces) {
		t.Errorf("Equalizer per-epoch traces diverge")
		for i := range fast.eqTraces {
			if i < len(legacy.eqTraces) && !reflect.DeepEqual(fast.eqTraces[i], legacy.eqTraces[i]) {
				t.Errorf("SM %d:\nfast:   %+v\nlegacy: %+v", i, fast.eqTraces[i], legacy.eqTraces[i])
				break
			}
		}
	}
	if !reflect.DeepEqual(fast.series, legacy.series) {
		t.Errorf("Monitor epoch series diverge:\nfast:   %+v\nlegacy: %+v", fast.series, legacy.series)
	}
}

// TestFastForwardByteIdenticalAllKernels runs every example kernel under the
// Equalizer runtime with the engine on and off and requires identical
// results, per-epoch decision traces and span telemetry.
func TestFastForwardByteIdenticalAllKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep over the full kernel registry")
	}
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			if k.GridBlocks > 45 {
				k.GridBlocks = 45
			}
			mk := func() gpu.Policy {
				e := core.New(core.EnergyMode)
				e.Record = true
				return e
			}
			tasks := []gpu.Task{{Kernel: k}}
			fast := runCapture(t, tasks, 1, mk, telemetry.MaskSpans, true, 1)
			legacy := runCapture(t, tasks, 1, mk, telemetry.MaskSpans, false, 1)
			compareCaptures(t, fast, legacy)
		})
	}
}

// TestFastForwardByteIdenticalCensusMask compares runs that record the
// per-cycle stall census — the highest-volume telemetry, which the bulk
// engine must replicate event for event: per-cycle SM interleaving, ring
// wrap and drop accounting included.
func TestFastForwardByteIdenticalCensusMask(t *testing.T) {
	mask := telemetry.MaskSpans | telemetry.MaskOf(telemetry.KindStallCensus, telemetry.KindWarpIssue)
	for _, name := range []string{"cutcp", "lbm"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			k, err := kernels.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			k.GridBlocks = 30
			mk := func() gpu.Policy { return core.New(core.PerformanceMode) }
			tasks := []gpu.Task{{Kernel: k}}
			fast := runCapture(t, tasks, 1, mk, mask, true, 1)
			legacy := runCapture(t, tasks, 1, mk, mask, false, 1)
			compareCaptures(t, fast, legacy)
		})
	}
}

// TestFastForwardByteIdenticalMonitorMulti compares a Multi fan-out of a
// static-concurrency policy and the passive Monitor, pinning the Monitor's
// accumulate-span arithmetic (sums, per-epoch series) against the per-cycle
// path.
func TestFastForwardByteIdenticalMonitorMulti(t *testing.T) {
	k, err := kernels.ByName("bp-1")
	if err != nil {
		t.Fatal(err)
	}
	k.GridBlocks = 45
	mk := func() gpu.Policy {
		return policy.Multi{policy.NewStaticBlocks(4), policy.NewMonitor()}
	}
	tasks := []gpu.Task{{Kernel: k}}
	fast := runCapture(t, tasks, 2, mk, telemetry.MaskSpans, true, 1)
	legacy := runCapture(t, tasks, 2, mk, telemetry.MaskSpans, false, 1)
	compareCaptures(t, fast, legacy)
}

// TestFastForwardByteIdenticalConcurrent compares a concurrent two-kernel run
// (disjoint SM partitions, per-partition completion stamps) under Equalizer.
func TestFastForwardByteIdenticalConcurrent(t *testing.T) {
	kc, err := kernels.ByName("cutcp")
	if err != nil {
		t.Fatal(err)
	}
	km, err := kernels.ByName("cfd-1")
	if err != nil {
		t.Fatal(err)
	}
	kc.GridBlocks, km.GridBlocks = 24, 24
	tasks := []gpu.Task{{Kernel: kc}, {Kernel: km}}
	mk := func() gpu.Policy {
		e := core.New(core.EnergyMode)
		e.Record = true
		return e
	}
	fast := runCapture(t, tasks, 1, mk, telemetry.MaskSpans, true, 1)
	legacy := runCapture(t, tasks, 1, mk, telemetry.MaskSpans, false, 1)
	compareCaptures(t, fast, legacy)
}

// TestFastForwardByteIdenticalNilPolicy compares unmanaged back-to-back
// invocations: with no policy the engine has no accumulate hooks and skips
// are bounded only by machine events.
func TestFastForwardByteIdenticalNilPolicy(t *testing.T) {
	k, err := kernels.ByName("mri-q")
	if err != nil {
		t.Fatal(err)
	}
	k.GridBlocks = 30
	tasks := []gpu.Task{{Kernel: k}}
	fast := runCapture(t, tasks, 2, nil, telemetry.MaskSpans, true, 1)
	legacy := runCapture(t, tasks, 2, nil, telemetry.MaskSpans, false, 1)
	compareCaptures(t, fast, legacy)
}
