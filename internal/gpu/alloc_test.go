package gpu

import (
	"testing"

	"equalizer/internal/config"
	"equalizer/internal/invariant"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
)

// allocBudgetPerRun pins the steady-state allocation cost of re-running a
// kernel invocation on a warm machine. The hot loops (sm.SM.Step, the memory
// partition drain) must not allocate per cycle: the remaining budget covers
// per-block work (warp streams at launch) and result assembly only. Raise it
// only with a profile in hand showing the new allocations are per-block, not
// per-cycle.
const allocBudgetPerRun = 1500

// TestSteadyStateRunAllocations is the hot-loop allocation pin, in the
// spirit of telemetry's TestDisabledEmitIsAllocationFree: before the waiter
// pools and the hoisted drain callbacks, a run this size allocated ~5x the
// budget, dominated by per-miss outbox pointers and waiter-slice appends.
// Both cycle engines are pinned: the fast path's bitset masks, calendar
// queues and bulk advance must stay allocation-free per cycle, and the
// legacy escape hatch must not regress either.
func TestSteadyStateRunAllocations(t *testing.T) {
	if invariant.Enabled {
		t.Skip("eqdebug invariant checks box Checkf arguments; the allocation budget pins release builds")
	}
	for _, tc := range []struct {
		name        string
		fastForward bool
	}{
		{"fast", true},
		{"legacy", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			k, err := kernels.ByName("cutcp")
			if err != nil {
				t.Fatal(err)
			}
			k.GridBlocks = 30
			m := MustNew(config.Default(), power.Default(), nil)
			m.SetFastForward(tc.fastForward)
			// Warm up: first run grows the pools, wake queues and stat buffers.
			if _, err := m.RunKernel(k, 0); err != nil {
				t.Fatal(err)
			}
			n := testing.AllocsPerRun(3, func() {
				if _, err := m.RunKernel(k, 0); err != nil {
					t.Fatal(err)
				}
			})
			if n > allocBudgetPerRun {
				t.Errorf("steady-state RunKernel allocates %.0f per run, budget %d", n, allocBudgetPerRun)
			}
		})
	}
}
