package gpu

import (
	"testing"

	"equalizer/internal/config"
	"equalizer/internal/invariant"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
)

// allocBudgetPerRun pins the steady-state allocation cost of re-running a
// kernel invocation on a warm machine. The hot loops (sm.SM.Step, the memory
// partition drain) must not allocate per cycle, and after the calendar
// rebase, in-place warp-stream init and pool-preserving resets nothing
// per-block allocates either: a warm run measures single digits, and the
// budget's headroom covers only allocator noise. Raise it only with a
// profile in hand showing the new allocations are per-run, not per-cycle.
const allocBudgetPerRun = 64

// allocBudgetPerRunSharded adds the shard engine's per-run setup to the
// budget: worker goroutines and the engine descriptor are created at run
// start (per-run, amortised over millions of cycles) — the spin-then-park
// barrier rounds themselves must stay allocation-free, which is why the
// park path reuses one mutex/cond pair instead of a per-round channel.
// Replacing the per-worker job channels with the shared barrier brought a
// warm sharded run under 20 allocations (the previous budget was 192); the
// tightened budget keeps headroom for allocator noise only.
const allocBudgetPerRunSharded = 128

// TestSteadyStateRunAllocations is the hot-loop allocation pin, in the
// spirit of telemetry's TestDisabledEmitIsAllocationFree: before the waiter
// pools and the hoisted drain callbacks, a run this size allocated ~5x the
// budget, dominated by per-miss outbox pointers and waiter-slice appends.
// Both cycle engines are pinned: the fast path's bitset masks, calendar
// queues and bulk advance must stay allocation-free per cycle, and the
// legacy escape hatch must not regress either.
func TestSteadyStateRunAllocations(t *testing.T) {
	if invariant.Enabled {
		t.Skip("eqdebug invariant checks box Checkf arguments; the allocation budget pins release builds")
	}
	for _, tc := range []struct {
		name        string
		fastForward bool
		shards      int
		budget      float64
	}{
		{"fast", true, 1, allocBudgetPerRun},
		{"legacy", false, 1, allocBudgetPerRun},
		{"fast-sharded", true, 4, allocBudgetPerRunSharded},
		{"legacy-sharded", false, 4, allocBudgetPerRunSharded},
	} {
		t.Run(tc.name, func(t *testing.T) {
			k, err := kernels.ByName("cutcp")
			if err != nil {
				t.Fatal(err)
			}
			k.GridBlocks = 30
			m := MustNew(config.Default(), power.Default(), nil)
			m.SetFastForward(tc.fastForward)
			m.SetSMShards(tc.shards)
			// Warm up: first run grows the pools, wake queues and stat buffers.
			if _, err := m.RunKernel(k, 0); err != nil {
				t.Fatal(err)
			}
			n := testing.AllocsPerRun(3, func() {
				if _, err := m.RunKernel(k, 0); err != nil {
					t.Fatal(err)
				}
			})
			if n > tc.budget {
				t.Errorf("steady-state RunKernel allocates %.0f per run, budget %.0f", n, tc.budget)
			}
		})
	}
}
