package gpu

import (
	"testing"

	"equalizer/internal/clock"
	"equalizer/internal/config"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
)

// cycleRecorder verifies the policy contract: OnSMCycle fires once per SM
// cycle with a monotonically increasing in-invocation counter.
type cycleRecorder struct {
	cycles []int64
	resets int
}

func (r *cycleRecorder) Name() string                   { return "recorder" }
func (r *cycleRecorder) Reset(*Machine, kernels.Kernel) { r.resets++; r.cycles = r.cycles[:0] }
func (r *cycleRecorder) OnSMCycle(_ *Machine, _ clock.Time, c int64) {
	r.cycles = append(r.cycles, c)
}

func TestPolicyCycleContract(t *testing.T) {
	rec := &cycleRecorder{}
	m, err := New(config.Default(), power.Default(), rec)
	if err != nil {
		t.Fatal(err)
	}
	k := smallKernel(t, "cutcp", 15)
	if _, err := m.RunKernel(k, 0); err != nil {
		t.Fatal(err)
	}
	if rec.resets != 1 {
		t.Fatalf("policy reset %d times, want 1", rec.resets)
	}
	for i, c := range rec.cycles {
		if c != int64(i+1) {
			t.Fatalf("cycle %d delivered as %d", i+1, c)
		}
	}
	// Second invocation starts the counter over.
	if _, err := m.RunKernel(k, 0); err != nil {
		t.Fatal(err)
	}
	if rec.resets != 2 || rec.cycles[0] != 1 {
		t.Fatal("invocation restart did not reset the cycle counter")
	}
}

func TestVRMDelayPostponesLevelChange(t *testing.T) {
	m := newMachine(t)
	// Request a boost mid-run via a policy that fires once.
	fired := false
	p := &funcPolicy{fn: func(machine *Machine, _ clock.Time, c int64) {
		if c == 100 && !fired {
			fired = true
			machine.RequestSMLevel(config.VFHigh)
			if machine.SMLevel() != config.VFNormal {
				t.Error("level changed instantly; VRM delay ignored")
			}
		}
		if c == 100+int64(machine.Config().VRMTransitionCycles)+10 {
			if machine.SMLevel() != config.VFHigh {
				t.Error("level not applied after the VRM delay")
			}
		}
	}}
	m.policy = p
	if _, err := m.RunKernel(smallKernel(t, "cutcp", 15), 0); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("test policy never fired")
	}
}

type funcPolicy struct {
	fn func(*Machine, clock.Time, int64)
}

func (p *funcPolicy) Name() string                   { return "func" }
func (p *funcPolicy) Reset(*Machine, kernels.Kernel) {}
func (p *funcPolicy) OnSMCycle(m *Machine, now clock.Time, c int64) {
	p.fn(m, now, c)
}

func TestBlocksRemainingDrains(t *testing.T) {
	m := newMachine(t)
	var sawMid bool
	m.policy = &funcPolicy{fn: func(machine *Machine, _ clock.Time, c int64) {
		if r := machine.BlocksRemaining(); r > 0 && r < 30 {
			sawMid = true
		}
	}}
	if _, err := m.RunKernel(smallKernel(t, "cutcp", 30), 0); err != nil {
		t.Fatal(err)
	}
	if m.BlocksRemaining() != 0 {
		t.Fatalf("blocks remaining = %d at end", m.BlocksRemaining())
	}
	_ = sawMid // mid-run draining is timing-dependent; end state is the contract
}

func TestSetTargetBlocksClampsToKernelLimit(t *testing.T) {
	m := newMachine(t)
	m.policy = &funcPolicy{fn: func(machine *Machine, _ clock.Time, c int64) {
		if c == 10 {
			machine.SetTargetBlocks(0, 99)
			if tb := machine.SM(0).TargetBlocks(); tb > machine.MaxResidentBlocks() {
				t.Errorf("target %d exceeds kernel occupancy limit %d", tb, machine.MaxResidentBlocks())
			}
		}
	}}
	k := smallKernel(t, "bfs-2", 0) // occupancy limit 3
	if _, err := m.RunKernel(k, 0); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyBreakdownComponentsPresent(t *testing.T) {
	m := newMachine(t)
	res, err := m.RunKernel(smallKernel(t, "lbm", 105), 0)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Energy
	if b.Leakage <= 0 || b.SMDynamic <= 0 || b.SMClock <= 0 ||
		b.MemClock <= 0 || b.Standby <= 0 || b.DRAMAccess <= 0 {
		t.Fatalf("missing energy component: %+v", b)
	}
	// A streaming kernel must burn real DRAM energy.
	if b.DRAMAccess < 0.05*b.Total() {
		t.Fatalf("DRAM energy share %.3f of total; too small for lbm", b.DRAMAccess/b.Total())
	}
}

func TestTextureKernelEndToEnd(t *testing.T) {
	m := newMachine(t)
	res, err := m.RunKernel(smallKernel(t, "leuko-1", 60), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SMCycles <= 0 {
		t.Fatal("no progress")
	}
	// leuko-1 is DRAM-bound through the texture unit.
	if res.DRAMUtil < 0.5 {
		t.Fatalf("leuko-1 DRAM util = %.2f, want bandwidth-bound", res.DRAMUtil)
	}
}

func TestBankedDRAMOption(t *testing.T) {
	cfg := config.WithBankedDRAM(config.Default())
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, power.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warp streams interleave at the controller, so even sequential
	// per-warp traffic pays row misses between warps: the banked model is
	// slower than the flat gate, bounded by the row-miss penalty (4x).
	res, err := m.RunKernel(smallKernel(t, "lbm", 105), 0)
	if err != nil {
		t.Fatal(err)
	}
	flat := newMachine(t)
	base, err := flat.RunKernel(smallKernel(t, "lbm", 105), 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.TimePS) / float64(base.TimePS)
	if ratio < 1.0 || ratio > 4.5 {
		t.Fatalf("banked/flat time ratio = %.2f, want within the row-miss penalty envelope", ratio)
	}

	// A divergent kernel scatters across rows and must pay row misses:
	// slower on the banked model than the flat one.
	mB, _ := New(cfg, power.Default(), nil)
	divB, err := mB.RunKernel(smallKernel(t, "kmn", 30), 0)
	if err != nil {
		t.Fatal(err)
	}
	mF := newMachine(t)
	divF, err := mF.RunKernel(smallKernel(t, "kmn", 30), 0)
	if err != nil {
		t.Fatal(err)
	}
	if divB.TimePS <= divF.TimePS {
		t.Fatalf("scattered kernel on banked DRAM (%d ps) not slower than flat (%d ps)",
			divB.TimePS, divF.TimePS)
	}
}

func TestConfigRejectsBadBankedDRAM(t *testing.T) {
	g := config.Default()
	g.DRAMBanks = 8 // missing row size
	if err := g.Validate(); err == nil {
		t.Fatal("banked config without RowBytes accepted")
	}
	g = config.WithBankedDRAM(config.Default())
	g.DRAMRowMissInterval = 0
	if err := g.Validate(); err == nil {
		t.Fatal("row-miss interval below service interval accepted")
	}
}
