package gpu

import (
	"fmt"

	"equalizer/internal/dram"
	"equalizer/internal/telemetry"
)

// Collect snapshots the machine's accumulated statistics into a telemetry
// registry as named, labeled series: per-SM counters and gauges, the shared
// memory partition (L2, interconnect, DRAM), VF-domain residency, and
// cross-SM distribution histograms. Counters are cumulative over the
// machine's lifetime, so collecting after every invocation yields
// monotonically increasing Prometheus-style series.
func (m *Machine) Collect(reg *telemetry.Registry) {
	ipcHist := reg.Histogram("eq_sm_ipc",
		"distribution of per-SM issued instructions per cycle",
		[]float64{0.1, 0.25, 0.5, 0.75, 1, 1.25, 1.5, 2}, nil)
	l1Hist := reg.Histogram("eq_sm_l1_hit_rate",
		"distribution of per-SM L1 demand hit rates",
		[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}, nil)

	for i, s := range m.sms {
		sl := fmt.Sprintf("%d", i)
		st := s.Stats()
		reg.Counter("eq_sm_issued_total", "warp instructions issued per pipeline",
			telemetry.Labels{"sm": sl, "pipe": "alu"}).Set(st.IssuedALU)
		reg.Counter("eq_sm_issued_total", "warp instructions issued per pipeline",
			telemetry.Labels{"sm": sl, "pipe": "sfu"}).Set(st.IssuedSFU)
		reg.Counter("eq_sm_issued_total", "warp instructions issued per pipeline",
			telemetry.Labels{"sm": sl, "pipe": "mem"}).Set(st.IssuedMEM)
		reg.Counter("eq_sm_issued_total", "warp instructions issued per pipeline",
			telemetry.Labels{"sm": sl, "pipe": "tex"}).Set(st.IssuedTEX)
		reg.Counter("eq_sm_cycles_total", "SM cycles stepped",
			telemetry.Labels{"sm": sl, "state": "total"}).Set(st.Cycles)
		reg.Counter("eq_sm_cycles_total", "SM cycles stepped",
			telemetry.Labels{"sm": sl, "state": "active"}).Set(st.ActiveCycles)
		reg.Counter("eq_sm_blocks_total", "thread blocks launched and finished",
			telemetry.Labels{"sm": sl, "event": "launched"}).Set(st.BlocksLaunched)
		reg.Counter("eq_sm_blocks_total", "thread blocks launched and finished",
			telemetry.Labels{"sm": sl, "event": "finished"}).Set(st.BlocksFinished)
		reg.Counter("eq_sm_barrier_releases_total", "whole-block barrier releases",
			telemetry.Labels{"sm": sl}).Set(st.BarrierReleases)
		reg.Gauge("eq_sm_resident_blocks", "blocks currently resident",
			telemetry.Labels{"sm": sl}).Set(float64(s.ResidentBlocks()))
		reg.Gauge("eq_sm_target_blocks", "concurrency ceiling set by the policy",
			telemetry.Labels{"sm": sl}).Set(float64(s.TargetBlocks()))
		reg.Gauge("eq_sm_live_warps", "resident unfinished warps",
			telemetry.Labels{"sm": sl}).Set(float64(s.LiveWarps()))

		l1 := s.L1().Stats()
		reg.Counter("eq_l1_accesses_total", "L1 probes by outcome",
			telemetry.Labels{"sm": sl, "result": "hit"}).Set(l1.Hits)
		reg.Counter("eq_l1_accesses_total", "L1 probes by outcome",
			telemetry.Labels{"sm": sl, "result": "miss"}).Set(l1.Misses)
		reg.Counter("eq_l1_accesses_total", "L1 probes by outcome",
			telemetry.Labels{"sm": sl, "result": "merged"}).Set(l1.Merged)
		reg.Counter("eq_l1_accesses_total", "L1 probes by outcome",
			telemetry.Labels{"sm": sl, "result": "reject"}).Set(l1.Rejects)
		reg.Counter("eq_l1_evictions_total", "L1 lines evicted by fills",
			telemetry.Labels{"sm": sl}).Set(l1.Evictions)

		ipcHist.Observe(st.IPC())
		l1Hist.Observe(l1.HitRate())
	}

	l2 := m.l2.Stats()
	part := telemetry.Labels{"partition": "0"}
	reg.Counter("eq_l2_accesses_total", "L2 probes by outcome",
		telemetry.Labels{"partition": "0", "result": "hit"}).Set(l2.Hits)
	reg.Counter("eq_l2_accesses_total", "L2 probes by outcome",
		telemetry.Labels{"partition": "0", "result": "miss"}).Set(l2.Misses)
	reg.Counter("eq_l2_accesses_total", "L2 probes by outcome",
		telemetry.Labels{"partition": "0", "result": "merged"}).Set(l2.Merged)
	reg.Counter("eq_l2_accesses_total", "L2 probes by outcome",
		telemetry.Labels{"partition": "0", "result": "reject"}).Set(l2.Rejects)
	reg.Counter("eq_l2_evictions_total", "L2 lines evicted by fills", part).Set(l2.Evictions)

	net := m.net.Stats()
	reg.Counter("eq_icnt_requests_total", "interconnect requests by event",
		telemetry.Labels{"partition": "0", "event": "pushed"}).Set(net.Pushed)
	reg.Counter("eq_icnt_requests_total", "interconnect requests by event",
		telemetry.Labels{"partition": "0", "event": "delivered"}).Set(net.Delivered)
	reg.Counter("eq_icnt_requests_total", "interconnect requests by event",
		telemetry.Labels{"partition": "0", "event": "stalled"}).Set(net.Stalled)
	reg.Counter("eq_icnt_requests_total", "interconnect requests by event",
		telemetry.Labels{"partition": "0", "event": "blocked"}).Set(net.BlockedDeliveries)

	ds := m.dram.Stats()
	reg.Counter("eq_dram_requests_total", "DRAM requests by event",
		telemetry.Labels{"partition": "0", "event": "enqueued"}).Set(ds.Enqueued)
	reg.Counter("eq_dram_requests_total", "DRAM requests by event",
		telemetry.Labels{"partition": "0", "event": "serviced"}).Set(ds.Serviced)
	reg.Counter("eq_dram_requests_total", "DRAM requests by event",
		telemetry.Labels{"partition": "0", "event": "rejected"}).Set(ds.Rejected)
	reg.Counter("eq_dram_busy_cycles_total", "memory cycles with the data bus busy",
		part).Set(ds.BusyCycles)
	reg.Gauge("eq_dram_utilization", "fraction of observed cycles the bus was busy",
		part).Set(ds.Utilization())
	reg.Gauge("eq_dram_mean_queue_depth", "average queued requests per cycle",
		part).Set(ds.MeanQueueDepth())
	if banked, ok := m.dram.(*dram.Banked); ok {
		bs := banked.BankedStats()
		reg.Counter("eq_dram_row_accesses_total", "FR-FCFS row-buffer outcomes",
			telemetry.Labels{"partition": "0", "result": "hit"}).Set(bs.RowHits)
		reg.Counter("eq_dram_row_accesses_total", "FR-FCFS row-buffer outcomes",
			telemetry.Labels{"partition": "0", "result": "miss"}).Set(bs.RowMisses)
	}

	reg.Gauge("eq_vf_level", "effective VF level ordinal (0=low 1=normal 2=high)",
		telemetry.Labels{"domain": "sm"}).Set(float64(m.smDomain.Level()))
	reg.Gauge("eq_vf_level", "effective VF level ordinal (0=low 1=normal 2=high)",
		telemetry.Labels{"domain": "mem"}).Set(float64(m.memDomain.Level()))
	res := m.residency()
	levels := [...]string{"low", "normal", "high"}
	for i, name := range levels {
		reg.Counter("eq_vf_residency_ps_total", "wall time spent at each VF level",
			telemetry.Labels{"domain": "sm", "level": name}).Set(uint64(res.SM[i]))
		reg.Counter("eq_vf_residency_ps_total", "wall time spent at each VF level",
			telemetry.Labels{"domain": "mem", "level": name}).Set(uint64(res.Mem[i]))
	}

	ss := m.shardStats
	reg.Gauge("eq_shard_workers", "effective intra-run SM shard count of the last run",
		nil).Set(float64(ss.Shards))
	reg.Counter("eq_shard_barrier_waits_total", "phase-barrier rounds completed by the shard engine",
		nil).Set(ss.Barriers)
	reg.Counter("eq_shard_cycles_total", "SM cycles stepped by shard workers, by mode",
		telemetry.Labels{"mode": "step"}).Set(ss.StepCycles)
	reg.Counter("eq_shard_cycles_total", "SM cycles stepped by shard workers, by mode",
		telemetry.Labels{"mode": "fastforward"}).Set(ss.FastForwardCycles)
	reg.Counter("eq_shard_sequential_fallbacks_total", "sharded runs that fell back to the sequential loop (policy observation hooks)",
		nil).Set(ss.SequentialRuns)
	reg.Counter("eq_shard_batched_cycles_total", "SM cycles retired inside idle-window batches (one barrier round per window)",
		nil).Set(ss.BatchedCycles)
	reg.Counter("eq_shard_mem_rounds_total", "memory-domain cycles whose per-SM endpoint work was dispatched to shard workers",
		nil).Set(ss.MemRounds)

	if m.bus != nil {
		reg.Counter("eq_probe_events_total", "events retained on the probe bus",
			nil).Set(uint64(m.bus.Len()))
		reg.Counter("eq_probe_events_dropped_total", "events lost to ring wrap-around",
			nil).Set(m.bus.Dropped())
	}
}
