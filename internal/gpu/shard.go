// Intra-run SM parallelism: the shard engine partitions the machine's SMs
// across worker goroutines that step their shard for one cycle (or retire a
// fast-forward span, or replay a batched idle window) and meet at a phase
// barrier before any shared work runs.
//
// Legality: SMs interact only through the icnt/L2/DRAM boundary, which the
// machine steps on the separately clocked memory domain, and through the
// telemetry bus. Within one SM-domain cycle, SM.Step touches nothing but the
// SM's own state (warp contexts, L1, calendars, outbox) — the memory domain,
// block dispatch, policy hooks and the done check all run after the barrier
// on the coordinating goroutine, exactly where the sequential loop runs them.
// Telemetry is the one shared sink: each SM emits into a private stage that
// the coordinator flushes in SM index order at the barrier, reproducing the
// sequential loop's event interleaving byte for byte (see telemetry.NewStage;
// batched windows flush the stages through a timestamp-bounded merge so the
// replay stays cycle-major). Results are therefore identical at any shard
// count; the differential suite in shard_test.go holds the engine to that.
//
// The phase barrier itself is a sense-reversing spin-then-park barrier
// (internal/barrier) over shards+1 parties: the coordinator publishes a job
// in e.job, everyone meets once so the workers observe it, the workers run,
// and everyone meets again so the coordinator observes every effect. A
// steady-state round is two barrier waits with no scheduler involvement —
// the channel broadcast + WaitGroup round trip this replaces cost two
// scheduler hops per simulated cycle and kept sharded runs slower than
// sequential on short cycles.
package gpu

import (
	"runtime"

	"equalizer/internal/barrier"
	"equalizer/internal/clock"
	"equalizer/internal/icnt"
)

// shardJobKind selects the phase a dispatch runs on every shard.
type shardJobKind uint8

const (
	// shardJobStep advances every SM in the shard by one cycle.
	shardJobStep shardJobKind = iota
	// shardJobFastForward retires a quiescent span on every SM in the shard.
	shardJobFastForward
	// shardJobStepN advances every SM in the shard by n real cycles under a
	// proven-idle memory domain (idle-window batching): one barrier round
	// covers n cycles.
	shardJobStepN
	// shardJobMemEndpoints runs the per-SM endpoint half of one memory-domain
	// cycle: L1 fills/wakes for staged deliveries and outbox→icnt port pushes,
	// each worker touching only its own SM range.
	shardJobMemEndpoints
	// shardJobStop terminates the workers; they exit without a done phase.
	shardJobStop
)

// shardJob is one phase-barrier work item, published in the engine's job
// slot before the start barrier.
type shardJob struct {
	kind    shardJobKind
	now     clock.Time // cycle boundary (shardJobStep, shardJobMemEndpoints)
	period  clock.Time // SM clock period
	n       int64      // span length (shardJobFastForward, shardJobStepN)
	firstPS int64      // first boundary (shardJobFastForward, shardJobStepN)
}

// shardSlot is one worker's result cell, padded so concurrently written
// slots never share a cache line.
type shardSlot struct {
	active int // SMs in the shard with resident blocks
	pushed int // outbox requests port-pushed (shardJobMemEndpoints)
	_      [112]byte
}

// ShardStats reports the shard engine's scheduling counters for one machine.
type ShardStats struct {
	// Shards is the configured shard count (1 = sequential engine).
	Shards int
	// Barriers counts phase-barrier rounds. A parallel dispatch costs two
	// rounds (job publish, effect collection); engine teardown costs one.
	Barriers uint64
	// StepCycles counts SM-cycles advanced through per-cycle and batched
	// dispatches, summed over shards.
	StepCycles uint64
	// BatchedCycles counts the subset of StepCycles retired through
	// idle-window batch dispatches (shardJobStepN), summed over shards.
	BatchedCycles uint64
	// FastForwardCycles counts SM-cycles retired in bulk through
	// shardJobFastForward dispatches, summed over shards.
	FastForwardCycles uint64
	// MemRounds counts memory-domain cycles whose endpoint work ran sharded.
	MemRounds uint64
	// SequentialRuns counts invocations that fell back to the sequential
	// loop despite a shard request (policy hooks observing the SMs).
	SequentialRuns uint64
}

// shardEngine owns the worker pool of one sharded invocation. It is created
// at run start and stopped when the invocation returns; workers and the
// coordinator meet at a spin-then-park phase barrier (the happens-before
// edge that publishes the job to the workers and hands the SM state back to
// the coordinator).
type shardEngine struct {
	m      *Machine
	ranges [][2]int // SM index range [lo, hi) per shard
	bar    *barrier.Barrier
	job    shardJob // published by the coordinator before the start round
	sense  uint32   // coordinator's private barrier sense
	slots  []shardSlot

	barriers      uint64
	stepCycles    uint64
	batchedCycles uint64
	ffCycles      uint64
	memRounds     uint64
}

// shardRanges splits n SMs into k contiguous, near-even ranges.
func shardRanges(n, k int) [][2]int {
	ranges := make([][2]int, k)
	for i := 0; i < k; i++ {
		ranges[i] = [2]int{i * n / k, (i + 1) * n / k}
	}
	return ranges
}

// newShardEngine starts one worker goroutine per shard. The caller owns
// calling stop before the machine is stepped by anyone else.
func newShardEngine(m *Machine, shards int) *shardEngine {
	e := &shardEngine{
		m:      m,
		ranges: shardRanges(len(m.sms), shards),
		bar:    barrier.New(shards+1, barrier.DefaultSpin(shards)),
		slots:  make([]shardSlot, shards),
	}
	for w := range e.slots {
		//eqlint:allow nodeterminism -- workers mutate disjoint SM ranges between phase barriers; every merge below is in fixed shard order
		go e.worker(w)
	}
	return e
}

// stop terminates the workers. The engine must be idle (no dispatch in
// flight). Workers observing the stop job exit without a done phase, so the
// coordinator only meets the start round.
func (e *shardEngine) stop() {
	e.job = shardJob{kind: shardJobStop}
	e.bar.Wait(&e.sense)
	e.barriers++
}

// worker steps the SMs of shard w, in index order, for every dispatched job.
// This is the shard-worker goroutine body: everything reachable from here
// runs concurrently with the other shards and may only touch state owned
// by SMs [lo, hi) — shardphase checks that transitively. It is also the
// inner per-cycle loop, so allocfree holds it allocation-free.
//
//eqlint:shardroot
//eqlint:hotpath
func (e *shardEngine) worker(w int) {
	lo, hi := e.ranges[w][0], e.ranges[w][1]
	var sense uint32
	for {
		e.bar.Wait(&sense) // start round: the coordinator's job is visible
		job := e.job
		if job.kind == shardJobStop {
			return
		}
		switch job.kind {
		case shardJobStep:
			active := 0
			for i := lo; i < hi; i++ {
				s := e.m.sms[i]
				s.Step(job.now, job.period)
				if s.ResidentBlocks() > 0 {
					active++
				}
			}
			e.slots[w].active = active
		case shardJobStepN:
			// SM-outer, cycle-inner: SMs are independent for the whole
			// window (the batch witness proves no SM touches the memory
			// boundary), so per-SM cycle order equals the interleaved
			// sequential order and locality is better. Residency is frozen
			// across the window, so the active count from the final state
			// holds for every batched cycle.
			active := 0
			for i := lo; i < hi; i++ {
				s := e.m.sms[i]
				for j := int64(0); j < job.n; j++ {
					s.Step(clock.Time(job.firstPS+j*int64(job.period)), job.period)
				}
				if s.ResidentBlocks() > 0 {
					active++
				}
			}
			e.slots[w].active = active
		case shardJobFastForward:
			active := 0
			for i := lo; i < hi; i++ {
				s := e.m.sms[i]
				s.FastForward(job.n, job.firstPS, int64(job.period))
				if s.ResidentBlocks() > 0 {
					active++
				}
			}
			e.slots[w].active = active
		case shardJobMemEndpoints:
			e.slots[w].pushed = e.memEndpoints(lo, hi, job.now)
		}
		e.bar.Wait(&sense) // done round: effects published to the coordinator
	}
}

// memEndpoints runs the per-SM half of one memory-domain cycle for SMs
// [lo, hi): deliver the cycle's staged fills/replies to their owning SMs in
// staged (sequential) order, then drain full outboxes into the SM's private
// icnt port. Only runs when the machine proved the cycle emission-free
// (memShardable) — DeliverLine and PortPush then touch nothing but SM-owned
// state and the SM's own port queue.
//
//eqlint:hotpath
func (e *shardEngine) memEndpoints(lo, hi int, now clock.Time) int {
	//eqlint:allow shardphase -- the Machine pointer is only dereferenced for SM-owned state in [lo, hi); each mutating site below carries its own per-write justification
	m := e.m
	for _, r := range m.memDeliveries {
		if r.SM >= lo && r.SM < hi {
			//eqlint:allow shardphase -- r.SM is range-checked against this worker's own shard; the staged list is read-only during the round
			m.sms[r.SM].DeliverLine(r.Line, now)
		}
	}
	pushed := 0
	for i := lo; i < hi; i++ {
		s := m.sms[i]
		if s.OutboxFull() && m.net.CanPush(i) {
			if r, ok := s.TakeOutbox(); ok {
				//eqlint:allow shardphase -- PortPush appends only to SM i's private port queue; shared stats move via AddPushed on the coordinator
				if m.net.PortPush(icnt.Request{SM: r.SM, Line: r.Line}) {
					pushed++
				}
			}
		}
	}
	return pushed
}

// dispatch publishes one job, meets the two-phase barrier, and returns the
// machine-wide count of SMs with resident blocks (or, for memory-endpoint
// jobs, the number of port pushes). On return every SM mutation made by the
// workers is visible to the coordinator. This is the sharded loop's
// canonical cycle-advance site: the engine's step/ff cycle tallies move
// only here.
//
//eqlint:cycle-owner
//eqlint:barrierphase
//eqlint:hotpath
func (e *shardEngine) dispatch(job shardJob) int {
	// Stage every SM's telemetry before the workers run and flush in SM
	// index order after the barrier: concurrent emission never touches the
	// shared ring, and the replay order is the sequential loop's.
	for _, st := range e.m.stages {
		st.Buffer()
	}
	e.job = job
	e.bar.Wait(&e.sense) // start round: workers wake with the job visible
	e.bar.Wait(&e.sense) // done round: every worker effect is visible
	e.barriers += 2
	cycles := uint64(len(e.m.sms))
	switch job.kind {
	case shardJobFastForward:
		e.ffCycles += cycles * uint64(job.n)
	case shardJobStepN:
		e.stepCycles += cycles * uint64(job.n)
		e.batchedCycles += cycles * uint64(job.n)
	case shardJobMemEndpoints:
		e.memRounds++
	default:
		e.stepCycles += cycles
	}
	if job.kind == shardJobStepN {
		// Workers stepped SM-outer, so each stage holds its SM's whole
		// window in cycle order. Replay cycle-major, SM-minor — the
		// sequential loop's global order — by draining each stage up to
		// successive cycle boundaries.
		for j := int64(0); j < job.n; j++ {
			bound := job.firstPS + j*int64(job.period)
			for _, st := range e.m.stages {
				st.FlushUpTo(bound)
			}
		}
	}
	for _, st := range e.m.stages {
		st.Flush()
	}
	n := 0
	if job.kind == shardJobMemEndpoints {
		for w := range e.slots {
			n += e.slots[w].pushed
		}
	} else {
		for w := range e.slots {
			n += e.slots[w].active
		}
	}
	return n
}

// nextEventReduce computes the machine-wide quiescence witness as a
// per-shard minimum reduction: the earliest NextEventAt over every SM, or
// ok=false as soon as any SM cannot fast-forward. Runs on the coordinator —
// the reads are cheap and every SM is quiescent at a phase barrier — but
// reduces shard by shard so the merge order is fixed regardless of shard
// geometry (min is order-independent; the shape documents the contract).
//
//eqlint:hotpath
func (e *shardEngine) nextEventReduce() (int64, bool) {
	w := int64(0)
	first := true
	for _, r := range e.ranges {
		for i := r[0]; i < r[1]; i++ {
			at, ok := e.m.sms[i].NextEventAt()
			if !ok {
				return 0, false
			}
			if first || at < w {
				w, first = at, false
			}
		}
	}
	return w, true
}

// AutoShards picks a default shard count for one machine: the cores left
// after dividing the host among `parallelism` concurrent simulations, capped
// at the SM count. Callers running one simulation at a time (eqsim, the
// engine benchmark) pass parallelism 1 and get min(GOMAXPROCS, numSMs);
// a saturated worker pool (eqsimd, eqbench sweeps) gets 1 so intra-run
// workers never oversubscribe the pool's cores.
func AutoShards(parallelism, numSMs int) int {
	return AutoShardsAt(runtime.GOMAXPROCS(0), parallelism, numSMs)
}

// AutoShardsAt is AutoShards with the host's scheduler width injected, so
// callers whose worker pool can be resized at runtime (the eqsimd tuner)
// recompute the shard width against the live pool size, and tests can probe
// the policy with synthetic core counts.
func AutoShardsAt(procs, parallelism, numSMs int) int {
	if parallelism < 1 {
		parallelism = procs
	}
	shards := procs / parallelism
	if shards > numSMs {
		shards = numSMs
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}
