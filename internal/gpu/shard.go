// Intra-run SM parallelism: the shard engine partitions the machine's SMs
// across worker goroutines that step their shard for one cycle (or retire a
// fast-forward span) and meet at a phase barrier before any shared work runs.
//
// Legality: SMs interact only through the icnt/L2/DRAM boundary, which the
// machine steps on the separately clocked memory domain, and through the
// telemetry bus. Within one SM-domain cycle, SM.Step touches nothing but the
// SM's own state (warp contexts, L1, calendars, outbox) — the memory domain,
// block dispatch, policy hooks and the done check all run after the barrier
// on the coordinating goroutine, exactly where the sequential loop runs them.
// Telemetry is the one shared sink: each SM emits into a private stage that
// the coordinator flushes in SM index order at the barrier, reproducing the
// sequential loop's event interleaving byte for byte (see telemetry.NewStage).
// Results are therefore identical at any shard count; the differential suite
// in shard_test.go holds the engine to that.
package gpu

import (
	"runtime"
	"sync"

	"equalizer/internal/clock"
)

// shardJobKind selects the phase a dispatch runs on every shard.
type shardJobKind uint8

const (
	// shardJobStep advances every SM in the shard by one cycle.
	shardJobStep shardJobKind = iota
	// shardJobFastForward retires a quiescent span on every SM in the shard.
	shardJobFastForward
)

// shardJob is one phase-barrier work item, broadcast to every worker.
type shardJob struct {
	kind    shardJobKind
	now     clock.Time // cycle boundary (shardJobStep)
	period  clock.Time // SM clock period
	n       int64      // span length (shardJobFastForward)
	firstPS int64      // first skipped boundary (shardJobFastForward)
}

// shardSlot is one worker's result cell, padded so concurrently written
// slots never share a cache line.
type shardSlot struct {
	active int // SMs in the shard with resident blocks
	_      [120]byte
}

// ShardStats reports the shard engine's scheduling counters for one machine.
type ShardStats struct {
	// Shards is the configured shard count (1 = sequential engine).
	Shards int
	// Barriers counts phase-barrier rounds (one per parallel dispatch).
	Barriers uint64
	// StepCycles counts SM-cycles advanced through shardJobStep dispatches,
	// summed over shards.
	StepCycles uint64
	// FastForwardCycles counts SM-cycles retired in bulk through
	// shardJobFastForward dispatches, summed over shards.
	FastForwardCycles uint64
	// SequentialRuns counts invocations that fell back to the sequential
	// loop despite a shard request (policy hooks observing the SMs).
	SequentialRuns uint64
}

// shardEngine owns the worker pool of one sharded invocation. It is created
// at run start and stopped when the invocation returns; workers block on
// their job channel between phases, and the coordinator's WaitGroup round
// trip is the phase barrier (and the happens-before edge that hands the SM
// state back to the coordinator).
type shardEngine struct {
	m      *Machine
	ranges [][2]int // SM index range [lo, hi) per shard
	jobs   []chan shardJob
	slots  []shardSlot
	wg     sync.WaitGroup

	barriers   uint64
	stepCycles uint64
	ffCycles   uint64
}

// shardRanges splits n SMs into k contiguous, near-even ranges.
func shardRanges(n, k int) [][2]int {
	ranges := make([][2]int, k)
	for i := 0; i < k; i++ {
		ranges[i] = [2]int{i * n / k, (i + 1) * n / k}
	}
	return ranges
}

// newShardEngine starts one worker goroutine per shard. The caller owns
// calling stop before the machine is stepped by anyone else.
func newShardEngine(m *Machine, shards int) *shardEngine {
	e := &shardEngine{
		m:      m,
		ranges: shardRanges(len(m.sms), shards),
		jobs:   make([]chan shardJob, shards),
		slots:  make([]shardSlot, shards),
	}
	for w := range e.jobs {
		e.jobs[w] = make(chan shardJob, 1)
		//eqlint:allow nodeterminism -- workers mutate disjoint SM ranges between phase barriers; every merge below is in fixed shard order
		go e.worker(w)
	}
	return e
}

// stop terminates the workers. The engine must be idle (no dispatch in
// flight).
func (e *shardEngine) stop() {
	for _, ch := range e.jobs {
		close(ch)
	}
}

// worker steps the SMs of shard w, in index order, for every dispatched job.
// This is the shard-worker goroutine body: everything reachable from here
// runs concurrently with the other shards and may only touch state owned
// by SMs [lo, hi) — shardphase checks that transitively. It is also the
// inner per-cycle loop, so allocfree holds it allocation-free.
//
//eqlint:shardroot
//eqlint:hotpath
func (e *shardEngine) worker(w int) {
	lo, hi := e.ranges[w][0], e.ranges[w][1]
	for job := range e.jobs[w] {
		active := 0
		switch job.kind {
		case shardJobStep:
			for i := lo; i < hi; i++ {
				s := e.m.sms[i]
				s.Step(job.now, job.period)
				if s.ResidentBlocks() > 0 {
					active++
				}
			}
		case shardJobFastForward:
			for i := lo; i < hi; i++ {
				s := e.m.sms[i]
				s.FastForward(job.n, job.firstPS, int64(job.period))
				if s.ResidentBlocks() > 0 {
					active++
				}
			}
		}
		e.slots[w].active = active
		e.wg.Done()
	}
}

// dispatch broadcasts one job, waits at the phase barrier, and returns the
// machine-wide count of SMs with resident blocks. On return every SM
// mutation made by the workers is visible to the coordinator. This is the
// sharded loop's canonical cycle-advance site: the engine's step/ff cycle
// tallies move only here.
//
//eqlint:cycle-owner
//eqlint:barrierphase
//eqlint:hotpath
func (e *shardEngine) dispatch(job shardJob) int {
	// Stage every SM's telemetry before the workers run and flush in SM
	// index order after the barrier: concurrent emission never touches the
	// shared ring, and the replay order is the sequential loop's.
	for _, st := range e.m.stages {
		st.Buffer()
	}
	e.wg.Add(len(e.jobs))
	for _, ch := range e.jobs {
		//eqlint:allow nodeterminism -- phase-barrier broadcast; the WaitGroup round trip below serialises all effects before the coordinator resumes
		ch <- job
	}
	e.wg.Wait()
	e.barriers++
	cycles := uint64(len(e.m.sms))
	if job.kind == shardJobFastForward {
		cycles *= uint64(job.n)
		e.ffCycles += cycles
	} else {
		e.stepCycles += cycles
	}
	for _, st := range e.m.stages {
		st.Flush()
	}
	active := 0
	for w := range e.slots {
		active += e.slots[w].active
	}
	return active
}

// nextEventReduce computes the machine-wide quiescence witness as a
// per-shard minimum reduction: the earliest NextEventAt over every SM, or
// ok=false as soon as any SM cannot fast-forward. Runs on the coordinator —
// the reads are cheap and every SM is quiescent at a phase barrier — but
// reduces shard by shard so the merge order is fixed regardless of shard
// geometry (min is order-independent; the shape documents the contract).
//
//eqlint:hotpath
func (e *shardEngine) nextEventReduce() (int64, bool) {
	w := int64(0)
	first := true
	for _, r := range e.ranges {
		for i := r[0]; i < r[1]; i++ {
			at, ok := e.m.sms[i].NextEventAt()
			if !ok {
				return 0, false
			}
			if first || at < w {
				w, first = at, false
			}
		}
	}
	return w, true
}

// AutoShards picks a default shard count for one machine: the cores left
// after dividing the host among `parallelism` concurrent simulations, capped
// at the SM count. Callers running one simulation at a time (eqsim, the
// engine benchmark) pass parallelism 1 and get min(GOMAXPROCS, numSMs);
// a saturated worker pool (eqsimd, eqbench sweeps) gets 1 so intra-run
// workers never oversubscribe the pool's cores.
func AutoShards(parallelism, numSMs int) int {
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	shards := runtime.GOMAXPROCS(0) / parallelism
	if shards > numSMs {
		shards = numSMs
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}
