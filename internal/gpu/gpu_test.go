package gpu

import (
	"testing"

	"equalizer/internal/clock"
	"equalizer/internal/config"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
)

// smallKernel returns a scaled-down clone of a registry kernel so unit tests
// stay fast; behaviour (profile shape) is untouched.
func smallKernel(t *testing.T, name string, grid int) kernels.Kernel {
	t.Helper()
	k, err := kernels.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	k.GridBlocks = grid
	return k
}

func newMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(config.Default(), power.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestComputeKernelCompletes(t *testing.T) {
	m := newMachine(t)
	k := smallKernel(t, "cutcp", 30)
	res, err := m.RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SMCycles <= 0 || res.TimePS <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.EnergyJ() <= 0 {
		t.Fatal("zero energy")
	}
	if res.IPC <= 0.3 {
		t.Fatalf("compute kernel IPC = %.3f, want high utilisation", res.IPC)
	}
}

func TestMemoryKernelSaturatesDRAM(t *testing.T) {
	m := newMachine(t)
	k := smallKernel(t, "lbm", 210) // two waves of 7 blocks per SM
	res, err := m.RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Launch ramp and drain tail dilute the whole-run utilisation; 0.75+
	// still means the device was the bottleneck for the bulk of the run.
	if res.DRAMUtil < 0.75 {
		t.Fatalf("lbm DRAM utilisation = %.2f, want near saturation", res.DRAMUtil)
	}
	// And it must dwarf a compute kernel's bandwidth demand.
	m2 := newMachine(t)
	resC, err := m2.RunKernel(smallKernel(t, "cutcp", 120), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAMUtil < 2*resC.DRAMUtil {
		t.Fatalf("lbm utilisation %.2f not well above compute kernel's %.2f",
			res.DRAMUtil, resC.DRAMUtil)
	}
}

func TestCacheKernelThrashesAtFullConcurrency(t *testing.T) {
	m := newMachine(t)
	k := smallKernel(t, "kmn", 30)
	res, err := m.RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.L1HitRate > 0.5 {
		t.Fatalf("kmn L1 hit rate = %.2f at max concurrency, want thrashing", res.L1HitRate)
	}

	// With one resident block per SM the aggregate working set fits.
	m2 := newMachine(t)
	res2 := runWithBlocks(t, m2, k, 1)
	if res2.L1HitRate < 0.8 {
		t.Fatalf("kmn L1 hit rate = %.2f at 1 block/SM, want high", res2.L1HitRate)
	}
	if res2.TimePS >= res.TimePS {
		t.Fatalf("kmn not faster with 1 block (%d ps) than max (%d ps)", res2.TimePS, res.TimePS)
	}
}

func runWithBlocks(t *testing.T, m *Machine, k kernels.Kernel, blocks int) Result {
	t.Helper()
	m.policy = blockPin{blocks}
	res, err := m.RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSMBoostSpeedsUpComputeNotMemory(t *testing.T) {
	run := func(name string, grid int, sm, mem config.VFLevel) Result {
		m := newMachine(t)
		m.SetLevelsImmediate(sm, mem)
		res, err := m.RunKernel(smallKernel(t, name, grid), 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	baseC := run("cutcp", 30, config.VFNormal, config.VFNormal)
	boostC := run("cutcp", 30, config.VFHigh, config.VFNormal)
	speedC := float64(baseC.TimePS) / float64(boostC.TimePS)
	if speedC < 1.08 {
		t.Fatalf("cutcp SM-boost speedup = %.3f, want near 1.15", speedC)
	}

	baseM := run("lbm", 45, config.VFNormal, config.VFNormal)
	boostM := run("lbm", 45, config.VFHigh, config.VFNormal)
	speedM := float64(baseM.TimePS) / float64(boostM.TimePS)
	if speedM > 1.05 {
		t.Fatalf("lbm SM-boost speedup = %.3f, want ~1 (DRAM-bound)", speedM)
	}

	memBoostM := run("lbm", 45, config.VFNormal, config.VFHigh)
	speedMM := float64(baseM.TimePS) / float64(memBoostM.TimePS)
	if speedMM < 1.08 {
		t.Fatalf("lbm mem-boost speedup = %.3f, want near 1.15", speedMM)
	}

	memBoostC := run("cutcp", 30, config.VFNormal, config.VFHigh)
	speedMC := float64(baseC.TimePS) / float64(memBoostC.TimePS)
	if speedMC > 1.05 {
		t.Fatalf("cutcp mem-boost speedup = %.3f, want ~1", speedMC)
	}
}

func TestEnergyRespondsToThrottling(t *testing.T) {
	run := func(sm, mem config.VFLevel) Result {
		m := newMachine(t)
		m.SetLevelsImmediate(sm, mem)
		res, err := m.RunKernel(smallKernel(t, "cutcp", 30), 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(config.VFNormal, config.VFNormal)
	memLow := run(config.VFNormal, config.VFLow)
	// Compute kernel: lowering memory frequency must save energy with
	// almost no slowdown (Figure 1d).
	if memLow.EnergyJ() >= base.EnergyJ() {
		t.Fatalf("mem-low energy %.3g J not below baseline %.3g J", memLow.EnergyJ(), base.EnergyJ())
	}
	slowdown := float64(memLow.TimePS)/float64(base.TimePS) - 1
	if slowdown > 0.04 {
		t.Fatalf("mem-low slowed compute kernel by %.1f%%, want negligible", slowdown*100)
	}
}

func TestResidencyAccounting(t *testing.T) {
	m := newMachine(t)
	m.SetLevelsImmediate(config.VFHigh, config.VFLow)
	res, err := m.RunKernel(smallKernel(t, "cutcp", 15), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residency.SM[config.VFHigh] == 0 {
		t.Fatal("no SM-high residency recorded")
	}
	if res.Residency.Mem[config.VFLow] == 0 {
		t.Fatal("no mem-low residency recorded")
	}
}

func TestConsecutiveInvocationsIndependentResults(t *testing.T) {
	m := newMachine(t)
	k := smallKernel(t, "cutcp", 15)
	r1, err := m.RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(r1.TimePS) / float64(r2.TimePS)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("identical invocations differ: %d vs %d ps", r1.TimePS, r2.TimePS)
	}
}

func TestDeterminism(t *testing.T) {
	k := smallKernel(t, "lbm", 30)
	m1, m2 := newMachine(t), newMachine(t)
	r1, err := m1.RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m2.RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TimePS != r2.TimePS || r1.SMCycles != r2.SMCycles || r1.EnergyJ() != r2.EnergyJ() {
		t.Fatalf("non-deterministic: %+v vs %+v", r1, r2)
	}
}

// blockPin pins the target block count for testing.
type blockPin struct{ n int }

func (p blockPin) Name() string { return "block-pin" }
func (p blockPin) Reset(m *Machine, _ kernels.Kernel) {
	m.SetAllTargetBlocks(p.n)
}
func (p blockPin) OnSMCycle(*Machine, clock.Time, int64) {}
