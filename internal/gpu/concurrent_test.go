package gpu

import (
	"testing"

	"equalizer/internal/kernels"
)

func task(t *testing.T, name string, grid int) Task {
	t.Helper()
	k, err := kernels.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if grid > 0 {
		k.GridBlocks = grid
	}
	return Task{Kernel: k}
}

func TestRunConcurrentTwoKernels(t *testing.T) {
	m := newMachine(t)
	results, total, err := m.RunConcurrent([]Task{
		task(t, "cutcp", 16),
		task(t, "lbm", 49),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d task results, want 2", len(results))
	}
	if results[0].Kernel != "cutcp" || results[1].Kernel != "lbm" {
		t.Fatalf("task order scrambled: %s, %s", results[0].Kernel, results[1].Kernel)
	}
	for i, r := range results {
		if r.TimePS <= 0 {
			t.Fatalf("task %d has no completion time", i)
		}
		if r.TimePS > total.TimePS {
			t.Fatalf("task %d finished after the machine-wide end", i)
		}
	}
	if total.EnergyJ() <= 0 {
		t.Fatal("no aggregate energy")
	}
}

func TestRunConcurrentPartitionsAreDisjoint(t *testing.T) {
	m := newMachine(t)
	if _, _, err := m.RunConcurrent([]Task{
		task(t, "cutcp", 16),
		task(t, "lbm", 49),
	}); err != nil {
		t.Fatal(err)
	}
	// Partition 0 covers SMs [0,7), partition 1 covers [7,15).
	if m.MaxResidentBlocksFor(0) != 8 { // cutcp: 8 blocks
		t.Fatalf("SM 0 occupancy limit = %d, want cutcp's 8", m.MaxResidentBlocksFor(0))
	}
	if m.MaxResidentBlocksFor(14) != 7 { // lbm: 7 blocks
		t.Fatalf("SM 14 occupancy limit = %d, want lbm's 7", m.MaxResidentBlocksFor(14))
	}
	if m.WctaFor(0) != 6 || m.WctaFor(14) != 4 {
		t.Fatalf("Wcta mapping wrong: %d, %d", m.WctaFor(0), m.WctaFor(14))
	}
}

func TestRunConcurrentValidation(t *testing.T) {
	m := newMachine(t)
	if _, _, err := m.RunConcurrent(nil); err == nil {
		t.Fatal("empty task list accepted")
	}
	tasks := make([]Task, 16) // more tasks than SMs
	for i := range tasks {
		tasks[i] = task(t, "cutcp", 15)
	}
	if _, _, err := m.RunConcurrent(tasks); err == nil {
		t.Fatal("more tasks than SMs accepted")
	}
}

func TestRunConcurrentMatchesSoloWhenSingleTask(t *testing.T) {
	m1 := newMachine(t)
	solo, err := m1.RunKernel(smallKernel(t, "cutcp", 30), 0)
	if err != nil {
		t.Fatal(err)
	}
	m2 := newMachine(t)
	_, total, err := m2.RunConcurrent([]Task{task(t, "cutcp", 30)})
	if err != nil {
		t.Fatal(err)
	}
	if solo.TimePS != total.TimePS || solo.EnergyJ() != total.EnergyJ() {
		t.Fatalf("single-task RunConcurrent diverges from RunKernel: %d vs %d ps",
			solo.TimePS, total.TimePS)
	}
}

func TestConcurrentMemoryKernelsShareBandwidth(t *testing.T) {
	// Two half-machine memory kernels see the same shared DRAM as one
	// full-machine kernel with the same total grid, so the times must be
	// comparable — the bandwidth is one resource either way.
	m1 := newMachine(t)
	solo, err := m1.RunKernel(smallKernel(t, "lbm", 98), 0)
	if err != nil {
		t.Fatal(err)
	}
	m2 := newMachine(t)
	_, total, err := m2.RunConcurrent([]Task{
		task(t, "lbm", 49),
		task(t, "lbm", 49),
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(total.TimePS) / float64(solo.TimePS)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("split/solo time ratio = %.2f; DRAM sharing broken", ratio)
	}
}

func TestConcurrentComputePlusMemoryOverlapWell(t *testing.T) {
	// A compute kernel and a memory kernel stress different resources, so
	// running them side by side costs much less than serialising them.
	mc := newMachine(t)
	comp, err := mc.RunKernel(smallKernel(t, "cutcp", 112), 0)
	if err != nil {
		t.Fatal(err)
	}
	mm := newMachine(t)
	mem, err := mm.RunKernel(smallKernel(t, "lbm", 98), 0)
	if err != nil {
		t.Fatal(err)
	}
	m2 := newMachine(t)
	_, total, err := m2.RunConcurrent([]Task{
		task(t, "cutcp", 112),
		task(t, "lbm", 98),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each partition has half the SMs, so the mix cannot beat the serial
	// full-machine runs outright; but because the two kernels stress
	// different resources, co-location must cost almost nothing compared
	// with time-sharing the machine.
	serial := comp.TimePS + mem.TimePS
	if float64(total.TimePS) > float64(serial)*1.15 {
		t.Fatalf("concurrent mix (%d ps) much slower than serial (%d ps)", total.TimePS, serial)
	}
}
