package config

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
)

// ApplyOverrides applies a comma-separated list of key=value overrides to a
// GPU and an Equalizer configuration, then validates both. Keys are
// case-insensitive field names, with dots for nested structs:
//
//	numsms=8,l1.sets=32,epochcycles=2048
//
// GPU fields are tried first, Equalizer fields second, so every tunable is
// reachable from a single flat namespace (no field name collides between
// the two structs). An empty spec is a no-op. On any error the configs may
// hold partially applied overrides; callers should treat them as dead.
func ApplyOverrides(g *GPU, e *Equalizer, spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(kv, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" {
			return fmt.Errorf("config: override %q is not key=value", kv)
		}
		set, err := setField(reflect.ValueOf(g).Elem(), key, val)
		if err != nil {
			return err
		}
		if !set {
			if set, err = setField(reflect.ValueOf(e).Elem(), key, val); err != nil {
				return err
			}
		}
		if !set {
			return fmt.Errorf("config: unknown override key %q", key)
		}
	}
	if err := g.Validate(); err != nil {
		return err
	}
	return e.Validate()
}

// setField resolves a case-insensitive, dot-separated field path in v and
// assigns the parsed value. It reports whether the path matched; parse
// failures on a matched path are errors.
func setField(v reflect.Value, path, val string) (bool, error) {
	head, rest, nested := strings.Cut(path, ".")
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		if !strings.EqualFold(t.Field(i).Name, head) {
			continue
		}
		f := v.Field(i)
		if nested {
			if f.Kind() != reflect.Struct {
				return false, fmt.Errorf("config: %s is not a struct, cannot resolve %q", t.Field(i).Name, path)
			}
			return setField(f, rest, val)
		}
		switch f.Kind() {
		case reflect.Int, reflect.Int64:
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return false, fmt.Errorf("config: override %s: %w", path, err)
			}
			if f.OverflowInt(n) {
				return false, fmt.Errorf("config: override %s: value %s overflows", path, val)
			}
			f.SetInt(n)
		case reflect.Float64:
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return false, fmt.Errorf("config: override %s: %w", path, err)
			}
			f.SetFloat(x)
		case reflect.Struct:
			return false, fmt.Errorf("config: override %s names a struct; use %s.<field>", path, path)
		default:
			return false, fmt.Errorf("config: override %s has unsupported type %s", path, f.Kind())
		}
		return true, nil
	}
	return false, nil
}
