// Package config defines the hardware configuration of the simulated GPU and
// the tuning parameters of the Equalizer runtime. The defaults reproduce the
// Fermi-style (GTX 480) machine of Table III in the MICRO 2014 paper:
// 15 SMs, 32 PEs per SM, at most 8 thread blocks and 48 warps per SM, a
// 64-set/4-way/128-byte-line L1 data cache, and ±15% voltage/frequency
// modulation on both the SM and the memory-system clock domains.
package config

import "fmt"

// VFLevel is a discrete voltage/frequency operating point of a clock domain.
// The paper uses three steps per domain (Section IV-C): nominal frequency,
// nominal reduced by 15%, and nominal increased by 15%. Voltage is assumed to
// scale linearly with frequency.
type VFLevel int

const (
	// VFLow runs the domain 15% below nominal frequency (and voltage).
	VFLow VFLevel = iota
	// VFNormal is the baseline operating point.
	VFNormal
	// VFHigh runs the domain 15% above nominal frequency (and voltage).
	VFHigh
)

// String returns the human-readable name of the level.
func (l VFLevel) String() string {
	switch l {
	case VFLow:
		return "low"
	case VFNormal:
		return "normal"
	case VFHigh:
		return "high"
	default:
		return fmt.Sprintf("VFLevel(%d)", int(l))
	}
}

// Valid reports whether l is one of the three defined operating points.
func (l VFLevel) Valid() bool { return l >= VFLow && l <= VFHigh }

// Step moves one discrete step towards the requested direction and reports
// the new level. Frequency changes are always gradual (Section IV-C): a
// request to go from low to high first lands on normal.
func (l VFLevel) Step(delta int) VFLevel {
	switch {
	case delta > 0 && l < VFHigh:
		return l + 1
	case delta < 0 && l > VFLow:
		return l - 1
	default:
		return l
	}
}

// Multiplier returns the frequency (and voltage) multiplier of the level
// relative to nominal, given the modulation fraction (0.15 for ±15%).
func (l VFLevel) Multiplier(modulation float64) float64 {
	switch l {
	case VFLow:
		return 1 - modulation
	case VFHigh:
		return 1 + modulation
	default:
		return 1
	}
}

// GPU collects every architectural parameter of the simulated machine.
type GPU struct {
	// NumSMs is the number of streaming multiprocessors (15 for GTX480).
	NumSMs int
	// PEsPerSM is the number of processing elements (FPUs) per SM.
	PEsPerSM int
	// MaxBlocksPerSM is the hardware limit of resident thread blocks.
	MaxBlocksPerSM int
	// MaxWarpsPerSM is the hardware limit of resident warps (48 on Fermi).
	MaxWarpsPerSM int
	// WarpSize is the number of threads per warp.
	WarpSize int

	// ALUIssuePerCycle is the number of warp instructions the scheduler can
	// issue to the arithmetic pipeline per SM cycle (dual-issue Fermi: one
	// per scheduler; we model one ALU slot and one MEM slot).
	ALUIssuePerCycle int
	// MemIssuePerCycle is the number of warp instructions that can be issued
	// to the load/store pipeline per SM cycle.
	MemIssuePerCycle int
	// ALULatency is the dependent-instruction latency of arithmetic ops in
	// SM cycles.
	ALULatency int
	// SFULatency is the latency of special-function ops in SM cycles.
	SFULatency int
	// LSUQueueDepth is the capacity of the per-SM load/store queue. When the
	// queue is full, ready memory warps stall in the Xmem state.
	LSUQueueDepth int

	// L1 is the per-SM L1 data cache geometry.
	L1 Cache
	// L2 is the shared L2 cache geometry.
	L2 Cache
	// L1HitLatency is the load-to-use latency of an L1 hit, in SM cycles.
	L1HitLatency int
	// L2HitLatency is the additional latency of an L2 hit, in memory-domain
	// cycles, including interconnect traversal.
	L2HitLatency int
	// DRAMLatency is the additional latency of a DRAM access, in
	// memory-domain cycles, when the controller queue is empty.
	DRAMLatency int

	// ICNTQueueDepth bounds in-flight requests between one SM and L2. When
	// full, L1 misses cannot leave the SM and the LSU backs up.
	ICNTQueueDepth int
	// DRAMQueueDepth bounds the memory-controller request queue.
	DRAMQueueDepth int
	// DRAMServiceInterval is the number of memory-domain cycles between
	// completed 128-byte DRAM requests at nominal frequency; it encodes the
	// aggregate board bandwidth.
	DRAMServiceInterval int
	// DRAMBanks selects the banked FR-FCFS controller when positive; zero
	// keeps the flat bandwidth-gate model the evaluation is calibrated on.
	DRAMBanks int
	// DRAMRowBytes is the per-bank row-buffer size (banked model only).
	DRAMRowBytes int
	// DRAMRowMissInterval is the bus occupancy of a row-buffer miss in
	// memory cycles; row hits use DRAMServiceInterval (banked model only).
	DRAMRowMissInterval int

	// SMClockPS is the nominal SM clock period in picoseconds.
	SMClockPS int64
	// MemClockPS is the nominal memory-system clock period in picoseconds.
	MemClockPS int64
	// Modulation is the VF modulation fraction for both domains (0.15).
	Modulation float64
	// VRMTransitionCycles is the number of SM cycles a voltage-regulator
	// transition takes before a new VF level becomes effective.
	VRMTransitionCycles int
}

// Cache describes a set-associative cache.
type Cache struct {
	// Sets is the number of cache sets.
	Sets int
	// Ways is the associativity.
	Ways int
	// LineBytes is the cache-line size in bytes.
	LineBytes int
	// MSHRs is the number of miss-status holding registers; it bounds
	// outstanding misses before the cache back-pressures its requesters.
	MSHRs int
}

// Bytes returns the total capacity of the cache.
func (c Cache) Bytes() int { return c.Sets * c.Ways * c.LineBytes }

// Equalizer collects the runtime-system tuning parameters of Section IV.
type Equalizer struct {
	// SampleInterval is the number of SM cycles between instruction-buffer
	// samples (128 in the paper).
	SampleInterval int
	// EpochCycles is the decision window in SM cycles (4096 in the paper).
	EpochCycles int
	// Hysteresis is the number of consecutive epoch decisions that must
	// agree before the resident block count is changed (3 in the paper).
	Hysteresis int
	// MemSaturationWarps is the Xmem floor that indicates bandwidth
	// saturation (2 in the paper, Section III-A).
	MemSaturationWarps int
}

// Default returns the Table III machine.
func Default() GPU {
	return GPU{
		NumSMs:         15,
		PEsPerSM:       32,
		MaxBlocksPerSM: 8,
		MaxWarpsPerSM:  48,
		WarpSize:       32,

		ALUIssuePerCycle: 1,
		MemIssuePerCycle: 1,
		ALULatency:       10,
		SFULatency:       20,
		LSUQueueDepth:    4,

		L1: Cache{Sets: 64, Ways: 4, LineBytes: 128, MSHRs: 32},
		// 2048 sets x 8 ways x 128 B = 2 MiB shared L2. Larger than the
		// GTX480's 768 KB so that most cache-sensitive kernels' L1-thrash
		// traffic stays L2-resident (interconnect-bound, a mild slowdown as
		// in the paper) while only the largest working sets (kmeans' big
		// input) spill to DRAM.
		L2:           Cache{Sets: 2048, Ways: 8, LineBytes: 128, MSHRs: 128},
		L1HitLatency: 24,
		L2HitLatency: 90,
		DRAMLatency:  160,

		ICNTQueueDepth:      4,
		DRAMQueueDepth:      64,
		DRAMServiceInterval: 1,

		SMClockPS:           1000,
		MemClockPS:          1000,
		Modulation:          0.15,
		VRMTransitionCycles: 512,
	}
}

// DefaultEqualizer returns the paper's runtime parameters.
func DefaultEqualizer() Equalizer {
	return Equalizer{
		SampleInterval:     128,
		EpochCycles:        4096,
		Hysteresis:         3,
		MemSaturationWarps: 2,
	}
}

// Validate reports a descriptive error when the configuration is not
// internally consistent.
func (g GPU) Validate() error {
	switch {
	case g.NumSMs <= 0:
		return fmt.Errorf("config: NumSMs must be positive, got %d", g.NumSMs)
	case g.MaxBlocksPerSM <= 0:
		return fmt.Errorf("config: MaxBlocksPerSM must be positive, got %d", g.MaxBlocksPerSM)
	case g.MaxWarpsPerSM <= 0:
		return fmt.Errorf("config: MaxWarpsPerSM must be positive, got %d", g.MaxWarpsPerSM)
	case g.ALUIssuePerCycle <= 0 || g.MemIssuePerCycle <= 0:
		return fmt.Errorf("config: issue widths must be positive (alu=%d mem=%d)",
			g.ALUIssuePerCycle, g.MemIssuePerCycle)
	case g.LSUQueueDepth <= 0:
		return fmt.Errorf("config: LSUQueueDepth must be positive, got %d", g.LSUQueueDepth)
	case g.L1.Sets <= 0 || g.L1.Ways <= 0 || g.L1.LineBytes <= 0:
		return fmt.Errorf("config: invalid L1 geometry %+v", g.L1)
	case g.L2.Sets <= 0 || g.L2.Ways <= 0 || g.L2.LineBytes <= 0:
		return fmt.Errorf("config: invalid L2 geometry %+v", g.L2)
	case g.L1.LineBytes != g.L2.LineBytes:
		return fmt.Errorf("config: L1 and L2 line sizes differ (%d vs %d)",
			g.L1.LineBytes, g.L2.LineBytes)
	case g.SMClockPS <= 0 || g.MemClockPS <= 0:
		return fmt.Errorf("config: clock periods must be positive (sm=%d mem=%d)",
			g.SMClockPS, g.MemClockPS)
	case g.Modulation <= 0 || g.Modulation >= 1:
		return fmt.Errorf("config: Modulation must be in (0,1), got %g", g.Modulation)
	case g.DRAMServiceInterval <= 0:
		return fmt.Errorf("config: DRAMServiceInterval must be positive, got %d",
			g.DRAMServiceInterval)
	case g.DRAMBanks < 0:
		return fmt.Errorf("config: DRAMBanks must be non-negative, got %d", g.DRAMBanks)
	case g.DRAMBanks > 0 && (g.DRAMRowBytes <= 0 || g.DRAMRowBytes&(g.DRAMRowBytes-1) != 0):
		return fmt.Errorf("config: banked DRAM needs a power-of-two DRAMRowBytes, got %d",
			g.DRAMRowBytes)
	case g.DRAMBanks > 0 && g.DRAMRowMissInterval < g.DRAMServiceInterval:
		return fmt.Errorf("config: DRAMRowMissInterval (%d) must be >= DRAMServiceInterval (%d)",
			g.DRAMRowMissInterval, g.DRAMServiceInterval)
	}
	return nil
}

// WithBankedDRAM returns a copy of g using the banked FR-FCFS memory
// controller with GDDR5-flavoured parameters: 16 banks, 2 KiB rows, row
// hits at the flat model's burst rate and a 4x penalty for row misses.
func WithBankedDRAM(g GPU) GPU {
	g.DRAMBanks = 16
	g.DRAMRowBytes = 2048
	g.DRAMRowMissInterval = 4 * g.DRAMServiceInterval
	return g
}

// Validate reports a descriptive error when the runtime parameters are not
// internally consistent.
func (e Equalizer) Validate() error {
	switch {
	case e.SampleInterval <= 0:
		return fmt.Errorf("config: SampleInterval must be positive, got %d", e.SampleInterval)
	case e.EpochCycles <= 0:
		return fmt.Errorf("config: EpochCycles must be positive, got %d", e.EpochCycles)
	case e.EpochCycles%e.SampleInterval != 0:
		return fmt.Errorf("config: EpochCycles (%d) must be a multiple of SampleInterval (%d)",
			e.EpochCycles, e.SampleInterval)
	case e.Hysteresis <= 0:
		return fmt.Errorf("config: Hysteresis must be positive, got %d", e.Hysteresis)
	case e.MemSaturationWarps < 0:
		return fmt.Errorf("config: MemSaturationWarps must be non-negative, got %d",
			e.MemSaturationWarps)
	}
	return nil
}

// SamplesPerEpoch returns the number of instruction-buffer samples taken in
// one epoch window.
func (e Equalizer) SamplesPerEpoch() int { return e.EpochCycles / e.SampleInterval }
