package config

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default GPU config invalid: %v", err)
	}
	if err := DefaultEqualizer().Validate(); err != nil {
		t.Fatalf("default Equalizer config invalid: %v", err)
	}
}

func TestDefaultMatchesTableIII(t *testing.T) {
	g := Default()
	if g.NumSMs != 15 || g.PEsPerSM != 32 {
		t.Fatalf("architecture = %d SMs, %d PE/SM; want 15, 32", g.NumSMs, g.PEsPerSM)
	}
	if g.MaxBlocksPerSM != 8 || g.MaxWarpsPerSM != 48 {
		t.Fatalf("max blocks:warps = %d:%d; want 8:48", g.MaxBlocksPerSM, g.MaxWarpsPerSM)
	}
	if g.L1.Sets != 64 || g.L1.Ways != 4 || g.L1.LineBytes != 128 {
		t.Fatalf("L1 = %+v; want 64 sets, 4 way, 128 B/line", g.L1)
	}
	if g.Modulation != 0.15 {
		t.Fatalf("modulation = %g; want 0.15", g.Modulation)
	}
}

func TestEqualizerDefaultsMatchPaper(t *testing.T) {
	e := DefaultEqualizer()
	if e.SampleInterval != 128 {
		t.Fatalf("sample interval = %d; want 128", e.SampleInterval)
	}
	if e.EpochCycles != 4096 {
		t.Fatalf("epoch = %d; want 4096", e.EpochCycles)
	}
	if e.SamplesPerEpoch() != 32 {
		t.Fatalf("samples/epoch = %d; want 32", e.SamplesPerEpoch())
	}
	if e.Hysteresis != 3 {
		t.Fatalf("hysteresis = %d; want 3", e.Hysteresis)
	}
	if e.MemSaturationWarps != 2 {
		t.Fatalf("mem saturation floor = %d; want 2", e.MemSaturationWarps)
	}
}

func TestVFLevelStepIsGradual(t *testing.T) {
	if VFLow.Step(+1) != VFNormal {
		t.Fatal("low +1 should be normal")
	}
	if VFLow.Step(+1).Step(+1) != VFHigh {
		t.Fatal("low +2 steps should reach high")
	}
	if VFHigh.Step(+1) != VFHigh {
		t.Fatal("high +1 should saturate at high")
	}
	if VFLow.Step(-1) != VFLow {
		t.Fatal("low -1 should saturate at low")
	}
	if VFNormal.Step(0) != VFNormal {
		t.Fatal("step(0) must not move")
	}
}

func TestVFLevelMultiplier(t *testing.T) {
	if m := VFHigh.Multiplier(0.15); m != 1.15 {
		t.Fatalf("high multiplier = %g; want 1.15", m)
	}
	if m := VFLow.Multiplier(0.15); m != 0.85 {
		t.Fatalf("low multiplier = %g; want 0.85", m)
	}
	if m := VFNormal.Multiplier(0.15); m != 1 {
		t.Fatalf("normal multiplier = %g; want 1", m)
	}
}

func TestVFLevelString(t *testing.T) {
	for l, want := range map[VFLevel]string{VFLow: "low", VFNormal: "normal", VFHigh: "high"} {
		if got := l.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(l), got, want)
		}
	}
	if s := VFLevel(9).String(); !strings.Contains(s, "9") {
		t.Errorf("out-of-range String = %q, want to mention 9", s)
	}
}

func TestCacheBytes(t *testing.T) {
	c := Cache{Sets: 64, Ways: 4, LineBytes: 128}
	if c.Bytes() != 32*1024 {
		t.Fatalf("L1 capacity = %d; want 32768", c.Bytes())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*GPU)
	}{
		{"zero SMs", func(g *GPU) { g.NumSMs = 0 }},
		{"zero blocks", func(g *GPU) { g.MaxBlocksPerSM = 0 }},
		{"zero warps", func(g *GPU) { g.MaxWarpsPerSM = 0 }},
		{"zero alu issue", func(g *GPU) { g.ALUIssuePerCycle = 0 }},
		{"zero lsu", func(g *GPU) { g.LSUQueueDepth = 0 }},
		{"bad L1", func(g *GPU) { g.L1.Sets = 0 }},
		{"bad L2", func(g *GPU) { g.L2.Ways = 0 }},
		{"line mismatch", func(g *GPU) { g.L2.LineBytes = 64 }},
		{"bad clock", func(g *GPU) { g.SMClockPS = 0 }},
		{"bad modulation", func(g *GPU) { g.Modulation = 1.5 }},
		{"bad dram service", func(g *GPU) { g.DRAMServiceInterval = 0 }},
	}
	for _, tc := range cases {
		g := Default()
		tc.mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", tc.name)
		}
	}
}

func TestEqualizerValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Equalizer)
	}{
		{"zero sample", func(e *Equalizer) { e.SampleInterval = 0 }},
		{"zero epoch", func(e *Equalizer) { e.EpochCycles = 0 }},
		{"non-multiple", func(e *Equalizer) { e.EpochCycles = 100 }},
		{"zero hysteresis", func(e *Equalizer) { e.Hysteresis = 0 }},
		{"negative floor", func(e *Equalizer) { e.MemSaturationWarps = -1 }},
	}
	for _, tc := range cases {
		e := DefaultEqualizer()
		tc.mutate(&e)
		if err := e.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", tc.name)
		}
	}
}

// Property: Step never leaves the valid range and always moves at most one
// level in the requested direction.
func TestQuickStepBounded(t *testing.T) {
	f := func(start uint8, delta int8) bool {
		l := VFLevel(int(start) % 3)
		n := l.Step(int(delta))
		if !n.Valid() {
			return false
		}
		diff := int(n) - int(l)
		if diff < -1 || diff > 1 {
			return false
		}
		if delta > 0 && diff < 0 {
			return false
		}
		if delta < 0 && diff > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
