package config

import (
	"strings"
	"testing"
)

func TestApplyOverrides(t *testing.T) {
	g, e := Default(), DefaultEqualizer()
	err := ApplyOverrides(&g, &e, "NumSMs=8, l1.sets=32, epochcycles=2048, modulation=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSMs != 8 || g.L1.Sets != 32 || e.EpochCycles != 2048 || g.Modulation != 0.2 {
		t.Fatalf("overrides not applied: %+v %+v", g, e)
	}
}

func TestApplyOverridesEmpty(t *testing.T) {
	g, e := Default(), DefaultEqualizer()
	if err := ApplyOverrides(&g, &e, "  "); err != nil {
		t.Fatal(err)
	}
	if g != Default() || e != DefaultEqualizer() {
		t.Fatal("empty spec must not change the configs")
	}
}

func TestApplyOverridesErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"nosuchknob=1", "unknown override key"},
		{"numsms", "not key=value"},
		{"numsms=abc", "invalid syntax"},
		{"l1=3", "names a struct"},
		{"numsms.x=3", "not a struct"},
		{"numsms=0", "must be positive"},                      // fails GPU validation
		{"epochcycles=100", "multiple of SampleInterval"},     // fails Equalizer validation
		{"numsms=99999999999999999999", "value out of range"}, // huge literal
	}
	for _, tc := range cases {
		g, e := Default(), DefaultEqualizer()
		err := ApplyOverrides(&g, &e, tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ApplyOverrides(%q) = %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
}

// FuzzConfigParse asserts the override parser never panics and that a
// successful parse always leaves both configurations valid — the
// properties eqsim's -set flag relies on.
func FuzzConfigParse(f *testing.F) {
	f.Add("numsms=8,l1.sets=32")
	f.Add("epochcycles=2048,sampleinterval=128")
	f.Add("modulation=0.3")
	f.Add("l1.linebytes=64,l2.linebytes=64")
	f.Add("=,=,=")
	f.Add("a=b=c,,")
	f.Add("numsms=-1")
	f.Add("numsms=999999999999999999999999")
	f.Fuzz(func(t *testing.T, spec string) {
		g, e := Default(), DefaultEqualizer()
		if err := ApplyOverrides(&g, &e, spec); err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("ApplyOverrides(%q) accepted an invalid GPU config: %v", spec, err)
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("ApplyOverrides(%q) accepted an invalid Equalizer config: %v", spec, err)
		}
		// Determinism: the same spec applied to fresh defaults must land on
		// the identical configuration.
		g2, e2 := Default(), DefaultEqualizer()
		if err := ApplyOverrides(&g2, &e2, spec); err != nil {
			t.Fatalf("ApplyOverrides(%q) not deterministic: second run failed: %v", spec, err)
		}
		if g != g2 || e != e2 {
			t.Fatalf("ApplyOverrides(%q) not deterministic: %+v vs %+v", spec, g, g2)
		}
	})
}
