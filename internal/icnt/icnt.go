// Package icnt models the on-chip interconnect between the SMs and the
// shared L2/memory partition. Each SM owns a bounded ingress FIFO of memory
// requests; every memory-system cycle the network drains up to a configured
// number of requests towards the L2 with round-robin fairness across SMs.
// A full FIFO stalls the SM's load/store unit — one link in the chain of
// back-pressure that Equalizer's Xmem counter observes.
package icnt

import (
	"fmt"

	"equalizer/internal/cache"
	"equalizer/internal/telemetry"
)

// Request is one outstanding cache-line read travelling from an SM towards
// the memory partition.
type Request struct {
	// SM identifies the requesting streaming multiprocessor.
	SM int
	// Line is the line-aligned address.
	Line cache.Addr
}

// Config holds network parameters.
type Config struct {
	// NumSMs is the number of ingress ports.
	NumSMs int
	// QueueDepth bounds each SM's ingress FIFO.
	QueueDepth int
	// DrainPerCycle bounds how many requests the network delivers to the L2
	// per memory cycle across all SMs.
	DrainPerCycle int
}

// Validate reports a descriptive error for unusable parameters.
func (c Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return fmt.Errorf("icnt: NumSMs must be positive, got %d", c.NumSMs)
	case c.QueueDepth <= 0:
		return fmt.Errorf("icnt: QueueDepth must be positive, got %d", c.QueueDepth)
	case c.DrainPerCycle <= 0:
		return fmt.Errorf("icnt: DrainPerCycle must be positive, got %d", c.DrainPerCycle)
	}
	return nil
}

// Stats aggregates network activity.
type Stats struct {
	// Pushed counts accepted requests.
	Pushed uint64
	// Delivered counts requests handed to the L2.
	Delivered uint64
	// Stalled counts Push attempts rejected on a full FIFO.
	Stalled uint64
	// BlockedDeliveries counts delivery attempts declined by the L2 side.
	BlockedDeliveries uint64
}

// Network is the interconnect. Not safe for concurrent use.
type Network struct {
	cfg    Config
	queues [][]Request
	// rr is the round-robin pointer for fairness across SM ports.
	rr    int
	stats Stats

	// probe emits per-port queue-depth samples and stall events; nil (free)
	// until SetProbe attaches a bus. probeNow supplies the owner's current
	// simulation time.
	probe    *telemetry.Bus
	probeNow func() int64
}

// New builds a network.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, queues: make([][]Request, cfg.NumSMs)}
	for i := range n.queues {
		n.queues[i] = make([]Request, 0, cfg.QueueDepth)
	}
	return n, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Network {
	n, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// SetProbe wires the network to a telemetry bus: every accepted Push emits
// a KindICNTQueue event carrying the port's new depth, and every rejected
// Push emits KindICNTStall. now supplies the owner's current simulation
// time in picoseconds. A nil bus detaches the probe.
func (n *Network) SetProbe(b *telemetry.Bus, now func() int64) {
	n.probe, n.probeNow = b, now
}

// CanPush reports whether SM sm's ingress FIFO has room.
func (n *Network) CanPush(sm int) bool { return len(n.queues[sm]) < n.cfg.QueueDepth }

// Push enqueues a request from its SM, returning false when the FIFO is full.
func (n *Network) Push(r Request) bool {
	q := n.queues[r.SM]
	if len(q) >= n.cfg.QueueDepth {
		n.stats.Stalled++
		if n.probe.Enabled(telemetry.KindICNTStall) {
			n.probe.Emit(n.probeNow(), telemetry.KindICNTStall, int16(r.SM), int64(len(q)), 0)
		}
		return false
	}
	n.queues[r.SM] = append(q, r)
	n.stats.Pushed++
	if n.probe.Enabled(telemetry.KindICNTQueue) {
		n.probe.Emit(n.probeNow(), telemetry.KindICNTQueue, int16(r.SM), int64(len(q)+1), 0)
	}
	return true
}

// PortPush enqueues a request on its SM's ingress FIFO without touching the
// network's shared statistics or probe, returning false when the FIFO is
// full. It exists for the sharded memory-domain step: each shard worker
// owns a disjoint SM range, so concurrent PortPush calls touch disjoint
// port queues, and the coordinator folds the accepted count into the shared
// statistics afterwards via AddPushed. Callers needing stats or probe
// emission must use Push. Never allocates: a port queue's capacity is its
// configured depth.
func (n *Network) PortPush(r Request) bool {
	q := n.queues[r.SM]
	if len(q) >= n.cfg.QueueDepth {
		return false
	}
	//eqlint:allow shardphase,allocfree -- shard workers own disjoint SM ranges so queues[r.SM] is private to the caller, and a port queue's capacity is pre-sized to QueueDepth so the append never grows it
	n.queues[r.SM] = append(q, r)
	return true
}

// AddPushed folds k accepted PortPush calls into the shared push counter.
// Called by the shard coordinator after the phase barrier, so the counter
// moves deterministically regardless of shard geometry.
func (n *Network) AddPushed(k uint64) { n.stats.Pushed += k }

// QueueLen returns the occupancy of one SM's FIFO.
func (n *Network) QueueLen(sm int) int { return len(n.queues[sm]) }

// Pending returns the total number of queued requests.
func (n *Network) Pending() int {
	total := 0
	for _, q := range n.queues {
		total += len(q)
	}
	return total
}

// Drain delivers up to DrainPerCycle requests to the consumer with
// round-robin fairness. The consumer returns false to refuse a request
// (downstream back-pressure); a refused request stays at its FIFO head and
// that port is skipped for the rest of the cycle.
func (n *Network) Drain(consume func(Request) bool) {
	delivered := 0
	blockedPorts := 0
	ports := n.cfg.NumSMs
	for delivered < n.cfg.DrainPerCycle && blockedPorts < ports {
		port := n.rr
		n.rr = (n.rr + 1) % ports
		q := n.queues[port]
		if len(q) == 0 {
			blockedPorts++
			continue
		}
		if !consume(q[0]) {
			n.stats.BlockedDeliveries++
			blockedPorts++
			continue
		}
		copy(q, q[1:])
		n.queues[port] = q[:len(q)-1]
		n.stats.Delivered++
		delivered++
		blockedPorts = 0
	}
}

// Stats returns a copy of the accumulated statistics.
func (n *Network) Stats() Stats { return n.stats }

// ResetStats clears statistics without disturbing queue contents.
func (n *Network) ResetStats() { n.stats = Stats{} }

// Drained reports whether every FIFO is empty.
func (n *Network) Drained() bool { return n.Pending() == 0 }
