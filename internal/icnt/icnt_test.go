package icnt

import (
	"testing"
	"testing/quick"

	"equalizer/internal/cache"
)

func cfg() Config { return Config{NumSMs: 3, QueueDepth: 2, DrainPerCycle: 4} }

func TestValidate(t *testing.T) {
	bad := []Config{
		{NumSMs: 0, QueueDepth: 1, DrainPerCycle: 1},
		{NumSMs: 1, QueueDepth: 0, DrainPerCycle: 1},
		{NumSMs: 1, QueueDepth: 1, DrainPerCycle: 0},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: accepted invalid config %+v", i, c)
		}
	}
}

func TestPushBoundedPerSM(t *testing.T) {
	n := MustNew(cfg())
	if !n.Push(Request{SM: 0, Line: 0x80}) || !n.Push(Request{SM: 0, Line: 0x100}) {
		t.Fatal("pushes within depth rejected")
	}
	if n.CanPush(0) {
		t.Fatal("CanPush true on full FIFO")
	}
	if n.Push(Request{SM: 0, Line: 0x180}) {
		t.Fatal("push succeeded on full FIFO")
	}
	if !n.CanPush(1) {
		t.Fatal("other SM's FIFO should be open")
	}
	if n.Stats().Stalled != 1 {
		t.Fatalf("stalled = %d, want 1", n.Stats().Stalled)
	}
}

func TestDrainRoundRobinFairness(t *testing.T) {
	n := MustNew(Config{NumSMs: 3, QueueDepth: 4, DrainPerCycle: 3})
	for sm := 0; sm < 3; sm++ {
		n.Push(Request{SM: sm, Line: cache.Addr(sm * 0x80)})
		n.Push(Request{SM: sm, Line: cache.Addr(sm*0x80 + 0x1000)})
	}
	var got []int
	n.Drain(func(r Request) bool { got = append(got, r.SM); return true })
	if len(got) != 3 {
		t.Fatalf("delivered %d, want 3 (DrainPerCycle)", len(got))
	}
	// One from each SM, not three from SM 0.
	seen := map[int]int{}
	for _, sm := range got {
		seen[sm]++
	}
	for sm := 0; sm < 3; sm++ {
		if seen[sm] != 1 {
			t.Fatalf("SM %d delivered %d requests in one cycle, want 1 each: %v", sm, seen[sm], got)
		}
	}
}

func TestDrainRespectsBackpressure(t *testing.T) {
	n := MustNew(cfg())
	n.Push(Request{SM: 0, Line: 0x80})
	n.Push(Request{SM: 1, Line: 0x100})
	var got []cache.Addr
	n.Drain(func(r Request) bool {
		if r.SM == 0 {
			return false // downstream refuses SM 0's request
		}
		got = append(got, r.Line)
		return true
	})
	if len(got) != 1 || got[0] != 0x100 {
		t.Fatalf("delivered = %v, want only SM 1's request", got)
	}
	if n.QueueLen(0) != 1 {
		t.Fatal("refused request must stay at FIFO head")
	}
	if n.Stats().BlockedDeliveries == 0 {
		t.Fatal("blocked delivery not counted")
	}
}

func TestDrainStopsWhenAllBlocked(t *testing.T) {
	n := MustNew(cfg())
	for sm := 0; sm < 3; sm++ {
		n.Push(Request{SM: sm, Line: 0x80})
	}
	calls := 0
	n.Drain(func(Request) bool { calls++; return false })
	if calls != 3 {
		t.Fatalf("consume called %d times, want 3 (once per blocked port)", calls)
	}
	if n.Pending() != 3 {
		t.Fatal("blocked requests must remain queued")
	}
}

func TestDrainEmptyIsNoOp(t *testing.T) {
	n := MustNew(cfg())
	n.Drain(func(Request) bool { t.Fatal("consume called on empty network"); return true })
	if !n.Drained() {
		t.Fatal("empty network not drained")
	}
}

func TestFIFOOrderPerPort(t *testing.T) {
	n := MustNew(Config{NumSMs: 1, QueueDepth: 8, DrainPerCycle: 8})
	want := []cache.Addr{0x80, 0x100, 0x180}
	for _, a := range want {
		n.Push(Request{SM: 0, Line: a})
	}
	var got []cache.Addr
	n.Drain(func(r Request) bool { got = append(got, r.Line); return true })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

// Property: pushed == delivered + still-pending after any sequence,
// and per-SM occupancy never exceeds QueueDepth.
func TestQuickConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		c := Config{NumSMs: 4, QueueDepth: 3, DrainPerCycle: 2}
		n := MustNew(c)
		delivered := 0
		for _, op := range ops {
			if op%5 == 0 {
				n.Drain(func(Request) bool { delivered++; return true })
			} else {
				n.Push(Request{SM: int(op) % c.NumSMs, Line: cache.Addr(op) * 0x80})
			}
			for sm := 0; sm < c.NumSMs; sm++ {
				if n.QueueLen(sm) > c.QueueDepth {
					return false
				}
			}
		}
		s := n.Stats()
		return s.Pushed == uint64(delivered+n.Pending())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
