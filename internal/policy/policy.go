// Package policy provides the non-Equalizer runtime policies used in the
// paper's evaluation: fixed operating points (static block counts), the
// DynCTA heuristic of Kayiran et al. [15], the cache-conscious wavefront
// scheduling (CCWS) of Rogers et al. [26], and a passive Monitor that
// records warp-state statistics for the characterisation figures.
package policy

import (
	"math"

	"equalizer/internal/clock"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
)

// StaticBlocks pins every SM's resident-block ceiling to a constant.
type StaticBlocks struct{ n int }

var (
	_ gpu.Policy           = (*StaticBlocks)(nil)
	_ gpu.FastForwardAware = (*StaticBlocks)(nil)
	_ gpu.BatchAware       = (*StaticBlocks)(nil)
)

// NewStaticBlocks builds the policy; n is clamped per-kernel by the machine.
func NewStaticBlocks(n int) *StaticBlocks { return &StaticBlocks{n: n} }

// Name implements gpu.Policy.
func (p *StaticBlocks) Name() string { return "static-blocks" }

// Reset implements gpu.Policy.
func (p *StaticBlocks) Reset(m *gpu.Machine, _ kernels.Kernel) {
	m.SetAllTargetBlocks(p.n)
}

// OnSMCycle implements gpu.Policy.
func (p *StaticBlocks) OnSMCycle(*gpu.Machine, clock.Time, int64) {}

// NextActiveCycle implements gpu.FastForwardAware: the policy never acts.
func (p *StaticBlocks) NextActiveCycle(int64) int64 { return math.MaxInt64 }

// NextSampleCycle implements gpu.BatchAware: OnSMCycle is always a no-op.
func (p *StaticBlocks) NextSampleCycle(int64) int64 { return math.MaxInt64 }

// AccumulateSpan implements gpu.FastForwardAware: nothing to accumulate.
func (p *StaticBlocks) AccumulateSpan(*gpu.Machine, int64, int64) {}

// Multi fans a machine's policy hooks out to several policies in order. It
// lets a passive Monitor observe a run driven by an active policy (the
// Figure 11b study records DynCTA's concurrency choices this way).
type Multi []gpu.Policy

var (
	_ gpu.Policy           = (Multi)(nil)
	_ gpu.FastForwardAware = (Multi)(nil)
	_ gpu.BatchAware       = (Multi)(nil)
)

// Name implements gpu.Policy.
func (m Multi) Name() string {
	names := make([]string, len(m))
	for i, p := range m {
		names[i] = p.Name()
	}
	return "multi(" + joinNames(names) + ")"
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "+"
		}
		out += n
	}
	return out
}

// Reset implements gpu.Policy.
func (m Multi) Reset(machine *gpu.Machine, k kernels.Kernel) {
	for _, p := range m {
		p.Reset(machine, k)
	}
}

// OnSMCycle implements gpu.Policy.
func (m Multi) OnSMCycle(machine *gpu.Machine, now clock.Time, smCycle int64) {
	for _, p := range m {
		p.OnSMCycle(machine, now, smCycle)
	}
}

// NextActiveCycle implements gpu.FastForwardAware: the earliest member
// activity. A member that is not fast-forward aware may act on any cycle, so
// the fan-out reports the very next cycle as active, disabling skips.
func (m Multi) NextActiveCycle(smCycle int64) int64 {
	next := int64(math.MaxInt64)
	for _, p := range m {
		a, ok := p.(gpu.FastForwardAware)
		if !ok {
			return smCycle + 1
		}
		if at := a.NextActiveCycle(smCycle); at < next {
			next = at
		}
	}
	return next
}

// NextSampleCycle implements gpu.BatchAware: the earliest member sample. A
// member that is not batch aware may act on any cycle, so the fan-out
// reports the very next cycle, disabling batching.
func (m Multi) NextSampleCycle(smCycle int64) int64 {
	next := int64(math.MaxInt64)
	for _, p := range m {
		b, ok := p.(gpu.BatchAware)
		if !ok {
			return smCycle + 1
		}
		if at := b.NextSampleCycle(smCycle); at < next {
			next = at
		}
	}
	return next
}

// AccumulateSpan implements gpu.FastForwardAware.
func (m Multi) AccumulateSpan(machine *gpu.Machine, fromCycle, toCycle int64) {
	for _, p := range m {
		if a, ok := p.(gpu.FastForwardAware); ok {
			a.AccumulateSpan(machine, fromCycle, toCycle)
		}
	}
}

// Monitor passively samples the warp-state census every sampleInterval
// cycles, accumulating the state distribution of Figure 4 and the per-epoch
// time series of Figure 2b. It never changes any parameter.
type Monitor struct {
	// SampleInterval and EpochCycles default to the paper's 128/4096.
	SampleInterval int
	EpochCycles    int

	sums    StateSums
	series  []EpochPoint
	acc     StateSums
	accN    int
	samples int
}

// StateSums accumulates census sums across samples and SMs.
type StateSums struct {
	Active, Waiting, Issued, XALU, XMEM, Others int64
}

// EpochPoint is one epoch of mean per-SM census values.
type EpochPoint struct {
	Epoch                               int
	Active, Waiting, XALU, XMEM, Issued float64
}

var (
	_ gpu.Policy           = (*Monitor)(nil)
	_ gpu.FastForwardAware = (*Monitor)(nil)
	_ gpu.BatchAware       = (*Monitor)(nil)
)

// NewMonitor builds a monitor with the paper's sampling parameters.
func NewMonitor() *Monitor { return &Monitor{SampleInterval: 128, EpochCycles: 4096} }

// Name implements gpu.Policy.
func (p *Monitor) Name() string { return "monitor" }

// Reset implements gpu.Policy.
func (p *Monitor) Reset(*gpu.Machine, kernels.Kernel) {
	p.sums = StateSums{}
	p.series = p.series[:0]
	p.acc = StateSums{}
	p.accN = 0
	p.samples = 0
}

// OnSMCycle implements gpu.Policy.
func (p *Monitor) OnSMCycle(m *gpu.Machine, _ clock.Time, smCycle int64) {
	if smCycle%int64(p.SampleInterval) != 0 {
		return
	}
	var s StateSums
	for i := 0; i < m.NumSMs(); i++ {
		snap := m.SM(i).Snapshot()
		s.Active += int64(snap.Active)
		s.Waiting += int64(snap.Waiting)
		s.Issued += int64(snap.Issued)
		s.XALU += int64(snap.XALU)
		s.XMEM += int64(snap.XMEM)
		s.Others += int64(snap.Others)
	}
	p.sums.Active += s.Active
	p.sums.Waiting += s.Waiting
	p.sums.Issued += s.Issued
	p.sums.XALU += s.XALU
	p.sums.XMEM += s.XMEM
	p.sums.Others += s.Others
	p.samples++

	p.acc.Active += s.Active
	p.acc.Waiting += s.Waiting
	p.acc.Issued += s.Issued
	p.acc.XALU += s.XALU
	p.acc.XMEM += s.XMEM
	p.accN++
	if smCycle%int64(p.EpochCycles) == 0 {
		n := float64(p.accN * m.NumSMs())
		//eqlint:allow allocfree -- one series point per epoch, amortized over EpochCycles; the batch window is capped at the next sample cycle so no point is skipped
		p.series = append(p.series, EpochPoint{
			Epoch:   len(p.series) + 1,
			Active:  float64(p.acc.Active) / n,
			Waiting: float64(p.acc.Waiting) / n,
			XALU:    float64(p.acc.XALU) / n,
			XMEM:    float64(p.acc.XMEM) / n,
			Issued:  float64(p.acc.Issued) / n,
		})
		p.acc = StateSums{}
		p.accN = 0
	}
}

// NextActiveCycle implements gpu.FastForwardAware: the epoch-boundary series
// append is the only non-accumulate step.
func (p *Monitor) NextActiveCycle(smCycle int64) int64 {
	ec := int64(p.EpochCycles)
	return (smCycle/ec + 1) * ec
}

// NextSampleCycle implements gpu.BatchAware: OnSMCycle does nothing off the
// SampleInterval grid.
func (p *Monitor) NextSampleCycle(smCycle int64) int64 {
	si := int64(p.SampleInterval)
	return (smCycle/si + 1) * si
}

// AccumulateSpan implements gpu.FastForwardAware: add one sample per
// SampleInterval multiple in [fromCycle, toCycle], each an exact copy of the
// current census. Epoch boundaries never land inside a span (NextActiveCycle
// excludes them), so the series is untouched.
func (p *Monitor) AccumulateSpan(m *gpu.Machine, fromCycle, toCycle int64) {
	si := int64(p.SampleInterval)
	k := toCycle/si - (fromCycle-1)/si
	if k == 0 {
		return
	}
	var s StateSums
	for i := 0; i < m.NumSMs(); i++ {
		snap := m.SM(i).Snapshot()
		s.Active += int64(snap.Active)
		s.Waiting += int64(snap.Waiting)
		s.Issued += int64(snap.Issued)
		s.XALU += int64(snap.XALU)
		s.XMEM += int64(snap.XMEM)
		s.Others += int64(snap.Others)
	}
	p.sums.Active += k * s.Active
	p.sums.Waiting += k * s.Waiting
	p.sums.Issued += k * s.Issued
	p.sums.XALU += k * s.XALU
	p.sums.XMEM += k * s.XMEM
	p.sums.Others += k * s.Others
	p.samples += int(k)

	p.acc.Active += k * s.Active
	p.acc.Waiting += k * s.Waiting
	p.acc.Issued += k * s.Issued
	p.acc.XALU += k * s.XALU
	p.acc.XMEM += k * s.XMEM
	p.accN += int(k)
}

// Distribution returns the mean per-SM census over the run: the fractions of
// warps observed in each state, normalised by accounted warps
// (active = waiting + issued + Xalu + Xmem after excluding Others).
func (p *Monitor) Distribution() (waiting, issued, xalu, xmem float64) {
	total := float64(p.sums.Waiting + p.sums.Issued + p.sums.XALU + p.sums.XMEM)
	if total == 0 {
		return 0, 0, 0, 0
	}
	return float64(p.sums.Waiting) / total,
		float64(p.sums.Issued) / total,
		float64(p.sums.XALU) / total,
		float64(p.sums.XMEM) / total
}

// MeanCounts returns the mean per-sample, per-SM warp counts in each state.
func (p *Monitor) MeanCounts(numSMs int) (active, waiting, xalu, xmem float64) {
	if p.samples == 0 {
		return 0, 0, 0, 0
	}
	n := float64(p.samples * numSMs)
	return float64(p.sums.Active) / n, float64(p.sums.Waiting) / n,
		float64(p.sums.XALU) / n, float64(p.sums.XMEM) / n
}

// Series returns the per-epoch time series.
func (p *Monitor) Series() []EpochPoint { return p.series }
