// Package policy provides the non-Equalizer runtime policies used in the
// paper's evaluation: fixed operating points (static block counts), the
// DynCTA heuristic of Kayiran et al. [15], the cache-conscious wavefront
// scheduling (CCWS) of Rogers et al. [26], and a passive Monitor that
// records warp-state statistics for the characterisation figures.
package policy

import (
	"equalizer/internal/clock"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
)

// StaticBlocks pins every SM's resident-block ceiling to a constant.
type StaticBlocks struct{ n int }

var _ gpu.Policy = (*StaticBlocks)(nil)

// NewStaticBlocks builds the policy; n is clamped per-kernel by the machine.
func NewStaticBlocks(n int) *StaticBlocks { return &StaticBlocks{n: n} }

// Name implements gpu.Policy.
func (p *StaticBlocks) Name() string { return "static-blocks" }

// Reset implements gpu.Policy.
func (p *StaticBlocks) Reset(m *gpu.Machine, _ kernels.Kernel) {
	m.SetAllTargetBlocks(p.n)
}

// OnSMCycle implements gpu.Policy.
func (p *StaticBlocks) OnSMCycle(*gpu.Machine, clock.Time, int64) {}

// Multi fans a machine's policy hooks out to several policies in order. It
// lets a passive Monitor observe a run driven by an active policy (the
// Figure 11b study records DynCTA's concurrency choices this way).
type Multi []gpu.Policy

var _ gpu.Policy = (Multi)(nil)

// Name implements gpu.Policy.
func (m Multi) Name() string {
	names := make([]string, len(m))
	for i, p := range m {
		names[i] = p.Name()
	}
	return "multi(" + joinNames(names) + ")"
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "+"
		}
		out += n
	}
	return out
}

// Reset implements gpu.Policy.
func (m Multi) Reset(machine *gpu.Machine, k kernels.Kernel) {
	for _, p := range m {
		p.Reset(machine, k)
	}
}

// OnSMCycle implements gpu.Policy.
func (m Multi) OnSMCycle(machine *gpu.Machine, now clock.Time, smCycle int64) {
	for _, p := range m {
		p.OnSMCycle(machine, now, smCycle)
	}
}

// Monitor passively samples the warp-state census every sampleInterval
// cycles, accumulating the state distribution of Figure 4 and the per-epoch
// time series of Figure 2b. It never changes any parameter.
type Monitor struct {
	// SampleInterval and EpochCycles default to the paper's 128/4096.
	SampleInterval int
	EpochCycles    int

	sums    StateSums
	series  []EpochPoint
	acc     StateSums
	accN    int
	samples int
}

// StateSums accumulates census sums across samples and SMs.
type StateSums struct {
	Active, Waiting, Issued, XALU, XMEM, Others int64
}

// EpochPoint is one epoch of mean per-SM census values.
type EpochPoint struct {
	Epoch                               int
	Active, Waiting, XALU, XMEM, Issued float64
}

var _ gpu.Policy = (*Monitor)(nil)

// NewMonitor builds a monitor with the paper's sampling parameters.
func NewMonitor() *Monitor { return &Monitor{SampleInterval: 128, EpochCycles: 4096} }

// Name implements gpu.Policy.
func (p *Monitor) Name() string { return "monitor" }

// Reset implements gpu.Policy.
func (p *Monitor) Reset(*gpu.Machine, kernels.Kernel) {
	p.sums = StateSums{}
	p.series = p.series[:0]
	p.acc = StateSums{}
	p.accN = 0
	p.samples = 0
}

// OnSMCycle implements gpu.Policy.
func (p *Monitor) OnSMCycle(m *gpu.Machine, _ clock.Time, smCycle int64) {
	if smCycle%int64(p.SampleInterval) != 0 {
		return
	}
	var s StateSums
	for i := 0; i < m.NumSMs(); i++ {
		snap := m.SM(i).Snapshot()
		s.Active += int64(snap.Active)
		s.Waiting += int64(snap.Waiting)
		s.Issued += int64(snap.Issued)
		s.XALU += int64(snap.XALU)
		s.XMEM += int64(snap.XMEM)
		s.Others += int64(snap.Others)
	}
	p.sums.Active += s.Active
	p.sums.Waiting += s.Waiting
	p.sums.Issued += s.Issued
	p.sums.XALU += s.XALU
	p.sums.XMEM += s.XMEM
	p.sums.Others += s.Others
	p.samples++

	p.acc.Active += s.Active
	p.acc.Waiting += s.Waiting
	p.acc.Issued += s.Issued
	p.acc.XALU += s.XALU
	p.acc.XMEM += s.XMEM
	p.accN++
	if smCycle%int64(p.EpochCycles) == 0 {
		n := float64(p.accN * m.NumSMs())
		p.series = append(p.series, EpochPoint{
			Epoch:   len(p.series) + 1,
			Active:  float64(p.acc.Active) / n,
			Waiting: float64(p.acc.Waiting) / n,
			XALU:    float64(p.acc.XALU) / n,
			XMEM:    float64(p.acc.XMEM) / n,
			Issued:  float64(p.acc.Issued) / n,
		})
		p.acc = StateSums{}
		p.accN = 0
	}
}

// Distribution returns the mean per-SM census over the run: the fractions of
// warps observed in each state, normalised by accounted warps
// (active = waiting + issued + Xalu + Xmem after excluding Others).
func (p *Monitor) Distribution() (waiting, issued, xalu, xmem float64) {
	total := float64(p.sums.Waiting + p.sums.Issued + p.sums.XALU + p.sums.XMEM)
	if total == 0 {
		return 0, 0, 0, 0
	}
	return float64(p.sums.Waiting) / total,
		float64(p.sums.Issued) / total,
		float64(p.sums.XALU) / total,
		float64(p.sums.XMEM) / total
}

// MeanCounts returns the mean per-sample, per-SM warp counts in each state.
func (p *Monitor) MeanCounts(numSMs int) (active, waiting, xalu, xmem float64) {
	if p.samples == 0 {
		return 0, 0, 0, 0
	}
	n := float64(p.samples * numSMs)
	return float64(p.sums.Active) / n, float64(p.sums.Waiting) / n,
		float64(p.sums.XALU) / n, float64(p.sums.XMEM) / n
}

// Series returns the per-epoch time series.
func (p *Monitor) Series() []EpochPoint { return p.series }
