package policy

import (
	"equalizer/internal/clock"
	"equalizer/internal/config"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
)

// PowerBoost models the commercial GPU Boost / Boost 2.0 mechanism the paper
// contrasts Equalizer against (Section VI): the core clock is raised
// whenever the estimated chip power sits below the board budget and lowered
// when it exceeds it — the decision depends only on the power headroom and
// never on what the kernel actually needs, so a memory-bound kernel gets a
// useless (and costly) core boost while its true bottleneck stays at
// nominal frequency.
type PowerBoost struct {
	// BudgetW is the board power budget (TDP).
	BudgetW float64
	// MarginW is the headroom kept below the budget before boosting.
	MarginW float64
	// WindowCycles is the decision interval.
	WindowCycles int

	pcfg power.Config
	last struct {
		issued uint64
		cycles uint64
	}
}

var _ gpu.Policy = (*PowerBoost)(nil)

// NewPowerBoost builds the policy with a budget typical of the modelled
// board class.
func NewPowerBoost() *PowerBoost {
	return &PowerBoost{
		BudgetW:      165,
		MarginW:      10,
		WindowCycles: 4096,
		pcfg:         power.Default(),
	}
}

// Name implements gpu.Policy.
func (p *PowerBoost) Name() string { return "gpu-boost" }

// Reset implements gpu.Policy.
func (p *PowerBoost) Reset(m *gpu.Machine, _ kernels.Kernel) {
	p.last.issued = 0
	p.last.cycles = 0
}

// estimatePower is the on-board power model of the boost controller: a
// first-order estimate from the issue rate and the current operating point.
// Real boost hardware uses current sensors; the estimate plays that role.
func (p *PowerBoost) estimatePower(m *gpu.Machine, issueRate float64) float64 {
	smMult := m.SMLevel().Multiplier(p.pcfg.Modulation)
	memMult := m.MemLevel().Multiplier(p.pcfg.Modulation)
	v2 := smMult * smMult
	// Issue rate is warp instructions per SM cycle across the chip; convert
	// to watts with the mean per-instruction energy at the current voltage
	// and the nominal clock (1 cycle per SMClockPS picoseconds).
	cycleSeconds := float64(m.Config().SMClockPS) * 1e-12 / smMult
	dynamic := issueRate * p.pcfg.EnergyPerALU * v2 / cycleSeconds
	static := p.pcfg.LeakageW +
		p.pcfg.SMClockW*float64(m.NumSMs())*v2*smMult +
		p.pcfg.MemClockW*memMult*memMult*memMult +
		p.pcfg.DRAMStandbyW
	return static + dynamic
}

// OnSMCycle implements gpu.Policy.
func (p *PowerBoost) OnSMCycle(m *gpu.Machine, _ clock.Time, smCycle int64) {
	if smCycle%int64(p.WindowCycles) != 0 {
		return
	}
	var issued, cycles uint64
	for i := 0; i < m.NumSMs(); i++ {
		st := m.SM(i).Stats()
		issued += st.IssuedALU + st.IssuedSFU + st.IssuedMEM + st.IssuedTEX
		cycles = st.Cycles
	}
	dIssued := issued - p.last.issued
	dCycles := cycles - p.last.cycles
	p.last.issued, p.last.cycles = issued, cycles
	if dCycles == 0 {
		return
	}
	rate := float64(dIssued) / float64(dCycles)
	est := p.estimatePower(m, rate)
	switch {
	case est < p.BudgetW-p.MarginW && m.SMLevel() < config.VFHigh:
		m.RequestSMLevel(m.SMLevel().Step(+1))
	case est > p.BudgetW && m.SMLevel() > config.VFLow:
		m.RequestSMLevel(m.SMLevel().Step(-1))
	}
}
