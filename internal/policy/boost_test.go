package policy

import (
	"testing"

	"equalizer/internal/config"
)

func TestPowerBoostRaisesComputeKernelClock(t *testing.T) {
	m := machine(t, NewPowerBoost())
	res, err := m.RunKernel(kernel(t, "cutcp", 90), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residency.SM[config.VFHigh] == 0 {
		t.Fatal("boost never raised the SM clock with headroom available")
	}
	if res.Residency.Mem[config.VFHigh] != 0 || res.Residency.Mem[config.VFLow] != 0 {
		t.Fatal("boost touched the memory domain")
	}
}

func TestPowerBoostRespectsBudget(t *testing.T) {
	p := NewPowerBoost()
	p.BudgetW = 50 // below even idle power: must never boost
	m := machine(t, p)
	res, err := m.RunKernel(kernel(t, "cutcp", 60), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residency.SM[config.VFHigh] != 0 {
		t.Fatal("boost exceeded the power budget")
	}
}

func TestPowerBoostDoesNotHelpCacheKernel(t *testing.T) {
	k := kernel(t, "kmn", 90)
	base, err := machine(t, nil).RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := machine(t, NewPowerBoost()).RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(base.TimePS) / float64(boosted.TimePS)
	if speedup > 1.08 {
		t.Fatalf("boost sped up a cache-thrashing kernel by %.2fx; the core clock is not its bottleneck", speedup)
	}
}

func TestPowerBoostName(t *testing.T) {
	if NewPowerBoost().Name() != "gpu-boost" {
		t.Fatal("name wrong")
	}
}
