package policy

import (
	"testing"

	"equalizer/internal/config"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
)

func machine(t *testing.T, p gpu.Policy) *gpu.Machine {
	t.Helper()
	m, err := gpu.New(config.Default(), power.Default(), p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func kernel(t *testing.T, name string, grid int) kernels.Kernel {
	t.Helper()
	k, err := kernels.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if grid > 0 {
		k.GridBlocks = grid
	}
	return k
}

func TestStaticBlocksPinsTarget(t *testing.T) {
	p := NewStaticBlocks(2)
	m := machine(t, p)
	res, err := m.RunKernel(kernel(t, "cutcp", 30), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SMCycles == 0 {
		t.Fatal("no progress")
	}
	if tb := m.SM(0).TargetBlocks(); tb != 2 {
		t.Fatalf("target blocks = %d, want 2", tb)
	}
	if p.Name() != "static-blocks" {
		t.Fatal("name wrong")
	}
}

func TestMonitorDistributionComputeKernel(t *testing.T) {
	mon := NewMonitor()
	m := machine(t, mon)
	if _, err := m.RunKernel(kernel(t, "cutcp", 30), 0); err != nil {
		t.Fatal(err)
	}
	w, i, xa, xm := mon.Distribution()
	sum := w + i + xa + xm
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("distribution sums to %g, want 1", sum)
	}
	if xa < 0.3 {
		t.Fatalf("compute kernel excess-ALU fraction = %.2f, want dominant", xa)
	}
	if xa <= xm {
		t.Fatalf("compute kernel has XALU %.2f <= XMEM %.2f", xa, xm)
	}
}

func TestMonitorDistributionMemoryKernel(t *testing.T) {
	mon := NewMonitor()
	m := machine(t, mon)
	if _, err := m.RunKernel(kernel(t, "lbm", 105), 0); err != nil {
		t.Fatal(err)
	}
	_, _, xa, xm := mon.Distribution()
	if xm <= xa {
		t.Fatalf("memory kernel has XMEM %.2f <= XALU %.2f", xm, xa)
	}
	if xm < 0.1 {
		t.Fatalf("memory kernel XMEM fraction = %.2f, want significant", xm)
	}
}

func TestMonitorSeriesTracksEpochs(t *testing.T) {
	mon := NewMonitor()
	m := machine(t, mon)
	if _, err := m.RunKernel(kernel(t, "cutcp", 60), 0); err != nil {
		t.Fatal(err)
	}
	series := mon.Series()
	if len(series) < 2 {
		t.Fatalf("series has %d epochs, want several", len(series))
	}
	for i, p := range series {
		if p.Epoch != i+1 {
			t.Fatalf("epoch numbering broken at %d: %d", i, p.Epoch)
		}
		if p.Active < 0 || p.Active > 48 {
			t.Fatalf("active out of range: %g", p.Active)
		}
	}
}

func TestMonitorResetClears(t *testing.T) {
	mon := NewMonitor()
	m := machine(t, mon)
	if _, err := m.RunKernel(kernel(t, "cutcp", 30), 0); err != nil {
		t.Fatal(err)
	}
	if len(mon.Series()) == 0 {
		t.Fatal("no series collected")
	}
	mon.Reset(m, kernels.Kernel{})
	if len(mon.Series()) != 0 {
		t.Fatal("series survived reset")
	}
	if a, _, _, _ := mon.MeanCounts(15); a != 0 {
		t.Fatal("sums survived reset")
	}
	if w, i, xa, xm := mon.Distribution(); w+i+xa+xm != 0 {
		t.Fatal("distribution nonzero after reset")
	}
}

func TestDynCTAThrottlesCacheKernel(t *testing.T) {
	dyn := NewDynCTA()
	m := machine(t, dyn)
	k := kernel(t, "kmn", 90)
	if _, err := m.RunKernel(k, 0); err != nil {
		t.Fatal(err)
	}
	if tb := m.SM(0).TargetBlocks(); tb >= k.MaxResidentBlocks(48) {
		t.Fatalf("dynCTA never throttled: target still %d", tb)
	}
}

func TestDynCTAFasterThanBaselineOnCacheKernel(t *testing.T) {
	k := kernel(t, "kmn", 90)
	base, err := machine(t, nil).RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := machine(t, NewDynCTA()).RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.TimePS >= base.TimePS {
		t.Fatalf("dynCTA (%d ps) not faster than baseline (%d ps)", dyn.TimePS, base.TimePS)
	}
}

func TestDynCTADoesNotTouchFrequency(t *testing.T) {
	m := machine(t, NewDynCTA())
	if _, err := m.RunKernel(kernel(t, "lbm", 105), 0); err != nil {
		t.Fatal(err)
	}
	if m.SMLevel() != config.VFNormal || m.MemLevel() != config.VFNormal {
		t.Fatalf("dynCTA changed frequency: sm=%v mem=%v", m.SMLevel(), m.MemLevel())
	}
}

func TestCCWSThrottlesThrashingKernel(t *testing.T) {
	k := kernel(t, "kmn", 90)
	base, err := machine(t, nil).RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	ccws, err := machine(t, NewCCWS()).RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ccws.TimePS >= base.TimePS {
		t.Fatalf("CCWS (%d ps) not faster than thrashing baseline (%d ps)", ccws.TimePS, base.TimePS)
	}
	if ccws.L1HitRate <= base.L1HitRate {
		t.Fatalf("CCWS hit rate %.2f not above baseline %.2f", ccws.L1HitRate, base.L1HitRate)
	}
}

func TestCCWSHarmlessOnComputeKernel(t *testing.T) {
	k := kernel(t, "cutcp", 30)
	base, err := machine(t, nil).RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	ccws, err := machine(t, NewCCWS()).RunKernel(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(ccws.TimePS) / float64(base.TimePS)
	if ratio > 1.05 {
		t.Fatalf("CCWS slowed a compute kernel by %.1f%%", (ratio-1)*100)
	}
}

func TestCCWSKeepsBlockCountAndFrequency(t *testing.T) {
	m := machine(t, NewCCWS())
	k := kernel(t, "kmn", 90)
	if _, err := m.RunKernel(k, 0); err != nil {
		t.Fatal(err)
	}
	if tb := m.SM(0).TargetBlocks(); tb != k.MaxResidentBlocks(48) {
		t.Fatalf("CCWS changed block target to %d", tb)
	}
	if m.SMLevel() != config.VFNormal || m.MemLevel() != config.VFNormal {
		t.Fatal("CCWS changed frequency")
	}
}

func TestMultiFansOut(t *testing.T) {
	mon := NewMonitor()
	dyn := NewDynCTA()
	multi := Multi{dyn, mon}
	if multi.Name() != "multi(dynCTA+monitor)" {
		t.Fatalf("multi name = %q", multi.Name())
	}
	m := machine(t, multi)
	k := kernel(t, "kmn", 90)
	if _, err := m.RunKernel(k, 0); err != nil {
		t.Fatal(err)
	}
	if len(mon.Series()) == 0 {
		t.Fatal("monitor saw nothing through Multi")
	}
	if tb := m.SM(0).TargetBlocks(); tb >= k.MaxResidentBlocks(48) {
		t.Fatal("dynCTA did not act through Multi")
	}
}

func TestPolicyNames(t *testing.T) {
	if NewDynCTA().Name() != "dynCTA" {
		t.Fatal("dynCTA name")
	}
	if NewCCWS().Name() != "CCWS" {
		t.Fatal("CCWS name")
	}
	if NewMonitor().Name() != "monitor" {
		t.Fatal("monitor name")
	}
}
