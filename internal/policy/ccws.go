package policy

import (
	"sort"

	"equalizer/internal/cache"
	"equalizer/internal/clock"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
)

// CCWS reimplements Cache-Conscious Wavefront Scheduling (Rogers et al.,
// MICRO 2012), the paper's cache-locality baseline. Each SM keeps a victim
// tag array recording recently evicted lines and their owner warps. When a
// warp misses on a line it itself evicted — lost intra-warp locality — its
// locality score rises; the issue scheduler then restricts memory issue to
// the highest-scoring warps, effectively shrinking the set of warps allowed
// to touch the L1 until locality recovers. Scores decay over time. CCWS
// never changes block counts or frequency.
type CCWS struct {
	// VictimTags bounds the per-SM victim tag array.
	VictimTags int
	// ScoreBump is added to a warp's score on a detected locality loss.
	ScoreBump int
	// DecayEvery is the cycle interval at which all scores decay by one.
	DecayEvery int
	// WarpsPerScore is the throttle gain: one warp is removed from the
	// memory-issue set for every WarpsPerScore points of total score.
	WarpsPerScore int

	sms []*ccwsSM
}

var _ gpu.Policy = (*CCWS)(nil)

// NewCCWS builds the policy with defaults analogous to the published
// configuration (the paper notes CCWS is sensitive to these).
func NewCCWS() *CCWS {
	return &CCWS{
		VictimTags:    512,
		ScoreBump:     64,
		DecayEvery:    16,
		WarpsPerScore: 96,
	}
}

// Name implements gpu.Policy.
func (p *CCWS) Name() string { return "CCWS" }

// ccwsSM is the per-SM locality detector and throttle.
type ccwsSM struct {
	parent *CCWS
	// owner maps a resident line to the warp that last touched it.
	owner map[cache.Addr]int
	// victims maps an evicted line to the warp that owned it; ring bounds
	// the array.
	victims map[cache.Addr]int
	ring    []cache.Addr
	ringPos int

	scores  []int
	allowed []bool
}

func newCCWSSM(parent *CCWS, maxWarps int) *ccwsSM {
	s := &ccwsSM{
		parent:  parent,
		owner:   make(map[cache.Addr]int),
		victims: make(map[cache.Addr]int, parent.VictimTags),
		ring:    make([]cache.Addr, parent.VictimTags),
		scores:  make([]int, maxWarps),
		allowed: make([]bool, maxWarps),
	}
	for i := range s.allowed {
		s.allowed[i] = true
	}
	return s
}

// OnL1Access implements sm.L1Listener.
func (s *ccwsSM) OnL1Access(warpSlot int, line cache.Addr, res cache.AccessResult) {
	switch res {
	case cache.Hit, cache.Miss, cache.MergedMiss:
		if res != cache.Hit {
			if owner, ok := s.victims[line]; ok && owner == warpSlot {
				// The warp lost its own locality: raise its score.
				s.scores[warpSlot] += s.parent.ScoreBump
				delete(s.victims, line)
			}
		}
		s.owner[line] = warpSlot
	case cache.Reject:
		// No cache state change.
	}
}

// OnL1Evict implements sm.L1Listener.
func (s *ccwsSM) OnL1Evict(line cache.Addr) {
	owner, ok := s.owner[line]
	if !ok {
		return
	}
	delete(s.owner, line)
	// Insert into the bounded victim tag array, displacing the oldest.
	if old := s.ring[s.ringPos]; old != 0 {
		delete(s.victims, old)
	}
	s.ring[s.ringPos] = line
	s.ringPos = (s.ringPos + 1) % len(s.ring)
	s.victims[line] = owner
}

// filter implements the memory-issue veto.
func (s *ccwsSM) filter(warpSlot int) bool { return s.allowed[warpSlot] }

// rebalance recomputes the allowed set: total score shrinks the number of
// warps permitted to issue loads; the highest-scoring warps keep access.
func (s *ccwsSM) rebalance() {
	total := 0
	for _, sc := range s.scores {
		total += sc
	}
	n := len(s.scores)
	throttled := total / s.parent.WarpsPerScore
	if throttled > n-1 {
		throttled = n - 1
	}
	if throttled == 0 {
		for i := range s.allowed {
			s.allowed[i] = true
		}
		return
	}
	// Rank warps by score descending; the bottom `throttled` lose access.
	//eqlint:allow allocfree -- rebalance runs at epoch rate, not per cycle; CCWS is not BatchAware so applyBatch never actually drives it
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	//eqlint:allow allocfree -- epoch-rate sort; see the rebalance rationale above
	sort.SliceStable(idx, func(a, b int) bool { return s.scores[idx[a]] > s.scores[idx[b]] })
	for rank, w := range idx {
		s.allowed[w] = rank < n-throttled
	}
}

func (s *ccwsSM) decay() {
	for i := range s.scores {
		if s.scores[i] > 0 {
			s.scores[i]--
		}
	}
}

// Reset implements gpu.Policy.
func (p *CCWS) Reset(m *gpu.Machine, _ kernels.Kernel) {
	p.sms = make([]*ccwsSM, m.NumSMs())
	for i := range p.sms {
		s := newCCWSSM(p, m.Config().MaxWarpsPerSM)
		p.sms[i] = s
		m.SM(i).SetL1Listener(s)
		m.SM(i).SetIssueFilter(s.filter)
	}
}

// OnSMCycle implements gpu.Policy.
func (p *CCWS) OnSMCycle(m *gpu.Machine, _ clock.Time, smCycle int64) {
	if smCycle%int64(p.DecayEvery) == 0 {
		for _, s := range p.sms {
			s.decay()
		}
	}
	if smCycle%64 == 0 {
		for _, s := range p.sms {
			s.rebalance()
		}
	}
}
