package policy

import (
	"equalizer/internal/clock"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
)

// DynCTA reimplements the heuristic thread-block throttling of Kayiran et
// al., "Neither More nor Less: Optimizing Thread-level Parallelism for
// GPGPUs" (PACT 2013), as the paper's primary concurrency baseline.
//
// DynCTA classifies stall cycles rather than warp readiness: it monitors the
// fraction of warps stalled waiting for memory and the SM idleness over a
// monitoring window, decreasing the block count when memory waiting is high
// and increasing it when the SM starves for work. Unlike Equalizer it cannot
// distinguish latency-bound waiting (which wants more concurrency) from
// bandwidth-bound back-pressure (which wants less) — the weakness Figure 11b
// demonstrates on spmv — and it never touches frequency.
type DynCTA struct {
	// WindowCycles is the monitoring window (2048 cycles, matching the
	// paper's description of a coarser-grained heuristic).
	WindowCycles int
	// HighWaiting and LowWaiting are the stall-fraction thresholds
	// (t_high/t_low in DynCTA). The narrow deadband mirrors the published
	// tuning and is the source of the heuristic's fragility: kernels whose
	// cache-fitting stall fraction falls below t_low bounce back up into
	// thrashing (oscillation), which Equalizer's Xmem-based test avoids.
	HighWaiting float64
	LowWaiting  float64

	sampleEvery int
	acc         []dynAcc
}

type dynAcc struct {
	memStall, active int64
	idleSamples      int
	samples          int
}

var _ gpu.Policy = (*DynCTA)(nil)

// NewDynCTA builds the policy with its published-style thresholds. The wide
// deadband between the two thresholds is what makes the heuristic coarse:
// it stops throttling as soon as the stall fraction dips under t_high, often
// short of the cache-fitting concurrency Equalizer reaches, and it refuses
// to add blocks to a latency-bound kernel because high memory waiting looks
// identical to memory contention.
func NewDynCTA() *DynCTA {
	return &DynCTA{
		WindowCycles: 8192,
		HighWaiting:  0.95,
		LowWaiting:   0.85,
		sampleEvery:  128,
	}
}

// Name implements gpu.Policy.
func (p *DynCTA) Name() string { return "dynCTA" }

// Reset implements gpu.Policy.
func (p *DynCTA) Reset(m *gpu.Machine, _ kernels.Kernel) {
	p.acc = make([]dynAcc, m.NumSMs())
}

// OnSMCycle implements gpu.Policy.
func (p *DynCTA) OnSMCycle(m *gpu.Machine, _ clock.Time, smCycle int64) {
	if smCycle%int64(p.sampleEvery) != 0 {
		return
	}
	for i := range p.acc {
		snap := m.SM(i).Snapshot()
		a := &p.acc[i]
		// DynCTA's C_mem covers every memory-induced stall: warps waiting
		// on data and warps blocked behind the memory pipeline alike.
		a.memStall += int64(snap.Waiting) + int64(snap.XMEM)
		a.active += int64(snap.Active)
		if snap.Issued == 0 && snap.XALU == 0 && snap.XMEM == 0 {
			a.idleSamples++
		}
		a.samples++
	}
	if smCycle%int64(p.WindowCycles) != 0 {
		return
	}
	for i := range p.acc {
		a := &p.acc[i]
		if a.samples == 0 || a.active == 0 {
			*a = dynAcc{}
			continue
		}
		stallFrac := float64(a.memStall) / float64(a.active)
		idleFrac := float64(a.idleSamples) / float64(a.samples)
		cur := m.SM(i).TargetBlocks()
		switch {
		case stallFrac > p.HighWaiting:
			// Many warps stalled on memory: DynCTA reads this as memory
			// contention and throttles concurrency.
			m.SetTargetBlocks(i, cur-1)
		case stallFrac < p.LowWaiting && idleFrac < 0.1:
			// Warps rarely stall and the SM is busy: more blocks are safe.
			m.SetTargetBlocks(i, cur+1)
		}
		*a = dynAcc{}
	}
}
