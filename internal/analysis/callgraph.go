package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
)

// CallGraph is a conservative, module-local call graph: one node per
// function declared in the analyzed packages, edges for every call that can
// be resolved statically. Calls through interfaces are devirtualized over
// every module type implementing the interface (an over-approximation);
// calls of func-typed values are recorded as dynamic sites that analyzers
// must treat as unknowable. Statements dominated by a constant-false
// condition (the eqdebug invariant guards compile to `if false` in release
// analysis) contribute no edges.
//
// Known unsoundness, accepted and documented in DESIGN.md §10: a method
// bound to a func value (s.wakeFn = s.wakeWarp) re-enters the graph only at
// the dynamic call site, not at the bound method — shardphase flags the
// dynamic site itself, and the runtime differential/alloc-pin suites remain
// the backstop behind every static exemption.
type CallGraph struct {
	nodes map[*types.Func]*CallNode
	// namedTypes are the non-generic named types of the module packages,
	// used for interface devirtualization.
	namedTypes []*types.Named
}

// CallNode is one declared function and its outgoing call sites.
type CallNode struct {
	// Fn is the function object (generic origin for generic functions).
	Fn *types.Func
	// Decl is the declaration, carrying doc-comment directives.
	Decl *ast.FuncDecl
	// Pkg is the declaring package.
	Pkg *Package
	// Out are the function's call sites in source order, including sites
	// inside function literals (attributed to the enclosing declaration).
	Out []CallSite
}

// CallSite is one call expression inside a function body.
type CallSite struct {
	// Call is the expression; its position anchors diagnostics.
	Call *ast.CallExpr
	// Targets are the possible callees: one for a static call, every module
	// implementation for a devirtualized interface call, none for a dynamic
	// call.
	Targets []*types.Func
	// Dynamic marks a call of a func-typed value — unresolvable statically.
	Dynamic bool
	// Interface marks a devirtualized interface method call.
	Interface bool
}

// HasDirective reports whether the node's declaration carries the given
// //eqlint:<directive> marker.
func (n *CallNode) HasDirective(directive string) bool {
	return funcHasDirective(n.Decl, directive)
}

// Node returns the graph node for fn (normalized to its generic origin), or
// nil for functions declared outside the module packages.
func (g *CallGraph) Node(fn *types.Func) *CallNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// NodesWithDirective returns every node whose declaration carries the given
// //eqlint:<directive> marker, in deterministic source order.
func (g *CallGraph) NodesWithDirective(directive string) []*CallNode {
	var out []*CallNode
	for _, n := range g.nodes {
		if n.HasDirective(directive) {
			out = append(out, n)
		}
	}
	sortNodes(out)
	return out
}

// Nodes returns every node in deterministic source order.
func (g *CallGraph) Nodes() []*CallNode {
	out := make([]*CallNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sortNodes(out)
	return out
}

func sortNodes(ns []*CallNode) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Pkg.PkgPath != ns[j].Pkg.PkgPath {
			return ns[i].Pkg.PkgPath < ns[j].Pkg.PkgPath
		}
		pi := ns[i].Pkg.Fset.Position(ns[i].Decl.Pos())
		pj := ns[j].Pkg.Fset.Position(ns[j].Decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
}

// buildCallGraph constructs the graph over the given packages.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: map[*types.Func]*CallNode{}}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			g.namedTypes = append(g.namedTypes, named)
		}
	}
	for _, pkg := range pkgs {
		forEachFunc(pkg.Files, func(decl *ast.FuncDecl) {
			fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				return
			}
			node := &CallNode{Fn: fn, Decl: decl, Pkg: pkg}
			inspectLive(pkg.Info, decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if site, ok := g.classify(pkg.Info, call); ok {
					node.Out = append(node.Out, site)
				}
				return true
			})
			g.nodes[fn] = node
		})
	}
	return g
}

// classify resolves one call expression into a call site, or ok=false for
// non-calls in call syntax (conversions, builtins, immediately invoked
// literals — the per-function construct checks handle those directly).
func (g *CallGraph) classify(info *types.Info, call *ast.CallExpr) (CallSite, bool) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return CallSite{}, false // conversion
	}
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation: f[T](x).
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if _, isSel := idx.X.(*ast.SelectorExpr); isSel || isFuncIdent(info, idx.X) {
			fun = ast.Unparen(idx.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return CallSite{Call: call, Targets: []*types.Func{obj.Origin()}}, true
		case *types.Builtin:
			return CallSite{}, false
		case *types.TypeName:
			return CallSite{}, false
		case nil:
			return CallSite{}, false
		default:
			return CallSite{Call: call, Dynamic: true}, true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				f := sel.Obj().(*types.Func)
				if recv := f.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
					return CallSite{Call: call, Targets: g.implementations(f), Interface: true}, true
				}
				return CallSite{Call: call, Targets: []*types.Func{f.Origin()}}, true
			default: // FieldVal: calling a func-typed struct field
				return CallSite{Call: call, Dynamic: true}, true
			}
		}
		// Package-qualified reference: pkg.F(...) or pkg.V(...).
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			return CallSite{Call: call, Targets: []*types.Func{obj.Origin()}}, true
		case *types.Builtin, *types.TypeName, nil:
			return CallSite{}, false
		default:
			return CallSite{Call: call, Dynamic: true}, true
		}
	case *ast.FuncLit:
		// Immediately invoked literal: its body is already attributed to the
		// enclosing declaration by the walk.
		return CallSite{}, false
	default:
		return CallSite{Call: call, Dynamic: true}, true
	}
}

func isFuncIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isFunc := info.Uses[id].(*types.Func)
	return isFunc
}

// implementations returns every method of a module named type that
// implements the given interface method, normalized to generic origins.
func (g *CallGraph) implementations(ifaceMethod *types.Func) []*types.Func {
	recv := ifaceMethod.Type().(*types.Signature).Recv()
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, named := range g.namedTypes {
		if types.IsInterface(named.Underlying()) {
			continue
		}
		var impl types.Type = named
		if !types.Implements(impl, iface) {
			impl = types.NewPointer(named)
			if !types.Implements(impl, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, ifaceMethod.Pkg(), ifaceMethod.Name())
		if m, ok := obj.(*types.Func); ok {
			out = append(out, m.Origin())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// Reachable computes the functions reachable from roots along static and
// devirtualized edges, in deterministic BFS order. The returned map gives
// each reached node its BFS parent (roots map to nil); visit, when non-nil,
// observes each node as it is reached and may veto descending through it by
// returning false.
func (g *CallGraph) Reachable(roots []*CallNode, visit func(n, parent *CallNode) bool) map[*CallNode]*CallNode {
	parent := map[*CallNode]*CallNode{}
	var queue []*CallNode
	for _, r := range roots {
		if _, ok := parent[r]; ok {
			continue
		}
		parent[r] = nil
		if visit == nil || visit(r, nil) {
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, site := range n.Out {
			for _, t := range site.Targets {
				tn := g.Node(t)
				if tn == nil {
					continue
				}
				if _, ok := parent[tn]; ok {
					continue
				}
				parent[tn] = n
				if visit == nil || visit(tn, n) {
					queue = append(queue, tn)
				}
			}
		}
	}
	return parent
}

// inspectLive walks an AST like ast.Inspect but skips statements that are
// statically dead: the then-branch of `if <const-false cond>` (release
// builds of the eqdebug invariant layer compile to exactly that shape).
func inspectLive(info *types.Info, root ast.Node, fn func(ast.Node) bool) {
	if root == nil {
		return
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if ifs, ok := n.(*ast.IfStmt); ok && condConstFalse(info, ifs.Cond) {
				if ifs.Init != nil {
					walk(ifs.Init)
				}
				if ifs.Else != nil {
					walk(ifs.Else)
				}
				return false
			}
			return fn(n)
		})
	}
	walk(root)
}

// condConstFalse reports whether a condition is statically false: a
// constant-false expression, or a && chain whose left operand is.
func condConstFalse(info *types.Info, cond ast.Expr) bool {
	cond = ast.Unparen(cond)
	if tv, ok := info.Types[cond]; ok && tv.Value != nil && tv.Value.Kind() == constant.Bool && !constant.BoolVal(tv.Value) {
		return true
	}
	if b, ok := cond.(*ast.BinaryExpr); ok && b.Op.String() == "&&" {
		return condConstFalse(info, b.X)
	}
	return false
}

// funcDisplayName renders a function for diagnostics: package-name
// qualified ("(*sm.SM).Step", "gpu.stepMemory") — unambiguous in this
// module without full-import-path noise.
func funcDisplayName(fn *types.Func) string {
	qual := func(p *types.Package) string { return p.Name() }
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return fmt.Sprintf("(%s).%s", types.TypeString(recv.Type(), qual), fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
