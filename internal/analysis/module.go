package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// Module aggregates every package of one analysis load so module analyzers
// can check cross-package properties. It lazily builds and caches the
// conservative call graph and carries the exported-facts store that
// analyzers use to publish derived knowledge about objects (the x/tools
// Fact idea, stdlib-only).
type Module struct {
	// Pkgs are the loaded packages, sorted by import path.
	Pkgs []*Package
	// Fset positions every file of the load.
	Fset *token.FileSet

	graphOnce sync.Once
	graph     *CallGraph

	allowOnce sync.Once
	allowset  *allowSet

	factsMu sync.Mutex
	facts   map[types.Object][]Fact
}

// NewModule builds a module view over the given packages.
func NewModule(pkgs []*Package) *Module {
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].PkgPath < sorted[j].PkgPath })
	m := &Module{Pkgs: sorted, facts: map[types.Object][]Fact{}}
	if len(sorted) > 0 {
		m.Fset = sorted[0].Fset
	} else {
		m.Fset = token.NewFileSet()
	}
	return m
}

// Graph returns the module's conservative call graph, built on first use.
func (m *Module) Graph() *CallGraph {
	m.graphOnce.Do(func() { m.graph = buildCallGraph(m.Pkgs) })
	return m.graph
}

func (m *Module) allows() *allowSet {
	m.allowOnce.Do(func() { m.allowset = mergeAllowSets(m.Pkgs) })
	return m.allowset
}

// Fact is a piece of analyzer-derived knowledge attached to a types.Object.
// Implementations are pointer types whose AFact method marks the intent,
// mirroring golang.org/x/tools/go/analysis.Fact.
type Fact interface{ AFact() }

// ExportObjectFact publishes a fact about obj, visible to later analyzers
// in the same module run and to tests via Module.ObjectFacts.
func (m *Module) ExportObjectFact(obj types.Object, f Fact) {
	m.factsMu.Lock()
	defer m.factsMu.Unlock()
	m.facts[obj] = append(m.facts[obj], f)
}

// ImportObjectFact copies the fact of target's dynamic type previously
// exported for obj into target, reporting whether one was found. target
// must be a non-nil pointer, like the x/tools contract.
func (m *Module) ImportObjectFact(obj types.Object, target Fact) bool {
	m.factsMu.Lock()
	defer m.factsMu.Unlock()
	for _, f := range m.facts[obj] {
		if reflect.TypeOf(f) == reflect.TypeOf(target) {
			reflect.ValueOf(target).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// ObjectFacts returns every fact exported for obj.
func (m *Module) ObjectFacts(obj types.Object) []Fact {
	m.factsMu.Lock()
	defer m.factsMu.Unlock()
	return append([]Fact(nil), m.facts[obj]...)
}

// ModulePass carries one module analyzer's view of the whole load.
type ModulePass struct {
	Analyzer *Analyzer
	Module   *Module

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Module.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportObjectFact publishes a fact about obj through the module store.
func (p *ModulePass) ExportObjectFact(obj types.Object, f Fact) {
	p.Module.ExportObjectFact(obj, f)
}

// ImportObjectFact copies a previously exported fact of target's type into
// target.
func (p *ModulePass) ImportObjectFact(obj types.Object, target Fact) bool {
	return p.Module.ImportObjectFact(obj, target)
}

// RunModuleAnalyzer executes one module analyzer over the whole load and
// returns its diagnostics with suppression directives already applied,
// sorted by position. Reusing one Module across analyzers shares the cached
// call graph and the facts store.
func RunModuleAnalyzer(a *Analyzer, mod *Module) ([]Diagnostic, error) {
	if a.RunModule == nil {
		return nil, fmt.Errorf("analysis: %s is not a module analyzer", a.Name)
	}
	pass := &ModulePass{Analyzer: a, Module: mod}
	if err := a.RunModule(pass); err != nil {
		return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
	}
	allows := mod.allows()
	out := pass.diags[:0]
	for _, d := range pass.diags {
		if allows.allows(d.Pos.Filename, d.Pos.Line, a.Name) {
			continue
		}
		out = append(out, d)
	}
	sortDiagnostics(out)
	return out, nil
}
