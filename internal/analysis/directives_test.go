package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func loadTestPkg(t *testing.T, dir string) *Package {
	t.Helper()
	path := filepath.Join("testdata", "src", dir)
	loader, err := NewLoader(path)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(path)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestVerifyDirectives covers the three hygiene checks over the directives
// fixture: unknown verb and unknown analyzer name always report; an unused
// allow reports only under strict, and only when its analyzer ran.
func TestVerifyDirectives(t *testing.T) {
	pkg := loadTestPkg(t, "directives")
	known := AllNames()

	find := func(diags []Diagnostic, substr string) int {
		n := 0
		for _, d := range diags {
			if strings.Contains(d.Message, substr) {
				n++
			}
		}
		return n
	}

	lax := VerifyDirectives(pkg, known, map[string]bool{"errstrict": true}, false)
	if got := find(lax, `unknown eqlint directive "frobnicate"`); got != 1 {
		t.Errorf("lax: %d unknown-verb findings, want 1: %v", got, lax)
	}
	if got := find(lax, `unknown analyzer "nosuchanalyzer"`); got != 1 {
		t.Errorf("lax: %d unknown-name findings, want 1: %v", got, lax)
	}
	if got := find(lax, "suppressed nothing; remove it"); got != 0 {
		t.Errorf("lax: %d unused findings, want 0: %v", got, lax)
	}

	strict := VerifyDirectives(pkg, known, map[string]bool{"errstrict": true}, true)
	if got := find(strict, "allow directive for errstrict suppressed nothing"); got != 1 {
		t.Errorf("strict: %d unused findings, want 1: %v", got, strict)
	}

	// strict, but errstrict did not run: the unused check stays quiet.
	strictSkipped := VerifyDirectives(pkg, known, map[string]bool{}, true)
	if got := find(strictSkipped, "suppressed nothing; remove it"); got != 0 {
		t.Errorf("strict without errstrict: %d unused findings, want 0: %v", got, strictSkipped)
	}
}

// FuzzAllowDirective hammers the suppression-comment parser with arbitrary
// comment text: it must never panic, only //eqlint:allow forms may set
// eqlint=true, and parsed names never contain separator characters.
func FuzzAllowDirective(f *testing.F) {
	seeds := []string{
		"//eqlint:allow nodeterminism -- reason",
		"//eqlint:allow errstrict,probehygiene -- two names",
		"//eqlint:allow",
		"//eqlint:allow -- bare with reason",
		"//eqlint:allowfoo not an allow",
		"//eqlint:shardroot",
		"//nolint:errcheck",
		"//nolint:errcheck // trailing",
		"//nolint:gosec,errcheck",
		"// plain comment",
		"//eqlint:allow \t mixed,separators\there",
		"//eqlint:allow a--b",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		names, eqlint := parseAllowDirective(text)
		if names == nil {
			if eqlint {
				t.Fatalf("parseAllowDirective(%q): eqlint=true with nil names", text)
			}
			return
		}
		if len(names) == 0 {
			t.Fatalf("parseAllowDirective(%q): empty non-nil names", text)
		}
		if eqlint && !strings.HasPrefix(text, "//eqlint:allow") {
			t.Fatalf("parseAllowDirective(%q): eqlint=true for non-allow text", text)
		}
		if !eqlint && !strings.HasPrefix(text, "//nolint:") {
			t.Fatalf("parseAllowDirective(%q): parsed names from non-directive text", text)
		}
		for _, n := range names {
			if n == "" || strings.ContainsAny(n, ", \t") {
				t.Fatalf("parseAllowDirective(%q): bad name %q", text, n)
			}
		}
	})
}
