package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrStrict is errcheck with no default exemptions, scoped to the
// experiment-persistence paths (internal/exp and internal/exp/runcache): a
// silently dropped write or decode error there turns a disk-cache glitch
// into a silently wrong figure. Every call whose result set includes an
// error must consume it; discarding one deliberately requires an
// //eqlint:allow errstrict (or //nolint:errcheck) directive stating why.
var ErrStrict = &Analyzer{
	Name: "errstrict",
	Doc:  "errors in the experiment persistence paths must be handled, not dropped",
	Scope: func(pkgPath string) bool {
		return strings.HasSuffix(pkgPath, "internal/exp") ||
			strings.HasSuffix(pkgPath, "internal/exp/runcache")
	},
	Run: runErrStrict,
}

func runErrStrict(pass *Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				checkDroppedCall(pass, call, "ignored")
			}
		case *ast.DeferStmt:
			checkDroppedCall(pass, n.Call, "ignored by defer")
		case *ast.GoStmt:
			checkDroppedCall(pass, n.Call, "ignored by go statement")
		case *ast.AssignStmt:
			checkBlankError(pass, n)
		}
		return true
	})
	return nil
}

// errorPositions returns the indices of error-typed results of a call, and
// the callee name for reporting.
func errorResults(pass *Pass, call *ast.CallExpr) ([]int, string) {
	t := pass.TypeOf(call)
	if t == nil {
		return nil, ""
	}
	name := calleeName(call)
	switch t := t.(type) {
	case *types.Tuple:
		var idx []int
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				idx = append(idx, i)
			}
		}
		return idx, name
	default:
		if isErrorType(t) {
			return []int{0}, name
		}
	}
	return nil, name
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func calleeName(call *ast.CallExpr) string {
	if c := exprChain(call.Fun); c != "" {
		return c
	}
	return "call"
}

func checkDroppedCall(pass *Pass, call *ast.CallExpr, how string) {
	if isInfallibleWrite(pass, call) {
		return
	}
	if idx, name := errorResults(pass, call); len(idx) > 0 {
		pass.Reportf(call.Pos(),
			"error returned by %s is %s; handle it or annotate //eqlint:allow errstrict -- reason", name, how)
	}
}

// isInfallibleWrite reports whether call writes to a sink whose Write
// methods are documented to never return an error (strings.Builder,
// bytes.Buffer). Both direct method calls (b.WriteString(...)) and
// fmt.Fprint* with such a sink as the writer are exempt: the error result
// exists only to satisfy io.Writer.
func isInfallibleWrite(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Method on the sink itself.
	if isInfallibleSink(pass.TypeOf(sel.X)) {
		return true
	}
	// fmt.Fprint/Fprintf/Fprintln with the sink as the first argument.
	if id, ok := sel.X.(*ast.Ident); ok && isBuiltinPkg(pass, id, "fmt") &&
		strings.HasPrefix(sel.Sel.Name, "Fprint") && len(call.Args) > 0 {
		return isInfallibleSink(pass.TypeOf(call.Args[0]))
	}
	return false
}

func isInfallibleSink(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer")
}

// isBuiltinPkg reports whether id names the package with the given path.
func isBuiltinPkg(pass *Pass, id *ast.Ident, path string) bool {
	pn, ok := pass.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// checkBlankError flags assignments that discard an error into the blank
// identifier, including the single-value `_ = f()` form and the
// multi-assign `v, _ := f()` form when the blank position is error-typed.
func checkBlankError(pass *Pass, as *ast.AssignStmt) {
	// Single call on the right: positions map through the result tuple.
	if len(as.Rhs) == 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		idx, name := errorResults(pass, call)
		if len(idx) == 0 {
			return
		}
		for _, i := range idx {
			if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
				pass.Reportf(as.Lhs[i].Pos(),
					"error returned by %s assigned to _; handle it or annotate //eqlint:allow errstrict -- reason", name)
			}
		}
		return
	}
	// Parallel assignment: check each pair.
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
			continue
		}
		if t := pass.TypeOf(rhs); t != nil && isErrorType(t) {
			pass.Reportf(as.Lhs[i].Pos(),
				"error value assigned to _; handle it or annotate //eqlint:allow errstrict -- reason")
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
