package analysis

import (
	"go/token"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() *Report {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "/mod/b.go", Line: 9, Column: 2}, Analyzer: "allocfree", Message: "make allocates (x)"},
		{Pos: token.Position{Filename: "/mod/a.go", Line: 3, Column: 5}, Analyzer: "shardphase", Message: "write (y)"},
		{Pos: token.Position{Filename: "/mod/a.go", Line: 3, Column: 5}, Analyzer: "allocfree", Message: "make allocates (x)"},
	}
	return NewReport("/mod", diags)
}

// TestReportRoundTrip checks the single-schema property: the JSON that
// -format json emits parses back through the baseline loader unchanged.
func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	if r.Findings[0].File != "a.go" || r.Findings[0].Analyzer != "allocfree" {
		t.Fatalf("report not module-relative/sorted: %+v", r.Findings)
	}
	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReport(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Fatalf("round trip changed the report:\nwrote %+v\nread  %+v", r, back)
	}
}

// TestLoadReportRejects checks schema guarding: unknown fields and wrong
// versions fail loudly instead of silently matching nothing.
func TestLoadReportRejects(t *testing.T) {
	if _, err := LoadReport(strings.NewReader(`{"version":1,"findings":[],"extra":true}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := LoadReport(strings.NewReader(`{"version":99,"findings":[]}`)); err == nil {
		t.Error("future version accepted")
	}
}

// TestBaselineCountAware checks that a baseline entry absorbs only as many
// identical findings as it recorded: duplicating a flagged construct
// surfaces the copy, and line shifts do not invalidate the match.
func TestBaselineCountAware(t *testing.T) {
	b := NewBaseline(sampleReport())
	if b.Size() != 3 {
		t.Fatalf("Size = %d, want 3", b.Size())
	}
	shifted := []Finding{
		{File: "a.go", Line: 88, Col: 1, Analyzer: "allocfree", Message: "make allocates (x)"}, // same key, new line: absorbed
		{File: "a.go", Line: 89, Col: 1, Analyzer: "allocfree", Message: "make allocates (x)"}, // duplicate beyond the count: surfaces
		{File: "a.go", Line: 4, Col: 1, Analyzer: "allocfree", Message: "new allocates (z)"},   // new message: surfaces
	}
	out := b.Filter(shifted)
	if len(out) != 2 || out[0].Line != 89 || out[1].Message != "new allocates (z)" {
		t.Fatalf("Filter = %+v, want the duplicate and the new finding", out)
	}
}

// TestBaselineDiff checks the shrink-only guard's primitive.
func TestBaselineDiff(t *testing.T) {
	older := NewBaseline(sampleReport())
	if d := older.DiffAgainst(older); len(d) != 0 {
		t.Fatalf("self-diff = %v, want empty", d)
	}
	grown := sampleReport()
	grown.Findings = append(grown.Findings, Finding{File: "c.go", Analyzer: "allocfree", Message: "new debt"})
	d := NewBaseline(grown).DiffAgainst(older)
	if len(d) != 1 || !strings.Contains(d[0], "c.go") {
		t.Fatalf("grown diff = %v, want one c.go entry", d)
	}
	// Shrinking is fine.
	if d := older.DiffAgainst(NewBaseline(grown)); len(d) != 0 {
		t.Fatalf("shrink diff = %v, want empty", d)
	}
}

// TestWriteSARIF sanity-checks the SARIF rendering: schema header, one rule
// per analyzer, one result per finding.
func TestWriteSARIF(t *testing.T) {
	var buf strings.Builder
	if err := sampleReport().WriteSARIF(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"2.1.0"`, `"eqlint"`, `"shardphase"`, `"allocfree"`, `"uri": "a.go"`, `"startLine": 9`} {
		if !strings.Contains(s, want) {
			t.Errorf("SARIF output missing %s:\n%s", want, s)
		}
	}
}

// TestDiagnosticString pins the compiler-style rendering editors parse.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "pkg/f.go", Line: 7, Column: 13},
		Analyzer: "shardphase",
		Message:  "boom",
	}
	if got, want := d.String(), "pkg/f.go:7:13: shardphase: boom"; got != want {
		t.Errorf("Diagnostic.String() = %q, want %q", got, want)
	}
}
