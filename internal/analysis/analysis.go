// Package analysis is the simulator's static-analysis toolkit: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus the domain analyzers that
// encode this repository's determinism and cycle-accounting invariants as
// machine-checked rules. The cmd/eqlint multichecker drives every analyzer
// over the module; `go test ./internal/analysis` exercises each one against
// testdata packages with expected-diagnostic annotations.
//
// The framework is stdlib-only on purpose: the build environment pins the
// toolchain and forbids fetching x/tools, and the subset needed here —
// typed ASTs, per-package passes, positional diagnostics, an analysistest
// harness — is small. Should the module ever vendor x/tools, the analyzers
// port mechanically: Run signatures and reporting semantics match.
//
// # Suppression directives
//
//	//eqlint:allow <analyzer>[,<analyzer>...] [-- reason]
//
// on (or alone on the line above) a flagged line suppresses those analyzers'
// diagnostics for that line. Suppressions are for sanctioned exceptions —
// e.g. the experiment harness's worker pool is allowed goroutines because
// its singleflight memo makes result aggregation order-independent — and
// should always carry a reason. The errstrict analyzer additionally honours
// the conventional //nolint:errcheck form.
//
// Two more directives mark blessed code rather than suppressing findings:
//
//	//eqlint:cycle-owner   on a function: it may mutate cycle/epoch counters
//	//eqlint:emitpath      on a function: it is a telemetry emit path and
//	                       must not allocate
//	eqlint:nilsafe         in a type's doc comment: every pointer-receiver
//	                       method must begin with a receiver nil check
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. The subset of the x/tools contract used
// here: a name, documentation, and a Run function invoked once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description shown by `eqlint -help`.
	Doc string
	// Scope restricts the analyzer to packages for which it returns true;
	// nil means every package. The driver applies Scope; tests bypass it.
	Scope func(pkgPath string) bool
	// Run analyzes one package and reports findings through the pass.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional compiler format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// Inspect walks every file of the pass in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// RunAnalyzer executes one analyzer over a loaded package and returns its
// diagnostics with suppression directives already applied, sorted by
// position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
	}
	allowed := collectAllowedLines(pkg)
	out := pass.diags[:0]
	for _, d := range pass.diags {
		if allowed.allows(d.Pos.Filename, d.Pos.Line, a.Name) {
			continue
		}
		out = append(out, d)
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// allowKey addresses one suppressed (file, line) pair.
type allowKey struct {
	file string
	line int
}

// allowSet maps suppressed lines to the analyzer names they suppress;
// the special name "*" suppresses every analyzer.
type allowSet map[allowKey]map[string]bool

func (s allowSet) allows(file string, line int, analyzer string) bool {
	names := s[allowKey{file, line}]
	return names != nil && (names[analyzer] || names["*"])
}

// collectAllowedLines scans every comment of the package for suppression
// directives. A directive suppresses the line it sits on; a directive whose
// comment group occupies its own line(s) also suppresses the line after the
// group, so both trailing and preceding placements work.
func collectAllowedLines(pkg *Package) allowSet {
	set := allowSet{}
	add := func(file string, line int, names []string) {
		k := allowKey{file, line}
		m := set[k]
		if m == nil {
			m = map[string]bool{}
			set[k] = m
		}
		for _, n := range names {
			m[n] = true
		}
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllowDirective(c.Text)
				if names == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				end := pkg.Fset.Position(cg.End())
				add(pos.Filename, pos.Line, names)
				add(pos.Filename, end.Line+1, names)
			}
		}
	}
	return set
}

// parseAllowDirective extracts analyzer names from a suppression comment, or
// nil when the comment is not one. Recognised forms:
//
//	//eqlint:allow name1,name2 -- reason
//	//nolint:errcheck           (errcheck compatibility, maps to errstrict)
func parseAllowDirective(text string) []string {
	switch {
	case strings.HasPrefix(text, "//eqlint:allow"):
		rest := strings.TrimPrefix(text, "//eqlint:allow")
		if reason := strings.Index(rest, "--"); reason >= 0 {
			rest = rest[:reason]
		}
		fields := strings.FieldsFunc(rest, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		})
		if len(fields) == 0 {
			return []string{"*"}
		}
		return fields
	case strings.HasPrefix(text, "//nolint:"):
		rest := strings.TrimPrefix(text, "//nolint:")
		if i := strings.IndexAny(rest, " \t/"); i >= 0 {
			rest = rest[:i]
		}
		for _, n := range strings.Split(rest, ",") {
			if n == "errcheck" {
				return []string{"errstrict"}
			}
		}
	}
	return nil
}

// funcHasDirective reports whether the function declaration carries the
// given //eqlint:<directive> marker in its doc comment.
func funcHasDirective(decl *ast.FuncDecl, directive string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, "//eqlint:"+directive) {
			return true
		}
	}
	return false
}

// forEachFunc invokes fn for every function declaration with a body.
func forEachFunc(files []*ast.File, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
