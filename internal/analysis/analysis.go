// Package analysis is the simulator's static-analysis toolkit: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus the domain analyzers that
// encode this repository's determinism and cycle-accounting invariants as
// machine-checked rules. The cmd/eqlint multichecker drives every analyzer
// over the module; `go test ./internal/analysis` exercises each one against
// testdata packages with expected-diagnostic annotations.
//
// The framework is stdlib-only on purpose: the build environment pins the
// toolchain and forbids fetching x/tools, and the subset needed here —
// typed ASTs, per-package passes, positional diagnostics, an analysistest
// harness — is small. Should the module ever vendor x/tools, the analyzers
// port mechanically: Run signatures and reporting semantics match.
//
// Analyzers come in two shapes. Per-package analyzers implement Run and see
// one type-checked package at a time. Module analyzers implement RunModule
// and see every loaded package at once through a Module, which carries a
// conservative call graph (see callgraph.go) and an exported-facts store —
// the x/tools Fact idea — so cross-package properties like shard-phase
// safety and hot-path allocation-freedom are checkable.
//
// # Suppression directives
//
//	//eqlint:allow <analyzer>[,<analyzer>...] [-- reason]
//
// on (or alone on the line above) a flagged line suppresses those analyzers'
// diagnostics for that line. Suppressions are for sanctioned exceptions —
// e.g. the experiment harness's worker pool is allowed goroutines because
// its singleflight memo makes result aggregation order-independent — and
// should always carry a reason. The errstrict analyzer additionally honours
// the conventional //nolint:errcheck form. Allow directives naming an
// unknown analyzer are themselves flagged (a typo would otherwise suppress
// nothing, silently), and directives that suppressed nothing are reported
// under eqlint -strict-directives.
//
// Five more directives mark blessed code rather than suppressing findings:
//
//	//eqlint:cycle-owner   on a function: it may mutate cycle/epoch counters
//	//eqlint:emitpath      on a function: it is a telemetry emit path and
//	                       must not allocate
//	//eqlint:hotpath       on a function: it is a steady-state hot path;
//	                       allocfree checks everything reachable from it
//	//eqlint:shardroot     on a function: it runs on a shard-worker
//	                       goroutine; shardphase checks everything reachable
//	                       from it
//	//eqlint:barrierphase  on a function: it runs only on the coordinator
//	                       between phase barriers and may touch shared state
//	eqlint:nilsafe         in a type's doc comment: every pointer-receiver
//	                       method must begin with a receiver nil check
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. The subset of the x/tools contract used
// here: a name, documentation, and a Run function invoked once per package —
// or, for cross-package checks, a RunModule function invoked once per load.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description shown by `eqlint -list`.
	Doc string
	// Scope restricts the analyzer to packages for which it returns true;
	// nil means every package. The driver applies Scope; tests bypass it.
	// Module analyzers ignore Scope (their roots are directive-marked).
	Scope func(pkgPath string) bool
	// Run analyzes one package and reports findings through the pass.
	// Exactly one of Run and RunModule is set.
	Run func(pass *Pass) error
	// RunModule analyzes every loaded package at once; set for analyzers
	// that need the cross-package call graph.
	RunModule func(pass *ModulePass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional compiler format,
// file:line:col: analyzer: message, so editors and CI problem matchers can
// parse it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// Inspect walks every file of the pass in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// RunAnalyzer executes one analyzer over a loaded package and returns its
// diagnostics with suppression directives already applied, sorted by
// position. A module analyzer is run over a single-package module, which is
// what the analysistest harness needs; the eqlint driver runs module
// analyzers once over the whole load via RunModuleAnalyzer instead.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	if a.RunModule != nil {
		return RunModuleAnalyzer(a, NewModule([]*Package{pkg}))
	}
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
	}
	out := pass.diags[:0]
	for _, d := range pass.diags {
		if pkg.allows().allows(d.Pos.Filename, d.Pos.Line, a.Name) {
			continue
		}
		out = append(out, d)
	}
	sortDiagnostics(out)
	return out, nil
}

// SortDiagnostics orders diagnostics by (file, line, column, analyzer,
// message) — the canonical deterministic output order of the driver.
func SortDiagnostics(ds []Diagnostic) { sortDiagnostics(ds) }

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// allowKey addresses one suppressed (file, line) pair.
type allowKey struct {
	file string
	line int
}

// allowDirective is one parsed suppression comment. The used map records
// which of its analyzer names actually suppressed a finding, feeding the
// unused-directive report. Usage marking is not synchronized: the driver
// runs all analyzers for one package on one worker and module analyzers
// after the join, so a directive is never marked concurrently.
type allowDirective struct {
	file string
	// line is the line of the comment itself; the directive also covers the
	// line immediately after its comment group (preceding placement).
	line int
	// names are the analyzer names the directive suppresses; "*" means all.
	names []string
	// eqlint is true for //eqlint:allow forms (whose names are validated)
	// and false for //nolint compatibility forms.
	eqlint bool
	used   map[string]bool
}

// allowSet indexes a package's suppression directives by the lines they
// cover.
type allowSet struct {
	byKey map[allowKey][]*allowDirective
	list  []*allowDirective
}

// allows reports whether a diagnostic from the named analyzer at file:line
// is suppressed, marking every directive that matches as used.
func (s *allowSet) allows(file string, line int, analyzer string) bool {
	ok := false
	for _, d := range s.byKey[allowKey{file, line}] {
		for _, n := range d.names {
			if n == analyzer || n == "*" {
				d.used[n] = true
				ok = true
			}
		}
	}
	return ok
}

// merge returns an allowSet covering every package in pkgs, sharing the
// underlying directives so usage marking feeds the same unused report.
func mergeAllowSets(pkgs []*Package) *allowSet {
	merged := &allowSet{byKey: map[allowKey][]*allowDirective{}}
	for _, pkg := range pkgs {
		s := pkg.allows()
		for k, ds := range s.byKey {
			merged.byKey[k] = append(merged.byKey[k], ds...)
		}
		merged.list = append(merged.list, s.list...)
	}
	return merged
}

// collectAllowedLines scans every comment of the package for suppression
// directives. A directive suppresses the line it sits on; a directive whose
// comment group occupies its own line(s) also suppresses the line after the
// group, so both trailing and preceding placements work.
func collectAllowedLines(pkg *Package) *allowSet {
	set := &allowSet{byKey: map[allowKey][]*allowDirective{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, eqlint := parseAllowDirective(c.Text)
				if names == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				end := pkg.Fset.Position(cg.End())
				d := &allowDirective{
					file:   pos.Filename,
					line:   pos.Line,
					names:  names,
					eqlint: eqlint,
					used:   map[string]bool{},
				}
				set.list = append(set.list, d)
				set.byKey[allowKey{pos.Filename, pos.Line}] = append(set.byKey[allowKey{pos.Filename, pos.Line}], d)
				if end.Line+1 != pos.Line {
					set.byKey[allowKey{pos.Filename, end.Line + 1}] = append(set.byKey[allowKey{pos.Filename, end.Line + 1}], d)
				}
			}
		}
	}
	return set
}

// parseAllowDirective extracts analyzer names from a suppression comment, or
// nil when the comment is not one; eqlint reports whether the comment is the
// native //eqlint:allow form. Recognised forms:
//
//	//eqlint:allow name1,name2 -- reason
//	//nolint:errcheck           (errcheck compatibility, maps to errstrict)
func parseAllowDirective(text string) (names []string, eqlint bool) {
	switch {
	case strings.HasPrefix(text, "//eqlint:allow"):
		rest := strings.TrimPrefix(text, "//eqlint:allow")
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			// Another directive sharing the prefix (hypothetical
			// //eqlint:allowfoo), not an allow.
			return nil, false
		}
		if reason := strings.Index(rest, "--"); reason >= 0 {
			rest = rest[:reason]
		}
		fields := strings.FieldsFunc(rest, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		})
		if len(fields) == 0 {
			return []string{"*"}, true
		}
		return fields, true
	case strings.HasPrefix(text, "//nolint:"):
		rest := strings.TrimPrefix(text, "//nolint:")
		if i := strings.IndexAny(rest, " \t/"); i >= 0 {
			rest = rest[:i]
		}
		for _, n := range strings.Split(rest, ",") {
			if n == "errcheck" {
				return []string{"errstrict"}, false
			}
		}
	}
	return nil, false
}

// funcHasDirective reports whether the function declaration carries the
// given //eqlint:<directive> marker in its doc comment.
func funcHasDirective(decl *ast.FuncDecl, directive string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if rest, ok := strings.CutPrefix(c.Text, "//eqlint:"+directive); ok {
			if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
				return true
			}
		}
	}
	return false
}

// forEachFunc invokes fn for every function declaration with a body.
func forEachFunc(files []*ast.File, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
