package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoDeterminism flags constructs that make simulator output depend on
// anything but its inputs: wall-clock reads, the unseeded global math/rand
// source, iteration over Go maps (randomised order), and goroutine
// launches or cross-goroutine channel sends inside the simulator core. The
// parallel experiment engine promises byte-identical figures at any worker
// count; these are the constructs that silently break that promise.
//
// Map ranges are allowed when the body is pure key collection
// (`keys = append(keys, k)`) or pure deletion (`delete(m, k)`) — the two
// idioms whose effect is order-independent. Anything else needs sorted keys
// or an //eqlint:allow nodeterminism directive with a justification.
var NoDeterminism = &Analyzer{
	Name:  "nodeterminism",
	Doc:   "flags wall-clock reads, unseeded math/rand, map iteration and goroutine use in the simulator core",
	Scope: simulatorScope,
	Run:   runNoDeterminism,
}

// simulatorPackages are the module-relative package paths whose execution
// must be a pure function of their inputs.
var simulatorPackages = []string{
	"internal/sm", "internal/gpu", "internal/cache", "internal/dram",
	"internal/icnt", "internal/core", "internal/clock", "internal/exp",
}

func simulatorScope(pkgPath string) bool {
	for _, p := range simulatorPackages {
		if strings.HasSuffix(pkgPath, p) {
			return true
		}
	}
	return false
}

func runNoDeterminism(pass *Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			checkNondeterministicCall(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, n)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"goroutine launch in simulator code makes event ordering scheduler-dependent")
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send in simulator code is goroutine-ordering-sensitive")
		}
		return true
	})
	return nil
}

// checkNondeterministicCall flags selector uses that resolve to time.Now and
// friends or to package-level math/rand functions (which draw from the
// process-global, seed-by-default source).
func checkNondeterministicCall(pass *Pass, sel *ast.SelectorExpr) {
	obj := pass.ObjectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Methods (e.g. (*rand.Rand).Intn on an explicitly seeded source) are
	// fine; only package-level functions are in question.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(sel.Pos(),
				"wall-clock read time.%s in simulator code; derive times from the simulated clock domains", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			// Constructing an explicitly seeded source is the sanctioned idiom.
		default:
			pass.Reportf(sel.Pos(),
				"%s.%s draws from the global random source; use rand.New(rand.NewSource(seed)) so runs are reproducible",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange flags ranges over map-typed expressions whose body is not
// one of the order-independent idioms.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if mapRangeBodyIsOrderFree(pass, rng) {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is nondeterministic; collect and sort keys first (or //eqlint:allow nodeterminism -- why order cannot matter)")
}

// mapRangeBodyIsOrderFree recognises the two order-independent map-range
// idioms: collecting keys into a slice for later sorting, and deleting
// entries from the ranged map.
func mapRangeBodyIsOrderFree(pass *Pass, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	switch stmt := rng.Body.List[0].(type) {
	case *ast.AssignStmt:
		// keys = append(keys, k)
		if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
			return false
		}
		call, ok := stmt.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) != 2 {
			return false
		}
		return identicalExprText(stmt.Lhs[0], call.Args[0]) &&
			isIdentFor(call.Args[1], rng.Key)
	case *ast.ExprStmt:
		// delete(m, k)
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "delete") || len(call.Args) != 2 {
			return false
		}
		return identicalExprText(call.Args[0], rng.X) && isIdentFor(call.Args[1], rng.Key)
	}
	return false
}

func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.ObjectOf(id).(*types.Builtin)
	return ok
}

func isIdentFor(e ast.Expr, key ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	kid, ok2 := key.(*ast.Ident)
	return ok && ok2 && id.Name == kid.Name
}

// identicalExprText compares two expressions structurally for the simple
// ident / selector chains these idioms use.
func identicalExprText(a, b ast.Expr) bool {
	return exprChain(a) != "" && exprChain(a) == exprChain(b)
}

// exprChain renders an ident or selector chain ("s.l1Waiters"), or "" for
// anything more complex.
func exprChain(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprChain(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}
