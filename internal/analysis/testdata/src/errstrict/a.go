// Package estest exercises the errstrict analyzer: persistence-path errors
// must be consumed, and deliberate drops need a directive.
package estest

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func write(path string, data []byte) {
	os.WriteFile(path, data, 0o644) // want "error returned by os.WriteFile is ignored"
}

func writeBlank(path string, data []byte) {
	_ = os.WriteFile(path, data, 0o644) // want "assigned to _"
}

func writeChecked(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	return nil
}

func readBlank(path string) []byte {
	data, _ := os.ReadFile(path) // want "assigned to _"
	return data
}

func removeAllowed(path string) {
	os.Remove(path) //eqlint:allow errstrict -- best-effort cleanup of a temp file
}

func removeNolint(path string) {
	os.Remove(path) //nolint:errcheck
}

func deferredClose(f *os.File) {
	defer f.Close() // want "ignored by defer"
}

func plainCallOK() {
	noError()
}

func noError() {}

func infallibleSinks(buf *bytes.Buffer) string {
	var b strings.Builder
	b.WriteString("header\n")      // ok: strings.Builder never errors
	fmt.Fprintf(&b, "row %d\n", 1) // ok: Fprintf into a Builder
	buf.WriteString("x")           // ok: bytes.Buffer never errors
	fmt.Fprintln(buf, "y")         // ok: Fprintln into a Buffer
	fmt.Fprintln(os.Stdout, "z")   // want "error returned by fmt.Fprintln is ignored"
	return b.String()
}
