// Package shardphase models the sharded cycle engine's shape for the
// shardphase analyzer: a shared Machine, a shardEngine whose worker is the
// shard root, and a coordinator-only barrier function. The type names match
// the analyzer's shared-state set without importing the simulator.
package shardphase

import "sync"

type sm struct {
	cycles int
}

func (s *sm) step() { s.cycles++ } // local SM state: never flagged

type Machine struct {
	sms     []*sm
	pending int
	tags    map[int]int
}

type shardEngine struct {
	m     *Machine
	slots []int
	wg    sync.WaitGroup
	hook  func()
}

// reduce is coordinator-only: it reads every SM.
//
//eqlint:barrierphase
func (e *shardEngine) reduce() int {
	t := 0
	for _, s := range e.m.sms {
		t += s.cycles
	}
	return t
}

// worker is the shard-worker goroutine body.
//
//eqlint:shardroot
func (e *shardEngine) worker(w int) {
	e.m.sms[w].step() // blessed: worker-local index stops the shared chain

	e.slots[w] = 1 // blessed: worker-local index

	e.m.pending++ // want "shard-worker write to shared Machine state outside the barrier phase"

	e.slots[0] = 2 // want "shard-worker write to shared shardEngine state outside the barrier phase"

	delete(e.m.tags, w) // want "shard-worker write to shared Machine state outside the barrier phase"

	_ = e.reduce() // want "barrier-phase function .*reduce.* called from shard-worker code"

	e.hook() // want "dynamic call cannot be proven shard-phase safe"

	//eqlint:allow shardphase -- testdata blessing: the hook only touches shard-local state
	e.hook()

	e.helper(w)

	e.wg.Done() // sync is the barrier protocol itself: exempt
}

// helper is reachable from the root, so its writes are flagged too.
func (e *shardEngine) helper(w int) {
	e.m.pending = w // want "shard-worker write to shared Machine state outside the barrier phase"
}
