// Package phtest exercises the probehygiene analyzer against a miniature
// copy of the telemetry bus: nil-safe methods, allocation-free emit paths
// and constant event kinds.
package phtest

import "fmt"

// Kind is the event type.
type Kind uint8

// The two kinds of this miniature bus.
const (
	KindA Kind = iota
	KindB
)

// Event is one record.
type Event struct {
	A int64
	K Kind
}

// Bus is a miniature probe bus. A nil *Bus is a valid, permanently disabled
// bus (eqlint:nilsafe): every pointer-receiver method must open with a nil
// guard.
type Bus struct {
	mask uint64
	buf  []Event
	head int
}

// Enabled reports whether kind k is recorded.
func (b *Bus) Enabled(k Kind) bool {
	return b != nil && b.mask&(1<<k) != 0
}

// Emit records one event in place; the buffer is preallocated.
func (b *Bus) Emit(t int64, k Kind, a int64) {
	if b == nil || b.mask&(1<<k) == 0 {
		return
	}
	e := &b.buf[b.head]
	e.A, e.K = a, k
}

// emitSloppy grows its buffer on the emit path.
//
//eqlint:emitpath
func (b *Bus) emitSloppy(k Kind, a int64) {
	if b == nil {
		return
	}
	b.buf = append(b.buf, Event{A: a, K: k}) // want "builtin append allocates" "composite literal allocates"
}

// emitFmt formats on the emit path.
//
//eqlint:emitpath
func (b *Bus) emitFmt(k Kind) {
	if b == nil {
		return
	}
	fmt.Println(k) // want "fmt.Println allocates"
}

// emitLabels writes a map on the emit path.
//
//eqlint:emitpath
func (b *Bus) emitLabels(labels map[string]int64, k Kind, a int64) {
	if b == nil {
		return
	}
	labels["last"] = a // want "map write allocates"
}

func (b *Bus) Len() int { // want "must begin with a b == nil guard"
	return len(b.buf)
}

// Reset guards with an early return.
func (b *Bus) Reset() {
	if b == nil {
		return
	}
	b.head = 0
}

func use(b *Bus, k Kind, x int) {
	b.Emit(0, KindA, 1)   // ok: constant kind
	b.Emit(0, k, 1)       // ok: variable pinned from a constant upstream
	b.Emit(0, Kind(x), 1) // want "Kind constant"
}
