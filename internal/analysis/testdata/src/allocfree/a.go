// Package allocfree exercises the allocfree analyzer: every allocating
// construct it knows, reachable from hotpath/emitpath roots, plus the
// blessed forms (capacity-evidence append, panic arguments, constant-false
// branches, pointer/nil interface arguments) that must stay silent.
package allocfree

import "fmt"

type event struct{ a, b int64 }

type iface interface{ m() }

type impl struct{ n int }

func (impl) m() {}

func sink(v interface{}) { _ = v }

type bus struct {
	staged []event
	idx    map[int]int
	name   string
}

// emit is the per-cycle entry point.
//
//eqlint:hotpath
func (b *bus) emit(a, v int64) {
	b.staged = append(b.staged, event{a, v}) // want "append without capacity evidence may allocate"
	//eqlint:allow allocfree -- testdata blessing: pool grows to steady-state capacity
	b.staged = append(b.staged, event{a: a})
	b.flush()
	b.report(a)
	b.box(int(a))
}

func (b *bus) flush() {
	b.staged = append(b.staged[:0], b.staged...) // x[:0] capacity evidence: silent
	s := make([]event, 4)                        // want "make allocates"
	_ = s
	p := new(event) // want "new allocates"
	_ = p
	b.idx[3] = 4       // want "map assignment may allocate"
	m := map[int]int{} // want "map literal allocates"
	_ = m
	sl := []int{1, 2} // want "slice literal allocates"
	_ = sl
	e := &event{} // want "&composite literal heap-allocates"
	_ = e
	f := func() {} // want "closure allocates"
	f()
	b.name = b.name + "!" // want "string concatenation allocates"
	_ = "a" + "b"         // constant concatenation folds: silent
}

func (b *bus) report(a int64) {
	msg := fmt.Sprintf("a=%d", a) // want "fmt.Sprintf allocates"
	_ = msg
	if false {
		fmt.Println("dead branch, skipped")
	}
	_ = []byte(b.name) // want "conversion allocates"
	_ = iface(impl{})  // want "conversion allocates"
	if a < 0 {
		panic(fmt.Sprintf("negative %d", a)) // crash path: silent
	}
}

func (b *bus) box(x int) {
	sink(x) // want "implicit conversion to interface.. boxes the argument"
	sink(nil)
	var p *event
	sink(p) // pointer payloads fit the interface word: silent
}

// record is an emit-path root in its own right.
//
//eqlint:emitpath
func record(vals []int64, v int64) []int64 {
	return append(vals, v) // want "append without capacity evidence may allocate"
}
