// Package directives is a deliberately unhygienic fixture for
// VerifyDirectives: an unknown verb, an allow naming a nonexistent
// analyzer, and an allow that suppresses nothing.
package directives

// a carries a typo'd directive verb.
//
//eqlint:frobnicate
func a() int {
	return 1
}

func b() int {
	//eqlint:allow nosuchanalyzer -- typo: there is no such analyzer
	x := a()
	//eqlint:allow errstrict -- nothing on the next line errors
	x += a()
	return x
}
