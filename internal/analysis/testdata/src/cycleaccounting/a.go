// Package catest exercises the cycleaccounting analyzer: cycle counters may
// only advance inside //eqlint:cycle-owner functions, and SM-domain cycle
// counts must never meet memory-domain ones in one expression.
package catest

type domain struct {
	cycle     int64
	epoch     int
	smCycles  int64
	memCycles int64
	name      string
}

// tick is the canonical advance site.
//
//eqlint:cycle-owner
func (d *domain) tick() {
	d.cycle++ // ok: blessed
}

// reset re-zeroes counters for a new invocation.
//
//eqlint:cycle-owner
func (d *domain) reset() {
	d.cycle = 0 // ok: blessed
	d.epoch = 0
}

func (d *domain) skew() {
	d.cycle += 2 // want "counter d.cycle mutated outside a cycle-owner"
}

func (d *domain) bumpEpoch() {
	d.epoch++ // want "counter d.epoch mutated outside a cycle-owner"
}

func (d *domain) rename(n string) {
	d.name = n // ok: not a cycle counter
}

func localCounters() int64 {
	var smCycle int64
	smCycle++ // ok: locals cannot leak accounting state
	return smCycle
}

//eqlint:cycle-owner
func (d *domain) tickViaClosure() {
	bump := func() {
		d.cycle++ // ok: closure inherits the owner blessing
	}
	bump()
}

func (d *domain) crossDomain() bool {
	return d.smCycles < d.memCycles // want "mixes SM-domain and memory-domain cycle counts"
}

func (d *domain) crossDomainDelta() int64 {
	return d.smCycles - d.memCycles // want "mixes SM-domain and memory-domain cycle counts"
}

func (d *domain) sameDomain() bool {
	return d.smCycles < 100 // ok: one domain against a scalar
}

// fastForward is the bulk-advance shape the fast-path cycle engine uses: a
// blessed owner may retire many cycles in one assignment.
//
//eqlint:cycle-owner
func (d *domain) fastForward(n int64) {
	d.cycle += n // ok: bulk advance inside the blessed owner
	d.smCycles += n
}

func (d *domain) sneakyBulkAdvance(n int64) {
	d.cycle += n // want "counter d.cycle mutated outside a cycle-owner"
}
