// Package ndtest exercises the nodeterminism analyzer: every flagged line
// carries a `// want` annotation and every sanctioned idiom must stay
// silent.
package ndtest

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() (time.Time, time.Duration) {
	start := time.Now()    // want "wall-clock read time.Now"
	d := time.Since(start) // want "wall-clock read time.Since"
	return start, d
}

func parseOK(s string) (time.Time, error) {
	return time.Parse(time.RFC3339, s) // ok: pure function of its input
}

func globalRand() int {
	return rand.Intn(6) // want "global random source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global random source"
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // ok: explicitly seeded source
	return r.Intn(6)
}

func mapRangeFlagged(m map[string]int) int {
	total := 0
	for _, v := range m { // want "map iteration order is nondeterministic"
		total += v
	}
	return total
}

func mapRangeSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // ok: pure key collection for sorting
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapRangeDelete(m map[string]int) {
	for k := range m { // ok: pure deletion is order-independent
		delete(m, k)
	}
}

func mapRangeAllowed(m map[string]int) int {
	n := 0
	//eqlint:allow nodeterminism -- an integer count is order-independent
	for range m {
		n++
	}
	return n
}

func sliceRangeOK(xs []int) int {
	total := 0
	for _, v := range xs { // ok: slices iterate in index order
		total += v
	}
	return total
}

func goroutines(ch chan int) {
	go func() { // want "goroutine launch"
		ch <- 1 // want "channel send"
	}()
}

func goroutineAllowed(ch chan int) {
	//eqlint:allow nodeterminism -- results are merged through a keyed memo
	go drain(ch)
}

func drain(ch chan int) { <-ch }
