package analysis

import (
	"go/ast"
	"go/types"
)

// AllocFree turns the repo's opaque "pinned at N allocs/op" runtime tests
// into positioned diagnostics: every function transitively reachable from
// an //eqlint:hotpath or //eqlint:emitpath annotation is checked for
// allocating constructs — make/new, append without capacity evidence,
// slice/map composite literals, &T{} heap literals, closures, fmt calls,
// string concatenation/conversion, map assignment, and implicit interface
// boxing at call sites. Arguments of panic(...) are exempt (the crash path
// may format freely), and code dominated by a constant-false condition
// (release builds of the eqdebug invariant layer) is skipped.
//
// The walk descends static and devirtualized-interface edges only; calls
// through func values are not followed (the runtime alloc pins remain the
// backstop for those, see DESIGN.md §10). Amortized allocations that are
// deliberate — pooled slices that grow to a steady-state capacity — are
// recorded in .eqlint-baseline.json rather than blessed inline, so the
// debt list stays explicit and shrink-only.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc: `flag allocating constructs in functions reachable from hot-path annotations

Starting from every //eqlint:hotpath and //eqlint:emitpath function, walks
the module call graph and reports each construct the Go compiler must (or
almost always will) heap-allocate, naming the offending line instead of an
opaque allocation count.`,
	RunModule: runAllocFree,
}

// HotPathFact marks a function as reachable from a hot-path root; exported
// for each function allocfree visits.
type HotPathFact struct {
	// Root is the display name of the annotated function the walk started
	// from.
	Root string
}

// AFact marks HotPathFact as a Fact.
func (*HotPathFact) AFact() {}

func runAllocFree(pass *ModulePass) error {
	g := pass.Module.Graph()
	var roots []*CallNode
	roots = append(roots, g.NodesWithDirective("hotpath")...)
	roots = append(roots, g.NodesWithDirective("emitpath")...)
	if len(roots) == 0 {
		return nil
	}

	rootOf := map[*CallNode]string{}
	var queue []*CallNode
	for _, r := range roots {
		if _, ok := rootOf[r]; ok {
			continue
		}
		rootOf[r] = funcDisplayName(r.Fn)
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		root := rootOf[n]
		pass.ExportObjectFact(n.Fn, &HotPathFact{Root: root})
		checkAllocations(pass, n, root)
		for _, site := range n.Out {
			for _, t := range site.Targets {
				tn := g.Node(t)
				if tn == nil {
					continue
				}
				if _, ok := rootOf[tn]; !ok {
					rootOf[tn] = root
					queue = append(queue, tn)
				}
			}
		}
	}
	return nil
}

// checkAllocations walks one hot-path function and reports allocating
// constructs.
func checkAllocations(pass *ModulePass, n *CallNode, root string) {
	info := n.Pkg.Info
	where := "hot path via " + funcDisplayName(n.Fn) + " <- " + root
	if funcDisplayName(n.Fn) == root {
		where = "hot path root " + root
	}
	inspectLive(info, n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			return checkCallAlloc(pass, info, x, where)
		case *ast.CompositeLit:
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(x.Pos(), "slice literal allocates (%s)", where)
			case *types.Map:
				pass.Reportf(x.Pos(), "map literal allocates (%s)", where)
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "&composite literal heap-allocates (%s)", where)
					return false
				}
			}
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "closure allocates (%s)", where)
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, isMap := info.TypeOf(idx.X).Underlying().(*types.Map); isMap {
						pass.Reportf(lhs.Pos(), "map assignment may allocate (%s)", where)
					}
				}
			}
		case *ast.BinaryExpr:
			if x.Op.String() == "+" {
				if b, ok := info.TypeOf(x).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					if tv, isConst := info.Types[x]; !isConst || tv.Value == nil {
						pass.Reportf(x.Pos(), "string concatenation allocates (%s)", where)
					}
				}
			}
		}
		return true
	})
}

// checkCallAlloc handles one call expression: allocating builtins,
// string/byte conversions, fmt calls, and implicit interface boxing of
// arguments. It returns false to prune the walk below panic(...).
func checkCallAlloc(pass *ModulePass, info *types.Info, call *ast.CallExpr, where string) bool {
	// Conversions in call syntax.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && conversionAllocates(tv.Type, info.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "conversion allocates (%s)", where)
		}
		return true
	}
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "panic":
				// Crash path: formatting the death message is fine.
				return false
			case "make":
				pass.Reportf(call.Pos(), "make allocates (%s)", where)
			case "new":
				pass.Reportf(call.Pos(), "new allocates (%s)", where)
			case "append":
				if len(call.Args) > 0 && !appendCapacityEvidence(call.Args[0]) {
					pass.Reportf(call.Pos(), "append without capacity evidence may allocate (%s)", where)
				}
			}
			return true
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if obj, ok := info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s allocates (%s)", obj.Name(), where)
			return true
		}
	}
	// Implicit interface boxing of arguments to a statically resolved
	// callee.
	callee := staticCallee(info, call)
	if callee == nil {
		return true
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return true
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxingAllocates(pt, info.TypeOf(arg)) && !isNilLiteral(info, arg) {
			pass.Reportf(arg.Pos(), "implicit conversion to %s boxes the argument (%s)", types.TypeString(pt, nil), where)
		}
	}
	return true
}

// staticCallee resolves the single static target of a call, or nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// appendCapacityEvidence reports whether an append's first argument shows
// in-place reuse: the canonical x[:0] reset form.
func appendCapacityEvidence(arg ast.Expr) bool {
	s, ok := ast.Unparen(arg).(*ast.SliceExpr)
	if !ok || s.Slice3 {
		return false
	}
	if s.Low != nil && !isZeroIntLit(s.Low) {
		return false
	}
	return s.High != nil && isZeroIntLit(s.High)
}

func isZeroIntLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// conversionAllocates reports whether an explicit conversion from `from` to
// `to` must copy to the heap: string <-> []byte/[]rune, and boxing into an
// interface.
func conversionAllocates(to, from types.Type) bool {
	if from == nil {
		return false
	}
	if types.IsInterface(to) {
		return boxingAllocates(to, from)
	}
	toB, toIsBasic := to.Underlying().(*types.Basic)
	fromB, fromIsBasic := from.Underlying().(*types.Basic)
	toSlice, toIsSlice := to.Underlying().(*types.Slice)
	fromSlice, fromIsSlice := from.Underlying().(*types.Slice)
	if toIsBasic && toB.Info()&types.IsString != 0 && fromIsSlice && isByteOrRune(fromSlice.Elem()) {
		return true
	}
	if fromIsBasic && fromB.Info()&types.IsString != 0 && toIsSlice && isByteOrRune(toSlice.Elem()) {
		return true
	}
	return false
}

func isByteOrRune(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Uint8, types.Int32: // byte, rune
		return true
	}
	return false
}

// boxingAllocates reports whether passing a value of type `from` where
// `to` is expected forces an allocating interface conversion: a concrete,
// non-pointer-shaped value meeting an interface. Pointers, channels, maps,
// funcs and existing interfaces fit the interface data word directly.
func boxingAllocates(to, from types.Type) bool {
	if from == nil || to == nil || !types.IsInterface(to) {
		return false
	}
	if _, isTypeParam := to.(*types.TypeParam); isTypeParam {
		return false
	}
	if types.IsInterface(from) {
		return false
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if b := from.Underlying().(*types.Basic); b.Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}

func isNilLiteral(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil" && info.Uses[id] == types.Universe.Lookup("nil")
}
