package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// CycleAccounting enforces the simulator's cycle-accounting discipline.
// Every figure of the reproduction rests on cycle and epoch counters never
// drifting, so mutation of those counters is restricted to functions that
// declare themselves the canonical advance site with //eqlint:cycle-owner,
// and expressions must never compare SM-domain cycle counts against
// memory-domain ones (the two domains tick at independent DVFS-scaled
// rates; only absolute picosecond times are comparable across them).
var CycleAccounting = &Analyzer{
	Name:  "cycleaccounting",
	Doc:   "restricts cycle/epoch counter mutation to //eqlint:cycle-owner functions and flags cross-domain cycle comparisons",
	Scope: simulatorScope,
	Run:   runCycleAccounting,
}

// cycleCounterField reports whether a struct field name denotes a cycle or
// epoch counter.
func cycleCounterField(name string) bool {
	n := strings.ToLower(name)
	return n == "epoch" || n == "epochs" || n == "cycle" || n == "cycles" ||
		strings.HasSuffix(n, "cycle") || strings.HasSuffix(n, "cycles") ||
		strings.HasSuffix(n, "epoch") || strings.HasSuffix(n, "epochs")
}

// smDomainName / memDomainName classify identifiers naming per-domain cycle
// counts.
func smDomainCycleName(n string) bool {
	l := strings.ToLower(n)
	return strings.Contains(l, "smcycle")
}

func memDomainCycleName(n string) bool {
	l := strings.ToLower(n)
	return strings.Contains(l, "memcycle") || strings.Contains(l, "dramcycle")
}

func runCycleAccounting(pass *Pass) error {
	forEachFunc(pass.Files, func(fd *ast.FuncDecl) {
		owner := funcHasDirective(fd, "cycle-owner")
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// Closures inherit the enclosing function's blessing: the
				// run loop's callbacks are part of its advance site.
				return true
			case *ast.AssignStmt:
				if owner {
					return true
				}
				for _, lhs := range n.Lhs {
					if name, ok := mutatedCycleField(lhs); ok {
						pass.Reportf(lhs.Pos(),
							"cycle/epoch counter %s mutated outside a cycle-owner function; move the mutation into the canonical advance site or mark the function //eqlint:cycle-owner", name)
					}
				}
			case *ast.IncDecStmt:
				if owner {
					return true
				}
				if name, ok := mutatedCycleField(n.X); ok {
					pass.Reportf(n.Pos(),
						"cycle/epoch counter %s mutated outside a cycle-owner function; move the mutation into the canonical advance site or mark the function //eqlint:cycle-owner", name)
				}
			case *ast.BinaryExpr:
				checkCrossDomainComparison(pass, n)
			}
			return true
		})
	})
	return nil
}

// mutatedCycleField reports a mutated selector field that names a cycle or
// epoch counter. Plain local variables are exempt: locals cannot leak
// accounting state across components.
func mutatedCycleField(lhs ast.Expr) (string, bool) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if !cycleCounterField(sel.Sel.Name) {
		return "", false
	}
	return exprChainOr(sel), true
}

func exprChainOr(e ast.Expr) string {
	if c := exprChain(e); c != "" {
		return c
	}
	return "counter"
}

// checkCrossDomainComparison flags binary expressions mixing SM-domain and
// memory-domain cycle counts.
func checkCrossDomainComparison(pass *Pass, b *ast.BinaryExpr) {
	switch b.Op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ, token.SUB, token.ADD:
	default:
		return
	}
	x, y := domainOf(b.X), domainOf(b.Y)
	if (x == "sm" && y == "mem") || (x == "mem" && y == "sm") {
		pass.Reportf(b.Pos(),
			"expression mixes SM-domain and memory-domain cycle counts; the domains tick at independent DVFS rates — compare absolute picosecond times instead")
	}
}

// domainOf classifies an expression's clock domain by the identifiers it
// mentions: "sm", "mem", or "" when neither (or both, which is already a
// named aggregate the author controls).
func domainOf(e ast.Expr) string {
	var sm, mem bool
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if smDomainCycleName(id.Name) {
			sm = true
		}
		if memDomainCycleName(id.Name) {
			mem = true
		}
		return true
	})
	switch {
	case sm && !mem:
		return "sm"
	case mem && !sm:
		return "mem"
	}
	return ""
}
