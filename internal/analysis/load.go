package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the import path ("equalizer/internal/sm").
	PkgPath string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions every file of the load (shared across packages).
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info are the type-checking results.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without the go command or network
// access. Imports resolve through two roots only — the enclosing module
// (paths under the go.mod module path) and GOROOT/src (the standard
// library, including its vendored golang.org/x packages) — which covers
// this dependency-free module completely. Standard-library dependencies are
// type-checked from source, like x/tools' srcimporter.
type Loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	goroot     string
	ctxt       build.Context

	pkgs    map[string]*Package // by import path, fully loaded
	loading map[string]bool     // cycle detection
}

// NewLoader builds a loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false // tag-only analysis; keeps stdlib loads pure Go
	return &Loader{
		fset:       token.NewFileSet(),
		moduleRoot: root,
		modulePath: modPath,
		goroot:     runtime.GOROOT(),
		ctxt:       ctxt,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// ModulePath returns the module's import path prefix.
func (l *Loader) ModulePath() string { return l.modulePath }

// ModuleRoot returns the module's directory.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// findModule walks up from dir to the enclosing go.mod and parses its module
// path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
	}
}

// Expand resolves command-line patterns into package directories. Supported
// forms: "./...", "dir/...", plain directories, and import paths within the
// module. Directories without Go files are silently skipped for ... walks
// and an error otherwise.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walkGoDirs(l.moduleRoot, addDir); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := l.resolveDir(strings.TrimSuffix(pat, "/..."))
			if err := l.walkGoDirs(base, addDir); err != nil {
				return nil, err
			}
		default:
			d := l.resolveDir(pat)
			if !hasGoFiles(d) {
				return nil, fmt.Errorf("analysis: no Go files in %s", d)
			}
			addDir(d)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// resolveDir maps a pattern to a directory: module-relative import paths and
// filesystem paths both work.
func (l *Loader) resolveDir(pat string) string {
	if rest, ok := strings.CutPrefix(pat, l.modulePath); ok && (rest == "" || rest[0] == '/') {
		return filepath.Join(l.moduleRoot, rest)
	}
	if filepath.IsAbs(pat) {
		return filepath.Clean(pat)
	}
	return filepath.Join(l.moduleRoot, pat)
}

func (l *Loader) walkGoDirs(base string, add func(string)) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			add(path)
		}
		return nil
	})
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in dir (non-test files only), type-checking it
// and every dependency. Results are cached per loader.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(l.pathForDir(dir), dir)
}

// pathForDir derives the import path of a module directory. Directories
// outside the module (testdata trees) get a synthetic rooted path so they
// can never collide with real imports.
func (l *Loader) pathForDir(dir string) string {
	if rel, err := filepath.Rel(l.moduleRoot, dir); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.modulePath
		}
		return l.modulePath + "/" + filepath.ToSlash(rel)
	}
	return "testdata.invalid/" + filepath.ToSlash(dir)
}

// dirForPath resolves an import path to its source directory.
func (l *Loader) dirForPath(path string) (string, error) {
	if rest, ok := strings.CutPrefix(path, l.modulePath); ok && (rest == "" || rest[0] == '/') {
		return filepath.Join(l.moduleRoot, rest), nil
	}
	std := filepath.Join(l.goroot, "src", filepath.FromSlash(path))
	if _, err := os.Stat(std); err == nil {
		return std, nil
	}
	vendored := filepath.Join(l.goroot, "src", "vendor", filepath.FromSlash(path))
	if _, err := os.Stat(vendored); err == nil {
		return vendored, nil
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q (not in module %s or GOROOT)", path, l.modulePath)
}

// load type-checks the package at dir under the given import path.
func (l *Loader) load(pkgPath, dir string) (*Package, error) {
	if p, ok := l.pkgs[pkgPath]; ok {
		return p, nil
	}
	if l.loading[pkgPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", pkgPath)
	}
	l.loading[pkgPath] = true
	defer delete(l.loading, pkgPath)

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", pkgPath, err)
	}
	p := &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.pkgs[pkgPath] = p
	return p, nil
}

// loaderImporter adapts the loader to the go/types Importer interface.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	dir, err := l.dirForPath(path)
	if err != nil {
		return nil, err
	}
	p, err := l.load(path, dir)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}
