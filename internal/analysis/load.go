package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the import path ("equalizer/internal/sm").
	PkgPath string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions every file of the load (shared across packages).
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info are the type-checking results.
	Types *types.Package
	Info  *types.Info

	allowOnce sync.Once
	allowset  *allowSet
}

// allows returns the package's suppression directives, parsed once.
func (p *Package) allows() *allowSet {
	p.allowOnce.Do(func() { p.allowset = collectAllowedLines(p) })
	return p.allowset
}

// Loader parses and type-checks packages without the go command or network
// access. Imports resolve through two roots only — the enclosing module
// (paths under the go.mod module path) and GOROOT/src (the standard
// library, including its vendored golang.org/x packages) — which covers
// this dependency-free module completely. Standard-library dependencies are
// type-checked from source, like x/tools' srcimporter.
//
// A Loader is safe for concurrent LoadDir calls: the FileSet is documented
// goroutine-safe, completed *types.Packages are immutable, and an in-flight
// load is entered exactly once with later callers waiting on its done
// channel. Import cycles are detected per call stack; a cycle split across
// two concurrent top-level loads is not (it cannot occur in compilable Go,
// which the tree is — `go build` gates every analysis run in CI).
type Loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	goroot     string
	ctxt       build.Context

	mu   sync.Mutex
	pkgs map[string]*loadEntry // by import path
}

// loadEntry is one package slot: the first loader claims it, everyone else
// waits on done.
type loadEntry struct {
	done chan struct{}
	pkg  *Package
	err  error
}

// NewLoader builds a loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false // tag-only analysis; keeps stdlib loads pure Go
	return &Loader{
		fset:       token.NewFileSet(),
		moduleRoot: root,
		modulePath: modPath,
		goroot:     runtime.GOROOT(),
		ctxt:       ctxt,
		pkgs:       map[string]*loadEntry{},
	}, nil
}

// ModulePath returns the module's import path prefix.
func (l *Loader) ModulePath() string { return l.modulePath }

// ModuleRoot returns the module's directory.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// findModule walks up from dir to the enclosing go.mod and parses its module
// path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
	}
}

// Expand resolves command-line patterns into package directories. Supported
// forms: "./...", "dir/...", plain directories, and import paths within the
// module. Directories without Go files are silently skipped for ... walks
// and an error otherwise.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walkGoDirs(l.moduleRoot, addDir); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := l.resolveDir(strings.TrimSuffix(pat, "/..."))
			if err := l.walkGoDirs(base, addDir); err != nil {
				return nil, err
			}
		default:
			d := l.resolveDir(pat)
			if !hasGoFiles(d) {
				return nil, fmt.Errorf("analysis: no Go files in %s", d)
			}
			addDir(d)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// resolveDir maps a pattern to a directory: module-relative import paths and
// filesystem paths both work.
func (l *Loader) resolveDir(pat string) string {
	if rest, ok := strings.CutPrefix(pat, l.modulePath); ok && (rest == "" || rest[0] == '/') {
		return filepath.Join(l.moduleRoot, rest)
	}
	if filepath.IsAbs(pat) {
		return filepath.Clean(pat)
	}
	return filepath.Join(l.moduleRoot, pat)
}

func (l *Loader) walkGoDirs(base string, add func(string)) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			add(path)
		}
		return nil
	})
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in dir (non-test files only), type-checking it
// and every dependency. Results are cached per loader. Safe for concurrent
// use.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(l.pathForDir(dir), dir, nil)
}

// pathForDir derives the import path of a module directory. Directories
// outside the module (testdata trees) get a synthetic rooted path so they
// can never collide with real imports.
func (l *Loader) pathForDir(dir string) string {
	if rel, err := filepath.Rel(l.moduleRoot, dir); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.modulePath
		}
		return l.modulePath + "/" + filepath.ToSlash(rel)
	}
	return "testdata.invalid/" + filepath.ToSlash(dir)
}

// dirForPath resolves an import path to its source directory.
func (l *Loader) dirForPath(path string) (string, error) {
	if rest, ok := strings.CutPrefix(path, l.modulePath); ok && (rest == "" || rest[0] == '/') {
		return filepath.Join(l.moduleRoot, rest), nil
	}
	std := filepath.Join(l.goroot, "src", filepath.FromSlash(path))
	if _, err := os.Stat(std); err == nil {
		return std, nil
	}
	vendored := filepath.Join(l.goroot, "src", "vendor", filepath.FromSlash(path))
	if _, err := os.Stat(vendored); err == nil {
		return vendored, nil
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q (not in module %s or GOROOT)", path, l.modulePath)
}

// load type-checks the package at dir under the given import path. stack is
// the chain of import paths being loaded by this call stack, for cycle
// detection.
func (l *Loader) load(pkgPath, dir string, stack []string) (*Package, error) {
	for _, s := range stack {
		if s == pkgPath {
			return nil, fmt.Errorf("analysis: import cycle through %s", pkgPath)
		}
	}
	l.mu.Lock()
	if e, ok := l.pkgs[pkgPath]; ok {
		l.mu.Unlock()
		<-e.done
		return e.pkg, e.err
	}
	e := &loadEntry{done: make(chan struct{})}
	l.pkgs[pkgPath] = e
	l.mu.Unlock()

	e.pkg, e.err = l.doLoad(pkgPath, dir, stack)
	close(e.done)
	if e.err != nil {
		// Drop the failed entry so a later load with a corrected tree (or a
		// different dir mapping in tests) can retry.
		l.mu.Lock()
		delete(l.pkgs, pkgPath)
		l.mu.Unlock()
	}
	return e.pkg, e.err
}

func (l *Loader) doLoad(pkgPath, dir string, stack []string) (*Package, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: &loaderImporter{l: l, stack: append(stack[:len(stack):len(stack)], pkgPath)}}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// loaderImporter adapts the loader to the go/types Importer interface,
// carrying the import stack of the load that owns it.
type loaderImporter struct {
	l     *Loader
	stack []string
}

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	dir, err := li.l.dirForPath(path)
	if err != nil {
		return nil, err
	}
	p, err := li.l.load(path, dir, li.stack)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}
