package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// DirectivesName is the pseudo-analyzer name under which directive-hygiene
// diagnostics are reported. It is not a selectable analyzer: the checks run
// as part of the driver, after the real analyzers, because "unused" is only
// knowable once everything that could use a directive has run.
const DirectivesName = "directives"

// knownDirectiveVerbs are the valid words after //eqlint: — anything else
// is a typo that silently does nothing.
var knownDirectiveVerbs = map[string]bool{
	"allow":        true,
	"cycle-owner":  true,
	"emitpath":     true,
	"hotpath":      true,
	"nilsafe":      true,
	"shardroot":    true,
	"barrierphase": true,
}

// VerifyDirectives checks a package's //eqlint: comments for hygiene
// problems and returns the findings:
//
//   - an //eqlint:<verb> comment whose verb is unknown (always reported);
//   - an //eqlint:allow directive naming an unknown analyzer (always
//     reported — a typo like "nondeterminism" for "nodeterminism" would
//     otherwise suppress nothing and linger);
//   - under strict, an allow directive none of whose named analyzers
//     suppressed anything. Only analyzers that actually ran on the package
//     (ranNames) count: a directive for an analyzer the driver skipped is
//     not reported, so partial -analyzers runs stay quiet.
//
// known is the set of valid analyzer names; pass AllNames(). Diagnostics
// carry the DirectivesName pseudo-analyzer and are themselves suppressible
// with //eqlint:allow directives (matched under that name).
func VerifyDirectives(pkg *Package, known map[string]bool, ranNames map[string]bool, strict bool) []Diagnostic {
	var out []Diagnostic
	report := func(file string, line, col int, format string, args ...interface{}) {
		out = append(out, Diagnostic{
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Analyzer: DirectivesName,
			Message:  fmt.Sprintf(format, args...),
		})
	}

	// Unknown verbs: scan raw comments.
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//eqlint:")
				if !ok {
					continue
				}
				verb := rest
				if i := strings.IndexAny(verb, " \t"); i >= 0 {
					verb = verb[:i]
				}
				if verb == "" || knownDirectiveVerbs[verb] {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				report(pos.Filename, pos.Line, pos.Column,
					"unknown eqlint directive %q (known: allow, barrierphase, cycle-owner, emitpath, hotpath, nilsafe, shardroot)", verb)
			}
		}
	}

	for _, d := range pkg.allows().list {
		if !d.eqlint {
			continue // //nolint compatibility forms are not validated
		}
		for _, name := range d.names {
			if name == "*" {
				continue
			}
			if !known[name] {
				report(d.file, d.line, 1,
					"allow directive names unknown analyzer %q; it suppresses nothing", name)
				continue
			}
			if strict && ranNames[name] && !d.used[name] {
				report(d.file, d.line, 1,
					"allow directive for %s suppressed nothing; remove it", name)
			}
		}
	}

	// Directive diagnostics are themselves suppressible.
	kept := out[:0]
	for _, d := range out {
		if pkg.allows().allows(d.Pos.Filename, d.Pos.Line, DirectivesName) {
			continue
		}
		kept = append(kept, d)
	}
	sortDiagnostics(kept)
	return kept
}
