package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// TestModuleAnalyzersNoRoots checks the fall-back: over a package with no
// shardroot/hotpath annotations, both module analyzers are silent instead
// of guessing roots.
func TestModuleAnalyzersNoRoots(t *testing.T) {
	pkg := loadTestPkg(t, "errstrict")
	mod := NewModule([]*Package{pkg})
	for _, a := range []*Analyzer{ShardPhase, AllocFree} {
		diags, err := RunModuleAnalyzer(a, mod)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if len(diags) != 0 {
			t.Errorf("%s over un-annotated package = %d diagnostics, want 0: %v", a.Name, len(diags), diags)
		}
	}
}

// method finds a named type's method by name in the fixture package.
func method(t *testing.T, pkg *Package, typeName, methodName string) *types.Func {
	t.Helper()
	obj := pkg.Types.Scope().Lookup(typeName)
	if obj == nil {
		t.Fatalf("type %s not found", typeName)
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		t.Fatalf("%s is not a named type", typeName)
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == methodName {
			return m
		}
	}
	t.Fatalf("method %s.%s not found", typeName, methodName)
	return nil
}

// TestShardPhaseFacts checks the facts store: shardphase exports a
// ShardReachableFact for every function it visits, naming the root, and
// functions it never reaches carry no fact.
func TestShardPhaseFacts(t *testing.T) {
	pkg := loadTestPkg(t, "shardphase")
	mod := NewModule([]*Package{pkg})
	if _, err := RunModuleAnalyzer(ShardPhase, mod); err != nil {
		t.Fatal(err)
	}

	var fact ShardReachableFact
	helper := method(t, pkg, "shardEngine", "helper")
	if !mod.ImportObjectFact(helper, &fact) {
		t.Fatal("no ShardReachableFact on helper, which is reachable from worker")
	}
	if fact.Root == "" || !strings.Contains(fact.Root, "worker") {
		t.Errorf("helper's fact root = %q, want the worker root", fact.Root)
	}

	// reduce is barrier-phase: calls to it are flagged, not followed.
	reduce := method(t, pkg, "shardEngine", "reduce")
	if mod.ImportObjectFact(reduce, &fact) {
		t.Errorf("barrier-phase reduce carries a reachability fact (root %q); the walk must stop at the report", fact.Root)
	}
}

// TestCallGraphShape spot-checks the conservative call graph over the
// allocfree fixture: static method edges resolve, and the graph node for a
// root lists its callees.
func TestCallGraphShape(t *testing.T) {
	pkg := loadTestPkg(t, "allocfree")
	mod := NewModule([]*Package{pkg})
	g := mod.Graph()

	emit := g.Node(method(t, pkg, "bus", "emit"))
	if emit == nil {
		t.Fatal("no call-graph node for bus.emit")
	}
	callees := map[string]bool{}
	dynamic := 0
	for _, site := range emit.Out {
		if site.Dynamic {
			dynamic++
		}
		for _, f := range site.Targets {
			callees[f.Name()] = true
		}
	}
	for _, want := range []string{"flush", "report", "box"} {
		if !callees[want] {
			t.Errorf("emit's callees missing %s; have %v", want, callees)
		}
	}

	roots := g.NodesWithDirective("hotpath")
	if len(roots) != 1 || roots[0] != emit {
		t.Errorf("NodesWithDirective(hotpath) = %v, want exactly bus.emit", roots)
	}
}
