package analysis

import (
	"go/ast"
	"go/types"
)

// ShardPhase encodes the sharded cycle engine's legality argument
// (DESIGN.md §9) as a checked property: code running on a shard-worker
// goroutine — everything reachable from an //eqlint:shardroot function —
// may touch only state owned by its SM range. Reachable writes to shared
// machine/memory-domain state, calls into //eqlint:barrierphase functions
// (coordinator-only code), and statically unresolvable calls are flagged.
// Accesses indexed by a worker-local variable (e.slots[w], e.m.sms[i]) are
// the blessed per-shard pattern and pass.
var ShardPhase = &Analyzer{
	Name: "shardphase",
	Doc: `flag shared-state access on shard-worker goroutines outside the barrier phase

Starting from every //eqlint:shardroot function, walks the module call
graph and reports: writes whose selector chain passes through a shared
simulator type (Machine, shardEngine, the memory-domain components) without
a worker-local index; calls to //eqlint:barrierphase (coordinator-only)
functions; and dynamic calls, which cannot be proven shard-safe and must be
individually blessed with an allow directive stating why they are.`,
	RunModule: runShardPhase,
}

// sharedStateTypes names the simulator types that only the coordinator may
// mutate between phase barriers. Matching is by type name so the analyzer's
// testdata packages can model the shape without importing the simulator.
var sharedStateTypes = map[string]bool{
	"Machine":       true, // gpu.Machine
	"shardEngine":   true, // gpu.shardEngine
	"memController": true, // gpu's DRAM interface
	"Network":       true, // icnt.Network
	"Controller":    true, // dram.Controller
	"Banked":        true, // dram.Banked
}

// ShardReachableFact marks a function as reachable from a shard-worker
// root; exported for each function shardphase visits so later analyzers
// (and tests) can consume the reachability frontier.
type ShardReachableFact struct {
	// Root is the display name of the //eqlint:shardroot function the walk
	// started from.
	Root string
}

// AFact marks ShardReachableFact as a Fact.
func (*ShardReachableFact) AFact() {}

func runShardPhase(pass *ModulePass) error {
	g := pass.Module.Graph()
	roots := g.NodesWithDirective("shardroot")
	if len(roots) == 0 {
		return nil
	}
	barrier := map[*types.Func]bool{}
	for _, n := range g.NodesWithDirective("barrierphase") {
		barrier[n.Fn] = true
	}

	rootOf := map[*CallNode]string{}
	var queue []*CallNode
	for _, r := range roots {
		if _, ok := rootOf[r]; ok {
			continue
		}
		rootOf[r] = funcDisplayName(r.Fn)
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		root := rootOf[n]
		pass.ExportObjectFact(n.Fn, &ShardReachableFact{Root: root})
		where := "in " + funcDisplayName(n.Fn) + ", reachable from shard root " + root
		if funcDisplayName(n.Fn) == root {
			where = "in shard root " + root
		}

		checkShardWrites(pass, n, where)

		for _, site := range n.Out {
			if site.Dynamic || (site.Interface && len(site.Targets) == 0) {
				pass.Reportf(site.Call.Pos(),
					"dynamic call cannot be proven shard-phase safe (%s); bless with //eqlint:allow shardphase -- <reason>", where)
				continue
			}
			for _, t := range site.Targets {
				if barrier[t] {
					pass.Reportf(site.Call.Pos(),
						"barrier-phase function %s called from shard-worker code (%s)", funcDisplayName(t), where)
					continue
				}
				if pkg := t.Pkg(); pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic") {
					// The barrier protocol itself (WaitGroup.Done and
					// friends) is how workers hand state back; allowed.
					continue
				}
				if tn := g.Node(t); tn != nil {
					if _, ok := rootOf[tn]; !ok {
						rootOf[tn] = root
						queue = append(queue, tn)
					}
					continue
				}
				// Callee outside the module (stdlib). Flag it only when it
				// is invoked on shared state; pure-value helpers are fine.
				if sel, ok := ast.Unparen(site.Call.Fun).(*ast.SelectorExpr); ok {
					if name, shared := sharedStateChain(n.Pkg.Info, sel.X); shared {
						pass.Reportf(site.Call.Pos(),
							"call to %s on shared %s state from shard-worker code (%s)", funcDisplayName(t), name, where)
					}
				}
			}
		}
	}
	return nil
}

// checkShardWrites flags writes to shared state in one reachable function:
// assignments, ++/--, and the mutating builtins delete/clear.
func checkShardWrites(pass *ModulePass, n *CallNode, where string) {
	info := n.Pkg.Info
	inspectLive(info, n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if name, shared := sharedStateChain(info, lhs); shared {
					pass.Reportf(lhs.Pos(),
						"shard-worker write to shared %s state outside the barrier phase (%s)", name, where)
				}
			}
		case *ast.IncDecStmt:
			if name, shared := sharedStateChain(info, x.X); shared {
				pass.Reportf(x.X.Pos(),
					"shard-worker write to shared %s state outside the barrier phase (%s)", name, where)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "delete" || id.Name == "clear") && len(x.Args) > 0 {
					if name, shared := sharedStateChain(info, x.Args[0]); shared {
						pass.Reportf(x.Pos(),
							"shard-worker write to shared %s state outside the barrier phase (%s)", name, where)
					}
				}
			}
		}
		return true
	})
}

// sharedStateChain walks a selector chain outward and reports the first
// shared simulator type it passes through. An index expression whose index
// is a worker-local variable stops the walk: that is the blessed
// "my shard's slice element" pattern (e.slots[w], e.m.sms[i]).
func sharedStateChain(info *types.Info, e ast.Expr) (string, bool) {
	for {
		e = ast.Unparen(e)
		if e == nil {
			return "", false
		}
		if name, ok := sharedTypeName(info.TypeOf(e)); ok {
			return name, true
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			if localVarIndex(info, x.Index) {
				return "", false
			}
			e = x.X
		case *ast.CallExpr:
			if f, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				e = f.X
				continue
			}
			return "", false
		default:
			return "", false
		}
	}
}

// sharedTypeName resolves a type (through pointers) to a shared simulator
// type name, if it is one.
func sharedTypeName(t types.Type) (string, bool) {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	name := named.Obj().Name()
	return name, sharedStateTypes[name]
}

// localVarIndex reports whether an index expression is a plain reference to
// a function-local variable (parameter or local) — the worker's own range
// cursor. Constants and package-level variables do not qualify.
func localVarIndex(info *types.Info, idx ast.Expr) bool {
	id, ok := ast.Unparen(idx).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := info.ObjectOf(id).(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return false
	}
	return v.Parent() != v.Pkg().Scope()
}
