package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ProbeHygiene enforces the telemetry bus contract the hot loops rely on
// (and that the pinned AllocsPerRun tests measure end to end):
//
//   - Emit-path functions — (*telemetry.Bus).Emit / Enabled and anything
//     marked //eqlint:emitpath — must not allocate: no composite literals,
//     no make/new/append, no fmt, no closures, no string concatenation, no
//     map writes. A disabled probe must cost a branch and a return.
//   - Types whose doc comment contains "eqlint:nilsafe" (the Bus) must
//     begin every pointer-receiver method with a receiver nil check, so a
//     detached component can keep its probe pointer permanently wired.
//   - Calls to Emit must pass the event kind as a typed constant, keeping
//     the kind statically maskable and catching swapped arguments.
var ProbeHygiene = &Analyzer{
	Name: "probehygiene",
	Doc:  "telemetry probes must be nil-safe, kind-masked and allocation-free on the emit path",
	Run:  runProbeHygiene,
}

func runProbeHygiene(pass *Pass) error {
	nilsafeTypes := collectNilsafeTypes(pass)
	forEachFunc(pass.Files, func(fd *ast.FuncDecl) {
		if isEmitPath(pass, fd) {
			checkNoAllocations(pass, fd)
		}
		if tn := receiverNamed(pass, fd, nilsafeTypes); tn != "" {
			checkNilGuard(pass, fd, tn)
		}
	})
	pass.Inspect(func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			checkEmitKindConstant(pass, call)
		}
		return true
	})
	return nil
}

// isEmitPath reports whether fd is part of the zero-allocation emit path:
// explicitly marked, or an Emit/Enabled method on a type named Bus.
func isEmitPath(pass *Pass, fd *ast.FuncDecl) bool {
	if funcHasDirective(fd, "emitpath") {
		return true
	}
	if fd.Recv == nil || (fd.Name.Name != "Emit" && fd.Name.Name != "Enabled") {
		return false
	}
	return recvTypeName(fd) == "Bus"
}

// recvTypeName returns the receiver's type name, or "".
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkNoAllocations reports allocation sites inside an emit-path body.
func checkNoAllocations(pass *Pass, fd *ast.FuncDecl) {
	report := func(n ast.Node, what string) {
		pass.Reportf(n.Pos(), "%s allocates on the telemetry emit path; a disabled probe must cost only a branch (function %s)", what, fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			report(n, "composite literal")
		case *ast.FuncLit:
			report(n, "closure")
			return false
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if _, ok := pass.ObjectOf(fun).(*types.Builtin); ok {
					switch fun.Name {
					case "make", "new", "append":
						report(n, "builtin "+fun.Name)
					}
				}
			case *ast.SelectorExpr:
				if obj, ok := pass.ObjectOf(fun.Sel).(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
					report(n, "fmt."+obj.Name())
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t := pass.TypeOf(n.X); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n, "string concatenation")
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					if t := pass.TypeOf(idx.X); t != nil {
						if _, ok := t.Underlying().(*types.Map); ok {
							report(lhs, "map write")
						}
					}
				}
			}
		case *ast.GoStmt:
			report(n, "goroutine launch")
		}
		return true
	})
}

// collectNilsafeTypes finds type declarations whose doc comment carries the
// eqlint:nilsafe contract marker.
func collectNilsafeTypes(pass *Pass) map[string]bool {
	out := map[string]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
					if doc != nil && strings.Contains(doc.Text(), "eqlint:nilsafe") {
						out[ts.Name.Name] = true
					}
				}
			}
		}
	}
	return out
}

// receiverNamed returns the receiver type name when fd is a pointer-receiver
// method on one of the nil-safe types.
func receiverNamed(pass *Pass, fd *ast.FuncDecl, nilsafe map[string]bool) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	if _, ok := fd.Recv.List[0].Type.(*ast.StarExpr); !ok {
		return "" // value receivers copy; nil cannot reach them
	}
	if tn := recvTypeName(fd); nilsafe[tn] {
		return tn
	}
	return ""
}

// checkNilGuard requires the method body to open with an `if` statement
// whose condition tests the receiver against nil (either polarity, possibly
// inside || / &&).
func checkNilGuard(pass *Pass, fd *ast.FuncDecl, typeName string) {
	recvName := ""
	if names := fd.Recv.List[0].Names; len(names) > 0 {
		recvName = names[0].Name
	}
	if recvName == "" || recvName == "_" {
		pass.Reportf(fd.Pos(), "method %s.%s on nil-safe type has no named receiver to nil-check", typeName, fd.Name.Name)
		return
	}
	if len(fd.Body.List) > 0 {
		if ifs, ok := fd.Body.List[0].(*ast.IfStmt); ok && mentionsNilCheck(ifs.Cond, recvName) {
			return
		}
		// `return <expr involving recv == nil>` (e.g. `return b != nil && ...`).
		if ret, ok := fd.Body.List[0].(*ast.ReturnStmt); ok && len(ret.Results) == 1 && mentionsNilCheck(ret.Results[0], recvName) {
			return
		}
	}
	pass.Reportf(fd.Pos(),
		"method %s.%s must begin with a %s == nil guard; %s is documented nil-safe (eqlint:nilsafe)",
		typeName, fd.Name.Name, recvName, typeName)
}

// mentionsNilCheck reports whether the expression contains `recv == nil` or
// `recv != nil` at any depth.
func mentionsNilCheck(e ast.Expr, recvName string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if b.Op.String() != "==" && b.Op.String() != "!=" {
			return true
		}
		isRecv := func(x ast.Expr) bool {
			id, ok := x.(*ast.Ident)
			return ok && id.Name == recvName
		}
		isNil := func(x ast.Expr) bool {
			id, ok := x.(*ast.Ident)
			return ok && id.Name == "nil"
		}
		if (isRecv(b.X) && isNil(b.Y)) || (isNil(b.X) && isRecv(b.Y)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkEmitKindConstant requires the kind argument of (*Bus).Emit calls to
// be a typed constant so masks stay statically analysable.
func checkEmitKindConstant(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Emit" {
		return
	}
	obj, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Bus" {
		return
	}
	// Find the parameter whose type is named Kind; Emit(timePS, k, src, a, b).
	kindIdx := -1
	for i := 0; i < sig.Params().Len(); i++ {
		if pn, ok := sig.Params().At(i).Type().(*types.Named); ok && pn.Obj().Name() == "Kind" {
			kindIdx = i
			break
		}
	}
	if kindIdx < 0 || kindIdx >= len(call.Args) {
		return
	}
	tv, ok := pass.Info.Types[call.Args[kindIdx]]
	if ok && tv.Value != nil {
		return
	}
	// A plain identifier bound to a Kind parameter/field is also fine: the
	// constant was pinned at a higher level (e.g. SetProbe wiring).
	if id, ok := call.Args[kindIdx].(*ast.Ident); ok {
		if _, isVar := pass.ObjectOf(id).(*types.Var); isVar {
			return
		}
	}
	if sel, ok := call.Args[kindIdx].(*ast.SelectorExpr); ok {
		if _, isVar := pass.ObjectOf(sel.Sel).(*types.Var); isVar {
			return
		}
	}
	pass.Reportf(call.Args[kindIdx].Pos(),
		"Emit kind argument must be a telemetry.Kind constant (or a variable pinned from one), not a computed expression")
}
