package analysis

import (
	"fmt"
	"regexp"
	"strings"
)

// All returns every registered analyzer in deterministic order; the eqlint
// multichecker runs exactly this set.
func All() []*Analyzer {
	return []*Analyzer{AllocFree, CycleAccounting, ErrStrict, NoDeterminism, ProbeHygiene, ShardPhase}
}

// AllNames returns the set of valid analyzer names, for directive
// validation.
func AllNames() map[string]bool {
	names := make(map[string]bool, len(All()))
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}

// ByName resolves analyzer names (comma-separated) to analyzers.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" || names == "all" {
		return All(), nil
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
	}
	return out, nil
}

// wantRe matches expected-diagnostic annotations in testdata sources:
//
//	code() // want "regexp"
//	code() // want "first" "second"
var wantRe = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)

var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` annotation.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// AnalysisTest loads the package in dir and runs the analyzer over it,
// comparing produced diagnostics against `// want "re"` annotations in the
// sources. It returns a list of mismatch descriptions; an empty list means
// the analyzer behaved exactly as annotated. The reporting t is abstracted
// so the helper itself stays testable.
func AnalysisTest(a *Analyzer, dir string) ([]string, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	diags, err := RunAnalyzer(a, pkg)
	if err != nil {
		return nil, err
	}
	expects, err := collectExpectations(pkg)
	if err != nil {
		return nil, err
	}

	var problems []string
	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.pattern.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic at %s:%d: %s",
				d.Pos.Filename, d.Pos.Line, d.Message))
		}
	}
	for _, e := range expects {
		if !e.matched {
			problems = append(problems, fmt.Sprintf("missing diagnostic at %s:%d matching %q",
				e.file, e.line, e.pattern))
		}
	}
	return problems, nil
}

// collectExpectations scans package comments for `// want` annotations.
func collectExpectations(pkg *Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w",
							pos.Filename, pos.Line, arg[1], err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out, nil
}
