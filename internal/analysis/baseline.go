package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// BaselineFile is the conventional name of the committed baseline at the
// module root. The eqlint driver loads it automatically when present, so
// new analyzers land strict-on-new-code while legacy findings burn down
// explicitly — and the CI guard asserts the file only ever shrinks.
const BaselineFile = ".eqlint-baseline.json"

// Finding is one diagnostic in machine-readable form. File is
// module-relative with forward slashes so reports and baselines are
// portable across checkouts.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Report is the JSON document produced by `eqlint -format json` and stored
// in the baseline file — one schema, so the output round-trips through the
// baseline loader by construction.
type Report struct {
	// Version guards the schema.
	Version int `json:"version"`
	// Findings are sorted by (file, line, col, analyzer, message).
	Findings []Finding `json:"findings"`
}

// ReportVersion is the current report schema version.
const ReportVersion = 1

// NewReport converts diagnostics (whose positions are absolute paths from
// the loader) into a report with module-relative file paths.
func NewReport(moduleRoot string, diags []Diagnostic) *Report {
	r := &Report{Version: ReportVersion, Findings: make([]Finding, 0, len(diags))}
	for _, d := range diags {
		r.Findings = append(r.Findings, Finding{
			File:     relPath(moduleRoot, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	sortFindings(r.Findings)
	return r
}

func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadReport parses a JSON report (or baseline file — same schema).
func LoadReport(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("analysis: parse report: %w", err)
	}
	if r.Version != ReportVersion {
		return nil, fmt.Errorf("analysis: report version %d, want %d", r.Version, ReportVersion)
	}
	return &r, nil
}

// baselineKey identifies a finding independent of its line/column, so
// unrelated edits that shift code do not invalidate the baseline. Messages
// embed function context, which keeps keys stable and specific.
type baselineKey struct {
	file     string
	analyzer string
	message  string
}

// Baseline is a count-aware set of accepted legacy findings.
type Baseline struct {
	counts map[baselineKey]int
}

// NewBaseline indexes a report for matching.
func NewBaseline(r *Report) *Baseline {
	b := &Baseline{counts: map[baselineKey]int{}}
	for _, f := range r.Findings {
		b.counts[baselineKey{f.File, f.Analyzer, f.Message}]++
	}
	return b
}

// Filter returns the findings not covered by the baseline. Matching is
// count-aware: a baseline entry absorbs at most as many identical findings
// as it recorded, so duplicating a flagged construct surfaces the copy.
func (b *Baseline) Filter(fs []Finding) []Finding {
	remaining := make(map[baselineKey]int, len(b.counts))
	for k, v := range b.counts {
		remaining[k] = v
	}
	var out []Finding
	for _, f := range fs {
		k := baselineKey{f.File, f.Analyzer, f.Message}
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, f)
	}
	return out
}

// Size returns the number of baselined findings.
func (b *Baseline) Size() int {
	n := 0
	for _, v := range b.counts {
		n += v
	}
	return n
}

// DiffAgainst returns a description of every finding (key, count) present
// in b but absent (or less numerous) in old — the entries that would make
// the baseline grow. An empty result means b is a subset of old.
func (b *Baseline) DiffAgainst(old *Baseline) []string {
	var out []string
	for k, n := range b.counts {
		if extra := n - old.counts[k]; extra > 0 {
			out = append(out, fmt.Sprintf("%s: %s: %s (+%d)", k.file, k.analyzer, k.message, extra))
		}
	}
	sort.Strings(out)
	return out
}

// WriteSARIF renders the report as minimal SARIF 2.1.0, enough for code
// scanning UIs: one run, one result per finding, physical locations with
// region start line/column.
func (r *Report) WriteSARIF(w io.Writer) error {
	type sarifMessage struct {
		Text string `json:"text"`
	}
	type sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn,omitempty"`
	}
	type sarifArtifactLocation struct {
		URI string `json:"uri"`
	}
	type sarifPhysicalLocation struct {
		ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
		Region           sarifRegion           `json:"region"`
	}
	type sarifLocation struct {
		PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID    string          `json:"ruleId"`
		Level     string          `json:"level"`
		Message   sarifMessage    `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}
	type sarifRule struct {
		ID string `json:"id"`
	}
	type sarifDriver struct {
		Name  string      `json:"name"`
		Rules []sarifRule `json:"rules"`
	}
	type sarifTool struct {
		Driver sarifDriver `json:"driver"`
	}
	type sarifRun struct {
		Tool    sarifTool     `json:"tool"`
		Results []sarifResult `json:"results"`
	}
	type sarifLog struct {
		Schema  string     `json:"$schema"`
		Version string     `json:"version"`
		Runs    []sarifRun `json:"runs"`
	}

	ruleSet := map[string]bool{}
	results := make([]sarifResult, 0, len(r.Findings))
	for _, f := range r.Findings {
		ruleSet[f.Analyzer] = true
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	rules := make([]sarifRule, 0, len(ruleSet))
	for id := range ruleSet {
		rules = append(rules, sarifRule{ID: id})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "eqlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
