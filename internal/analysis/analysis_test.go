package analysis

import (
	"path/filepath"
	"testing"
)

// TestAnalyzers runs every analyzer over its testdata package and checks the
// produced diagnostics against the `// want` annotations, in both
// directions: no unexpected findings, no silent expectations.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		dir      string
	}{
		{NoDeterminism, "nodeterminism"},
		{CycleAccounting, "cycleaccounting"},
		{ProbeHygiene, "probehygiene"},
		{ErrStrict, "errstrict"},
		{ShardPhase, "shardphase"},
		{AllocFree, "allocfree"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			problems, err := AnalysisTest(tc.analyzer, dir)
			if err != nil {
				t.Fatalf("AnalysisTest(%s): %v", tc.analyzer.Name, err)
			}
			for _, p := range problems {
				t.Error(p)
			}
		})
	}
}

// TestByName covers the analyzer-selection helper used by the eqlint
// -analyzers flag.
func TestByName(t *testing.T) {
	all, err := ByName("all")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(all) = %d analyzers, err %v; want %d", len(all), err, len(All()))
	}
	one, err := ByName("nodeterminism")
	if err != nil || len(one) != 1 || one[0] != NoDeterminism {
		t.Fatalf("ByName(nodeterminism) = %v, err %v", one, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) succeeded, want error")
	}
}

// TestLoaderExpand checks ./... pattern expansion skips testdata.
func TestLoaderExpand(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("Expand(./...) returned no directories")
	}
	for _, d := range dirs {
		if filepath.Base(filepath.Dir(d)) == "testdata" || filepath.Base(d) == "testdata" {
			t.Errorf("Expand returned testdata directory %s", d)
		}
	}
}
