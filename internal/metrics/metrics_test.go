package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %g, want 0", g)
	}
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean(2,8) = %g, want 4", g)
	}
	if g := Geomean([]float64{1, 1, 1}); math.Abs(g-1) > 1e-12 {
		t.Fatalf("geomean(1,1,1) = %g, want 1", g)
	}
}

func TestGeomeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("geomean accepted a zero sample")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestMean(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Fatalf("mean(nil) = %g", m)
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %g, want 2", m)
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(3, 2); r != 1.5 {
		t.Fatalf("ratio = %g", r)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero denominator accepted")
		}
	}()
	Ratio(1, 0)
}

func TestPct(t *testing.T) {
	if s := Pct(0.123); s != "+12.3%" {
		t.Fatalf("Pct = %q", s)
	}
	if s := Pct(-0.04); s != "-4.0%" {
		t.Fatalf("Pct = %q", s)
	}
}

func TestBar(t *testing.T) {
	if b := Bar(0.5, 10); b != "#####....." {
		t.Fatalf("Bar(0.5,10) = %q", b)
	}
	if b := Bar(0, 4); b != "...." {
		t.Fatalf("Bar(0,4) = %q", b)
	}
	if b := Bar(1, 4); b != "####" {
		t.Fatalf("Bar(1,4) = %q", b)
	}
	if b := Bar(-1, 4); b != "...." {
		t.Fatalf("negative clamp: %q", b)
	}
	if b := Bar(2, 4); b != "####" {
		t.Fatalf("overflow clamp: %q", b)
	}
	if b := Bar(0.5, 0); b != "" {
		t.Fatalf("zero width: %q", b)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("kernel", "speedup")
	tb.AddRowf("kmn", 2.84)
	tb.AddRow("lbm") // short row padded
	out := tb.String()
	if !strings.Contains(out, "kernel") || !strings.Contains(out, "2.840") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4 (header, sep, 2 rows)", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("separator missing: %q", lines[1])
	}
}

func TestTableMixedTypes(t *testing.T) {
	tb := NewTable("a", "b", "c", "d")
	tb.AddRowf(1, int64(2), 3.5, uint(7))
	out := tb.String()
	for _, want := range []string{"1", "2", "3.500", "7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

// Property: geomean lies between min and max of the samples.
func TestQuickGeomeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)/100 + 0.01
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
