// Package metrics provides the small statistical helpers the experiment
// harness uses to aggregate per-kernel results the way the paper does:
// geometric means for speedups, arithmetic means for energy ratios, and
// fixed-point table formatting.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Geomean returns the geometric mean of xs, or zero for an empty slice.
// Non-positive entries are a caller bug and panic, since a speedup or energy
// ratio of zero would silently poison the aggregate.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("metrics: non-positive sample %g in geomean", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// GeomeanErr is Geomean with error reporting instead of a panic: a
// non-positive sample — one broken kernel run in a sweep — returns a
// descriptive error rather than killing the whole aggregation.
func GeomeanErr(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("metrics: non-positive sample %g at index %d in geomean", x, i)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Mean returns the arithmetic mean, or zero for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Ratio returns a/b and panics when b is zero — a zero denominator means a
// run produced no result and must not be masked.
func Ratio(a, b float64) float64 {
	if b == 0 {
		panic("metrics: zero denominator")
	}
	return a / b
}

// RatioErr is Ratio with error reporting instead of a panic, for callers
// aggregating many runs where one empty result should not abort the rest.
func RatioErr(a, b float64) (float64, error) {
	if b == 0 {
		return 0, fmt.Errorf("metrics: zero denominator for ratio %g/0", a)
	}
	return a / b, nil
}

// Pct formats a fraction as a signed percentage ("+12.3%", "-4.0%").
func Pct(f float64) string {
	return fmt.Sprintf("%+.1f%%", f*100)
}

// Bar renders a fraction in [0,1] as a fixed-width ASCII bar, the terminal
// stand-in for the paper's stacked-bar figures. Out-of-range values clamp.
func Bar(frac float64, width int) string {
	if width <= 0 {
		return ""
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	filled := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", filled) + strings.Repeat(".", width-filled)
}

// Table is a minimal fixed-width text table writer for harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable builds a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted values: strings pass through, float64s
// format with three decimals, ints in base 10.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case int64:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// String renders the table with aligned columns. Rows longer than the
// header get their own columns rather than collapsing into the last one.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for len(widths) < len(row) {
			widths = append(widths, 0)
		}
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
