package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"equalizer/internal/config"
)

func smallGeom() config.Cache {
	return config.Cache{Sets: 4, Ways: 2, LineBytes: 64, MSHRs: 4}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	bad := []config.Cache{
		{Sets: 0, Ways: 1, LineBytes: 64, MSHRs: 1},
		{Sets: 3, Ways: 1, LineBytes: 64, MSHRs: 1},
		{Sets: 4, Ways: 0, LineBytes: 64, MSHRs: 1},
		{Sets: 4, Ways: 1, LineBytes: 48, MSHRs: 1},
		{Sets: 4, Ways: 1, LineBytes: 64, MSHRs: 0},
	}
	for i, g := range bad {
		if _, err := New(g); err == nil {
			t.Errorf("case %d: New accepted invalid geometry %+v", i, g)
		}
	}
}

func TestMissThenFillThenHit(t *testing.T) {
	c := MustNew(smallGeom())
	if r := c.Access(0x100); r != Miss {
		t.Fatalf("first access = %v, want miss", r)
	}
	if r := c.Access(0x104); r != MergedMiss {
		t.Fatalf("same-line access during miss = %v, want merged", r)
	}
	if w := c.Fill(0x100); w != 2 {
		t.Fatalf("fill waiters = %d, want 2", w)
	}
	if r := c.Access(0x13f); r != Hit {
		t.Fatalf("post-fill access = %v, want hit", r)
	}
	if c.OutstandingMisses() != 0 {
		t.Fatalf("outstanding misses = %d, want 0", c.OutstandingMisses())
	}
}

func TestMSHRExhaustionRejects(t *testing.T) {
	c := MustNew(smallGeom())
	for i := 0; i < 4; i++ {
		if r := c.Access(Addr(i * 0x1000)); r != Miss {
			t.Fatalf("access %d = %v, want miss", i, r)
		}
	}
	if r := c.Access(0x9000); r != Reject {
		t.Fatalf("access with full MSHRs = %v, want reject", r)
	}
	// A merged miss is still possible when its MSHR already exists.
	if r := c.Access(0x1010); r != MergedMiss {
		t.Fatalf("merge with full MSHRs = %v, want merged", r)
	}
	c.Fill(0x0000)
	if r := c.Access(0x9000); r != Miss {
		t.Fatalf("access after fill = %v, want miss", r)
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(smallGeom())
	// Three lines mapping to the same set (set stride = sets*line = 256).
	a, b, d := Addr(0x000), Addr(0x100), Addr(0x200)
	for _, x := range []Addr{a, b} {
		c.Access(x)
		c.Fill(x)
	}
	c.Access(a) // touch a; b becomes LRU
	c.Access(d)
	c.Fill(d) // evicts b
	if !c.Contains(a) {
		t.Fatal("recently used line a was evicted")
	}
	if c.Contains(b) {
		t.Fatal("LRU line b survived eviction")
	}
	if !c.Contains(d) {
		t.Fatal("filled line d not resident")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestFillWithoutMissPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fill without outstanding miss did not panic")
		}
	}()
	MustNew(smallGeom()).Fill(0x40)
}

func TestFlush(t *testing.T) {
	c := MustNew(smallGeom())
	c.Access(0x40)
	c.Fill(0x40)
	c.Access(0x80)
	c.Flush()
	if c.Contains(0x40) {
		t.Fatal("line survived flush")
	}
	if c.OutstandingMisses() != 0 {
		t.Fatal("MSHRs survived flush")
	}
	if r := c.Access(0x40); r != Miss {
		t.Fatalf("post-flush access = %v, want miss", r)
	}
}

func TestStatsAndHitRate(t *testing.T) {
	c := MustNew(smallGeom())
	c.Access(0x40) // miss
	c.Fill(0x40)
	c.Access(0x40) // hit
	c.Access(0x40) // hit
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Fills != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if hr := s.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate = %g, want 2/3", hr)
	}
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Fatal("ResetStats did not clear accesses")
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty stats hit rate should be 0")
	}
}

func TestRejectDoesNotCountAsDemand(t *testing.T) {
	g := smallGeom()
	g.MSHRs = 1
	c := MustNew(g)
	c.Access(0x000)
	c.Access(0x1000) // reject
	s := c.Stats()
	if s.Rejects != 1 {
		t.Fatalf("rejects = %d, want 1", s.Rejects)
	}
	if s.Accesses != 1 {
		t.Fatalf("demand accesses = %d, want 1", s.Accesses)
	}
}

func TestLineAddr(t *testing.T) {
	c := MustNew(smallGeom())
	if la := c.LineAddr(0x7f); la != 0x40 {
		t.Fatalf("LineAddr(0x7f) = %#x, want 0x40", uint64(la))
	}
	if la := c.LineAddr(0x40); la != 0x40 {
		t.Fatalf("LineAddr(0x40) = %#x, want 0x40", uint64(la))
	}
}

// Property: after any access/fill sequence, outstanding misses never exceed
// the MSHR count and every valid set holds at most `ways` lines.
func TestQuickInvariants(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		g := smallGeom()
		c := MustNew(g)
		rng := rand.New(rand.NewSource(seed))
		var pending []Addr
		for _, op := range ops {
			if op%3 == 0 && len(pending) > 0 {
				i := rng.Intn(len(pending))
				c.Fill(pending[i])
				pending = append(pending[:i], pending[i+1:]...)
				continue
			}
			a := Addr(op) * 16
			if c.Access(a) == Miss {
				pending = append(pending, c.LineAddr(a))
			}
			if c.OutstandingMisses() > g.MSHRs {
				return false
			}
			if len(pending) != c.OutstandingMisses() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a working set no larger than one set's capacity, strided to a
// single set, never misses after warm-up (LRU correctness).
func TestQuickLRUNoThrashWithinAssociativity(t *testing.T) {
	f := func(base uint16) bool {
		c := MustNew(smallGeom()) // 2 ways
		setStride := Addr(4 * 64) // sets * line
		a := Addr(base) * setStride
		b := a + setStride
		for _, x := range []Addr{a, b} {
			if c.Access(x) == Miss {
				c.Fill(x)
			}
		}
		for i := 0; i < 16; i++ {
			if c.Access(a) != Hit || c.Access(b) != Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
