// Package cache implements the set-associative caches of the simulated GPU:
// the per-SM L1 data cache (64 sets, 4 ways, 128-byte lines on the baseline
// Fermi) and the shared L2. The model is tag-only — no data payloads are
// carried — because the simulator needs hit/miss behaviour, LRU replacement
// and miss-status-holding-register (MSHR) back-pressure, not values.
package cache

import (
	"fmt"

	"equalizer/internal/config"
	"equalizer/internal/telemetry"
)

// Addr is a byte address in the simulated global memory space.
type Addr uint64

// AccessResult classifies the outcome of a cache probe.
type AccessResult int

const (
	// Hit means the line was present.
	Hit AccessResult = iota
	// Miss means the line was absent and a new MSHR was allocated; the
	// caller must forward the request downstream and later call Fill.
	Miss
	// MergedMiss means the line was absent but an MSHR for it already
	// exists; the request piggybacks on the outstanding fill and nothing
	// must be forwarded.
	MergedMiss
	// Reject means the cache cannot accept the access because all MSHRs are
	// busy; the requester must stall and retry. This is the back-pressure
	// signal that ultimately produces Xmem warps.
	Reject
)

// String returns the result name.
func (r AccessResult) String() string {
	switch r {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case MergedMiss:
		return "merged"
	case Reject:
		return "reject"
	default:
		return fmt.Sprintf("AccessResult(%d)", int(r))
	}
}

type line struct {
	tag   uint64
	valid bool
	// lru is a per-set logical timestamp; larger = more recently used.
	lru uint64
}

// Stats aggregates cache activity.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Merged    uint64
	Rejects   uint64
	Fills     uint64
	Evictions uint64
}

// HitRate returns hits/accesses counting merged misses as misses, or zero
// when the cache was never accessed.
func (s Stats) HitRate() float64 {
	demand := s.Hits + s.Misses + s.Merged
	if demand == 0 {
		return 0
	}
	return float64(s.Hits) / float64(demand)
}

// Cache is a blocking-free set-associative cache with MSHR miss tracking.
// It is not safe for concurrent use; the simulator is single-threaded per
// deterministic design.
type Cache struct {
	geom      config.Cache
	lineShift uint
	setMask   uint64

	sets  [][]line
	clock uint64

	// mshrs maps outstanding line addresses to the number of merged
	// requests waiting on the fill.
	mshrs map[Addr]int

	lastVictim    Addr
	hasLastVictim bool

	// Telemetry: probe is nil (free) until SetProbe wires the cache to a
	// bus; accessKind/evictKind distinguish the L1 and L2 instances and
	// probeNow supplies the owner's current simulation time.
	probe      *telemetry.Bus
	accessKind telemetry.Kind
	evictKind  telemetry.Kind
	probeSrc   int16
	probeNow   func() int64

	stats Stats
}

// New builds a cache from its geometry. The set count and line size must be
// powers of two.
func New(geom config.Cache) (*Cache, error) {
	if geom.Sets <= 0 || geom.Ways <= 0 || geom.LineBytes <= 0 {
		return nil, fmt.Errorf("cache: invalid geometry %+v", geom)
	}
	if geom.Sets&(geom.Sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a power of two", geom.Sets)
	}
	if geom.LineBytes&(geom.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d is not a power of two", geom.LineBytes)
	}
	if geom.MSHRs <= 0 {
		return nil, fmt.Errorf("cache: MSHR count %d must be positive", geom.MSHRs)
	}
	c := &Cache{
		geom:    geom,
		setMask: uint64(geom.Sets - 1),
		mshrs:   make(map[Addr]int, geom.MSHRs),
	}
	for geom.LineBytes>>c.lineShift > 1 {
		c.lineShift++
	}
	c.sets = make([][]line, geom.Sets)
	backing := make([]line, geom.Sets*geom.Ways)
	for i := range c.sets {
		c.sets[i], backing = backing[:geom.Ways], backing[geom.Ways:]
	}
	return c, nil
}

// MustNew is New but panics on error; for configurations known statically.
func MustNew(geom config.Cache) *Cache {
	c, err := New(geom)
	if err != nil {
		panic(err)
	}
	return c
}

// SetProbe wires the cache to a telemetry bus: every Access emits an event
// of kind access (payload: line address, AccessResult ordinal) and every
// evicting Fill emits kind evict (payload: victim line). src labels the
// emitting unit (the SM index for an L1, -1 for the shared L2) and now
// supplies the owner's current simulation time in picoseconds. A nil bus
// detaches the probe.
func (c *Cache) SetProbe(b *telemetry.Bus, access, evict telemetry.Kind, src int16, now func() int64) {
	c.probe, c.accessKind, c.evictKind, c.probeSrc, c.probeNow = b, access, evict, src, now
}

// LineAddr returns the line-aligned address containing a.
func (c *Cache) LineAddr(a Addr) Addr { return a &^ (Addr(c.geom.LineBytes) - 1) }

func (c *Cache) setIndex(a Addr) uint64 { return (uint64(a) >> c.lineShift) & c.setMask }
func (c *Cache) tag(a Addr) uint64      { return uint64(a) >> c.lineShift }

// Access probes the cache for the line containing a. On Miss the caller owns
// forwarding the fill request downstream and must eventually call Fill with
// the same address. Writes are modelled identically to reads (write-allocate,
// no writeback traffic) since Equalizer's behaviour depends on latency and
// bandwidth pressure, not dirty-line movement.
func (c *Cache) Access(a Addr) AccessResult {
	res := c.access(a)
	if c.probe.Enabled(c.accessKind) {
		//eqlint:allow shardphase -- probeNow is installed per cache at construction and reads only the owning SM's clock
		c.probe.Emit(c.probeNow(), c.accessKind, c.probeSrc, int64(c.LineAddr(a)), int64(res))
	}
	return res
}

func (c *Cache) access(a Addr) AccessResult {
	c.stats.Accesses++
	la := c.LineAddr(a)
	set := c.sets[c.setIndex(a)]
	t := c.tag(a)
	c.clock++
	for i := range set {
		if set[i].valid && set[i].tag == t {
			set[i].lru = c.clock
			c.stats.Hits++
			return Hit
		}
	}
	if n, ok := c.mshrs[la]; ok {
		c.mshrs[la] = n + 1
		c.stats.Merged++
		return MergedMiss
	}
	if len(c.mshrs) >= c.geom.MSHRs {
		c.stats.Rejects++
		// Rejected probes do not count as demand accesses for hit-rate
		// purposes; the warp retries later.
		c.stats.Accesses--
		return Reject
	}
	c.mshrs[la] = 1
	c.stats.Misses++
	return Miss
}

// Contains reports whether the line holding a is resident, without touching
// LRU state or statistics.
func (c *Cache) Contains(a Addr) bool {
	set := c.sets[c.setIndex(a)]
	t := c.tag(a)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			return true
		}
	}
	return false
}

// Fill completes an outstanding miss: it releases the MSHR for the line and
// installs the line, evicting the LRU victim if the set is full. It returns
// the number of requests that were waiting on the fill (>= 1). Calling Fill
// for a line with no outstanding MSHR is a programming error.
func (c *Cache) Fill(a Addr) int {
	la := c.LineAddr(a)
	waiters, ok := c.mshrs[la]
	if !ok {
		panic(fmt.Sprintf("cache: Fill(%#x) without outstanding miss", uint64(a)))
	}
	delete(c.mshrs, la)
	c.stats.Fills++

	set := c.sets[c.setIndex(a)]
	t := c.tag(a)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == t {
			// Already present (e.g. a racing fill path); just refresh.
			set[i].lru = c.clock
			return waiters
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid {
		c.stats.Evictions++
		c.lastVictim = Addr(set[victim].tag << c.lineShift)
		c.hasLastVictim = true
		if c.probe.Enabled(c.evictKind) {
			//eqlint:allow shardphase -- mem sharding is gated off whenever the evict kind is unmasked, so sharded fills never reach this Emit; when they could, Enabled is false
			c.probe.Emit(c.probeNow(), c.evictKind, c.probeSrc, int64(c.lastVictim), 0)
		}
	} else {
		c.hasLastVictim = false
	}
	c.clock++
	set[victim] = line{tag: t, valid: true, lru: c.clock}
	return waiters
}

// LastVictim returns the line evicted by the most recent Fill, and whether
// that Fill evicted anything. CCWS-style locality detectors use this to
// populate victim tag arrays.
func (c *Cache) LastVictim() (Addr, bool) { return c.lastVictim, c.hasLastVictim }

// MissPending reports whether an MSHR is already allocated for the line
// containing a (a new request for it would merge rather than consume a
// fresh MSHR or downstream slot).
func (c *Cache) MissPending(a Addr) bool {
	_, ok := c.mshrs[c.LineAddr(a)]
	return ok
}

// OutstandingMisses returns the number of busy MSHRs.
func (c *Cache) OutstandingMisses() int { return len(c.mshrs) }

// MSHRsFree reports whether at least one MSHR is available.
func (c *Cache) MSHRsFree() bool { return len(c.mshrs) < c.geom.MSHRs }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the statistics without disturbing cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Flush invalidates every line and drops all MSHR state. Used between kernel
// invocations, matching the GPU's lack of cross-kernel L1 coherence.
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	// Clear in place instead of reallocating: per-invocation flushes of 16
	// caches otherwise cost a fresh map each, and the retained buckets are
	// exactly the steady-state MSHR footprint.
	clear(c.mshrs)
}

// Geometry returns the configured geometry.
func (c *Cache) Geometry() config.Cache { return c.geom }
