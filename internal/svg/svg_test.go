package svg

import (
	"strings"
	"testing"
)

func TestCanvasBasics(t *testing.T) {
	c := NewCanvas(100, 50)
	c.Rect(1, 2, 3, 4, "#fff")
	c.Line(0, 0, 10, 10, "#000", 1)
	c.Text(5, 5, "a<b&c", "start", 10)
	out := c.String()
	for _, want := range []string{"<svg", "</svg>", "<rect", "<line", "a&lt;b&amp;c"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("Speedup", []string{"kmn", "lbm"}, []Series{
		{Name: "equalizer", Values: []float64{2.8, 1.1}},
		{Name: "baseline", Values: []float64{1, 1}},
	}, 400, 300)
	if !strings.Contains(out, "Speedup") || !strings.Contains(out, "kmn") {
		t.Fatalf("chart missing labels:\n%.200s", out)
	}
	if strings.Count(out, "<rect") < 5 { // background + legend + 4 bars
		t.Fatal("too few bars drawn")
	}
}

func TestBarChartEmptySafe(t *testing.T) {
	out := BarChart("empty", nil, nil, 200, 100)
	if !strings.Contains(out, "</svg>") {
		t.Fatal("empty chart not closed")
	}
}

func TestLineChart(t *testing.T) {
	out := LineChart("Trace", "epoch", []Series{
		{Name: "waiting", Values: []float64{1, 2, 3, 2}},
		{Name: "xmem", Values: []float64{4, 3, 0, 0}},
	}, 400, 300)
	if strings.Count(out, "<polyline") != 2 {
		t.Fatal("want two polylines")
	}
	if !strings.Contains(out, "epoch") {
		t.Fatal("missing x label")
	}
}

func TestPolylineDegenerate(t *testing.T) {
	c := NewCanvas(10, 10)
	c.Polyline(nil, nil, "#000", 1)
	c.Polyline([]float64{1}, []float64{1, 2}, "#000", 1)
	if strings.Contains(c.String(), "<polyline") {
		t.Fatal("degenerate polylines must be dropped")
	}
}
