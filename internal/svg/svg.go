// Package svg is a minimal scalable-vector-graphics writer used to render
// the paper's figures as images (cmd/eqviz). It supports exactly what the
// harness needs — grouped bar charts and line charts with axes and legends —
// using only the standard library.
package svg

import (
	"fmt"
	"math"
	"strings"
)

// Palette is the default series colour cycle.
var Palette = []string{
	"#4878d0", "#ee854a", "#6acc64", "#d65f5f",
	"#956cb4", "#8c613c", "#dc7ec0", "#797979",
}

// Canvas accumulates SVG elements.
type Canvas struct {
	w, h int
	b    strings.Builder
}

// NewCanvas creates a canvas of the given pixel size with a white background.
func NewCanvas(w, h int) *Canvas {
	c := &Canvas{w: w, h: h}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return c
}

// Rect draws a filled rectangle.
func (c *Canvas) Rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n", x, y, w, h, fill)
}

// Line draws a line segment.
func (c *Canvas) Line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

// Polyline draws a connected path through the points.
func (c *Canvas) Polyline(xs, ys []float64, stroke string, width float64) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return
	}
	var pts []string
	for i := range xs {
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", xs[i], ys[i]))
	}
	fmt.Fprintf(&c.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f"/>`+"\n",
		strings.Join(pts, " "), stroke, width)
}

// Text draws a label; anchor is "start", "middle" or "end".
func (c *Canvas) Text(x, y float64, s, anchor string, size int) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="%d" text-anchor="%s">%s</text>`+"\n",
		x, y, size, anchor, escape(s))
}

// TextRotated draws a label rotated 90° counter-clockwise around its anchor.
func (c *Canvas) TextRotated(x, y float64, s string, size int) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="%d" text-anchor="end" transform="rotate(-45 %.1f %.1f)">%s</text>`+"\n",
		x, y, size, x, y, escape(s))
}

// String finalises and returns the SVG document.
func (c *Canvas) String() string {
	return c.b.String() + "</svg>\n"
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// Series is one named data series of a chart.
type Series struct {
	Name   string
	Values []float64
}

// BarChart renders grouped vertical bars: one group per label, one bar per
// series within each group.
func BarChart(title string, labels []string, series []Series, w, h int) string {
	c := NewCanvas(w, h)
	const (
		padL, padR, padT, padB = 60, 20, 40, 90
	)
	plotW := float64(w - padL - padR)
	plotH := float64(h - padT - padB)

	maxV := 0.0
	for _, s := range series {
		for _, v := range s.Values {
			maxV = math.Max(maxV, v)
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	maxV *= 1.08

	c.Text(float64(w)/2, 22, title, "middle", 15)
	// Axes and gridlines.
	c.Line(padL, padT, padL, padT+plotH, "#333", 1)
	c.Line(padL, padT+plotH, padL+plotW, padT+plotH, "#333", 1)
	for i := 0; i <= 4; i++ {
		v := maxV * float64(i) / 4
		y := padT + plotH - plotH*float64(i)/4
		c.Line(padL, y, padL+plotW, y, "#ddd", 0.5)
		c.Text(padL-6, y+4, fmt.Sprintf("%.2f", v), "end", 10)
	}

	groups := len(labels)
	if groups == 0 {
		return c.String()
	}
	groupW := plotW / float64(groups)
	barW := groupW * 0.8 / float64(len(series))
	for gi, label := range labels {
		gx := padL + groupW*float64(gi) + groupW*0.1
		for si, s := range series {
			if gi >= len(s.Values) {
				continue
			}
			v := s.Values[gi]
			bh := plotH * v / maxV
			c.Rect(gx+barW*float64(si), padT+plotH-bh, barW, bh, Palette[si%len(Palette)])
		}
		c.TextRotated(gx+groupW*0.4, padT+plotH+14, label, 10)
	}

	// Legend.
	lx := float64(padL)
	for si, s := range series {
		c.Rect(lx, float64(h)-18, 10, 10, Palette[si%len(Palette)])
		c.Text(lx+14, float64(h)-9, s.Name, "start", 11)
		lx += 14 + 8*float64(len(s.Name)) + 18
	}
	return c.String()
}

// LineChart renders one line per series over a shared integer x axis.
func LineChart(title, xLabel string, series []Series, w, h int) string {
	c := NewCanvas(w, h)
	const (
		padL, padR, padT, padB = 60, 20, 40, 60
	)
	plotW := float64(w - padL - padR)
	plotH := float64(h - padT - padB)

	maxV, maxN := 0.0, 0
	for _, s := range series {
		for _, v := range s.Values {
			maxV = math.Max(maxV, v)
		}
		if len(s.Values) > maxN {
			maxN = len(s.Values)
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	maxV *= 1.08
	if maxN < 2 {
		maxN = 2
	}

	c.Text(float64(w)/2, 22, title, "middle", 15)
	c.Line(padL, padT, padL, padT+plotH, "#333", 1)
	c.Line(padL, padT+plotH, padL+plotW, padT+plotH, "#333", 1)
	for i := 0; i <= 4; i++ {
		v := maxV * float64(i) / 4
		y := padT + plotH - plotH*float64(i)/4
		c.Line(padL, y, padL+plotW, y, "#ddd", 0.5)
		c.Text(padL-6, y+4, fmt.Sprintf("%.1f", v), "end", 10)
	}
	c.Text(padL+plotW/2, float64(h)-10, xLabel, "middle", 11)

	for si, s := range series {
		xs := make([]float64, len(s.Values))
		ys := make([]float64, len(s.Values))
		for i, v := range s.Values {
			xs[i] = padL + plotW*float64(i)/float64(maxN-1)
			ys[i] = padT + plotH - plotH*v/maxV
		}
		c.Polyline(xs, ys, Palette[si%len(Palette)], 1.6)
	}

	lx := float64(padL)
	for si, s := range series {
		c.Line(lx, float64(h)-28, lx+16, float64(h)-28, Palette[si%len(Palette)], 2)
		c.Text(lx+20, float64(h)-24, s.Name, "start", 11)
		lx += 24 + 8*float64(len(s.Name)) + 14
	}
	return c.String()
}
