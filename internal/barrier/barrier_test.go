package barrier

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestBarrierReuse drives the engine's two-wait round protocol for many
// rounds: the coordinator publishes a value, workers read it after the
// start wait and write their answer, and the coordinator checks every
// answer after the done wait. Any missed round, lost wakeup, or stale sense
// shows up as a wrong or torn answer.
func TestBarrierReuse(t *testing.T) {
	for _, spin := range []int{0, 1, SpinBudget} {
		workers := 4
		b := New(workers+1, spin)
		job := 0
		out := make([]int, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var sense uint32
				for {
					b.Wait(&sense)
					j := job
					if j < 0 {
						return
					}
					out[w] = j * (w + 1)
					b.Wait(&sense)
				}
			}(w)
		}
		var sense uint32
		const rounds = 200
		for r := 1; r <= rounds; r++ {
			job = r
			b.Wait(&sense)
			b.Wait(&sense)
			for w := 0; w < workers; w++ {
				if out[w] != r*(w+1) {
					t.Fatalf("spin=%d round %d: worker %d wrote %d, want %d", spin, r, w, out[w], r*(w+1))
				}
			}
		}
		job = -1
		b.Wait(&sense)
		wg.Wait()
	}
}

// TestBarrierSenseReversal checks that each Wait flips the caller's private
// sense word and that the shared word tracks the completed round count.
func TestBarrierSenseReversal(t *testing.T) {
	b := New(1, 0)
	var sense uint32
	for round := 1; round <= 5; round++ {
		prev := sense
		b.Wait(&sense)
		if sense == prev {
			t.Fatalf("round %d: private sense did not flip (still %d)", round, prev)
		}
		if got := b.sense.Load(); got != sense {
			t.Fatalf("round %d: shared sense %d, private sense %d", round, got, sense)
		}
	}
}

// TestBarrierParkPath forces every waiter onto the park path (spin budget
// zero) on a single-proc scheduler, the configuration DefaultSpin selects
// when GOMAXPROCS <= shard count. The round must still complete.
func TestBarrierParkPath(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	workers := 3
	b := New(workers+1, 0)
	var hits atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sense uint32
			for r := 0; r < 50; r++ {
				b.Wait(&sense)
				hits.Add(1)
				b.Wait(&sense)
			}
		}()
	}
	var sense uint32
	for r := 0; r < 50; r++ {
		b.Wait(&sense)
		b.Wait(&sense)
	}
	wg.Wait()
	if got := hits.Load(); got != int32(workers*50) {
		t.Fatalf("park-path rounds: %d worker iterations, want %d", got, workers*50)
	}
}

func TestDefaultSpin(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if got := DefaultSpin(procs); got != 0 {
		t.Fatalf("DefaultSpin(%d) = %d on a %d-proc host, want 0", procs, got, procs)
	}
	if procs > 1 {
		if got := DefaultSpin(procs - 1); got != SpinBudget {
			t.Fatalf("DefaultSpin(%d) = %d, want %d", procs-1, got, SpinBudget)
		}
	}
	if got := DefaultSpin(0); got != SpinBudget && runtime.GOMAXPROCS(0) > 0 {
		t.Fatalf("DefaultSpin(0) = %d, want %d", got, SpinBudget)
	}
}

func TestNewPanicsOnZeroParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 0) did not panic")
		}
	}()
	New(0, 0)
}

// BenchmarkBarrier compares a full engine round (coordinator publishes,
// workers run an empty job, coordinator collects) across the spin-park
// barrier and a model of the legacy channel+WaitGroup protocol.
func BenchmarkBarrier(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		if workers > runtime.GOMAXPROCS(0) {
			continue
		}
		b.Run(benchName("spinpark", workers), func(b *testing.B) {
			benchSpinPark(b, workers)
		})
		b.Run(benchName("chanwg", workers), func(b *testing.B) {
			benchChanWG(b, workers)
		})
	}
}

func benchName(impl string, workers int) string {
	return impl + "/workers=" + string(rune('0'+workers))
}

func benchSpinPark(b *testing.B, workers int) {
	bar := New(workers+1, DefaultSpin(workers))
	stop := false
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sense uint32
			for {
				bar.Wait(&sense)
				if stop {
					return
				}
				bar.Wait(&sense)
			}
		}()
	}
	var sense uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bar.Wait(&sense)
		bar.Wait(&sense)
	}
	b.StopTimer()
	stop = true
	bar.Wait(&sense)
	wg.Wait()
}

// benchChanWG reproduces the pre-barrier engine round: one buffered channel
// send per worker to start the round, a WaitGroup wait to end it.
func benchChanWG(b *testing.B, workers int) {
	jobs := make([]chan struct{}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		jobs[w] = make(chan struct{}, 1)
		go func(ch chan struct{}) {
			for range ch {
				wg.Done()
			}
		}(jobs[w])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			jobs[w] <- struct{}{}
		}
		wg.Wait()
	}
	b.StopTimer()
	for w := 0; w < workers; w++ {
		close(jobs[w])
	}
}
