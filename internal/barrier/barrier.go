// Package barrier provides a reusable sense-reversing spin-then-park
// barrier for the sharded cycle engine.
//
// The shard engine's phase protocol needs every participant to meet twice
// per dispatched round: once so workers observe the published job, and once
// so the coordinator observes every worker's effects. The previous
// implementation paid two full scheduler round-trips per meeting (a channel
// send to wake each worker, a sync.WaitGroup to collect them). On simulated
// cycles that take tens of nanoseconds of real work, those round-trips
// dominate the whole run.
//
// This barrier makes the steady-state meeting cost two atomic operations:
// the last arriver flips a shared sense word; everyone else spins on it for
// a bounded budget before parking. Parking uses a mutex + condition
// variable rather than a per-round channel: a channel park would need a
// fresh channel (one allocation) every round that any party sleeps, which
// on a saturated host is every round — breaking the engine's steady-state
// zero-allocation guarantee. The condvar park allocates nothing after
// construction and provides the same wake semantics.
//
// Memory model: the barrier is sequentially consistent at the round
// boundary. The releaser resets the arrival count *before* flipping the
// sense word, and parties for the next round cannot start decrementing the
// count until they have observed the flip, so a reset can never race with a
// fresh arrival. A parked party re-checks the sense word under the mutex
// before sleeping, and the releaser broadcasts under the same mutex, so no
// wakeup can be lost. A party parked in round N blocks round N+1 from
// completing (it has not yet arrived at N+1), so the sense word cannot
// advance past the value the parked party is waiting for.
package barrier

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SpinBudget is the default number of sense-word polls a waiting party
// performs before parking. The budget is deliberately generous: a simulated
// SM cycle costs on the order of a hundred nanoseconds, so peers arrive
// within a few thousand polls and the park path is cold on a host with a
// core per party.
const SpinBudget = 8192

// goschedEvery bounds how long a spinning party can starve the scheduler on
// an oversubscribed host: every goschedEvery polls it offers its thread to
// the runtime.
const goschedEvery = 64

// Barrier is a reusable sense-reversing phase barrier for a fixed set of
// parties. Each party keeps a private sense word (initially zero) and
// passes it to every Wait call; the barrier flips the shared sense once per
// round. The zero value is not usable; construct with New.
type Barrier struct {
	parties int32
	spin    int

	count atomic.Int32  // arrivals remaining this round (counts down)
	sense atomic.Uint32 // shared sense word, flips once per round

	mu     sync.Mutex
	cond   *sync.Cond
	parked int // parties asleep on cond, guarded by mu
}

// New returns a barrier for the given number of parties. spin is the
// per-wait poll budget before parking; zero parks immediately (the right
// choice when the host cannot run all parties at once). Use DefaultSpin to
// pick a budget from the host's parallelism.
func New(parties, spin int) *Barrier {
	if parties < 1 {
		panic("barrier: parties must be >= 1")
	}
	b := &Barrier{parties: int32(parties), spin: spin}
	b.count.Store(int32(parties))
	b.cond = sync.NewCond(&b.mu)
	return b
}

// DefaultSpin returns the spin budget for a barrier whose parties include
// the coordinator plus `workers` shard workers. When the host cannot run
// every party on its own core, spinning only steals cycles from the peers
// being waited on, so the budget collapses to zero (park immediately).
func DefaultSpin(workers int) int {
	if runtime.GOMAXPROCS(0) <= workers {
		return 0
	}
	return SpinBudget
}

// Parties returns the number of participants the barrier was built for.
func (b *Barrier) Parties() int { return int(b.parties) }

// Wait blocks until all parties have called Wait for the current round.
// sense points at the caller's private sense word; Wait flips it on return.
// Each party must use its own word and must not skip rounds (except that a
// party may exit the protocol entirely after returning from a Wait).
func (b *Barrier) Wait(sense *uint32) {
	s := *sense ^ 1
	if b.count.Add(-1) == 0 {
		// Last arriver: release the round. Reset the count before
		// flipping the sense so next-round arrivals (which first
		// observe the flip) always see a full count.
		b.count.Store(b.parties)
		b.sense.Store(s)
		b.mu.Lock()
		if b.parked > 0 {
			b.cond.Broadcast()
		}
		b.mu.Unlock()
		*sense = s
		return
	}
	for i := 0; i < b.spin; i++ {
		if b.sense.Load() == s {
			*sense = s
			return
		}
		if i%goschedEvery == goschedEvery-1 {
			runtime.Gosched()
		}
	}
	b.mu.Lock()
	for b.sense.Load() != s {
		b.parked++
		b.cond.Wait()
		b.parked--
	}
	b.mu.Unlock()
	*sense = s
}
