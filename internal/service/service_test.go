package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"equalizer/internal/exp"
	"equalizer/internal/kernels"
)

// newTestService builds a service on a tiny grid scale with a temp cache.
func newTestService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	if cfg.GridScale == 0 {
		cfg.GridScale = 0.05
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}

// TestRunMatchesDirectByteIdentical: the service's totals JSON for a run is
// byte-identical to a direct harness run of the same configuration, and a
// repeat request is served from the memo without simulating again.
func TestRunMatchesDirectByteIdentical(t *testing.T) {
	s, srv := newTestService(t, Config{CacheDir: t.TempDir()})

	resp := postJSON(t, srv.URL+"/v1/run", RunSpec{Kernel: "cutcp"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("missing X-Request-ID header")
	}
	var rr RunResponse
	decodeBody(t, resp, &rr)
	if rr.Source != string(exp.SourceSim) {
		t.Errorf("source = %q, want sim", rr.Source)
	}

	// Direct run on an independent harness at the same scale.
	direct := exp.New(exp.Options{GridScale: 0.05})
	k, err := kernels.ByName("cutcp")
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Run(k, exp.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(rr.Totals)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("service totals differ from direct run:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	// Warm repeat: no new simulation.
	resp2 := postJSON(t, srv.URL+"/v1/run", RunSpec{Kernel: "cutcp"})
	var rr2 RunResponse
	decodeBody(t, resp2, &rr2)
	if rr2.Source != string(exp.SourceMemo) {
		t.Errorf("warm source = %q, want memo", rr2.Source)
	}
	if st := s.Stats(); st.Simulated != 1 {
		t.Errorf("simulated = %d after warm repeat, want 1", st.Simulated)
	}
	got2, _ := json.Marshal(rr2.Totals)
	if !bytes.Equal(got2, wantJSON) {
		t.Error("warm repeat totals differ from cold run")
	}
}

// TestWarmCacheServiceDoesZeroSimulations: a fresh service instance sharing
// the first one's cache directory answers every request from disk.
func TestWarmCacheServiceDoesZeroSimulations(t *testing.T) {
	dir := t.TempDir()
	_, srv := newTestService(t, Config{CacheDir: dir})
	specs := []RunSpec{
		{Kernel: "cutcp"},
		{Kernel: "cutcp", Policy: "static", SM: "high", Mem: "low"},
	}
	for _, sp := range specs {
		resp := postJSON(t, srv.URL+"/v1/run", sp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cold run status = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}

	warm, warmSrv := newTestService(t, Config{CacheDir: dir})
	for _, sp := range specs {
		resp := postJSON(t, warmSrv.URL+"/v1/run", sp)
		var rr RunResponse
		decodeBody(t, resp, &rr)
		if rr.Source != string(exp.SourceCache) {
			t.Errorf("warm source = %q, want cache", rr.Source)
		}
	}
	if st := warm.Stats(); st.Simulated != 0 {
		t.Errorf("warm service simulated %d runs, want 0", st.Simulated)
	}
	if st := warm.Stats(); st.CacheHits != uint64(len(specs)) {
		t.Errorf("warm cache hits = %d, want %d", st.CacheHits, len(specs))
	}
}

// blockingService swaps the run function for one that parks until released.
func blockingService(t *testing.T, cfg Config) (*Service, *httptest.Server, chan struct{}) {
	t.Helper()
	s, srv := newTestService(t, cfg)
	release := make(chan struct{})
	s.run = func(ctx context.Context, k kernels.Kernel, setup exp.Setup) (exp.Totals, exp.RunSource, error) {
		select {
		case <-release:
			return exp.Totals{TimePS: 42}, exp.SourceSim, nil
		case <-ctx.Done():
			return exp.Totals{}, exp.SourceNone, ctx.Err()
		}
	}
	return s, srv, release
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionControlShedsWith429: with one worker and no queue slack, a
// second concurrent request is shed with 429 + Retry-After and the shed
// counter increments; capacity frees once the first request finishes.
func TestAdmissionControlShedsWith429(t *testing.T) {
	s, srv, release := blockingService(t, Config{Parallelism: 1, QueueDepth: -1})

	first := make(chan int, 1)
	go func() {
		resp := postJSON(t, srv.URL+"/v1/run", RunSpec{Kernel: "cutcp"})
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	waitFor(t, "first request admitted", func() bool { return s.queued.Load() == 1 })

	resp := postJSON(t, srv.URL+"/v1/run", RunSpec{Kernel: "lbm"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After")
	}
	var er ErrorResponse
	decodeBody(t, resp, &er)
	if er.Error == "" || er.RequestID == "" {
		t.Errorf("error body incomplete: %+v", er)
	}
	if got := s.shed.Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	// Shedding must not poison readiness.
	if !s.Ready() {
		t.Error("service not ready after shed")
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Errorf("first request status = %d, want 200", code)
	}
	// Capacity is back: a new request succeeds.
	resp = postJSON(t, srv.URL+"/v1/run", RunSpec{Kernel: "cutcp"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestOversizedSweepRejectedWith413: a sweep larger than the whole queue can
// never be admitted, so it is rejected with 413 (no Retry-After — retrying is
// pointless) rather than shed with 429, and the service keeps serving.
func TestOversizedSweepRejectedWith413(t *testing.T) {
	s, srv := newTestService(t, Config{Parallelism: 1, QueueDepth: -1})

	resp := postJSON(t, srv.URL+"/v1/sweep", SweepSpec{
		Kernels: []string{"cutcp"},
		Setups:  []RunSpec{{}, {Policy: "static", SM: "high"}},
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized sweep status = %d, want 413", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Errorf("413 carries Retry-After %q; the request can never succeed", ra)
	}
	var er ErrorResponse
	decodeBody(t, resp, &er)
	if !strings.Contains(er.Error, "split the sweep") {
		t.Errorf("413 body %q does not tell the client how to proceed", er.Error)
	}
	if got := s.shed.Value(); got != 0 {
		t.Errorf("shed counter = %d after capacity rejection, want 0 (not overload)", got)
	}

	// A sweep that fits still works.
	resp = postJSON(t, srv.URL+"/v1/sweep", SweepSpec{Kernels: []string{"cutcp"}, Setups: []RunSpec{{}}})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("fitting sweep status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestGracefulDrain: draining flips /readyz to 503, refuses new work with
// 503 + Retry-After, completes in-flight runs, and Drain returns once they
// finish.
func TestGracefulDrain(t *testing.T) {
	s, srv, release := blockingService(t, Config{Parallelism: 2})

	if resp, err := http.Get(srv.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain readyz = %v, %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	first := make(chan int, 1)
	go func() {
		resp := postJSON(t, srv.URL+"/v1/run", RunSpec{Kernel: "cutcp"})
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	waitFor(t, "in-flight request", func() bool { return s.queued.Load() == 1 })

	s.StartDrain()
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSON(t, srv.URL+"/v1/run", RunSpec{Kernel: "lbm"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining run status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining refusal missing Retry-After")
	}
	resp.Body.Close()

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned before in-flight work finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if code := <-first; code != http.StatusOK {
		t.Errorf("in-flight request completed with %d, want 200", code)
	}
}

// TestSweepCrossProduct: a sweep expands kernels×setups in submission order
// and runs cells concurrently through the worker pool.
func TestSweepCrossProduct(t *testing.T) {
	_, srv := newTestService(t, Config{Parallelism: 4})
	resp := postJSON(t, srv.URL+"/v1/sweep", SweepSpec{
		Kernels: []string{"cutcp"},
		Setups: []RunSpec{
			{},
			{Policy: "static", SM: "high"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d", resp.StatusCode)
	}
	var sr SweepResponse
	decodeBody(t, resp, &sr)
	if len(sr.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(sr.Results))
	}
	if sr.Results[0].Setup.Policy != "baseline" || sr.Results[1].Setup.SM != 2 {
		t.Errorf("unexpected cell order: %+v", sr.Results)
	}
	for _, r := range sr.Results {
		if r.Totals.TimePS <= 0 {
			t.Errorf("%s/%s: TimePS = %d, want > 0", r.Kernel, r.Setup.Policy, r.Totals.TimePS)
		}
	}
}

// TestRequestTracesAndChromeExport: completed requests land in the ring
// buffer with stages and request IDs; the chrome form is a valid trace doc.
// The traces are served off the debug handler, not the public one.
func TestRequestTracesAndChromeExport(t *testing.T) {
	s, srv := newTestService(t, Config{})
	dbg := httptest.NewServer(s.DebugHandler())
	t.Cleanup(dbg.Close)
	resp := postJSON(t, srv.URL+"/v1/run", RunSpec{Kernel: "cutcp"})
	resp.Body.Close()

	// The public handler must not expose the trace ring.
	if resp, err := http.Get(srv.URL + "/debug/requests"); err != nil {
		t.Fatal(err)
	} else {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("public /debug/requests = %d, want 404", resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(dbg.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var traces []RequestTrace
	decodeBody(t, resp, &traces)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.ID == "" || tr.Status != 200 || tr.Kernel != "cutcp" {
		t.Errorf("incomplete trace: %+v", tr)
	}
	stages := map[string]bool{}
	for _, st := range tr.Stages {
		stages[st.Stage] = true
	}
	for _, want := range []string{"queue", "run", "encode"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (have %v)", want, tr.Stages)
		}
	}

	resp, err = http.Get(dbg.URL + "/debug/requests?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	decodeBody(t, resp, &doc)
	if len(doc.TraceEvents) < 3 { // process meta + request span + stages
		t.Errorf("chrome export has %d events, want >= 3", len(doc.TraceEvents))
	}
}

// TestMetricsEndpoints: the live registry serves both formats with the key
// service and scheduler series present.
func TestMetricsEndpoints(t *testing.T) {
	s, srv := newTestService(t, Config{})
	resp := postJSON(t, srv.URL+"/v1/run", RunSpec{Kernel: "cutcp"})
	resp.Body.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"service_requests_total", "service_request_seconds", "service_stage_seconds",
		"service_queue_depth", "service_inflight_runs", "service_ready",
		"exp_runs_total", "exp_runs_simulated_total", "exp_stage_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	resp, err = http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var families []map[string]any
	decodeBody(t, resp, &families)
	if len(families) == 0 {
		t.Error("/metrics.json returned no families")
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %v, %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	// pprof lives on the debug handler only.
	dbg := httptest.NewServer(s.DebugHandler())
	t.Cleanup(dbg.Close)
	resp, err = http.Get(dbg.URL + "/debug/pprof/cmdline")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("debug /debug/pprof/cmdline = %v, %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("public /debug/pprof/cmdline = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestBadRequests: malformed specs are rejected with 400 and an error body.
func TestBadRequests(t *testing.T) {
	_, srv := newTestService(t, Config{})
	cases := []interface{}{
		RunSpec{Kernel: "no-such-kernel"},
		RunSpec{Kernel: "cutcp", Policy: "warp-teleport"},
		RunSpec{Kernel: "cutcp", SM: "ludicrous"},
	}
	for _, c := range cases {
		resp := postJSON(t, srv.URL+"/v1/run", c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status = %d, want 400", c, resp.StatusCode)
		}
		var er ErrorResponse
		decodeBody(t, resp, &er)
		if er.Error == "" {
			t.Errorf("%+v: empty error body", c)
		}
	}
	// Empty sweep.
	resp := postJSON(t, srv.URL+"/v1/sweep", SweepSpec{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty sweep status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestTraceRingWraps: the ring retains only the newest entries.
func TestTraceRingWraps(t *testing.T) {
	r := newTraceRing(4)
	for i := 0; i < 10; i++ {
		r.add(RequestTrace{ID: fmt.Sprintf("req-%d", i)})
	}
	got := r.snapshot()
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	if got[0].ID != "req-6" || got[3].ID != "req-9" {
		t.Errorf("ring order wrong: %v..%v", got[0].ID, got[3].ID)
	}
}

// TestMetricsServer: the -metrics-addr backend serves a live registry and a
// collect hook runs per scrape under the shared lock.
func TestMetricsServer(t *testing.T) {
	s, err := New(Config{GridScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	collected := 0
	ms, err := StartMetricsServer("127.0.0.1:0", s.Registry(), func() {
		mu.Lock()
		collected++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	resp, err := http.Get("http://" + ms.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "exp_runs_total") {
		t.Error("live /metrics missing exp_runs_total")
	}
	mu.Lock()
	if collected != 1 {
		t.Errorf("collect hook ran %d times, want 1", collected)
	}
	mu.Unlock()
}

// TestTunerGrowsUnderQueuePressure: with the controller on and the pool at
// its one-worker floor, a burst of blocked requests makes the tuner grow
// the pool and open admission; the resize reaches the live pool.
func TestTunerGrowsUnderQueuePressure(t *testing.T) {
	s, srv, release := blockingService(t, Config{
		QueueDepth: 8,
		Tune:       true, TuneInterval: 5 * time.Millisecond,
		TuneMinWorkers: 1, TuneMaxWorkers: 4,
	})
	if got := s.h.Parallelism(); got != 1 {
		t.Fatalf("tuned harness starts at parallelism %d, want the 1-worker floor", got)
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, srv.URL+"/v1/run", RunSpec{Kernel: "cutcp"})
			resp.Body.Close()
		}()
	}
	waitFor(t, "requests queued", func() bool { return s.queued.Load() == 4 })
	waitFor(t, "tuner grew the pool", func() bool { return s.h.Pool().Size() > 1 })
	if w, _ := s.Tuner().Settings(); w != s.h.Pool().Size() {
		t.Errorf("tuner settings %d != pool size %d", w, s.h.Pool().Size())
	}
	if s.Tuner().Epochs() == 0 {
		t.Error("tuner grew without counting epochs")
	}
	close(release)
	wg.Wait()

	// StartDrain stops the controller: epochs freeze.
	s.StartDrain()
	frozen := s.Tuner().Epochs()
	time.Sleep(50 * time.Millisecond)
	if got := s.Tuner().Epochs(); got != frozen {
		t.Errorf("tuner still ticking after drain: %d -> %d epochs", frozen, got)
	}
}

// TestTunedServiceByteIdentical: results served with the controller on are
// byte-identical to direct harness runs — the tuner changes scheduling,
// never computation.
func TestTunedServiceByteIdentical(t *testing.T) {
	_, srv := newTestService(t, Config{
		CacheDir: t.TempDir(),
		Tune:     true, TuneInterval: 2 * time.Millisecond,
		TuneMinWorkers: 1, TuneMaxWorkers: 4,
	})

	direct := exp.New(exp.Options{GridScale: 0.05})
	var wg sync.WaitGroup
	for _, name := range []string{"cutcp", "lbm"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			resp := postJSON(t, srv.URL+"/v1/run", RunSpec{Kernel: name})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d", name, resp.StatusCode)
				resp.Body.Close()
				return
			}
			var rr RunResponse
			decodeBody(t, resp, &rr)
			k, err := kernels.ByName(name)
			if err != nil {
				t.Error(err)
				return
			}
			want, err := direct.Run(k, exp.Baseline())
			if err != nil {
				t.Error(err)
				return
			}
			got, _ := json.Marshal(rr.Totals)
			wantJSON, _ := json.Marshal(want)
			if !bytes.Equal(got, wantJSON) {
				t.Errorf("%s: tuned totals differ from direct run:\n got %s\nwant %s", name, got, wantJSON)
			}
		}(name)
	}
	wg.Wait()
}

// TestDebugTunerEndpoint: /debug/tuner reports the decision ring on the
// debug listener only; the public surface 404s it, and an untuned service
// reports enabled=false.
func TestDebugTunerEndpoint(t *testing.T) {
	s, srv := newTestService(t, Config{
		Tune: true, TuneInterval: 2 * time.Millisecond,
		TuneMinWorkers: 1, TuneMaxWorkers: 2,
	})
	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()

	waitFor(t, "tuner epochs", func() bool { return s.Tuner().Epochs() > 0 })
	resp, err := http.Get(dbg.URL + "/debug/tuner")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Enabled   bool `json:"enabled"`
		Epochs    uint64
		Workers   int
		Decisions []json.RawMessage `json:"decisions"`
	}
	decodeBody(t, resp, &st)
	if !st.Enabled {
		t.Error("debug tuner reports enabled=false on a tuned service")
	}
	if len(st.Decisions) == 0 {
		t.Error("debug tuner decision ring is empty after epochs ticked")
	}

	// The public surface must not leak the controller's view of load.
	pub, err := http.Get(srv.URL + "/debug/tuner")
	if err != nil {
		t.Fatal(err)
	}
	pub.Body.Close()
	if pub.StatusCode != http.StatusNotFound {
		t.Errorf("public /debug/tuner status = %d, want 404", pub.StatusCode)
	}

	// An untuned service answers, with enabled=false and no ring.
	s2, _ := newTestService(t, Config{})
	dbg2 := httptest.NewServer(s2.DebugHandler())
	defer dbg2.Close()
	resp2, err := http.Get(dbg2.URL + "/debug/tuner")
	if err != nil {
		t.Fatal(err)
	}
	var st2 struct {
		Enabled   bool              `json:"enabled"`
		Decisions []json.RawMessage `json:"decisions"`
	}
	decodeBody(t, resp2, &st2)
	if st2.Enabled || len(st2.Decisions) != 0 {
		t.Errorf("untuned /debug/tuner = %+v, want enabled=false with empty ring", st2)
	}
}
