package service

import (
	"fmt"
	"strings"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/exp"
	"equalizer/internal/kernels"
)

// RunSpec is the wire form of one run cell: a kernel name plus the policy
// vocabulary of eqsim (baseline | static | blocks | dynCTA | ccws |
// equalizer-energy | equalizer-perf) and optional static VF levels / block
// pin. Zero values mean the baseline at nominal frequency.
type RunSpec struct {
	Kernel string `json:"kernel"`
	Policy string `json:"policy,omitempty"`
	SM     string `json:"sm,omitempty"`
	Mem    string `json:"mem,omitempty"`
	Blocks int    `json:"blocks,omitempty"`
}

// SweepSpec names a batch of run cells: the cross product of Kernels ×
// Setups (each setup's kernel field is ignored) plus any explicit Runs.
type SweepSpec struct {
	Kernels []string  `json:"kernels,omitempty"`
	Setups  []RunSpec `json:"setups,omitempty"`
	Runs    []RunSpec `json:"runs,omitempty"`
}

// RunResult is the wire form of one completed run cell. Totals is the exact
// exp.Totals the harness produced, so its JSON encoding is byte-identical
// to a direct eqsim -json run of the same configuration.
type RunResult struct {
	Kernel string     `json:"kernel"`
	Setup  exp.Setup  `json:"setup"`
	Source string     `json:"source"`
	Totals exp.Totals `json:"totals"`
}

// RunResponse answers POST /v1/run.
type RunResponse struct {
	RequestID string `json:"request_id"`
	RunResult
}

// SweepResponse answers POST /v1/sweep, cells in submission order.
type SweepResponse struct {
	RequestID string      `json:"request_id"`
	Results   []RunResult `json:"results"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	RequestID string `json:"request_id"`
	Error     string `json:"error"`
}

// KernelInfo is one row of GET /v1/kernels.
type KernelInfo struct {
	Name        string `json:"name"`
	App         string `json:"app"`
	Category    string `json:"category"`
	Invocations int    `json:"invocations"`
}

// cell is one resolved unit of work.
type cell struct {
	kernel kernels.Kernel
	setup  exp.Setup
}

// parseVFLevel maps the wire VF-level names; empty means nominal.
func parseVFLevel(s string) (config.VFLevel, error) {
	switch strings.ToLower(s) {
	case "", "normal":
		return config.VFNormal, nil
	case "low":
		return config.VFLow, nil
	case "high":
		return config.VFHigh, nil
	default:
		return 0, fmt.Errorf("unknown VF level %q (want low, normal or high)", s)
	}
}

// resolve maps a RunSpec onto the harness vocabulary, validating the kernel
// and policy names.
func (r RunSpec) resolve() (cell, error) {
	k, err := kernels.ByName(r.Kernel)
	if err != nil {
		return cell{}, err
	}
	sl, err := parseVFLevel(r.SM)
	if err != nil {
		return cell{}, err
	}
	ml, err := parseVFLevel(r.Mem)
	if err != nil {
		return cell{}, err
	}
	var setup exp.Setup
	switch strings.ToLower(r.Policy) {
	case "", "baseline":
		setup = exp.Setup{Policy: "baseline", SM: sl, Mem: ml}
	case "static", "blocks":
		if r.Blocks > 0 {
			setup = exp.Setup{Policy: "blocks", SM: sl, Mem: ml, Blocks: r.Blocks}
		} else {
			setup = exp.StaticVF(sl, ml)
		}
	case "dyncta":
		setup = exp.Setup{Policy: "dynCTA", SM: config.VFNormal, Mem: config.VFNormal}
	case "ccws":
		setup = exp.Setup{Policy: "ccws", SM: config.VFNormal, Mem: config.VFNormal}
	case "equalizer-energy":
		setup = exp.EqualizerSetup(core.EnergyMode)
	case "equalizer-perf", "equalizer-performance":
		setup = exp.EqualizerSetup(core.PerformanceMode)
	default:
		return cell{}, fmt.Errorf("unknown policy %q", r.Policy)
	}
	return cell{kernel: k, setup: setup}, nil
}

// cells expands a sweep into its resolved run cells, in submission order.
func (sw SweepSpec) cells() ([]cell, error) {
	var out []cell
	for _, kn := range sw.Kernels {
		if len(sw.Setups) == 0 {
			c, err := (RunSpec{Kernel: kn}).resolve()
			if err != nil {
				return nil, err
			}
			out = append(out, c)
			continue
		}
		for _, sp := range sw.Setups {
			sp.Kernel = kn
			c, err := sp.resolve()
			if err != nil {
				return nil, err
			}
			out = append(out, c)
		}
	}
	for _, sp := range sw.Runs {
		c, err := sp.resolve()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty sweep: need kernels, setups or runs")
	}
	return out, nil
}

// Kernels lists the available kernels in presentation order.
func Kernels() []KernelInfo {
	var out []KernelInfo
	for _, k := range kernels.All() {
		out = append(out, KernelInfo{
			Name: k.Name, App: k.App, Category: k.Category.String(), Invocations: k.Invocations,
		})
	}
	return out
}
