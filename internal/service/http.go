package service

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"equalizer/internal/exp"
	"equalizer/internal/service/tuner"
	"equalizer/internal/telemetry"
)

// Handler returns the service's public HTTP surface:
//
//	POST /v1/run         one kernel×policy×config run
//	POST /v1/sweep       a batch of runs (kernels×setups cross product)
//	GET  /v1/kernels     available kernels
//	GET  /metrics        telemetry registry, Prometheus text format
//	GET  /metrics.json   telemetry registry, JSON
//	GET  /healthz        process liveness
//	GET  /readyz         admission readiness (503 while draining)
//
// The diagnostic endpoints live on DebugHandler, not here.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.instrument("/v1/run", s.handleRun))
	mux.HandleFunc("/v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	mux.HandleFunc("/v1/kernels", s.instrument("/v1/kernels", s.handleKernels))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// DebugHandler returns the diagnostic surface, kept off the public Handler
// because request traces carry kernel/policy/error details and pprof lets a
// caller induce CPU-profiling load — bind it to a loopback-only listener
// (eqsimd's -debug-addr):
//
//	GET  /debug/requests request-trace ring buffer (?format=chrome)
//	GET  /debug/tuner    self-tuning controller decision ring
//	     /debug/pprof/*  net/http/pprof profiles
func (s *Service) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/requests", s.handleRequests)
	mux.HandleFunc("/debug/tuner", s.handleTuner)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// apiHandler is an instrumented API endpoint: it receives the request's
// active trace and returns (status, error) for uniform logging/tracing.
type apiHandler func(w http.ResponseWriter, r *http.Request, tr *activeTrace) (int, error)

// instrument wraps an API endpoint with request-ID minting, structured
// logging, latency accounting and ring-buffer tracing.
func (s *Service) instrument(path string, h apiHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = s.nextRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		tr := newActiveTrace(id, r.Method, path, start)
		status, err := h(w, r, tr)
		end := time.Now()
		s.reqHist.Observe(end.Sub(start).Seconds())
		s.reg.Counter("service_requests_total", "API requests by endpoint and status code",
			telemetry.Labels{"path": path, "code": strconv.Itoa(status)}).Inc()
		done := tr.finish(status, err, end)
		s.traces.add(done)
		attrs := []slog.Attr{
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", path),
			slog.Int("status", status),
			slog.Duration("dur", end.Sub(start)),
		}
		if done.Kernel != "" {
			attrs = append(attrs, slog.String("kernel", done.Kernel), slog.String("policy", done.Policy))
		}
		if done.Source != "" {
			attrs = append(attrs, slog.String("source", done.Source))
		}
		if done.Cells > 0 {
			attrs = append(attrs, slog.Int("cells", done.Cells))
		}
		level := slog.LevelInfo
		if err != nil {
			attrs = append(attrs, slog.String("error", err.Error()))
			if status >= 500 {
				level = slog.LevelError
			} else {
				level = slog.LevelWarn
			}
		}
		s.log.LogAttrs(r.Context(), level, "request", attrs...)
	}
}

// writeJSON encodes v, timing the encode stage.
func (s *Service) writeJSON(w http.ResponseWriter, tr *activeTrace, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	e0 := time.Now()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The response is already committed; the write error is recorded
		// on the trace (typically a client disconnect).
		tr.set(func(t *RequestTrace) { t.Err = err.Error() })
	}
	d := time.Since(e0)
	s.stageEncode.Observe(d.Seconds())
	tr.addStage("encode", tr.since(e0), d)
}

// writeError sends the uniform error body.
func (s *Service) writeError(w http.ResponseWriter, tr *activeTrace, status int, err error) (int, error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(int(s.retryAfter().Seconds())))
	}
	s.writeJSON(w, tr, status, ErrorResponse{RequestID: tr.t.ID, Error: err.Error()})
	return status, err
}

// admitRequest runs the shared admission path for n cells: capacity check
// (413 — a request larger than the whole queue can never be admitted, so
// retrying is pointless), drain refusal (503), then queue-bound shedding
// (429). ok=false means the response has been written.
func (s *Service) admitRequest(w http.ResponseWriter, tr *activeTrace, n int) (int, error, bool) {
	if cap := s.admitCap.Load(); int64(n) > cap {
		st, err := s.writeError(w, tr, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request needs %d run cells but the service admits at most %d: split the sweep or raise -queue-depth", n, cap))
		return st, err, false
	}
	if !s.beginWork() {
		st, err := s.writeError(w, tr, http.StatusServiceUnavailable, fmt.Errorf("service is draining"))
		return st, err, false
	}
	if !s.admit(n) {
		s.wg.Done()
		s.shed.Inc()
		st, err := s.writeError(w, tr, http.StatusTooManyRequests,
			fmt.Errorf("queue full (%d cells admitted, %d requested)", s.queued.Load(), n))
		return st, err, false
	}
	return 0, nil, true
}

func (s *Service) handleRun(w http.ResponseWriter, r *http.Request, tr *activeTrace) (int, error) {
	if r.Method != http.MethodPost {
		return s.writeError(w, tr, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
	}
	var spec RunSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		return s.writeError(w, tr, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
	}
	c, err := spec.resolve()
	if err != nil {
		return s.writeError(w, tr, http.StatusBadRequest, err)
	}
	tr.set(func(t *RequestTrace) {
		t.Kernel = c.kernel.Name
		t.Policy = c.setup.Policy
		t.Cells = 1
	})
	if st, err, ok := s.admitRequest(w, tr, 1); !ok {
		return st, err
	}
	defer s.wg.Done()
	tot, src, err := s.runCell(r.Context(), tr, c.kernel, c.setup)
	if err != nil {
		if r.Context().Err() != nil {
			// Client went away: nothing to write, log 499 (nginx's
			// client-closed-request convention).
			return 499, err
		}
		return s.writeError(w, tr, http.StatusInternalServerError, err)
	}
	tr.set(func(t *RequestTrace) { t.Source = string(src) })
	s.writeJSON(w, tr, http.StatusOK, RunResponse{
		RequestID: tr.t.ID,
		RunResult: RunResult{Kernel: c.kernel.Name, Setup: c.setup, Source: string(src), Totals: tot},
	})
	return http.StatusOK, nil
}

func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request, tr *activeTrace) (int, error) {
	if r.Method != http.MethodPost {
		return s.writeError(w, tr, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
	}
	var spec SweepSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		return s.writeError(w, tr, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
	}
	cs, err := spec.cells()
	if err != nil {
		return s.writeError(w, tr, http.StatusBadRequest, err)
	}
	tr.set(func(t *RequestTrace) {
		t.Kernel = cs[0].kernel.Name
		t.Policy = cs[0].setup.Policy
		t.Cells = len(cs)
	})
	if st, err, ok := s.admitRequest(w, tr, len(cs)); !ok {
		return st, err
	}
	defer s.wg.Done()

	results := make([]RunResult, len(cs))
	errs := make([]error, len(cs))
	var wg sync.WaitGroup
	for i, c := range cs {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			tot, src, err := s.runCell(r.Context(), tr, c.kernel, c.setup)
			if err != nil {
				errs[i] = fmt.Errorf("%s/%s: %w", c.kernel.Name, c.setup.Policy, err)
				return
			}
			results[i] = RunResult{Kernel: c.kernel.Name, Setup: c.setup, Source: string(src), Totals: tot}
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			if r.Context().Err() != nil {
				return 499, err
			}
			return s.writeError(w, tr, http.StatusInternalServerError, err)
		}
	}
	s.writeJSON(w, tr, http.StatusOK, SweepResponse{RequestID: tr.t.ID, Results: results})
	return http.StatusOK, nil
}

func (s *Service) handleKernels(w http.ResponseWriter, r *http.Request, tr *activeTrace) (int, error) {
	if r.Method != http.MethodGet {
		return s.writeError(w, tr, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
	}
	s.writeJSON(w, tr, http.StatusOK, Kernels())
	return http.StatusOK, nil
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.log.Warn("metrics write failed", slog.String("error", err.Error()))
	}
}

func (s *Service) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.reg.WriteJSON(w); err != nil {
		s.log.Warn("metrics write failed", slog.String("error", err.Error()))
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		w.Header().Set("Retry-After", strconv.Itoa(int(s.retryAfter().Seconds())))
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// handleRequests dumps the request-trace ring, oldest first. ?format=chrome
// renders the traces as a Chrome trace-event document (Perfetto-loadable);
// the default JSON dump can be converted offline with eqtrace -requests.
func (s *Service) handleRequests(w http.ResponseWriter, r *http.Request) {
	traces := s.traces.snapshot()
	switch r.URL.Query().Get("format") {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(traces); err != nil {
			s.log.Warn("trace dump failed", slog.String("error", err.Error()))
		}
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		spans, opts := TracesToChromeSpans(traces)
		if err := telemetry.WriteChromeSpans(w, spans, opts); err != nil {
			s.log.Warn("trace dump failed", slog.String("error", err.Error()))
		}
	default:
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintln(w, `unknown format (want json or chrome)`)
	}
}

// tunerStatus is the /debug/tuner response shape.
type tunerStatus struct {
	Enabled bool `json:"enabled"`
	// Epochs, Workers and AdmissionLimit summarise the controller's
	// current state; Decisions is the retained ring, oldest first.
	Epochs         uint64           `json:"epochs,omitempty"`
	Workers        int              `json:"workers,omitempty"`
	AdmissionLimit int              `json:"admission_limit,omitempty"`
	IntervalMS     float64          `json:"interval_ms,omitempty"`
	MinWorkers     int              `json:"min_workers,omitempty"`
	MaxWorkers     int              `json:"max_workers,omitempty"`
	Decisions      []tuner.Decision `json:"decisions,omitempty"`
}

// handleTuner dumps the self-tuning controller's configuration and decision
// ring. Debug-only: decisions expose load patterns, so the endpoint lives
// on the loopback listener with the rest of the diagnostic surface.
func (s *Service) handleTuner(w http.ResponseWriter, r *http.Request) {
	st := tunerStatus{Enabled: s.tuner != nil}
	if s.tuner != nil {
		cfg := s.tuner.Config()
		st.Epochs = s.tuner.Epochs()
		st.Workers, st.AdmissionLimit = s.tuner.Settings()
		st.IntervalMS = float64(cfg.Interval.Milliseconds())
		st.MinWorkers, st.MaxWorkers = cfg.MinWorkers, cfg.MaxWorkers
		st.Decisions = s.tuner.Decisions()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(st); err != nil {
		s.log.Warn("tuner dump failed", slog.String("error", err.Error()))
	}
}

// DirectTotals runs one cell directly on the service's harness, bypassing
// HTTP — the load harness uses it to verify byte-identical results.
func (s *Service) DirectTotals(spec RunSpec) (exp.Totals, error) {
	c, err := spec.resolve()
	if err != nil {
		return exp.Totals{}, err
	}
	return s.h.Run(c.kernel, c.setup)
}
