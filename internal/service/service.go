// Package service wraps the experiment harness in a long-running simulation
// server: an HTTP/JSON API to submit kernel×policy×config runs and sweeps,
// backed by the singleflight scheduler of internal/exp and the persistent
// content-addressed result store of internal/exp/runcache, so popular
// configurations simulate once and serve forever.
//
// The package is built around operability: admission control with a bounded
// queue (429 + Retry-After on overload), graceful drain, the telemetry
// registry served live at /metrics and /metrics.json, per-stage latency
// histograms (queue wait, dedup, cache lookup, simulation, encode), request
// IDs propagated through structured logs and a ring-buffer request-trace
// endpoint (/debug/requests, Chrome-trace exportable), and /healthz +
// /readyz + net/http/pprof.
package service

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"equalizer/internal/exp"
	"equalizer/internal/exp/runcache"
	"equalizer/internal/kernels"
	"equalizer/internal/service/tuner"
	"equalizer/internal/telemetry"
)

// Config parameterises a Service.
type Config struct {
	// GridScale multiplies every kernel's grid size (0 means 1.0); the
	// load harness and CI smoke runs use small scales.
	GridScale float64
	// Parallelism is the simulation worker-pool width (0 = GOMAXPROCS).
	Parallelism int
	// SMShards is the intra-run SM worker count per machine (0 = auto:
	// derived from the host so the shard workers never oversubscribe the
	// Parallelism pool; a saturated pool means sequential machines).
	SMShards int
	// QueueDepth bounds how many run cells may wait for a worker beyond
	// the ones in flight; an arriving request that would exceed it is shed
	// with 429. 0 means 64; negative means no queueing (admit only up to
	// the worker count).
	QueueDepth int
	// CacheDir roots the persistent result cache; empty disables disk
	// caching (the in-process memo still applies).
	CacheDir string
	// TraceCapacity sizes the request-trace ring buffer (0 = 256).
	TraceCapacity int
	// RetryAfter is the hint returned with 429/503 responses (0 = 1s).
	RetryAfter time.Duration
	// Logger receives structured request logs; nil discards them.
	Logger *slog.Logger
	// Registry receives every service and harness metric; nil uses a
	// private registry (still served at /metrics).
	Registry *telemetry.Registry

	// Tune enables the self-tuning controller: an epoch-based feedback
	// loop that resizes the run worker pool within [TuneMinWorkers,
	// TuneMaxWorkers] and adjusts the admission limit from the live queue
	// depth, occupancy, shed count and request-latency histogram. When
	// set, Parallelism is ignored — the pool starts at TuneMinWorkers and
	// the controller climbs from there — and intra-run SM sharding
	// defaults to 1 (instead of host-derived) so a grown pool never
	// oversubscribes the cores. The controller only changes scheduling,
	// never simulation parameters: results stay byte-identical.
	Tune bool
	// TuneInterval is the control epoch length (0 = 250ms).
	TuneInterval time.Duration
	// TuneMinWorkers and TuneMaxWorkers bound the pool width
	// (0 = 1 and 4×min).
	TuneMinWorkers, TuneMaxWorkers int
	// TuneRingCap sizes the /debug/tuner decision ring (0 = 256).
	TuneRingCap int
}

// runFunc executes one run cell; swapped out by lifecycle tests.
type runFunc func(ctx context.Context, k kernels.Kernel, s exp.Setup) (exp.Totals, exp.RunSource, error)

// Service is the long-running simulation server core. Create with New,
// expose with Handler, stop with Drain.
type Service struct {
	cfg   Config
	h     *exp.Harness
	reg   *telemetry.Registry
	log   *slog.Logger
	start time.Time

	// Admission control: queued counts every admitted-but-unfinished run
	// cell (waiting + in flight) against admitCap; the harness's worker
	// pool bounds the cells actually simulating. admitCap is atomic
	// because the tuner raises it at runtime.
	admitCap atomic.Int64
	queued   atomic.Int64
	inflight atomic.Int64

	// tuner is the optional self-tuning controller (nil unless
	// Config.Tune); stopped by StartDrain.
	tuner *tuner.Controller

	// Drain coordination: workMu serialises the draining flip against
	// beginWork, wg tracks admitted request work.
	workMu   sync.Mutex
	draining atomic.Bool
	wg       sync.WaitGroup

	traces *traceRing
	reqSeq atomic.Uint64
	idBase string

	run runFunc

	// Metrics.
	shed        *telemetry.Counter
	cellsTotal  *telemetry.Counter
	queueGauge  *telemetry.Gauge
	inflightG   *telemetry.Gauge
	readyGauge  *telemetry.Gauge
	hitRatio    *telemetry.Gauge
	reqHist     *telemetry.Histogram
	stageQueue  *telemetry.Histogram
	stageEncode *telemetry.Histogram
}

// latencyBounds are the serving-path histogram buckets, in seconds.
var latencyBounds = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30}

// New builds a Service. The caller owns serving its Handler.
func New(cfg Config) (*Service, error) {
	s := &Service{cfg: cfg, start: time.Now()}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.reg = cfg.Registry
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	var cache *runcache.Cache
	if cfg.CacheDir != "" {
		var err error
		if cache, err = runcache.Open(cfg.CacheDir); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	par := cfg.Parallelism
	shards := cfg.SMShards
	tcfg := tuner.Config{
		Interval:   cfg.TuneInterval,
		MinWorkers: cfg.TuneMinWorkers,
		MaxWorkers: cfg.TuneMaxWorkers,
		RingCap:    cfg.TuneRingCap,
	}.WithDefaults()
	if cfg.Tune {
		// The pool starts at the controller's floor and the controller
		// climbs from there. Intra-run sharding defaults to sequential so
		// the pool at its ceiling never oversubscribes the host.
		par = tcfg.MinWorkers
		if shards == 0 {
			shards = 1
		}
	}
	s.h = exp.New(exp.Options{
		GridScale:   cfg.GridScale,
		Parallelism: par,
		SMShards:    shards,
		Cache:       cache,
		Registry:    s.reg,
		Now:         func() int64 { return int64(time.Since(s.start)) },
		Logf: func(format string, args ...interface{}) {
			s.log.Info(fmt.Sprintf(format, args...))
		},
	})
	depth := cfg.QueueDepth
	switch {
	case depth == 0:
		depth = 64
	case depth < 0:
		depth = 0
	}
	s.admitCap.Store(int64(s.h.Parallelism() + depth))
	s.traces = newTraceRing(cfg.TraceCapacity)
	s.idBase = fmt.Sprintf("%x", s.start.UnixNano())
	s.run = func(ctx context.Context, k kernels.Kernel, setup exp.Setup) (exp.Totals, exp.RunSource, error) {
		return s.h.RunCtx(ctx, k, setup)
	}

	s.shed = s.reg.Counter("service_shed_total", "requests rejected by admission control (429)", nil)
	s.cellsTotal = s.reg.Counter("service_cells_total", "run cells admitted for execution", nil)
	s.queueGauge = s.reg.Gauge("service_queue_depth", "admitted run cells waiting for a worker", nil)
	s.inflightG = s.reg.Gauge("service_inflight_runs", "run cells currently executing", nil)
	s.readyGauge = s.reg.Gauge("service_ready", "1 while accepting work, 0 while draining", nil)
	s.hitRatio = s.reg.Gauge("service_cache_hit_ratio", "cache+memo hits over total runs since start", nil)
	s.reqHist = s.reg.Histogram("service_request_seconds", "end-to-end request latency", latencyBounds, nil)
	s.stageQueue = s.reg.Histogram("service_stage_seconds", "per-stage request latency",
		latencyBounds, telemetry.Labels{"stage": "queue"})
	s.stageEncode = s.reg.Histogram("service_stage_seconds", "per-stage request latency",
		latencyBounds, telemetry.Labels{"stage": "encode"})
	s.readyGauge.Set(1)
	if cfg.Tune {
		// The admission floor is what the operator configured: the
		// controller may open admission beyond it under load but never
		// tighten below it.
		tcfg.MinAdmit = tcfg.MinWorkers + depth
		tcfg.MaxAdmit = tcfg.MaxWorkers + 16*depth
		tcfg.Registry = s.reg
		s.tuner = tuner.New(tcfg, tuneTarget{s})
		s.tuner.Start()
		s.log.Info("tuner started",
			"interval", tcfg.Interval,
			"min_workers", tcfg.MinWorkers, "max_workers", tcfg.MaxWorkers)
	}
	return s, nil
}

// tuneTarget adapts the Service to the controller's Target interface.
type tuneTarget struct{ s *Service }

// Sample snapshots the serving tier's control inputs.
func (t tuneTarget) Sample() tuner.Sample {
	s := t.s
	st := s.h.Pool().Stats()
	waiting := int(s.queued.Load()) - int(s.inflight.Load())
	if waiting < 0 {
		waiting = 0
	}
	return tuner.Sample{
		QueueDepth: waiting,
		Busy:       st.Busy,
		Workers:    st.Size,
		AdmitCap:   int(s.admitCap.Load()),
		Shed:       s.shed.Value(),
		Latency:    s.reqHist.Snapshot(),
	}
}

// Apply resizes the run worker pool and the admission limit. The pool
// resize never interrupts an in-flight run: workers retire at task
// boundaries only.
func (t tuneTarget) Apply(workers, admitCap int) {
	t.s.h.Pool().Resize(workers)
	t.s.admitCap.Store(int64(admitCap))
	t.s.log.Info("tuner applied", "workers", workers, "admission_limit", admitCap)
}

// Tuner returns the self-tuning controller, nil unless Config.Tune.
func (s *Service) Tuner() *tuner.Controller { return s.tuner }

// Harness exposes the underlying experiment harness (load-harness and test
// plumbing: direct runs for byte-identical comparisons, scheduler stats).
func (s *Service) Harness() *exp.Harness { return s.h }

// Registry returns the registry served at /metrics.
func (s *Service) Registry() *telemetry.Registry { return s.reg }

// Stats snapshots the harness scheduler counters.
func (s *Service) Stats() exp.SchedulerStats { return s.h.SchedulerStats() }

// Ready reports whether the service accepts new work.
func (s *Service) Ready() bool { return !s.draining.Load() }

// retryAfter returns the configured overload hint.
func (s *Service) retryAfter() time.Duration {
	if s.cfg.RetryAfter > 0 {
		return s.cfg.RetryAfter
	}
	return time.Second
}

// nextRequestID mints a process-unique request ID.
func (s *Service) nextRequestID() string {
	return fmt.Sprintf("req-%s-%06d", s.idBase, s.reqSeq.Add(1))
}

// admit reserves n run cells against the bounded queue; false means the
// request must be shed.
func (s *Service) admit(n int) bool {
	for {
		q := s.queued.Load()
		if q+int64(n) > s.admitCap.Load() {
			return false
		}
		if s.queued.CompareAndSwap(q, q+int64(n)) {
			s.cellsTotal.Add(uint64(n))
			s.updateGauges()
			return true
		}
	}
}

// releaseCell returns one admitted cell's reservation.
func (s *Service) releaseCell() {
	s.queued.Add(-1)
	s.updateGauges()
}

func (s *Service) updateGauges() {
	in := s.inflight.Load()
	waiting := s.queued.Load() - in
	if waiting < 0 {
		waiting = 0
	}
	s.queueGauge.Set(float64(waiting))
	s.inflightG.Set(float64(in))
}

// updateHitRatio refreshes the cache-hit gauge from the scheduler counters:
// every run answered without simulating (memo or disk) counts as a hit.
func (s *Service) updateHitRatio() {
	st := s.h.SchedulerStats()
	if st.Runs == 0 {
		return
	}
	s.hitRatio.Set(float64(st.MemoHits+st.CacheHits) / float64(st.Runs))
}

// beginWork registers one request's work against the drain waitgroup; false
// means the service is draining and the request must be refused.
func (s *Service) beginWork() bool {
	s.workMu.Lock()
	defer s.workMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.wg.Add(1)
	return true
}

// StartDrain flips the service into draining mode: /readyz reports 503 and
// new run submissions are refused, while admitted work keeps running. The
// self-tuning controller, if any, stops first — settings freeze at their
// last applied values for the drain.
func (s *Service) StartDrain() {
	if s.tuner != nil {
		s.tuner.Stop()
	}
	s.workMu.Lock()
	s.draining.Store(true)
	s.workMu.Unlock()
	s.readyGauge.Set(0)
	s.log.Info("drain started")
}

// Drain flips into draining mode and blocks until every admitted request
// completes or ctx expires.
func (s *Service) Drain(ctx context.Context) error {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.log.Info("drain complete")
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain aborted with %d cells outstanding: %w",
			s.queued.Load(), ctx.Err())
	}
}

// runCell executes one admitted run cell: wait for a pool worker (the queue
// stage), then run through the harness, which itself accounts the dedup,
// cache-lookup and simulate stages. The cell's admission reservation is
// released on return.
func (s *Service) runCell(ctx context.Context, tr *activeTrace, k kernels.Kernel, setup exp.Setup) (exp.Totals, exp.RunSource, error) {
	defer s.releaseCell()
	q0 := time.Now()
	var tot exp.Totals
	var src exp.RunSource
	var err error
	poolErr := s.h.Pool().Do(ctx, func() {
		qd := time.Since(q0)
		s.stageQueue.Observe(qd.Seconds())
		tr.addStage("queue", tr.since(q0), qd)
		s.inflight.Add(1)
		s.updateGauges()
		defer func() {
			s.inflight.Add(-1)
			s.updateGauges()
		}()
		r0 := time.Now()
		tot, src, err = s.run(ctx, k, setup)
		tr.addStage("run", tr.since(r0), time.Since(r0))
	})
	if poolErr != nil {
		qd := time.Since(q0)
		s.stageQueue.Observe(qd.Seconds())
		tr.addStage("queue", tr.since(q0), qd)
		return exp.Totals{}, exp.SourceNone, fmt.Errorf("service: canceled while queued: %w", poolErr)
	}
	s.updateHitRatio()
	return tot, src, err
}
