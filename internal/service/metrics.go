package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"equalizer/internal/telemetry"
)

// MetricsServer serves a telemetry registry live over HTTP while a CLI run
// is in progress — the shared backend of the -metrics-addr flag on eqsim and
// eqbench (the full service has its own richer surface). Endpoints:
// /metrics (Prometheus text), /metrics.json, /healthz.
type MetricsServer struct {
	srv *http.Server
	lis net.Listener

	// mu serialises scrapes against the collect hook so a collector that
	// snapshots non-atomic simulator state (eqsim's live machine) can
	// share the same lock with the simulation loop.
	mu      sync.Mutex
	reg     *telemetry.Registry
	collect func()
}

// StartMetricsServer listens on addr and serves reg until Close. collect, if
// non-nil, runs under the server's lock before every scrape — use it to
// snapshot counters that are not already live in the registry, and share the
// lock via Lock/Unlock when the snapshot races a running simulation.
func StartMetricsServer(addr string, reg *telemetry.Registry, collect func()) (*MetricsServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics server: %w", err)
	}
	m := &MetricsServer{lis: lis, reg: reg, collect: collect}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.collect != nil {
			m.collect()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.reg.WritePrometheus(w) //nolint:errcheck // best-effort scrape; client disconnects are not actionable
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.collect != nil {
			m.collect()
		}
		w.Header().Set("Content-Type", "application/json")
		m.reg.WriteJSON(w) //nolint:errcheck // best-effort scrape
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"}) //nolint:errcheck // best-effort
	})
	m.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go m.srv.Serve(lis) //nolint:errcheck // Serve always returns ErrServerClosed after Close
	return m, nil
}

// Addr returns the bound address (useful with ":0").
func (m *MetricsServer) Addr() string { return m.lis.Addr().String() }

// Lock takes the scrape lock; a CLI whose collect hook reads non-atomic
// simulator state holds this around each simulation step.
func (m *MetricsServer) Lock() { m.mu.Lock() }

// Unlock releases the scrape lock.
func (m *MetricsServer) Unlock() { m.mu.Unlock() }

// Close stops serving, waiting briefly for in-flight scrapes.
func (m *MetricsServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := m.srv.Shutdown(ctx); err != nil {
		return m.srv.Close()
	}
	return nil
}
