package tuner

import (
	"strings"
	"testing"
	"time"

	"equalizer/internal/telemetry"
)

// fixedNow keeps decision timestamps deterministic.
func fixedNow() time.Time { return time.Unix(1700000000, 0) }

// TestRampGrowsToDemandAndSettles: a constant load needing six workers makes
// the controller climb monotonically off its floor and then hold a fixed
// width — settle, not oscillate.
func TestRampGrowsToDemandAndSettles(t *testing.T) {
	sim := NewLoadSim(4, 0.005) // 4 requests per worker per epoch
	c := New(Config{MinWorkers: 1, MaxWorkers: 8, Now: fixedNow}, sim)
	const load = 24 // needs 6 workers
	for i := 0; i < 40; i++ {
		sim.Step(load)
		c.Tick()
	}
	workers, _ := c.Settings()
	if workers < 6 {
		t.Fatalf("settled at %d workers; load needs 6", workers)
	}
	decs := c.Decisions()
	if len(decs) != 40 {
		t.Fatalf("decision ring has %d entries, want 40", len(decs))
	}
	prev := 0
	for _, d := range decs {
		if d.NewWorkers < prev {
			t.Fatalf("epoch %d shrank %d -> %d under sustained load", d.Epoch, prev, d.NewWorkers)
		}
		prev = d.NewWorkers
	}
	last := decs[len(decs)-10:]
	for _, d := range last {
		if d.NewWorkers != workers {
			t.Fatalf("epoch %d width %d differs from settled %d: controller oscillates", d.Epoch, d.NewWorkers, workers)
		}
		if d.Shed != 0 {
			t.Fatalf("epoch %d still shedding %d requests after settling", d.Epoch, d.Shed)
		}
	}
	if sim.Backlog() != 0 {
		t.Fatalf("backlog %d after settling, want 0", sim.Backlog())
	}
}

// TestSpikeThenRecovery: after a spike ends, sustained idle epochs shrink
// the pool back toward the floor, with hysteresis and backoff keeping the
// modelled tail latency from degrading.
func TestSpikeThenRecovery(t *testing.T) {
	sim := NewLoadSim(4, 0.005)
	c := New(Config{MinWorkers: 1, MaxWorkers: 8, ShrinkStreak: 2, Cooldown: 1, Now: fixedNow}, sim)
	for i := 0; i < 20; i++ {
		sim.Step(24)
		c.Tick()
	}
	peak, _ := c.Settings()
	if peak < 6 {
		t.Fatalf("spike grew pool to %d, want >= 6", peak)
	}
	shedAtPeak := sim.TotalShed()
	for i := 0; i < 100; i++ {
		sim.Step(2) // trickle: half a worker's capacity
		c.Tick()
	}
	workers, _ := c.Settings()
	if workers > 2 {
		t.Fatalf("pool still at %d workers after 100 trickle epochs, want <= 2", workers)
	}
	if got := sim.TotalShed(); got != shedAtPeak {
		t.Fatalf("shed %d requests during recovery", got-shedAtPeak)
	}
	var sawShrink bool
	for _, d := range c.Decisions() {
		if d.Verdict == VerdictShrink {
			sawShrink = true
		}
	}
	if !sawShrink {
		t.Fatal("no shrink verdict recorded during recovery")
	}
}

// TestIdleHoldsAtFloor: with no load at all the controller never moves.
func TestIdleHoldsAtFloor(t *testing.T) {
	sim := NewLoadSim(4, 0.005)
	c := New(Config{MinWorkers: 2, MaxWorkers: 8, Now: fixedNow}, sim)
	if got := sim.Applies(); got != 1 {
		t.Fatalf("applies after New = %d, want 1 (initial bounds)", got)
	}
	for i := 0; i < 20; i++ {
		sim.Step(0)
		c.Tick()
	}
	workers, admit := c.Settings()
	if workers != 2 {
		t.Fatalf("idle pool moved to %d workers, want floor 2", workers)
	}
	if admit != c.Config().MinAdmit {
		t.Fatalf("idle admission moved to %d, want floor %d", admit, c.Config().MinAdmit)
	}
	if got := sim.Applies(); got != 1 {
		t.Fatalf("controller applied %d changes on an idle target", got-1)
	}
	for _, d := range c.Decisions() {
		if d.Verdict != VerdictWarmup && d.Verdict != VerdictHold {
			t.Fatalf("epoch %d verdict %q on an idle target", d.Epoch, d.Verdict)
		}
	}
}

// scriptTarget feeds hand-built samples and records what the controller
// applies, for exercising exact decision sequences.
type scriptTarget struct {
	s       Sample
	hist    *telemetry.Histogram
	applied [][2]int
}

func newScriptTarget() *scriptTarget {
	reg := telemetry.NewRegistry()
	return &scriptTarget{
		hist: reg.Histogram("script_seconds", "scripted latency",
			[]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25}, nil),
	}
}

func (st *scriptTarget) Sample() Sample {
	s := st.s
	s.Latency = st.hist.Snapshot()
	return s
}

func (st *scriptTarget) Apply(w, a int) {
	st.applied = append(st.applied, [2]int{w, a})
	st.s.Workers = w
	st.s.AdmitCap = a
}

func (st *scriptTarget) observe(v float64, n int) {
	for i := 0; i < n; i++ {
		st.hist.Observe(v)
	}
}

// TestBackoffRevertsBadShrink walks the exact scripted sequence: grow twice
// under saturation, shrink after idle hysteresis, then show degraded tail
// latency — the controller reverts the shrink and demands a longer idle
// streak before trying again.
func TestBackoffRevertsBadShrink(t *testing.T) {
	st := newScriptTarget()
	c := New(Config{
		MinWorkers: 1, MaxWorkers: 8,
		GrowStreak: 1, ShrinkStreak: 2, Cooldown: 1,
		BackoffFrac: 0.25, Now: fixedNow,
	}, st)

	tick := func(wantVerdict Verdict) Decision {
		t.Helper()
		d := c.Tick()
		if d.Verdict != wantVerdict {
			t.Fatalf("epoch %d verdict %q (%s), want %q", d.Epoch, d.Verdict, d.Reason, wantVerdict)
		}
		return d
	}

	tick(VerdictWarmup)

	// Saturation: all workers busy with cells queued. Grow 1 -> 2.
	st.s.QueueDepth, st.s.Busy = 3, 1
	st.observe(0.01, 10)
	d := tick(VerdictGrow)
	if d.NewWorkers != 2 {
		t.Fatalf("grow to %d workers, want 2", d.NewWorkers)
	}
	tick(VerdictCooldown)

	// Still saturated. Grow 2 -> 3.
	st.s.Busy = 2
	st.observe(0.01, 10)
	d = tick(VerdictGrow)
	if d.NewWorkers != 3 {
		t.Fatalf("grow to %d workers, want 3", d.NewWorkers)
	}
	tick(VerdictCooldown)

	// Idle at low latency; shrink after the 2-epoch streak. The p95 at the
	// shrink epoch (~10ms) becomes the backoff reference.
	st.s.QueueDepth, st.s.Busy = 0, 1
	st.observe(0.01, 10)
	tick(VerdictHold)
	st.observe(0.01, 10)
	d = tick(VerdictShrink)
	if d.NewWorkers != 2 {
		t.Fatalf("shrink to %d workers, want 2", d.NewWorkers)
	}
	tick(VerdictCooldown)

	// Steady but with 10x worse latency: the shrink was a mistake.
	st.s.Busy = 2
	st.observe(0.1, 10)
	d = tick(VerdictBackoff)
	if d.NewWorkers != 3 {
		t.Fatalf("backoff to %d workers, want 3", d.NewWorkers)
	}
	tick(VerdictCooldown)

	// Idle again at low latency: the post-backoff debt demands a 3-epoch
	// streak (2 + 1) before the next shrink.
	st.s.Busy = 1
	for i := 0; i < 2; i++ {
		st.observe(0.01, 10)
		tick(VerdictHold)
	}
	st.observe(0.01, 10)
	d = tick(VerdictShrink)
	if d.NewWorkers != 2 {
		t.Fatalf("post-debt shrink to %d workers, want 2", d.NewWorkers)
	}

	// init floor, grow, grow, shrink, backoff, post-debt shrink.
	if len(st.applied) != 6 {
		t.Fatalf("controller applied %d changes, want 6", len(st.applied))
	}
}

// TestShedForcesAdmissionOpenDuringCooldown: shed requests always open the
// admission limit, even inside a resize cooldown.
func TestShedForcesAdmissionOpenDuringCooldown(t *testing.T) {
	st := newScriptTarget()
	c := New(Config{MinWorkers: 1, MaxWorkers: 4, MinAdmit: 5, MaxAdmit: 64, Cooldown: 3, Now: fixedNow}, st)
	tickOK := func() Decision { t.Helper(); return c.Tick() }

	tickOK() // warmup
	st.s.QueueDepth, st.s.Busy, st.s.Shed = 4, 1, 10
	st.observe(0.01, 5)
	d := tickOK()
	if d.Verdict != VerdictGrow {
		t.Fatalf("verdict %q, want grow", d.Verdict)
	}
	admitAfterGrow := d.NewAdmit
	st.s.Shed = 25 // more shed while cooling down
	st.observe(0.01, 5)
	d = tickOK()
	if d.Verdict != VerdictCooldown {
		t.Fatalf("verdict %q, want cooldown", d.Verdict)
	}
	if d.NewAdmit <= admitAfterGrow {
		t.Fatalf("admission %d did not open during cooldown despite shed (was %d)", d.NewAdmit, admitAfterGrow)
	}
}

// TestMetricsExported: tuner_* series land in the shared registry.
func TestMetricsExported(t *testing.T) {
	reg := telemetry.NewRegistry()
	sim := NewLoadSim(4, 0.005)
	c := New(Config{MinWorkers: 1, MaxWorkers: 4, Registry: reg, Now: fixedNow}, sim)
	for i := 0; i < 5; i++ {
		sim.Step(20)
		c.Tick()
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"tuner_epochs_total 5",
		"tuner_workers ",
		"tuner_admission_limit ",
		`tuner_decisions_total{verdict="grow"}`,
		`tuner_decisions_total{verdict="warmup"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if c.Epochs() != 5 {
		t.Errorf("Epochs() = %d, want 5", c.Epochs())
	}
}

// TestStartStopTicker: the wall-clock loop ticks and Stop is idempotent.
func TestStartStopTicker(t *testing.T) {
	sim := NewLoadSim(4, 0.005)
	c := New(Config{Interval: time.Millisecond, MinWorkers: 1, MaxWorkers: 2}, sim)
	c.Start()
	deadline := time.Now().Add(5 * time.Second)
	for c.Epochs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
}
