package tuner

import "equalizer/internal/telemetry"

// LoadSim is a deterministic closed-loop model of the serving tier used to
// unit-test the control law without wall time: a fluid approximation where
// each epoch a batch of requests arrives, the admission limit sheds the
// overflow, and the worker pool drains PerWorker requests per worker per
// epoch. Modelled latency grows linearly with the load factor (offered work
// over capacity), so an under-provisioned pool shows exactly the queueing
// and tail-latency signals the controller keys on. It implements Target; a
// test wires it to a Controller and alternates Step with Tick.
type LoadSim struct {
	// PerWorker is how many requests one worker completes per epoch.
	PerWorker int
	// Service is the base per-request latency in seconds at an unloaded
	// pool; queueing multiplies it by (1 + load factor).
	Service float64

	workers int
	admit   int
	applies int
	backlog int
	busy    int
	shed    uint64
	hist    *telemetry.Histogram
}

// NewLoadSim builds a simulator completing perWorker requests per worker
// per epoch, with the given unloaded per-request latency.
func NewLoadSim(perWorker int, service float64) *LoadSim {
	reg := telemetry.NewRegistry()
	return &LoadSim{
		PerWorker: perWorker,
		Service:   service,
		workers:   1,
		admit:     1,
		hist: reg.Histogram("sim_request_seconds", "modelled request latency",
			[]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}, nil),
	}
}

// Apply implements Target.
func (l *LoadSim) Apply(workers, admitCap int) {
	l.workers = workers
	l.admit = admitCap
	l.applies++
}

// Applies returns how many times the controller resized the simulator.
func (l *LoadSim) Applies() int { return l.applies }

// Backlog returns the requests still waiting at the end of the last step.
func (l *LoadSim) Backlog() int { return l.backlog }

// TotalShed returns the cumulative count of requests shed by admission.
func (l *LoadSim) TotalShed() uint64 { return l.shed }

// Step advances one epoch with the given number of arriving requests:
// admission sheds what exceeds the limit, the pool serves what capacity
// allows, and each served request observes a latency scaled by the load
// factor. The remainder carries over as backlog.
func (l *LoadSim) Step(arrivals int) {
	offered := l.backlog + arrivals
	if offered > l.admit {
		l.shed += uint64(offered - l.admit)
		offered = l.admit
	}
	capacity := l.workers * l.PerWorker
	served := offered
	if served > capacity {
		served = capacity
	}
	if capacity > 0 && served > 0 {
		lat := l.Service * (1 + float64(offered)/float64(capacity))
		for i := 0; i < served; i++ {
			l.hist.Observe(lat)
		}
	}
	l.backlog = offered - served
	// Occupancy at sample time: a backlog means every worker is busy;
	// otherwise the served load maps onto ceil(served/PerWorker) workers.
	switch {
	case l.backlog > 0:
		l.busy = l.workers
	case l.PerWorker > 0:
		l.busy = (served + l.PerWorker - 1) / l.PerWorker
	default:
		l.busy = 0
	}
	if l.busy > l.workers {
		l.busy = l.workers
	}
}

// Sample implements Target.
func (l *LoadSim) Sample() Sample {
	return Sample{
		QueueDepth: l.backlog,
		Busy:       l.busy,
		Workers:    l.workers,
		AdmitCap:   l.admit,
		Shed:       l.shed,
		Latency:    l.hist.Snapshot(),
	}
}
