// Package tuner is the service-level sibling of the simulator's Equalizer
// core: an epoch-based feedback controller that watches the serving tier's
// live execution state — queue depth, worker occupancy, shed count, and the
// request-latency histogram — and retunes the run worker-pool width and the
// admission limit every control interval.
//
// The control law mirrors the paper's unsaturated/saturated state machine
// at the service layer. Each epoch is classified from the sampled inputs:
//
//   - saturated — requests were shed, or every worker is busy with cells
//     still queued: the pool is the bottleneck. Grow the pool (half-width
//     steps, so the climb is fast from a small floor yet increasingly
//     cautious near the ceiling) and open the admission limit alongside.
//   - idle — the queue is empty and occupancy sits below the idle
//     fraction: capacity is wasted. Shrink by one worker, but only after
//     ShrinkStreak consecutive idle epochs (hysteresis, exactly like the
//     core's three-epoch block-resize rule).
//   - steady — neither: hold.
//
// Two mechanisms make the hill-climb settle instead of oscillating. Every
// resize is followed by Cooldown observation-only epochs so its effect is
// measured before the next move; and a shrink that turns out to be wrong —
// the next measured epoch is saturated again, or tail latency degraded by
// more than BackoffFrac — is reverted ("backoff") and doubles the idle
// streak required for the next shrink, so repeated mistakes converge to
// holding at the correct width.
//
// Safety: the controller only changes scheduling — how many run cells
// execute concurrently and how many may wait. It never touches a
// simulation parameter, so served results remain byte-identical with the
// controller on or off, and the pool it resizes never interrupts a task in
// flight (workers retire at task boundaries only).
package tuner

import (
	"sync"
	"sync/atomic"
	"time"

	"equalizer/internal/telemetry"
)

// Sample is one epoch's observation of the serving tier, taken at the
// control tick. Counters (Shed, Latency) are cumulative since service
// start; the controller differences consecutive samples itself.
type Sample struct {
	// QueueDepth is the number of admitted run cells waiting for a worker
	// right now.
	QueueDepth int
	// Busy and Workers are the pool occupancy: workers executing a cell
	// and the pool's current target width.
	Busy, Workers int
	// AdmitCap is the current admission limit (cells admitted at once,
	// waiting + in flight).
	AdmitCap int
	// Shed is the cumulative count of requests rejected by admission
	// control.
	Shed uint64
	// Latency is a snapshot of the cumulative end-to-end request-latency
	// histogram (service_request_seconds).
	Latency telemetry.HistSnapshot
}

// Target is the tunable surface the controller acts on. Sample must be safe
// to call from the controller goroutine; Apply receives the new pool width
// and admission limit (both already clamped to the configured bounds) and
// is only called when at least one of them changed.
type Target interface {
	Sample() Sample
	Apply(workers, admitCap int)
}

// Config parameterises a Controller.
type Config struct {
	// Interval is the control epoch length (0 = 250ms). Only Start uses
	// it; Tick-driven tests never touch wall time.
	Interval time.Duration
	// MinWorkers and MaxWorkers bound the pool width (0 = 1 and 4×min).
	MinWorkers, MaxWorkers int
	// MinAdmit and MaxAdmit bound the admission limit. 0 means
	// MaxWorkers+1 and 16×MaxWorkers. MinAdmit is also the starting
	// headroom: the admission limit never drops below it, so enabling the
	// controller can only open admission, never tighten it below the
	// operator's configured floor.
	MinAdmit, MaxAdmit int
	// GrowStreak is the number of consecutive saturated epochs required
	// before growing (0 = 1: saturation is expensive, react fast).
	GrowStreak int
	// ShrinkStreak is the number of consecutive idle epochs required
	// before shrinking (0 = 3, the core Equalizer hysteresis).
	ShrinkStreak int
	// Cooldown is the number of observation-only epochs after a resize
	// (0 = 2).
	Cooldown int
	// IdleFrac is the occupancy at or below which an epoch counts as idle
	// (0 = 0.5).
	IdleFrac float64
	// BackoffFrac is the relative p95 degradation after a shrink that
	// triggers a revert (0 = 0.25).
	BackoffFrac float64
	// RingCap sizes the decision ring buffer (0 = 256).
	RingCap int
	// Registry receives the tuner_* metrics; nil uses a private registry.
	Registry *telemetry.Registry
	// Now stamps decisions (nil = time.Now). The control law itself never
	// reads it — epochs advance only by Tick — so a fake clock or none at
	// all yields identical decisions.
	Now func() time.Time
}

// WithDefaults resolves the zero values of a Config; exported so callers
// embedding tuner settings (the service) can resolve them identically.
func (c Config) WithDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 4 * c.MinWorkers
	}
	if c.MaxWorkers < c.MinWorkers {
		c.MaxWorkers = c.MinWorkers
	}
	if c.MinAdmit <= 0 {
		c.MinAdmit = c.MaxWorkers + 1
	}
	if c.MaxAdmit <= 0 {
		c.MaxAdmit = 16 * c.MaxWorkers
	}
	if c.MaxAdmit < c.MinAdmit {
		c.MaxAdmit = c.MinAdmit
	}
	if c.GrowStreak <= 0 {
		c.GrowStreak = 1
	}
	if c.ShrinkStreak <= 0 {
		c.ShrinkStreak = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2
	}
	if c.IdleFrac <= 0 {
		c.IdleFrac = 0.5
	}
	if c.BackoffFrac <= 0 {
		c.BackoffFrac = 0.25
	}
	if c.RingCap <= 0 {
		c.RingCap = 256
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Verdict is a control decision's outcome.
type Verdict string

const (
	// VerdictWarmup is the first epoch: baseline sample only.
	VerdictWarmup Verdict = "warmup"
	// VerdictHold means no change was warranted.
	VerdictHold Verdict = "hold"
	// VerdictCooldown means a recent resize is still being observed.
	VerdictCooldown Verdict = "cooldown"
	// VerdictGrow means the pool grew (and admission opened with it).
	VerdictGrow Verdict = "grow"
	// VerdictShrink means the pool shrank by one worker.
	VerdictShrink Verdict = "shrink"
	// VerdictBackoff means the previous shrink was reverted because
	// pressure returned or tail latency degraded.
	VerdictBackoff Verdict = "backoff"
)

// Decision is one epoch's record in the /debug/tuner ring: the sampled
// inputs, the verdict, and the settings that left the epoch.
type Decision struct {
	Epoch    int     `json:"epoch"`
	UnixNano int64   `json:"unix_nano"`
	Queue    int     `json:"queue_depth"`
	Busy     int     `json:"busy"`
	Workers  int     `json:"workers"`
	AdmitCap int     `json:"admission_limit"`
	Requests uint64  `json:"requests"`
	Shed     uint64  `json:"shed"`
	P95MS    float64 `json:"p95_ms"`
	Verdict  Verdict `json:"verdict"`
	Reason   string  `json:"reason"`
	// NewWorkers and NewAdmit are the settings after the decision; equal
	// to Workers/AdmitCap on hold-like verdicts.
	NewWorkers int `json:"new_workers"`
	NewAdmit   int `json:"new_admission_limit"`
}

// Controller drives a Target. Construct with New; advance with Tick (tests,
// deterministic) or Start/Stop (production, wall-clock ticker).
type Controller struct {
	cfg    Config
	target Target

	mu           sync.Mutex
	epoch        int
	hasPrev      bool
	prev         Sample
	satStreak    int
	idleStreak   int
	cooldown     int
	lastVerdict  Verdict
	refP95       float64 // p95 observed when the last shrink was decided
	shrinkDebt   int     // extra idle epochs demanded after a backoff
	workers      int     // last applied width (tracks the target)
	admit        int     // last applied admission limit
	ring         []Decision
	ringNext     int
	ringTotal    uint64
	stopOnce     sync.Once
	stopCh       chan struct{}
	startedTicks atomic.Bool

	epochs    *telemetry.Counter
	workersG  *telemetry.Gauge
	admitG    *telemetry.Gauge
	p95G      *telemetry.Gauge
	decisions map[Verdict]*telemetry.Counter
}

// New builds a controller for target. It immediately applies the configured
// bounds: the target starts at MinWorkers width and MinAdmit admission, the
// floor the CI smoke asserts the controller climbs away from under load.
func New(cfg Config, target Target) *Controller {
	cfg = cfg.WithDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := &Controller{
		cfg:    cfg,
		target: target,
		ring:   make([]Decision, cfg.RingCap),
		stopCh: make(chan struct{}),

		epochs:   reg.Counter("tuner_epochs_total", "control epochs evaluated by the service tuner", nil),
		workersG: reg.Gauge("tuner_workers", "worker-pool width set by the service tuner", nil),
		admitG:   reg.Gauge("tuner_admission_limit", "admission limit set by the service tuner", nil),
		p95G:     reg.Gauge("tuner_epoch_p95_seconds", "request p95 latency over the last control epoch", nil),
		decisions: map[Verdict]*telemetry.Counter{
			VerdictWarmup:   reg.Counter("tuner_decisions_total", "tuner decisions by verdict", telemetry.Labels{"verdict": string(VerdictWarmup)}),
			VerdictHold:     reg.Counter("tuner_decisions_total", "tuner decisions by verdict", telemetry.Labels{"verdict": string(VerdictHold)}),
			VerdictCooldown: reg.Counter("tuner_decisions_total", "tuner decisions by verdict", telemetry.Labels{"verdict": string(VerdictCooldown)}),
			VerdictGrow:     reg.Counter("tuner_decisions_total", "tuner decisions by verdict", telemetry.Labels{"verdict": string(VerdictGrow)}),
			VerdictShrink:   reg.Counter("tuner_decisions_total", "tuner decisions by verdict", telemetry.Labels{"verdict": string(VerdictShrink)}),
			VerdictBackoff:  reg.Counter("tuner_decisions_total", "tuner decisions by verdict", telemetry.Labels{"verdict": string(VerdictBackoff)}),
		},
	}
	c.workers = cfg.MinWorkers
	c.admit = cfg.MinAdmit
	target.Apply(c.workers, c.admit)
	c.workersG.Set(float64(c.workers))
	c.admitG.Set(float64(c.admit))
	return c
}

// Config returns the resolved configuration.
func (c *Controller) Config() Config { return c.cfg }

// Settings returns the currently applied (workers, admission limit).
func (c *Controller) Settings() (workers, admitCap int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers, c.admit
}

// Epochs returns the number of control epochs evaluated so far.
func (c *Controller) Epochs() uint64 { return c.epochs.Value() }

// Start launches the control loop on a wall-clock ticker. Stop ends it.
func (c *Controller) Start() {
	go func() {
		tick := time.NewTicker(c.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-c.stopCh:
				return
			case <-tick.C:
				c.Tick()
			}
		}
	}()
}

// Stop ends the control loop. Idempotent; safe without Start.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
}

// Tick evaluates one control epoch: sample, classify, decide, apply. It is
// the whole control law — tests drive it directly with synthetic samples
// and wall time never enters the decision.
func (c *Controller) Tick() Decision {
	s := c.target.Sample()
	now := c.cfg.Now().UnixNano()

	c.mu.Lock()
	c.epoch++
	d := Decision{
		Epoch: c.epoch, UnixNano: now,
		Queue: s.QueueDepth, Busy: s.Busy, Workers: s.Workers, AdmitCap: s.AdmitCap,
		NewWorkers: c.workers, NewAdmit: c.admit,
	}
	if !c.hasPrev {
		c.hasPrev = true
		c.prev = s
		d.Verdict, d.Reason = VerdictWarmup, "first epoch: baseline sample"
		c.record(d, 0)
		c.mu.Unlock()
		return d
	}

	delta := s.Latency.Sub(c.prev.Latency)
	p95 := delta.Quantile(0.95)
	shed := s.Shed - c.prev.Shed
	c.prev = s
	d.Requests = delta.Count
	d.Shed = shed
	d.P95MS = p95 * 1e3

	occ := 0.0
	if s.Workers > 0 {
		occ = float64(s.Busy) / float64(s.Workers)
	}
	saturated := shed > 0 || (s.QueueDepth > 0 && s.Busy >= s.Workers)
	idle := shed == 0 && s.QueueDepth == 0 && occ <= c.cfg.IdleFrac

	workers, admit := c.workers, c.admit
	switch {
	case c.cooldown > 0:
		c.cooldown--
		d.Verdict, d.Reason = VerdictCooldown, "observing the last resize"
		// Shedding is never tolerated, cooldown or not: open admission.
		if shed > 0 && admit < c.cfg.MaxAdmit {
			admit = clamp(admit+growStep(admit), c.cfg.MinAdmit, c.cfg.MaxAdmit)
			d.Reason = "cooldown, but shed requests force the admission limit open"
		}
	case saturated:
		c.idleStreak = 0
		c.satStreak++
		if c.satStreak < c.cfg.GrowStreak {
			d.Verdict, d.Reason = VerdictHold, "saturated, awaiting grow hysteresis"
			break
		}
		c.satStreak = 0
		grew := false
		if workers < c.cfg.MaxWorkers {
			workers = clamp(workers+growStep(workers), c.cfg.MinWorkers, c.cfg.MaxWorkers)
			grew = true
		}
		if shed > 0 || grew {
			admit = clamp(admit+growStep(admit), c.cfg.MinAdmit, c.cfg.MaxAdmit)
		}
		if grew || admit != c.admit {
			d.Verdict = VerdictGrow
			if shed > 0 {
				d.Reason = "saturated with shed requests"
			} else {
				d.Reason = "all workers busy with cells queued"
			}
			c.cooldown = c.cfg.Cooldown
			c.lastVerdict = VerdictGrow
		} else {
			d.Verdict, d.Reason = VerdictHold, "saturated at the configured ceiling"
		}
	case idle:
		c.satStreak = 0
		c.idleStreak++
		need := c.cfg.ShrinkStreak + c.shrinkDebt
		if c.idleStreak < need || workers <= c.cfg.MinWorkers {
			if workers <= c.cfg.MinWorkers {
				d.Verdict, d.Reason = VerdictHold, "idle at the configured floor"
			} else {
				d.Verdict, d.Reason = VerdictHold, "idle, awaiting shrink hysteresis"
			}
			break
		}
		c.idleStreak = 0
		workers--
		d.Verdict, d.Reason = VerdictShrink, "sustained idle occupancy"
		c.refP95 = p95
		c.cooldown = c.cfg.Cooldown
		c.lastVerdict = VerdictShrink
	default:
		c.satStreak, c.idleStreak = 0, 0
		d.Verdict, d.Reason = VerdictHold, "steady"
		// Hill-climb backoff: the epoch after a shrink's cooldown shows
		// materially worse tail latency — the shrink was a mistake.
		if c.lastVerdict == VerdictShrink && delta.Count > 0 && c.refP95 > 0 &&
			p95 > c.refP95*(1+c.cfg.BackoffFrac) && workers < c.cfg.MaxWorkers {
			workers++
			d.Verdict, d.Reason = VerdictBackoff, "p95 degraded after shrink; reverting"
			c.shrinkDebt = nextDebt(c.shrinkDebt)
			c.cooldown = c.cfg.Cooldown
			c.lastVerdict = VerdictBackoff
		}
	}

	changed := workers != c.workers || admit != c.admit
	c.workers, c.admit = workers, admit
	d.NewWorkers, d.NewAdmit = workers, admit
	c.record(d, p95)
	c.mu.Unlock()

	if changed {
		c.target.Apply(workers, admit)
	}
	return d
}

// record appends the decision to the ring and refreshes the metrics.
// Caller holds c.mu.
func (c *Controller) record(d Decision, p95 float64) {
	c.ring[c.ringNext] = d
	c.ringNext = (c.ringNext + 1) % len(c.ring)
	c.ringTotal++
	c.epochs.Inc()
	c.workersG.Set(float64(c.workers))
	c.admitG.Set(float64(c.admit))
	c.p95G.Set(p95)
	c.decisions[d.Verdict].Inc()
}

// Decisions returns the retained decision ring, oldest first.
func (c *Controller) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Decision, 0, len(c.ring))
	for i := 0; i < len(c.ring); i++ {
		j := (c.ringNext + i) % len(c.ring)
		if c.ring[j].Epoch > 0 {
			out = append(out, c.ring[j])
		}
	}
	return out
}

// growStep is the hill-climb increment: half the current value, at least
// one — fast from a small floor, increasingly cautious near the ceiling.
func growStep(cur int) int {
	if s := cur / 2; s > 1 {
		return s
	}
	return 1
}

// nextDebt doubles the post-backoff shrink hysteresis, capped so the
// controller can still adapt to a genuinely changed workload.
func nextDebt(cur int) int {
	next := cur*2 + 1
	if next > 16 {
		next = 16
	}
	return next
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
