package service

import (
	"sync"
	"time"

	"equalizer/internal/telemetry"
)

// StageTiming is one stage of a request's execution, offset-relative to the
// request start so traces can be rendered as nested spans.
type StageTiming struct {
	Stage   string `json:"stage"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// RequestTrace is one entry of the /debug/requests ring buffer: everything
// the service learned about a request, keyed by its request ID. It is a
// plain copyable value so dumps round-trip through JSON (eqtrace -requests
// re-reads them).
type RequestTrace struct {
	ID            string        `json:"id"`
	Method        string        `json:"method"`
	Path          string        `json:"path"`
	Kernel        string        `json:"kernel,omitempty"`
	Policy        string        `json:"policy,omitempty"`
	Cells         int           `json:"cells,omitempty"`
	StartUnixNano int64         `json:"start_unix_nano"`
	DurNS         int64         `json:"dur_ns"`
	Status        int           `json:"status"`
	Source        string        `json:"source,omitempty"`
	Err           string        `json:"error,omitempty"`
	Stages        []StageTiming `json:"stages,omitempty"`
}

// activeTrace accumulates a RequestTrace while its request is in flight;
// the mutex lives here so the finished trace stays a copyable value. Sweep
// cells append stages concurrently.
type activeTrace struct {
	mu        sync.Mutex
	t         RequestTrace
	startWall time.Time
}

// newActiveTrace starts a trace for one request.
func newActiveTrace(id, method, path string, start time.Time) *activeTrace {
	return &activeTrace{
		t:         RequestTrace{ID: id, Method: method, Path: path, StartUnixNano: start.UnixNano()},
		startWall: start,
	}
}

// since converts an absolute instant into an offset from the request start.
func (a *activeTrace) since(at time.Time) time.Duration {
	return at.Sub(a.startWall)
}

// addStage appends one stage timing. Safe for concurrent use.
func (a *activeTrace) addStage(stage string, start, dur time.Duration) {
	a.mu.Lock()
	a.t.Stages = append(a.t.Stages, StageTiming{Stage: stage, StartNS: int64(start), DurNS: int64(dur)})
	a.mu.Unlock()
}

// set applies f to the trace under the lock.
func (a *activeTrace) set(f func(*RequestTrace)) {
	a.mu.Lock()
	f(&a.t)
	a.mu.Unlock()
}

// finish stamps the terminal status and duration and returns the completed
// value.
func (a *activeTrace) finish(status int, err error, end time.Time) RequestTrace {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.t.Status = status
	a.t.DurNS = int64(end.Sub(a.startWall))
	if err != nil {
		a.t.Err = err.Error()
	}
	return a.t
}

// traceRing is a fixed-capacity ring of completed request traces.
type traceRing struct {
	mu    sync.Mutex
	buf   []RequestTrace
	used  []bool
	next  int
	total uint64
}

func newTraceRing(capacity int) *traceRing {
	if capacity <= 0 {
		capacity = 256
	}
	return &traceRing{buf: make([]RequestTrace, capacity), used: make([]bool, capacity)}
}

func (r *traceRing) add(t RequestTrace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.used[r.next] = true
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// snapshot returns the retained traces oldest-first.
func (r *traceRing) snapshot() []RequestTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RequestTrace, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		j := (r.next + i) % len(r.buf)
		if r.used[j] {
			out = append(out, r.buf[j])
		}
	}
	return out
}

// TracesToChromeSpans converts request traces into generic Chrome spans:
// each request is a top-level span on the "eqsimd" process with its stages
// nested below it by time containment. Lanes (thread IDs) are assigned
// greedily so overlapping requests render side by side.
func TracesToChromeSpans(traces []RequestTrace) ([]telemetry.Span, telemetry.SpanOptions) {
	opts := telemetry.SpanOptions{
		ProcessNames: map[int]string{1: "eqsimd"},
		ThreadNames:  map[int64]string{},
	}
	if len(traces) == 0 {
		return nil, opts
	}
	base := traces[0].StartUnixNano
	for _, t := range traces {
		if t.StartUnixNano < base {
			base = t.StartUnixNano
		}
	}
	// Greedy lane assignment: a request takes the first lane whose last
	// span ended before it starts.
	var laneEnd []int64
	spans := make([]telemetry.Span, 0, len(traces)*2)
	usec := func(ns int64) float64 { return float64(ns) / 1e3 }
	for _, t := range traces {
		start := t.StartUnixNano - base
		end := start + t.DurNS
		lane := -1
		for i, e := range laneEnd {
			if e <= start {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
			opts.ThreadNames[telemetry.ThreadKey(1, lane)] = "requests"
		}
		laneEnd[lane] = end
		args := map[string]any{"id": t.ID, "status": t.Status}
		if t.Kernel != "" {
			args["kernel"] = t.Kernel
		}
		if t.Policy != "" {
			args["policy"] = t.Policy
		}
		if t.Source != "" {
			args["source"] = t.Source
		}
		if t.Err != "" {
			args["error"] = t.Err
		}
		spans = append(spans, telemetry.Span{
			Name: t.Method + " " + t.Path, Cat: "request",
			PID: 1, TID: lane,
			StartUS: usec(start), DurUS: usec(t.DurNS), Args: args,
		})
		for _, st := range t.Stages {
			spans = append(spans, telemetry.Span{
				Name: st.Stage, Cat: "stage",
				PID: 1, TID: lane,
				StartUS: usec(start + st.StartNS), DurUS: usec(st.DurNS),
				Args: map[string]any{"id": t.ID},
			})
		}
	}
	return spans, opts
}
