package sm

import (
	"testing"

	"equalizer/internal/cache"
	"equalizer/internal/clock"
	"equalizer/internal/config"
	"equalizer/internal/warp"
)

const period = clock.Time(1000)

func testCfg() config.GPU {
	g := config.Default()
	g.NumSMs = 1
	return g
}

// runSM drives the SM alone, acting as a perfect memory system that returns
// every miss after memLatency SM cycles. It returns the number of cycles
// until the SM goes idle (or maxCycles).
func runSM(s *SM, memLatency int, maxCycles int) int {
	now := clock.Time(0)
	for c := 0; c < maxCycles; c++ {
		now += period
		s.Step(now, period)
		if r, ok := s.TakeOutbox(); ok {
			s.DeliverLine(r.Line, now+clock.Time(memLatency)*period)
		}
		if s.Idle() {
			return c + 1
		}
	}
	return maxCycles
}

func TestLaunchAndFinishComputeBlock(t *testing.T) {
	s := New(testCfg(), 0)
	prof := &warp.Profile{LineBytes: 128, Phases: []warp.Phase{{Insts: 10, ALUGap: 2}}}
	if !s.WantsBlock(8) {
		t.Fatal("fresh SM refuses a block")
	}
	s.LaunchBlock(prof, 0, 8)
	if s.ResidentBlocks() != 1 || s.LiveWarps() != 8 {
		t.Fatalf("resident=%d live=%d, want 1/8", s.ResidentBlocks(), s.LiveWarps())
	}
	cycles := runSM(s, 100, 10000)
	if !s.Idle() {
		t.Fatal("SM not idle after compute block")
	}
	if s.Stats().BlocksFinished != 1 {
		t.Fatalf("blocks finished = %d, want 1", s.Stats().BlocksFinished)
	}
	// 8 warps x 10 ALU instructions at 1 issue/cycle needs >= 80 cycles.
	if got := s.Stats().IssuedALU; got != 80 {
		t.Fatalf("issued ALU = %d, want 80", got)
	}
	if cycles < 80 {
		t.Fatalf("finished in %d cycles, impossible under issue width", cycles)
	}
}

func TestComputeKernelShowsXALUPressure(t *testing.T) {
	s := New(testCfg(), 0)
	// Dense ALU stream with tiny dependency gaps: many warps ready at once.
	prof := &warp.Profile{LineBytes: 128, Phases: []warp.Phase{{Insts: 400, ALUGap: 1}}}
	for b := 0; b < 6; b++ {
		s.LaunchBlock(prof, b, 8)
	}
	var xaluSum, samples int
	now := clock.Time(0)
	for c := 0; c < 2000; c++ {
		now += period
		s.Step(now, period)
		if c >= 100 {
			xaluSum += s.Snapshot().XALU
			samples++
		}
	}
	avg := float64(xaluSum) / float64(samples)
	if avg < 8 {
		t.Fatalf("mean XALU = %.1f, want heavy ALU pressure (>= 8, Wcta)", avg)
	}
}

func TestMemoryBackpressureShowsXMEM(t *testing.T) {
	s := New(testCfg(), 0)
	// Pure streaming loads; the test never delivers responses and never
	// drains the outbox, so the LSU clogs and ready warps become Xmem.
	prof := &warp.Profile{
		LineBytes: 128,
		Phases:    []warp.Phase{{Insts: 64, MemEvery: 1, Pattern: warp.Streaming}},
	}
	for b := 0; b < 6; b++ {
		s.LaunchBlock(prof, b, 8)
	}
	now := clock.Time(0)
	for c := 0; c < 300; c++ {
		now += period
		s.Step(now, period)
	}
	if got := s.Snapshot().XMEM; got < 8 {
		t.Fatalf("XMEM = %d under full back-pressure, want >= 8", got)
	}
}

func TestL1HitPathWakesWarp(t *testing.T) {
	s := New(testCfg(), 0)
	// One warp, working set of 1 line accessed repeatedly: first access
	// misses, the rest hit.
	prof := &warp.Profile{
		LineBytes: 128,
		Phases:    []warp.Phase{{Insts: 10, MemEvery: 1, Pattern: warp.PrivateReuse, WorkingSetLines: 1}},
	}
	s.LaunchBlock(prof, 0, 1)
	runSM(s, 200, 20000)
	if !s.Idle() {
		t.Fatal("warp never finished")
	}
	st := s.l1.Stats()
	if st.Misses != 1 {
		t.Fatalf("L1 misses = %d, want 1", st.Misses)
	}
	if st.Hits != 9 {
		t.Fatalf("L1 hits = %d, want 9", st.Hits)
	}
}

func TestBarrierSynchronizesBlock(t *testing.T) {
	s := New(testCfg(), 0)
	prof := &warp.Profile{
		LineBytes: 128,
		Phases: []warp.Phase{
			{Insts: 5, ALUGap: 2, Barrier: true},
			{Insts: 3, ALUGap: 2},
		},
	}
	s.LaunchBlock(prof, 0, 4)
	runSM(s, 100, 10000)
	if !s.Idle() {
		t.Fatal("block with barrier never finished")
	}
	if s.Stats().BarrierReleases != 1 {
		t.Fatalf("barrier releases = %d, want 1", s.Stats().BarrierReleases)
	}
}

func TestSetTargetBlocksPausesYoungest(t *testing.T) {
	s := New(testCfg(), 0)
	prof := &warp.Profile{LineBytes: 128, Phases: []warp.Phase{{Insts: 5000, ALUGap: 4}}}
	for b := 0; b < 4; b++ {
		s.LaunchBlock(prof, b, 8)
	}
	s.SetTargetBlocks(2)
	if s.ActiveBlocks() != 2 {
		t.Fatalf("active blocks = %d after throttle, want 2", s.ActiveBlocks())
	}
	if s.ResidentBlocks() != 4 {
		t.Fatalf("resident blocks = %d, want 4 (paused stay resident)", s.ResidentBlocks())
	}
	// Paused warps are excluded from the census.
	now := clock.Time(1000)
	s.Step(now, period)
	if a := s.Snapshot().Active; a != 16 {
		t.Fatalf("active warps = %d with 2 active blocks, want 16", a)
	}
	s.SetTargetBlocks(4)
	if s.ActiveBlocks() != 4 {
		t.Fatalf("active blocks = %d after unpause, want 4", s.ActiveBlocks())
	}
}

func TestPausedBlockResumesWhenActiveFinishes(t *testing.T) {
	s := New(testCfg(), 0)
	short := &warp.Profile{LineBytes: 128, Phases: []warp.Phase{{Insts: 4, ALUGap: 1}}}
	long := &warp.Profile{LineBytes: 128, Phases: []warp.Phase{{Insts: 4000, ALUGap: 1}}}
	s.LaunchBlock(short, 0, 8)
	s.LaunchBlock(long, 1, 8)
	s.SetTargetBlocks(1) // pauses the long block (youngest)
	if s.ActiveBlocks() != 1 {
		t.Fatal("throttle did not pause")
	}
	now := clock.Time(0)
	for c := 0; c < 200 && s.Stats().BlocksFinished == 0; c++ {
		now += period
		s.Step(now, period)
	}
	if s.Stats().BlocksFinished != 1 {
		t.Fatal("short block never finished")
	}
	if s.ActiveBlocks() != 1 || s.ResidentBlocks() != 1 {
		t.Fatalf("active=%d resident=%d after finish, want 1/1 (long block unpaused)",
			s.ActiveBlocks(), s.ResidentBlocks())
	}
}

func TestWantsBlockHonoursTarget(t *testing.T) {
	s := New(testCfg(), 0)
	prof := &warp.Profile{LineBytes: 128, Phases: []warp.Phase{{Insts: 100, ALUGap: 4}}}
	s.SetTargetBlocks(1)
	s.LaunchBlock(prof, 0, 8)
	if s.WantsBlock(8) {
		t.Fatal("SM wants a second block above its concurrency target")
	}
	s.SetTargetBlocks(2)
	if !s.WantsBlock(8) {
		t.Fatal("SM refuses a block with headroom")
	}
}

func TestWantsBlockHonoursWarpSlots(t *testing.T) {
	s := New(testCfg(), 0)
	prof := &warp.Profile{LineBytes: 128, Phases: []warp.Phase{{Insts: 100, ALUGap: 4}}}
	// 2 blocks x 24 warps = 48 warps: full.
	s.LaunchBlock(prof, 0, 24)
	s.LaunchBlock(prof, 1, 24)
	if s.WantsBlock(1) {
		t.Fatal("SM wants a block with no free warp slots")
	}
}

func TestIssueFilterThrottlesMemory(t *testing.T) {
	s := New(testCfg(), 0)
	prof := &warp.Profile{
		LineBytes: 128,
		Phases:    []warp.Phase{{Insts: 8, MemEvery: 1, Pattern: warp.Streaming}},
	}
	s.LaunchBlock(prof, 0, 4)
	s.SetIssueFilter(func(warpSlot int) bool { return false }) // veto all
	now := clock.Time(0)
	for c := 0; c < 50; c++ {
		now += period
		s.Step(now, period)
	}
	if got := s.Stats().IssuedMEM; got != 0 {
		t.Fatalf("issued %d memory instructions under a full veto", got)
	}
	s.SetIssueFilter(nil)
	now += period
	s.Step(now, period)
	if got := s.Stats().IssuedMEM; got != 1 {
		t.Fatalf("issued %d memory instructions after veto removal, want 1", got)
	}
}

func TestOutboxBackpressure(t *testing.T) {
	s := New(testCfg(), 0)
	prof := &warp.Profile{
		LineBytes: 128,
		Phases:    []warp.Phase{{Insts: 4, MemEvery: 1, Pattern: warp.Streaming}},
	}
	s.LaunchBlock(prof, 0, 1)
	now := clock.Time(0)
	for c := 0; c < 10 && !s.OutboxFull(); c++ {
		now += period
		s.Step(now, period)
	}
	if !s.OutboxFull() {
		t.Fatal("streaming miss never reached the outbox")
	}
	r, ok := s.TakeOutbox()
	if !ok || r.SM != 0 {
		t.Fatalf("TakeOutbox = %+v,%v", r, ok)
	}
	if s.OutboxFull() {
		t.Fatal("outbox still full after take")
	}
	if _, ok := s.TakeOutbox(); ok {
		t.Fatal("second TakeOutbox succeeded")
	}
}

func TestDeliverLineWakesAllWaiters(t *testing.T) {
	s := New(testCfg(), 0)
	// Several warps of a block share one line (private reuse would separate
	// them, so use SharedReadOnly with a single line).
	prof := &warp.Profile{
		LineBytes: 128,
		Phases:    []warp.Phase{{Insts: 1, MemEvery: 1, Pattern: warp.SharedReadOnly, SharedLines: 1}},
	}
	s.LaunchBlock(prof, 0, 4)
	cycles := runSM(s, 50, 5000)
	if !s.Idle() {
		t.Fatalf("warps never woke (ran %d cycles)", cycles)
	}
	st := s.l1.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (merged waiters)", st.Misses)
	}
	if st.Merged == 0 && st.Hits == 0 {
		t.Fatal("no merge or hit recorded for shared line")
	}
}

func TestSnapshotWaitingDominatedKernel(t *testing.T) {
	s := New(testCfg(), 0)
	// Long memory latency and low concurrency: most warps wait.
	prof := &warp.Profile{
		LineBytes: 128,
		Phases:    []warp.Phase{{Insts: 40, MemEvery: 2, ALUGap: 1, Pattern: warp.Streaming}},
	}
	s.LaunchBlock(prof, 0, 8)
	var waitSum, samples int
	now := clock.Time(0)
	for c := 0; c < 400; c++ {
		now += period
		s.Step(now, period)
		if r, ok := s.TakeOutbox(); ok {
			s.DeliverLine(r.Line, now+400*period)
		}
		if c > 50 && !s.Idle() {
			waitSum += s.Snapshot().Waiting
			samples++
		}
	}
	if samples == 0 {
		t.Skip("kernel finished too quickly to sample")
	}
	if avg := float64(waitSum) / float64(samples); avg < 4 {
		t.Fatalf("mean waiting = %.1f, want latency-bound (>= 4 of 8 warps)", avg)
	}
}

func TestResetClearsState(t *testing.T) {
	s := New(testCfg(), 0)
	prof := &warp.Profile{
		LineBytes: 128,
		Phases:    []warp.Phase{{Insts: 100, MemEvery: 2, Pattern: warp.Streaming}},
	}
	s.LaunchBlock(prof, 0, 8)
	now := clock.Time(0)
	for c := 0; c < 20; c++ {
		now += period
		s.Step(now, period)
	}
	s.Reset(true)
	if !s.Idle() {
		t.Fatal("SM not idle after reset")
	}
	if s.Stats().Cycles != 0 {
		t.Fatal("stats survived reset(true)")
	}
	if s.TargetBlocks() != testCfg().MaxBlocksPerSM {
		t.Fatal("target blocks not restored")
	}
	if !s.WantsBlock(48) {
		t.Fatal("warp slots not recovered by reset")
	}
}

func TestLaunchWithoutCapacityPanics(t *testing.T) {
	s := New(testCfg(), 0)
	prof := &warp.Profile{LineBytes: 128, Phases: []warp.Phase{{Insts: 1, ALUGap: 1}}}
	defer func() {
		if recover() == nil {
			t.Fatal("LaunchBlock over capacity did not panic")
		}
	}()
	for b := 0; b < 9; b++ {
		s.LaunchBlock(prof, b, 6)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		StateWaiting: "waiting", StateXALU: "xalu", StateXMEM: "xmem",
		StateIssued: "issued", StateOthers: "others", StatePaused: "paused",
		StateUnaccounted: "unaccounted",
	} {
		if st.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", int(st), st.String(), want)
		}
	}
}

func TestIPCStat(t *testing.T) {
	var st Stats
	if st.IPC() != 0 {
		t.Fatal("IPC of zero stats should be 0")
	}
	st.Cycles = 100
	st.IssuedALU = 60
	st.IssuedMEM = 20
	if got := st.IPC(); got != 0.8 {
		t.Fatalf("IPC = %g, want 0.8", got)
	}
}

func TestUncoalescedAccessOccupiesLSULonger(t *testing.T) {
	run := func(extra int) uint64 {
		s := New(testCfg(), 0)
		prof := &warp.Profile{
			LineBytes: 128,
			Phases: []warp.Phase{{
				Insts: 8, MemEvery: 1, Pattern: warp.PrivateReuse,
				WorkingSetLines: 2, ExtraLines: extra,
			}},
		}
		s.LaunchBlock(prof, 0, 1)
		runSM(s, 40, 20000)
		return s.l1.Stats().Accesses
	}
	coalesced := run(0)
	divergent := run(3)
	if divergent <= coalesced {
		t.Fatalf("divergent accesses (%d) not greater than coalesced (%d)", divergent, coalesced)
	}
}

var _ = cache.Hit // keep the import for the listener test below

type recordingListener struct {
	accesses int
	evicts   int
}

func (r *recordingListener) OnL1Access(warpSlot int, line cache.Addr, res cache.AccessResult) {
	r.accesses++
}
func (r *recordingListener) OnL1Evict(line cache.Addr) { r.evicts++ }

func TestL1ListenerObservesTraffic(t *testing.T) {
	s := New(testCfg(), 0)
	l := &recordingListener{}
	s.SetL1Listener(l)
	// Working set big enough to evict: 64 sets x 4 ways = 256 lines; one
	// warp with 300-line working set thrashes.
	prof := &warp.Profile{
		LineBytes: 128,
		Phases:    []warp.Phase{{Insts: 600, MemEvery: 1, Pattern: warp.PrivateReuse, WorkingSetLines: 300}},
	}
	s.LaunchBlock(prof, 0, 1)
	runSM(s, 10, 100000)
	if l.accesses == 0 {
		t.Fatal("listener saw no accesses")
	}
	if l.evicts == 0 {
		t.Fatal("listener saw no evictions despite thrashing working set")
	}
}
