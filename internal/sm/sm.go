// Package sm models one streaming multiprocessor of the simulated GPU: the
// instruction buffer and scoreboard (abstracted as per-warp head-instruction
// state), the dual-issue warp scheduler, the load/store unit with its bounded
// queue, the per-SM L1 data cache, the block manager with CTA pausing, and
// the warp-state accounting that feeds Equalizer's four hardware counters.
//
// The SM advances one cycle at a time via Step. All timestamps are absolute
// simulation times (picoseconds) so the SM composes naturally with the
// independently clocked memory system.
package sm

import (
	"fmt"

	"equalizer/internal/cache"
	"equalizer/internal/clock"
	"equalizer/internal/config"
	"equalizer/internal/events"
	"equalizer/internal/invariant"
	"equalizer/internal/telemetry"
	"equalizer/internal/warp"
)

// State is the execution state of a warp in a given cycle, following the
// classification of Section III-A of the paper.
type State uint8

const (
	// StateUnaccounted covers warps with no valid resident context (slot
	// empty or warp finished).
	StateUnaccounted State = iota
	// StateWaiting warps wait for an operand (usually load data) or a
	// dependency gap to elapse.
	StateWaiting
	// StateIssued warps issued an instruction this cycle.
	StateIssued
	// StateXALU warps are ready for the arithmetic pipeline but were not
	// issued (scheduler issue-width contention).
	StateXALU
	// StateXMEM warps are ready to issue to the memory pipeline but are
	// blocked by LSU back-pressure or the memory issue width.
	StateXMEM
	// StateOthers covers barrier waits.
	StateOthers
	// StatePaused warps belong to a CTA paused by the concurrency
	// controller and are excluded from scheduling and accounting.
	StatePaused
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateUnaccounted:
		return "unaccounted"
	case StateWaiting:
		return "waiting"
	case StateIssued:
		return "issued"
	case StateXALU:
		return "xalu"
	case StateXMEM:
		return "xmem"
	case StateOthers:
		return "others"
	case StatePaused:
		return "paused"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Snapshot is the instantaneous warp-state census of one SM cycle — the
// values Equalizer's hardware counters sample every 128 cycles.
type Snapshot struct {
	// Active counts resident, unpaused, unfinished warps.
	Active int
	// Waiting counts warps waiting on operands.
	Waiting int
	// Issued counts warps that issued this cycle (0..2).
	Issued int
	// XALU counts ready-for-ALU warps that could not issue.
	XALU int
	// XMEM counts ready-for-memory warps that could not issue.
	XMEM int
	// Others counts barrier-blocked warps.
	Others int
}

// MemRequest is an L1 miss leaving the SM towards the memory partition.
type MemRequest struct {
	// SM is the index of the requesting SM.
	SM int
	// Line is the line-aligned address.
	Line cache.Addr
}

// Stats aggregates SM activity over a run.
type Stats struct {
	Cycles          uint64
	IssuedALU       uint64
	IssuedSFU       uint64
	IssuedMEM       uint64
	IssuedTEX       uint64
	L1LineAccesses  uint64
	BlocksLaunched  uint64
	BlocksFinished  uint64
	BarrierReleases uint64
	// ActiveCycles counts cycles with at least one resident block.
	ActiveCycles uint64
}

// IPC returns issued instructions (all pipelines) per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.IssuedALU+s.IssuedSFU+s.IssuedMEM+s.IssuedTEX) / float64(s.Cycles)
}

type warpCtx struct {
	stream  *warp.Stream
	block   int // resident block slot
	cur     warp.Instr
	hasCur  bool
	readyAt clock.Time
	// pendingLines counts outstanding line returns for the last issued MEM
	// instruction; while > 0 the warp is waiting on data.
	pendingLines int
	atBarrier    bool
	finished     bool
	valid        bool
}

type blockCtx struct {
	valid    bool
	globalID int
	paused   bool
	// warps lists warp slot indices of this block.
	warps []int
	// liveWarps counts unfinished warps.
	liveWarps int
	// barWaiting counts warps currently at the barrier.
	barWaiting int
}

type lsuEntry struct {
	warp int
	base cache.Addr
	// linesLeft counts line accesses still to perform (1 + extras).
	linesLeft int
	// nextLine indexes the next line to access (0 = base).
	nextLine int
}

// IssueFilter lets a policy (e.g. CCWS) veto memory issue for specific warp
// slots. Returning false keeps the warp out of the ready-memory pool for the
// cycle without counting it as Xmem back-pressure.
type IssueFilter func(warpSlot int) bool

// L1Listener observes L1 activity; CCWS uses it for locality scoring.
type L1Listener interface {
	// OnL1Access is called for every line probe with its warp slot and
	// outcome.
	OnL1Access(warpSlot int, line cache.Addr, result cache.AccessResult)
	// OnL1Evict is called when a fill evicts a victim line.
	OnL1Evict(line cache.Addr)
}

// SM is one streaming multiprocessor. Not safe for concurrent use.
type SM struct {
	cfg   config.GPU
	index int

	warps  []warpCtx
	blocks []blockCtx
	// freeWarpSlots holds unused warp slot indices (LIFO).
	freeWarpSlots []int

	l1 *cache.Cache
	// l1Waiters maps a missing line to the warp slots awaiting its fill.
	l1Waiters map[cache.Addr][]int
	// waiterPool recycles the l1Waiters value slices: DeliverLine returns a
	// line's slice here and the next miss reuses it, keeping the per-miss
	// append off the heap in steady state.
	waiterPool [][]int

	lsu []lsuEntry
	// tex is the texture unit's request queue. It is much deeper than the
	// LSU, and warps stalled behind it are classified as waiting rather
	// than Xmem — texture back-pressure is invisible to the LD/ST pipeline
	// (the leuko-1 effect of Section V-B).
	tex []lsuEntry
	// outbox holds at most one miss awaiting interconnect acceptance;
	// outboxFull gates it (a value field, not a pointer, so posting a miss
	// every few cycles does not allocate).
	outbox     MemRequest
	outboxFull bool
	wakeQueue  events.Queue[int]

	// targetBlocks is the concurrency ceiling set by the running policy;
	// resident unpaused blocks never exceed it.
	targetBlocks int

	// rrALU / rrMEM rotate issue priority for fairness.
	rrALU, rrMEM int

	filter   IssueFilter
	listener L1Listener

	// probe is the telemetry bus (nil = disabled, free); nowPS tracks the
	// current Step time so events emitted outside Step (block launches from
	// the dispatcher, pausing from the policy) carry a timestamp.
	probe *telemetry.Bus
	nowPS int64

	snap  Snapshot
	stats Stats

	residentBlocks int
	activeBlocks   int
	liveWarps      int
}

// New builds an SM with the given index.
func New(cfg config.GPU, index int) *SM {
	s := &SM{
		cfg:          cfg,
		index:        index,
		warps:        make([]warpCtx, cfg.MaxWarpsPerSM),
		blocks:       make([]blockCtx, cfg.MaxBlocksPerSM),
		l1:           cache.MustNew(cfg.L1),
		l1Waiters:    make(map[cache.Addr][]int),
		lsu:          make([]lsuEntry, 0, cfg.LSUQueueDepth),
		targetBlocks: cfg.MaxBlocksPerSM,
	}
	for i := cfg.MaxWarpsPerSM - 1; i >= 0; i-- {
		s.freeWarpSlots = append(s.freeWarpSlots, i)
	}
	return s
}

// Index returns the SM's position in the GPU.
func (s *SM) Index() int { return s.index }

// L1 exposes the data cache (read-mostly: statistics, geometry).
func (s *SM) L1() *cache.Cache { return s.l1 }

// Stats returns accumulated statistics.
func (s *SM) Stats() Stats { return s.stats }

// Snapshot returns the warp-state census of the last completed cycle.
func (s *SM) Snapshot() Snapshot { return s.snap }

// SetIssueFilter installs (or clears, with nil) a memory-issue veto.
func (s *SM) SetIssueFilter(f IssueFilter) { s.filter = f }

// SetL1Listener installs (or clears, with nil) an L1 activity observer.
func (s *SM) SetL1Listener(l L1Listener) { s.listener = l }

// SetProbe wires the SM (and its L1 cache) to a telemetry bus. The SM emits
// warp-issue events, the per-cycle stall census, block launch/finish and
// CTA pause/unpause transitions; the L1 emits access and eviction events.
// A nil bus detaches everything.
func (s *SM) SetProbe(b *telemetry.Bus) {
	s.probe = b
	if b == nil {
		s.l1.SetProbe(nil, 0, 0, 0, nil)
		return
	}
	s.l1.SetProbe(b, telemetry.KindL1Access, telemetry.KindL1Evict,
		int16(s.index), func() int64 { return s.nowPS })
}

// ResidentBlocks returns the number of blocks currently occupying slots.
func (s *SM) ResidentBlocks() int { return s.residentBlocks }

// ActiveBlocks returns resident minus paused blocks.
func (s *SM) ActiveBlocks() int { return s.activeBlocks }

// LiveWarps returns resident unfinished warps (paused included).
func (s *SM) LiveWarps() int { return s.liveWarps }

// TargetBlocks returns the current concurrency ceiling.
func (s *SM) TargetBlocks() int { return s.targetBlocks }

// SetTargetBlocks changes the concurrency ceiling, pausing or unpausing
// resident blocks as needed. The ceiling is clamped to [1, MaxBlocksPerSM].
func (s *SM) SetTargetBlocks(n int) {
	if n < 1 {
		n = 1
	}
	if n > s.cfg.MaxBlocksPerSM {
		n = s.cfg.MaxBlocksPerSM
	}
	s.targetBlocks = n
	s.rebalancePausing()
}

// rebalancePausing pauses the youngest blocks above the ceiling and unpauses
// the oldest paused blocks below it.
func (s *SM) rebalancePausing() {
	// Pause from the highest slot downwards while above target.
	for i := len(s.blocks) - 1; i >= 0 && s.activeBlocks > s.targetBlocks; i-- {
		b := &s.blocks[i]
		if b.valid && !b.paused {
			b.paused = true
			s.activeBlocks--
			s.probe.Emit(s.nowPS, telemetry.KindCTAPause, int16(s.index),
				int64(i), int64(b.globalID))
		}
	}
	// Unpause from the lowest slot upwards while below target.
	for i := 0; i < len(s.blocks) && s.activeBlocks < s.targetBlocks; i++ {
		b := &s.blocks[i]
		if b.valid && b.paused {
			b.paused = false
			s.activeBlocks++
			s.probe.Emit(s.nowPS, telemetry.KindCTAUnpause, int16(s.index),
				int64(i), int64(b.globalID))
		}
	}
}

// WantsBlock reports whether the SM can accept another thread block of
// wcta warps: a free block slot, enough warp slots, and headroom under the
// concurrency ceiling.
func (s *SM) WantsBlock(wcta int) bool {
	if s.activeBlocks >= s.targetBlocks || s.residentBlocks >= s.cfg.MaxBlocksPerSM {
		return false
	}
	return len(s.freeWarpSlots) >= wcta
}

// LaunchBlock installs a thread block of wcta warps running prof, with
// grid-global id globalID. It panics when WantsBlock would be false —
// callers own admission control.
func (s *SM) LaunchBlock(prof *warp.Profile, globalID, wcta int) {
	if !s.WantsBlock(wcta) {
		panic(fmt.Sprintf("sm %d: LaunchBlock without capacity", s.index))
	}
	slot := -1
	for i := range s.blocks {
		if !s.blocks[i].valid {
			slot = i
			break
		}
	}
	if slot < 0 {
		panic(fmt.Sprintf("sm %d: no free block slot despite WantsBlock", s.index))
	}
	b := &s.blocks[slot]
	*b = blockCtx{valid: true, globalID: globalID, warps: b.warps[:0], liveWarps: wcta}
	for w := 0; w < wcta; w++ {
		ws := s.freeWarpSlots[len(s.freeWarpSlots)-1]
		s.freeWarpSlots = s.freeWarpSlots[:len(s.freeWarpSlots)-1]
		s.warps[ws] = warpCtx{
			stream: warp.NewStream(prof, globalID*wcta+w),
			block:  slot,
			valid:  true,
		}
		b.warps = append(b.warps, ws)
	}
	s.residentBlocks++
	s.activeBlocks++
	s.liveWarps += wcta
	s.stats.BlocksLaunched++
	s.probe.Emit(s.nowPS, telemetry.KindBlockLaunch, int16(s.index),
		int64(globalID), int64(slot)<<16|int64(wcta))
	// A newly launched block may immediately exceed the ceiling if the
	// policy lowered it since admission was checked.
	if s.activeBlocks > s.targetBlocks {
		s.rebalancePausing()
	}
}

// DeliverLine completes an outstanding miss for the given line: the L1 is
// filled and every waiting warp is scheduled to wake at time at.
func (s *SM) DeliverLine(line cache.Addr, at clock.Time) {
	s.l1.Fill(line)
	if s.listener != nil {
		if victim, ok := s.l1.LastVictim(); ok {
			s.listener.OnL1Evict(victim)
		}
	}
	waiters := s.l1Waiters[line]
	delete(s.l1Waiters, line)
	for _, ws := range waiters {
		s.wakeQueue.Push(int64(at), ws)
	}
	if cap(waiters) > 0 {
		s.waiterPool = append(s.waiterPool, waiters[:0])
	}
}

// addWaiter records a warp slot waiting on a line, reusing a pooled slice
// for the line's first waiter.
func (s *SM) addWaiter(line cache.Addr, ws int) {
	w, ok := s.l1Waiters[line]
	if !ok && len(s.waiterPool) > 0 {
		w = s.waiterPool[len(s.waiterPool)-1]
		s.waiterPool = s.waiterPool[:len(s.waiterPool)-1]
	}
	s.l1Waiters[line] = append(w, ws)
}

// OutboxFull reports whether a miss is stuck waiting for the interconnect.
func (s *SM) OutboxFull() bool { return s.outboxFull }

// TakeOutbox hands the pending miss to the interconnect layer; ok is false
// when there is none.
func (s *SM) TakeOutbox() (MemRequest, bool) {
	if !s.outboxFull {
		return MemRequest{}, false
	}
	s.outboxFull = false
	return s.outbox, true
}

// TexQueueDepth is the texture unit's request-queue capacity; deep enough
// that texture streams rarely exert visible back-pressure.
const TexQueueDepth = 32

// Idle reports whether the SM holds no work at all.
func (s *SM) Idle() bool {
	return s.residentBlocks == 0 && len(s.lsu) == 0 && len(s.tex) == 0 &&
		!s.outboxFull && s.wakeQueue.Len() == 0
}

// Step advances the SM by one cycle ending at time now (the current SM-domain
// cycle boundary). smPeriod is the current SM clock period, used to convert
// latencies expressed in SM cycles into absolute times.
//
//eqlint:cycle-owner
func (s *SM) Step(now clock.Time, smPeriod clock.Time) {
	s.nowPS = int64(now)
	s.stats.Cycles++
	if s.residentBlocks > 0 {
		s.stats.ActiveCycles++
	}

	// 1. Wake warps whose data or dependency gap arrived.
	s.wakeQueue.PopReady(int64(now), func(ws int) {
		w := &s.warps[ws]
		if w.valid && w.pendingLines > 0 {
			w.pendingLines--
		}
	})

	// 2. Drain the LSU head into the L1 (one line access per cycle); the
	// texture queue shares the L1 port on cycles the LSU leaves it idle.
	if !s.drainQueue(&s.lsu, now, smPeriod) {
		s.drainQueue(&s.tex, now, smPeriod)
	}

	// 3. Issue: classify warps, pick one ALU and one MEM candidate.
	s.issue(now, smPeriod)

	if invariant.Enabled {
		s.verifyInvariants()
	}
}

// verifyInvariants asserts the SM conservation laws at a cycle boundary.
// Only compiled in under the eqdebug build tag; the cheap O(1) checks run
// every cycle and the full recount every recountInterval cycles.
func (s *SM) verifyInvariants() {
	// Census conservation: every active warp is in exactly one bucket.
	snap := s.snap
	invariant.Checkf(snap.Active == snap.Waiting+snap.Issued+snap.XALU+snap.XMEM+snap.Others,
		"sm %d warp census leak: active=%d waiting=%d issued=%d xalu=%d xmem=%d others=%d",
		s.index, snap.Active, snap.Waiting, snap.Issued, snap.XALU, snap.XMEM, snap.Others)

	// Block accounting: resident blocks within hardware bounds, and the
	// paused count is exactly the overshoot past the policy's ceiling
	// (rebalancePausing's three-way contract with the dispatcher).
	invariant.Checkf(0 <= s.activeBlocks && s.activeBlocks <= s.residentBlocks &&
		s.residentBlocks <= s.cfg.MaxBlocksPerSM,
		"sm %d block counts out of range: active=%d resident=%d max=%d",
		s.index, s.activeBlocks, s.residentBlocks, s.cfg.MaxBlocksPerSM)
	wantPaused := s.residentBlocks - s.targetBlocks
	if wantPaused < 0 {
		wantPaused = 0
	}
	invariant.Checkf(s.residentBlocks-s.activeBlocks == wantPaused,
		"sm %d pausing drift: paused=%d, want max(0, resident=%d - target=%d)",
		s.index, s.residentBlocks-s.activeBlocks, s.residentBlocks, s.targetBlocks)

	if s.stats.Cycles%recountInterval == 0 {
		s.recountInvariants()
	}
}

// recountInterval spaces the O(warps+blocks) ground-truth recount; a power
// of two well below the epoch length so drift is caught within an epoch.
const recountInterval = 128

// recountInvariants recomputes the cached census counters from the
// authoritative per-slot state and checks cache-statistics conservation.
func (s *SM) recountInvariants() {
	resident, active, live := 0, 0, 0
	for i := range s.blocks {
		b := &s.blocks[i]
		if !b.valid {
			continue
		}
		resident++
		if !b.paused {
			active++
		}
		live += b.liveWarps
		invariant.Checkf(b.barWaiting <= b.liveWarps,
			"sm %d block %d: %d warps at barrier but only %d live",
			s.index, i, b.barWaiting, b.liveWarps)
	}
	invariant.Checkf(resident == s.residentBlocks,
		"sm %d resident-block drift: cached %d, recount %d", s.index, s.residentBlocks, resident)
	invariant.Checkf(active == s.activeBlocks,
		"sm %d active-block drift: cached %d, recount %d", s.index, s.activeBlocks, active)
	invariant.Checkf(live == s.liveWarps,
		"sm %d live-warp drift: cached %d, recount %d", s.index, s.liveWarps, live)

	// Warp-slot conservation: every slot is either free or holds a valid
	// context.
	validWarps := 0
	for i := range s.warps {
		if s.warps[i].valid {
			validWarps++
		}
	}
	invariant.Checkf(validWarps+len(s.freeWarpSlots) == s.cfg.MaxWarpsPerSM,
		"sm %d warp-slot leak: %d valid + %d free != %d slots",
		s.index, validWarps, len(s.freeWarpSlots), s.cfg.MaxWarpsPerSM)

	// L1 accounting: every demand access resolves to exactly one outcome.
	// Rejected probes are excluded from Accesses by design — the warp
	// retries, so counting them would skew hit rates.
	cs := s.l1.Stats()
	invariant.Checkf(cs.Hits+cs.Misses+cs.Merged == cs.Accesses,
		"sm %d L1 stats leak: hits=%d misses=%d merged=%d accesses=%d",
		s.index, cs.Hits, cs.Misses, cs.Merged, cs.Accesses)
}

// drainQueue advances one memory queue by one line access and reports
// whether it consumed the L1 port this cycle.
func (s *SM) drainQueue(q *[]lsuEntry, now clock.Time, smPeriod clock.Time) bool {
	if len(*q) == 0 || s.outboxFull {
		return false
	}
	e := &(*q)[0]
	line := s.l1.LineAddr(warp.ExtraAddr(e.base, e.nextLine, s.cfg.L1.LineBytes))
	res := s.l1.Access(line)
	if s.listener != nil {
		s.listener.OnL1Access(e.warp, line, res)
	}
	switch res {
	case cache.Reject:
		// MSHRs exhausted: head blocks, back-pressure builds.
		return true
	case cache.Hit:
		s.stats.L1LineAccesses++
		s.wakeQueue.Push(int64(now+clock.Time(s.cfg.L1HitLatency)*smPeriod), e.warp)
	case cache.Miss:
		s.stats.L1LineAccesses++
		s.addWaiter(line, e.warp)
		s.outbox = MemRequest{SM: s.index, Line: line}
		s.outboxFull = true
	case cache.MergedMiss:
		s.stats.L1LineAccesses++
		s.addWaiter(line, e.warp)
	}
	e.nextLine++
	e.linesLeft--
	if e.linesLeft == 0 {
		copy(*q, (*q)[1:])
		*q = (*q)[:len(*q)-1]
	}
	return true
}

func (s *SM) issue(now clock.Time, smPeriod clock.Time) {
	snap := Snapshot{}
	n := len(s.warps)
	bestALU, bestMEM, bestTEX := -1, -1, -1
	lsuSpace := len(s.lsu) < s.cfg.LSUQueueDepth
	texSpace := len(s.tex) < TexQueueDepth
	readyALU, readyMEM := 0, 0

	for off := 0; off < n; off++ {
		ws := (s.rrALU + off) % n
		w := &s.warps[ws]
		if !w.valid || w.finished {
			continue
		}
		if s.blocks[w.block].paused {
			continue
		}
		snap.Active++
		if w.atBarrier {
			snap.Others++
			continue
		}
		if w.pendingLines > 0 || now < w.readyAt {
			snap.Waiting++
			continue
		}
		if !w.hasCur {
			w.cur = w.stream.Next()
			w.hasCur = true
		}
		switch w.cur.Kind {
		case warp.ALU, warp.SFU:
			readyALU++
			if bestALU < 0 {
				bestALU = ws
			}
		case warp.MEM:
			if s.filter != nil && !s.filter(ws) {
				// Policy-throttled warp: counts as waiting, not Xmem.
				snap.Waiting++
				continue
			}
			readyMEM++
			if bestMEM < 0 && lsuSpace {
				bestMEM = ws
			}
		case warp.TEX:
			// Texture requests never surface as Xmem: an unissued ready
			// texture warp is indistinguishable from a waiting one.
			if bestTEX < 0 && texSpace {
				bestTEX = ws
			} else {
				snap.Waiting++
			}
		case warp.BAR:
			s.arriveBarrier(ws, now)
			snap.Others++
		case warp.EXIT:
			s.finishWarp(ws)
			snap.Active--
		}
	}

	issued := 0
	if bestALU >= 0 {
		w := &s.warps[bestALU]
		pipe := telemetry.PipeALU
		if w.cur.Kind == warp.SFU {
			s.stats.IssuedSFU++
			pipe = telemetry.PipeSFU
		} else {
			s.stats.IssuedALU++
		}
		s.probe.Emit(int64(now), telemetry.KindWarpIssue, int16(s.index), int64(bestALU), pipe)
		w.readyAt = now + clock.Time(w.cur.Gap)*smPeriod
		w.hasCur = false
		issued++
		readyALU--
		s.rrALU = (bestALU + 1) % n
	}
	if bestMEM >= 0 {
		w := &s.warps[bestMEM]
		s.lsu = append(s.lsu, lsuEntry{
			warp:      bestMEM,
			base:      w.cur.Addr,
			linesLeft: 1 + int(w.cur.ExtraLines),
		})
		w.pendingLines = 1 + int(w.cur.ExtraLines)
		s.stats.IssuedMEM++
		s.probe.Emit(int64(now), telemetry.KindWarpIssue, int16(s.index),
			int64(bestMEM), telemetry.PipeMEM)
		w.hasCur = false
		issued++
		readyMEM--
		s.rrMEM = (bestMEM + 1) % n
	}
	if bestTEX >= 0 {
		w := &s.warps[bestTEX]
		s.tex = append(s.tex, lsuEntry{
			warp:      bestTEX,
			base:      w.cur.Addr,
			linesLeft: 1 + int(w.cur.ExtraLines),
		})
		w.pendingLines = 1 + int(w.cur.ExtraLines)
		s.stats.IssuedTEX++
		s.probe.Emit(int64(now), telemetry.KindWarpIssue, int16(s.index),
			int64(bestTEX), telemetry.PipeTEX)
		w.hasCur = false
		issued++
	}

	snap.Issued = issued
	snap.XALU = readyALU
	snap.XMEM = readyMEM
	s.snap = snap
	if s.probe.Enabled(telemetry.KindStallCensus) {
		packed := int64(snap.Active)<<24 | int64(snap.Waiting)<<16 |
			int64(snap.XALU)<<8 | int64(snap.XMEM)
		s.probe.Emit(int64(now), telemetry.KindStallCensus, int16(s.index),
			packed, int64(issued))
	}
}

func (s *SM) arriveBarrier(ws int, now clock.Time) {
	w := &s.warps[ws]
	w.atBarrier = true
	b := &s.blocks[w.block]
	b.barWaiting++
	if b.barWaiting < b.liveWarps {
		return
	}
	// Everyone arrived: release the whole block next cycle.
	for _, other := range b.warps {
		ow := &s.warps[other]
		if ow.valid && !ow.finished && ow.atBarrier {
			ow.atBarrier = false
			ow.hasCur = false
			ow.readyAt = now + 1
		}
	}
	b.barWaiting = 0
	s.stats.BarrierReleases++
}

func (s *SM) finishWarp(ws int) {
	w := &s.warps[ws]
	w.finished = true
	s.liveWarps--
	b := &s.blocks[w.block]
	b.liveWarps--
	if b.liveWarps > 0 {
		return
	}
	// Block complete: free its warp slots and the block slot.
	for _, other := range b.warps {
		s.warps[other] = warpCtx{}
		s.freeWarpSlots = append(s.freeWarpSlots, other)
	}
	s.probe.Emit(s.nowPS, telemetry.KindBlockFinish, int16(s.index),
		int64(b.globalID), int64(w.block))
	wasPaused := b.paused
	*b = blockCtx{warps: b.warps[:0]}
	s.residentBlocks--
	if !wasPaused {
		s.activeBlocks--
	}
	s.stats.BlocksFinished++
	// A finished block hands its slot to a paused one (Section IV-B): the
	// reduced concurrency target is maintained without a new GWDE request.
	s.rebalancePausing()
}

// Reset clears all execution state for a new kernel invocation. The L1 is
// flushed (no cross-kernel coherence) and statistics are preserved unless
// resetStats is true.
func (s *SM) Reset(resetStats bool) {
	for i := range s.warps {
		s.warps[i] = warpCtx{}
	}
	for i := range s.blocks {
		s.blocks[i] = blockCtx{}
	}
	s.freeWarpSlots = s.freeWarpSlots[:0]
	for i := s.cfg.MaxWarpsPerSM - 1; i >= 0; i-- {
		s.freeWarpSlots = append(s.freeWarpSlots, i)
	}
	s.l1.Flush()
	//eqlint:allow nodeterminism -- recycles waiter slices into a pool; only capacities survive, never order
	for line, w := range s.l1Waiters {
		s.waiterPool = append(s.waiterPool, w[:0])
		delete(s.l1Waiters, line)
	}
	s.lsu = s.lsu[:0]
	s.tex = s.tex[:0]
	s.outboxFull = false
	s.wakeQueue.Reset()
	s.targetBlocks = s.cfg.MaxBlocksPerSM
	s.rrALU, s.rrMEM = 0, 0
	s.residentBlocks, s.activeBlocks, s.liveWarps = 0, 0, 0
	s.snap = Snapshot{}
	if resetStats {
		s.stats = Stats{}
	}
}
