// Package sm models one streaming multiprocessor of the simulated GPU: the
// instruction buffer and scoreboard (abstracted as per-warp head-instruction
// state), the dual-issue warp scheduler, the load/store unit with its bounded
// queue, the per-SM L1 data cache, the block manager with CTA pausing, and
// the warp-state accounting that feeds Equalizer's four hardware counters.
//
// The SM advances one cycle at a time via Step. All timestamps are absolute
// simulation times (picoseconds) so the SM composes naturally with the
// independently clocked memory system.
package sm

import (
	"fmt"
	"math"
	"math/bits"

	"equalizer/internal/cache"
	"equalizer/internal/clock"
	"equalizer/internal/config"
	"equalizer/internal/events"
	"equalizer/internal/invariant"
	"equalizer/internal/telemetry"
	"equalizer/internal/warp"
)

// State is the execution state of a warp in a given cycle, following the
// classification of Section III-A of the paper.
type State uint8

const (
	// StateUnaccounted covers warps with no valid resident context (slot
	// empty or warp finished).
	StateUnaccounted State = iota
	// StateWaiting warps wait for an operand (usually load data) or a
	// dependency gap to elapse.
	StateWaiting
	// StateIssued warps issued an instruction this cycle.
	StateIssued
	// StateXALU warps are ready for the arithmetic pipeline but were not
	// issued (scheduler issue-width contention).
	StateXALU
	// StateXMEM warps are ready to issue to the memory pipeline but are
	// blocked by LSU back-pressure or the memory issue width.
	StateXMEM
	// StateOthers covers barrier waits.
	StateOthers
	// StatePaused warps belong to a CTA paused by the concurrency
	// controller and are excluded from scheduling and accounting.
	StatePaused
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateUnaccounted:
		return "unaccounted"
	case StateWaiting:
		return "waiting"
	case StateIssued:
		return "issued"
	case StateXALU:
		return "xalu"
	case StateXMEM:
		return "xmem"
	case StateOthers:
		return "others"
	case StatePaused:
		return "paused"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Snapshot is the instantaneous warp-state census of one SM cycle — the
// values Equalizer's hardware counters sample every 128 cycles.
type Snapshot struct {
	// Active counts resident, unpaused, unfinished warps.
	Active int
	// Waiting counts warps waiting on operands.
	Waiting int
	// Issued counts warps that issued this cycle (0..2).
	Issued int
	// XALU counts ready-for-ALU warps that could not issue.
	XALU int
	// XMEM counts ready-for-memory warps that could not issue.
	XMEM int
	// Others counts barrier-blocked warps.
	Others int
}

// MemRequest is an L1 miss leaving the SM towards the memory partition.
type MemRequest struct {
	// SM is the index of the requesting SM.
	SM int
	// Line is the line-aligned address.
	Line cache.Addr
}

// Stats aggregates SM activity over a run.
type Stats struct {
	Cycles          uint64
	IssuedALU       uint64
	IssuedSFU       uint64
	IssuedMEM       uint64
	IssuedTEX       uint64
	L1LineAccesses  uint64
	BlocksLaunched  uint64
	BlocksFinished  uint64
	BarrierReleases uint64
	// ActiveCycles counts cycles with at least one resident block.
	ActiveCycles uint64
}

// IPC returns issued instructions (all pipelines) per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.IssuedALU+s.IssuedSFU+s.IssuedMEM+s.IssuedTEX) / float64(s.Cycles)
}

type warpCtx struct {
	// stream is embedded by value and re-initialised in place at block
	// launch, so warp-slot turnover never allocates.
	stream  warp.Stream
	block   int // resident block slot
	cur     warp.Instr
	hasCur  bool
	readyAt clock.Time
	// pendingLines counts outstanding line returns for the last issued MEM
	// instruction; while > 0 the warp is waiting on data.
	pendingLines int
	atBarrier    bool
	finished     bool
	valid        bool
}

type blockCtx struct {
	valid    bool
	globalID int
	paused   bool
	// warps lists warp slot indices of this block.
	warps []int
	// liveWarps counts unfinished warps.
	liveWarps int
	// barWaiting counts warps currently at the barrier.
	barWaiting int
}

type lsuEntry struct {
	warp int
	base cache.Addr
	// linesLeft counts line accesses still to perform (1 + extras).
	linesLeft int
	// nextLine indexes the next line to access (0 = base).
	nextLine int
}

// IssueFilter lets a policy (e.g. CCWS) veto memory issue for specific warp
// slots. Returning false keeps the warp out of the ready-memory pool for the
// cycle without counting it as Xmem back-pressure.
type IssueFilter func(warpSlot int) bool

// L1Listener observes L1 activity; CCWS uses it for locality scoring.
type L1Listener interface {
	// OnL1Access is called for every line probe with its warp slot and
	// outcome.
	OnL1Access(warpSlot int, line cache.Addr, result cache.AccessResult)
	// OnL1Evict is called when a fill evicts a victim line.
	OnL1Evict(line cache.Addr)
}

// SM is one streaming multiprocessor. Not safe for concurrent use.
type SM struct {
	cfg   config.GPU
	index int

	warps  []warpCtx
	blocks []blockCtx
	// freeWarpSlots holds unused warp slot indices (LIFO).
	freeWarpSlots []int

	l1 *cache.Cache
	// l1Waiters maps a missing line to the warp slots awaiting its fill.
	l1Waiters map[cache.Addr][]int
	// waiterPool recycles the l1Waiters value slices: DeliverLine returns a
	// line's slice here and the next miss reuses it, keeping the per-miss
	// append off the heap in steady state.
	waiterPool [][]int

	lsu []lsuEntry
	// tex is the texture unit's request queue. It is much deeper than the
	// LSU, and warps stalled behind it are classified as waiting rather
	// than Xmem — texture back-pressure is invisible to the LD/ST pipeline
	// (the leuko-1 effect of Section V-B).
	tex []lsuEntry
	// outbox holds at most one miss awaiting interconnect acceptance;
	// outboxFull gates it (a value field, not a pointer, so posting a miss
	// every few cycles does not allocate).
	outbox     MemRequest
	outboxFull bool
	// wakeQueue schedules warp wake-ups (load returns, L1 hit latency);
	// gapQueue schedules dependency-gap expiries so the bitset scheduler can
	// keep gapMask current without re-checking readyAt per warp per cycle.
	// Both are calendar queues: PopReady is O(delivered), and the wake/gap
	// handlers are commutative so within-bucket insertion order is safe.
	wakeQueue *events.Calendar[int]
	gapQueue  *events.Calendar[int]
	// wakeFn/gapFn are the PopReady callbacks, allocated once in New so the
	// per-cycle pops stay off the heap.
	wakeFn func(int)
	gapFn  func(int)

	// Bitset scheduler state. fastIssue enables the mask-based issue path
	// (requires MaxWarpsPerSM <= 64); masksDirty forces a recount from the
	// per-slot state before the next fast issue — set by every mutation the
	// incremental updates do not model (block launch, pausing, the legacy
	// scan's mid-cycle barrier/exit processing).
	fastIssue  bool
	masksDirty bool
	// validMask: valid && !finished. pausedMask: block paused. barrierMask:
	// atBarrier. pendingMask: pendingLines > 0. gapMask: now < readyAt as of
	// the last gapQueue pop. cur*Mask classify fetched head instructions.
	validMask      uint64
	pausedMask     uint64
	barrierMask    uint64
	pendingMask    uint64
	gapMask        uint64
	curALUMask     uint64
	curMEMMask     uint64
	curTEXMask     uint64
	curBarExitMask uint64

	// targetBlocks is the concurrency ceiling set by the running policy;
	// resident unpaused blocks never exceed it.
	targetBlocks int

	// rrALU / rrMEM rotate issue priority for fairness.
	rrALU, rrMEM int

	filter   IssueFilter
	listener L1Listener

	// probe is the telemetry bus (nil = disabled, free); nowPS tracks the
	// current Step time so events emitted outside Step (block launches from
	// the dispatcher, pausing from the policy) carry a timestamp.
	probe *telemetry.Bus
	nowPS int64

	snap  Snapshot
	stats Stats

	// batchMemo* memoise the last batchBoundWalk. Every distance the walk
	// measures shrinks by at most one per elapsed cycle (a warp consumes at
	// most one stream entry per cycle), so bound-minus-elapsed-cycles stays
	// a valid lower bound until a block launch or reset installs new
	// streams. Warp removal (finishWarp) only raises the true minimum, so a
	// stale memo stays conservative there.
	batchMemoBound int64
	batchMemoStamp uint64
	batchMemoValid bool

	residentBlocks int
	activeBlocks   int
	liveWarps      int
}

// wakeCalendarBuckets sizes the wheel: the common wake horizon (L1 hit
// latency, DRAM round trips, dependency gaps) fits a few hundred SM cycles;
// rarer far-future wakes spill to the calendar's overflow heap.
const wakeCalendarBuckets = 256

// New builds an SM with the given index.
func New(cfg config.GPU, index int) *SM {
	s := &SM{
		cfg:          cfg,
		index:        index,
		warps:        make([]warpCtx, cfg.MaxWarpsPerSM),
		blocks:       make([]blockCtx, cfg.MaxBlocksPerSM),
		l1:           cache.MustNew(cfg.L1),
		l1Waiters:    make(map[cache.Addr][]int),
		lsu:          make([]lsuEntry, 0, cfg.LSUQueueDepth),
		targetBlocks: cfg.MaxBlocksPerSM,
		wakeQueue:    events.NewCalendar[int](cfg.SMClockPS, wakeCalendarBuckets),
		gapQueue:     events.NewCalendar[int](cfg.SMClockPS, wakeCalendarBuckets),
		fastIssue:    cfg.MaxWarpsPerSM <= 64,
		masksDirty:   true,
	}
	for i := cfg.MaxWarpsPerSM - 1; i >= 0; i-- {
		s.freeWarpSlots = append(s.freeWarpSlots, i)
	}
	s.wakeFn = s.wakeWarp
	s.gapFn = s.expireGap
	return s
}

// SetFastIssue enables or disables the bitset issue path; disabling it (the
// -fastforward escape hatch) restores the per-cycle linear scan verbatim.
// The request is ignored when the hardware configuration exceeds the 64-slot
// mask width. Call between runs, not mid-invocation.
func (s *SM) SetFastIssue(enabled bool) {
	s.fastIssue = enabled && s.cfg.MaxWarpsPerSM <= 64
	s.masksDirty = true
}

// FastIssueEnabled reports whether the bitset issue path is active.
func (s *SM) FastIssueEnabled() bool { return s.fastIssue }

// wakeWarp is the wakeQueue PopReady handler: one outstanding line (or the
// dependency stand-in pushed by an L1 hit) arrived for the warp.
func (s *SM) wakeWarp(ws int) {
	w := &s.warps[ws]
	if w.valid && w.pendingLines > 0 {
		w.pendingLines--
		if w.pendingLines == 0 && !s.masksDirty {
			s.pendingMask &^= 1 << uint(ws)
		}
	}
}

// expireGap is the gapQueue PopReady handler: a dependency gap elapsed. The
// readyAt re-check drops entries made stale by slot reuse or a barrier
// release rewriting readyAt (a newer entry exists in that case).
func (s *SM) expireGap(ws int) {
	if s.masksDirty {
		return
	}
	w := &s.warps[ws]
	if w.valid && !w.finished && clock.Time(s.nowPS) >= w.readyAt {
		s.gapMask &^= 1 << uint(ws)
	}
}

// Index returns the SM's position in the GPU.
func (s *SM) Index() int { return s.index }

// L1 exposes the data cache (read-mostly: statistics, geometry).
func (s *SM) L1() *cache.Cache { return s.l1 }

// Stats returns accumulated statistics.
func (s *SM) Stats() Stats { return s.stats }

// Snapshot returns the warp-state census of the last completed cycle.
func (s *SM) Snapshot() Snapshot { return s.snap }

// SetIssueFilter installs (or clears, with nil) a memory-issue veto.
func (s *SM) SetIssueFilter(f IssueFilter) { s.filter = f }

// SetL1Listener installs (or clears, with nil) an L1 activity observer.
func (s *SM) SetL1Listener(l L1Listener) { s.listener = l }

// Observed reports whether a policy hook (issue filter or L1 listener) is
// installed. Hooked SMs may share policy state with their siblings — CCWS's
// locality scoring does — so the machine's shard engine refuses to step them
// concurrently and falls back to the sequential loop.
func (s *SM) Observed() bool { return s.filter != nil || s.listener != nil }

// SetProbe wires the SM (and its L1 cache) to a telemetry bus. The SM emits
// warp-issue events, the per-cycle stall census, block launch/finish and
// CTA pause/unpause transitions; the L1 emits access and eviction events.
// A nil bus detaches everything.
func (s *SM) SetProbe(b *telemetry.Bus) {
	s.probe = b
	if b == nil {
		s.l1.SetProbe(nil, 0, 0, 0, nil)
		return
	}
	s.l1.SetProbe(b, telemetry.KindL1Access, telemetry.KindL1Evict,
		int16(s.index), func() int64 { return s.nowPS })
}

// ResidentBlocks returns the number of blocks currently occupying slots.
func (s *SM) ResidentBlocks() int { return s.residentBlocks }

// ActiveBlocks returns resident minus paused blocks.
func (s *SM) ActiveBlocks() int { return s.activeBlocks }

// LiveWarps returns resident unfinished warps (paused included).
func (s *SM) LiveWarps() int { return s.liveWarps }

// TargetBlocks returns the current concurrency ceiling.
func (s *SM) TargetBlocks() int { return s.targetBlocks }

// SetTargetBlocks changes the concurrency ceiling, pausing or unpausing
// resident blocks as needed. The ceiling is clamped to [1, MaxBlocksPerSM].
func (s *SM) SetTargetBlocks(n int) {
	if n < 1 {
		n = 1
	}
	if n > s.cfg.MaxBlocksPerSM {
		n = s.cfg.MaxBlocksPerSM
	}
	s.targetBlocks = n
	s.rebalancePausing()
}

// rebalancePausing pauses the youngest blocks above the ceiling and unpauses
// the oldest paused blocks below it.
func (s *SM) rebalancePausing() {
	s.masksDirty = true
	// Pause from the highest slot downwards while above target.
	for i := len(s.blocks) - 1; i >= 0 && s.activeBlocks > s.targetBlocks; i-- {
		b := &s.blocks[i]
		if b.valid && !b.paused {
			b.paused = true
			s.activeBlocks--
			s.probe.Emit(s.nowPS, telemetry.KindCTAPause, int16(s.index),
				int64(i), int64(b.globalID))
		}
	}
	// Unpause from the lowest slot upwards while below target.
	for i := 0; i < len(s.blocks) && s.activeBlocks < s.targetBlocks; i++ {
		b := &s.blocks[i]
		if b.valid && b.paused {
			b.paused = false
			s.activeBlocks++
			s.probe.Emit(s.nowPS, telemetry.KindCTAUnpause, int16(s.index),
				int64(i), int64(b.globalID))
		}
	}
}

// WantsBlock reports whether the SM can accept another thread block of
// wcta warps: a free block slot, enough warp slots, and headroom under the
// concurrency ceiling.
func (s *SM) WantsBlock(wcta int) bool {
	if s.activeBlocks >= s.targetBlocks || s.residentBlocks >= s.cfg.MaxBlocksPerSM {
		return false
	}
	return len(s.freeWarpSlots) >= wcta
}

// LaunchBlock installs a thread block of wcta warps running prof, with
// grid-global id globalID. It panics when WantsBlock would be false —
// callers own admission control.
func (s *SM) LaunchBlock(prof *warp.Profile, globalID, wcta int) {
	if !s.WantsBlock(wcta) {
		panic(fmt.Sprintf("sm %d: LaunchBlock without capacity", s.index))
	}
	slot := -1
	for i := range s.blocks {
		if !s.blocks[i].valid {
			slot = i
			break
		}
	}
	if slot < 0 {
		panic(fmt.Sprintf("sm %d: no free block slot despite WantsBlock", s.index))
	}
	b := &s.blocks[slot]
	*b = blockCtx{valid: true, globalID: globalID, warps: b.warps[:0], liveWarps: wcta}
	for w := 0; w < wcta; w++ {
		ws := s.freeWarpSlots[len(s.freeWarpSlots)-1]
		s.freeWarpSlots = s.freeWarpSlots[:len(s.freeWarpSlots)-1]
		wc := &s.warps[ws]
		*wc = warpCtx{block: slot, valid: true}
		wc.stream.Init(prof, globalID*wcta+w)
		b.warps = append(b.warps, ws)
	}
	s.residentBlocks++
	s.activeBlocks++
	s.liveWarps += wcta
	s.masksDirty = true
	s.batchMemoValid = false // fresh streams invalidate the look-ahead memo
	s.stats.BlocksLaunched++
	s.probe.Emit(s.nowPS, telemetry.KindBlockLaunch, int16(s.index),
		int64(globalID), int64(slot)<<16|int64(wcta))
	// A newly launched block may immediately exceed the ceiling if the
	// policy lowered it since admission was checked.
	if s.activeBlocks > s.targetBlocks {
		s.rebalancePausing()
	}
}

// DeliverLine completes an outstanding miss for the given line: the L1 is
// filled and every waiting warp is scheduled to wake at time at.
func (s *SM) DeliverLine(line cache.Addr, at clock.Time) {
	s.l1.Fill(line)
	if s.listener != nil {
		if victim, ok := s.l1.LastVictim(); ok {
			s.listener.OnL1Evict(victim)
		}
	}
	waiters := s.l1Waiters[line]
	delete(s.l1Waiters, line)
	for _, ws := range waiters {
		s.wakeQueue.Push(int64(at), ws)
	}
	if cap(waiters) > 0 {
		s.waiterPool = append(s.waiterPool, waiters[:0])
	}
}

// addWaiter records a warp slot waiting on a line, reusing a pooled slice
// for the line's first waiter.
func (s *SM) addWaiter(line cache.Addr, ws int) {
	w, ok := s.l1Waiters[line]
	if !ok && len(s.waiterPool) > 0 {
		w = s.waiterPool[len(s.waiterPool)-1]
		s.waiterPool = s.waiterPool[:len(s.waiterPool)-1]
	}
	s.l1Waiters[line] = append(w, ws)
}

// OutboxFull reports whether a miss is stuck waiting for the interconnect.
func (s *SM) OutboxFull() bool { return s.outboxFull }

// TakeOutbox hands the pending miss to the interconnect layer; ok is false
// when there is none.
func (s *SM) TakeOutbox() (MemRequest, bool) {
	if !s.outboxFull {
		return MemRequest{}, false
	}
	s.outboxFull = false
	return s.outbox, true
}

// TexQueueDepth is the texture unit's request-queue capacity; deep enough
// that texture streams rarely exert visible back-pressure.
const TexQueueDepth = 32

// Idle reports whether the SM holds no work at all. The gapQueue term is
// provably redundant — a gap entry always belongs to an unfinished resident
// warp, and pops before that warp can fetch its EXIT — but is kept so Idle
// never reports true with any queue populated.
func (s *SM) Idle() bool {
	return s.residentBlocks == 0 && len(s.lsu) == 0 && len(s.tex) == 0 &&
		!s.outboxFull && s.wakeQueue.Len() == 0 && s.gapQueue.Len() == 0
}

// Step advances the SM by one cycle ending at time now (the current SM-domain
// cycle boundary). smPeriod is the current SM clock period, used to convert
// latencies expressed in SM cycles into absolute times.
//
//eqlint:cycle-owner
//eqlint:hotpath
func (s *SM) Step(now clock.Time, smPeriod clock.Time) {
	s.nowPS = int64(now)
	s.stats.Cycles++
	if s.residentBlocks > 0 {
		s.stats.ActiveCycles++
	}

	// 1. Wake warps whose data or dependency gap arrived.
	s.wakeQueue.PopReady(int64(now), s.wakeFn)
	if s.fastIssue {
		s.gapQueue.PopReady(int64(now), s.gapFn)
	}

	// 2. Drain the LSU head into the L1 (one line access per cycle); the
	// texture queue shares the L1 port on cycles the LSU leaves it idle.
	if !s.drainQueue(&s.lsu, now, smPeriod) {
		s.drainQueue(&s.tex, now, smPeriod)
	}

	// 3. Issue: classify warps, pick one ALU and one MEM candidate. The
	// bitset path handles the common cycle; it bails to the legacy linear
	// scan for the order-dependent cases (barrier/exit heads, an installed
	// issue filter), which leaves the masks dirty for a recount.
	if s.fastIssue && s.filter == nil {
		if s.masksDirty {
			s.recomputeMasks(now)
		}
		if !s.issueFast(now, smPeriod) {
			s.issue(now, smPeriod)
		}
	} else {
		s.issue(now, smPeriod)
	}

	if invariant.Enabled {
		s.verifyInvariants()
	}
}

// recomputeMasks rebuilds every scheduler mask from the authoritative
// per-slot state, at census time `now`. Warps whose readyAt lies in the
// future already have a gapQueue entry (pushed when readyAt was written), so
// the rebuilt gapMask bits will be cleared on schedule.
func (s *SM) recomputeMasks(now clock.Time) {
	var valid, paused, barrier, pending, gap, alu, mem, tex, barExit uint64
	for i := range s.warps {
		w := &s.warps[i]
		if !w.valid || w.finished {
			continue
		}
		bit := uint64(1) << uint(i)
		valid |= bit
		if s.blocks[w.block].paused {
			paused |= bit
		}
		if w.atBarrier {
			barrier |= bit
		}
		if w.pendingLines > 0 {
			pending |= bit
		}
		if now < w.readyAt {
			gap |= bit
		}
		if w.hasCur {
			switch w.cur.Kind {
			case warp.ALU, warp.SFU:
				alu |= bit
			case warp.MEM:
				mem |= bit
			case warp.TEX:
				tex |= bit
			default:
				barExit |= bit
			}
		}
	}
	s.validMask, s.pausedMask, s.barrierMask = valid, paused, barrier
	s.pendingMask, s.gapMask = pending, gap
	s.curALUMask, s.curMEMMask, s.curTEXMask, s.curBarExitMask = alu, mem, tex, barExit
	s.masksDirty = false
}

// firstFromRR returns the lowest-index set bit of mask at or after the
// round-robin origin rrALU, wrapping; -1 when mask is empty. This reproduces
// the legacy scan's "first candidate in scan order" selection.
func (s *SM) firstFromRR(mask uint64) int {
	if mask == 0 {
		return -1
	}
	if hi := mask >> uint(s.rrALU) << uint(s.rrALU); hi != 0 {
		return bits.TrailingZeros64(hi)
	}
	return bits.TrailingZeros64(mask)
}

// fetchHeads pulls the next instruction for every ready warp without one, in
// round-robin scan order, classifying each into the cur*Mask sets. It stops
// and reports false at the first barrier or exit head: processing those
// mutates mid-scan state (block-wide barrier release, block completion and
// unpausing) that only the legacy scan models, and every warp fetched so far
// is exactly what the legacy scan would have fetched before reaching it.
func (s *SM) fetchHeads(toFetch uint64) bool {
	hi := toFetch >> uint(s.rrALU) << uint(s.rrALU)
	lo := toFetch &^ (^uint64(0) << uint(s.rrALU))
	for _, m := range [2]uint64{hi, lo} {
		for m != 0 {
			ws := bits.TrailingZeros64(m)
			m &= m - 1
			w := &s.warps[ws]
			w.cur = w.stream.Next()
			w.hasCur = true
			bit := uint64(1) << uint(ws)
			switch w.cur.Kind {
			case warp.ALU, warp.SFU:
				s.curALUMask |= bit
			case warp.MEM:
				s.curMEMMask |= bit
			case warp.TEX:
				s.curTEXMask |= bit
			default:
				s.curBarExitMask |= bit
				return false
			}
		}
	}
	return true
}

// issueFast is the bitset issue path: census by popcount, candidate selection
// by find-first-set. It reports false — leaving all per-slot mutations it
// made consistent — when the cycle needs the legacy scan.
func (s *SM) issueFast(now clock.Time, smPeriod clock.Time) bool {
	active := s.validMask &^ s.pausedMask
	ready := active &^ (s.barrierMask | s.pendingMask | s.gapMask)
	if toFetch := ready &^ (s.curALUMask | s.curMEMMask | s.curTEXMask | s.curBarExitMask); toFetch != 0 {
		if !s.fetchHeads(toFetch) {
			return false
		}
	}
	if ready&s.curBarExitMask != 0 {
		return false
	}

	snap := Snapshot{Active: bits.OnesCount64(active)}
	snap.Others = bits.OnesCount64(active & s.barrierMask)
	snap.Waiting = snap.Active - snap.Others - bits.OnesCount64(ready)

	readyALUm := ready & s.curALUMask
	readyMEMm := ready & s.curMEMMask
	readyTEXm := ready & s.curTEXMask
	readyALU := bits.OnesCount64(readyALUm)
	readyMEM := bits.OnesCount64(readyMEMm)
	bestALU := s.firstFromRR(readyALUm)
	bestMEM := -1
	if len(s.lsu) < s.cfg.LSUQueueDepth {
		bestMEM = s.firstFromRR(readyMEMm)
	}
	bestTEX := -1
	ntex := bits.OnesCount64(readyTEXm)
	if len(s.tex) < TexQueueDepth && ntex > 0 {
		bestTEX = s.firstFromRR(readyTEXm)
		snap.Waiting += ntex - 1
	} else {
		// Texture back-pressure (or no candidates): unissued ready texture
		// warps are indistinguishable from waiting ones.
		snap.Waiting += ntex
	}

	s.finishIssue(now, smPeriod, snap, bestALU, bestMEM, bestTEX, readyALU, readyMEM)
	return true
}

// verifyInvariants asserts the SM conservation laws at a cycle boundary.
// Only compiled in under the eqdebug build tag; the cheap O(1) checks run
// every cycle and the full recount every recountInterval cycles.
func (s *SM) verifyInvariants() {
	// Census conservation: every active warp is in exactly one bucket.
	snap := s.snap
	invariant.Checkf(snap.Active == snap.Waiting+snap.Issued+snap.XALU+snap.XMEM+snap.Others,
		"sm %d warp census leak: active=%d waiting=%d issued=%d xalu=%d xmem=%d others=%d",
		s.index, snap.Active, snap.Waiting, snap.Issued, snap.XALU, snap.XMEM, snap.Others)

	// Block accounting: resident blocks within hardware bounds, and the
	// paused count is exactly the overshoot past the policy's ceiling
	// (rebalancePausing's three-way contract with the dispatcher).
	invariant.Checkf(0 <= s.activeBlocks && s.activeBlocks <= s.residentBlocks &&
		s.residentBlocks <= s.cfg.MaxBlocksPerSM,
		"sm %d block counts out of range: active=%d resident=%d max=%d",
		s.index, s.activeBlocks, s.residentBlocks, s.cfg.MaxBlocksPerSM)
	wantPaused := s.residentBlocks - s.targetBlocks
	if wantPaused < 0 {
		wantPaused = 0
	}
	invariant.Checkf(s.residentBlocks-s.activeBlocks == wantPaused,
		"sm %d pausing drift: paused=%d, want max(0, resident=%d - target=%d)",
		s.index, s.residentBlocks-s.activeBlocks, s.residentBlocks, s.targetBlocks)

	if s.stats.Cycles%recountInterval == 0 {
		s.recountInvariants()
	}
}

// recountInterval spaces the O(warps+blocks) ground-truth recount; a power
// of two well below the epoch length so drift is caught within an epoch.
const recountInterval = 128

// recountInvariants recomputes the cached census counters from the
// authoritative per-slot state and checks cache-statistics conservation.
func (s *SM) recountInvariants() {
	resident, active, live := 0, 0, 0
	for i := range s.blocks {
		b := &s.blocks[i]
		if !b.valid {
			continue
		}
		resident++
		if !b.paused {
			active++
		}
		live += b.liveWarps
		invariant.Checkf(b.barWaiting <= b.liveWarps,
			"sm %d block %d: %d warps at barrier but only %d live",
			s.index, i, b.barWaiting, b.liveWarps)
	}
	invariant.Checkf(resident == s.residentBlocks,
		"sm %d resident-block drift: cached %d, recount %d", s.index, s.residentBlocks, resident)
	invariant.Checkf(active == s.activeBlocks,
		"sm %d active-block drift: cached %d, recount %d", s.index, s.activeBlocks, active)
	invariant.Checkf(live == s.liveWarps,
		"sm %d live-warp drift: cached %d, recount %d", s.index, s.liveWarps, live)

	// Warp-slot conservation: every slot is either free or holds a valid
	// context.
	validWarps := 0
	for i := range s.warps {
		if s.warps[i].valid {
			validWarps++
		}
	}
	invariant.Checkf(validWarps+len(s.freeWarpSlots) == s.cfg.MaxWarpsPerSM,
		"sm %d warp-slot leak: %d valid + %d free != %d slots",
		s.index, validWarps, len(s.freeWarpSlots), s.cfg.MaxWarpsPerSM)

	// Fast-path mask conservation: clean scheduler bitsets must equal a
	// recount from the authoritative slot state. gapMask is only checked
	// for containment — its exact value depends on the current cycle time,
	// and stale bits are re-validated against readyAt when they pop.
	if s.fastIssue && !s.masksDirty {
		var valid, paused, barrier, pending, alu, mem, tex, barExit uint64
		for i := range s.warps {
			w := &s.warps[i]
			if !w.valid || w.finished {
				continue
			}
			bit := uint64(1) << uint(i)
			valid |= bit
			if s.blocks[w.block].paused {
				paused |= bit
			}
			if w.atBarrier {
				barrier |= bit
			}
			if w.pendingLines > 0 {
				pending |= bit
			}
			if w.hasCur {
				switch w.cur.Kind {
				case warp.ALU, warp.SFU:
					alu |= bit
				case warp.MEM:
					mem |= bit
				case warp.TEX:
					tex |= bit
				default:
					barExit |= bit
				}
			}
		}
		invariant.Checkf(valid == s.validMask,
			"sm %d validMask drift: cached %#x, recount %#x", s.index, s.validMask, valid)
		invariant.Checkf(paused == s.pausedMask,
			"sm %d pausedMask drift: cached %#x, recount %#x", s.index, s.pausedMask, paused)
		invariant.Checkf(barrier == s.barrierMask,
			"sm %d barrierMask drift: cached %#x, recount %#x", s.index, s.barrierMask, barrier)
		invariant.Checkf(pending == s.pendingMask,
			"sm %d pendingMask drift: cached %#x, recount %#x", s.index, s.pendingMask, pending)
		invariant.Checkf(alu == s.curALUMask && mem == s.curMEMMask &&
			tex == s.curTEXMask && barExit == s.curBarExitMask,
			"sm %d head-class mask drift: cached alu=%#x mem=%#x tex=%#x barexit=%#x, recount %#x/%#x/%#x/%#x",
			s.index, s.curALUMask, s.curMEMMask, s.curTEXMask, s.curBarExitMask,
			alu, mem, tex, barExit)
		invariant.Checkf(s.gapMask&^valid == 0,
			"sm %d gapMask escapes valid warps: gap=%#x valid=%#x", s.index, s.gapMask, valid)
	}

	// L1 accounting: every demand access resolves to exactly one outcome.
	// Rejected probes are excluded from Accesses by design — the warp
	// retries, so counting them would skew hit rates.
	cs := s.l1.Stats()
	invariant.Checkf(cs.Hits+cs.Misses+cs.Merged == cs.Accesses,
		"sm %d L1 stats leak: hits=%d misses=%d merged=%d accesses=%d",
		s.index, cs.Hits, cs.Misses, cs.Merged, cs.Accesses)
}

// drainQueue advances one memory queue by one line access and reports
// whether it consumed the L1 port this cycle.
func (s *SM) drainQueue(q *[]lsuEntry, now clock.Time, smPeriod clock.Time) bool {
	if len(*q) == 0 || s.outboxFull {
		return false
	}
	e := &(*q)[0]
	line := s.l1.LineAddr(warp.ExtraAddr(e.base, e.nextLine, s.cfg.L1.LineBytes))
	res := s.l1.Access(line)
	if s.listener != nil {
		s.listener.OnL1Access(e.warp, line, res)
	}
	switch res {
	case cache.Reject:
		// MSHRs exhausted: head blocks, back-pressure builds.
		return true
	case cache.Hit:
		s.stats.L1LineAccesses++
		s.wakeQueue.Push(int64(now+clock.Time(s.cfg.L1HitLatency)*smPeriod), e.warp)
	case cache.Miss:
		s.stats.L1LineAccesses++
		s.addWaiter(line, e.warp)
		s.outbox = MemRequest{SM: s.index, Line: line}
		s.outboxFull = true
	case cache.MergedMiss:
		s.stats.L1LineAccesses++
		s.addWaiter(line, e.warp)
	}
	e.nextLine++
	e.linesLeft--
	if e.linesLeft == 0 {
		copy(*q, (*q)[1:])
		*q = (*q)[:len(*q)-1]
	}
	return true
}

func (s *SM) issue(now clock.Time, smPeriod clock.Time) {
	// The linear scan's mid-cycle mutations (barrier arrival, block
	// completion and the unpausing it triggers) are not tracked
	// incrementally: leave the masks dirty for the next fast-path recount.
	s.masksDirty = true
	snap := Snapshot{}
	n := len(s.warps)
	bestALU, bestMEM, bestTEX := -1, -1, -1
	lsuSpace := len(s.lsu) < s.cfg.LSUQueueDepth
	texSpace := len(s.tex) < TexQueueDepth
	readyALU, readyMEM := 0, 0

	for off := 0; off < n; off++ {
		ws := (s.rrALU + off) % n
		w := &s.warps[ws]
		if !w.valid || w.finished {
			continue
		}
		if s.blocks[w.block].paused {
			continue
		}
		snap.Active++
		if w.atBarrier {
			snap.Others++
			continue
		}
		if w.pendingLines > 0 || now < w.readyAt {
			snap.Waiting++
			continue
		}
		if !w.hasCur {
			w.cur = w.stream.Next()
			w.hasCur = true
		}
		switch w.cur.Kind {
		case warp.ALU, warp.SFU:
			readyALU++
			if bestALU < 0 {
				bestALU = ws
			}
		case warp.MEM:
			//eqlint:allow shardphase -- filter is this SM's own policy hook (see SetFilter); policies keep per-SM state only
			if s.filter != nil && !s.filter(ws) {
				// Policy-throttled warp: counts as waiting, not Xmem.
				snap.Waiting++
				continue
			}
			readyMEM++
			if bestMEM < 0 && lsuSpace {
				bestMEM = ws
			}
		case warp.TEX:
			// Texture requests never surface as Xmem: an unissued ready
			// texture warp is indistinguishable from a waiting one.
			if bestTEX < 0 && texSpace {
				bestTEX = ws
			} else {
				snap.Waiting++
			}
		case warp.BAR:
			s.arriveBarrier(ws, now)
			snap.Others++
		case warp.EXIT:
			s.finishWarp(ws)
			snap.Active--
		}
	}

	s.finishIssue(now, smPeriod, snap, bestALU, bestMEM, bestTEX, readyALU, readyMEM)
}

// finishIssue commits the selected candidates, updates the round-robin
// origins, completes the census snapshot and emits telemetry — the issue tail
// shared by the linear scan and the bitset path. Mask maintenance is skipped
// while masksDirty (the next fast cycle recounts anyway), but gapQueue
// entries are pushed at every readyAt write regardless, so a recount never
// needs to reconstruct the queue.
func (s *SM) finishIssue(now clock.Time, smPeriod clock.Time, snap Snapshot,
	bestALU, bestMEM, bestTEX, readyALU, readyMEM int) {
	n := len(s.warps)
	issued := 0
	if bestALU >= 0 {
		w := &s.warps[bestALU]
		pipe := telemetry.PipeALU
		if w.cur.Kind == warp.SFU {
			s.stats.IssuedSFU++
			pipe = telemetry.PipeSFU
		} else {
			s.stats.IssuedALU++
		}
		s.probe.Emit(int64(now), telemetry.KindWarpIssue, int16(s.index), int64(bestALU), pipe)
		w.readyAt = now + clock.Time(w.cur.Gap)*smPeriod
		w.hasCur = false
		if s.fastIssue && w.readyAt > now {
			s.gapQueue.Push(int64(w.readyAt), bestALU)
			if !s.masksDirty {
				s.gapMask |= 1 << uint(bestALU)
			}
		}
		if !s.masksDirty {
			s.curALUMask &^= 1 << uint(bestALU)
		}
		issued++
		readyALU--
		s.rrALU = (bestALU + 1) % n
	}
	if bestMEM >= 0 {
		w := &s.warps[bestMEM]
		s.lsu = append(s.lsu, lsuEntry{
			warp:      bestMEM,
			base:      w.cur.Addr,
			linesLeft: 1 + int(w.cur.ExtraLines),
		})
		w.pendingLines = 1 + int(w.cur.ExtraLines)
		s.stats.IssuedMEM++
		s.probe.Emit(int64(now), telemetry.KindWarpIssue, int16(s.index),
			int64(bestMEM), telemetry.PipeMEM)
		w.hasCur = false
		if !s.masksDirty {
			s.curMEMMask &^= 1 << uint(bestMEM)
			s.pendingMask |= 1 << uint(bestMEM)
		}
		issued++
		readyMEM--
		s.rrMEM = (bestMEM + 1) % n
	}
	if bestTEX >= 0 {
		w := &s.warps[bestTEX]
		s.tex = append(s.tex, lsuEntry{
			warp:      bestTEX,
			base:      w.cur.Addr,
			linesLeft: 1 + int(w.cur.ExtraLines),
		})
		w.pendingLines = 1 + int(w.cur.ExtraLines)
		s.stats.IssuedTEX++
		s.probe.Emit(int64(now), telemetry.KindWarpIssue, int16(s.index),
			int64(bestTEX), telemetry.PipeTEX)
		w.hasCur = false
		if !s.masksDirty {
			s.curTEXMask &^= 1 << uint(bestTEX)
			s.pendingMask |= 1 << uint(bestTEX)
		}
		issued++
	}

	snap.Issued = issued
	snap.XALU = readyALU
	snap.XMEM = readyMEM
	s.snap = snap
	if s.probe.Enabled(telemetry.KindStallCensus) {
		packed := int64(snap.Active)<<24 | int64(snap.Waiting)<<16 |
			int64(snap.XALU)<<8 | int64(snap.XMEM)
		s.probe.Emit(int64(now), telemetry.KindStallCensus, int16(s.index),
			packed, int64(issued))
	}
}

// NextEventAt reports whether the SM is quiescent — no warp can issue, fetch
// or touch the L1 before some future event — and, when it is, the earliest
// absolute time (picoseconds) at which its state can next change. A cycle
// boundary strictly before that time is a pure bookkeeping cycle: census,
// cycle counters and telemetry, all computable in closed form by FastForward.
func (s *SM) NextEventAt() (int64, bool) {
	// The fast path's masks are the quiescence witness; without them (legacy
	// mode, an installed filter, or a pending recount) every cycle must run.
	if !s.fastIssue || s.filter != nil || s.masksDirty {
		return 0, false
	}
	ready := (s.validMask &^ s.pausedMask) &^ (s.barrierMask | s.pendingMask | s.gapMask)
	if ready != 0 {
		return 0, false
	}
	// A non-empty LSU or texture queue with a free outbox re-probes the L1
	// every cycle (even a Reject-blocked head has MSHR side effects); a full
	// outbox gates both queues off entirely.
	if (len(s.lsu) > 0 || len(s.tex) > 0) && !s.outboxFull {
		return 0, false
	}
	next := int64(math.MaxInt64)
	if at, ok := s.wakeQueue.NextAt(); ok && at < next {
		next = at
	}
	if at, ok := s.gapQueue.NextAt(); ok && at < next {
		next = at
	}
	return next, true
}

// BatchBound returns a lower bound on how many upcoming cycles this SM can
// run without touching the memory boundary or retiring a warp: for every k
// up to the bound, cycles now+1 .. now+k issue no L1 probe, post no miss to
// the outbox, and process no EXIT. (A MEM/TEX issue at exactly cycle
// now+bound is allowed: the LSU/texture queues are empty here, so its L1
// probe runs in cycle now+bound+1, after the window.) The machine's
// idle-window batcher uses the minimum over all SMs as the window length it
// may step without interleaving memory-domain cycles, block dispatch or the
// done check.
//
// The bound is entry-counting: a warp consumes at most one stream entry per
// cycle, so its next memory access is at least LookAhead-distance cycles
// away and its EXIT at least remaining-entries+1 cycles away, whatever its
// wait/wake/barrier schedule does in between. Paused warps are included
// (conservative: unpausing mid-window cannot shorten the true distance
// below the reported bound). Zero means "cannot batch this cycle".
//
//eqlint:hotpath
func (s *SM) BatchBound() int64 {
	// A populated LSU/texture queue probes the L1 next cycle, a full outbox
	// is pending memory traffic, and an issue filter (CCWS) can reorder
	// issue in ways the entry count does not model.
	if len(s.lsu) > 0 || len(s.tex) > 0 || s.outboxFull || s.filter != nil {
		return 0
	}
	// O(1) early-out: a ready warp holding a fetched MEM/TEX issues next
	// cycle.
	if s.fastIssue && !s.masksDirty {
		ready := (s.validMask &^ s.pausedMask) &^ (s.barrierMask | s.pendingMask | s.gapMask)
		if ready&(s.curMEMMask|s.curTEXMask) != 0 {
			return 1
		}
	}
	if s.batchMemoValid {
		if est := s.batchMemoBound - int64(s.stats.Cycles-s.batchMemoStamp); est >= 2 {
			return est
		}
	}
	bound := s.batchBoundWalk()
	s.batchMemoBound = bound
	s.batchMemoStamp = s.stats.Cycles
	s.batchMemoValid = true
	return bound
}

// batchBoundWalk recomputes the batch bound from every resident warp's
// stream look-ahead. An SM with no unfinished warps reports the NoMemAhead
// sentinel (the machine caps the window elsewhere).
func (s *SM) batchBoundWalk() int64 {
	bound := int64(warp.NoMemAhead)
	for i := range s.warps {
		w := &s.warps[i]
		if !w.valid || w.finished {
			continue
		}
		dm, de := w.stream.LookAhead()
		if w.hasCur {
			switch w.cur.Kind {
			case warp.EXIT:
				return 0
			case warp.MEM, warp.TEX:
				// The fetched access can issue next cycle.
				dm, de = 1, de+1
			default:
				// ALU/SFU/BAR: the fetched entry issues before the stream
				// advances, pushing every look-ahead distance out by one.
				dm, de = dm+1, de+1
			}
		}
		wb := dm
		if de < wb {
			wb = de
		}
		if wb < bound {
			bound = wb
			if bound < 2 {
				return bound
			}
		}
	}
	return bound
}

// FastForward retires n consecutive quiescent cycles in closed form. The
// caller (the machine's fast-forward engine) guarantees NextEventAt reported
// quiescent and that every boundary firstPS, firstPS+stridePS, ...,
// firstPS+(n-1)*stridePS lies strictly before the reported event time, with
// no VF switch in the span (stridePS constant). Counters and census snapshot
// end up exactly as n Step calls would leave them. Census telemetry is NOT
// emitted here: the legacy loop interleaves one event per SM per cycle, so
// the machine replays that order across SMs via EmitCensus.
//
//eqlint:cycle-owner
//eqlint:hotpath
func (s *SM) FastForward(n, firstPS, stridePS int64) {
	s.stats.Cycles += uint64(n)
	if s.residentBlocks > 0 {
		s.stats.ActiveCycles += uint64(n)
	}
	s.nowPS = firstPS + (n-1)*stridePS

	// The census of a quiescent cycle: no warp issues or is pipe-ready, so
	// every active warp is either at a barrier (Others) or waiting.
	active := s.validMask &^ s.pausedMask
	snap := Snapshot{Active: bits.OnesCount64(active)}
	snap.Others = bits.OnesCount64(active & s.barrierMask)
	snap.Waiting = snap.Active - snap.Others
	s.snap = snap
	if invariant.Enabled {
		s.verifyInvariants()
	}
}

// EmitCensus emits the current census snapshot as a stall-census event at
// time ps, exactly as the per-cycle issue path would. The fast-forward
// engine calls it once per SM per skipped cycle, iterating cycles outermost
// and SMs innermost, so the event stream interleaves identically to the
// legacy loop's.
//
//eqlint:hotpath
func (s *SM) EmitCensus(ps int64) {
	snap := s.snap
	packed := int64(snap.Active)<<24 | int64(snap.Waiting)<<16 |
		int64(snap.XALU)<<8 | int64(snap.XMEM)
	s.probe.Emit(ps, telemetry.KindStallCensus, int16(s.index),
		packed, int64(snap.Issued))
}

func (s *SM) arriveBarrier(ws int, now clock.Time) {
	w := &s.warps[ws]
	w.atBarrier = true
	b := &s.blocks[w.block]
	b.barWaiting++
	if b.barWaiting < b.liveWarps {
		return
	}
	// Everyone arrived: release the whole block next cycle.
	for _, other := range b.warps {
		ow := &s.warps[other]
		if ow.valid && !ow.finished && ow.atBarrier {
			ow.atBarrier = false
			ow.hasCur = false
			ow.readyAt = now + 1
			if s.fastIssue {
				s.gapQueue.Push(int64(now+1), other)
			}
		}
	}
	b.barWaiting = 0
	s.stats.BarrierReleases++
}

func (s *SM) finishWarp(ws int) {
	w := &s.warps[ws]
	w.finished = true
	s.liveWarps--
	b := &s.blocks[w.block]
	b.liveWarps--
	if b.liveWarps > 0 {
		return
	}
	// Block complete: free its warp slots and the block slot.
	for _, other := range b.warps {
		s.warps[other] = warpCtx{}
		s.freeWarpSlots = append(s.freeWarpSlots, other)
	}
	s.probe.Emit(s.nowPS, telemetry.KindBlockFinish, int16(s.index),
		int64(b.globalID), int64(w.block))
	wasPaused := b.paused
	*b = blockCtx{warps: b.warps[:0]}
	s.residentBlocks--
	if !wasPaused {
		s.activeBlocks--
	}
	s.stats.BlocksFinished++
	// A finished block hands its slot to a paused one (Section IV-B): the
	// reduced concurrency target is maintained without a new GWDE request.
	s.rebalancePausing()
}

// Reset clears all execution state for a new kernel invocation. The L1 is
// flushed (no cross-kernel coherence) and statistics are preserved unless
// resetStats is true.
func (s *SM) Reset(resetStats bool) {
	for i := range s.warps {
		s.warps[i] = warpCtx{}
	}
	for i := range s.blocks {
		// Keep each block slot's warp-list capacity: dropping it here made
		// the first launches of every invocation re-grow 120 slices per run.
		s.blocks[i] = blockCtx{warps: s.blocks[i].warps[:0]}
	}
	s.freeWarpSlots = s.freeWarpSlots[:0]
	for i := s.cfg.MaxWarpsPerSM - 1; i >= 0; i-- {
		s.freeWarpSlots = append(s.freeWarpSlots, i)
	}
	s.l1.Flush()
	//eqlint:allow nodeterminism -- recycles waiter slices into a pool; only capacities survive, never order
	for line, w := range s.l1Waiters {
		s.waiterPool = append(s.waiterPool, w[:0])
		delete(s.l1Waiters, line)
	}
	s.lsu = s.lsu[:0]
	s.tex = s.tex[:0]
	s.outboxFull = false
	s.wakeQueue.Reset()
	s.gapQueue.Reset()
	s.masksDirty = true
	s.batchMemoValid = false
	s.targetBlocks = s.cfg.MaxBlocksPerSM
	s.rrALU, s.rrMEM = 0, 0
	s.residentBlocks, s.activeBlocks, s.liveWarps = 0, 0, 0
	s.snap = Snapshot{}
	if resetStats {
		s.stats = Stats{}
	}
}
