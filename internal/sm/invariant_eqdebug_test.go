//go:build eqdebug

package sm

import (
	"strings"
	"testing"

	"equalizer/internal/config"
)

// TestInvariantsCatchCorruption corrupts cached census state directly and
// checks that the eqdebug layer panics — proving the checks are live, not
// vacuously true.
func TestInvariantsCatchCorruption(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(s *SM)
		want    string
	}{
		{"census", func(s *SM) {
			s.snap.Active = s.snap.Waiting + 1
			s.snap.Issued = 0
			s.snap.XALU = 0
			s.snap.XMEM = 0
			s.snap.Others = 0
		}, "census leak"},
		{"pausing", func(s *SM) { s.activeBlocks, s.residentBlocks = 0, 1 }, "pausing drift"},
		{"warp slots", func(s *SM) { s.freeWarpSlots = s.freeWarpSlots[:len(s.freeWarpSlots)-1] }, "warp-slot leak"},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s := New(config.Default(), 0)
			tc.corrupt(s)
			var recovered any
			func() {
				defer func() { recovered = recover() }()
				s.verifyInvariants()
				s.recountInvariants()
			}()
			msg, ok := recovered.(string)
			if !ok {
				t.Fatalf("no panic after corrupting %s", tc.name)
			}
			if !strings.Contains(msg, tc.want) {
				t.Fatalf("panic %q does not mention %q", msg, tc.want)
			}
		})
	}
}

// TestInvariantsHoldOnFreshSM checks a freshly built SM satisfies every
// conservation law before any cycle runs.
func TestInvariantsHoldOnFreshSM(t *testing.T) {
	s := New(config.Default(), 0)
	s.verifyInvariants()
	s.recountInvariants()
}
