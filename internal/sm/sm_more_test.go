package sm

import (
	"testing"

	"equalizer/internal/clock"
	"equalizer/internal/warp"
)

// runFixedCycles drives the SM for exactly n cycles with a perfect memory
// system answering after memLat cycles.
func runFixedCycles(s *SM, smPeriod clock.Time, memLat int, n int) clock.Time {
	now := clock.Time(0)
	for c := 0; c < n; c++ {
		now += smPeriod
		s.Step(now, smPeriod)
		if r, ok := s.TakeOutbox(); ok {
			s.DeliverLine(r.Line, now+clock.Time(memLat)*smPeriod)
		}
		if s.Idle() {
			break
		}
	}
	return now
}

func TestFasterClockFinishesComputeSooner(t *testing.T) {
	prof := &warp.Profile{LineBytes: 128, Phases: []warp.Phase{{Insts: 200, ALUGap: 2}}}
	slow := New(testCfg(), 0)
	slow.LaunchBlock(prof, 0, 8)
	tSlow := runFixedCycles(slow, 1176, 50, 100000) // 0.85x frequency period

	fast := New(testCfg(), 0)
	fast.LaunchBlock(prof, 0, 8)
	tFast := runFixedCycles(fast, 869, 50, 100000) // 1.15x frequency period

	if !slow.Idle() || !fast.Idle() {
		t.Fatal("blocks did not finish")
	}
	ratio := float64(tSlow) / float64(tFast)
	want := 1176.0 / 869.0
	if ratio < want*0.95 || ratio > want*1.05 {
		t.Fatalf("wall-time ratio = %.3f, want ~%.3f (pure compute scales with clock)", ratio, want)
	}
}

func TestPauseDuringBarrierIsDeadlockFree(t *testing.T) {
	s := New(testCfg(), 0)
	prof := &warp.Profile{
		LineBytes: 128,
		Phases: []warp.Phase{
			{Insts: 20, ALUGap: 2, Barrier: true},
			{Insts: 10, ALUGap: 2},
		},
	}
	s.LaunchBlock(prof, 0, 8)
	s.LaunchBlock(prof, 1, 8)
	// Pause the second block mid-flight, then resume.
	now := clock.Time(0)
	for c := 0; c < 10; c++ {
		now += period
		s.Step(now, period)
	}
	s.SetTargetBlocks(1)
	for c := 0; c < 50; c++ {
		now += period
		s.Step(now, period)
	}
	s.SetTargetBlocks(2)
	for c := 0; c < 2000 && !s.Idle(); c++ {
		now += period
		s.Step(now, period)
	}
	if !s.Idle() {
		t.Fatal("pause across a barrier deadlocked the block")
	}
	if s.Stats().BlocksFinished != 2 {
		t.Fatalf("finished %d blocks, want 2", s.Stats().BlocksFinished)
	}
}

func TestResetKeepsStatsWhenAsked(t *testing.T) {
	s := New(testCfg(), 0)
	prof := &warp.Profile{LineBytes: 128, Phases: []warp.Phase{{Insts: 10, ALUGap: 1}}}
	s.LaunchBlock(prof, 0, 4)
	runFixedCycles(s, period, 50, 1000)
	issued := s.Stats().IssuedALU
	if issued == 0 {
		t.Fatal("no work recorded")
	}
	s.Reset(false)
	if s.Stats().IssuedALU != issued {
		t.Fatal("Reset(false) cleared statistics")
	}
}

func TestTextureLoadsDoNotShowXMEM(t *testing.T) {
	s := New(testCfg(), 0)
	prof := &warp.Profile{
		LineBytes: 128,
		Phases: []warp.Phase{{
			Insts: 60, MemEvery: 2, ALUGap: 1,
			Pattern: warp.Streaming, Texture: true,
		}},
	}
	for b := 0; b < 6; b++ {
		s.LaunchBlock(prof, b, 8)
	}
	// Never answer any request: the memory path is fully clogged, yet the
	// texture queue must absorb the pressure without raising Xmem.
	now := clock.Time(0)
	var maxXmem int
	for c := 0; c < 400; c++ {
		now += period
		s.Step(now, period)
		if x := s.Snapshot().XMEM; x > maxXmem {
			maxXmem = x
		}
	}
	if maxXmem > 2 {
		t.Fatalf("texture kernel exposed XMEM=%d; texture back-pressure must stay invisible", maxXmem)
	}
	if s.Stats().IssuedTEX == 0 {
		t.Fatal("no texture instructions issued")
	}
}

func TestTextureKernelCompletes(t *testing.T) {
	s := New(testCfg(), 0)
	prof := &warp.Profile{
		LineBytes: 128,
		Phases: []warp.Phase{{
			Insts: 20, MemEvery: 2, ALUGap: 1,
			Pattern: warp.Streaming, Texture: true,
		}},
	}
	s.LaunchBlock(prof, 0, 4)
	runFixedCycles(s, period, 100, 100000)
	if !s.Idle() {
		t.Fatal("texture kernel never finished")
	}
}

func TestMixedTexAndLSUTraffic(t *testing.T) {
	s := New(testCfg(), 0)
	texProf := &warp.Profile{
		LineBytes: 128,
		Phases:    []warp.Phase{{Insts: 20, MemEvery: 2, ALUGap: 1, Pattern: warp.Streaming, Texture: true}},
	}
	memProf := &warp.Profile{
		LineBytes: 128,
		Phases:    []warp.Phase{{Insts: 20, MemEvery: 2, ALUGap: 1, Pattern: warp.Streaming}},
	}
	s.LaunchBlock(texProf, 0, 4)
	s.LaunchBlock(memProf, 1, 4)
	runFixedCycles(s, period, 60, 100000)
	if !s.Idle() {
		t.Fatal("mixed-traffic blocks never finished")
	}
	st := s.Stats()
	if st.IssuedTEX == 0 || st.IssuedMEM == 0 {
		t.Fatalf("both pipes must be used: tex=%d mem=%d", st.IssuedTEX, st.IssuedMEM)
	}
}

// TestCensusPartitionsActiveWarps checks the counters' defining invariant:
// every active warp is in exactly one of waiting / issued / Xalu / Xmem /
// others each cycle, across all kernel shapes.
func TestCensusPartitionsActiveWarps(t *testing.T) {
	profiles := map[string]*warp.Profile{
		"compute": {LineBytes: 128, Phases: []warp.Phase{{Insts: 300, ALUGap: 1}}},
		"memory": {LineBytes: 128, Phases: []warp.Phase{{
			Insts: 60, MemEvery: 2, ALUGap: 1, Pattern: warp.Streaming}}},
		"cache": {LineBytes: 128, Phases: []warp.Phase{{
			Insts: 200, MemEvery: 2, ALUGap: 1,
			Pattern: warp.PrivateReuse, WorkingSetLines: 12, ExtraLines: 3}}},
		"barrier": {LineBytes: 128, Phases: []warp.Phase{
			{Insts: 50, ALUGap: 3, Barrier: true},
			{Insts: 50, MemEvery: 4, ALUGap: 2, Pattern: warp.Streaming}}},
	}
	for name, prof := range profiles {
		t.Run(name, func(t *testing.T) {
			s := New(testCfg(), 0)
			for b := 0; b < 4; b++ {
				s.LaunchBlock(prof, b, 8)
			}
			now := clock.Time(0)
			for c := 0; c < 3000; c++ {
				now += period
				s.Step(now, period)
				if r, ok := s.TakeOutbox(); ok && c%3 == 0 {
					s.DeliverLine(r.Line, now+200*period)
				}
				snap := s.Snapshot()
				sum := snap.Waiting + snap.Issued + snap.XALU + snap.XMEM + snap.Others
				if sum != snap.Active {
					t.Fatalf("cycle %d: census %d+%d+%d+%d+%d = %d != active %d",
						c, snap.Waiting, snap.Issued, snap.XALU, snap.XMEM,
						snap.Others, sum, snap.Active)
				}
				if s.Idle() {
					return
				}
			}
		})
	}
}

func TestSnapshotActiveExcludesFinishedWarps(t *testing.T) {
	s := New(testCfg(), 0)
	short := &warp.Profile{LineBytes: 128, Phases: []warp.Phase{{Insts: 2, ALUGap: 1}}}
	long := &warp.Profile{LineBytes: 128, Phases: []warp.Phase{{Insts: 4000, ALUGap: 1}}}
	s.LaunchBlock(short, 0, 8)
	s.LaunchBlock(long, 1, 8)
	now := clock.Time(0)
	for c := 0; c < 200; c++ {
		now += period
		s.Step(now, period)
	}
	if s.Stats().BlocksFinished != 1 {
		t.Fatal("short block should have finished")
	}
	if a := s.Snapshot().Active; a != 8 {
		t.Fatalf("active = %d after one block finished, want 8", a)
	}
}
