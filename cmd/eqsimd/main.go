// Command eqsimd is the long-running simulation service: an HTTP/JSON API to
// submit kernel×policy×config runs and sweeps, backed by the singleflight
// experiment scheduler and the persistent content-addressed result cache, so
// popular configurations simulate once and serve forever.
//
// Usage:
//
//	eqsimd                              # serve on :8080, cache in .eqcache
//	eqsimd -addr :9000 -parallel 8      # custom port, 8 simulation workers
//	eqsimd -queue-depth 256 -scale 0.5  # deeper queue, scaled-down grids
//
// Endpoints:
//
//	POST /v1/run         {"kernel":"cutcp","policy":"equalizer-perf"}
//	POST /v1/sweep       {"kernels":["cutcp","lbm"],"setups":[{},{"policy":"ccws"}]}
//	GET  /v1/kernels     available kernels
//	GET  /metrics        live telemetry registry (Prometheus text)
//	GET  /metrics.json   live telemetry registry (JSON)
//	GET  /healthz        liveness
//	GET  /readyz         readiness (503 while draining)
//
// Diagnostic endpoints are served on a separate listener (-debug-addr,
// loopback by default, empty disables) because request traces leak
// kernel/policy/error details and pprof can induce profiling load:
//
//	GET  /debug/requests request-trace ring buffer (?format=chrome)
//	     /debug/pprof/*  runtime profiles
//
// Overloaded submissions are shed with 429 + Retry-After. SIGTERM/SIGINT
// starts a graceful drain: /readyz flips to 503, new submissions are
// refused, in-flight runs complete (bounded by -drain-timeout), then the
// listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"equalizer/internal/service"
	"equalizer/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		debugAddr    = flag.String("debug-addr", "127.0.0.1:8081", "listen address for /debug/requests and /debug/pprof (empty disables)")
		cacheDir     = flag.String("cache-dir", ".eqcache", "persistent result-cache directory")
		noCache      = flag.Bool("no-cache", false, "disable the persistent result cache")
		parallel     = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		smShards     = flag.Int("sm-shards", 0, "intra-run SM worker count per simulation (0 = auto: never oversubscribes -parallel)")
		queueDepth   = flag.Int("queue-depth", 64, "run cells that may wait beyond the in-flight ones before shedding")
		scale        = flag.Float64("scale", 1.0, "grid-size scale factor (0,1]")
		traceCap     = flag.Int("trace-capacity", 256, "request-trace ring-buffer capacity")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight runs on shutdown")
		logFormat    = flag.String("log-format", "text", "structured log format: text | json")
		logLevel     = flag.String("log-level", "info", "log level: debug | info | warn | error")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	if err := run(*addr, *debugAddr, *cacheDir, *noCache, *parallel, *smShards, *queueDepth, *scale, *traceCap,
		*retryAfter, *drainTimeout, *logFormat, *logLevel, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "eqsimd:", err)
		os.Exit(1)
	}
}

// newLogger builds the slog logger from the command line.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

func run(addr, debugAddr, cacheDir string, noCache bool, parallel, smShards, queueDepth int, scale float64,
	traceCap int, retryAfter, drainTimeout time.Duration, logFormat, logLevel, cpuprofile, memprofile string) error {
	log, err := newLogger(logFormat, logLevel)
	if err != nil {
		return err
	}
	stopProfiling, err := telemetry.StartProfiling(cpuprofile, memprofile)
	if err != nil {
		return err
	}
	if noCache {
		cacheDir = ""
	}
	svc, err := service.New(service.Config{
		GridScale:     scale,
		Parallelism:   parallel,
		SMShards:      smShards,
		QueueDepth:    queueDepth,
		CacheDir:      cacheDir,
		TraceCapacity: traceCap,
		RetryAfter:    retryAfter,
		Logger:        log,
	})
	if err != nil {
		return err
	}

	srv := &http.Server{Addr: addr, Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() {
		log.Info("serving", slog.String("addr", addr),
			slog.String("cache_dir", cacheDir), slog.Float64("scale", scale))
		serveErr <- srv.ListenAndServe()
	}()

	// The diagnostic surface binds separately (loopback by default): its
	// failure degrades debuggability, not service.
	var debugSrv *http.Server
	if debugAddr != "" {
		debugSrv = &http.Server{Addr: debugAddr, Handler: svc.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Info("debug listener", slog.String("addr", debugAddr))
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Warn("debug listener failed", slog.String("error", err.Error()))
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		return err
	case got := <-sig:
		log.Info("shutdown signal", slog.String("signal", got.String()))
	}

	// Graceful drain: refuse new work, finish in-flight runs, then close
	// the listener.
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		log.Warn("drain incomplete", slog.String("error", err.Error()))
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Warn("http shutdown", slog.String("error", err.Error()))
		if cerr := srv.Close(); cerr != nil {
			return cerr
		}
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(ctx); err != nil {
			debugSrv.Close()
		}
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := svc.Stats()
	log.Info("exit",
		slog.Uint64("runs", st.Runs), slog.Uint64("simulated", st.Simulated),
		slog.Uint64("memo_hits", st.MemoHits), slog.Uint64("cache_hits", st.CacheHits))
	return stopProfiling()
}
