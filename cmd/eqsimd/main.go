// Command eqsimd is the long-running simulation service: an HTTP/JSON API to
// submit kernel×policy×config runs and sweeps, backed by the singleflight
// experiment scheduler and the persistent content-addressed result cache, so
// popular configurations simulate once and serve forever.
//
// Usage:
//
//	eqsimd                              # serve on :8080, cache in .eqcache
//	eqsimd -addr :9000 -parallel 8      # custom port, 8 simulation workers
//	eqsimd -queue-depth 256 -scale 0.5  # deeper queue, scaled-down grids
//
// Endpoints:
//
//	POST /v1/run         {"kernel":"cutcp","policy":"equalizer-perf"}
//	POST /v1/sweep       {"kernels":["cutcp","lbm"],"setups":[{},{"policy":"ccws"}]}
//	GET  /v1/kernels     available kernels
//	GET  /metrics        live telemetry registry (Prometheus text)
//	GET  /metrics.json   live telemetry registry (JSON)
//	GET  /healthz        liveness
//	GET  /readyz         readiness (503 while draining)
//
// Diagnostic endpoints are served on a separate listener (-debug-addr,
// loopback by default, empty disables) because request traces leak
// kernel/policy/error details and pprof can induce profiling load:
//
//	GET  /debug/requests request-trace ring buffer (?format=chrome)
//	GET  /debug/tuner    self-tuning controller decision ring
//	     /debug/pprof/*  runtime profiles
//
// With -tune, a feedback controller samples the live queue depth, worker
// occupancy, shed count and request-latency histogram every -tune-interval
// and resizes the simulation worker pool within [-tune-min-workers,
// -tune-max-workers] (opening the admission limit alongside), so the
// service adapts its capacity to the offered load instead of being pinned
// at -parallel. Tuning only changes scheduling — results stay
// byte-identical.
//
// Overloaded submissions are shed with 429 + Retry-After. SIGTERM/SIGINT
// starts a graceful drain: /readyz flips to 503, new submissions are
// refused, in-flight runs complete (bounded by -drain-timeout), then the
// listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"equalizer/internal/service"
	"equalizer/internal/telemetry"
)

// options collects the command line; run consumes it.
type options struct {
	addr, debugAddr        string
	cacheDir               string
	noCache                bool
	parallel, smShards     int
	queueDepth             int
	scale                  float64
	traceCap               int
	retryAfter             time.Duration
	drainTimeout           time.Duration
	tune                   bool
	tuneInterval           time.Duration
	tuneMin, tuneMax       int
	logFormat, logLevel    string
	cpuprofile, memprofile string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.debugAddr, "debug-addr", "127.0.0.1:8081", "listen address for /debug/requests, /debug/tuner and /debug/pprof (empty disables)")
	flag.StringVar(&o.cacheDir, "cache-dir", ".eqcache", "persistent result-cache directory")
	flag.BoolVar(&o.noCache, "no-cache", false, "disable the persistent result cache")
	flag.IntVar(&o.parallel, "parallel", 0, "concurrent simulations (0 = GOMAXPROCS; ignored with -tune)")
	flag.IntVar(&o.smShards, "sm-shards", 0, "intra-run SM worker count per simulation (0 = auto: never oversubscribes -parallel)")
	flag.IntVar(&o.queueDepth, "queue-depth", 64, "run cells that may wait beyond the in-flight ones before shedding")
	flag.Float64Var(&o.scale, "scale", 1.0, "grid-size scale factor (0,1]")
	flag.IntVar(&o.traceCap, "trace-capacity", 256, "request-trace ring-buffer capacity")
	flag.DurationVar(&o.retryAfter, "retry-after", time.Second, "Retry-After hint on 429/503 responses")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "max wait for in-flight runs on shutdown")
	flag.BoolVar(&o.tune, "tune", false, "enable the self-tuning controller (resizes the worker pool and admission limit from live load)")
	flag.DurationVar(&o.tuneInterval, "tune-interval", 250*time.Millisecond, "control epoch length for -tune")
	flag.IntVar(&o.tuneMin, "tune-min-workers", 1, "worker-pool floor for -tune")
	flag.IntVar(&o.tuneMax, "tune-max-workers", 0, "worker-pool ceiling for -tune (0 = 4x the floor)")
	flag.StringVar(&o.logFormat, "log-format", "text", "structured log format: text | json")
	flag.StringVar(&o.logLevel, "log-level", "info", "log level: debug | info | warn | error")
	flag.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memprofile, "memprofile", "", "write a heap profile to this file")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "eqsimd:", err)
		os.Exit(1)
	}
}

// newLogger builds the slog logger from the command line.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

func run(o options) error {
	log, err := newLogger(o.logFormat, o.logLevel)
	if err != nil {
		return err
	}
	stopProfiling, err := telemetry.StartProfiling(o.cpuprofile, o.memprofile)
	if err != nil {
		return err
	}
	if o.noCache {
		o.cacheDir = ""
	}
	if o.tune && o.tuneMax > 0 && o.tuneMax < o.tuneMin {
		return fmt.Errorf("-tune-max-workers %d below -tune-min-workers %d", o.tuneMax, o.tuneMin)
	}
	svc, err := service.New(service.Config{
		GridScale:      o.scale,
		Parallelism:    o.parallel,
		SMShards:       o.smShards,
		QueueDepth:     o.queueDepth,
		CacheDir:       o.cacheDir,
		TraceCapacity:  o.traceCap,
		RetryAfter:     o.retryAfter,
		Logger:         log,
		Tune:           o.tune,
		TuneInterval:   o.tuneInterval,
		TuneMinWorkers: o.tuneMin,
		TuneMaxWorkers: o.tuneMax,
	})
	if err != nil {
		return err
	}

	srv := &http.Server{Addr: o.addr, Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() {
		log.Info("serving", slog.String("addr", o.addr),
			slog.String("cache_dir", o.cacheDir), slog.Float64("scale", o.scale))
		serveErr <- srv.ListenAndServe()
	}()

	// The diagnostic surface binds separately (loopback by default): its
	// failure degrades debuggability, not service.
	var debugSrv *http.Server
	if o.debugAddr != "" {
		debugSrv = &http.Server{Addr: o.debugAddr, Handler: svc.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Info("debug listener", slog.String("addr", o.debugAddr))
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Warn("debug listener failed", slog.String("error", err.Error()))
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		return err
	case got := <-sig:
		log.Info("shutdown signal", slog.String("signal", got.String()))
	}

	// Graceful drain: refuse new work, finish in-flight runs, then close
	// the listener.
	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		log.Warn("drain incomplete", slog.String("error", err.Error()))
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Warn("http shutdown", slog.String("error", err.Error()))
		if cerr := srv.Close(); cerr != nil {
			return cerr
		}
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(ctx); err != nil {
			debugSrv.Close()
		}
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := svc.Stats()
	log.Info("exit",
		slog.Uint64("runs", st.Runs), slog.Uint64("simulated", st.Simulated),
		slog.Uint64("memo_hits", st.MemoHits), slog.Uint64("cache_hits", st.CacheHits))
	return stopProfiling()
}
