package main

import "testing"

func TestNewLogger(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		for _, level := range []string{"debug", "info", "warn", "error"} {
			if _, err := newLogger(format, level); err != nil {
				t.Errorf("newLogger(%q, %q): %v", format, level, err)
			}
		}
	}
	if _, err := newLogger("xml", "info"); err == nil {
		t.Error("newLogger accepted unknown format")
	}
	if _, err := newLogger("text", "loud"); err == nil {
		t.Error("newLogger accepted unknown level")
	}
}
