package main

import (
	"fmt"
	"strings"
	"time"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
)

// The cycle-engine throughput benchmark (-exp engine) times one
// compute-bound and one memory-bound kernel under the Equalizer runtime on
// both cycle engines and reports simulated SM cycles per wall second. CI
// stores the JSON form as BENCH_engine.json to track the engine's perf
// trajectory; the fast/legacy ratio is the fast path's win. Wall-clock
// timing lives here in cmd because the internal simulator packages are under
// the nodeterminism analyzer's wall-clock ban.

// engineRun is one (kernel, engine) measurement.
type engineRun struct {
	Kernel       string  `json:"kernel"`
	Bound        string  `json:"bound"`
	Engine       string  `json:"engine"`
	SMCycles     int64   `json:"sm_cycles"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// engineReport is the JSON form of -exp engine (BENCH_engine.json).
type engineReport struct {
	Runs []engineRun `json:"runs"`
	// Speedup is the fast engine's cycles/s over the legacy loop, per kernel.
	Speedup map[string]float64 `json:"speedup"`
}

// engineCases pairs one kernel from each end of the paper's workload
// spectrum: cutcp saturates the ALU pipes (few quiescent cycles; the bitset
// issue path carries the win) and lbm stalls on DRAM (long quiescent spans;
// the bulk fast-forward carries it).
var engineCases = []struct{ kernel, bound string }{
	{"cutcp", "compute"},
	{"lbm", "memory"},
}

func engineBench(scale float64) (engineReport, error) {
	rep := engineReport{Speedup: map[string]float64{}}
	for _, c := range engineCases {
		k, err := kernels.ByName(c.kernel)
		if err != nil {
			return rep, err
		}
		if scale > 0 && scale < 1 {
			k = k.WithGridScale(scale, 1)
		}
		rate := map[string]float64{}
		for _, engine := range []string{"legacy", "fast"} {
			m, err := gpu.New(config.Default(), power.Default(), core.New(core.EnergyMode))
			if err != nil {
				return rep, err
			}
			m.SetFastForward(engine == "fast")
			var cycles int64
			start := time.Now()
			for inv := 0; inv < k.Invocations; inv++ {
				res, err := m.RunKernel(k, inv)
				if err != nil {
					return rep, err
				}
				cycles += res.SMCycles
			}
			elapsed := time.Since(start).Seconds()
			r := engineRun{
				Kernel: c.kernel, Bound: c.bound, Engine: engine,
				SMCycles: cycles, ElapsedSec: elapsed,
				CyclesPerSec: float64(cycles) / elapsed,
			}
			rep.Runs = append(rep.Runs, r)
			rate[engine] = r.CyclesPerSec
		}
		rep.Speedup[c.kernel] = rate["fast"] / rate["legacy"]
	}
	return rep, nil
}

func renderEngine(rep engineReport) string {
	var b strings.Builder
	b.WriteString("Cycle-engine throughput (simulated SM cycles per wall second)\n")
	fmt.Fprintf(&b, "%-8s %-8s %-7s %12s %9s %14s\n",
		"kernel", "bound", "engine", "sm-cycles", "wall-s", "cycles/s")
	for _, r := range rep.Runs {
		fmt.Fprintf(&b, "%-8s %-8s %-7s %12d %9.3f %14.0f\n",
			r.Kernel, r.Bound, r.Engine, r.SMCycles, r.ElapsedSec, r.CyclesPerSec)
	}
	for _, c := range engineCases {
		fmt.Fprintf(&b, "%s fast-engine speedup: %.2fx\n", c.kernel, rep.Speedup[c.kernel])
	}
	return b.String()
}
