package main

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"equalizer/internal/barrier"
	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
)

// The cycle-engine throughput benchmark (-exp engine) times one
// compute-bound and one memory-bound kernel under the Equalizer runtime on
// both cycle engines and a sweep of intra-run SM shard counts, reporting
// simulated SM cycles per wall second. CI stores the JSON form as
// BENCH_engine.json to track the engine's perf trajectory; the fast/legacy
// ratio is the fast path's win and the sharded/sequential ratio is the shard
// engine's. Wall-clock timing lives here in cmd because the internal
// simulator packages are under the nodeterminism analyzer's wall-clock ban.

// engineRun is one (kernel, engine, shards) measurement. BarrierRounds and
// BatchedCycles come from gpu.ShardStats: rounds crossed by the spin-park
// phase barrier and SM cycles retired inside idle-window batches — on a
// compute-bound kernel the rounds stay well below sm_cycles, which is the
// batching win made visible.
type engineRun struct {
	Kernel        string  `json:"kernel"`
	Bound         string  `json:"bound"`
	Engine        string  `json:"engine"`
	FastForward   bool    `json:"fastforward"`
	Shards        int     `json:"shards"`
	SMCycles      int64   `json:"sm_cycles"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	CyclesPerSec  float64 `json:"cycles_per_sec"`
	BarrierRounds uint64  `json:"barrier_rounds"`
	BatchedCycles uint64  `json:"batched_cycles"`
}

// engineMeta records the execution environment of one report, so trajectory
// comparisons across CI runners and local hosts are interpretable: a shard
// speedup only means something relative to the cores that were available.
type engineMeta struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	NumSMs     int    `json:"num_sms"`
	Shards     []int  `json:"shard_axis"`
	// BarrierImpl and SpinBudget identify the shard-engine synchronization
	// in force; Batching records whether idle-window cycle batching was on.
	BarrierImpl string `json:"barrier_impl"`
	SpinBudget  int    `json:"spin_budget"`
	Batching    bool   `json:"batching"`
}

// engineReport is the JSON form of -exp engine (BENCH_engine.json).
type engineReport struct {
	Meta engineMeta  `json:"meta"`
	Runs []engineRun `json:"runs"`
	// Speedup is the fast engine's cycles/s over the legacy loop, per
	// kernel, at shards=1.
	Speedup map[string]float64 `json:"speedup"`
	// ShardSpeedup is the best sharded fast-engine cycles/s over the
	// sequential (shards=1) fast engine, per kernel.
	ShardSpeedup map[string]float64 `json:"shard_speedup"`
}

// engineCases pairs one kernel from each end of the paper's workload
// spectrum: cutcp saturates the ALU pipes (few quiescent cycles; the bitset
// issue path carries the win) and lbm stalls on DRAM (long quiescent spans;
// the bulk fast-forward carries it).
var engineCases = []struct{ kernel, bound string }{
	{"cutcp", "compute"},
	{"lbm", "memory"},
}

// engineShardAxis picks the shard counts to sweep: always sequential, always
// a >1 point (so the sharded path is exercised even on small hosts), and the
// host-saturating count when it differs. An explicit -sm-shards pins the
// sweep to {1, n}.
func engineShardAxis(requested, numSMs int) []int {
	if requested > 1 {
		if requested > numSMs {
			requested = numSMs
		}
		return []int{1, requested}
	}
	axis := []int{1, 2}
	if full := gpu.AutoShards(1, numSMs); full > 2 {
		if full > 4 {
			axis = append(axis, 4)
		}
		axis = append(axis, full)
	}
	return axis
}

func engineBench(scale float64, smShards int) (engineReport, error) {
	cfg := config.Default()
	axis := engineShardAxis(smShards, cfg.NumSMs)
	rep := engineReport{
		Meta: engineMeta{
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			NumCPU:      runtime.NumCPU(),
			GoVersion:   runtime.Version(),
			NumSMs:      cfg.NumSMs,
			Shards:      axis,
			BarrierImpl: "spin-park",
			SpinBudget:  barrier.SpinBudget,
			Batching:    true,
		},
		Speedup:      map[string]float64{},
		ShardSpeedup: map[string]float64{},
	}
	for _, c := range engineCases {
		k, err := kernels.ByName(c.kernel)
		if err != nil {
			return rep, err
		}
		if scale > 0 && scale < 1 {
			k = k.WithGridScale(scale, 1)
		}
		seqRate := map[string]float64{}
		bestSharded := 0.0
		for _, engine := range []string{"legacy", "fast"} {
			for _, shards := range axis {
				m, err := gpu.New(cfg, power.Default(), core.New(core.EnergyMode))
				if err != nil {
					return rep, err
				}
				m.SetFastForward(engine == "fast")
				m.SetSMShards(shards)
				var cycles int64
				start := time.Now()
				for inv := 0; inv < k.Invocations; inv++ {
					res, err := m.RunKernel(k, inv)
					if err != nil {
						return rep, err
					}
					cycles += res.SMCycles
				}
				elapsed := time.Since(start).Seconds()
				ss := m.ShardStats()
				r := engineRun{
					Kernel: c.kernel, Bound: c.bound, Engine: engine,
					FastForward: engine == "fast", Shards: shards,
					SMCycles: cycles, ElapsedSec: elapsed,
					CyclesPerSec:  float64(cycles) / elapsed,
					BarrierRounds: ss.Barriers,
					BatchedCycles: ss.BatchedCycles,
				}
				rep.Runs = append(rep.Runs, r)
				if shards == 1 {
					seqRate[engine] = r.CyclesPerSec
				} else if engine == "fast" && r.CyclesPerSec > bestSharded {
					bestSharded = r.CyclesPerSec
				}
			}
		}
		rep.Speedup[c.kernel] = seqRate["fast"] / seqRate["legacy"]
		rep.ShardSpeedup[c.kernel] = bestSharded / seqRate["fast"]
	}
	return rep, nil
}

func renderEngine(rep engineReport) string {
	var b strings.Builder
	b.WriteString("Cycle-engine throughput (simulated SM cycles per wall second)\n")
	fmt.Fprintf(&b, "%s, GOMAXPROCS=%d, %d CPUs, %s barrier (spin budget %d)\n",
		rep.Meta.GoVersion, rep.Meta.GoMaxProcs, rep.Meta.NumCPU,
		rep.Meta.BarrierImpl, rep.Meta.SpinBudget)
	fmt.Fprintf(&b, "%-8s %-8s %-7s %7s %12s %9s %14s %14s %13s\n",
		"kernel", "bound", "engine", "shards", "sm-cycles", "wall-s", "cycles/s",
		"barrier-rounds", "batched-cyc")
	for _, r := range rep.Runs {
		fmt.Fprintf(&b, "%-8s %-8s %-7s %7d %12d %9.3f %14.0f %14d %13d\n",
			r.Kernel, r.Bound, r.Engine, r.Shards, r.SMCycles, r.ElapsedSec, r.CyclesPerSec,
			r.BarrierRounds, r.BatchedCycles)
	}
	for _, c := range engineCases {
		fmt.Fprintf(&b, "%s fast-engine speedup: %.2fx, shard speedup: %.2fx\n",
			c.kernel, rep.Speedup[c.kernel], rep.ShardSpeedup[c.kernel])
	}
	return b.String()
}
