package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"equalizer/internal/service"
)

// The serving-path load benchmark (-exp service) stands up an in-process
// eqsimd service, hammers it with concurrent run and sweep requests from
// many clients, and reports tail latency, throughput, shed rate and cache
// hit rate. It runs two passes — cold (empty cache) and warm (a fresh
// service instance sharing the first pass's cache directory) — so
// BENCH_service.json tracks both the simulate-and-serve and the
// serve-forever regimes; the warm pass must do zero simulations. With
// -service-tune a third warm pass runs with the self-tuning controller on
// (pool starting at its one-worker floor), so the report records the
// tail-latency consequences of controller-on vs controller-off on the same
// cache — and the tuned pass must shed nothing once past warm-up. Results
// returned over HTTP are verified byte-identical to direct harness runs.
// With -service-url the same load harness drives an externally running
// eqsimd instead (single "remote" pass; identity and scheduler checks are
// skipped since the target is a separate process).

// Load-pass shape, set from the command line (-service-requests,
// -service-clients, -service-tune, -service-url); -parallel bounds the
// service's simulation workers and -sm-shards pins the engine benchmark's
// shard axis.
var (
	serviceRequests int
	serviceClients  int
	servicePar      int
	benchShards     int
	serviceTune     bool
	serviceURL      string
)

// serviceCells is the workload mix: one kernel from each paper category
// crossed with the three headline policies — 12 distinct configurations
// that thousands of requests collapse onto, exactly the "popular configs
// simulate once and serve forever" regime the service exists for.
var serviceCells = []service.RunSpec{
	{Kernel: "cutcp"}, {Kernel: "cutcp", Policy: "equalizer-perf"}, {Kernel: "cutcp", Policy: "equalizer-energy"},
	{Kernel: "lbm"}, {Kernel: "lbm", Policy: "equalizer-perf"}, {Kernel: "lbm", Policy: "equalizer-energy"},
	{Kernel: "kmn"}, {Kernel: "kmn", Policy: "equalizer-perf"}, {Kernel: "kmn", Policy: "equalizer-energy"},
	{Kernel: "bp-1"}, {Kernel: "bp-1", Policy: "equalizer-perf"}, {Kernel: "bp-1", Policy: "equalizer-energy"},
}

// servicePass is one load pass's results.
type servicePass struct {
	Name          string  `json:"name"`
	Requests      int     `json:"requests"`
	Clients       int     `json:"clients"`
	OK            int     `json:"ok"`
	Shed          int     `json:"shed"`
	ShedLate      int     `json:"shed_after_warmup"`
	Errors        int     `json:"errors"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	ShedRate      float64 `json:"shed_rate"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	Simulated     uint64  `json:"simulated"`
	// Controller trajectory, present on tuned passes only.
	Tuned        bool   `json:"tuned,omitempty"`
	TunerEpochs  uint64 `json:"tuner_epochs,omitempty"`
	FinalWorkers int    `json:"final_workers,omitempty"`
	FinalAdmit   int    `json:"final_admission_limit,omitempty"`
}

// serviceMeta pins the run's environment and configuration so two
// BENCH_service.json files can be compared meaningfully (-check).
type serviceMeta struct {
	GoVersion      string  `json:"go_version"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	NumCPU         int     `json:"num_cpu"`
	Requests       int     `json:"requests"`
	Clients        int     `json:"clients"`
	Tuned          bool    `json:"tuned"`
	TuneIntervalMS float64 `json:"tune_interval_ms,omitempty"`
	TuneMinWorkers int     `json:"tune_min_workers,omitempty"`
	TuneMaxWorkers int     `json:"tune_max_workers,omitempty"`
}

// serviceReport is the JSON form of -exp service (BENCH_service.json).
type serviceReport struct {
	Scale    float64       `json:"scale"`
	Cells    int           `json:"cells"`
	Parallel int           `json:"parallelism"`
	Meta     serviceMeta   `json:"meta"`
	Passes   []servicePass `json:"passes"`
}

// percentile returns the q-quantile of sorted latencies (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// tuneInterval is the control epoch used by the tuned bench pass: short, so
// the controller gets enough epochs inside a brief load pass (a warm pass
// at bench scale lasts well under a second).
const tuneInterval = 10 * time.Millisecond

// serviceBench runs the load passes: cold and warm in-process (plus
// warm-tuned with -service-tune), or one remote pass against -service-url.
func serviceBench(scale float64, requests, clients, parallel int) (serviceReport, error) {
	rep := serviceReport{
		Scale: scale, Cells: len(serviceCells),
		Meta: serviceMeta{
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			Requests:   requests,
			Clients:    clients,
			Tuned:      serviceTune,
		},
	}
	if serviceURL != "" {
		p, err := loadPass(nil, strings.TrimRight(serviceURL, "/"), "remote", requests, clients)
		if err != nil {
			return rep, err
		}
		rep.Passes = append(rep.Passes, p)
		return rep, nil
	}

	cacheDir, err := os.MkdirTemp("", "eqbench-service-*")
	if err != nil {
		return serviceReport{}, err
	}
	defer os.RemoveAll(cacheDir)

	passes := []string{"cold", "warm"}
	if serviceTune {
		passes = append(passes, "warm-tuned")
	}
	for _, pass := range passes {
		cfg := service.Config{
			GridScale:   scale,
			Parallelism: parallel,
			CacheDir:    cacheDir,
			QueueDepth:  4 * clients,
		}
		tuned := pass == "warm-tuned"
		if tuned {
			cfg.Tune = true
			cfg.TuneInterval = tuneInterval
			cfg.TuneMinWorkers = 1
		}
		svc, err := service.New(cfg)
		if err != nil {
			return rep, err
		}
		if tuned {
			tc := svc.Tuner().Config()
			rep.Meta.TuneIntervalMS = float64(tc.Interval.Milliseconds())
			rep.Meta.TuneMinWorkers = tc.MinWorkers
			rep.Meta.TuneMaxWorkers = tc.MaxWorkers
		} else {
			rep.Parallel = svc.Harness().Parallelism()
		}
		srv := httptest.NewServer(svc.Handler())
		p, err := loadPass(svc, srv.URL, pass, requests, clients)
		srv.Close()
		svc.StartDrain() // stops the controller; the instance is done
		if err != nil {
			return rep, err
		}
		if tuned {
			p.Tuned = true
			p.TunerEpochs = svc.Tuner().Epochs()
			p.FinalWorkers, p.FinalAdmit = svc.Tuner().Settings()
		}
		rep.Passes = append(rep.Passes, p)
		if strings.HasPrefix(pass, "warm") && p.Simulated != 0 {
			return rep, fmt.Errorf("%s pass simulated %d runs, want 0 (cache not serving)", pass, p.Simulated)
		}
		if tuned && p.ShedLate > 0 {
			return rep, fmt.Errorf("tuned pass shed %d requests after warm-up; the controller failed to open capacity", p.ShedLate)
		}
	}
	return rep, nil
}

// loadPass drives one pass of traffic against baseURL. With a non-nil svc
// (in-process target) it also verifies a sampled response against a direct
// harness run and reads the scheduler counters; a nil svc (remote target)
// skips both.
func loadPass(svc *service.Service, baseURL, name string, requests, clients int) (servicePass, error) {
	client := &http.Client{Timeout: 5 * time.Minute}

	bodies := make([][]byte, len(serviceCells))
	for i, c := range serviceCells {
		b, err := json.Marshal(c)
		if err != nil {
			return servicePass{}, err
		}
		bodies[i] = b
	}
	// Every 16th request is a 3-cell sweep over one kernel's policies,
	// exercising the batch path under the same load.
	sweepBody, err := json.Marshal(service.SweepSpec{Runs: serviceCells[:3]})
	if err != nil {
		return servicePass{}, err
	}

	// Requests past the first tenth count as post-warm-up: by then a
	// self-tuning service must have opened enough capacity to stop
	// shedding.
	warmupN := requests / 10
	var (
		next      atomic.Int64
		shed      atomic.Int64
		shedLate  atomic.Int64
		failures  atomic.Int64
		latMu     sync.Mutex
		latencies []float64
		sampleMu  sync.Mutex
		samples   = map[int][]byte{} // cell index -> totals JSON from one 200 response
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				var (
					url  = baseURL + "/v1/run"
					body = bodies[i%len(bodies)]
				)
				if i%16 == 15 {
					url = baseURL + "/v1/sweep"
					body = sweepBody
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				lat := time.Since(t0)
				if err != nil {
					failures.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					latMu.Lock()
					latencies = append(latencies, lat.Seconds())
					latMu.Unlock()
					if i%16 != 15 {
						var rr service.RunResponse
						if err := json.NewDecoder(resp.Body).Decode(&rr); err == nil {
							if tj, err := json.Marshal(rr.Totals); err == nil {
								sampleMu.Lock()
								samples[i%len(bodies)] = tj
								sampleMu.Unlock()
							}
						}
					}
				case http.StatusTooManyRequests:
					shed.Add(1)
					if i >= warmupN {
						shedLate.Add(1)
					}
				default:
					failures.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Verify byte-identical results: each sampled HTTP totals must equal a
	// direct harness run of the same spec.
	if svc != nil {
		for i, got := range samples {
			want, err := svc.DirectTotals(serviceCells[i])
			if err != nil {
				return servicePass{}, err
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				return servicePass{}, err
			}
			if !bytes.Equal(got, wantJSON) {
				return servicePass{}, fmt.Errorf("%s pass: %s/%s served totals differ from direct run",
					name, serviceCells[i].Kernel, serviceCells[i].Policy)
			}
		}
	}

	sort.Float64s(latencies)
	p := servicePass{
		Name: name, Requests: requests, Clients: clients,
		OK: len(latencies), Shed: int(shed.Load()), ShedLate: int(shedLate.Load()),
		Errors:        int(failures.Load()),
		ElapsedSec:    elapsed.Seconds(),
		ThroughputRPS: float64(len(latencies)) / elapsed.Seconds(),
		P50MS:         percentile(latencies, 0.50) * 1e3,
		P95MS:         percentile(latencies, 0.95) * 1e3,
		P99MS:         percentile(latencies, 0.99) * 1e3,
		ShedRate:      float64(shed.Load()) / float64(requests),
	}
	if svc != nil {
		st := svc.Stats()
		p.Simulated = st.Simulated
		if st.Runs > 0 {
			p.CacheHitRate = float64(st.MemoHits+st.CacheHits) / float64(st.Runs)
		}
	}
	return p, nil
}

func renderService(rep serviceReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Service load benchmark (%d distinct cells, scale %g, %d workers)\n",
		rep.Cells, rep.Scale, rep.Parallel)
	fmt.Fprintf(&b, "%-10s %8s %7s %6s %5s %4s %8s %9s %8s %8s %8s %6s %5s\n",
		"pass", "requests", "clients", "ok", "shed", "err", "wall-s", "req/s", "p50-ms", "p95-ms", "p99-ms", "hit", "sims")
	for _, p := range rep.Passes {
		fmt.Fprintf(&b, "%-10s %8d %7d %6d %5d %4d %8.2f %9.0f %8.2f %8.2f %8.2f %5.1f%% %5d\n",
			p.Name, p.Requests, p.Clients, p.OK, p.Shed, p.Errors, p.ElapsedSec,
			p.ThroughputRPS, p.P50MS, p.P95MS, p.P99MS, 100*p.CacheHitRate, p.Simulated)
	}
	for _, p := range rep.Passes {
		if p.Tuned {
			fmt.Fprintf(&b, "%s: controller ran %d epochs, pool %d -> %d workers, admission %d, %d shed after warm-up\n",
				p.Name, p.TunerEpochs, rep.Meta.TuneMinWorkers, p.FinalWorkers, p.FinalAdmit, p.ShedLate)
		}
	}
	return b.String()
}
