package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"equalizer/internal/service"
)

// The serving-path load benchmark (-exp service) stands up an in-process
// eqsimd service, hammers it with concurrent run and sweep requests from
// many clients, and reports tail latency, throughput, shed rate and cache
// hit rate. It runs two passes — cold (empty cache) and warm (a fresh
// service instance sharing the first pass's cache directory) — so
// BENCH_service.json tracks both the simulate-and-serve and the
// serve-forever regimes; the warm pass must do zero simulations. Results
// returned over HTTP are verified byte-identical to direct harness runs.

// Load-pass shape, set from the command line (-service-requests,
// -service-clients); -parallel bounds the service's simulation workers and
// -sm-shards pins the engine benchmark's shard axis.
var (
	serviceRequests int
	serviceClients  int
	servicePar      int
	benchShards     int
)

// serviceCells is the workload mix: one kernel from each paper category
// crossed with the three headline policies — 12 distinct configurations
// that thousands of requests collapse onto, exactly the "popular configs
// simulate once and serve forever" regime the service exists for.
var serviceCells = []service.RunSpec{
	{Kernel: "cutcp"}, {Kernel: "cutcp", Policy: "equalizer-perf"}, {Kernel: "cutcp", Policy: "equalizer-energy"},
	{Kernel: "lbm"}, {Kernel: "lbm", Policy: "equalizer-perf"}, {Kernel: "lbm", Policy: "equalizer-energy"},
	{Kernel: "kmn"}, {Kernel: "kmn", Policy: "equalizer-perf"}, {Kernel: "kmn", Policy: "equalizer-energy"},
	{Kernel: "bp-1"}, {Kernel: "bp-1", Policy: "equalizer-perf"}, {Kernel: "bp-1", Policy: "equalizer-energy"},
}

// servicePass is one load pass's results.
type servicePass struct {
	Name          string  `json:"name"`
	Requests      int     `json:"requests"`
	Clients       int     `json:"clients"`
	OK            int     `json:"ok"`
	Shed          int     `json:"shed"`
	Errors        int     `json:"errors"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	ShedRate      float64 `json:"shed_rate"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	Simulated     uint64  `json:"simulated"`
}

// serviceReport is the JSON form of -exp service (BENCH_service.json).
type serviceReport struct {
	Scale    float64       `json:"scale"`
	Cells    int           `json:"cells"`
	Parallel int           `json:"parallelism"`
	Passes   []servicePass `json:"passes"`
}

// percentile returns the q-quantile of sorted latencies (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// serviceBench runs the cold and warm passes.
func serviceBench(scale float64, requests, clients, parallel int) (serviceReport, error) {
	cacheDir, err := os.MkdirTemp("", "eqbench-service-*")
	if err != nil {
		return serviceReport{}, err
	}
	defer os.RemoveAll(cacheDir)

	rep := serviceReport{Scale: scale, Cells: len(serviceCells)}
	for _, pass := range []string{"cold", "warm"} {
		svc, err := service.New(service.Config{
			GridScale:   scale,
			Parallelism: parallel,
			CacheDir:    cacheDir,
			QueueDepth:  4 * clients,
		})
		if err != nil {
			return rep, err
		}
		rep.Parallel = svc.Harness().Parallelism()
		p, err := loadPass(svc, pass, requests, clients)
		if err != nil {
			return rep, err
		}
		rep.Passes = append(rep.Passes, p)
		if pass == "warm" && p.Simulated != 0 {
			return rep, fmt.Errorf("warm pass simulated %d runs, want 0 (cache not serving)", p.Simulated)
		}
	}
	return rep, nil
}

// loadPass drives one pass of traffic and verifies a sampled response
// against a direct harness run.
func loadPass(svc *service.Service, name string, requests, clients int) (servicePass, error) {
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := srv.Client()
	client.Timeout = 5 * time.Minute

	bodies := make([][]byte, len(serviceCells))
	for i, c := range serviceCells {
		b, err := json.Marshal(c)
		if err != nil {
			return servicePass{}, err
		}
		bodies[i] = b
	}
	// Every 16th request is a 3-cell sweep over one kernel's policies,
	// exercising the batch path under the same load.
	sweepBody, err := json.Marshal(service.SweepSpec{Runs: serviceCells[:3]})
	if err != nil {
		return servicePass{}, err
	}

	var (
		next      atomic.Int64
		shed      atomic.Int64
		failures  atomic.Int64
		latMu     sync.Mutex
		latencies []float64
		sampleMu  sync.Mutex
		samples   = map[int][]byte{} // cell index -> totals JSON from one 200 response
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				var (
					url  = srv.URL + "/v1/run"
					body = bodies[i%len(bodies)]
				)
				if i%16 == 15 {
					url = srv.URL + "/v1/sweep"
					body = sweepBody
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				lat := time.Since(t0)
				if err != nil {
					failures.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					latMu.Lock()
					latencies = append(latencies, lat.Seconds())
					latMu.Unlock()
					if i%16 != 15 {
						var rr service.RunResponse
						if err := json.NewDecoder(resp.Body).Decode(&rr); err == nil {
							if tj, err := json.Marshal(rr.Totals); err == nil {
								sampleMu.Lock()
								samples[i%len(bodies)] = tj
								sampleMu.Unlock()
							}
						}
					}
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					failures.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Verify byte-identical results: each sampled HTTP totals must equal a
	// direct harness run of the same spec.
	for i, got := range samples {
		want, err := svc.DirectTotals(serviceCells[i])
		if err != nil {
			return servicePass{}, err
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			return servicePass{}, err
		}
		if !bytes.Equal(got, wantJSON) {
			return servicePass{}, fmt.Errorf("%s pass: %s/%s served totals differ from direct run",
				name, serviceCells[i].Kernel, serviceCells[i].Policy)
		}
	}

	sort.Float64s(latencies)
	st := svc.Stats()
	p := servicePass{
		Name: name, Requests: requests, Clients: clients,
		OK: len(latencies), Shed: int(shed.Load()), Errors: int(failures.Load()),
		ElapsedSec:    elapsed.Seconds(),
		ThroughputRPS: float64(len(latencies)) / elapsed.Seconds(),
		P50MS:         percentile(latencies, 0.50) * 1e3,
		P95MS:         percentile(latencies, 0.95) * 1e3,
		P99MS:         percentile(latencies, 0.99) * 1e3,
		ShedRate:      float64(shed.Load()) / float64(requests),
		Simulated:     st.Simulated,
	}
	if st.Runs > 0 {
		p.CacheHitRate = float64(st.MemoHits+st.CacheHits) / float64(st.Runs)
	}
	return p, nil
}

func renderService(rep serviceReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Service load benchmark (%d distinct cells, scale %g, %d workers)\n",
		rep.Cells, rep.Scale, rep.Parallel)
	fmt.Fprintf(&b, "%-6s %8s %7s %6s %5s %4s %8s %9s %8s %8s %8s %6s %5s\n",
		"pass", "requests", "clients", "ok", "shed", "err", "wall-s", "req/s", "p50-ms", "p95-ms", "p99-ms", "hit", "sims")
	for _, p := range rep.Passes {
		fmt.Fprintf(&b, "%-6s %8d %7d %6d %5d %4d %8.2f %9.0f %8.2f %8.2f %8.2f %5.1f%% %5d\n",
			p.Name, p.Requests, p.Clients, p.OK, p.Shed, p.Errors, p.ElapsedSec,
			p.ThroughputRPS, p.P50MS, p.P95MS, p.P99MS, 100*p.CacheHitRate, p.Simulated)
	}
	return b.String()
}
