package main

import (
	"strings"
	"testing"

	"equalizer/internal/exp"
)

func TestRunDispatchesTables(t *testing.T) {
	h := exp.New(exp.Options{GridScale: 0.2})
	for _, name := range []string{"table1", "table2", "table3"} {
		out, err := run(h, name, 0.02)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(out, "Table") {
			t.Errorf("%s output missing title: %q", name, out[:40])
		}
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	h := exp.New(exp.Options{GridScale: 0.2})
	if _, err := run(h, "fig99", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSmallFigure(t *testing.T) {
	h := exp.New(exp.Options{GridScale: 0.2})
	out, err := run(h, "fig5", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "lbm") {
		t.Fatalf("fig5 output malformed:\n%s", out)
	}
}
