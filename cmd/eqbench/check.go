package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// The bench regression guard (-check) compares two BENCH_service.json
// files — the committed baseline and a freshly generated one — on the
// warm-pass p95: the steady-state serving latency, which is the number the
// service exists to protect. CI runs it on pull requests and fails the
// build when the fresh warm p95 regresses more than checkMaxRel over the
// baseline.
//
// Two escape hatches keep the guard honest rather than noisy:
//
//   - an absolute floor (-check-min-ms): regressions are ignored while both
//     p95s sit below it, since at sub-millisecond latencies a 25% swing is
//     scheduler jitter, not a regression;
//   - the EQBENCH_SKIP_CHECK=1 environment variable (set from a PR label by
//     CI) skips the comparison for intentional perf trade-offs, loudly.

// checkMaxRel is the allowed relative warm-p95 regression (0.25 = +25%).
const checkMaxRel = 0.25

// warmP95 extracts the warm-pass p95 from a BENCH_service.json file. It
// prefers the untuned "warm" pass (the baseline regime present in every
// report) so adding tuned passes never changes what the guard compares.
func warmP95(path string) (float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rep serviceReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	for _, p := range rep.Passes {
		if p.Name == "warm" {
			return p.P95MS, nil
		}
	}
	return 0, fmt.Errorf("%s: no warm pass in report", path)
}

// runCheck implements -check old.json new.json; returns the process exit
// code.
func runCheck(args []string, minMS float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "eqbench: -check wants exactly two arguments: old.json new.json")
		return 2
	}
	if os.Getenv("EQBENCH_SKIP_CHECK") == "1" {
		fmt.Println("eqbench -check: SKIPPED (EQBENCH_SKIP_CHECK=1)")
		return 0
	}
	oldP95, err := warmP95(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "eqbench:", err)
		return 2
	}
	newP95, err := warmP95(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "eqbench:", err)
		return 2
	}
	fmt.Printf("eqbench -check: warm p95 %.3fms (baseline) vs %.3fms (fresh)\n", oldP95, newP95)
	if oldP95 <= minMS && newP95 <= minMS {
		fmt.Printf("eqbench -check: OK — both under the %.1fms noise floor\n", minMS)
		return 0
	}
	if newP95 > oldP95*(1+checkMaxRel) {
		fmt.Printf("eqbench -check: FAIL — warm p95 regressed %.0f%% (limit %.0f%%); set the perf-regression-ok label if intentional\n",
			100*(newP95/oldP95-1), 100*checkMaxRel)
		return 1
	}
	fmt.Println("eqbench -check: OK")
	return 0
}
