// Command eqbench regenerates the tables and figures of the paper's
// evaluation on the simulated GPU.
//
// Usage:
//
//	eqbench -exp all            # everything (several minutes)
//	eqbench -exp fig7           # one experiment
//	eqbench -exp summary        # headline numbers only
//	eqbench -exp fig1 -scale .5 # scaled-down grids for a quick look
//	eqbench -exp engine -json   # cycle-engine throughput (BENCH_engine.json)
//
// Experiments: table1 table2 table3 fig1 fig2a fig2b fig4 fig5 fig7 fig8
// fig9 fig10 fig11a fig11b summary all, plus the extension studies
// `ablation` (runtime-parameter sweeps), `boost` (GPU-Boost-style
// power-headroom baseline), `concurrent` (multi-kernel partitioning),
// `engine` (cycle-engine throughput) and `service` (eqsimd serving-path
// load benchmark: tail latency, throughput, shed rate, cache hit rate —
// BENCH_service.json), which are not part of `all`. -service-tune adds a
// warm pass with the self-tuning controller on; -service-url points the
// same load harness at an externally running eqsimd (the CI smoke uses
// this to drive a -tune instance).
//
// -check old.json new.json compares two BENCH_service.json files and exits
// non-zero when the fresh warm-pass p95 regressed more than 25% over the
// baseline (noise floor -check-min-ms; EQBENCH_SKIP_CHECK=1 skips).
//
// -metrics-addr serves the telemetry registry live over HTTP while the run
// is in progress (/metrics Prometheus text, /metrics.json).
//
// Runs execute on a worker pool (-parallel, default GOMAXPROCS) and results
// persist in a disk cache (-cache-dir, default .eqcache; -no-cache disables
// it), so a rerun with unchanged configuration simulates nothing. Scheduler
// and cache statistics print to stderr after each invocation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"equalizer/internal/exp"
	"equalizer/internal/exp/runcache"
	"equalizer/internal/service"
	"equalizer/internal/telemetry"
)

func main() {
	var (
		expName    = flag.String("exp", "summary", "experiment id or 'all'")
		scale      = flag.Float64("scale", 1.0, "grid-size scale factor (0,1]")
		asJSON     = flag.Bool("json", false, "emit JSON instead of text (fig7, fig8, fig10, summary, boost, engine, service)")
		parallel   = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		smShards   = flag.Int("sm-shards", 0, "intra-run SM worker count per simulation (0 = auto: never oversubscribes -parallel)")
		cacheDir   = flag.String("cache-dir", ".eqcache", "persistent result-cache directory")
		noCache    = flag.Bool("no-cache", false, "disable the persistent result cache")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
		metricsAdr = flag.String("metrics-addr", "", "serve the telemetry registry live over HTTP at this address during the run (e.g. 127.0.0.1:9090)")
	)
	var (
		check      = flag.Bool("check", false, "compare two BENCH_service.json files (old new) and fail on a warm-p95 regression")
		checkMinMS = flag.Float64("check-min-ms", 2.0, "with -check, ignore regressions while both warm p95s are under this many milliseconds")
	)
	flag.IntVar(&serviceRequests, "service-requests", 2000, "requests per pass for -exp service")
	flag.IntVar(&serviceClients, "service-clients", 64, "concurrent clients for -exp service")
	flag.BoolVar(&serviceTune, "service-tune", false, "add a warm pass with the self-tuning controller on to -exp service")
	flag.StringVar(&serviceURL, "service-url", "", "drive an externally running eqsimd at this base URL instead of an in-process service (-exp service)")
	flag.Parse()
	if *check {
		os.Exit(runCheck(flag.Args(), *checkMinMS))
	}
	stopProfiling, err := telemetry.StartProfiling(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eqbench: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProfiling(); err != nil {
			fmt.Fprintf(os.Stderr, "eqbench: %v\n", err)
		}
	}()
	servicePar = *parallel
	benchShards = *smShards
	reg := telemetry.NewRegistry()
	h, err := newHarness(*scale, *parallel, *smShards, *cacheDir, *noCache, reg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eqbench: %v\n", err)
		os.Exit(1)
	}
	if *metricsAdr != "" {
		ms, err := service.StartMetricsServer(*metricsAdr, reg, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eqbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "eqbench: serving live metrics on http://%s/metrics\n", ms.Addr())
		defer func() {
			if err := ms.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "eqbench: %v\n", err)
			}
		}()
	}
	if *asJSON {
		if err := runJSON(h, *expName, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "eqbench: %v\n", err)
			os.Exit(1)
		}
		printStats(h)
		return
	}

	names := strings.Split(*expName, ",")
	if *expName == "all" {
		names = []string{"table1", "table2", "table3", "fig1", "fig2a", "fig2b",
			"fig4", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11a", "fig11b", "summary"}
	}
	for _, name := range names {
		start := time.Now()
		out, err := run(h, strings.TrimSpace(name), *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eqbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %.1fs]\n\n", name, time.Since(start).Seconds())
	}
	printStats(h)
}

// newHarness wires the experiment harness with the pool width and the disk
// cache selected on the command line. The registry backs -metrics-addr live
// serving.
func newHarness(scale float64, parallel, smShards int, cacheDir string, noCache bool, reg *telemetry.Registry) (*exp.Harness, error) {
	opts := exp.Options{
		GridScale:   scale,
		Parallelism: parallel,
		SMShards:    smShards,
		Registry:    reg,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if !noCache {
		cache, err := runcache.Open(cacheDir)
		if err != nil {
			return nil, err
		}
		opts.Cache = cache
	}
	return exp.New(opts), nil
}

// printStats reports the run-scheduler and cache counters to stderr.
func printStats(h *exp.Harness) {
	st := h.SchedulerStats()
	fmt.Fprintf(os.Stderr,
		"eqbench: %d runs (%d simulated, %d memo hits, %d cache hits) at parallelism %d; cache: %d misses, %d stores, %d errors\n",
		st.Runs, st.Simulated, st.MemoHits, st.CacheHits, h.Parallelism(),
		st.CacheMisses, st.CacheStores, st.CacheErrors)
}

func run(h *exp.Harness, name string, scale float64) (string, error) {
	switch name {
	case "engine":
		rep, err := engineBench(scale, benchShards)
		if err != nil {
			return "", err
		}
		return renderEngine(rep), nil
	case "service":
		rep, err := serviceBench(scale, serviceRequests, serviceClients, servicePar)
		if err != nil {
			return "", err
		}
		return renderService(rep), nil
	case "table1":
		return h.Table1(), nil
	case "table2":
		return h.Table2(), nil
	case "table3":
		return h.Table3(), nil
	case "fig1":
		d, err := h.Figure1()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure1(d), nil
	case "fig2a":
		d, err := h.Figure2a()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure2a(d), nil
	case "fig2b":
		s, err := h.Figure2b()
		if err != nil {
			return "", err
		}
		return exp.RenderSeries("Figure 2b: mri_g-1 warp-state time series", s), nil
	case "fig4":
		rows, err := h.Figure4()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure4(rows), nil
	case "fig5":
		rows, err := h.Figure5()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure5(rows), nil
	case "fig7":
		rows, err := h.Figure7()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure7(rows), nil
	case "fig8":
		rows, err := h.Figure8()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure8(rows), nil
	case "fig9":
		rows, err := h.Figure9()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure9(rows), nil
	case "fig10":
		rows, err := h.Figure10()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure10(rows), nil
	case "fig11a":
		d, err := h.Figure11a()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure11a(d), nil
	case "fig11b":
		d, err := h.Figure11b()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure11b(d), nil
	case "summary":
		s, err := h.Summarize()
		if err != nil {
			return "", err
		}
		return exp.RenderSummary(s), nil
	case "ablation":
		return h.Ablations()
	case "concurrent":
		return h.ConcurrentStudy()
	case "boost":
		rows, err := h.BoostComparison()
		if err != nil {
			return "", err
		}
		return exp.RenderBoostComparison(rows), nil
	default:
		return "", fmt.Errorf("unknown experiment %q", name)
	}
}

// summaryReport is the JSON form of -exp summary: the headline numbers plus
// the scheduler counters and wall time, so CI can track the perf trajectory
// (BENCH_parallel.json).
type summaryReport struct {
	Summary     exp.Summary        `json:"summary"`
	ElapsedSec  float64            `json:"elapsed_sec"`
	Parallelism int                `json:"parallelism"`
	Scheduler   exp.SchedulerStats `json:"scheduler"`
}

// runJSON emits the structured form of the data-bearing experiments.
func runJSON(h *exp.Harness, name string, scale float64) error {
	var v interface{}
	var err error
	switch name {
	case "engine":
		v, err = engineBench(scale, benchShards)
	case "service":
		v, err = serviceBench(scale, serviceRequests, serviceClients, servicePar)
	case "fig7":
		v, err = h.Figure7()
	case "fig8":
		v, err = h.Figure8()
	case "fig10":
		v, err = h.Figure10()
	case "summary":
		start := time.Now()
		var s exp.Summary
		if s, err = h.Summarize(); err == nil {
			v = summaryReport{
				Summary:     s,
				ElapsedSec:  time.Since(start).Seconds(),
				Parallelism: h.Parallelism(),
				Scheduler:   h.SchedulerStats(),
			}
		}
	case "boost":
		v, err = h.BoostComparison()
	default:
		return fmt.Errorf("experiment %q has no JSON form", name)
	}
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
