// Command eqbench regenerates the tables and figures of the paper's
// evaluation on the simulated GPU.
//
// Usage:
//
//	eqbench -exp all            # everything (several minutes)
//	eqbench -exp fig7           # one experiment
//	eqbench -exp summary        # headline numbers only
//	eqbench -exp fig1 -scale .5 # scaled-down grids for a quick look
//
// Experiments: table1 table2 table3 fig1 fig2a fig2b fig4 fig5 fig7 fig8
// fig9 fig10 fig11a fig11b summary all, plus the extension studies
// `ablation` (runtime-parameter sweeps), `boost` (GPU-Boost-style
// power-headroom baseline) and `concurrent` (multi-kernel partitioning),
// which are not part of `all`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"equalizer/internal/exp"
	"equalizer/internal/telemetry"
)

func main() {
	var (
		expName    = flag.String("exp", "summary", "experiment id or 'all'")
		scale      = flag.Float64("scale", 1.0, "grid-size scale factor (0,1]")
		asJSON     = flag.Bool("json", false, "emit JSON instead of text (fig7, fig8, fig10, summary, boost)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	stopProfiling, err := telemetry.StartProfiling(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eqbench: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProfiling(); err != nil {
			fmt.Fprintf(os.Stderr, "eqbench: %v\n", err)
		}
	}()
	if *asJSON {
		h := exp.New(exp.Options{GridScale: *scale})
		if err := runJSON(h, *expName); err != nil {
			fmt.Fprintf(os.Stderr, "eqbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	h := exp.New(exp.Options{GridScale: *scale})
	names := strings.Split(*expName, ",")
	if *expName == "all" {
		names = []string{"table1", "table2", "table3", "fig1", "fig2a", "fig2b",
			"fig4", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11a", "fig11b", "summary"}
	}
	for _, name := range names {
		start := time.Now()
		out, err := run(h, strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "eqbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %.1fs]\n\n", name, time.Since(start).Seconds())
	}
}

func run(h *exp.Harness, name string) (string, error) {
	switch name {
	case "table1":
		return h.Table1(), nil
	case "table2":
		return h.Table2(), nil
	case "table3":
		return h.Table3(), nil
	case "fig1":
		d, err := h.Figure1()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure1(d), nil
	case "fig2a":
		d, err := h.Figure2a()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure2a(d), nil
	case "fig2b":
		s, err := h.Figure2b()
		if err != nil {
			return "", err
		}
		return exp.RenderSeries("Figure 2b: mri_g-1 warp-state time series", s), nil
	case "fig4":
		rows, err := h.Figure4()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure4(rows), nil
	case "fig5":
		rows, err := h.Figure5()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure5(rows), nil
	case "fig7":
		rows, err := h.Figure7()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure7(rows), nil
	case "fig8":
		rows, err := h.Figure8()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure8(rows), nil
	case "fig9":
		rows, err := h.Figure9()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure9(rows), nil
	case "fig10":
		rows, err := h.Figure10()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure10(rows), nil
	case "fig11a":
		d, err := h.Figure11a()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure11a(d), nil
	case "fig11b":
		d, err := h.Figure11b()
		if err != nil {
			return "", err
		}
		return exp.RenderFigure11b(d), nil
	case "summary":
		s, err := h.Summarize()
		if err != nil {
			return "", err
		}
		return exp.RenderSummary(s), nil
	case "ablation":
		return h.Ablations()
	case "concurrent":
		return h.ConcurrentStudy()
	case "boost":
		rows, err := h.BoostComparison()
		if err != nil {
			return "", err
		}
		return exp.RenderBoostComparison(rows), nil
	default:
		return "", fmt.Errorf("unknown experiment %q", name)
	}
}

// runJSON emits the structured form of the data-bearing experiments.
func runJSON(h *exp.Harness, name string) error {
	var v interface{}
	var err error
	switch name {
	case "fig7":
		v, err = h.Figure7()
	case "fig8":
		v, err = h.Figure8()
	case "fig10":
		v, err = h.Figure10()
	case "summary":
		v, err = h.Summarize()
	case "boost":
		v, err = h.BoostComparison()
	default:
		return fmt.Errorf("experiment %q has no JSON form", name)
	}
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
