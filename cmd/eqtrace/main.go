// Command eqtrace runs one kernel under Equalizer and dumps the per-epoch
// counter/decision trace of SM 0 — the raw data behind the adaptivity
// studies of Figures 2b and 11b.
package main

import (
	"flag"
	"fmt"
	"os"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
)

func main() {
	kernelName := flag.String("kernel", "spmv", "kernel to trace")
	mode := flag.String("mode", "performance", "energy | performance")
	inv := flag.Int("inv", 0, "invocation to trace (0-based)")
	flag.Parse()

	k, err := kernels.ByName(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eqtrace:", err)
		os.Exit(1)
	}
	m := core.PerformanceMode
	if *mode == "energy" {
		m = core.EnergyMode
	}
	eq := core.New(m)
	eq.Record = true
	machine := gpu.MustNew(config.Default(), power.Default(), eq)
	res, err := machine.RunKernel(k, *inv)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eqtrace:", err)
		os.Exit(1)
	}
	fmt.Printf("# %s inv %d mode %s: %d cycles, %.4f J\n", k.Name, *inv, m, res.SMCycles, res.EnergyJ())
	fmt.Printf("%5s %8s %8s %8s %8s %7s %7s %7s\n",
		"epoch", "active", "waiting", "xalu", "xmem", "blocks", "smVF", "memVF")
	for _, p := range eq.Trace() {
		fmt.Printf("%5d %8.1f %8.1f %8.1f %8.1f %7d %7s %7s\n",
			p.Epoch, p.Counters.Active, p.Counters.Waiting, p.Counters.XALU,
			p.Counters.XMEM, p.TargetBlocks, p.SMLevel, p.MemLevel)
	}
}
