// Command eqtrace runs one kernel under Equalizer and exports the execution
// trace — the raw data behind the adaptivity studies of Figures 2b and 11b.
//
// Usage:
//
//	eqtrace -kernel spmv                          # SM 0 epoch table
//	eqtrace -kernel mri-g-1 -sm all -format csv   # every SM, CSV
//	eqtrace -kernel spmv -format chrome -o t.json # Chrome trace (Perfetto)
//	eqtrace -requests dump.json -o t.json         # eqsimd request traces
//
// Formats: table (per-epoch counters), json, csv, and chrome — the Chrome
// trace-event format, loadable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing, showing kernel/epoch spans, per-SM block residency, CTA
// pausing and VF-level transitions across all SMs.
//
// -requests converts a saved eqsimd /debug/requests JSON dump into a Chrome
// trace instead of running a simulation: each request becomes a span with
// its queue/run/encode stages nested beneath it.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
	"equalizer/internal/service"
	"equalizer/internal/telemetry"
)

// options carries the parsed command line; run is kept free of flag and
// os.Exit machinery so tests can drive it directly.
type options struct {
	kernel   string
	mode     string
	inv      int
	format   string
	sm       string
	events   int
	requests string
}

func main() {
	var (
		opts       options
		out        = flag.String("o", "", "output file (default stdout)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.StringVar(&opts.kernel, "kernel", "spmv", "kernel to trace")
	flag.StringVar(&opts.mode, "mode", "performance", "energy | performance")
	flag.IntVar(&opts.inv, "inv", 0, "invocation to trace (0-based)")
	flag.StringVar(&opts.format, "format", "table", "table | json | csv | chrome")
	flag.StringVar(&opts.sm, "sm", "0", "SM index to trace, or 'all' (table/json/csv)")
	flag.IntVar(&opts.events, "events", 1<<19, "probe-bus capacity for chrome traces")
	flag.StringVar(&opts.requests, "requests", "",
		"convert this eqsimd /debug/requests JSON dump to a Chrome trace instead of simulating")
	flag.Parse()

	stop, err := telemetry.StartProfiling(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := run(opts, w); err != nil {
		fatal(err)
	}
	if err := stop(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eqtrace:", err)
	os.Exit(1)
}

// run executes one invocation and writes the trace in the requested format.
func run(opts options, w io.Writer) error {
	if opts.requests != "" {
		return convertRequests(opts.requests, w)
	}
	k, err := kernels.ByName(opts.kernel)
	if err != nil {
		return err
	}
	var mode core.Mode
	switch opts.mode {
	case "energy":
		mode = core.EnergyMode
	case "performance", "perf":
		mode = core.PerformanceMode
	default:
		return fmt.Errorf("unknown -mode %q (want energy or performance)", opts.mode)
	}
	switch opts.format {
	case "table", "json", "csv", "chrome":
	default:
		return fmt.Errorf("unknown -format %q (want table, json, csv or chrome)", opts.format)
	}

	eq := core.New(mode)
	eq.Record = true
	machine := gpu.MustNew(config.Default(), power.Default(), eq)

	sms, err := selectSMs(opts.sm, machine.NumSMs())
	if err != nil {
		return err
	}

	var bus *telemetry.Bus
	if opts.format == "chrome" {
		bus = telemetry.NewBus(opts.events, telemetry.MaskSpans)
		machine.AttachTelemetry(bus)
	}

	res, err := machine.RunKernel(k, opts.inv)
	if err != nil {
		return err
	}

	switch opts.format {
	case "table":
		writeTable(w, k.Name, opts.inv, mode, res.SMCycles, res.EnergyJ(), eq, sms)
	case "csv":
		return writeCSV(w, eq, sms)
	case "json":
		return writeJSON(w, k.Name, opts.inv, mode, eq, sms)
	case "chrome":
		if bus.Dropped() > 0 {
			fmt.Fprintf(os.Stderr,
				"eqtrace: warning: ring buffer dropped %d events; rerun with a larger -events\n",
				bus.Dropped())
		}
		return telemetry.WriteChromeTrace(w, bus.Events(), telemetry.ChromeOptions{
			NumSMs: machine.NumSMs(),
			Kernel: k.Name,
		})
	}
	return nil
}

// convertRequests renders a saved eqsimd /debug/requests dump (a JSON array
// of request traces) as a Chrome trace-event document.
func convertRequests(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var traces []service.RequestTrace
	if err := json.Unmarshal(data, &traces); err != nil {
		return fmt.Errorf("%s: not a /debug/requests dump: %w", path, err)
	}
	if len(traces) == 0 {
		return fmt.Errorf("%s: no request traces", path)
	}
	spans, opts := service.TracesToChromeSpans(traces)
	return telemetry.WriteChromeSpans(w, spans, opts)
}

// selectSMs resolves the -sm flag to a list of SM indices.
func selectSMs(spec string, numSMs int) ([]int, error) {
	if spec == "all" {
		sms := make([]int, numSMs)
		for i := range sms {
			sms[i] = i
		}
		return sms, nil
	}
	i, err := strconv.Atoi(spec)
	if err != nil {
		return nil, fmt.Errorf("bad -sm %q (want an SM index or 'all')", spec)
	}
	if i < 0 || i >= numSMs {
		return nil, fmt.Errorf("-sm %d out of range (machine has %d SMs)", i, numSMs)
	}
	return []int{i}, nil
}

func writeTable(w io.Writer, kernel string, inv int, mode core.Mode,
	cycles int64, energyJ float64, eq *core.Equalizer, sms []int) {
	fmt.Fprintf(w, "# %s inv %d mode %s: %d cycles, %.4f J\n",
		kernel, inv, mode, cycles, energyJ)
	for _, i := range sms {
		if len(sms) > 1 {
			fmt.Fprintf(w, "# SM %d\n", i)
		}
		fmt.Fprintf(w, "%5s %8s %8s %8s %8s %7s %7s %7s\n",
			"epoch", "active", "waiting", "xalu", "xmem", "blocks", "smVF", "memVF")
		for _, p := range eq.TraceSM(i) {
			fmt.Fprintf(w, "%5d %8.1f %8.1f %8.1f %8.1f %7d %7s %7s\n",
				p.Epoch, p.Counters.Active, p.Counters.Waiting, p.Counters.XALU,
				p.Counters.XMEM, p.TargetBlocks, p.SMLevel, p.MemLevel)
		}
	}
}

func writeCSV(w io.Writer, eq *core.Equalizer, sms []int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"sm", "epoch", "active", "waiting", "xalu", "xmem", "blocks", "sm_vf", "mem_vf",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
	for _, i := range sms {
		for _, p := range eq.TraceSM(i) {
			if err := cw.Write([]string{
				strconv.Itoa(i), strconv.Itoa(p.Epoch),
				f(p.Counters.Active), f(p.Counters.Waiting),
				f(p.Counters.XALU), f(p.Counters.XMEM),
				strconv.Itoa(p.TargetBlocks), p.SMLevel.String(), p.MemLevel.String(),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonTrace is the -format json document.
type jsonTrace struct {
	Kernel     string       `json:"kernel"`
	Invocation int          `json:"invocation"`
	Mode       string       `json:"mode"`
	SMs        []jsonSMRows `json:"sms"`
}

type jsonSMRows struct {
	SM     int       `json:"sm"`
	Epochs []jsonRow `json:"epochs"`
}

type jsonRow struct {
	Epoch   int     `json:"epoch"`
	Active  float64 `json:"active"`
	Waiting float64 `json:"waiting"`
	XALU    float64 `json:"xalu"`
	XMEM    float64 `json:"xmem"`
	Blocks  int     `json:"blocks"`
	SMVF    string  `json:"sm_vf"`
	MemVF   string  `json:"mem_vf"`
}

func writeJSON(w io.Writer, kernel string, inv int, mode core.Mode,
	eq *core.Equalizer, sms []int) error {
	doc := jsonTrace{Kernel: kernel, Invocation: inv, Mode: mode.String()}
	for _, i := range sms {
		rows := jsonSMRows{SM: i, Epochs: []jsonRow{}}
		for _, p := range eq.TraceSM(i) {
			rows.Epochs = append(rows.Epochs, jsonRow{
				Epoch:   p.Epoch,
				Active:  p.Counters.Active,
				Waiting: p.Counters.Waiting,
				XALU:    p.Counters.XALU,
				XMEM:    p.Counters.XMEM,
				Blocks:  p.TargetBlocks,
				SMVF:    p.SMLevel.String(),
				MemVF:   p.MemLevel.String(),
			})
		}
		doc.SMs = append(doc.SMs, rows)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
