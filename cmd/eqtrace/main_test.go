package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"equalizer/internal/service"
)

func TestRunRejectsBadMode(t *testing.T) {
	err := run(options{kernel: "spmv", mode: "turbo", format: "table", sm: "0"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-mode") {
		t.Fatalf("want -mode error, got %v", err)
	}
}

func TestRunRejectsBadFormat(t *testing.T) {
	err := run(options{kernel: "spmv", mode: "performance", format: "xml", sm: "0"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-format") {
		t.Fatalf("want -format error, got %v", err)
	}
}

func TestRunRejectsBadSM(t *testing.T) {
	for _, spec := range []string{"x", "-1", "99"} {
		err := run(options{kernel: "spmv", mode: "performance", format: "table", sm: spec}, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), "-sm") {
			t.Fatalf("-sm %q: want error, got %v", spec, err)
		}
	}
}

func TestSelectSMs(t *testing.T) {
	sms, err := selectSMs("all", 4)
	if err != nil || len(sms) != 4 || sms[0] != 0 || sms[3] != 3 {
		t.Fatalf("all: got %v, %v", sms, err)
	}
	sms, err = selectSMs("2", 4)
	if err != nil || len(sms) != 1 || sms[0] != 2 {
		t.Fatalf("2: got %v, %v", sms, err)
	}
}

func TestCSVAllSMs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(options{kernel: "mri_g-2", mode: "energy", format: "csv", sm: "all"}, &buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	if len(rows) < 2 {
		t.Fatal("no data rows")
	}
	if got := strings.Join(rows[0], ","); got != "sm,epoch,active,waiting,xalu,xmem,blocks,sm_vf,mem_vf" {
		t.Fatalf("bad header: %s", got)
	}
	sms := map[string]bool{}
	for _, r := range rows[1:] {
		sms[r[0]] = true
	}
	if len(sms) < 2 {
		t.Fatalf("-sm all should cover multiple SMs, got %d", len(sms))
	}
}

func TestJSONSingleSM(t *testing.T) {
	var buf bytes.Buffer
	if err := run(options{kernel: "mri_g-2", mode: "performance", format: "json", sm: "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Kernel string `json:"kernel"`
		SMs    []struct {
			SM     int               `json:"sm"`
			Epochs []json.RawMessage `json:"epochs"`
		} `json:"sms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Kernel != "mri_g-2" || len(doc.SMs) != 1 || doc.SMs[0].SM != 1 {
		t.Fatalf("unexpected document: %+v", doc)
	}
	if len(doc.SMs[0].Epochs) == 0 {
		t.Fatal("no epochs recorded")
	}
}

// TestChromeTraceCoversAllSMs is the acceptance test for the chrome
// exporter: `eqtrace -kernel spmv -format chrome` must produce valid Chrome
// trace-event JSON with block-residency spans on every SM, not just SM 0.
func TestChromeTraceCoversAllSMs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(options{
		kernel: "spmv", mode: "performance", format: "chrome", sm: "0", events: 1 << 19,
	}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	const numSMs = 15
	named := map[int]bool{}   // pids with a process_name metadata record
	spanned := map[int]bool{} // SM pids carrying at least one block span
	sawEpoch, sawVF := false, false
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "process_name":
			named[e.PID] = true
		case e.Ph == "X" && e.PID >= 1 && strings.HasPrefix(e.Name, "block "):
			if e.Dur < 0 {
				t.Fatalf("negative span duration: %+v", e)
			}
			spanned[e.PID] = true
		case e.PID == 0 && strings.HasPrefix(e.Name, "epoch "):
			sawEpoch = true
		case e.Ph == "C" && strings.HasPrefix(e.Name, "vf "):
			sawVF = true
		}
	}
	for pid := 0; pid <= numSMs; pid++ {
		if !named[pid] {
			t.Errorf("process %d missing metadata record", pid)
		}
	}
	for pid := 1; pid <= numSMs; pid++ {
		if !spanned[pid] {
			t.Errorf("SM %d (pid %d) has no block spans", pid-1, pid)
		}
	}
	if !sawEpoch {
		t.Error("no epoch events on the machine process")
	}
	if !sawVF {
		t.Error("no VF-level counter events")
	}
}

// TestConvertRequests round-trips an eqsimd /debug/requests dump through the
// -requests converter and checks the Chrome document structure.
func TestConvertRequests(t *testing.T) {
	traces := []service.RequestTrace{
		{
			ID: "req-1", Method: "POST", Path: "/v1/run",
			Kernel: "cutcp", Policy: "baseline", Cells: 1,
			StartUnixNano: 1_000_000_000, DurNS: 25_000_000, Status: 200, Source: "sim",
			Stages: []service.StageTiming{
				{Stage: "queue", StartNS: 0, DurNS: 1_000_000},
				{Stage: "run", StartNS: 1_000_000, DurNS: 23_000_000},
				{Stage: "encode", StartNS: 24_000_000, DurNS: 500_000},
			},
		},
		{
			ID: "req-2", Method: "POST", Path: "/v1/run",
			Kernel: "cutcp", Policy: "baseline", Cells: 1,
			StartUnixNano: 1_030_000_000, DurNS: 2_000_000, Status: 200, Source: "memo",
		},
	}
	dump, err := json.Marshal(traces)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "requests.json")
	if err := os.WriteFile(path, dump, 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run(options{requests: path}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
	}
	for _, want := range []string{"process_name", "POST /v1/run", "queue", "run", "encode"} {
		if !names[want] {
			t.Errorf("missing event %q in %v", want, names)
		}
	}

	if err := run(options{requests: filepath.Join(t.TempDir(), "missing.json")}, &buf); err == nil {
		t.Error("missing dump file: want error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{requests: bad}, &buf); err == nil {
		t.Error("malformed dump: want error")
	}
}
