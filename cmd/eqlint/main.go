// Command eqlint is the Equalizer determinism-and-invariant multichecker.
// It runs the custom analyzers from internal/analysis over the repository:
//
//	go run ./cmd/eqlint ./...
//
// Diagnostics print in compiler format (file:line:col: analyzer: message)
// and a non-zero exit status marks a dirty tree, so the command slots
// directly into CI. Machine-readable output is available with
// -format json|sarif. Individual findings are suppressed in source with
// `//eqlint:allow <analyzer> -- reason` directives; see the package
// documentation of internal/analysis for the full directive vocabulary.
//
// Packages load and analyze across GOMAXPROCS workers; the module
// analyzers (shardphase, allocfree) then run once over the whole load, and
// output is path-sorted so runs are deterministic at any parallelism.
//
// When a .eqlint-baseline.json file exists at the module root (or -baseline
// names one), findings recorded there are filtered out: analyzers are
// strict on new code while the legacy debt burns down explicitly.
// -write-baseline regenerates the file from the current findings, and
// -compare-baselines OLD NEW exits non-zero if NEW contains entries absent
// from OLD — the CI guard that the baseline only ever shrinks.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"equalizer/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eqlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "all", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	baselinePath := fs.String("baseline", "auto", "baseline file filtering known findings; 'auto' uses <module>/"+analysis.BaselineFile+" when present, '' disables")
	writeBaseline := fs.Bool("write-baseline", false, "write current findings to the baseline file and exit 0")
	compareBaselines := fs.Bool("compare-baselines", false, "compare two baseline/report files (OLD NEW); exit 1 if NEW has entries absent from OLD")
	strictDirectives := fs.Bool("strict-directives", false, "report allow directives that suppressed nothing")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}

	if *compareBaselines {
		return compareBaselineFiles(fs.Args(), stdout, stderr)
	}

	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "eqlint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}

	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, "eqlint:", err)
		return 2
	}
	var pkgAnalyzers, modAnalyzers []*analysis.Analyzer
	ranNames := map[string]bool{}
	for _, a := range analyzers {
		ranNames[a.Name] = true
		if a.RunModule != nil {
			modAnalyzers = append(modAnalyzers, a)
		} else {
			pkgAnalyzers = append(pkgAnalyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "eqlint:", err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "eqlint:", err)
		return 2
	}

	// Phase 1: load packages and run the per-package analyzers across
	// GOMAXPROCS workers. Results land in per-dir slots, so output order is
	// independent of scheduling.
	type dirResult struct {
		pkg   *analysis.Package
		diags []analysis.Diagnostic
		err   error
	}
	results := make([]dirResult, len(dirs))
	var wg sync.WaitGroup
	work := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(dirs) {
		workers = len(dirs)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				r := &results[i]
				r.pkg, r.err = loader.LoadDir(dirs[i])
				if r.err != nil {
					continue
				}
				for _, a := range pkgAnalyzers {
					if a.Scope != nil && !a.Scope(r.pkg.PkgPath) {
						continue
					}
					diags, err := analysis.RunAnalyzer(a, r.pkg)
					if err != nil {
						r.err = err
						break
					}
					r.diags = append(r.diags, diags...)
				}
			}
		}()
	}
	for i := range dirs {
		work <- i
	}
	close(work)
	wg.Wait()

	var all []analysis.Diagnostic
	var pkgs []*analysis.Package
	for i, r := range results {
		if r.err != nil {
			fmt.Fprintf(stderr, "eqlint: %s: %v\n", dirs[i], r.err)
			return 2
		}
		all = append(all, r.diags...)
		pkgs = append(pkgs, r.pkg)
	}

	// Phase 2: module analyzers see every package at once, sharing one call
	// graph and facts store.
	if len(modAnalyzers) > 0 {
		mod := analysis.NewModule(pkgs)
		for _, a := range modAnalyzers {
			diags, err := analysis.RunModuleAnalyzer(a, mod)
			if err != nil {
				fmt.Fprintf(stderr, "eqlint: %v\n", err)
				return 2
			}
			all = append(all, diags...)
		}
	}

	// Phase 3: directive hygiene — after every analyzer has had its chance
	// to consume a suppression.
	known := analysis.AllNames()
	for _, pkg := range pkgs {
		all = append(all, analysis.VerifyDirectives(pkg, known, ranNames, *strictDirectives)...)
	}

	analysis.SortDiagnostics(all)
	report := analysis.NewReport(loader.ModuleRoot(), all)

	if *writeBaseline {
		path := filepath.Join(loader.ModuleRoot(), analysis.BaselineFile)
		if *baselinePath != "auto" && *baselinePath != "" {
			path = *baselinePath
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(stderr, "eqlint:", err)
			return 2
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "eqlint:", err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "eqlint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "eqlint: wrote %d finding(s) to %s\n", len(report.Findings), path)
		return 0
	}

	// Baseline filtering.
	findings := report.Findings
	if path, ok := resolveBaseline(*baselinePath, loader.ModuleRoot()); ok {
		base, err := loadBaseline(path)
		if err != nil {
			fmt.Fprintln(stderr, "eqlint:", err)
			return 2
		}
		before := len(findings)
		findings = base.Filter(findings)
		if n := before - len(findings); n > 0 {
			fmt.Fprintf(stderr, "eqlint: %d finding(s) suppressed by baseline %s\n", n, path)
		}
	}
	out := &analysis.Report{Version: analysis.ReportVersion, Findings: findings}

	switch *format {
	case "json":
		if err := out.WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "eqlint:", err)
			return 2
		}
	case "sarif":
		if err := out.WriteSARIF(stdout); err != nil {
			fmt.Fprintln(stderr, "eqlint:", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "eqlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// resolveBaseline decides which baseline file, if any, applies.
func resolveBaseline(flagVal, moduleRoot string) (string, bool) {
	switch flagVal {
	case "":
		return "", false
	case "auto":
		path := filepath.Join(moduleRoot, analysis.BaselineFile)
		if _, err := os.Stat(path); err == nil {
			return path, true
		}
		return "", false
	default:
		return flagVal, true
	}
}

func loadBaseline(path string) (*analysis.Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := analysis.LoadReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return analysis.NewBaseline(rep), nil
}

// compareBaselineFiles implements -compare-baselines OLD NEW: exit 1 when
// NEW contains findings absent from OLD (the baseline grew).
func compareBaselineFiles(args []string, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(stderr, "eqlint: -compare-baselines needs exactly two files: OLD NEW")
		return 2
	}
	oldB, err := loadBaseline(args[0])
	if err != nil {
		fmt.Fprintln(stderr, "eqlint:", err)
		return 2
	}
	newB, err := loadBaseline(args[1])
	if err != nil {
		fmt.Fprintln(stderr, "eqlint:", err)
		return 2
	}
	grew := newB.DiffAgainst(oldB)
	for _, g := range grew {
		fmt.Fprintln(stdout, g)
	}
	if len(grew) > 0 {
		fmt.Fprintf(stderr, "eqlint: baseline grew by %d entr(y/ies) — baselines may only shrink; fix the new findings instead\n", len(grew))
		return 1
	}
	fmt.Fprintf(stderr, "eqlint: baseline ok (%d -> %d finding(s))\n", oldB.Size(), newB.Size())
	return 0
}

func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
	}
	return s
}
