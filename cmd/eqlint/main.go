// Command eqlint is the Equalizer determinism-and-invariant multichecker.
// It runs the custom analyzers from internal/analysis over the repository:
//
//	go run ./cmd/eqlint ./...
//
// Diagnostics print in compiler format (file:line:col: analyzer: message)
// and a non-zero exit status marks a dirty tree, so the command slots
// directly into CI. Individual findings are suppressed in source with
// `//eqlint:allow <analyzer> -- reason` directives; see the package
// documentation of internal/analysis for the full directive vocabulary.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"equalizer/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eqlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "all", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}

	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, "eqlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "eqlint:", err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "eqlint:", err)
		return 2
	}

	found := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "eqlint: %s: %v\n", dir, err)
			return 2
		}
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg.PkgPath) {
				continue
			}
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintf(stderr, "eqlint: %s: %s: %v\n", a.Name, pkg.PkgPath, err)
				return 2
			}
			for _, d := range diags {
				fmt.Fprintln(stdout, d.String())
				found++
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(stderr, "eqlint: %d finding(s)\n", found)
		return 1
	}
	return 0
}

func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
	}
	return s
}
