package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"equalizer/internal/analysis"
)

// chdirRepoRoot moves the test into the module root so ./... patterns
// resolve the way a CI invocation would.
func chdirRepoRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir("../..")
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	})
}

func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, errb.String())
	}
	for _, name := range []string{"allocfree", "cycleaccounting", "errstrict", "nodeterminism", "probehygiene", "shardphase"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-analyzers", "nosuch", "./internal/clock"}, &out, &errb); code != 2 {
		t.Fatalf("run(-analyzers nosuch) = %d, want 2", code)
	}
}

// TestCleanPackage runs the full analyzer set over a small simulator
// package that must be clean; exit status 0 is part of the repo's
// determinism contract.
func TestCleanPackage(t *testing.T) {
	chdirRepoRoot(t)
	var out, errb strings.Builder
	code := run([]string{"./internal/clock"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run(./internal/clock) = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

// TestDirtyPackage points eqlint at the probehygiene testdata fixtures,
// which are deliberately dirty (and in scope, since probehygiene applies
// everywhere), and expects findings plus exit status 1.
func TestDirtyPackage(t *testing.T) {
	chdirRepoRoot(t)
	var out, errb strings.Builder
	code := run([]string{"-analyzers", "probehygiene",
		"./internal/analysis/testdata/src/probehygiene"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run over dirty fixtures = %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "allocates") {
		t.Errorf("expected a probehygiene finding, got:\n%s", out.String())
	}
}

// TestJSONFormat checks that -format json output parses back through the
// report loader — the same schema the baseline file uses.
func TestJSONFormat(t *testing.T) {
	chdirRepoRoot(t)
	var out, errb strings.Builder
	code := run([]string{"-format", "json", "-analyzers", "probehygiene",
		"./internal/analysis/testdata/src/probehygiene"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1\nstderr:\n%s", code, errb.String())
	}
	rep, err := analysis.LoadReport(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("JSON output does not round-trip: %v\n%s", err, out.String())
	}
	if len(rep.Findings) == 0 {
		t.Fatal("JSON report has no findings for the dirty fixture")
	}
	for _, f := range rep.Findings {
		if filepath.IsAbs(f.File) {
			t.Errorf("finding path %q is absolute, want module-relative", f.File)
		}
		if f.Analyzer != "probehygiene" {
			t.Errorf("finding analyzer %q, want probehygiene", f.Analyzer)
		}
	}
}

// TestSARIFFormat sanity-checks the SARIF rendering end to end.
func TestSARIFFormat(t *testing.T) {
	chdirRepoRoot(t)
	var out, errb strings.Builder
	code := run([]string{"-format", "sarif", "-analyzers", "probehygiene",
		"./internal/analysis/testdata/src/probehygiene"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1\nstderr:\n%s", code, errb.String())
	}
	for _, want := range []string{`"2.1.0"`, `"eqlint"`, `"probehygiene"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("SARIF output missing %s", want)
		}
	}
}

func TestUnknownFormat(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-format", "xml", "./internal/clock"}, &out, &errb); code != 2 {
		t.Fatalf("run(-format xml) = %d, want 2", code)
	}
}

// TestBaselineLifecycle drives the full loop: write a baseline for a dirty
// fixture, then re-run against it and come out clean; a stricter (smaller)
// and a grown baseline exercise the -compare-baselines guard both ways.
func TestBaselineLifecycle(t *testing.T) {
	chdirRepoRoot(t)
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")

	var out, errb strings.Builder
	code := run([]string{"-baseline", base, "-write-baseline", "-analyzers", "probehygiene",
		"./internal/analysis/testdata/src/probehygiene"}, &out, &errb)
	if code != 0 {
		t.Fatalf("write-baseline = %d\nstderr:\n%s", code, errb.String())
	}

	out.Reset()
	errb.Reset()
	code = run([]string{"-baseline", base, "-analyzers", "probehygiene",
		"./internal/analysis/testdata/src/probehygiene"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run with own baseline = %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "suppressed by baseline") {
		t.Errorf("expected a suppression note on stderr, got:\n%s", errb.String())
	}

	// Shrinking passes the guard; growing fails it.
	f, err := os.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analysis.LoadReport(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	writeReport := func(path string, rep *analysis.Report) {
		t.Helper()
		w, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		if err := rep.WriteJSON(w); err != nil {
			t.Fatal(err)
		}
	}
	shrunk := filepath.Join(dir, "shrunk.json")
	writeReport(shrunk, &analysis.Report{Version: analysis.ReportVersion, Findings: rep.Findings[:len(rep.Findings)-1]})
	grown := filepath.Join(dir, "grown.json")
	writeReport(grown, &analysis.Report{Version: analysis.ReportVersion,
		Findings: append(append([]analysis.Finding{}, rep.Findings...),
			analysis.Finding{File: "zz.go", Analyzer: "allocfree", Message: "brand new debt"})})

	out.Reset()
	errb.Reset()
	if code := run([]string{"-compare-baselines", base, shrunk}, &out, &errb); code != 0 {
		t.Errorf("compare(base, shrunk) = %d, want 0\nstderr:\n%s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-compare-baselines", base, grown}, &out, &errb); code != 1 {
		t.Errorf("compare(base, grown) = %d, want 1\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "zz.go") {
		t.Errorf("grown entry not named in compare output:\n%s", out.String())
	}
}

// TestStrictDirectives checks the driver wires -strict-directives through:
// the directives fixture carries an unknown verb, an unknown analyzer name,
// and an unused allow, so findings appear even before strict, and strict
// adds the unused-allow report.
func TestStrictDirectives(t *testing.T) {
	chdirRepoRoot(t)
	target := "./internal/analysis/testdata/src/directives"
	var out, errb strings.Builder
	if code := run([]string{"-baseline", "", target}, &out, &errb); code != 1 {
		t.Fatalf("lax run = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	lax := out.String()
	if !strings.Contains(lax, `unknown eqlint directive "frobnicate"`) ||
		!strings.Contains(lax, `unknown analyzer "nosuchanalyzer"`) {
		t.Errorf("lax run missing directive-hygiene findings:\n%s", lax)
	}
	if strings.Contains(lax, "suppressed nothing") {
		t.Errorf("lax run reported unused allows:\n%s", lax)
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", "", "-strict-directives", target}, &out, &errb); code != 1 {
		t.Fatalf("strict run = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "allow directive for errstrict suppressed nothing") {
		t.Errorf("strict run missing unused-allow finding:\n%s", out.String())
	}
}
