package main

import (
	"os"
	"strings"
	"testing"
)

// chdirRepoRoot moves the test into the module root so ./... patterns
// resolve the way a CI invocation would.
func chdirRepoRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir("../..")
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	})
}

func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, errb.String())
	}
	for _, name := range []string{"cycleaccounting", "errstrict", "nodeterminism", "probehygiene"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-analyzers", "nosuch", "./internal/clock"}, &out, &errb); code != 2 {
		t.Fatalf("run(-analyzers nosuch) = %d, want 2", code)
	}
}

// TestCleanPackage runs the full analyzer set over a small simulator
// package that must be clean; exit status 0 is part of the repo's
// determinism contract.
func TestCleanPackage(t *testing.T) {
	chdirRepoRoot(t)
	var out, errb strings.Builder
	code := run([]string{"./internal/clock"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run(./internal/clock) = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

// TestDirtyPackage points eqlint at the probehygiene testdata fixtures,
// which are deliberately dirty (and in scope, since probehygiene applies
// everywhere), and expects findings plus exit status 1.
func TestDirtyPackage(t *testing.T) {
	chdirRepoRoot(t)
	var out, errb strings.Builder
	code := run([]string{"-analyzers", "probehygiene",
		"./internal/analysis/testdata/src/probehygiene"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run over dirty fixtures = %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "allocates") {
		t.Errorf("expected a probehygiene finding, got:\n%s", out.String())
	}
}
